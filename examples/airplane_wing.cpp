// Airplane wing scenario (paper §1): "a few thousand sensors might be
// installed on the wing of an airplane ... the network of airplane wing
// sensors might calculate the average temperature of all sensors on the
// wing, triggering a coolant release at certain sensors if this average
// temperature is above some threshold."
//
// This example places 1024 sensors on a jittered grid (fixed physical
// positions — so the topologically aware hash applies), samples a smooth
// temperature field with a hot spot, runs Hierarchical Gossiping for the
// average, and triggers coolant release at the sensors whose local reading
// exceeds the group consensus by a margin.
//
//   $ ./build/examples/airplane_wing
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "src/agg/vote.h"
#include "src/hashing/topo_hash.h"
#include "src/hierarchy/hierarchy.h"
#include "src/membership/group.h"
#include "src/net/network.h"
#include "src/protocols/gossip/hier_gossip.h"
#include "src/sim/simulator.h"

int main() {
  using namespace gridbox;

  constexpr std::size_t kSensors = 1024;
  constexpr double kCoolantMargin = 4.0;  // degrees above consensus average
  const Rng root(1947);

  // Sensors glued to the wing at (roughly) regular positions.
  membership::Group wing(kSensors);
  Rng pos_rng = root.derive(1);
  wing.grid_positions(pos_rng, /*jitter=*/0.2);
  const auto position_of = [&wing](MemberId m) { return wing.position(m); };

  // A temperature field with a hot spot (e.g. near an engine), plus sensor
  // noise. Nearby sensors read nearby temperatures.
  Rng field_rng = root.derive(2);
  const agg::VoteTable readings = agg::field_votes(
      kSensors, position_of, field_rng, /*base=*/40.0, /*amplitude=*/25.0,
      /*noise_sigma=*/0.8);

  // Topologically aware H, calibrated on the deployment: grid boxes are
  // spatially tight patches of the wing, so early gossip phases stay on
  // short (cheap, reliable) links.
  std::vector<Position> placement;
  placement.reserve(kSensors);
  for (const MemberId m : wing.members()) placement.push_back(wing.position(m));
  hashing::TopoAwareHash hash(position_of, placement);
  hierarchy::GridBoxHierarchy hier(kSensors, /*members_per_box=*/4, hash);

  // On-wing network: short-range links, mild loss, distance-driven latency.
  sim::Simulator simulator;
  net::SimNetwork network(
      simulator, std::make_unique<net::IndependentLoss>(0.10),
      std::make_unique<net::DistanceLatency>(position_of, SimTime::micros(50),
                                             SimTime::micros(3000)),
      root.derive(3));
  network.set_liveness([&wing](MemberId m) { return wing.is_alive(m); });
  network.set_distance([&wing](MemberId a, MemberId b) {
    return std::sqrt(squared_distance(wing.position(a), wing.position(b)));
  });

  protocols::NodeEnv env;
  env.scheduler = &simulator;
  env.network = &network;
  env.hierarchy = &hier;
  env.is_alive = [&wing](MemberId m) { return wing.is_alive(m); };
  env.kind = agg::AggregateKind::kAverage;

  protocols::gossip::GossipConfig config;
  config.k = 4;
  config.fanout_m = 2;
  config.round_multiplier_c = 2.0;

  std::vector<std::unique_ptr<protocols::gossip::HierGossipNode>> sensors;
  const membership::View view = wing.full_view();
  for (const MemberId m : wing.members()) {
    sensors.push_back(std::make_unique<protocols::gossip::HierGossipNode>(
        m, readings.of(m), view, env, root.derive(100 + m.value()), config));
    network.attach(m, *sensors.back());
  }
  for (auto& sensor : sensors) sensor->start(SimTime::zero());
  simulator.run();

  const double truth =
      readings.exact_partial_all().value(agg::AggregateKind::kAverage);
  std::printf("wing of %zu sensors, true average temperature %.2f C\n",
              kSensors, truth);

  // Each sensor acts on ITS OWN estimate — that is the point of computing
  // the aggregate at every member (no coordinator to ask).
  std::size_t releases = 0;
  std::size_t finished = 0;
  double worst_estimate_error = 0.0;
  for (const auto& sensor : sensors) {
    if (!sensor->finished()) continue;
    ++finished;
    const double consensus =
        sensor->outcome().estimate.value(agg::AggregateKind::kAverage);
    worst_estimate_error =
        std::max(worst_estimate_error, std::abs(consensus - truth));
    if (readings.of(sensor->self()) > consensus + kCoolantMargin) {
      ++releases;
    }
  }
  std::printf("%zu/%zu sensors computed an estimate; worst error %.3f C\n",
              finished, kSensors, worst_estimate_error);
  std::printf("%zu sensors released coolant (local reading > consensus + %.1f C)\n",
              releases, kCoolantMargin);
  std::printf("mean link distance per message: %.4f wing-lengths "
              "(topo-aware hash keeps early phases local)\n",
              network.stats().link_distance_sum /
                  static_cast<double>(network.stats().messages_sent));
  return 0;
}
