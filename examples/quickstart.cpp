// Quickstart: aggregate an average over a 64-member group with Hierarchical
// Gossiping on a lossy simulated network, in ~40 lines of library use.
//
//   $ ./build/examples/quickstart
//
// Walks through the full public API surface: build a group and votes, pick
// the well-known hash H, derive the Grid Box Hierarchy, wire the simulated
// network, run one protocol instance per member, and read out estimates.
#include <cstdio>

#include "src/agg/vote.h"
#include "src/hashing/fair_hash.h"
#include "src/hierarchy/hierarchy.h"
#include "src/membership/group.h"
#include "src/net/network.h"
#include "src/protocols/gossip/hier_gossip.h"
#include "src/sim/simulator.h"

int main() {
  using namespace gridbox;

  constexpr std::size_t kGroupSize = 64;
  const Rng root(2001);

  // 1. The group and its votes (temperatures around 25 degrees).
  membership::Group group(kGroupSize);
  Rng vote_rng = root.derive(1);
  const agg::VoteTable votes =
      agg::uniform_votes(kGroupSize, vote_rng, 20.0, 30.0);

  // 2. The well-known hash H and the Grid Box Hierarchy (K = 4).
  hashing::FairHash hash(/*salt=*/7);
  hierarchy::GridBoxHierarchy hier(kGroupSize, /*members_per_box=*/4, hash);
  std::printf("hierarchy: %llu grid boxes, %zu phases\n",
              static_cast<unsigned long long>(hier.num_boxes()),
              hier.num_phases());

  // 3. A lossy asynchronous network: 20%% unicast loss, 0.2-2ms latency.
  sim::Simulator simulator;
  net::SimNetwork network(
      simulator, std::make_unique<net::IndependentLoss>(0.20),
      std::make_unique<net::UniformLatency>(SimTime::micros(200),
                                            SimTime::micros(2000)),
      root.derive(2));
  network.set_liveness([&group](MemberId m) { return group.is_alive(m); });

  // 4. One protocol node per member.
  protocols::NodeEnv env;
  env.scheduler = &simulator;
  env.network = &network;
  env.hierarchy = &hier;
  env.is_alive = [&group](MemberId m) { return group.is_alive(m); };
  env.kind = agg::AggregateKind::kAverage;

  protocols::gossip::GossipConfig config;
  config.k = 4;
  config.fanout_m = 2;
  config.round_multiplier_c = 2.0;

  std::vector<std::unique_ptr<protocols::gossip::HierGossipNode>> nodes;
  const membership::View view = group.full_view();
  for (const MemberId m : group.members()) {
    nodes.push_back(std::make_unique<protocols::gossip::HierGossipNode>(
        m, votes.of(m), view, env, root.derive(100 + m.value()), config));
    network.attach(m, *nodes.back());
  }
  for (auto& node : nodes) node->start(SimTime::zero());

  // 5. Run the simulation to completion and read the estimates.
  simulator.run();

  const double truth =
      votes.exact_partial_all().value(agg::AggregateKind::kAverage);
  std::printf("true average: %.4f\n", truth);
  double worst_error = 0.0;
  std::size_t worst_count = kGroupSize;
  for (const auto& node : nodes) {
    const auto& out = node->outcome();
    worst_error = std::max(
        worst_error,
        std::abs(out.estimate.value(agg::AggregateKind::kAverage) - truth));
    worst_count = std::min<std::size_t>(worst_count, out.estimate.count());
  }
  std::printf("every member finished; sample estimates:\n");
  for (const std::size_t i : {0u, 21u, 42u, 63u}) {
    const auto& out = nodes[i]->outcome();
    std::printf("  %s -> %.4f (covering %u/%zu votes)\n",
                to_string(nodes[i]->self()).c_str(),
                out.estimate.value(agg::AggregateKind::kAverage),
                out.estimate.count(), kGroupSize);
  }
  std::printf("worst member: coverage %zu/%zu, estimate error %.4f\n",
              worst_count, kGroupSize, worst_error);
  std::printf("network: %llu messages sent, %.1f%% delivered\n",
              static_cast<unsigned long long>(network.stats().messages_sent),
              100.0 * network.stats().delivery_rate());
  return 0;
}
