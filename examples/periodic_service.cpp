// A long-lived aggregation *service*: flood-initiated periodic epochs.
//
// Combines the two §2 extensions implemented by the library:
//   - FloodStarter: the "multicast" initiation, built from unicast gossip —
//     any member can kick off the service, nobody needs synchronized clocks;
//   - PeriodicAggregatorNode: repeated one-shot instances over the same
//     group, each sampling fresh sensor readings.
//
// 256 sensors track the MAX reading of a slowly rising signal; a flood from
// sensor 0 starts the service everywhere, and each member alarms as soon as
// *its own* latest estimate crosses a threshold.
//
//   $ ./build/examples/periodic_service
#include <cstdio>
#include <memory>
#include <vector>

#include "src/agg/vote.h"
#include "src/hashing/fair_hash.h"
#include "src/hierarchy/hierarchy.h"
#include "src/membership/group.h"
#include "src/net/network.h"
#include "src/protocols/gossip/initiation.h"
#include "src/protocols/gossip/periodic.h"
#include "src/sim/simulator.h"

int main() {
  using namespace gridbox;
  using protocols::gossip::FloodConfig;
  using protocols::gossip::FloodStarter;
  using protocols::gossip::MessageDemux;
  using protocols::gossip::PeriodicAggregatorNode;
  using protocols::gossip::PeriodicConfig;

  constexpr std::size_t kSensors = 256;
  constexpr std::size_t kEpochs = 5;
  constexpr double kAlarmAt = 95.0;
  const Rng root(4242);

  membership::Group sensors(kSensors);
  hashing::FairHash hash(21);
  hierarchy::GridBoxHierarchy hier(kSensors, 4, hash);

  sim::Simulator simulator;
  net::SimNetwork network(
      simulator, std::make_unique<net::IndependentLoss>(0.15),
      std::make_unique<net::UniformLatency>(SimTime::micros(200),
                                            SimTime::micros(2000)),
      root.derive(1));
  network.set_liveness([&sensors](MemberId m) { return sensors.is_alive(m); });

  protocols::NodeEnv env;
  env.scheduler = &simulator;
  env.network = &network;
  env.hierarchy = &hier;
  env.is_alive = [&sensors](MemberId m) { return sensors.is_alive(m); };
  env.kind = agg::AggregateKind::kMax;

  PeriodicConfig config;
  config.gossip.k = 4;
  config.gossip.fanout_m = 2;
  config.gossip.round_multiplier_c = 2.0;
  config.period = SimTime::seconds(1);
  config.epochs = kEpochs;
  config.max_latency = SimTime::millis(2);

  // Per-sensor readings: a rising signal + per-sensor noise. Epoch e's true
  // max crosses kAlarmAt around epoch 3.
  const auto reading = [&root](MemberId m, std::size_t epoch) {
    Rng r = root.derive(0xABCD + m.value() * 1000 + epoch);
    return 70.0 + 8.0 * static_cast<double>(epoch) + 5.0 * r.uniform();
  };

  std::vector<std::unique_ptr<PeriodicAggregatorNode>> services;
  std::vector<std::unique_ptr<FloodStarter>> starters;
  std::vector<std::unique_ptr<MessageDemux>> demuxes;
  const membership::View view = sensors.full_view();

  for (const MemberId m : sensors.members()) {
    services.push_back(std::make_unique<PeriodicAggregatorNode>(
        m, [m, &reading](std::size_t epoch) { return reading(m, epoch); },
        view, env, root.derive(0x5E81 + m.value()), config));
    PeriodicAggregatorNode* service = services.back().get();
    starters.push_back(std::make_unique<FloodStarter>(
        m, view, simulator, network, root.derive(0xF10 + m.value()),
        FloodConfig{}, [service, &simulator](std::uint64_t) {
          service->start(simulator.now());
        }));
    demuxes.push_back(
        std::make_unique<MessageDemux>(*starters.back(), *services.back()));
    network.attach(m, *demuxes.back());
  }

  // Sensor 0 brings the service up; the flood does the rest.
  simulator.schedule_at(SimTime::millis(3),
                        [&starters]() { starters[0]->initiate(1); });
  simulator.run();

  std::printf("flood-initiated service, %zu sensors, %zu epochs\n\n",
              kSensors, kEpochs);
  std::printf("%-6s %-12s %-12s %-10s\n", "epoch", "true max", "est max",
              "alarming");
  for (std::size_t epoch = 0; epoch < kEpochs; ++epoch) {
    double true_max = 0.0;
    for (const MemberId m : sensors.members()) {
      true_max = std::max(true_max, reading(m, epoch));
    }
    double est_sum = 0.0;
    std::size_t reported = 0;
    std::size_t alarming = 0;
    for (const auto& service : services) {
      if (service->history().size() <= epoch ||
          !service->history()[epoch].finished) {
        continue;
      }
      const double est = service->history()[epoch].estimate.value(
          agg::AggregateKind::kMax);
      est_sum += est;
      ++reported;
      if (est > kAlarmAt) ++alarming;
    }
    std::printf("%-6zu %-12.2f %-12.2f %zu/%zu\n", epoch, true_max,
                reported > 0 ? est_sum / static_cast<double>(reported) : 0.0,
                alarming, reported);
  }
  std::printf(
      "\nthe whole group alarms in the same epoch the true max crosses "
      "%.0f — consistent local decisions from local estimates.\n",
      kAlarmAt);
  return 0;
}
