// Internet process-group scenario (paper §1, §2): a few hundred processes
// spread over a wide-area network run *periodic* one-shot aggregations —
// here, of their load average — and each process throttles itself whenever
// the group's average load is high. Demonstrates:
//   - repeated protocol instances over the same long-lived group (the
//     paper's "this can be extended to one which periodically calculates
//     the global aggregate"),
//   - long-tailed WAN latencies (ExponentialLatency),
//   - membership churn between instances (crashes persist across rounds),
//   - multiple aggregate kinds read from the same run (avg + max from one
//     Partial).
//
//   $ ./build/examples/internet_monitor
#include <cstdio>
#include <memory>
#include <vector>

#include "src/agg/vote.h"
#include "src/hashing/fair_hash.h"
#include "src/hierarchy/hierarchy.h"
#include "src/membership/group.h"
#include "src/net/network.h"
#include "src/protocols/gossip/hier_gossip.h"
#include "src/sim/simulator.h"

namespace {

using namespace gridbox;

struct EpochResult {
  double true_avg = 0.0;
  double mean_est_avg = 0.0;
  double mean_coverage = 0.0;
  std::size_t throttling = 0;
  std::size_t alive = 0;
};

EpochResult run_epoch(membership::Group& processes,
                      const agg::VoteTable& loads,
                      const hierarchy::GridBoxHierarchy& hier, Rng epoch_rng,
                      double throttle_threshold) {
  sim::Simulator simulator;
  net::SimNetwork network(
      simulator, std::make_unique<net::IndependentLoss>(0.15),
      std::make_unique<net::ExponentialLatency>(SimTime::micros(500),
                                                SimTime::micros(1500),
                                                SimTime::micros(8000)),
      epoch_rng.derive(1));
  network.set_liveness(
      [&processes](MemberId m) { return processes.is_alive(m); });

  protocols::NodeEnv env;
  env.scheduler = &simulator;
  env.network = &network;
  env.hierarchy = &hier;
  env.is_alive = [&processes](MemberId m) { return processes.is_alive(m); };
  env.kind = agg::AggregateKind::kAverage;

  protocols::gossip::GossipConfig config;
  config.k = 4;
  config.fanout_m = 2;
  config.round_multiplier_c = 2.0;
  // Multicast-initiated start: instances begin within one round of each
  // other, not perfectly simultaneously.
  config.start_skew_max = config.round_duration;

  std::vector<std::unique_ptr<protocols::gossip::HierGossipNode>> nodes;
  const membership::View view = processes.full_view();
  for (const MemberId m : processes.members()) {
    if (!processes.is_alive(m)) continue;  // dead processes don't restart
    nodes.push_back(std::make_unique<protocols::gossip::HierGossipNode>(
        m, loads.of(m), view, env, epoch_rng.derive(100 + m.value()),
        config));
    network.attach(m, *nodes.back());
  }
  for (auto& node : nodes) node->start(SimTime::zero());
  simulator.run();

  EpochResult result;
  result.alive = processes.alive_count();
  result.true_avg = [&] {
    agg::Partial alive_votes;
    for (const MemberId m : processes.members()) {
      if (processes.is_alive(m)) {
        alive_votes.merge(agg::Partial::from_vote(loads.of(m)));
      }
    }
    return alive_votes.value(agg::AggregateKind::kAverage);
  }();
  std::size_t finished = 0;
  for (const auto& node : nodes) {
    if (!node->finished()) continue;
    ++finished;
    const double est =
        node->outcome().estimate.value(agg::AggregateKind::kAverage);
    result.mean_est_avg += est;
    result.mean_coverage += static_cast<double>(
        node->outcome().estimate.count());
    if (est > throttle_threshold) ++result.throttling;
  }
  if (finished > 0) {
    result.mean_est_avg /= static_cast<double>(finished);
    result.mean_coverage /=
        static_cast<double>(finished) * static_cast<double>(result.alive);
  }
  return result;
}

}  // namespace

int main() {
  constexpr std::size_t kProcesses = 300;
  constexpr double kThrottleAt = 0.75;
  const Rng root(31337);

  membership::Group processes(kProcesses);
  hashing::FairHash hash(/*salt=*/3);
  const hierarchy::GridBoxHierarchy hier(kProcesses, 4, hash);

  std::printf("monitoring %zu processes; throttle when avg load > %.2f\n\n",
              kProcesses, kThrottleAt);
  std::printf("%-6s %-6s %-9s %-9s %-9s %-10s\n", "epoch", "alive",
              "true avg", "est avg", "coverage", "throttling");

  Rng churn_rng = root.derive(0xC);
  for (int epoch = 0; epoch < 6; ++epoch) {
    // Fresh load measurements each epoch: load creeps up over time.
    Rng load_rng = root.derive(0x10 + static_cast<std::uint64_t>(epoch));
    const agg::VoteTable loads = agg::uniform_votes(
        kProcesses, load_rng, 0.1 + 0.12 * epoch, 0.7 + 0.12 * epoch);

    const EpochResult r =
        run_epoch(processes, loads, hier,
                  root.derive(0x100 + static_cast<std::uint64_t>(epoch)),
                  kThrottleAt);
    std::printf("%-6d %-6zu %-9.3f %-9.3f %-8.1f%% %-10zu\n", epoch, r.alive,
                r.true_avg, r.mean_est_avg, 100.0 * r.mean_coverage,
                r.throttling);

    // Churn between epochs: ~2% of live processes fail for good.
    for (const MemberId m : processes.members()) {
      if (processes.is_alive(m) && churn_rng.bernoulli(0.02)) {
        processes.crash(m);
      }
    }
  }
  std::printf(
      "\nnote how estimated averages track the rising true load, and the "
      "throttling count jumps once the group crosses the threshold — no "
      "coordinator involved.\n");
  return 0;
}
