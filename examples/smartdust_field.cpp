// Smart-dust scenario (paper §1): "a few hundred thousand smart dust
// computers might be randomly dropped on an inhospitable terrain" — scaled
// here to 2000 motes so the example runs in seconds. The terrain is harsh:
// heavy message loss, a soft partition down the middle (a ridge), and motes
// that die permanently every round (battery, weather, fauna).
//
// The group computes MIN battery voltage — the fleet-health question "how
// close is the weakest mote to dying?" — and we compare every surviving
// mote's estimate against ground truth.
//
//   $ ./build/examples/smartdust_field
#include <cstdio>
#include <memory>
#include <vector>

#include "src/agg/vote.h"
#include "src/hashing/fair_hash.h"
#include "src/hierarchy/hierarchy.h"
#include "src/membership/crash_model.h"
#include "src/membership/group.h"
#include "src/net/network.h"
#include "src/protocols/gossip/hier_gossip.h"
#include "src/sim/simulator.h"

int main() {
  using namespace gridbox;

  constexpr std::size_t kMotes = 2000;
  const Rng root(777);

  membership::Group field(kMotes);
  Rng vote_rng = root.derive(1);
  // Battery voltages: nominal 3.0V, some depleted down toward 2.0V.
  const agg::VoteTable batteries =
      agg::uniform_votes(kMotes, vote_rng, 2.0, 3.2);

  hashing::FairHash hash(/*salt=*/13);
  hierarchy::GridBoxHierarchy hier(kMotes, /*members_per_box=*/4, hash);

  // The ridge: motes 0..999 vs 1000..1999; cross-ridge traffic loses 60% of
  // messages, same-side traffic 30%.
  sim::Simulator simulator;
  net::SimNetwork network(
      simulator, net::PartitionLoss::split_at(kMotes / 2, 0.30, 0.60),
      std::make_unique<net::UniformLatency>(SimTime::micros(500),
                                            SimTime::micros(5000)),
      root.derive(2));
  network.set_liveness([&field](MemberId m) { return field.is_alive(m); });

  protocols::NodeEnv env;
  env.scheduler = &simulator;
  env.network = &network;
  env.hierarchy = &hier;
  env.is_alive = [&field](MemberId m) { return field.is_alive(m); };
  env.kind = agg::AggregateKind::kMin;

  protocols::gossip::GossipConfig config;
  config.k = 4;
  config.fanout_m = 2;
  config.round_multiplier_c = 2.0;

  std::vector<std::unique_ptr<protocols::gossip::HierGossipNode>> motes;
  const membership::View view = field.full_view();
  for (const MemberId m : field.members()) {
    motes.push_back(std::make_unique<protocols::gossip::HierGossipNode>(
        m, batteries.of(m), view, env, root.derive(100 + m.value()), config));
    network.attach(m, *motes.back());
  }
  for (auto& mote : motes) mote->start(SimTime::zero());

  // Motes die permanently at 0.1% per gossip round.
  const membership::PerRoundCrash attrition(0.001);
  auto crash_rng = std::make_shared<Rng>(root.derive(3));
  auto round = std::make_shared<std::uint64_t>(0);
  simulator.schedule_periodic(
      config.round_duration, config.round_duration,
      [&field, &motes, &attrition, crash_rng, round]() {
        (void)field.apply_round_crashes(attrition, (*round)++, *crash_rng);
        for (const auto& mote : motes) {
          if (!mote->finished() && field.is_alive(mote->self())) return true;
        }
        return false;
      });

  simulator.run();

  const double true_min =
      batteries.exact_partial_all().value(agg::AggregateKind::kMin);
  std::printf("field of %zu motes; %zu survived the run\n", kMotes,
              field.alive_count());
  std::printf("true minimum battery: %.4f V\n", true_min);

  std::size_t finished = 0;
  std::size_t exact = 0;
  double coverage = 0.0;
  for (const auto& mote : motes) {
    if (!field.is_alive(mote->self()) || !mote->finished()) continue;
    ++finished;
    const double est =
        mote->outcome().estimate.value(agg::AggregateKind::kMin);
    if (est == true_min) ++exact;
    coverage += static_cast<double>(mote->outcome().estimate.count()) /
                static_cast<double>(kMotes);
  }
  std::printf("%zu surviving motes finished; %zu (%.1f%%) know the exact "
              "minimum despite ridge + loss + attrition\n",
              finished, exact,
              finished > 0 ? 100.0 * static_cast<double>(exact) /
                                 static_cast<double>(finished)
                           : 0.0);
  std::printf("mean vote coverage at surviving motes: %.2f%%\n",
              finished > 0 ? 100.0 * coverage / static_cast<double>(finished)
                           : 0.0);
  std::printf("network: %llu messages, %.1f%% delivered\n",
              static_cast<unsigned long long>(network.stats().messages_sent),
              100.0 * network.stats().delivery_rate());
  return 0;
}
