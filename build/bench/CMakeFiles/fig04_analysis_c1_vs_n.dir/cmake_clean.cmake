file(REMOVE_RECURSE
  "CMakeFiles/fig04_analysis_c1_vs_n.dir/fig04_analysis_c1_vs_n.cpp.o"
  "CMakeFiles/fig04_analysis_c1_vs_n.dir/fig04_analysis_c1_vs_n.cpp.o.d"
  "fig04_analysis_c1_vs_n"
  "fig04_analysis_c1_vs_n.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_analysis_c1_vs_n.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
