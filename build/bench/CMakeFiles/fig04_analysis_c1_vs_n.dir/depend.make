# Empty dependencies file for fig04_analysis_c1_vs_n.
# This may be replaced when dependencies are built.
