file(REMOVE_RECURSE
  "CMakeFiles/fig07_message_loss.dir/fig07_message_loss.cpp.o"
  "CMakeFiles/fig07_message_loss.dir/fig07_message_loss.cpp.o.d"
  "fig07_message_loss"
  "fig07_message_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_message_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
