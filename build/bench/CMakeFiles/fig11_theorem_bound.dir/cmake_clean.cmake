file(REMOVE_RECURSE
  "CMakeFiles/fig11_theorem_bound.dir/fig11_theorem_bound.cpp.o"
  "CMakeFiles/fig11_theorem_bound.dir/fig11_theorem_bound.cpp.o.d"
  "fig11_theorem_bound"
  "fig11_theorem_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_theorem_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
