# Empty dependencies file for fig11_theorem_bound.
# This may be replaced when dependencies are built.
