file(REMOVE_RECURSE
  "CMakeFiles/cmp_fd_latency.dir/cmp_fd_latency.cpp.o"
  "CMakeFiles/cmp_fd_latency.dir/cmp_fd_latency.cpp.o.d"
  "cmp_fd_latency"
  "cmp_fd_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmp_fd_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
