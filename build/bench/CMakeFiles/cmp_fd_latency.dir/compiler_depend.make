# Empty compiler generated dependencies file for cmp_fd_latency.
# This may be replaced when dependencies are built.
