file(REMOVE_RECURSE
  "CMakeFiles/abl_sync_vs_async.dir/abl_sync_vs_async.cpp.o"
  "CMakeFiles/abl_sync_vs_async.dir/abl_sync_vs_async.cpp.o.d"
  "abl_sync_vs_async"
  "abl_sync_vs_async.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_sync_vs_async.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
