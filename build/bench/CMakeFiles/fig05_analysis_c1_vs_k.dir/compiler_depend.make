# Empty compiler generated dependencies file for fig05_analysis_c1_vs_k.
# This may be replaced when dependencies are built.
