# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig05_analysis_c1_vs_k.
