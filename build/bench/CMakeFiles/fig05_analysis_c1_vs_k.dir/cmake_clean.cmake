file(REMOVE_RECURSE
  "CMakeFiles/fig05_analysis_c1_vs_k.dir/fig05_analysis_c1_vs_k.cpp.o"
  "CMakeFiles/fig05_analysis_c1_vs_k.dir/fig05_analysis_c1_vs_k.cpp.o.d"
  "fig05_analysis_c1_vs_k"
  "fig05_analysis_c1_vs_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_analysis_c1_vs_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
