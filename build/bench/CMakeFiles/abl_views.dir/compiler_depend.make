# Empty compiler generated dependencies file for abl_views.
# This may be replaced when dependencies are built.
