file(REMOVE_RECURSE
  "CMakeFiles/abl_views.dir/abl_views.cpp.o"
  "CMakeFiles/abl_views.dir/abl_views.cpp.o.d"
  "abl_views"
  "abl_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
