file(REMOVE_RECURSE
  "CMakeFiles/fig06_scalability_vs_n.dir/fig06_scalability_vs_n.cpp.o"
  "CMakeFiles/fig06_scalability_vs_n.dir/fig06_scalability_vs_n.cpp.o.d"
  "fig06_scalability_vs_n"
  "fig06_scalability_vs_n.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_scalability_vs_n.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
