# Empty dependencies file for fig06_scalability_vs_n.
# This may be replaced when dependencies are built.
