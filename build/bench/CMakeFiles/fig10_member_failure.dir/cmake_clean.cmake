file(REMOVE_RECURSE
  "CMakeFiles/fig10_member_failure.dir/fig10_member_failure.cpp.o"
  "CMakeFiles/fig10_member_failure.dir/fig10_member_failure.cpp.o.d"
  "fig10_member_failure"
  "fig10_member_failure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_member_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
