# Empty compiler generated dependencies file for fig10_member_failure.
# This may be replaced when dependencies are built.
