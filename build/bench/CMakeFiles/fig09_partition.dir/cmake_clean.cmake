file(REMOVE_RECURSE
  "CMakeFiles/fig09_partition.dir/fig09_partition.cpp.o"
  "CMakeFiles/fig09_partition.dir/fig09_partition.cpp.o.d"
  "fig09_partition"
  "fig09_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
