# Empty dependencies file for fig09_partition.
# This may be replaced when dependencies are built.
