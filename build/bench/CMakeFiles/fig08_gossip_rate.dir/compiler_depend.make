# Empty compiler generated dependencies file for fig08_gossip_rate.
# This may be replaced when dependencies are built.
