file(REMOVE_RECURSE
  "CMakeFiles/fig08_gossip_rate.dir/fig08_gossip_rate.cpp.o"
  "CMakeFiles/fig08_gossip_rate.dir/fig08_gossip_rate.cpp.o.d"
  "fig08_gossip_rate"
  "fig08_gossip_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_gossip_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
