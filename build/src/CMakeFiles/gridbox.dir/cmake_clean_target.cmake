file(REMOVE_RECURSE
  "libgridbox.a"
)
