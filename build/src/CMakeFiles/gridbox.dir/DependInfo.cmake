
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/agg/aggregate.cpp" "src/CMakeFiles/gridbox.dir/agg/aggregate.cpp.o" "gcc" "src/CMakeFiles/gridbox.dir/agg/aggregate.cpp.o.d"
  "/root/repo/src/agg/audit.cpp" "src/CMakeFiles/gridbox.dir/agg/audit.cpp.o" "gcc" "src/CMakeFiles/gridbox.dir/agg/audit.cpp.o.d"
  "/root/repo/src/agg/codec.cpp" "src/CMakeFiles/gridbox.dir/agg/codec.cpp.o" "gcc" "src/CMakeFiles/gridbox.dir/agg/codec.cpp.o.d"
  "/root/repo/src/agg/vote.cpp" "src/CMakeFiles/gridbox.dir/agg/vote.cpp.o" "gcc" "src/CMakeFiles/gridbox.dir/agg/vote.cpp.o.d"
  "/root/repo/src/analysis/completeness.cpp" "src/CMakeFiles/gridbox.dir/analysis/completeness.cpp.o" "gcc" "src/CMakeFiles/gridbox.dir/analysis/completeness.cpp.o.d"
  "/root/repo/src/analysis/costs.cpp" "src/CMakeFiles/gridbox.dir/analysis/costs.cpp.o" "gcc" "src/CMakeFiles/gridbox.dir/analysis/costs.cpp.o.d"
  "/root/repo/src/analysis/epidemic.cpp" "src/CMakeFiles/gridbox.dir/analysis/epidemic.cpp.o" "gcc" "src/CMakeFiles/gridbox.dir/analysis/epidemic.cpp.o.d"
  "/root/repo/src/common/bitset.cpp" "src/CMakeFiles/gridbox.dir/common/bitset.cpp.o" "gcc" "src/CMakeFiles/gridbox.dir/common/bitset.cpp.o.d"
  "/root/repo/src/common/log.cpp" "src/CMakeFiles/gridbox.dir/common/log.cpp.o" "gcc" "src/CMakeFiles/gridbox.dir/common/log.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/gridbox.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/gridbox.dir/common/rng.cpp.o.d"
  "/root/repo/src/hashing/fair_hash.cpp" "src/CMakeFiles/gridbox.dir/hashing/fair_hash.cpp.o" "gcc" "src/CMakeFiles/gridbox.dir/hashing/fair_hash.cpp.o.d"
  "/root/repo/src/hashing/fairness.cpp" "src/CMakeFiles/gridbox.dir/hashing/fairness.cpp.o" "gcc" "src/CMakeFiles/gridbox.dir/hashing/fairness.cpp.o.d"
  "/root/repo/src/hashing/topo_hash.cpp" "src/CMakeFiles/gridbox.dir/hashing/topo_hash.cpp.o" "gcc" "src/CMakeFiles/gridbox.dir/hashing/topo_hash.cpp.o.d"
  "/root/repo/src/hierarchy/address.cpp" "src/CMakeFiles/gridbox.dir/hierarchy/address.cpp.o" "gcc" "src/CMakeFiles/gridbox.dir/hierarchy/address.cpp.o.d"
  "/root/repo/src/hierarchy/hierarchy.cpp" "src/CMakeFiles/gridbox.dir/hierarchy/hierarchy.cpp.o" "gcc" "src/CMakeFiles/gridbox.dir/hierarchy/hierarchy.cpp.o.d"
  "/root/repo/src/membership/crash_model.cpp" "src/CMakeFiles/gridbox.dir/membership/crash_model.cpp.o" "gcc" "src/CMakeFiles/gridbox.dir/membership/crash_model.cpp.o.d"
  "/root/repo/src/membership/group.cpp" "src/CMakeFiles/gridbox.dir/membership/group.cpp.o" "gcc" "src/CMakeFiles/gridbox.dir/membership/group.cpp.o.d"
  "/root/repo/src/membership/view.cpp" "src/CMakeFiles/gridbox.dir/membership/view.cpp.o" "gcc" "src/CMakeFiles/gridbox.dir/membership/view.cpp.o.d"
  "/root/repo/src/net/fault_model.cpp" "src/CMakeFiles/gridbox.dir/net/fault_model.cpp.o" "gcc" "src/CMakeFiles/gridbox.dir/net/fault_model.cpp.o.d"
  "/root/repo/src/net/latency_model.cpp" "src/CMakeFiles/gridbox.dir/net/latency_model.cpp.o" "gcc" "src/CMakeFiles/gridbox.dir/net/latency_model.cpp.o.d"
  "/root/repo/src/net/message.cpp" "src/CMakeFiles/gridbox.dir/net/message.cpp.o" "gcc" "src/CMakeFiles/gridbox.dir/net/message.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/CMakeFiles/gridbox.dir/net/network.cpp.o" "gcc" "src/CMakeFiles/gridbox.dir/net/network.cpp.o.d"
  "/root/repo/src/net/stats.cpp" "src/CMakeFiles/gridbox.dir/net/stats.cpp.o" "gcc" "src/CMakeFiles/gridbox.dir/net/stats.cpp.o.d"
  "/root/repo/src/protocols/baseline/centralized.cpp" "src/CMakeFiles/gridbox.dir/protocols/baseline/centralized.cpp.o" "gcc" "src/CMakeFiles/gridbox.dir/protocols/baseline/centralized.cpp.o.d"
  "/root/repo/src/protocols/baseline/committee.cpp" "src/CMakeFiles/gridbox.dir/protocols/baseline/committee.cpp.o" "gcc" "src/CMakeFiles/gridbox.dir/protocols/baseline/committee.cpp.o.d"
  "/root/repo/src/protocols/baseline/fully_distributed.cpp" "src/CMakeFiles/gridbox.dir/protocols/baseline/fully_distributed.cpp.o" "gcc" "src/CMakeFiles/gridbox.dir/protocols/baseline/fully_distributed.cpp.o.d"
  "/root/repo/src/protocols/baseline/leader_election.cpp" "src/CMakeFiles/gridbox.dir/protocols/baseline/leader_election.cpp.o" "gcc" "src/CMakeFiles/gridbox.dir/protocols/baseline/leader_election.cpp.o.d"
  "/root/repo/src/protocols/fd/gossip_fd.cpp" "src/CMakeFiles/gridbox.dir/protocols/fd/gossip_fd.cpp.o" "gcc" "src/CMakeFiles/gridbox.dir/protocols/fd/gossip_fd.cpp.o.d"
  "/root/repo/src/protocols/gossip/gossip_config.cpp" "src/CMakeFiles/gridbox.dir/protocols/gossip/gossip_config.cpp.o" "gcc" "src/CMakeFiles/gridbox.dir/protocols/gossip/gossip_config.cpp.o.d"
  "/root/repo/src/protocols/gossip/hier_gossip.cpp" "src/CMakeFiles/gridbox.dir/protocols/gossip/hier_gossip.cpp.o" "gcc" "src/CMakeFiles/gridbox.dir/protocols/gossip/hier_gossip.cpp.o.d"
  "/root/repo/src/protocols/gossip/initiation.cpp" "src/CMakeFiles/gridbox.dir/protocols/gossip/initiation.cpp.o" "gcc" "src/CMakeFiles/gridbox.dir/protocols/gossip/initiation.cpp.o.d"
  "/root/repo/src/protocols/gossip/periodic.cpp" "src/CMakeFiles/gridbox.dir/protocols/gossip/periodic.cpp.o" "gcc" "src/CMakeFiles/gridbox.dir/protocols/gossip/periodic.cpp.o.d"
  "/root/repo/src/protocols/node.cpp" "src/CMakeFiles/gridbox.dir/protocols/node.cpp.o" "gcc" "src/CMakeFiles/gridbox.dir/protocols/node.cpp.o.d"
  "/root/repo/src/protocols/protocol_stats.cpp" "src/CMakeFiles/gridbox.dir/protocols/protocol_stats.cpp.o" "gcc" "src/CMakeFiles/gridbox.dir/protocols/protocol_stats.cpp.o.d"
  "/root/repo/src/runner/cli.cpp" "src/CMakeFiles/gridbox.dir/runner/cli.cpp.o" "gcc" "src/CMakeFiles/gridbox.dir/runner/cli.cpp.o.d"
  "/root/repo/src/runner/config.cpp" "src/CMakeFiles/gridbox.dir/runner/config.cpp.o" "gcc" "src/CMakeFiles/gridbox.dir/runner/config.cpp.o.d"
  "/root/repo/src/runner/experiment.cpp" "src/CMakeFiles/gridbox.dir/runner/experiment.cpp.o" "gcc" "src/CMakeFiles/gridbox.dir/runner/experiment.cpp.o.d"
  "/root/repo/src/runner/stats.cpp" "src/CMakeFiles/gridbox.dir/runner/stats.cpp.o" "gcc" "src/CMakeFiles/gridbox.dir/runner/stats.cpp.o.d"
  "/root/repo/src/runner/sweep.cpp" "src/CMakeFiles/gridbox.dir/runner/sweep.cpp.o" "gcc" "src/CMakeFiles/gridbox.dir/runner/sweep.cpp.o.d"
  "/root/repo/src/runner/table.cpp" "src/CMakeFiles/gridbox.dir/runner/table.cpp.o" "gcc" "src/CMakeFiles/gridbox.dir/runner/table.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/gridbox.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/gridbox.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/gridbox.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/gridbox.dir/sim/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
