# Empty dependencies file for gridbox.
# This may be replaced when dependencies are built.
