file(REMOVE_RECURSE
  "CMakeFiles/gridbox_sim.dir/gridbox_sim.cpp.o"
  "CMakeFiles/gridbox_sim.dir/gridbox_sim.cpp.o.d"
  "gridbox_sim"
  "gridbox_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridbox_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
