# Empty dependencies file for gridbox_sim.
# This may be replaced when dependencies are built.
