# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_help "/root/repo/build/tools/gridbox_sim" "--help")
set_tests_properties(cli_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_smoke "/root/repo/build/tools/gridbox_sim" "--n" "64" "--runs" "2" "--audit")
set_tests_properties(cli_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_leader_smoke "/root/repo/build/tools/gridbox_sim" "--protocol" "leader" "--n" "64" "--loss" "0.1" "--runs" "1")
set_tests_properties(cli_leader_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
