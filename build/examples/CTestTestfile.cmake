# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_airplane_wing "/root/repo/build/examples/airplane_wing")
set_tests_properties(example_airplane_wing PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_smartdust_field "/root/repo/build/examples/smartdust_field")
set_tests_properties(example_smartdust_field PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_internet_monitor "/root/repo/build/examples/internet_monitor")
set_tests_properties(example_internet_monitor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_periodic_service "/root/repo/build/examples/periodic_service")
set_tests_properties(example_periodic_service PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
