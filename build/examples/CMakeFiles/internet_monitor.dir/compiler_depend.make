# Empty compiler generated dependencies file for internet_monitor.
# This may be replaced when dependencies are built.
