file(REMOVE_RECURSE
  "CMakeFiles/internet_monitor.dir/internet_monitor.cpp.o"
  "CMakeFiles/internet_monitor.dir/internet_monitor.cpp.o.d"
  "internet_monitor"
  "internet_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/internet_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
