file(REMOVE_RECURSE
  "CMakeFiles/periodic_service.dir/periodic_service.cpp.o"
  "CMakeFiles/periodic_service.dir/periodic_service.cpp.o.d"
  "periodic_service"
  "periodic_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/periodic_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
