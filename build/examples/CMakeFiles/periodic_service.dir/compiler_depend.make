# Empty compiler generated dependencies file for periodic_service.
# This may be replaced when dependencies are built.
