# Empty dependencies file for smartdust_field.
# This may be replaced when dependencies are built.
