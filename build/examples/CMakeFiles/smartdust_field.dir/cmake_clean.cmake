file(REMOVE_RECURSE
  "CMakeFiles/smartdust_field.dir/smartdust_field.cpp.o"
  "CMakeFiles/smartdust_field.dir/smartdust_field.cpp.o.d"
  "smartdust_field"
  "smartdust_field.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartdust_field.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
