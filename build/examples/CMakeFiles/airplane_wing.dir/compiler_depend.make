# Empty compiler generated dependencies file for airplane_wing.
# This may be replaced when dependencies are built.
