file(REMOVE_RECURSE
  "CMakeFiles/airplane_wing.dir/airplane_wing.cpp.o"
  "CMakeFiles/airplane_wing.dir/airplane_wing.cpp.o.d"
  "airplane_wing"
  "airplane_wing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/airplane_wing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
