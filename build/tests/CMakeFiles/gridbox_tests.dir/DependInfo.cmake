
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_address.cpp" "tests/CMakeFiles/gridbox_tests.dir/test_address.cpp.o" "gcc" "tests/CMakeFiles/gridbox_tests.dir/test_address.cpp.o.d"
  "/root/repo/tests/test_aggregate.cpp" "tests/CMakeFiles/gridbox_tests.dir/test_aggregate.cpp.o" "gcc" "tests/CMakeFiles/gridbox_tests.dir/test_aggregate.cpp.o.d"
  "/root/repo/tests/test_analysis.cpp" "tests/CMakeFiles/gridbox_tests.dir/test_analysis.cpp.o" "gcc" "tests/CMakeFiles/gridbox_tests.dir/test_analysis.cpp.o.d"
  "/root/repo/tests/test_audit.cpp" "tests/CMakeFiles/gridbox_tests.dir/test_audit.cpp.o" "gcc" "tests/CMakeFiles/gridbox_tests.dir/test_audit.cpp.o.d"
  "/root/repo/tests/test_baselines.cpp" "tests/CMakeFiles/gridbox_tests.dir/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/gridbox_tests.dir/test_baselines.cpp.o.d"
  "/root/repo/tests/test_bitset.cpp" "tests/CMakeFiles/gridbox_tests.dir/test_bitset.cpp.o" "gcc" "tests/CMakeFiles/gridbox_tests.dir/test_bitset.cpp.o.d"
  "/root/repo/tests/test_cli.cpp" "tests/CMakeFiles/gridbox_tests.dir/test_cli.cpp.o" "gcc" "tests/CMakeFiles/gridbox_tests.dir/test_cli.cpp.o.d"
  "/root/repo/tests/test_cli_run.cpp" "tests/CMakeFiles/gridbox_tests.dir/test_cli_run.cpp.o" "gcc" "tests/CMakeFiles/gridbox_tests.dir/test_cli_run.cpp.o.d"
  "/root/repo/tests/test_committee_internals.cpp" "tests/CMakeFiles/gridbox_tests.dir/test_committee_internals.cpp.o" "gcc" "tests/CMakeFiles/gridbox_tests.dir/test_committee_internals.cpp.o.d"
  "/root/repo/tests/test_costs.cpp" "tests/CMakeFiles/gridbox_tests.dir/test_costs.cpp.o" "gcc" "tests/CMakeFiles/gridbox_tests.dir/test_costs.cpp.o.d"
  "/root/repo/tests/test_fd.cpp" "tests/CMakeFiles/gridbox_tests.dir/test_fd.cpp.o" "gcc" "tests/CMakeFiles/gridbox_tests.dir/test_fd.cpp.o.d"
  "/root/repo/tests/test_fuzz.cpp" "tests/CMakeFiles/gridbox_tests.dir/test_fuzz.cpp.o" "gcc" "tests/CMakeFiles/gridbox_tests.dir/test_fuzz.cpp.o.d"
  "/root/repo/tests/test_gossip.cpp" "tests/CMakeFiles/gridbox_tests.dir/test_gossip.cpp.o" "gcc" "tests/CMakeFiles/gridbox_tests.dir/test_gossip.cpp.o.d"
  "/root/repo/tests/test_gossip_wire.cpp" "tests/CMakeFiles/gridbox_tests.dir/test_gossip_wire.cpp.o" "gcc" "tests/CMakeFiles/gridbox_tests.dir/test_gossip_wire.cpp.o.d"
  "/root/repo/tests/test_hashing.cpp" "tests/CMakeFiles/gridbox_tests.dir/test_hashing.cpp.o" "gcc" "tests/CMakeFiles/gridbox_tests.dir/test_hashing.cpp.o.d"
  "/root/repo/tests/test_hierarchy.cpp" "tests/CMakeFiles/gridbox_tests.dir/test_hierarchy.cpp.o" "gcc" "tests/CMakeFiles/gridbox_tests.dir/test_hierarchy.cpp.o.d"
  "/root/repo/tests/test_initiation.cpp" "tests/CMakeFiles/gridbox_tests.dir/test_initiation.cpp.o" "gcc" "tests/CMakeFiles/gridbox_tests.dir/test_initiation.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/gridbox_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/gridbox_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_membership.cpp" "tests/CMakeFiles/gridbox_tests.dir/test_membership.cpp.o" "gcc" "tests/CMakeFiles/gridbox_tests.dir/test_membership.cpp.o.d"
  "/root/repo/tests/test_net.cpp" "tests/CMakeFiles/gridbox_tests.dir/test_net.cpp.o" "gcc" "tests/CMakeFiles/gridbox_tests.dir/test_net.cpp.o.d"
  "/root/repo/tests/test_periodic.cpp" "tests/CMakeFiles/gridbox_tests.dir/test_periodic.cpp.o" "gcc" "tests/CMakeFiles/gridbox_tests.dir/test_periodic.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/gridbox_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/gridbox_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_regression.cpp" "tests/CMakeFiles/gridbox_tests.dir/test_regression.cpp.o" "gcc" "tests/CMakeFiles/gridbox_tests.dir/test_regression.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/gridbox_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/gridbox_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_runner.cpp" "tests/CMakeFiles/gridbox_tests.dir/test_runner.cpp.o" "gcc" "tests/CMakeFiles/gridbox_tests.dir/test_runner.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/gridbox_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/gridbox_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/gridbox_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/gridbox_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_views.cpp" "tests/CMakeFiles/gridbox_tests.dir/test_views.cpp.o" "gcc" "tests/CMakeFiles/gridbox_tests.dir/test_views.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gridbox.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
