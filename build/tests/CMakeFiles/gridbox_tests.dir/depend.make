# Empty dependencies file for gridbox_tests.
# This may be replaced when dependencies are built.
