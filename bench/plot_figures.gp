# Renders the paper's figures from the CSVs the bench binaries write.
#
#   for b in build/bench/*; do $b; done     # writes bench_results/*.csv
#   gnuplot bench/plot_figures.gp           # writes bench_results/*.png
#
# Axis conventions follow the paper: log-scale incompleteness everywhere,
# log-log where the paper uses it (Figures 4-6, 11).

set datafile separator ','
set terminal pngcairo size 720,540 font 'sans,11'
set grid
set key top right

set output 'bench_results/fig04.png'
set title 'Figure 4: analytic 1-C1(N, K=2, b=4) vs N'
set logscale xy
set xlabel 'group size N'
set ylabel '1 - C1'
plot 'bench_results/fig04_analysis_c1_vs_n.csv' using 1:2 skip 1 \
       with linespoints title '1-C1', \
     '' using 1:3 skip 1 with lines dashtype 2 title '1/N'

set output 'bench_results/fig05.png'
set title 'Figure 5: analytic 1-C1(2000, K, b=4) vs K'
plot 'bench_results/fig05_analysis_c1_vs_k.csv' using 1:2 skip 1 \
       with linespoints title '1-C1'

set output 'bench_results/fig06.png'
set title 'Figure 6: incompleteness vs group size (paper defaults)'
set xlabel 'group size N'
set ylabel 'incompleteness'
plot 'bench_results/fig06_scalability_vs_n.csv' using 1:2 skip 1 \
       with linespoints title 'mean', \
     '' using 1:3 skip 1 with linespoints title 'geometric mean'

unset logscale x
set logscale y

set output 'bench_results/fig07.png'
set title 'Figure 7: incompleteness vs unicast loss'
set xlabel 'unicast message loss probability'
plot 'bench_results/fig07_message_loss.csv' using 1:2 skip 1 \
       with linespoints title 'mean'

set output 'bench_results/fig08.png'
set title 'Figure 8: incompleteness vs gossip rounds per phase'
set xlabel 'gossip rounds per phase'
plot 'bench_results/fig08_gossip_rate.csv' using 1:2 skip 1 \
       with linespoints title 'mean'

set output 'bench_results/fig09.png'
set title 'Figure 9: incompleteness vs partition loss'
set xlabel 'cross-partition loss probability'
plot 'bench_results/fig09_partition.csv' using 1:2 skip 1 \
       with linespoints title 'mean'

set output 'bench_results/fig10.png'
set title 'Figure 10: incompleteness vs member failure rate'
set xlabel 'per-round crash probability pf'
plot 'bench_results/fig10_member_failure.csv' using 1:2 skip 1 \
       with linespoints title 'mean', \
     '' using 1:3 skip 1 with linespoints title 'geometric mean'

set output 'bench_results/fig11.png'
set title 'Figure 11: incompleteness vs N against the 1/N bound'
set logscale xy
set xlabel 'group size N'
plot 'bench_results/fig11_theorem_bound.csv' \
       using 1:($2 > 0 ? $2 : 1e-7) skip 1 with linespoints title 'measured', \
     '' using 1:3 skip 1 with lines dashtype 2 title '1/N'
