// The paper's §7 default simulation setup, shared by the Figure 6-11 benches:
// N = 200, ucastl = 0.25, pf = 0.001, K = 4, M = 2, C = 1.0, fair hash,
// simultaneous start, asynchronous phase bumping, crash without recovery.
#pragma once

#include "src/runner/config.h"

namespace gridbox::bench {

inline runner::ExperimentConfig paper_defaults() {
  runner::ExperimentConfig config;
  config.group_size = 200;
  config.ucast_loss = 0.25;
  config.crash_probability = 0.001;
  config.gossip.k = 4;
  config.gossip.fanout_m = 2;
  config.gossip.round_multiplier_c = 1.0;
  config.gossip.early_bump = true;
  config.seed = 20010701;  // fixed: benches are reproducible runs
  return config;
}

}  // namespace gridbox::bench
