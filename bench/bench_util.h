// Shared output helpers for the figure-reproduction benches.
//
// Every bench prints (a) a header identifying the paper experiment, (b) an
// aligned table with the same series the paper plots, and (c) writes the
// table as CSV under ./bench_results/ for plotting.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <future>
#include <string>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/obs/json.h"
#include "src/runner/sweep.h"
#include "src/runner/table.h"

namespace gridbox::bench {

inline void print_header(const std::string& figure, const std::string& what,
                         const std::string& setup) {
  std::printf("=== %s — %s ===\n", figure.c_str(), what.c_str());
  std::printf("setup: %s\n\n", setup.c_str());
}

/// Parses `--jobs N` from a bench binary's argv. Returns 0 (= auto: the
/// GRIDBOX_JOBS env var, else hardware_concurrency) when absent or
/// malformed — benches never fail on flags, they fall back to auto — but a
/// malformed or missing value warns on stderr so a typo ("--jobs 8x",
/// "--jobs -2") is not silently ignored.
inline std::size_t jobs_from_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") != 0) continue;
    if (i + 1 >= argc) {
      std::fprintf(stderr,
                   "warning: --jobs: missing value, using auto job count\n");
      return 0;
    }
    const char* value = argv[i + 1];
    char* end = nullptr;
    const long parsed = std::strtol(value, &end, 10);
    if (end == value || *end != '\0' || parsed <= 0) {
      std::fprintf(
          stderr,
          "warning: --jobs: not a positive integer: '%s', using auto job "
          "count\n",
          value);
      return 0;
    }
    return static_cast<std::size_t>(parsed);
  }
  return 0;
}

/// Chaos identification for CSV cells: the spec on one line ('\n' -> ';'),
/// or "-" when the run is chaos-free. Never empty, so columns stay aligned.
inline std::string chaos_id(const std::string& chaos_spec) {
  if (chaos_spec.empty()) return "-";
  std::string id = chaos_spec;
  while (!id.empty() && id.back() == '\n') id.pop_back();
  for (char& c : id) {
    if (c == '\n') c = ';';
  }
  return id;
}

/// Appends the reproducibility identification columns (seed / jobs / chaos)
/// every bench CSV row must carry. `jobs` is resolved so the CSV records
/// what actually ran, not the auto placeholder.
inline void append_repro(runner::Table& table, std::uint64_t seed,
                         std::size_t jobs, const std::string& chaos_spec) {
  table.add_constant_column("seed", std::to_string(seed));
  table.add_constant_column(
      "jobs", std::to_string(common::ThreadPool::resolve_jobs(jobs)));
  table.add_constant_column("chaos", chaos_id(chaos_spec));
}

/// The same columns for analysis-only benches (closed-form tables with no
/// simulated runs): all "-", keeping every emitted CSV schema-uniform.
inline void append_repro_analysis(runner::Table& table) {
  table.add_constant_column("seed", "-");
  table.add_constant_column("jobs", "-");
  table.add_constant_column("chaos", "-");
}

/// Standard rendering of a sweep: one row per x with the paper's y metric
/// (incompleteness) plus context columns. The trailing wall_s/jobs columns
/// are per-sweep totals (repeated on every row so they survive into the
/// CSV), tracking the harness's throughput over time.
inline runner::Table sweep_table(const runner::SweepResult& sweep) {
  runner::Table table({sweep.x_label, "incompleteness", "geomean", "min",
                       "max", "completeness", "msgs/run", "rounds",
                       "eff_b", "wall_s", "jobs"});
  for (const auto& p : sweep.points) {
    table.add_row({runner::Table::num(p.x),
                   runner::Table::num(p.incompleteness.mean),
                   runner::Table::num(p.incompleteness_geomean),
                   runner::Table::num(p.incompleteness.min),
                   runner::Table::num(p.incompleteness.max),
                   runner::Table::num(p.completeness.mean),
                   runner::Table::num(p.messages.mean, 0),
                   runner::Table::num(p.rounds.mean, 1),
                   runner::Table::num(p.mean_effective_b, 2),
                   runner::Table::num(sweep.wall_seconds, 3),
                   std::to_string(sweep.jobs_used)});
  }
  // Reproducibility identification (jobs is already a column above).
  table.add_constant_column("seed", std::to_string(sweep.base_seed));
  table.add_constant_column("chaos", chaos_id(sweep.chaos_spec));
  return table;
}

/// One-line sweep cost report (the same numbers as the wall_s/jobs columns).
inline void print_sweep_meta(const runner::SweepResult& sweep) {
  std::printf("[sweep] %zu point(s): wall-clock %.3f s on %zu job(s)\n",
              sweep.points.size(), sweep.wall_seconds, sweep.jobs_used);
}

/// Fans `count` independent tasks (task(i) -> T) across a thread pool and
/// returns the results in index order, so callers reduce serially and the
/// outcome is identical for every jobs value. `jobs` = 0 means auto
/// (GRIDBOX_JOBS / hardware_concurrency). Benches whose run loops don't go
/// through run_sweep use this to honour --jobs the same way sweeps do.
template <typename T, typename Task>
std::vector<T> run_indexed(std::size_t count, std::size_t jobs,
                           const Task& task) {
  std::vector<T> results(count);
  jobs = common::ThreadPool::resolve_jobs(jobs);
  if (jobs <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) results[i] = task(i);
    return results;
  }
  common::ThreadPool pool(jobs);
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futures.push_back(pool.submit([&task, &results, i] {
      results[i] = task(i);
    }));
  }
  for (auto& future : futures) future.get();
  return results;
}

/// The table as a machine-readable JSON document (schema-versioned like the
/// BENCH files): {"schema", "name", "columns", "rows"} with all cells as
/// strings, exactly as the CSV renders them.
inline std::string table_to_json(const runner::Table& table,
                                 const std::string& name) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("schema").value("gridbox-bench-table/1");
  w.key("name").value(name);
  w.key("columns").begin_array();
  for (const std::string& column : table.header()) w.value(column);
  w.end_array();
  w.key("rows").begin_array();
  for (std::size_t i = 0; i < table.rows(); ++i) {
    w.begin_array();
    for (const std::string& cell : table.row(i)) w.value(cell);
    w.end_array();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

inline void emit(const runner::Table& table, const std::string& csv_name) {
  std::fputs(table.to_text().c_str(), stdout);
  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  if (!ec) {
    const std::string path = "bench_results/" + csv_name + ".csv";
    if (table.write_csv(path)) {
      std::printf("\n[csv] %s\n", path.c_str());
    }
    // The same rows as JSON, for tooling that would rather not parse CSV.
    const std::string json_path = "bench_results/" + csv_name + ".json";
    if (std::ofstream out(json_path, std::ios::binary); out.good()) {
      out << table_to_json(table, csv_name) << '\n';
      if (out.good()) std::printf("[json] %s\n", json_path.c_str());
    }
  }
  std::printf("\n");
}

/// Audit-violation guard: a figure regenerated by a run that double-counted
/// votes would be meaningless.
inline void check_audits(const runner::SweepResult& sweep) {
  for (const auto& p : sweep.points) {
    if (p.audit_violations != 0) {
      std::printf("WARNING: %llu audit violations at x=%g\n",
                  static_cast<unsigned long long>(p.audit_violations), p.x);
    }
  }
}

}  // namespace gridbox::bench
