// Ablation 1 (DESIGN.md §5.1): synchronous phases (the analysis' model)
// vs asynchronous early bumping (the simulated protocol, step 2(b)), and the
// effect of final-phase lingering.
//
// The paper analyzes the synchronous protocol but simulates the asynchronous
// one and reports it does at least as well. This bench shows why lingering
// matters: with terminate-on-saturation, finished members stop feeding the
// last phase's epidemic and stragglers never catch up.
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/fig_common.h"
#include "src/runner/sweep.h"

int main(int argc, char** argv) {
  using namespace gridbox;
  bench::print_header("Ablation: sync vs async",
                      "phase-advance policy vs incompleteness",
                      "N=200, K=4, M=2, ucastl=0.25, pf=0.001; sweep C");

  const std::size_t jobs = bench::jobs_from_args(argc, argv);

  struct Variant {
    const char* name;
    bool early_bump;
    bool linger;
  };
  const Variant variants[] = {
      {"synchronous (analysis model)", false, true},
      {"async + linger (default)", true, true},
      {"async, terminate on saturation", true, false},
  };

  runner::Table table({"variant", "C", "incompleteness", "geomean",
                       "mean rounds"});
  for (const Variant& v : variants) {
    runner::ExperimentConfig base = bench::paper_defaults();
    base.jobs = jobs;
    base.gossip.early_bump = v.early_bump;
    base.gossip.final_phase_linger = v.linger;
    const runner::SweepResult sweep = runner::run_sweep(
        base, "C", {1, 2, 3},
        [](runner::ExperimentConfig& c, double x) {
          c.gossip.round_multiplier_c = x;
        },
        16);
    bench::check_audits(sweep);
    for (const auto& p : sweep.points) {
      table.add_row({v.name, runner::Table::num(p.x, 0),
                     runner::Table::num(p.incompleteness.mean),
                     runner::Table::num(p.incompleteness_geomean),
                     runner::Table::num(p.rounds.mean, 1)});
    }
  }
  bench::append_repro(table, bench::paper_defaults().seed, jobs, "");
  bench::emit(table, "abl_sync_vs_async");
  std::printf(
      "takeaway: async+linger matches or beats synchronous at every C; "
      "terminate-on-saturation plateaus regardless of C.\n");
  return 0;
}
