// §6.2's hidden cost, measured: how long does *accurate* failure detection
// take, compared with simply running the whole Hierarchical Gossiping
// aggregation?
//
// The leader-election approach needs to detect and replace failed leaders;
// the paper argues this "typically takes at least O(logN) time" and requires
// accuracy the network cannot cheaply provide. This bench runs the
// gossip-style failure detector (reference [16]) at timeouts tuned to stay
// accurate under each loss rate and reports group-wide detection latency —
// side by side with the full end-to-end runtime of the aggregation protocol
// itself. Detection alone costs a comparable number of rounds, which is why
// the one-shot protocol is designed to need no failure detection at all.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "bench/fig_common.h"
#include "src/protocols/fd/gossip_fd.h"
#include "src/runner/experiment.h"
#include "tests/testing_world.h"

namespace {

using namespace gridbox;

struct FdResult {
  double mean_rounds = 0.0;   // crash -> suspected, averaged over detectors
  double fp_rate = 0.0;       // live members wrongly suspected
};

/// Per-run partial sums, reduced serially after the parallel fan-out.
struct FdRunPartial {
  double latency_sum = 0.0;
  std::size_t latency_n = 0;
  std::size_t false_positives = 0;
  std::size_t checks = 0;
};

FdRunPartial measure_fd_run(double loss, std::uint32_t fail_rounds,
                            std::size_t run) {
  FdRunPartial partial;
  testing::WorldOptions options;
  options.group_size = 128;
  options.loss = loss;
  options.audit = false;
  options.seed = 4200 + static_cast<std::uint64_t>(run);
  testing::World world(options);
  protocols::fd::FdConfig config;
  config.fail_rounds = fail_rounds;
  std::vector<std::unique_ptr<protocols::fd::GossipFailureDetector>> fleet;
  const membership::View view = world.group().full_view();
  for (const MemberId m : world.group().members()) {
    fleet.push_back(std::make_unique<protocols::fd::GossipFailureDetector>(
        m, view, world.simulator(), world.network(),
        world.rng().derive(0xFD + m.value()), config));
    fleet.back()->set_liveness(
        [&world](MemberId id) { return world.group().is_alive(id); });
    world.network().attach(m, *fleet.back());
  }
  for (auto& d : fleet) d->start(SimTime::zero());
  // Crash one member at round ~30.
  const std::uint64_t crash_round = 30;
  world.simulator().schedule_at(SimTime::millis(10 * crash_round), [&world] {
    world.group().crash(MemberId{11});
  });
  world.simulator().run_until(SimTime::seconds(10));

  for (const auto& d : fleet) {
    if (d->self() == MemberId{11}) continue;
    const auto since = d->suspected_since(MemberId{11});
    if (since.has_value()) {
      partial.latency_sum += static_cast<double>(*since - crash_round);
      ++partial.latency_n;
    }
    partial.false_positives += d->suspected().size() -
                               (d->suspects(MemberId{11}) ? 1 : 0);
    partial.checks += 127;
  }
  return partial;
}

FdResult measure_fd(double loss, std::uint32_t fail_rounds, std::size_t runs,
                    std::size_t jobs) {
  const std::vector<FdRunPartial> partials =
      bench::run_indexed<FdRunPartial>(runs, jobs, [&](std::size_t run) {
        return measure_fd_run(loss, fail_rounds, run);
      });
  double latency_sum = 0.0;
  std::size_t latency_n = 0;
  std::size_t false_positives = 0;
  std::size_t checks = 0;
  for (const FdRunPartial& p : partials) {
    latency_sum += p.latency_sum;
    latency_n += p.latency_n;
    false_positives += p.false_positives;
    checks += p.checks;
  }
  FdResult result;
  result.mean_rounds = latency_n > 0 ? latency_sum / static_cast<double>(latency_n) : -1.0;
  result.fp_rate =
      checks > 0 ? static_cast<double>(false_positives) /
                       static_cast<double>(checks)
                 : 0.0;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gridbox;
  bench::print_header(
      "Section 6.2 cost", "failure-detection latency vs aggregation runtime",
      "N=128; FD: fanout 2, 16 entries/msg; timeout tuned per loss rate");

  const std::size_t jobs = bench::jobs_from_args(argc, argv);

  // The aggregation protocol's full runtime at the same N (for reference).
  runner::ExperimentConfig agg = bench::paper_defaults();
  agg.group_size = 128;
  agg.crash_probability = 0.0;
  const runner::RunResult agg_run = runner::run_experiment(agg);

  runner::Table table({"ucastl", "FD timeout (rounds)",
                       "detect latency (rounds)", "false-positive rate"});
  const struct {
    double loss;
    std::uint32_t fail_rounds;
  } kCells[] = {{0.0, 30}, {0.25, 40}, {0.5, 60}};
  for (const auto& cell : kCells) {
    const FdResult r = measure_fd(cell.loss, cell.fail_rounds, 6, jobs);
    table.add_row({runner::Table::num(cell.loss, 2),
                   std::to_string(cell.fail_rounds),
                   runner::Table::num(r.mean_rounds, 1),
                   runner::Table::num(r.fp_rate)});
  }
  bench::append_repro(table, 4200, jobs, "");
  bench::emit(table, "cmp_fd_latency");

  std::printf(
      "reference: the complete hierarchical-gossip aggregation at N=128 "
      "takes %llu rounds end-to-end.\n"
      "takeaway: merely *detecting* one failure accurately costs a similar "
      "order of rounds (and the timeout must grow with loss) — §6.2's case "
      "against failure-detector-based aggregation, quantified.\n",
      static_cast<unsigned long long>(agg_run.measurement.max_rounds));
  return 0;
}
