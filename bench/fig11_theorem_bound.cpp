// Figure 11 (Scalability 2): measured incompleteness vs N with C=1.4 and
// ucastl = pf = 0 (b evaluates to ~1.0), compared against the analytic 1/N
// limit of Theorem 1. Paper: "although this does not satisfy the conditions
// for Theorem 1, the incompleteness is bounded by 1/N" — the bound is
// pessimistic.
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/fig_common.h"
#include "src/runner/sweep.h"

int main(int argc, char** argv) {
  using namespace gridbox;
  bench::print_header("Figure 11", "incompleteness vs N against the 1/N bound",
                      "K=4, M=2, C=1.4, ucastl=pf=0 (b ~ 1.0)");

  runner::ExperimentConfig base = bench::paper_defaults();
  base.jobs = bench::jobs_from_args(argc, argv);
  base.ucast_loss = 0.0;
  base.crash_probability = 0.0;
  base.gossip.round_multiplier_c = 1.4;

  const runner::SweepResult sweep = runner::run_sweep(
      base, "N", {300, 400, 500, 600},
      [](runner::ExperimentConfig& c, double x) {
        c.group_size = static_cast<std::size_t>(x);
      },
      24);

  runner::Table table({"N", "incompleteness", "1/N", "bounded by 1/N?",
                       "eff_b"});
  bool all_bounded = true;
  for (const auto& p : sweep.points) {
    const double inv_n = 1.0 / p.x;
    const bool ok = p.incompleteness.mean <= inv_n;
    all_bounded = all_bounded && ok;
    table.add_row({runner::Table::num(p.x, 0),
                   runner::Table::num(p.incompleteness.mean),
                   runner::Table::num(inv_n), ok ? "yes" : "NO",
                   runner::Table::num(p.mean_effective_b, 2)});
  }
  bench::check_audits(sweep);
  bench::print_sweep_meta(sweep);
  bench::append_repro(table, sweep.base_seed, sweep.jobs_used,
                      sweep.chaos_spec);
  bench::emit(table, "fig11_theorem_bound");

  std::printf("shape check: incompleteness <= 1/N at every N: %s "
              "(the paper's Figure 11 result)\n",
              all_bounded ? "yes" : "NO");
  return 0;
}
