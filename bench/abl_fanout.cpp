// Ablation 3 (DESIGN.md §5.2): gossip fanout M and value-selection policy.
//
// The paper fixes M=2 and "one uniformly random known value per message".
// This bench measures (a) the fanout/budget trade-off at a fixed message
// budget, and (b) whether smarter value selection (rarest-first, round-robin)
// buys anything over the paper's random choice.
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/fig_common.h"
#include "src/runner/sweep.h"

int main(int argc, char** argv) {
  using namespace gridbox;
  bench::print_header("Ablation: fanout and value policy",
                      "incompleteness vs M and vs value-selection policy",
                      "N=200, K=4, ucastl=0.25, pf=0.001, C=1.0");

  const std::size_t jobs = bench::jobs_from_args(argc, argv);

  // (a) Fanout sweep. Note rounds/phase = ceil(C*log_M N) shrinks as M
  // grows, so the per-phase message budget M*rounds is roughly constant:
  // this isolates the effect of spraying wider per round.
  runner::ExperimentConfig base = bench::paper_defaults();
  base.jobs = jobs;
  const runner::SweepResult fanout = runner::run_sweep(
      base, "M", {1, 2, 4, 8},
      [](runner::ExperimentConfig& c, double x) {
        c.gossip.fanout_m = static_cast<std::uint32_t>(x);
      },
      16);
  bench::check_audits(fanout);
  bench::print_sweep_meta(fanout);
  bench::emit(bench::sweep_table(fanout), "abl_fanout_m");

  // (b) Value policy at the default M=2.
  runner::Table policies({"value policy", "incompleteness", "geomean"});
  using protocols::gossip::ValuePolicy;
  const struct {
    const char* name;
    ValuePolicy policy;
  } kPolicies[] = {
      {"random single (paper)", ValuePolicy::kRandomSingle},
      {"rarest-first", ValuePolicy::kRarestFirst},
      {"round-robin", ValuePolicy::kRoundRobin},
  };
  for (const auto& entry : kPolicies) {
    runner::ExperimentConfig config = bench::paper_defaults();
    config.jobs = jobs;
    config.gossip.value_policy = entry.policy;
    const runner::SweepResult one = runner::run_sweep(
        config, "x", {0}, [](runner::ExperimentConfig&, double) {}, 24);
    policies.add_row(
        {entry.name,
         runner::Table::num(one.points[0].incompleteness.mean),
         runner::Table::num(one.points[0].incompleteness_geomean)});
  }
  bench::append_repro(policies, bench::paper_defaults().seed, jobs, "");
  bench::emit(policies, "abl_fanout_policy");

  std::printf(
      "takeaway: at a fixed budget, moderate fanout (M=2..4) is the sweet "
      "spot; value-selection policy is a second-order effect, supporting "
      "the paper's choice of the simplest rule.\n");
  return 0;
}
