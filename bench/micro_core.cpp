// Micro-benchmarks (google-benchmark) for the hot paths of the simulator and
// protocol substrates: RNG, hashing, partial merges, event queue, address
// arithmetic, peer filtering, and an end-to-end small run.
#include <benchmark/benchmark.h>

#include "src/agg/aggregate.h"
#include "src/agg/codec.h"
#include "src/common/rng.h"
#include "src/hashing/fair_hash.h"
#include "src/hashing/topo_hash.h"
#include "src/hierarchy/hierarchy.h"
#include "src/membership/view.h"
#include "src/runner/experiment.h"
#include "src/sim/event_queue.h"

namespace {

using namespace gridbox;

void BM_Xoshiro256Next(benchmark::State& state) {
  Xoshiro256 gen(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.next());
  }
}
BENCHMARK(BM_Xoshiro256Next);

void BM_RngUniformInt(benchmark::State& state) {
  Rng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.uniform_int(0, 999));
  }
}
BENCHMARK(BM_RngUniformInt);

void BM_RngSampleIndices(benchmark::State& state) {
  Rng rng(42);
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.sample_indices(n, 2));
  }
}
BENCHMARK(BM_RngSampleIndices)->Arg(16)->Arg(256)->Arg(4096);

void BM_FairHash(benchmark::State& state) {
  hashing::FairHash hash(7);
  std::uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash.unit_value(MemberId{i++}));
  }
}
BENCHMARK(BM_FairHash);

void BM_MortonKey(benchmark::State& state) {
  double x = 0.1;
  for (auto _ : state) {
    x = x < 0.9 ? x + 1e-7 : 0.1;
    benchmark::DoNotOptimize(hashing::morton_key(Position{x, 1.0 - x}));
  }
}
BENCHMARK(BM_MortonKey);

void BM_PartialMerge(benchmark::State& state) {
  agg::Partial a = agg::Partial::from_vote(1.0);
  const agg::Partial b = agg::Partial::from_vote(2.0);
  for (auto _ : state) {
    a.merge(b);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_PartialMerge);

void BM_PartialCodecRoundTrip(benchmark::State& state) {
  const agg::Partial p = agg::Partial::from_vote(3.5);
  for (auto _ : state) {
    agg::ByteWriter w;
    agg::write_partial(w, p);
    const auto bytes = w.take();
    agg::ByteReader r(bytes);
    benchmark::DoNotOptimize(agg::read_partial(r));
  }
}
BENCHMARK(BM_PartialCodecRoundTrip);

void BM_EventQueuePushPop(benchmark::State& state) {
  sim::EventQueue queue;
  std::uint64_t t = 0;
  for (auto _ : state) {
    queue.push(SimTime{static_cast<SimTime::underlying>(t % 1000)}, [] {});
    ++t;
    if (queue.size() > 1024) {
      benchmark::DoNotOptimize(queue.pop());
    }
  }
}
BENCHMARK(BM_EventQueuePushPop);

void BM_HierarchyBoxOf(benchmark::State& state) {
  hashing::FairHash hash(3);
  hierarchy::GridBoxHierarchy hier(4096, 4, hash);
  std::uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hier.box_of(MemberId{i++ % 4096}));
  }
}
BENCHMARK(BM_HierarchyBoxOf);

void BM_HierarchyPhasePeers(benchmark::State& state) {
  hashing::FairHash hash(3);
  const auto n = static_cast<std::size_t>(state.range(0));
  hierarchy::GridBoxHierarchy hier(n, 4, hash);
  const membership::View view = membership::complete_view(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hier.phase_peers(view.members(), MemberId{0}, 2));
  }
}
BENCHMARK(BM_HierarchyPhasePeers)->Arg(256)->Arg(2048);

void BM_EndToEndRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    runner::ExperimentConfig config;
    config.group_size = n;
    config.ucast_loss = 0.25;
    config.crash_probability = 0.001;
    config.seed = seed++;
    benchmark::DoNotOptimize(runner::run_experiment(config));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EndToEndRun)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
