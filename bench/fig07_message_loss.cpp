// Figure 7 (Fault-tolerance 1): incompleteness vs unicast message loss
// probability ucastl. Paper: "incompleteness falls exponentially fast with
// decreasing unicast message loss probability."
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/fig_common.h"
#include "src/runner/sweep.h"

int main(int argc, char** argv) {
  using namespace gridbox;
  bench::print_header("Figure 7", "incompleteness vs unicast loss ucastl",
                      "N=200, K=4, M=2, C=1.0, pf=0.001");

  runner::ExperimentConfig base = bench::paper_defaults();
  base.jobs = bench::jobs_from_args(argc, argv);
  const runner::SweepResult sweep = runner::run_sweep(
      base, "ucastl", {0.40, 0.45, 0.50, 0.55, 0.60, 0.65, 0.70},
      [](runner::ExperimentConfig& c, double x) { c.ucast_loss = x; }, 16);
  bench::check_audits(sweep);
  bench::print_sweep_meta(sweep);
  bench::emit(bench::sweep_table(sweep), "fig07_message_loss");

  // Exponential fall: log-incompleteness roughly linear in ucastl, so the
  // ratio between successive points should be roughly constant and > 1.
  bool monotone = true;
  for (std::size_t i = 1; i < sweep.points.size(); ++i) {
    if (sweep.points[i].incompleteness_geomean <
        sweep.points[i - 1].incompleteness_geomean) {
      monotone = false;
    }
  }
  const double span = sweep.points.back().incompleteness_geomean /
                      sweep.points.front().incompleteness_geomean;
  std::printf(
      "shape check: incompleteness rises monotonically with loss: %s; "
      "0.40 -> 0.70 grows %.0fx (exponential regime)\n",
      monotone ? "yes" : "NO", span);
  return 0;
}
