// Sections 4-6: the paper's qualitative comparison of approaches, measured.
//
//   - fully distributed (§4): O(N^2) messages, O(N) time, completeness
//     tracks the raw loss rate;
//   - centralized (§5): O(N) messages but leader implosion and catastrophic
//     leader crashes;
//   - leader election on the hierarchy (§6.2): near-optimal cost, but a
//     height-i leader crash silently loses ~K^i votes;
//   - K'-committee (§6.2): tolerates K'-1 crashes per subtree at higher cost;
//   - hierarchical gossiping (§6.3): O(N log^2 N) messages, O(log^2 N) time,
//     graceful degradation under loss and crashes.
//
// Three regimes: clean network, lossy network, lossy + crashy.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "bench/fig_common.h"
#include "src/runner/experiment.h"

namespace {

using namespace gridbox;

struct Regime {
  const char* name;
  double loss;
  double pf;
};

struct Row {
  double mean_completeness = 0.0;
  double worst_run = 1.0;
  double messages = 0.0;
  double rounds = 0.0;
};

Row measure(runner::ProtocolKind kind, const Regime& regime, std::size_t n,
            std::size_t runs, std::size_t jobs) {
  const std::vector<runner::RunResult> results =
      bench::run_indexed<runner::RunResult>(runs, jobs, [&](std::size_t r) {
        runner::ExperimentConfig config = bench::paper_defaults();
        config.protocol = kind;
        config.group_size = n;
        config.ucast_loss = regime.loss;
        config.crash_probability = regime.pf;
        config.committee.committee_size =
            kind == runner::ProtocolKind::kCommittee ? 3 : 1;
        config.seed = 7000 + static_cast<std::uint64_t>(r);
        return runner::run_experiment(config);
      });
  Row row;
  for (const runner::RunResult& result : results) {
    row.mean_completeness += result.measurement.mean_completeness;
    row.worst_run =
        std::min(row.worst_run, result.measurement.mean_completeness);
    row.messages += static_cast<double>(result.measurement.network_messages);
    row.rounds += static_cast<double>(result.measurement.max_rounds);
  }
  row.mean_completeness /= static_cast<double>(runs);
  row.messages /= static_cast<double>(runs);
  row.rounds /= static_cast<double>(runs);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gridbox;
  bench::print_header("Sections 4-6", "baseline comparison",
                      "N=256, K=4, M=2, C=1.0; 12 runs per cell; "
                      "'worst' is the worst run's mean completeness");

  const std::size_t jobs = bench::jobs_from_args(argc, argv);

  const std::vector<Regime> regimes = {
      {"clean", 0.0, 0.0},
      {"lossy(0.25)", 0.25, 0.0},
      {"lossy+crashy(0.25,0.005)", 0.25, 0.005},
  };
  const std::vector<runner::ProtocolKind> kinds = {
      runner::ProtocolKind::kFullyDistributed,
      runner::ProtocolKind::kCentralized,
      runner::ProtocolKind::kLeaderElection,
      runner::ProtocolKind::kCommittee,
      runner::ProtocolKind::kHierGossip,
  };

  runner::Table table({"regime", "protocol", "completeness", "worst run",
                       "msgs/run", "rounds"});
  double gossip_worst = 1.0;
  double leader_worst = 1.0;
  for (const Regime& regime : regimes) {
    for (const runner::ProtocolKind kind : kinds) {
      const Row row = measure(kind, regime, 256, 12, jobs);
      table.add_row({regime.name, runner::to_string(kind),
                     runner::Table::num(row.mean_completeness),
                     runner::Table::num(row.worst_run),
                     runner::Table::num(row.messages, 0),
                     runner::Table::num(row.rounds, 1)});
      if (regime.pf > 0.0) {
        if (kind == runner::ProtocolKind::kHierGossip) {
          gossip_worst = row.worst_run;
        }
        if (kind == runner::ProtocolKind::kLeaderElection) {
          leader_worst = row.worst_run;
        }
      }
    }
  }
  bench::append_repro(table, 7000, jobs, "");
  bench::emit(table, "cmp_baselines");

  std::printf(
      "who wins: under crashes, hier-gossip's worst run (%.3f) vs single "
      "leader's worst run (%.3f) — %s\n"
      "cost: all-to-all pays ~N^2 messages; gossip pays ~N*log^2(N); "
      "centralized/leader pay ~N but fail badly.\n",
      gossip_worst, leader_worst,
      gossip_worst > leader_worst ? "gossip degrades gracefully"
                                  : "UNEXPECTED");
  return 0;
}
