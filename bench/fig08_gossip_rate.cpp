// Figure 8 (Effect of gossip rate): incompleteness vs gossip rounds per
// phase, x = 1..5 exactly as in the paper. Paper: "incompleteness falls
// exponentially with increasing gossip rate / gossip round length."
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/fig_common.h"
#include "src/runner/sweep.h"

int main(int argc, char** argv) {
  using namespace gridbox;
  bench::print_header("Figure 8", "incompleteness vs gossip rounds per phase",
                      "N=200, K=4, M=2, ucastl=0.25, pf=0.001; x = rounds "
                      "per phase (paper's axis)");

  runner::ExperimentConfig base = bench::paper_defaults();
  base.jobs = bench::jobs_from_args(argc, argv);
  const runner::SweepResult sweep = runner::run_sweep(
      base, "rounds/phase", {1, 2, 3, 4, 5},
      [](runner::ExperimentConfig& c, double x) {
        c.gossip.rounds_per_phase_override = static_cast<std::uint64_t>(x);
      },
      24);
  bench::check_audits(sweep);
  bench::print_sweep_meta(sweep);
  bench::emit(bench::sweep_table(sweep), "fig08_gossip_rate");

  bool falling = true;
  for (std::size_t i = 1; i < sweep.points.size(); ++i) {
    if (sweep.points[i].incompleteness.mean >
        sweep.points[i - 1].incompleteness.mean) {
      falling = false;
    }
  }
  const double span =
      sweep.points.front().incompleteness.mean /
      std::max(sweep.points.back().incompleteness.mean, 1e-12);
  std::printf(
      "shape check: incompleteness falls monotonically with rounds/phase: "
      "%s; 1 -> 5 rounds shrinks %.0fx (exponential regime)\n",
      falling ? "yes" : "NO", span);
  return 0;
}
