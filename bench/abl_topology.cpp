// Ablation 2 (DESIGN.md §5.3): fair vs topologically aware hash.
//
// §6.1: a topologically aware H "would result in a reduction of the load
// ... on links in a sparsely connected network", because the O(N) messages
// of early phases stay between nearby members. We measure the mean Euclidean
// link distance per message (positions in the unit square) and confirm
// completeness is unaffected.
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/fig_common.h"
#include "src/runner/experiment.h"

int main(int argc, char** argv) {
  using namespace gridbox;
  bench::print_header("Ablation: topology-aware hash",
                      "mean link distance per message, fair vs topo hash",
                      "N=512, K=4, M=2, C=2, lossless; members scattered "
                      "uniformly in the unit square");

  const std::size_t jobs = bench::jobs_from_args(argc, argv);

  runner::Table table(
      {"hash", "mean link distance", "completeness", "msgs/run"});
  double fair_distance = 0.0;
  double topo_distance = 0.0;
  for (const bool topo : {false, true}) {
    constexpr std::size_t kRuns = 8;
    const std::vector<runner::RunResult> results =
        bench::run_indexed<runner::RunResult>(kRuns, jobs, [&](std::size_t r) {
          runner::ExperimentConfig config = bench::paper_defaults();
          config.group_size = 512;
          config.ucast_loss = 0.0;
          config.crash_probability = 0.0;
          config.gossip.round_multiplier_c = 2.0;
          config.assign_positions = true;
          config.hash = topo ? runner::HashKind::kTopoAware
                             : runner::HashKind::kFair;
          config.seed = 9000 + static_cast<std::uint64_t>(r);
          return runner::run_experiment(config);
        });
    double distance = 0.0;
    double completeness = 0.0;
    double messages = 0.0;
    for (const runner::RunResult& result : results) {
      distance += result.mean_link_distance;
      completeness += result.measurement.mean_completeness;
      messages += static_cast<double>(result.measurement.network_messages);
    }
    distance /= kRuns;
    completeness /= kRuns;
    messages /= kRuns;
    (topo ? topo_distance : fair_distance) = distance;
    table.add_row({topo ? "topo-aware (Morton, calibrated)" : "fair (random)",
                   runner::Table::num(distance, 4),
                   runner::Table::num(completeness),
                   runner::Table::num(messages, 0)});
  }
  bench::append_repro(table, 9000, jobs, "");
  bench::emit(table, "abl_topology");

  std::printf(
      "takeaway: the topo-aware hash cuts mean per-message link distance "
      "%.1fx (%.4f -> %.4f) at equal completeness — early phases stay on "
      "short links, as §6.1 argues.\n",
      fair_distance / topo_distance, fair_distance, topo_distance);
  return 0;
}
