// Figure 9 (Fault-tolerance 2): incompleteness vs partition message loss
// probability partl. The group is split into two halves; cross-partition
// messages drop with probability partl, intra-partition with ucastl.
// Paper: "incompleteness degrades gracefully due to the effect of soft
// network partitions induced by correlated message losses."
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/fig_common.h"
#include "src/runner/sweep.h"

int main(int argc, char** argv) {
  using namespace gridbox;
  bench::print_header("Figure 9", "incompleteness vs partition loss partl",
                      "N=200, K=4, M=2, C=1.0, ucastl=0.25, pf=0.001; "
                      "half/half split");

  runner::ExperimentConfig base = bench::paper_defaults();
  base.jobs = bench::jobs_from_args(argc, argv);
  const runner::SweepResult sweep = runner::run_sweep(
      base, "partl", {0.50, 0.55, 0.60, 0.65, 0.70},
      [](runner::ExperimentConfig& c, double x) { c.partition_loss = x; },
      16);
  bench::check_audits(sweep);
  bench::print_sweep_meta(sweep);
  bench::emit(bench::sweep_table(sweep), "fig09_partition");

  // Graceful: monotone-ish growth, no collapse to total incompleteness.
  const double worst = sweep.points.back().incompleteness.max;
  std::printf(
      "shape check: worst-case incompleteness at partl=0.70 is %.3f — "
      "%s (graceful: each half still aggregates itself, so far below 1.0)\n",
      worst, worst < 0.9 ? "graceful" : "COLLAPSED");
  return 0;
}
