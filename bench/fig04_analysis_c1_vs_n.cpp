// Figure 4: -log(1 − C1(N, K=2, b=4)) vs log(N) — the first-phase analytic
// incompleteness falls at least as fast as 1/N (Postulate 1).
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/analysis/completeness.h"

int main() {
  using namespace gridbox;
  bench::print_header("Figure 4", "analytic first-phase incompleteness vs N",
                      "K=2, b=4; overlay: analytic 1/N (paper's reference)");

  runner::Table table({"N", "1-C1(N,K=2,b=4)", "1/N", "ratio (1/N)/(1-C1)",
                       "-log10(1-C1)"});
  double prev = 0.0;
  bool monotone = true;
  for (const std::size_t n : {1000u, 1414u, 2000u, 2828u, 4000u, 5657u, 8000u}) {
    const double q = analysis::first_phase_incompleteness(n, 2, 4.0);
    const double inv_n = 1.0 / static_cast<double>(n);
    table.add_row({runner::Table::num(static_cast<double>(n), 0),
                   runner::Table::num(q), runner::Table::num(inv_n),
                   runner::Table::num(inv_n / q, 1),
                   runner::Table::num(-std::log10(q), 2)});
    if (prev != 0.0 && q > prev) monotone = false;
    prev = q;
  }
  bench::append_repro_analysis(table);
  bench::emit(table, "fig04_analysis_c1_vs_n");

  std::printf("shape check: incompleteness monotonically falls with N: %s\n",
              monotone ? "yes" : "NO");
  std::printf(
      "paper's takeaway (Postulate 1): C1 >= 1 - 1/N for K>=2, b>=4 — "
      "every ratio above should be >= 1.\n");
  return 0;
}
