// Figure 5: 1 − C1(N=2000, K, b=4) vs K — completeness is monotonically
// increasing with K (bigger grid boxes spread votes through more gossipers).
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/analysis/completeness.h"

int main() {
  using namespace gridbox;
  bench::print_header("Figure 5", "analytic first-phase incompleteness vs K",
                      "N=2000, b=4; log-log axes in the paper");

  runner::Table table({"K", "1-C1(2000,K,4)", "-log10(1-C1)"});
  double prev = 1.0;
  bool monotone = true;
  for (const std::uint32_t k : {4u, 6u, 8u, 11u, 16u, 23u, 32u}) {
    const double q = analysis::first_phase_incompleteness(2000, k, 4.0);
    table.add_row({runner::Table::num(static_cast<double>(k), 0),
                   runner::Table::num(q),
                   runner::Table::num(-std::log10(q), 2)});
    if (q > prev) monotone = false;
    prev = q;
  }
  bench::append_repro_analysis(table);
  bench::emit(table, "fig05_analysis_c1_vs_k");

  std::printf(
      "shape check: incompleteness monotonically falls with K: %s "
      "(paper: \"completeness is monotonically increasing with K\")\n",
      monotone ? "yes" : "NO");
  return 0;
}
