// Figure 6 (Scalability 1): measured incompleteness vs group size N at the
// §7 defaults. Paper: "the protocol's completeness scales well at high
// values of group size N" — incompleteness does not grow as N rises into
// the thousands, even at low gossip rates where Theorem 1 does not apply.
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/fig_common.h"
#include "src/runner/sweep.h"

int main(int argc, char** argv) {
  using namespace gridbox;
  bench::print_header(
      "Figure 6", "incompleteness vs group size N",
      "defaults: ucastl=0.25, pf=0.001, K=4, M=2, C=1.0 (b ~ 0.75)");

  runner::ExperimentConfig base = bench::paper_defaults();
  base.jobs = bench::jobs_from_args(argc, argv);
  const runner::SweepResult sweep = runner::run_sweep(
      base, "N", {200, 400, 800, 1600, 3200},
      [](runner::ExperimentConfig& c, double x) {
        c.group_size = static_cast<std::size_t>(x);
      },
      8);
  bench::check_audits(sweep);
  bench::print_sweep_meta(sweep);
  bench::emit(bench::sweep_table(sweep), "fig06_scalability_vs_n");

  const double first = sweep.points.front().incompleteness.mean;
  const double last = sweep.points.back().incompleteness.mean;
  std::printf(
      "shape check: incompleteness at N=3200 (%.4g) <= at N=200 (%.4g): %s\n"
      "paper: completeness guarantees improve slightly as N grows into the "
      "1000s.\n",
      last, first, last <= first ? "yes" : "NO");
  return 0;
}
