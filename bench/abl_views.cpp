// Ablation 4: partial views (§2's relaxation of "all members know about each
// other"). Sweeps the fraction of the group present in each member's view
// and measures the completeness cost. Gossip needs enough peers, not all of
// them: degradation is graceful, dominated by members whose grid box has no
// view link in either direction.
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/fig_common.h"
#include "src/runner/sweep.h"

int main(int argc, char** argv) {
  using namespace gridbox;
  bench::print_header("Ablation: partial views",
                      "incompleteness vs view coverage",
                      "N=200, K=4, M=2, C=2, ucastl=0.1, pf=0; views are "
                      "independent random subsets per member");

  runner::ExperimentConfig base = bench::paper_defaults();
  base.jobs = bench::jobs_from_args(argc, argv);
  base.ucast_loss = 0.1;
  base.crash_probability = 0.0;
  base.gossip.round_multiplier_c = 2.0;

  const runner::SweepResult sweep = runner::run_sweep(
      base, "view coverage", {1.0, 0.8, 0.6, 0.4, 0.2},
      [](runner::ExperimentConfig& c, double x) { c.view_coverage = x; },
      16);
  bench::check_audits(sweep);
  bench::print_sweep_meta(sweep);
  bench::emit(bench::sweep_table(sweep), "abl_views");

  bool graceful = true;
  for (std::size_t i = 1; i < sweep.points.size(); ++i) {
    if (sweep.points[i].completeness.mean <
        0.9 * sweep.points[i].x) {  // stays well above the naive c=coverage
      graceful = false;
    }
  }
  std::printf(
      "takeaway: completeness far exceeds view coverage at every point "
      "(%s) — gossip re-exports a vote once *any* box neighbour learns it, "
      "so views can shrink 5x before completeness halves.\n",
      graceful ? "confirmed" : "NOT CONFIRMED");
  return 0;
}
