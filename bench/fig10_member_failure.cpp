// Figure 10 (Fault-tolerance 3): incompleteness vs per-round member failure
// rate pf. Paper: "incompleteness falls very quickly (faster than
// exponential) with falling member failure rate."
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/fig_common.h"
#include "src/runner/sweep.h"

int main(int argc, char** argv) {
  using namespace gridbox;
  bench::print_header("Figure 10", "incompleteness vs member failure rate pf",
                      "N=200, K=4, M=2, C=1.0, ucastl=0.25; crash without "
                      "recovery, pf applied per member per gossip round");

  runner::ExperimentConfig base = bench::paper_defaults();
  base.jobs = bench::jobs_from_args(argc, argv);
  const runner::SweepResult sweep = runner::run_sweep(
      base, "pf", {0.002, 0.004, 0.006, 0.008},
      [](runner::ExperimentConfig& c, double x) { c.crash_probability = x; },
      48);
  bench::check_audits(sweep);
  bench::print_sweep_meta(sweep);
  bench::emit(bench::sweep_table(sweep), "fig10_member_failure");

  // Individual runs are dominated by which members happen to die, so use
  // the log-scale (geometric-mean) trend over the 48 runs per point, with a
  // small tolerance for residual seed noise.
  bool monotone = true;
  for (std::size_t i = 1; i < sweep.points.size(); ++i) {
    if (sweep.points[i].incompleteness_geomean <
        0.9 * sweep.points[i - 1].incompleteness_geomean) {
      monotone = false;
    }
  }
  std::printf(
      "shape check: incompleteness rises with pf (geomean trend): %s "
      "(read bottom-up for the paper's falling-pf direction)\n",
      monotone ? "yes" : "NO");
  return 0;
}
