// The "well-known hash function H" of the Grid Box Hierarchy (§6.1).
//
// H maps member identifiers into [0,1); a member with unit value u belongs to
// grid box floor(u * num_boxes). Two families are provided:
//   - FairHash: uniform pseudo-random placement (the paper's analysis case);
//   - TopoAwareHash: proximity-preserving placement from member coordinates
//     (the Grid Location Scheme adaptation, §6.1 / [12]).
// Any member can evaluate H on any other member in its view, which is what
// lets phases be computed without coordination.
#pragma once

#include "src/common/types.h"

namespace gridbox::hashing {

class HashFunction {
 public:
  virtual ~HashFunction() = default;

  /// Deterministic value in [0, 1) for the member.
  [[nodiscard]] virtual double unit_value(MemberId id) const = 0;
};

}  // namespace gridbox::hashing
