// Fairness diagnostics for hash functions: how evenly does H spread a member
// population across grid boxes? Used by tests and the topology ablation.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/types.h"
#include "src/hashing/hash_function.h"

namespace gridbox::hashing {

/// Number of members H assigns to each of `num_boxes` boxes.
[[nodiscard]] std::vector<std::size_t> box_occupancy(
    const HashFunction& hash, const std::vector<MemberId>& members,
    std::size_t num_boxes);

/// Pearson chi-square statistic of the occupancy against the uniform
/// expectation. For a fair hash this is ~chi2(num_boxes-1); a value wildly
/// above num_boxes signals an unfair hash.
[[nodiscard]] double occupancy_chi_square(const std::vector<std::size_t>& occupancy,
                                          std::size_t member_count);

/// Largest / smallest box size (smallest may be zero).
struct OccupancyExtremes {
  std::size_t min_box = 0;
  std::size_t max_box = 0;
};
[[nodiscard]] OccupancyExtremes occupancy_extremes(
    const std::vector<std::size_t>& occupancy);

}  // namespace gridbox::hashing
