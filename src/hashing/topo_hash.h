// Topologically aware hash function (§6.1).
//
// Maps members that are physically close to the same or adjacent grid boxes,
// while keeping the expected number of members per box at K. Mechanically:
//   1. quantize the member's (x, y) position to 21 bits per axis;
//   2. interleave the bits into a Morton (Z-order) key, which preserves
//      spatial locality in a 1-D ordering;
//   3. normalize the key into [0,1) — either directly (uniform deployments)
//      or through empirical quantiles of a calibration sample (non-uniform
//      deployments, the paper's "a priori knowledge of the probability
//      distribution of prospective group members").
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/hashing/hash_function.h"

namespace gridbox::hashing {

/// 42-bit Morton key of a position in the unit square. Exposed for tests.
[[nodiscard]] std::uint64_t morton_key(Position p);

class TopoAwareHash final : public HashFunction {
 public:
  /// Uncalibrated: assumes member positions are roughly uniform over the
  /// unit square. `position_of` must be consistent group-wide.
  explicit TopoAwareHash(std::function<Position(MemberId)> position_of);

  /// Calibrated: box boundaries are empirical quantiles of the Morton keys
  /// of `sample_positions`, so each grid box receives an equal expected
  /// number of members even for clustered deployments.
  TopoAwareHash(std::function<Position(MemberId)> position_of,
                const std::vector<Position>& sample_positions);

  [[nodiscard]] double unit_value(MemberId id) const override;

 private:
  std::function<Position(MemberId)> position_of_;
  std::vector<std::uint64_t> calibration_keys_;  // sorted; empty = identity
};

}  // namespace gridbox::hashing
