// Fair (uniform pseudo-random) hash: the paper's analysis assumes H "maps any
// given member to each grid box with probability K/N".
#pragma once

#include <cstdint>

#include "src/hashing/hash_function.h"

namespace gridbox::hashing {

class FairHash final : public HashFunction {
 public:
  /// `salt` selects one hash function from the family; all group members
  /// must agree on it (it is "well-known"). Different salts give independent
  /// box assignments — experiments vary the salt across runs.
  explicit FairHash(std::uint64_t salt = 0);

  [[nodiscard]] double unit_value(MemberId id) const override;

 private:
  std::uint64_t salt_;
};

}  // namespace gridbox::hashing
