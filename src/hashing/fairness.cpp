#include "src/hashing/fairness.h"

#include <algorithm>

#include "src/common/ensure.h"

namespace gridbox::hashing {

std::vector<std::size_t> box_occupancy(const HashFunction& hash,
                                       const std::vector<MemberId>& members,
                                       std::size_t num_boxes) {
  expects(num_boxes > 0, "need at least one box");
  std::vector<std::size_t> counts(num_boxes, 0);
  for (const MemberId m : members) {
    const double u = hash.unit_value(m);
    auto box = static_cast<std::size_t>(u * static_cast<double>(num_boxes));
    box = std::min(box, num_boxes - 1);
    ++counts[box];
  }
  return counts;
}

double occupancy_chi_square(const std::vector<std::size_t>& occupancy,
                            std::size_t member_count) {
  expects(!occupancy.empty(), "occupancy must be non-empty");
  expects(member_count > 0, "member count must be positive");
  const double expected = static_cast<double>(member_count) /
                          static_cast<double>(occupancy.size());
  double chi2 = 0.0;
  for (const std::size_t observed : occupancy) {
    const double d = static_cast<double>(observed) - expected;
    chi2 += d * d / expected;
  }
  return chi2;
}

OccupancyExtremes occupancy_extremes(
    const std::vector<std::size_t>& occupancy) {
  expects(!occupancy.empty(), "occupancy must be non-empty");
  const auto [lo, hi] = std::minmax_element(occupancy.begin(), occupancy.end());
  return OccupancyExtremes{*lo, *hi};
}

}  // namespace gridbox::hashing
