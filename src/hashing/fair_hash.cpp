#include "src/hashing/fair_hash.h"

#include "src/common/rng.h"

namespace gridbox::hashing {

FairHash::FairHash(std::uint64_t salt) : salt_(salt) {}

double FairHash::unit_value(MemberId id) const {
  const std::uint64_t mixed =
      splitmix64(splitmix64(salt_) ^ (static_cast<std::uint64_t>(id.value()) +
                                      0x51a4c5b1e0f2d3c7ULL));
  return static_cast<double>(mixed >> 11) * 0x1.0p-53;
}

}  // namespace gridbox::hashing
