#include "src/hashing/topo_hash.h"

#include <algorithm>
#include <cmath>

#include "src/common/ensure.h"

namespace gridbox::hashing {

namespace {

// Spreads the low 21 bits of x so there is one zero bit between each
// (2-D Morton interleave).
[[nodiscard]] std::uint64_t spread_bits(std::uint64_t x) {
  x &= 0x1fffffULL;
  x = (x | (x << 16)) & 0x0000ffff0000ffffULL;
  x = (x | (x << 8)) & 0x00ff00ff00ff00ffULL;
  x = (x | (x << 4)) & 0x0f0f0f0f0f0f0f0fULL;
  x = (x | (x << 2)) & 0x3333333333333333ULL;
  x = (x | (x << 1)) & 0x5555555555555555ULL;
  return x;
}

[[nodiscard]] std::uint64_t quantize(double v) {
  const double clamped = std::clamp(v, 0.0, 1.0);
  constexpr double kMax = static_cast<double>((1ULL << 21) - 1);
  return static_cast<std::uint64_t>(clamped * kMax);
}

}  // namespace

std::uint64_t morton_key(Position p) {
  return spread_bits(quantize(p.x)) | (spread_bits(quantize(p.y)) << 1);
}

TopoAwareHash::TopoAwareHash(std::function<Position(MemberId)> position_of)
    : position_of_(std::move(position_of)) {
  expects(static_cast<bool>(position_of_), "position function must be callable");
}

TopoAwareHash::TopoAwareHash(std::function<Position(MemberId)> position_of,
                             const std::vector<Position>& sample_positions)
    : position_of_(std::move(position_of)) {
  expects(static_cast<bool>(position_of_), "position function must be callable");
  expects(!sample_positions.empty(), "calibration sample must be non-empty");
  calibration_keys_.reserve(sample_positions.size());
  for (const Position& p : sample_positions) {
    calibration_keys_.push_back(morton_key(p));
  }
  std::sort(calibration_keys_.begin(), calibration_keys_.end());
}

double TopoAwareHash::unit_value(MemberId id) const {
  const std::uint64_t key = morton_key(position_of_(id));
  if (calibration_keys_.empty()) {
    // 42-bit key, normalized. Max key maps just below 1.
    constexpr double kSpan = static_cast<double>(1ULL << 42);
    return static_cast<double>(key) / kSpan;
  }
  // Empirical CDF with a midpoint tie-break so distinct clustered positions
  // still spread across [0,1).
  const auto lo = std::lower_bound(calibration_keys_.begin(),
                                   calibration_keys_.end(), key);
  const auto hi =
      std::upper_bound(calibration_keys_.begin(), calibration_keys_.end(), key);
  const double rank = static_cast<double>(lo - calibration_keys_.begin()) +
                      0.5 * static_cast<double>(hi - lo);
  const double u = rank / static_cast<double>(calibration_keys_.size());
  return std::clamp(u, 0.0, std::nextafter(1.0, 0.0));
}

}  // namespace gridbox::hashing
