// Dynamic bitset used for vote-audit tracking.
//
// The paper imposes a *no double counting* constraint (§2): no member's vote
// may be included twice in any aggregate. The protocol guarantees this by
// construction (disjoint subtree partials), and the test suite *verifies* it
// by attaching one of these sets to every partial in audit mode: a merge of
// two partials whose member sets intersect is a double count.
#pragma once

#include <cstdint>
#include <vector>

namespace gridbox {

class MemberBitset {
 public:
  MemberBitset() = default;
  explicit MemberBitset(std::size_t universe_size);

  [[nodiscard]] std::size_t universe_size() const { return size_; }

  void set(std::size_t i);
  [[nodiscard]] bool test(std::size_t i) const;

  /// Number of set bits.
  [[nodiscard]] std::size_t count() const;

  /// True iff this and other share any set bit.
  [[nodiscard]] bool intersects(const MemberBitset& other) const;

  /// Set-union in place. Universes must match (or either may be empty).
  void merge(const MemberBitset& other);

  [[nodiscard]] bool empty() const { return count() == 0; }

  friend bool operator==(const MemberBitset&, const MemberBitset&);

 private:
  static constexpr std::size_t kBits = 64;
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace gridbox
