// Dynamic bitset used for vote-audit tracking and protocol knowledge vectors.
//
// The paper imposes a *no double counting* constraint (§2): no member's vote
// may be included twice in any aggregate. The protocol guarantees this by
// construction (disjoint subtree partials), and the test suite *verifies* it
// by attaching one of these sets to every partial in audit mode: a merge of
// two partials whose member sets intersect is a double count.
//
// Since the struct-of-arrays refactor the protocols also use this class as
// their per-node knowledge/infection vector, so the hot operations (empty,
// intersects, merge, count) maintain a used-words watermark: the highest
// word index that has ever held a nonzero bit, plus one. Scans stop at the
// watermark instead of walking the whole (possibly 10^6-bit) universe, which
// matters because most sets are sparse prefixes of a huge universe.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

namespace gridbox {

class MemberBitset {
 public:
  MemberBitset() = default;
  explicit MemberBitset(std::size_t universe_size);

  [[nodiscard]] std::size_t universe_size() const { return size_; }

  void set(std::size_t i);
  void reset(std::size_t i);
  [[nodiscard]] bool test(std::size_t i) const;

  /// Sets every bit in the universe.
  void set_all();

  /// Grows the universe to at least `universe_size` bits, preserving set
  /// bits. No-op when already at least that large.
  void grow_universe(std::size_t universe_size);

  /// Number of set bits.
  [[nodiscard]] std::size_t count() const;

  /// True iff this and other share any set bit.
  [[nodiscard]] bool intersects(const MemberBitset& other) const;

  /// Set-union in place. Universes must match (or either may be empty).
  void merge(const MemberBitset& other);

  /// True iff no bit is set. O(1): checks the used-words watermark.
  [[nodiscard]] bool empty() const { return used_words_ == 0; }

  /// Calls fn(index) for every set bit in ascending index order.
  template <typename Fn>
  void for_each_set(Fn&& fn) const {
    for (std::size_t wi = 0; wi < used_words_; ++wi) {
      std::uint64_t w = words_[wi];
      while (w != 0) {
        const int b = std::countr_zero(w);
        fn(wi * kBits + static_cast<std::size_t>(b));
        w &= w - 1;
      }
    }
  }

  /// Direct word access (ascending, little-endian bit order within a word).
  /// `used_words()` is the scan bound: every word at or past it is zero.
  [[nodiscard]] std::size_t used_words() const { return used_words_; }
  [[nodiscard]] std::uint64_t word(std::size_t wi) const { return words_[wi]; }

  friend bool operator==(const MemberBitset&, const MemberBitset&);

 private:
  static constexpr std::size_t kBits = 64;

  void bump_watermark(std::size_t word_index) {
    if (word_index >= used_words_) used_words_ = word_index + 1;
  }
  void settle_watermark();

  std::size_t size_ = 0;
  // Highest word index ever nonzero, plus one. Words at or past this index
  // are all zero; words below it may have become zero again after reset().
  std::size_t used_words_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace gridbox
