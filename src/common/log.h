// Minimal leveled logger.
//
// The simulator is performance-sensitive (millions of events per run), so
// logging is off by default and level checks are a single branch. Output goes
// to stderr so bench/table output on stdout stays machine-parsable.
#pragma once

#include <sstream>
#include <string>

namespace gridbox {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kOff = 4 };

/// Global log threshold. Not thread-safe by design: gridbox simulations are
/// single-threaded state machines (determinism requires it).
class Log {
 public:
  static LogLevel level() { return level_; }
  static void set_level(LogLevel level) { level_ = level; }

  static bool enabled(LogLevel level) { return level >= level_; }

  /// Writes one line to stderr with a level prefix.
  static void write(LogLevel level, const std::string& message);

 private:
  static LogLevel level_;
};

/// Stream-style one-line log entry: Logger(LogLevel::kDebug) << "x=" << x;
/// The line is emitted on destruction. Cheap no-op when the level is off.
class Logger {
 public:
  explicit Logger(LogLevel level) : level_(level), enabled_(Log::enabled(level)) {}
  ~Logger() {
    if (enabled_) Log::write(level_, stream_.str());
  }
  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  template <typename T>
  Logger& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace gridbox
