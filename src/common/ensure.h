// Precondition / invariant checking helpers.
//
// Following the Core Guidelines' preference for expressing contracts without
// preprocessor machinery, these are plain functions. Violations throw: in a
// simulator a silently corrupted run is worse than an aborted one, and tests
// can assert on the exception type.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace gridbox {

/// Thrown when a caller violates a documented precondition.
class PreconditionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when an internal invariant fails (a bug in gridbox itself).
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Check a caller-facing precondition.
///
/// The string-literal overload is the hot-path form: when the condition
/// holds it does no work at all (the std::string overload would otherwise
/// materialise its message — a heap allocation — on every *passing* check,
/// which the zero-allocation message path cannot afford).
[[noreturn]] void detail_throw_precondition(const char* what,
                                            std::source_location loc);
[[noreturn]] void detail_throw_invariant(const char* what,
                                         std::source_location loc);

inline void expects(bool condition, const char* what,
                    std::source_location loc = std::source_location::current()) {
  if (!condition) [[unlikely]] detail_throw_precondition(what, loc);
}

inline void expects(bool condition, const std::string& what,
                    std::source_location loc = std::source_location::current()) {
  if (!condition) {
    throw PreconditionError(std::string(loc.file_name()) + ":" +
                            std::to_string(loc.line()) + ": precondition failed: " +
                            what);
  }
}

/// Check an internal invariant.
inline void ensures(bool condition, const char* what,
                    std::source_location loc = std::source_location::current()) {
  if (!condition) [[unlikely]] detail_throw_invariant(what, loc);
}

inline void ensures(bool condition, const std::string& what,
                    std::source_location loc = std::source_location::current()) {
  if (!condition) {
    throw InvariantError(std::string(loc.file_name()) + ":" +
                         std::to_string(loc.line()) + ": invariant failed: " + what);
  }
}

}  // namespace gridbox
