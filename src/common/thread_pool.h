// Fixed-size thread pool for fanning independent simulations across cores.
//
// Deliberately minimal: no work stealing, no priorities, no dynamic sizing.
// Sweeps submit closures whose results land in pre-sized slots, so the pool
// never needs to know about ordering — determinism is the caller's job (each
// task derives everything it needs, notably its RNG seed, in closed form).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace gridbox::common {

class ThreadPool {
 public:
  /// Spawns `thread_count` workers (clamped to >= 1).
  explicit ThreadPool(std::size_t thread_count);

  /// Drains nothing: pending tasks still run, then workers join.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueues `task` and returns a future for its result. Exceptions thrown
  /// by the task are captured and rethrown from future::get(). Safe to call
  /// concurrently from multiple threads.
  template <typename F>
  [[nodiscard]] std::future<std::invoke_result_t<F>> submit(F&& task) {
    using Result = std::invoke_result_t<F>;
    auto packaged = std::make_shared<std::packaged_task<Result()>>(
        std::forward<F>(task));
    std::future<Result> future = packaged->get_future();
    enqueue([packaged] { (*packaged)(); });
    return future;
  }

  /// Resolves the worker count to use: `requested` if nonzero, else the
  /// GRIDBOX_JOBS environment variable if set and positive, else
  /// hardware_concurrency (always >= 1).
  [[nodiscard]] static std::size_t resolve_jobs(std::size_t requested);

 private:
  void enqueue(std::function<void()> job);
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable wake_;
  std::queue<std::function<void()>> jobs_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace gridbox::common
