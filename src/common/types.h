// Core identifier and unit types shared by every gridbox module.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace gridbox {

/// Globally unique member identifier (the paper assumes each member has a
/// unique id, imprinted at manufacture time or assigned at run time).
///
/// A strong type: never implicitly converts to/from raw integers, so a
/// MemberId cannot be confused with an index, a grid-box id, or a count.
class MemberId {
 public:
  using underlying = std::uint32_t;

  constexpr MemberId() = default;
  constexpr explicit MemberId(underlying v) : value_(v) {}

  [[nodiscard]] constexpr underlying value() const { return value_; }

  friend constexpr auto operator<=>(MemberId, MemberId) = default;

  /// Sentinel meaning "no member".
  static constexpr MemberId invalid() {
    return MemberId{std::numeric_limits<underlying>::max()};
  }
  [[nodiscard]] constexpr bool is_valid() const { return *this != invalid(); }

 private:
  underlying value_ = std::numeric_limits<underlying>::max();
};

[[nodiscard]] inline std::string to_string(MemberId id) {
  return "M" + std::to_string(id.value());
}

/// Identifier of a grid box: the integer whose base-K digit expansion is the
/// box's address in the Grid Box Hierarchy.
class GridBoxId {
 public:
  using underlying = std::uint32_t;

  constexpr GridBoxId() = default;
  constexpr explicit GridBoxId(underlying v) : value_(v) {}

  [[nodiscard]] constexpr underlying value() const { return value_; }

  friend constexpr auto operator<=>(GridBoxId, GridBoxId) = default;

 private:
  underlying value_ = 0;
};

/// Simulated time. Integer ticks keep the event queue exactly ordered and
/// runs bit-for-bit reproducible (no floating-point time accumulation).
/// One tick is one microsecond of simulated time by convention.
class SimTime {
 public:
  using underlying = std::int64_t;

  constexpr SimTime() = default;
  constexpr explicit SimTime(underlying ticks) : ticks_(ticks) {}

  [[nodiscard]] constexpr underlying ticks() const { return ticks_; }

  friend constexpr auto operator<=>(SimTime, SimTime) = default;

  constexpr SimTime operator+(SimTime rhs) const {
    return SimTime{ticks_ + rhs.ticks_};
  }
  constexpr SimTime operator-(SimTime rhs) const {
    return SimTime{ticks_ - rhs.ticks_};
  }
  constexpr SimTime& operator+=(SimTime rhs) {
    ticks_ += rhs.ticks_;
    return *this;
  }

  static constexpr SimTime zero() { return SimTime{0}; }
  static constexpr SimTime micros(underlying n) { return SimTime{n}; }
  static constexpr SimTime millis(underlying n) { return SimTime{n * 1000}; }
  static constexpr SimTime seconds(underlying n) {
    return SimTime{n * 1'000'000};
  }

 private:
  underlying ticks_ = 0;
};

/// 2-D coordinate of a member in a synthetic deployment region; used by the
/// topologically aware hash function (sensors know their location via fixed
/// placement or GPS — paper §6.1).
struct Position {
  double x = 0.0;
  double y = 0.0;

  friend constexpr bool operator==(const Position&, const Position&) = default;
};

[[nodiscard]] constexpr double squared_distance(Position a, Position b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

}  // namespace gridbox

template <>
struct std::hash<gridbox::MemberId> {
  std::size_t operator()(gridbox::MemberId id) const noexcept {
    return std::hash<gridbox::MemberId::underlying>{}(id.value());
  }
};

template <>
struct std::hash<gridbox::GridBoxId> {
  std::size_t operator()(gridbox::GridBoxId id) const noexcept {
    return std::hash<gridbox::GridBoxId::underlying>{}(id.value());
  }
};
