#include "src/common/thread_pool.h"

#include <cstdlib>
#include <string>

namespace gridbox::common {

ThreadPool::ThreadPool(std::size_t thread_count) {
  if (thread_count == 0) thread_count = 1;
  workers_.reserve(thread_count);
  for (std::size_t i = 0; i < thread_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::enqueue(std::function<void()> job) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    jobs_.push(std::move(job));
  }
  wake_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !jobs_.empty(); });
      if (jobs_.empty()) return;  // stopping_ and drained
      job = std::move(jobs_.front());
      jobs_.pop();
    }
    job();  // packaged_task: exceptions are captured in the future
  }
}

std::size_t ThreadPool::resolve_jobs(std::size_t requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("GRIDBOX_JOBS")) {
    try {
      const long long parsed = std::stoll(std::string(env));
      if (parsed > 0) return static_cast<std::size_t>(parsed);
    } catch (...) {
      // Malformed GRIDBOX_JOBS falls through to hardware_concurrency.
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

}  // namespace gridbox::common
