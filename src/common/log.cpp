#include "src/common/log.h"

#include <array>
#include <cstdio>

namespace gridbox {

LogLevel Log::level_ = LogLevel::kOff;

void Log::write(LogLevel level, const std::string& message) {
  static constexpr std::array<const char*, 4> kNames = {"TRACE", "DEBUG",
                                                        "INFO", "WARN"};
  const auto idx = static_cast<std::size_t>(level);
  const char* name = idx < kNames.size() ? kNames[idx] : "?";
  std::fprintf(stderr, "[%s] %s\n", name, message.c_str());
}

}  // namespace gridbox
