// Deterministic random number generation.
//
// Every stochastic decision in gridbox (gossipee selection, message loss,
// crashes, hash salts, workload generation) draws from an Rng that is seeded
// explicitly, so a whole experiment is reproducible from a single root seed.
// Independent components receive independent *streams* derived from the root
// seed via SplitMix64, the standard seed-expansion function for xoshiro.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "src/common/ensure.h"

namespace gridbox {

/// SplitMix64: a tiny, high-quality 64-bit mixer. Used both to expand seeds
/// and as the well-known hash H that maps member identifiers into [0,1)
/// (paper §6.1: "a well-known hash function H that maps the unique group
/// member identifiers randomly into the interval [0,1]").
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// xoshiro256** by Blackman & Vigna: fast, 256-bit state, passes BigCrush.
/// Implemented from scratch (no external dependencies).
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words by iterating SplitMix64, per the authors'
  /// recommendation; guarantees a nonzero state.
  explicit Xoshiro256(std::uint64_t seed);

  [[nodiscard]] result_type next();

  /// UniformRandomBitGenerator interface so <algorithm> shuffles work too.
  result_type operator()() { return next(); }
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Advances the state by 2^128 steps: yields a generator whose sequence is
  /// disjoint from this one for any realistic draw count.
  void long_jump();

 private:
  std::array<std::uint64_t, 4> state_{};
};

/// High-level random source used throughout gridbox.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : root_seed_(seed), gen_(seed) {}

  /// Derives an independent child stream. `tag` distinguishes sibling
  /// streams; the same (seed, tag) always yields the same stream.
  [[nodiscard]] Rng derive(std::uint64_t tag) const {
    return Rng{splitmix64(root_seed_ ^ splitmix64(tag))};
  }

  /// Uniform in [0, 1).
  [[nodiscard]] double uniform();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi);

  /// Uniform index in [0, n). Requires n > 0.
  [[nodiscard]] std::size_t index(std::size_t n);

  /// True with probability p (p clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p);

  /// Exponentially distributed with the given mean. Requires mean > 0.
  [[nodiscard]] double exponential(double mean);

  /// Normal via Marsaglia polar method. Requires sigma >= 0.
  [[nodiscard]] double normal(double mu = 0.0, double sigma = 1.0);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[index(i)]);
    }
  }

  /// k distinct indices sampled uniformly from [0, n); if k >= n returns all
  /// n indices in shuffled order.
  [[nodiscard]] std::vector<std::size_t> sample_indices(std::size_t n,
                                                        std::size_t k);

  /// Same distribution and draw sequence as sample_indices, but fills a
  /// caller-owned vector: hot paths reuse one scratch vector and sample
  /// without allocating once it has grown to capacity.
  void sample_indices_into(std::size_t n, std::size_t k,
                           std::vector<std::size_t>& out);

  /// Raw 64 random bits.
  [[nodiscard]] std::uint64_t raw() { return gen_.next(); }

 private:
  std::uint64_t root_seed_;
  Xoshiro256 gen_;
};

}  // namespace gridbox
