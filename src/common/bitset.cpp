#include "src/common/bitset.h"

#include <bit>

#include "src/common/ensure.h"

namespace gridbox {

MemberBitset::MemberBitset(std::size_t universe_size)
    : size_(universe_size), words_((universe_size + kBits - 1) / kBits, 0) {}

void MemberBitset::set(std::size_t i) {
  expects(i < size_, "bit index out of range");
  words_[i / kBits] |= (std::uint64_t{1} << (i % kBits));
}

bool MemberBitset::test(std::size_t i) const {
  if (i >= size_) return false;
  return (words_[i / kBits] >> (i % kBits)) & 1U;
}

std::size_t MemberBitset::count() const {
  std::size_t total = 0;
  for (const std::uint64_t w : words_) total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

bool MemberBitset::intersects(const MemberBitset& other) const {
  const std::size_t n = std::min(words_.size(), other.words_.size());
  for (std::size_t i = 0; i < n; ++i) {
    if ((words_[i] & other.words_[i]) != 0) return true;
  }
  return false;
}

void MemberBitset::merge(const MemberBitset& other) {
  if (other.size_ == 0) return;
  if (size_ == 0) {
    *this = other;
    return;
  }
  expects(size_ == other.size_, "bitset universes differ");
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

bool operator==(const MemberBitset& a, const MemberBitset& b) {
  return a.size_ == b.size_ && a.words_ == b.words_;
}

}  // namespace gridbox
