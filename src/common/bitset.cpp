#include "src/common/bitset.h"

#include <algorithm>
#include <bit>

#include "src/common/ensure.h"

namespace gridbox {

MemberBitset::MemberBitset(std::size_t universe_size)
    : size_(universe_size), words_((universe_size + kBits - 1) / kBits, 0) {}

void MemberBitset::set(std::size_t i) {
  expects(i < size_, "bit index out of range");
  const std::size_t wi = i / kBits;
  words_[wi] |= (std::uint64_t{1} << (i % kBits));
  bump_watermark(wi);
}

void MemberBitset::reset(std::size_t i) {
  expects(i < size_, "bit index out of range");
  words_[i / kBits] &= ~(std::uint64_t{1} << (i % kBits));
  settle_watermark();
}

bool MemberBitset::test(std::size_t i) const {
  if (i >= size_) return false;
  return (words_[i / kBits] >> (i % kBits)) & 1U;
}

void MemberBitset::set_all() {
  if (size_ == 0) return;
  std::fill(words_.begin(), words_.end(), ~std::uint64_t{0});
  const std::size_t tail = size_ % kBits;
  if (tail != 0) words_.back() &= (std::uint64_t{1} << tail) - 1;
  used_words_ = words_.size();
}

void MemberBitset::grow_universe(std::size_t universe_size) {
  if (universe_size <= size_) return;
  size_ = universe_size;
  words_.resize((universe_size + kBits - 1) / kBits, 0);
}

void MemberBitset::settle_watermark() {
  while (used_words_ > 0 && words_[used_words_ - 1] == 0) --used_words_;
}

std::size_t MemberBitset::count() const {
  std::size_t total = 0;
  for (std::size_t wi = 0; wi < used_words_; ++wi) {
    total += static_cast<std::size_t>(std::popcount(words_[wi]));
  }
  return total;
}

bool MemberBitset::intersects(const MemberBitset& other) const {
  const std::size_t n = std::min(used_words_, other.used_words_);
  for (std::size_t i = 0; i < n; ++i) {
    if ((words_[i] & other.words_[i]) != 0) return true;
  }
  return false;
}

void MemberBitset::merge(const MemberBitset& other) {
  if (other.size_ == 0) return;
  if (size_ == 0) {
    *this = other;
    return;
  }
  expects(size_ == other.size_, "bitset universes differ");
  for (std::size_t i = 0; i < other.used_words_; ++i) words_[i] |= other.words_[i];
  if (other.used_words_ > used_words_) used_words_ = other.used_words_;
}

bool operator==(const MemberBitset& a, const MemberBitset& b) {
  return a.size_ == b.size_ && a.words_ == b.words_;
}

}  // namespace gridbox
