#include "src/common/rng.h"

#include <algorithm>
#include <cmath>

namespace gridbox {

namespace {

[[nodiscard]] constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) {
    s = splitmix64(s);
    word = s;
  }
  // SplitMix64 output of any seed chain is never all-zero across four words
  // in practice, but guard anyway: xoshiro's all-zero state is absorbing.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
    state_[0] = 0x9e3779b97f4a7c15ULL;
  }
}

Xoshiro256::result_type Xoshiro256::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

void Xoshiro256::long_jump() {
  static constexpr std::array<std::uint64_t, 4> kJump = {
      0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL, 0x77710069854ee241ULL,
      0x39109bb02acbe635ULL};
  std::array<std::uint64_t, 4> acc{};
  for (const std::uint64_t jump : kJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if ((jump & (std::uint64_t{1} << bit)) != 0) {
        for (std::size_t w = 0; w < acc.size(); ++w) acc[w] ^= state_[w];
      }
      (void)next();
    }
  }
  state_ = acc;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(gen_.next() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::uniform_int(std::uint64_t lo, std::uint64_t hi) {
  expects(lo <= hi, "uniform_int requires lo <= hi");
  const std::uint64_t span = hi - lo;
  if (span == ~std::uint64_t{0}) return gen_.next();
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t range = span + 1;
  const std::uint64_t limit = (~std::uint64_t{0}) - (~std::uint64_t{0}) % range;
  std::uint64_t draw = gen_.next();
  while (draw >= limit) draw = gen_.next();
  return lo + draw % range;
}

std::size_t Rng::index(std::size_t n) {
  expects(n > 0, "index requires n > 0");
  return static_cast<std::size_t>(uniform_int(0, n - 1));
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double mean) {
  expects(mean > 0.0, "exponential requires mean > 0");
  double u = uniform();
  while (u <= 0.0) u = uniform();  // log(0) guard; uniform() < 1 already
  return -mean * std::log(u);
}

double Rng::normal(double mu, double sigma) {
  expects(sigma >= 0.0, "normal requires sigma >= 0");
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = 2.0 * uniform() - 1.0;
    v = 2.0 * uniform() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  return mu + sigma * u * std::sqrt(-2.0 * std::log(s) / s);
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  std::vector<std::size_t> result;
  sample_indices_into(n, k, result);
  return result;
}

void Rng::sample_indices_into(std::size_t n, std::size_t k,
                              std::vector<std::size_t>& out) {
  out.clear();
  if (k >= n) {
    out.resize(n);
    for (std::size_t i = 0; i < n; ++i) out[i] = i;
    shuffle(out);
    return;
  }
  // Floyd's algorithm: k iterations, uniform over all k-subsets. Membership
  // is a linear scan of the output built so far — k is a gossip fanout
  // (single digits), where scanning beats a hash set and allocates nothing.
  // The draw sequence is identical to the historical set-based version, so
  // seeded runs reproduce bit for bit.
  out.reserve(k);
  for (std::size_t j = n - k; j < n; ++j) {
    const std::size_t t = static_cast<std::size_t>(uniform_int(0, j));
    const bool taken = std::find(out.begin(), out.end(), t) != out.end();
    // j itself is new every iteration (all prior picks are < j), so the
    // collision fallback never collides.
    out.push_back(taken ? j : t);
  }
  shuffle(out);
}

}  // namespace gridbox
