#include "src/common/ensure.h"

// The throw paths live out of line so the inline checks compile down to a
// compare + predicted-not-taken branch; the cold path builds the decorated
// message only when a contract actually fails.

namespace gridbox {

void detail_throw_precondition(const char* what, std::source_location loc) {
  throw PreconditionError(std::string(loc.file_name()) + ":" +
                          std::to_string(loc.line()) +
                          ": precondition failed: " + what);
}

void detail_throw_invariant(const char* what, std::source_location loc) {
  throw InvariantError(std::string(loc.file_name()) + ":" +
                       std::to_string(loc.line()) + ": invariant failed: " + what);
}

}  // namespace gridbox
