// UDP-vs-simulator differential oracle.
//
// Runs the same ExperimentConfig (audit forced on) twice: once in the
// discrete-event simulator, once over real UDP sockets on loopback, under
// an equivalent chaos spec. Both runs derive bit-identical ground truth
// (world_setup.h), so agreement is defined on the invariants that must
// hold regardless of timing:
//
//   - both runs complete: every member alive at the end delivered an
//     estimate (the UDP side additionally within its wall-clock deadline),
//   - both are audit-clean: zero disjoint-merge violations,
//   - both reconstruct: every estimate is exactly the aggregate of the
//     member's audited vote set (a wrong-but-complete answer cannot pass),
//   - both report the identical ground-truth value, bit-for-bit.
//
// Per-member estimates and message counts are NOT compared: under loss the
// two runs legitimately deliver different message subsets, so completeness
// may differ — the oracle checks that whatever each run computed is
// provably honest, the same definition `gridbox_sim --differential` uses
// across protocols (exit 2 on divergence).
#pragma once

#include <string>

#include "src/runner/differential.h"
#include "src/runner/udp_runtime.h"

namespace gridbox::runner {

struct UdpDifferentialReport {
  DifferentialRow sim;  ///< protocol field = the configured protocol
  DifferentialRow udp;
  UdpRunResult udp_run;  ///< full real-socket result (timing, shards, ...)

  /// True iff both runs satisfy the agreement definition above.
  [[nodiscard]] bool ok() const;

  /// Human-readable one-run-per-line summary, ending in OK / DIVERGED.
  [[nodiscard]] std::string describe() const;
};

/// Runs the oracle. Audit and invariant checking are forced on for both
/// sides; the config's protocol field chooses which protocol to compare.
[[nodiscard]] UdpDifferentialReport run_udp_differential(
    const UdpRunConfig& config);

}  // namespace gridbox::runner
