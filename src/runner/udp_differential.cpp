#include "src/runner/udp_differential.h"

#include <exception>
#include <sstream>

#include "src/runner/experiment.h"

namespace gridbox::runner {

namespace {

/// One row's half of the agreement definition (completion is checked by
/// the caller, which knows each side's notion of "complete").
[[nodiscard]] bool row_honest(const DifferentialRow& row) {
  return row.ran && row.measurement.audit_violations == 0 &&
         row.measurement.reconstruction_failures == 0 &&
         row.measurement.finished_nodes == row.measurement.survivors;
}

void describe_row(std::ostringstream& out, const char* label,
                  const DifferentialRow& row) {
  out << label << ": ";
  if (!row.ran) {
    out << "FAILED (" << row.error << ")\n";
    return;
  }
  const protocols::RunMeasurement& m = row.measurement;
  out << "finished " << m.finished_nodes << "/" << m.survivors
      << " survivors, completeness " << m.mean_completeness
      << ", audit_violations " << m.audit_violations
      << ", reconstruction_failures " << m.reconstruction_failures
      << ", true_value " << m.true_value << "\n";
}

}  // namespace

bool UdpDifferentialReport::ok() const {
  return row_honest(sim) && row_honest(udp) && udp_run.completed &&
         udp_run.invariant_violations == 0 &&
         sim.measurement.true_value == udp.measurement.true_value;
}

std::string UdpDifferentialReport::describe() const {
  std::ostringstream out;
  describe_row(out, "sim", sim);
  describe_row(out, "udp", udp);
  if (udp.ran) {
    out << "udp: completed=" << (udp_run.completed ? "yes" : "no")
        << " shards=" << udp_run.shards << " elapsed_us="
        << udp_run.elapsed.ticks()
        << " invariant_violations=" << udp_run.invariant_violations << "\n";
    if (!udp_run.first_violation.empty()) {
      out << "udp: first violation: " << udp_run.first_violation << "\n";
    }
  }
  out << (ok() ? "OK" : "DIVERGED") << "\n";
  return out.str();
}

UdpDifferentialReport run_udp_differential(const UdpRunConfig& config) {
  UdpDifferentialReport report;

  UdpRunConfig udp_config = config;
  udp_config.experiment.audit = true;
  udp_config.experiment.check_invariants = true;

  report.sim.protocol = udp_config.experiment.protocol;
  try {
    report.sim.measurement =
        run_experiment(udp_config.experiment).measurement;
    report.sim.ran = true;
  } catch (const std::exception& e) {
    report.sim.error = e.what();
  }

  report.udp.protocol = udp_config.experiment.protocol;
  try {
    report.udp_run = run_udp_experiment(udp_config);
    report.udp.measurement = report.udp_run.measurement;
    report.udp.ran = true;
  } catch (const std::exception& e) {
    report.udp.error = e.what();
  }

  return report;
}

}  // namespace gridbox::runner
