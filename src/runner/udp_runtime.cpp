#include "src/runner/udp_runtime.h"

#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/ensure.h"
#include "src/membership/group.h"
#include "src/net/chaos.h"
#include "src/net/reactor.h"
#include "src/net/telemetry_socket.h"
#include "src/net/udp_transport.h"
#include "src/obs/telemetry.h"
#include "src/protocols/invariant_checker.h"
#include "src/runner/world_setup.h"

namespace gridbox::runner {

namespace {

/// Per-shard completion counters folded into one atomic: each member
/// settles exactly once — when its node finishes (NodeEnv::on_finished,
/// on its shard thread) or when it crashes (Group crash listener) — and
/// the run is done when the fold hits zero. Replaces the old done() probe
/// that scanned every node from every shard thread each loop iteration.
class CompletionBoard {
 public:
  explicit CompletionBoard(std::size_t members)
      : settled_(new std::atomic<bool>[members]),
        remaining_(members) {
    for (std::size_t i = 0; i < members; ++i) {
      settled_[i].store(false, std::memory_order_relaxed);
    }
  }

  /// Idempotent: a member that finished and later crashes (or crashes on
  /// two paths) decrements the fold exactly once.
  void settle(MemberId m) {
    if (!settled_[m.value()].exchange(true, std::memory_order_acq_rel)) {
      remaining_.fetch_sub(1, std::memory_order_acq_rel);
    }
  }

  [[nodiscard]] bool done() const {
    return remaining_.load(std::memory_order_acquire) == 0;
  }

 private:
  std::unique_ptr<std::atomic<bool>[]> settled_;
  std::atomic<std::size_t> remaining_;
};

/// Self-stopping periodic telemetry tick on shard 0 (same pattern as the
/// service runtime): samples on the reactor clock, stops rescheduling when
/// the run resolves.
struct SamplerTick final : sim::TimerTarget {
  obs::TelemetrySampler* sampler = nullptr;
  net::Reactor* clock = nullptr;
  std::function<bool()> keep_going;

  bool on_timer(std::uint32_t /*timer_id*/) override {
    sampler->sample(clock->now());
    return keep_going();
  }
};

}  // namespace

std::uint64_t raise_fd_limit(std::uint64_t need) {
  rlimit limit{};
  expects(getrlimit(RLIMIT_NOFILE, &limit) == 0, "getrlimit failed");
  if (limit.rlim_cur >= need) return limit.rlim_cur;
  rlimit raised = limit;
  raised.rlim_cur = limit.rlim_max == RLIM_INFINITY
                        ? need
                        : std::min<rlim_t>(limit.rlim_max, need);
  if (raised.rlim_cur > limit.rlim_cur) {
    (void)setrlimit(RLIMIT_NOFILE, &raised);
    const rlim_t old_soft = limit.rlim_cur;
    expects(getrlimit(RLIMIT_NOFILE, &raised) == 0, "getrlimit failed");
    if (raised.rlim_cur > old_soft) {
      // Visible at startup, not silent: a run that needed more descriptors
      // than the inherited soft limit says so once, with the numbers.
      std::fprintf(stderr,
                   "gridbox: raised RLIMIT_NOFILE soft limit %llu -> %llu "
                   "(need %llu fds)\n",
                   static_cast<unsigned long long>(old_soft),
                   static_cast<unsigned long long>(raised.rlim_cur),
                   static_cast<unsigned long long>(need));
    }
    return raised.rlim_cur;
  }
  return limit.rlim_cur;
}

void require_fd_capacity(std::uint64_t need) {
  const std::uint64_t got = raise_fd_limit(need);
  if (got >= need) return;
  rlimit limit{};
  (void)getrlimit(RLIMIT_NOFILE, &limit);
  const auto hard = limit.rlim_max == RLIM_INFINITY
                        ? std::string("unlimited")
                        : std::to_string(limit.rlim_max);
  throw PreconditionError(
      "this run needs " + std::to_string(need) +
      " file descriptors (one UDP socket per member plus slack) but "
      "RLIMIT_NOFILE allows only " + std::to_string(got) +
      " (hard limit " + hard +
      "); raise it (e.g. `ulimit -n " + std::to_string(need) +
      "`) or run with a smaller --n");
}

UdpRunResult run_udp_experiment(const UdpRunConfig& udp_config) {
  const ExperimentConfig& config = udp_config.experiment;
  expects(config.group_size >= 2, "need at least two members");
  // Sockets + stdio + test-framework slack; fail early with the numbers if
  // the hard limit cannot cover the run instead of mid-setup on bind().
  require_fd_capacity(config.group_size + 64);

  // === World construction: identical derivations to run_experiment. ===
  const Rng root(config.seed);
  membership::Group group(config.group_size);
  if (config.assign_positions || config.hash == HashKind::kTopoAware ||
      config.workload == WorkloadKind::kField) {
    Rng pos_rng = root.derive(streams::kPosition);
    group.scatter_positions(pos_rng);
  }
  Rng vote_rng = root.derive(streams::kVote);
  const agg::VoteTable votes = make_votes(config, group, vote_rng);
  const std::unique_ptr<hashing::HashFunction> hash =
      make_hash(config, group, root);
  hierarchy::GridBoxHierarchy hier(config.group_size, hierarchy_fanout(config),
                                   *hash);
  const std::unique_ptr<agg::AuditRegistry> audit =
      make_audit(config, group, hier);
  protocols::StateArena arena(group.shared_members());
  arena.build_phase_tables(hier);

  // === Real-time substrate: reactors (one thread each) + transports. ===
  // Shard s owns members with id % shard_count == s, end to end: their
  // sockets, their timers, their deliveries, their arena lanes. Dispatch
  // runs lock-free on the owning shard's thread; the state a callback can
  // reach outside its shard is concurrency-safe by construction (atomic
  // Group liveness, mutex-gated AuditRegistry, the completion board).
  const std::size_t shard_count =
      udp_config.shards > 0
          ? udp_config.shards
          : std::max<std::size_t>(
                1, std::min<std::size_t>(
                       {4, std::thread::hardware_concurrency(),
                        config.group_size}));
  const bool concurrent = shard_count > 1;
  if (audit != nullptr) audit->set_concurrent(concurrent);
  const auto epoch = std::chrono::steady_clock::now();
  std::vector<std::unique_ptr<net::Reactor>> reactors;
  std::vector<std::unique_ptr<net::UdpTransport>> transports;
  reactors.reserve(shard_count);
  transports.reserve(shard_count);
  const net::ChaosSpec chaos = net::ChaosSpec::parse(config.chaos_spec);
  // Churn needs an epoch boundary for a joiner to enter at; the one-shot
  // protocol has none. The service runtime (src/service) honors these.
  expects(!chaos.has_churn(),
          "join/recover directives require the service runtime");
  const bool shim_active = chaos.affects_network() ||
                           config.ucast_loss > 0.0 ||
                           config.partition_loss >= 0.0;
  const Rng chaos_root = root.derive(streams::kChaos);
  for (std::size_t s = 0; s < shard_count; ++s) {
    reactors.push_back(std::make_unique<net::Reactor>(net::Reactor::Options{}));
    reactors.back()->bind_epoch(epoch);
    net::UdpTransport::Options topt;
    topt.port_base = udp_config.port_base;
    auto transport =
        std::make_unique<net::UdpTransport>(*reactors.back(), topt);
    transport->set_liveness([&group](MemberId m) { return group.is_alive(m); });
    if (shim_active) {
      // One schedule per shard, each with its own derived streams: with
      // real sockets there is no global send order for a single schedule
      // to consume in, so parity with the simulator is statistical (same
      // marginal loss/jitter/dup law), not per-message.
      auto schedule = std::make_unique<net::ChaosSchedule>(
          chaos, make_faults(config), config.group_size, chaos_root.derive(s));
      transport->install_chaos(std::move(schedule));
    }
    transports.push_back(std::move(transport));
  }

  // Completion: every member settles once, on finish or on crash; done()
  // is a single atomic read from any shard thread.
  CompletionBoard board(config.group_size);
  group.set_crash_listener([&board](MemberId m) { board.settle(m); });

  // Scripted crashes fire as reactor actions on the member's own shard;
  // liveness publication is atomic, so other shards observe it safely.
  for (const net::CrashEvent& event : chaos.crashes) {
    const std::size_t s = event.member.value() % shard_count;
    reactors[s]->schedule_at(event.at,
                             [&group, m = event.member]() { group.crash(m); });
  }

  // === Nodes: same construction order and RNG streams as the simulator. ===
  protocols::NodeEnv base_env;
  base_env.hierarchy = &hier;
  base_env.audit = audit.get();
  base_env.arena = &arena;
  base_env.is_alive = [&group](MemberId m) { return group.is_alive(m); };
  base_env.kind = config.aggregate;
  base_env.on_finished = [&board](MemberId m) { board.settle(m); };

  const SimTime horizon = protocol_horizon(config, hier.num_phases());
  const SimTime deadline = std::max(
      udp_config.min_deadline,
      SimTime::micros(static_cast<SimTime::underlying>(
          static_cast<double>(horizon.ticks()) * udp_config.deadline_factor)));

  std::unique_ptr<protocols::InvariantChecker> checker;
  ExperimentConfig node_config = config;
  node_config.gossip.trace = nullptr;
  if (config.check_invariants &&
      config.protocol == ProtocolKind::kHierGossip) {
    protocols::InvariantChecker::Config icfg;
    icfg.group_size = config.group_size;
    icfg.fanout = config.gossip.k;
    icfg.num_phases = hier.num_phases();
    icfg.scheduler = reactors[0].get();
    icfg.audit = audit.get();
    // The Theorem-1 deadline is meaningful on the virtual clock; on a real
    // host the run-level deadline (already a generous multiple of the
    // horizon) plays that role, so scheduler noise cannot fake a
    // violation.
    icfg.deadline = deadline;
    // Never throw across reactor threads; collect and report after join.
    icfg.fail_fast = false;
    // Trace events arrive from every shard thread.
    icfg.concurrent = concurrent;
    checker = std::make_unique<protocols::InvariantChecker>(icfg);
    node_config.gossip.trace = checker.get();
  }
  base_env.trace = node_config.gossip.trace;

  Rng view_rng = root.derive(streams::kView);
  std::vector<std::unique_ptr<protocols::ProtocolNode>> nodes;
  nodes.reserve(config.group_size);
  for (const MemberId m : group.members()) {
    const std::size_t s = m.value() % shard_count;
    protocols::NodeEnv env = base_env;
    env.scheduler = reactors[s].get();
    env.network = transports[s].get();
    auto node = make_node(node_config, m, votes.of(m),
                          make_view(config, group, m, view_rng), env,
                          root.derive(streams::kNodeBase + m.value()));
    transports[s]->attach(m, *node);
    nodes.push_back(std::move(node));
  }
  // Still single-threaded here: start() arms each node's timers on its
  // shard reactor before any loop runs, and std::thread construction below
  // publishes everything built so far to the shard threads.
  for (auto& node : nodes) node->start(SimTime::zero());

  // Per-round crash clock (paper §7 pf), ticking as a self-rescheduling
  // action on shard 0. It reads only cross-thread-safe state: atomic node
  // finished() flags, atomic liveness, and crash() publication.
  const membership::PerRoundCrash crash_model(config.crash_probability);
  auto crash_rng = std::make_shared<Rng>(root.derive(streams::kCrash));
  if (config.crash_probability > 0.0) {
    auto round = std::make_shared<std::uint64_t>(0);
    auto tick = std::make_shared<std::function<void()>>();
    net::Reactor& r0 = *reactors[0];
    *tick = [&group, &nodes, &crash_model, &r0, crash_rng, round, tick,
             interval = config.round_duration()]() {
      (void)group.apply_round_crashes(crash_model, (*round)++, *crash_rng);
      for (const auto& node : nodes) {
        if (!node->finished() && group.is_alive(node->self())) {
          r0.schedule_after(interval, [tick]() { (*tick)(); });
          return;
        }
      }
    };
    r0.schedule_after(config.round_duration(), [tick]() { (*tick)(); });
  }

  // Live telemetry: one lane per shard; sampler + optional stats socket on
  // shard 0 (scheduling is still single-threaded here, before the loops).
  std::unique_ptr<obs::TelemetryHub> tel_hub;
  std::unique_ptr<obs::TelemetrySampler> tel_sampler;
  std::unique_ptr<net::TelemetrySocket> tel_socket;
  SamplerTick sampler_tick;
  if (config.telemetry.enabled) {
    tel_hub = std::make_unique<obs::TelemetryHub>(shard_count);
    for (std::size_t s = 0; s < shard_count; ++s) {
      reactors[s]->set_telemetry(&tel_hub->lane(s));
      transports[s]->set_telemetry(&tel_hub->lane(s));
    }
    tel_sampler =
        std::make_unique<obs::TelemetrySampler>(*tel_hub, config.telemetry);
    sampler_tick.sampler = tel_sampler.get();
    sampler_tick.clock = reactors[0].get();
    sampler_tick.keep_going = [&board]() { return !board.done(); };
    reactors[0]->schedule_periodic(config.telemetry.interval,
                                   config.telemetry.interval, sampler_tick);
    if (config.telemetry.udp_port != 0) {
      tel_socket = std::make_unique<net::TelemetrySocket>(
          *reactors[0], config.telemetry.udp_port,
          [sampler = tel_sampler.get()]() { return sampler->latest(); });
    }
  }

  // === Run: one thread per reactor until global completion or deadline.
  // A shard must keep serving datagrams until *everyone* finished, not
  // just its own members; done() is one atomic load, not a scan.
  const auto done = [&board]() { return board.done(); };
  std::vector<std::thread> threads;
  std::vector<char> shard_done(shard_count, 0);
  std::vector<std::exception_ptr> errors(shard_count);
  threads.reserve(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    threads.emplace_back([&, s]() {
      try {
        shard_done[s] = reactors[s]->run_until(done, deadline) ? 1 : 0;
      } catch (...) {
        errors[s] = std::current_exception();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }

  // Final sample post-join: exact closing record, ordered by the joins.
  if (tel_sampler != nullptr) tel_sampler->sample(reactors[0]->now());

  UdpRunResult result;
  result.shards = shard_count;
  result.completed = true;
  for (const char d : shard_done) result.completed = result.completed && d;
  result.elapsed = reactors[0]->now();

  if (checker != nullptr) {
    std::vector<MemberId> alive;
    for (const MemberId m : group.members()) {
      if (group.is_alive(m)) alive.push_back(m);
    }
    checker->expect_all_finished(alive);
    result.invariant_violations = checker->violations().size();
    if (!checker->violations().empty()) {
      result.first_violation = checker->violations().front().what;
    }
  }

  // Fold per-shard tallies in shard order (deterministic, same trick as
  // the sweep reducer): transport stats then reactor counters.
  net::NetworkStats total;
  for (const auto& transport : transports) {
    const net::NetworkStats& s = transport->stats();
    total.messages_sent += s.messages_sent;
    total.messages_dropped += s.messages_dropped;
    total.messages_dead_dest += s.messages_dead_dest;
    total.messages_delivered += s.messages_delivered;
    total.messages_malformed += s.messages_malformed;
    total.messages_duplicated += s.messages_duplicated;
    total.bytes_sent += s.bytes_sent;
  }
  result.network = total;
  result.measurement = protocols::measure_run(group, nodes, votes,
                                              config.aggregate, total,
                                              audit.get());
  for (std::size_t s = 0; s < shard_count; ++s) {
    result.timers_fired += reactors[s]->timers_fired();
    result.actions_run += reactors[s]->actions_run();
    result.polls += reactors[s]->polls();
    result.eintr_retries += reactors[s]->eintr_retries();
    result.eintr_retries += transports[s]->recv_eintr_retries();
  }
  return result;
}

}  // namespace gridbox::runner
