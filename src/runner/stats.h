// Summary statistics over repeated runs.
#pragma once

#include <cstdint>
#include <vector>

namespace gridbox::runner {

struct SummaryStats {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n−1)
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double ci95_half_width = 0.0;  ///< 1.96 · stderr (normal approximation)

  [[nodiscard]] double ci95_lo() const { return mean - ci95_half_width; }
  [[nodiscard]] double ci95_hi() const { return mean + ci95_half_width; }
};

/// Computes summary statistics of `samples`. Requires non-empty input.
[[nodiscard]] SummaryStats summarize(std::vector<double> samples);

/// Geometric mean of strictly positive samples; samples <= `floor` are
/// clamped to it first (incompleteness values of exactly 0 would otherwise
/// collapse log-scale summaries).
[[nodiscard]] double geometric_mean(const std::vector<double>& samples,
                                    double floor = 1e-12);

}  // namespace gridbox::runner
