#include "src/runner/stats.h"

#include <algorithm>
#include <cmath>

#include "src/common/ensure.h"

namespace gridbox::runner {

SummaryStats summarize(std::vector<double> samples) {
  expects(!samples.empty(), "cannot summarize zero samples");
  SummaryStats s;
  s.n = samples.size();
  double sum = 0.0;
  for (const double v : samples) sum += v;
  s.mean = sum / static_cast<double>(s.n);

  double sq = 0.0;
  for (const double v : samples) sq += (v - s.mean) * (v - s.mean);
  s.stddev = s.n > 1 ? std::sqrt(sq / static_cast<double>(s.n - 1)) : 0.0;
  s.ci95_half_width =
      s.n > 1 ? 1.96 * s.stddev / std::sqrt(static_cast<double>(s.n)) : 0.0;

  std::sort(samples.begin(), samples.end());
  s.min = samples.front();
  s.max = samples.back();
  const std::size_t mid = s.n / 2;
  s.median =
      s.n % 2 == 1 ? samples[mid] : 0.5 * (samples[mid - 1] + samples[mid]);
  return s;
}

double geometric_mean(const std::vector<double>& samples, double floor) {
  expects(!samples.empty(), "cannot summarize zero samples");
  expects(floor > 0.0, "floor must be positive");
  double log_sum = 0.0;
  for (const double v : samples) log_sum += std::log(std::max(v, floor));
  return std::exp(log_sum / static_cast<double>(samples.size()));
}

}  // namespace gridbox::runner
