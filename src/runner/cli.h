// Command-line front end for the experiment runner (the `gridbox_sim` tool).
//
// The parser is a library function so tests can exercise it without spawning
// processes; the tool's main() is a thin wrapper (tools/gridbox_sim.cpp).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/runner/config.h"

namespace gridbox::runner {

struct CliOptions {
  ExperimentConfig config;
  std::size_t runs = 1;
  std::string csv_path;  ///< empty = no CSV output
  bool show_help = false;
  /// Differential oracle mode: run all four protocols over the same
  /// scenario and cross-check their audited estimates (--differential).
  bool differential = false;

  /// --metrics: collect per-run metric snapshots and print the merged
  /// snapshot (run order) as JSON after the summary.
  bool metrics = false;
  /// --trace-out PATH: JSONL trace per run. With --runs R > 1, run r writes
  /// PATH with "-run<r>" inserted before the extension.
  std::string trace_out;
  /// --run-manifest PATH: write a run.json manifest covering all runs
  /// (implies metric collection so per-run timelines exist).
  std::string manifest_path;
};

/// The trace file a given run writes: `base` itself for a single run, else
/// "-run<run>" inserted before the extension (trace.jsonl -> trace-run3.jsonl).
[[nodiscard]] std::string trace_path_for_run(const std::string& base,
                                             std::size_t run,
                                             std::size_t total_runs);

struct CliParseResult {
  std::optional<CliOptions> options;  ///< set on success
  std::string error;                  ///< set on failure
};

/// Parses gridbox_sim flags (see usage_text()). `args` excludes argv[0].
[[nodiscard]] CliParseResult parse_cli(const std::vector<std::string>& args);

/// The --help text.
[[nodiscard]] std::string usage_text();

/// Runs the experiment(s) described by `options` and prints per-run rows and
/// a summary to stdout. Returns a process exit code.
int run_cli(const CliOptions& options);

}  // namespace gridbox::runner
