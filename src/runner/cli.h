// Command-line front end for the experiment runner (the `gridbox_sim` tool).
//
// The parser is a library function so tests can exercise it without spawning
// processes; the tool's main() is a thin wrapper (tools/gridbox_sim.cpp).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/runner/config.h"

namespace gridbox::runner {

struct CliOptions {
  ExperimentConfig config;
  std::size_t runs = 1;
  std::string csv_path;  ///< empty = no CSV output
  bool show_help = false;
  /// Differential oracle mode: run all four protocols over the same
  /// scenario and cross-check their audited estimates (--differential).
  bool differential = false;

  /// --metrics: collect per-run metric snapshots and print the merged
  /// snapshot (run order) as JSON after the summary.
  bool metrics = false;
  /// --trace-out PATH: JSONL trace per run. With --runs R > 1, run r writes
  /// PATH with "-run<r>" inserted before the extension.
  std::string trace_out;
  /// --run-manifest PATH: write a run.json manifest covering all runs
  /// (implies metric collection so per-run timelines exist).
  std::string manifest_path;
  /// --lineage PATH: write the causal vote-lineage forest per run as a
  /// "gridbox-lineage/1" JSON document (per-run "-run<r>" suffix as above).
  std::string lineage_out;
  /// --curves-out PATH: write per-run empirical epidemic curves (plus the
  /// analytic model for hier-gossip) as a "gridbox-curves/1" JSON document.
  std::string curves_out;
  /// --flight-recorder PATH: arm a bounded in-memory event ring per run and
  /// dump it (config + chaos spec + event tail) to PATH when the run dies on
  /// an invariant violation. Nothing is written for clean runs.
  std::string flight_out;

  /// --instances I > 0: service mode — stream I concurrent protocol
  /// instances through one simulated membership/transport (docs/service.md).
  /// Incompatible with --runs/--differential; --lineage then writes one
  /// "gridbox-lineage-multi/1" document for gridbox_explain --instance.
  std::size_t instances = 0;
  /// --epoch-interval-us U: service launch cadence.
  SimTime epoch_interval = SimTime::millis(50);
  /// --in-flight W: service bounded in-flight window.
  std::size_t in_flight = 8;
};

/// The trace file a given run writes: `base` itself for a single run, else
/// "-run<run>" inserted before the extension (trace.jsonl -> trace-run3.jsonl).
[[nodiscard]] std::string trace_path_for_run(const std::string& base,
                                             std::size_t run,
                                             std::size_t total_runs);

struct CliParseResult {
  std::optional<CliOptions> options;  ///< set on success
  std::string error;                  ///< set on failure
};

/// Parses gridbox_sim flags (see usage_text()). `args` excludes argv[0].
[[nodiscard]] CliParseResult parse_cli(const std::vector<std::string>& args);

/// The --help text.
[[nodiscard]] std::string usage_text();

/// Runs the experiment(s) described by `options` and prints per-run rows and
/// a summary to stdout. Returns a process exit code.
int run_cli(const CliOptions& options);

}  // namespace gridbox::runner
