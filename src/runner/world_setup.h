// World-building shared by the simulated and real-socket runners.
//
// run_experiment (simulator) and run_udp_experiment (loopback sockets) must
// derive *bit-identical* ground truth from the same ExperimentConfig: the
// same votes, views, hash salt, hierarchy, audit bit order, and per-node RNG
// streams. That equality is what makes the UDP-vs-simulator differential
// harness meaningful — any divergence it reports is a transport or protocol
// bug, never a world-construction artifact. Factoring the derivations here
// keeps the two runners call-for-call identical by construction.
//
// RNG discipline: every stream is derived from the root seed by a fixed tag
// (streams::*), so adding a consumer never perturbs another stream and the
// derivation order in the two runners cannot drift apart.
#pragma once

#include <cstdint>
#include <memory>

#include "src/agg/audit.h"
#include "src/agg/vote.h"
#include "src/common/rng.h"
#include "src/hashing/hash_function.h"
#include "src/hierarchy/hierarchy.h"
#include "src/membership/group.h"
#include "src/membership/view.h"
#include "src/net/fault_model.h"
#include "src/protocols/node.h"
#include "src/runner/config.h"

namespace gridbox::runner {

/// Independent RNG stream tags, derived from the root seed.
namespace streams {
inline constexpr std::uint64_t kVote = 0x01;
inline constexpr std::uint64_t kNet = 0x02;
inline constexpr std::uint64_t kCrash = 0x03;
inline constexpr std::uint64_t kPosition = 0x04;
inline constexpr std::uint64_t kHashSalt = 0x05;
inline constexpr std::uint64_t kView = 0x06;
inline constexpr std::uint64_t kChaos = 0x07;
inline constexpr std::uint64_t kNodeBase = 0x1000;
}  // namespace streams

/// The view a given member starts with: complete, or an independent random
/// subset of the others at the configured coverage (self always included).
/// Consumes `view_rng` sequentially — call in ascending member order.
[[nodiscard]] membership::View make_view(const ExperimentConfig& config,
                                         const membership::Group& group,
                                         MemberId self, Rng& view_rng);

/// The run's ground-truth vote table for the configured workload.
[[nodiscard]] agg::VoteTable make_votes(const ExperimentConfig& config,
                                        const membership::Group& group,
                                        Rng& rng);

/// The static fault pipeline (no-loss / iid / partition) for the config.
[[nodiscard]] std::unique_ptr<net::FaultModel> make_faults(
    const ExperimentConfig& config);

/// The well-known hash H: same salt at every member (it is group-wide
/// knowledge), different across seeds so box assignments vary per run.
[[nodiscard]] std::unique_ptr<hashing::HashFunction> make_hash(
    const ExperimentConfig& config, const membership::Group& group,
    const Rng& root);

/// Hierarchy fanout K for the configured protocol (hier-gossip takes K from
/// gossip.k; the hierarchical baselines from hierarchy_k).
[[nodiscard]] std::uint32_t hierarchy_fanout(const ExperimentConfig& config);

/// Audit registry with the bit order sorted by (box, id): a box's members
/// get contiguous bits, so the audit sets the protocols actually build
/// occupy narrow word windows. Returns null when config.audit is off.
[[nodiscard]] std::unique_ptr<agg::AuditRegistry> make_audit(
    const ExperimentConfig& config, const membership::Group& group,
    const hierarchy::GridBoxHierarchy& hier);

/// One protocol node of the configured kind.
[[nodiscard]] std::unique_ptr<protocols::ProtocolNode> make_node(
    const ExperimentConfig& config, MemberId id, double vote,
    membership::View view, protocols::NodeEnv env, Rng rng);

/// Theoretical protocol horizon on the run clock: when a healthy run should
/// have finished. Hier-gossip has the paper's closed form (Theorem 1:
/// start skew + (num_phases × rounds-per-phase + 1) rounds); the baselines
/// get a generous round-count blanket. The UDP runtime and the service
/// engine both size their deadlines from this.
[[nodiscard]] SimTime protocol_horizon(const ExperimentConfig& config,
                                       std::size_t num_phases);

}  // namespace gridbox::runner
