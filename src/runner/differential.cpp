#include "src/runner/differential.h"

#include <cmath>
#include <exception>

#include "src/runner/experiment.h"

namespace gridbox::runner {

bool DifferentialReport::ok() const {
  if (rows.empty()) return false;
  double true_value = 0.0;
  bool have_true_value = false;
  for (const DifferentialRow& row : rows) {
    if (!row.ran) return false;
    if (row.measurement.audit_violations != 0) return false;
    if (row.measurement.reconstruction_failures != 0) return false;
    // All protocols aggregate the same vote table: the ground truth they
    // are judged against must be bit-identical across rows.
    if (!have_true_value) {
      true_value = row.measurement.true_value;
      have_true_value = true;
    } else if (row.measurement.true_value != true_value) {
      return false;
    }
  }
  return true;
}

DifferentialReport run_differential(const ExperimentConfig& base) {
  // The four protocols of the oracle (§7 compares exactly these; leader
  // election is the committee protocol's K' = 1 special case).
  static constexpr ProtocolKind kProtocols[] = {
      ProtocolKind::kHierGossip,
      ProtocolKind::kFullyDistributed,
      ProtocolKind::kCentralized,
      ProtocolKind::kCommittee,
  };

  DifferentialReport report;
  for (const ProtocolKind protocol : kProtocols) {
    ExperimentConfig config = base;
    config.protocol = protocol;
    config.audit = true;  // the oracle is the audit trail

    DifferentialRow row;
    row.protocol = protocol;
    try {
      row.measurement = run_experiment(config).measurement;
      row.ran = true;
    } catch (const std::exception& e) {
      row.error = e.what();
    }
    report.rows.push_back(std::move(row));
  }
  return report;
}

}  // namespace gridbox::runner
