#include "src/runner/world_setup.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "src/common/ensure.h"
#include "src/hashing/fair_hash.h"
#include "src/hashing/topo_hash.h"
#include "src/protocols/baseline/leader_election.h"
#include "src/protocols/gossip/hier_gossip.h"

namespace gridbox::runner {

membership::View make_view(const ExperimentConfig& config,
                           const membership::Group& group, MemberId self,
                           Rng& view_rng) {
  if (config.view_coverage >= 1.0) return group.full_view();
  expects(config.view_coverage > 0.0, "view coverage must be positive");
  expects(config.protocol == ProtocolKind::kHierGossip ||
              config.protocol == ProtocolKind::kFullyDistributed,
          "partial views: leader/committee baselines need complete views");
  std::vector<MemberId> known;
  known.push_back(self);
  for (const MemberId m : group.members()) {
    if (m != self && view_rng.bernoulli(config.view_coverage)) {
      known.push_back(m);
    }
  }
  return membership::View{std::move(known)};
}

agg::VoteTable make_votes(const ExperimentConfig& config,
                          const membership::Group& group, Rng& rng) {
  switch (config.workload) {
    case WorkloadKind::kUniform:
      return agg::uniform_votes(config.group_size, rng, config.vote_lo,
                                config.vote_hi);
    case WorkloadKind::kNormal:
      return agg::normal_votes(config.group_size, rng, config.vote_mu,
                               config.vote_sigma);
    case WorkloadKind::kField:
      expects(group.has_positions(),
              "field workload requires assign_positions");
      return agg::field_votes(
          config.group_size, [&group](MemberId m) { return group.position(m); },
          rng, config.vote_mu, config.vote_sigma, config.vote_sigma * 0.1);
  }
  ensures(false, "unhandled workload kind");
  return agg::uniform_votes(config.group_size, rng, 0.0, 1.0);
}

std::unique_ptr<net::FaultModel> make_faults(const ExperimentConfig& config) {
  if (config.partition_loss >= 0.0) {
    return net::PartitionLoss::split_at(
        static_cast<MemberId::underlying>(config.group_size / 2),
        config.ucast_loss, config.partition_loss);
  }
  if (config.ucast_loss <= 0.0) return std::make_unique<net::NoLoss>();
  return std::make_unique<net::IndependentLoss>(config.ucast_loss);
}

std::unique_ptr<hashing::HashFunction> make_hash(const ExperimentConfig& config,
                                                 const membership::Group& group,
                                                 const Rng& root) {
  if (config.hash == HashKind::kTopoAware) {
    expects(group.has_positions(), "topo-aware hash requires positions");
    std::vector<Position> sample;
    sample.reserve(group.size());
    for (const MemberId m : group.members()) sample.push_back(group.position(m));
    return std::make_unique<hashing::TopoAwareHash>(
        [&group](MemberId m) { return group.position(m); }, sample);
  }
  Rng salt_rng = root.derive(streams::kHashSalt);
  return std::make_unique<hashing::FairHash>(salt_rng.raw());
}

std::uint32_t hierarchy_fanout(const ExperimentConfig& config) {
  return config.protocol == ProtocolKind::kHierGossip ? config.gossip.k
                                                      : config.hierarchy_k;
}

std::unique_ptr<agg::AuditRegistry> make_audit(
    const ExperimentConfig& config, const membership::Group& group,
    const hierarchy::GridBoxHierarchy& hier) {
  if (!config.audit) return nullptr;
  auto audit = std::make_unique<agg::AuditRegistry>(config.group_size);
  // Bit order sorted by (box, id): a box's members get contiguous bits, so
  // the audit sets the protocols actually build (per-box, then per-subtree)
  // occupy narrow word windows instead of scattering across the universe.
  std::vector<MemberId> by_box = group.members();
  std::stable_sort(by_box.begin(), by_box.end(),
                   [&hier](MemberId a, MemberId b) {
                     return hier.phase_group(a, 1) < hier.phase_group(b, 1);
                   });
  std::vector<std::uint32_t> member_to_bit(config.group_size);
  for (std::uint32_t bit = 0; bit < by_box.size(); ++bit) {
    member_to_bit[by_box[bit].value()] = bit;
  }
  audit->set_bit_order(std::move(member_to_bit));
  return audit;
}

SimTime protocol_horizon(const ExperimentConfig& config,
                         std::size_t num_phases) {
  if (config.protocol == ProtocolKind::kHierGossip) {
    const std::uint64_t total_rounds =
        num_phases * config.gossip.rounds_per_phase(config.group_size) + 1;
    return config.gossip.start_skew_max +
           SimTime::micros(static_cast<SimTime::underlying>(total_rounds) *
                           config.gossip.round_duration.ticks());
  }
  return SimTime::micros(200 * config.round_duration().ticks());
}

std::unique_ptr<protocols::ProtocolNode> make_node(
    const ExperimentConfig& config, MemberId id, double vote,
    membership::View view, protocols::NodeEnv env, Rng rng) {
  switch (config.protocol) {
    case ProtocolKind::kHierGossip:
      return std::make_unique<protocols::gossip::HierGossipNode>(
          id, vote, std::move(view), env, rng, config.gossip);
    case ProtocolKind::kFullyDistributed:
      return std::make_unique<protocols::baseline::FullyDistributedNode>(
          id, vote, std::move(view), env, rng, config.fully_distributed);
    case ProtocolKind::kCentralized:
      return std::make_unique<protocols::baseline::CentralizedNode>(
          id, vote, std::move(view), env, rng, config.centralized);
    case ProtocolKind::kLeaderElection:
      return std::make_unique<protocols::baseline::LeaderElectionNode>(
          id, vote, std::move(view), env, rng, config.committee);
    case ProtocolKind::kCommittee:
      return std::make_unique<protocols::baseline::CommitteeNode>(
          id, vote, std::move(view), env, rng, config.committee);
  }
  ensures(false, "unhandled protocol kind");
  return nullptr;
}

}  // namespace gridbox::runner
