// Parameter sweeps: the machinery behind every figure reproduction.
//
// A sweep varies one knob across a list of x values; at each point it runs
// `runs_per_point` independent seeds and summarizes the measured
// incompleteness (and auxiliary metrics). Bench binaries print the resulting
// series — the same rows the paper plots.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "src/runner/config.h"
#include "src/runner/experiment.h"
#include "src/runner/stats.h"

namespace gridbox::runner {

struct SweepPoint {
  double x = 0.0;
  SummaryStats incompleteness;       ///< 1 − mean completeness, per run
  double incompleteness_geomean = 0.0;  ///< log-scale-friendly average
  SummaryStats completeness;
  SummaryStats messages;             ///< network messages per run
  SummaryStats rounds;               ///< slowest node's rounds per run
  SummaryStats abs_error;            ///< |estimate − truth| per run
  double mean_effective_b = 0.0;
  std::uint64_t audit_violations = 0;  ///< summed across runs (must be 0)
};

struct SweepResult {
  std::string x_label;
  std::vector<SweepPoint> points;
};

/// Runs the sweep. `apply` mutates a copy of `base` for the given x; seeds
/// are base.seed, base.seed+1, ... per run, offset per point so no two
/// points share a seed.
[[nodiscard]] SweepResult run_sweep(
    const ExperimentConfig& base, std::string x_label,
    const std::vector<double>& xs,
    const std::function<void(ExperimentConfig&, double)>& apply,
    std::size_t runs_per_point);

}  // namespace gridbox::runner
