// Parameter sweeps: the machinery behind every figure reproduction.
//
// A sweep varies one knob across a list of x values; at each point it runs
// `runs_per_point` independent seeds and summarizes the measured
// incompleteness (and auxiliary metrics). Bench binaries print the resulting
// series — the same rows the paper plots.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "src/runner/config.h"
#include "src/runner/experiment.h"
#include "src/runner/stats.h"

namespace gridbox::runner {

struct SweepPoint {
  double x = 0.0;
  SummaryStats incompleteness;       ///< 1 − mean completeness, per run
  double incompleteness_geomean = 0.0;  ///< log-scale-friendly average
  SummaryStats completeness;
  SummaryStats messages;             ///< network messages per run
  SummaryStats rounds;               ///< slowest node's rounds per run
  SummaryStats abs_error;            ///< |estimate − truth| per run
  double mean_effective_b = 0.0;
  std::uint64_t audit_violations = 0;  ///< summed across runs (must be 0)
};

struct SweepResult {
  std::string x_label;
  std::vector<SweepPoint> points;
  double wall_seconds = 0.0;  ///< host wall-clock for the whole sweep
  std::size_t jobs_used = 1;  ///< worker threads the sweep actually ran on

  // Reproducibility identification, copied from the base config so every
  // emitted row can carry it (bench CSV columns seed/jobs/chaos).
  std::uint64_t base_seed = 0;
  std::string chaos_spec;

  /// Sum of sim events across all runs (drives events/s in benches).
  std::uint64_t total_sim_events = 0;

  /// Metric snapshots of all runs, merged in slot order during the serial
  /// reduction. Empty unless base.collect_metrics: counters and histogram
  /// buckets sum, gauges keep the maximum — all associative, so the merged
  /// snapshot is bitwise-identical at any jobs value.
  obs::MetricsSnapshot metrics;

  /// Hot-path profiles merged across runs (counts deterministic, elapsed
  /// times wall-clock). Empty unless profiling was on.
  obs::ProfileSnapshot profile;
};

/// Runs the sweep. `apply` mutates a copy of `base` for the given x.
///
/// Seeds are derived in closed form per (point, run):
///     seed = base.seed + point_index * runs_per_point + run
/// i.e. point 0 uses base.seed .. base.seed+runs_per_point-1, point 1 the
/// next block, and so on — no two (point, run) pairs share a seed, and a
/// point's seeds do not depend on how many runs preceded it in program
/// order.
///
/// All (point, run) pairs are fanned across a thread pool of
/// base.resolved_jobs() workers (base.jobs; 0 = auto from GRIDBOX_JOBS /
/// hardware_concurrency). Because each run's seed is position-derived and
/// results land in pre-sized slots reduced in serial order, the returned
/// SweepResult is bitwise-identical for every jobs value, including the
/// serial jobs=1 path.
///
/// With jobs > 1, `apply` is invoked concurrently from pool threads: it must
/// only mutate the config copy it is given (capturing by value or reading
/// immutable state is fine; writing shared state is not).
[[nodiscard]] SweepResult run_sweep(
    const ExperimentConfig& base, std::string x_label,
    const std::vector<double>& xs,
    const std::function<void(ExperimentConfig&, double)>& apply,
    std::size_t runs_per_point);

}  // namespace gridbox::runner
