#include "src/runner/sweep.h"

#include <chrono>
#include <exception>
#include <future>
#include <utility>

#include "src/common/ensure.h"
#include "src/common/thread_pool.h"

namespace gridbox::runner {

namespace {

/// Runs every (point, run) pair and fills `results` (pre-sized to
/// xs.size() * runs_per_point, indexed point_index * runs_per_point + run).
/// The seed for each slot is derived in closed form from the slot index, so
/// execution order — serial or across pool threads — cannot affect any
/// result.
void execute_runs(const ExperimentConfig& base,
                  const std::vector<double>& xs,
                  const std::function<void(ExperimentConfig&, double)>& apply,
                  std::size_t runs_per_point, std::size_t jobs,
                  std::vector<RunResult>& results) {
  const auto run_one = [&](std::size_t point_index, std::size_t run) {
    ExperimentConfig config = base;
    apply(config, xs[point_index]);
    const std::size_t slot = point_index * runs_per_point + run;
    config.seed = base.seed + static_cast<std::uint64_t>(slot);
    results[slot] = run_experiment(config);
  };

  if (jobs <= 1) {
    for (std::size_t p = 0; p < xs.size(); ++p) {
      for (std::size_t r = 0; r < runs_per_point; ++r) run_one(p, r);
    }
    return;
  }

  common::ThreadPool pool(jobs);
  std::vector<std::future<void>> futures;
  futures.reserve(results.size());
  for (std::size_t p = 0; p < xs.size(); ++p) {
    for (std::size_t r = 0; r < runs_per_point; ++r) {
      futures.push_back(pool.submit([&run_one, p, r] { run_one(p, r); }));
    }
  }
  // Join everything before rethrowing so no task is left writing into
  // `results` when the first failure propagates.
  std::exception_ptr first_error;
  for (std::future<void>& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace

SweepResult run_sweep(
    const ExperimentConfig& base, std::string x_label,
    const std::vector<double>& xs,
    const std::function<void(ExperimentConfig&, double)>& apply,
    std::size_t runs_per_point) {
  expects(!xs.empty(), "sweep needs at least one x value");
  expects(runs_per_point >= 1, "sweep needs at least one run per point");

  const auto start = std::chrono::steady_clock::now();

  SweepResult result;
  result.x_label = std::move(x_label);
  result.points.reserve(xs.size());
  result.jobs_used = base.resolved_jobs();
  result.base_seed = base.seed;
  result.chaos_spec = base.chaos_spec;

  std::vector<RunResult> runs(xs.size() * runs_per_point);
  execute_runs(base, xs, apply, runs_per_point, result.jobs_used, runs);

  // Reduction stays single-threaded and in (point, run) order, so the
  // floating-point summaries are independent of pool scheduling.
  for (std::size_t point_index = 0; point_index < xs.size(); ++point_index) {
    SweepPoint point;
    point.x = xs[point_index];

    std::vector<double> incompleteness;
    std::vector<double> completeness;
    std::vector<double> messages;
    std::vector<double> rounds;
    std::vector<double> errors;
    double b_sum = 0.0;

    for (std::size_t run = 0; run < runs_per_point; ++run) {
      const RunResult& r = runs[point_index * runs_per_point + run];
      incompleteness.push_back(r.measurement.mean_incompleteness);
      completeness.push_back(r.measurement.mean_completeness);
      messages.push_back(static_cast<double>(r.measurement.network_messages));
      rounds.push_back(static_cast<double>(r.measurement.max_rounds));
      errors.push_back(r.measurement.mean_abs_error);
      b_sum += r.effective_b;
      point.audit_violations += r.measurement.audit_violations;
      result.total_sim_events += r.sim_events;
      result.metrics.merge(r.metrics);
      result.profile.merge(r.profile);
    }

    point.incompleteness = summarize(incompleteness);
    point.incompleteness_geomean = geometric_mean(incompleteness);
    point.completeness = summarize(completeness);
    point.messages = summarize(messages);
    point.rounds = summarize(rounds);
    point.abs_error = summarize(errors);
    point.mean_effective_b = b_sum / static_cast<double>(runs_per_point);
    result.points.push_back(point);
  }

  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace gridbox::runner
