#include "src/runner/sweep.h"

#include "src/common/ensure.h"

namespace gridbox::runner {

SweepResult run_sweep(
    const ExperimentConfig& base, std::string x_label,
    const std::vector<double>& xs,
    const std::function<void(ExperimentConfig&, double)>& apply,
    std::size_t runs_per_point) {
  expects(!xs.empty(), "sweep needs at least one x value");
  expects(runs_per_point >= 1, "sweep needs at least one run per point");

  SweepResult result;
  result.x_label = std::move(x_label);
  result.points.reserve(xs.size());

  std::uint64_t seed_cursor = base.seed;
  for (const double x : xs) {
    SweepPoint point;
    point.x = x;

    std::vector<double> incompleteness;
    std::vector<double> completeness;
    std::vector<double> messages;
    std::vector<double> rounds;
    std::vector<double> errors;
    double b_sum = 0.0;

    for (std::size_t run = 0; run < runs_per_point; ++run) {
      ExperimentConfig config = base;
      apply(config, x);
      config.seed = seed_cursor++;
      const RunResult r = run_experiment(config);
      incompleteness.push_back(r.measurement.mean_incompleteness);
      completeness.push_back(r.measurement.mean_completeness);
      messages.push_back(static_cast<double>(r.measurement.network_messages));
      rounds.push_back(static_cast<double>(r.measurement.max_rounds));
      errors.push_back(r.measurement.mean_abs_error);
      b_sum += r.effective_b;
      point.audit_violations += r.measurement.audit_violations;
    }

    point.incompleteness = summarize(incompleteness);
    point.incompleteness_geomean = geometric_mean(incompleteness);
    point.completeness = summarize(completeness);
    point.messages = summarize(messages);
    point.rounds = summarize(rounds);
    point.abs_error = summarize(errors);
    point.mean_effective_b = b_sum / static_cast<double>(runs_per_point);
    result.points.push_back(point);
  }
  return result;
}

}  // namespace gridbox::runner
