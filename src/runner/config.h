// Experiment configuration: everything that defines one simulated run.
//
// Defaults reproduce the paper's §7 setup: N = 200, ucastl = 0.25,
// pf = 0.001, K = 4, M = 2, C = 1.0, fair hash, simultaneous start,
// asynchronous phase bumping, crash without recovery.
#pragma once

#include <cstdint>
#include <string>

#include "src/agg/aggregate.h"
#include "src/common/types.h"
#include "src/obs/telemetry.h"
#include "src/protocols/baseline/centralized.h"
#include "src/protocols/baseline/committee.h"
#include "src/protocols/baseline/fully_distributed.h"
#include "src/protocols/gossip/gossip_config.h"

namespace gridbox::obs {
class TraceSink;
class LineageTracker;
class CurveRecorder;
class FlightRecorder;
}  // namespace gridbox::obs

namespace gridbox::runner {

enum class ProtocolKind : std::uint8_t {
  kHierGossip = 0,
  kFullyDistributed = 1,
  kCentralized = 2,
  kLeaderElection = 3,
  kCommittee = 4,
};

[[nodiscard]] std::string to_string(ProtocolKind kind);

enum class HashKind : std::uint8_t { kFair = 0, kTopoAware = 1 };

enum class WorkloadKind : std::uint8_t {
  kUniform = 0,  ///< iid Uniform(vote_lo, vote_hi)
  kNormal = 1,   ///< iid Normal(vote_mu, vote_sigma)
  kField = 2,    ///< smooth spatial field + sensor noise (needs positions)
};

struct ExperimentConfig {
  ProtocolKind protocol = ProtocolKind::kHierGossip;
  std::size_t group_size = 200;

  // Network (paper defaults).
  double ucast_loss = 0.25;       ///< iid unicast loss probability
  double partition_loss = -1.0;   ///< cross-partition loss; < 0 = no partition
  SimTime latency_lo = SimTime::micros(200);
  SimTime latency_hi = SimTime::micros(2'000);

  // Membership. Paper: crash without recovery.
  double crash_probability = 0.001;  ///< pf, per member per gossip round

  /// Fraction of the other members each member's view contains (1.0 =
  /// complete views, the paper's baseline assumption). Lower values exercise
  /// §2's relaxation: "this can be relaxed in our final hierarchical
  /// gossiping solution" — gossip needs only *enough* peers per phase, not
  /// all of them. Each member always knows itself; partial views are drawn
  /// independently per member. Only meaningful for ProtocolKind::kHierGossip
  /// and kFullyDistributed; the leader/committee baselines require complete
  /// consistent views (§6.2) and reject anything less.
  double view_coverage = 1.0;

  // Hierarchy / hashing.
  HashKind hash = HashKind::kFair;
  /// Hierarchy fanout K for the hierarchical baselines (leader/committee);
  /// hier-gossip takes K from gossip.k instead.
  std::uint32_t hierarchy_k = 4;
  bool assign_positions = false;  ///< scatter members in the unit square

  // Aggregate + workload.
  agg::AggregateKind aggregate = agg::AggregateKind::kAverage;
  WorkloadKind workload = WorkloadKind::kUniform;
  double vote_lo = 15.0;   ///< e.g. temperatures in [15, 35)
  double vote_hi = 35.0;
  double vote_mu = 25.0;
  double vote_sigma = 5.0;

  // Per-protocol tuning.
  protocols::gossip::GossipConfig gossip;
  protocols::baseline::FullyDistributedConfig fully_distributed;
  protocols::baseline::CentralizedConfig centralized;
  protocols::baseline::CommitteeConfig committee;

  // Instrumentation.
  bool audit = false;  ///< attach provenance tokens & verify no double count

  /// Collect a metrics snapshot for the run (RunResult::metrics) plus the
  /// phase timeline (RunResult::timeline). Off by default: benches measure
  /// the uninstrumented hot path unless asked otherwise. Metric values are a
  /// pure function of (config, seed) — bitwise-identical at any `jobs`.
  bool collect_metrics = false;

  /// Structured JSONL trace sink for this run (non-owning; may be null).
  /// One sink serves one run: sweeps leave this null and per-run tracing is
  /// wired by the caller that owns the sink (see cli --trace-out).
  obs::TraceSink* trace_sink = nullptr;

  /// Causal vote-lineage tracker for this run (non-owning; may be null).
  /// run_experiment installs the run clock and feeds it every knowledge-gain
  /// / conclude / finish / crash event (see cli --lineage).
  obs::LineageTracker* lineage = nullptr;

  /// Epidemic-curve recorder for this run (non-owning; may be null).
  /// run_experiment installs the run clock, protocol-aware denominators and
  /// the analytic model parameters (see cli --curves-out).
  obs::CurveRecorder* curves = nullptr;

  /// Flight recorder for this run (non-owning; may be null). Receives every
  /// transport + phase-machine event into a bounded ring; the CLI dumps it
  /// when a run throws InvariantError (see cli --flight-recorder).
  obs::FlightRecorder* flight = nullptr;

  /// Live telemetry sampling (src/obs/telemetry.h): when enabled, the
  /// runtime arms one TelemetryLane per shard (one lane on the simulator)
  /// and a control-thread sampler streams gridbox-telemetry/1 JSONL on
  /// telemetry.interval. Execution-side instrumentation like the pointers
  /// above: excluded from config_canonical_text, never affects results.
  obs::TelemetryConfig telemetry;

  /// Aggregate hot-path scoped timers for this run (RunResult::profile).
  /// Wall-clock telemetry: counts are deterministic, elapsed times are not.
  /// Defaults to the GRIDBOX_PROFILE environment variable.
  bool profile = false;

  /// Chaos spec text (see docs/chaos.md); empty = no chaos. Parsed once per
  /// run; network-affecting directives replace the static ucast/partition
  /// loss pipeline for the run, crashes schedule on the simulator clock.
  std::string chaos_spec;

  /// Run the always-on invariant checker (hier-gossip runs only; the
  /// baselines have no trace hooks). Violations throw InvariantError out of
  /// the run. On by default: a run that breaks an invariant is not a result.
  bool check_invariants = true;

  std::uint64_t seed = 1;

  /// Host-side execution knob: worker threads used when this config is the
  /// base of a multi-run sweep (run_sweep / gridbox_sim --runs). 0 = auto
  /// (GRIDBOX_JOBS env var, else hardware_concurrency). Never affects
  /// simulated results — runs are seeded in closed form, so any jobs value
  /// produces bitwise-identical measurements.
  std::size_t jobs = 0;

  /// `jobs` with the auto default resolved (env var / hardware_concurrency).
  [[nodiscard]] std::size_t resolved_jobs() const;

  /// Round duration of the configured protocol (drives the crash clock).
  [[nodiscard]] SimTime round_duration() const;
};

/// Canonical one-line `key=value` serialization of every knob that affects
/// simulated results (execution knobs like jobs and instrumentation toggles
/// are excluded — they never change what a run computes). Two configs with
/// the same text produce identical runs at the same seed; the run manifest
/// stores this text and its FNV-1a hash as the config fingerprint.
[[nodiscard]] std::string config_canonical_text(const ExperimentConfig& config);

}  // namespace gridbox::runner
