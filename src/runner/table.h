// Aligned console tables and CSV export for bench output.
#pragma once

#include <string>
#include <vector>

namespace gridbox::runner {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Adds one row; must match the header width.
  void add_row(std::vector<std::string> row);

  /// Appends a column holding `value` in every existing row — identification
  /// columns (seed/jobs/chaos) that apply to the whole table. Rows added
  /// afterwards must include the new column themselves.
  void add_constant_column(const std::string& name, const std::string& value) {
    header_.push_back(name);
    for (auto& row : rows_) row.push_back(value);
  }

  /// Formats a double compactly: scientific for very small/large magnitudes,
  /// fixed otherwise.
  [[nodiscard]] static std::string num(double v);
  [[nodiscard]] static std::string num(double v, int precision);

  /// Renders with aligned columns (2-space gutters).
  [[nodiscard]] std::string to_text() const;

  /// Renders as CSV (header + rows). Fields containing commas or quotes are
  /// quoted.
  [[nodiscard]] std::string to_csv() const;

  /// Writes the CSV form to `path` (overwrites). Returns false on IO error.
  bool write_csv(const std::string& path) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const { return header_.size(); }

  // Cell access, for emitters that re-shape the table (e.g. bench JSON).
  [[nodiscard]] const std::vector<std::string>& header() const {
    return header_;
  }
  [[nodiscard]] const std::vector<std::string>& row(std::size_t i) const {
    return rows_[i];
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gridbox::runner
