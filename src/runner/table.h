// Aligned console tables and CSV export for bench output.
#pragma once

#include <string>
#include <vector>

namespace gridbox::runner {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Adds one row; must match the header width.
  void add_row(std::vector<std::string> row);

  /// Formats a double compactly: scientific for very small/large magnitudes,
  /// fixed otherwise.
  [[nodiscard]] static std::string num(double v);
  [[nodiscard]] static std::string num(double v, int precision);

  /// Renders with aligned columns (2-space gutters).
  [[nodiscard]] std::string to_text() const;

  /// Renders as CSV (header + rows). Fields containing commas or quotes are
  /// quoted.
  [[nodiscard]] std::string to_csv() const;

  /// Writes the CSV form to `path` (overwrites). Returns false on IO error.
  bool write_csv(const std::string& path) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const { return header_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gridbox::runner
