// One end-to-end simulated run: group -> votes -> hierarchy -> network ->
// protocol nodes -> measurement.
#pragma once

#include <cstdint>

#include "src/net/stats.h"
#include "src/obs/metrics.h"
#include "src/obs/profile.h"
#include "src/obs/timeline.h"
#include "src/protocols/protocol_stats.h"
#include "src/runner/config.h"

namespace gridbox::runner {

struct RunResult {
  protocols::RunMeasurement measurement;
  net::NetworkStats network;
  /// Mean Euclidean link distance per message (0 unless positions assigned).
  double mean_link_distance = 0.0;
  /// Effective analysis-model b for these knobs (hier-gossip only, else 0).
  double effective_b = 0.0;

  /// Simulator events executed (always filled; drives events/s in benches).
  std::uint64_t sim_events = 0;
  /// Last simulated timestamp (always filled).
  std::int64_t sim_end_us = 0;

  // Observability outputs, empty unless config.collect_metrics / profile.
  obs::MetricsSnapshot metrics;
  obs::PhaseTimeline timeline;
  obs::ProfileSnapshot profile;
};

/// Executes one run. Deterministic in config (including config.seed).
[[nodiscard]] RunResult run_experiment(const ExperimentConfig& config);

}  // namespace gridbox::runner
