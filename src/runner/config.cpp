#include "src/runner/config.h"

#include <cinttypes>
#include <cstdio>
#include <string>

#include "src/common/thread_pool.h"

namespace gridbox::runner {

std::size_t ExperimentConfig::resolved_jobs() const {
  return common::ThreadPool::resolve_jobs(jobs);
}

std::string to_string(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kHierGossip: return "hier-gossip";
    case ProtocolKind::kFullyDistributed: return "all-to-all";
    case ProtocolKind::kCentralized: return "centralized";
    case ProtocolKind::kLeaderElection: return "leader";
    case ProtocolKind::kCommittee: return "committee";
  }
  return "unknown";
}

namespace {

/// Canonical-text field writer. Doubles use %.17g so any two doubles that
/// compare unequal serialize differently; times serialize as integer ticks.
class CanonicalWriter {
 public:
  void field(const char* key, const std::string& value) {
    if (!text_.empty()) text_ += ' ';
    text_ += key;
    text_ += '=';
    text_ += value;
  }
  void field(const char* key, const char* value) {
    field(key, std::string(value));
  }
  void field(const char* key, double value) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    field(key, std::string(buf));
  }
  void field(const char* key, std::uint64_t value) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
    field(key, std::string(buf));
  }
  void field(const char* key, std::uint32_t value) {
    field(key, static_cast<std::uint64_t>(value));
  }
  void field(const char* key, bool value) {
    field(key, value ? "1" : "0");
  }
  void field(const char* key, SimTime value) {
    field(key, static_cast<std::uint64_t>(value.ticks()));
  }

  [[nodiscard]] std::string take() { return std::move(text_); }

 private:
  std::string text_;
};

const char* to_name(HashKind hash) {
  return hash == HashKind::kTopoAware ? "topo" : "fair";
}

const char* to_name(WorkloadKind workload) {
  switch (workload) {
    case WorkloadKind::kUniform: return "uniform";
    case WorkloadKind::kNormal: return "normal";
    case WorkloadKind::kField: return "field";
  }
  return "?";
}

const char* to_name(protocols::gossip::ExchangeMode mode) {
  using protocols::gossip::ExchangeMode;
  return mode == ExchangeMode::kSingleValue ? "single" : "full";
}

const char* to_name(protocols::gossip::ValuePolicy policy) {
  using protocols::gossip::ValuePolicy;
  switch (policy) {
    case ValuePolicy::kRandomSingle: return "random";
    case ValuePolicy::kRarestFirst: return "rarest";
    case ValuePolicy::kRoundRobin: return "rr";
  }
  return "?";
}

}  // namespace

std::string config_canonical_text(const ExperimentConfig& config) {
  CanonicalWriter w;
  w.field("proto", to_string(config.protocol));
  w.field("n", config.group_size);
  w.field("ucast_loss", config.ucast_loss);
  w.field("partition_loss", config.partition_loss);
  w.field("latency_lo_us", config.latency_lo);
  w.field("latency_hi_us", config.latency_hi);
  w.field("pf", config.crash_probability);
  w.field("view_coverage", config.view_coverage);
  w.field("hash", to_name(config.hash));
  w.field("hierarchy_k", config.hierarchy_k);
  w.field("positions", config.assign_positions);
  w.field("agg", agg::to_string(config.aggregate));
  w.field("workload", to_name(config.workload));
  w.field("vote_lo", config.vote_lo);
  w.field("vote_hi", config.vote_hi);
  w.field("vote_mu", config.vote_mu);
  w.field("vote_sigma", config.vote_sigma);
  // Gossip knobs (the trace pointer is instrumentation, not a knob).
  w.field("g.k", config.gossip.k);
  w.field("g.m", config.gossip.fanout_m);
  w.field("g.c", config.gossip.round_multiplier_c);
  w.field("g.rounds_override", config.gossip.rounds_per_phase_override);
  w.field("g.round_us", config.gossip.round_duration);
  w.field("g.early_bump", config.gossip.early_bump);
  w.field("g.p1_view_bump", config.gossip.phase1_early_bump_with_view);
  w.field("g.linger", config.gossip.final_phase_linger);
  w.field("g.exchange", to_name(config.gossip.exchange_mode));
  w.field("g.policy", to_name(config.gossip.value_policy));
  w.field("g.skew_us", config.gossip.start_skew_max);
  // Baseline knobs.
  w.field("fd.m", config.fully_distributed.fanout_m);
  w.field("fd.drain", config.fully_distributed.drain_rounds);
  w.field("fd.round_us", config.fully_distributed.round_duration);
  w.field("c.leader", static_cast<std::uint64_t>(config.centralized.leader.value()));
  w.field("c.retries", config.centralized.vote_retries);
  w.field("c.stagger", config.centralized.staggered_sends);
  w.field("c.cap", config.centralized.leader_receive_cap);
  w.field("c.collect", config.centralized.collect_rounds);
  w.field("c.dfanout", config.centralized.dissemination_fanout);
  w.field("c.round_us", config.centralized.round_duration);
  w.field("k.size", config.committee.committee_size);
  w.field("k.phase_rounds", config.committee.phase_rounds);
  w.field("k.m", config.committee.fanout_m);
  w.field("k.round_us", config.committee.round_duration);
  // Semantics-affecting instrumentation: audits add provenance payload bytes.
  w.field("audit", config.audit);
  w.field("chaos", config.chaos_spec.empty() ? "-" : config.chaos_spec);
  return w.take();
}

SimTime ExperimentConfig::round_duration() const {
  switch (protocol) {
    case ProtocolKind::kHierGossip:
      return gossip.round_duration;
    case ProtocolKind::kFullyDistributed:
      return fully_distributed.round_duration;
    case ProtocolKind::kCentralized:
      return centralized.round_duration;
    case ProtocolKind::kLeaderElection:
    case ProtocolKind::kCommittee:
      return committee.round_duration;
  }
  return SimTime::millis(10);
}

}  // namespace gridbox::runner
