#include "src/runner/config.h"

#include "src/common/thread_pool.h"

namespace gridbox::runner {

std::size_t ExperimentConfig::resolved_jobs() const {
  return common::ThreadPool::resolve_jobs(jobs);
}

std::string to_string(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kHierGossip: return "hier-gossip";
    case ProtocolKind::kFullyDistributed: return "all-to-all";
    case ProtocolKind::kCentralized: return "centralized";
    case ProtocolKind::kLeaderElection: return "leader";
    case ProtocolKind::kCommittee: return "committee";
  }
  return "unknown";
}

SimTime ExperimentConfig::round_duration() const {
  switch (protocol) {
    case ProtocolKind::kHierGossip:
      return gossip.round_duration;
    case ProtocolKind::kFullyDistributed:
      return fully_distributed.round_duration;
    case ProtocolKind::kCentralized:
      return centralized.round_duration;
    case ProtocolKind::kLeaderElection:
    case ProtocolKind::kCommittee:
      return committee.round_duration;
  }
  return SimTime::millis(10);
}

}  // namespace gridbox::runner
