// The real-socket runner: the same experiment, over UDP on loopback.
//
// run_udp_experiment builds the identical world run_experiment builds —
// same votes, views, hash salt, hierarchy, audit bit order, per-node RNG
// streams, all via world_setup.h — but wires the nodes to net::UdpTransport
// shards driven by net::Reactor threads instead of the simulator. Protocol
// code is byte-for-byte the same; only the NodeEnv seams differ. The
// UDP-vs-simulator differential harness (udp_differential.h) is built on
// exactly that: any disagreement is a transport or timing bug, never a
// world-construction artifact.
//
// Real time replaces virtual time, so two things change at the harness
// level: the run needs a wall-clock completion deadline (with a generous
// multiplier — host scheduling noise must not fail a correct run), and the
// hier-gossip invariant checker runs with fail_fast off, reporting
// violations after the threads join instead of throwing across them.
//
// Threading (DESIGN.md §14): members shard over reactor threads by
// id % shards, and each shard owns its members end to end — sockets,
// timers, deliveries, arena lanes. There is no dispatch lock; the state a
// callback touches outside its shard is concurrency-safe by construction
// (atomic Group liveness, the mutex-gated AuditRegistry, the concurrent
// invariant checker, and a per-member completion board folded into one
// atomic that replaces the old done()-scans-every-node probe).
#pragma once

#include <cstdint>
#include <string>

#include "src/net/stats.h"
#include "src/protocols/protocol_stats.h"
#include "src/runner/config.h"

namespace gridbox::runner {

struct UdpRunConfig {
  /// The experiment to run. Execution-side fields that only exist in the
  /// simulator are ignored: latency_lo/hi (loopback has its own latency),
  /// observability sinks, and `jobs`. Chaos specs and ucast/partition loss
  /// apply through the userspace send shim.
  ExperimentConfig experiment;

  /// Member m listens on 127.0.0.1:(port_base + m). Parallel test runs
  /// must pick disjoint port windows.
  std::uint16_t port_base = 38000;

  /// Reactor shard threads; 0 = min(4, hardware_concurrency, N).
  std::size_t shards = 0;

  /// Wall-clock completion deadline = max(min_deadline, deadline_factor ×
  /// the protocol's theoretical horizon). Generous by default: a missed
  /// deadline means "did not complete", never a flaky margin.
  double deadline_factor = 20.0;
  SimTime min_deadline = SimTime::seconds(5);
};

struct UdpRunResult {
  protocols::RunMeasurement measurement;
  net::NetworkStats network;  ///< summed over all transport shards

  bool completed = false;   ///< every node finished/crashed before deadline
  SimTime elapsed = SimTime::zero();  ///< real run time (µs since epoch)
  std::size_t shards = 0;
  std::uint64_t timers_fired = 0;
  std::uint64_t actions_run = 0;
  std::uint64_t polls = 0;
  std::uint64_t eintr_retries = 0;

  /// Invariant-checker findings (hier-gossip only; empty otherwise or when
  /// check_invariants is off). Includes members unfinished at deadline.
  std::uint64_t invariant_violations = 0;
  std::string first_violation;
};

/// Runs the experiment over real sockets. Throws PreconditionError on
/// setup failures (ports in use, fd limits that cannot be raised).
[[nodiscard]] UdpRunResult run_udp_experiment(const UdpRunConfig& config);

/// Raises RLIMIT_NOFILE's soft limit toward the hard limit until at least
/// `need` descriptors fit (sockets + epsilon). Returns the resulting soft
/// limit. Idempotent; never lowers the limit. When the limit actually
/// moves, logs the old -> new values to stderr once.
std::uint64_t raise_fd_limit(std::uint64_t need);

/// raise_fd_limit, then throws PreconditionError with an actionable
/// message (needed fds vs soft/hard limit, plus the `ulimit -n` to run)
/// when the run still cannot fit — instead of EMFILE deep in socket setup.
void require_fd_capacity(std::uint64_t need);

}  // namespace gridbox::runner
