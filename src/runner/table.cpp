#include "src/runner/table.h"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "src/common/ensure.h"

namespace gridbox::runner {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  expects(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  expects(row.size() == header_.size(), "row width must match header");
  rows_.push_back(std::move(row));
}

std::string Table::num(double v) {
  const double mag = std::abs(v);
  if (v != 0.0 && (mag < 1e-3 || mag >= 1e7)) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3e", v);
    return buf;
  }
  return num(v, mag >= 100.0 ? 1 : 4);
}

std::string Table::num(double v, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::to_text() const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  const auto emit_row = [&width](std::string& out,
                                 const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      if (c + 1 < row.size()) out.append(width[c] - row[c].size() + 2, ' ');
    }
    out += '\n';
  };
  std::string out;
  emit_row(out, header_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    rule += width[c] + (c + 1 < width.size() ? 2 : 0);
  }
  out.append(rule, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(out, row);
  return out;
}

namespace {

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (const char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

std::string Table::to_csv() const {
  std::string out;
  const auto emit = [&out](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += csv_escape(row[c]);
      if (c + 1 < row.size()) out += ',';
    }
    out += '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out;
}

bool Table::write_csv(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << to_csv();
  return static_cast<bool>(out);
}

}  // namespace gridbox::runner
