#include "src/runner/experiment.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "src/agg/vote.h"
#include "src/common/ensure.h"
#include "src/hashing/fair_hash.h"
#include "src/hashing/topo_hash.h"
#include "src/hierarchy/hierarchy.h"
#include "src/membership/group.h"
#include "src/net/chaos.h"
#include "src/net/network.h"
#include "src/obs/run_observer.h"
#include "src/obs/trace_sink.h"
#include "src/protocols/baseline/leader_election.h"
#include "src/protocols/gossip/hier_gossip.h"
#include "src/protocols/invariant_checker.h"
#include "src/sim/simulator.h"
#include "src/analysis/epidemic.h"

namespace gridbox::runner {

namespace {

// Independent rng stream tags.
constexpr std::uint64_t kVoteStream = 0x01;
constexpr std::uint64_t kNetStream = 0x02;
constexpr std::uint64_t kCrashStream = 0x03;
constexpr std::uint64_t kPositionStream = 0x04;
constexpr std::uint64_t kHashSaltStream = 0x05;
constexpr std::uint64_t kViewStream = 0x06;
constexpr std::uint64_t kChaosStream = 0x07;
constexpr std::uint64_t kNodeStreamBase = 0x1000;

// The view a given member starts with: complete, or an independent random
// subset of the others at the configured coverage (self always included).
[[nodiscard]] membership::View make_view(const ExperimentConfig& config,
                                         const membership::Group& group,
                                         MemberId self, Rng& view_rng) {
  if (config.view_coverage >= 1.0) return group.full_view();
  expects(config.view_coverage > 0.0, "view coverage must be positive");
  expects(config.protocol == ProtocolKind::kHierGossip ||
              config.protocol == ProtocolKind::kFullyDistributed,
          "partial views: leader/committee baselines need complete views");
  std::vector<MemberId> known;
  known.push_back(self);
  for (const MemberId m : group.members()) {
    if (m != self && view_rng.bernoulli(config.view_coverage)) {
      known.push_back(m);
    }
  }
  return membership::View{std::move(known)};
}

[[nodiscard]] agg::VoteTable make_votes(const ExperimentConfig& config,
                                        const membership::Group& group,
                                        Rng& rng) {
  switch (config.workload) {
    case WorkloadKind::kUniform:
      return agg::uniform_votes(config.group_size, rng, config.vote_lo,
                                config.vote_hi);
    case WorkloadKind::kNormal:
      return agg::normal_votes(config.group_size, rng, config.vote_mu,
                               config.vote_sigma);
    case WorkloadKind::kField:
      expects(group.has_positions(),
              "field workload requires assign_positions");
      return agg::field_votes(
          config.group_size, [&group](MemberId m) { return group.position(m); },
          rng, config.vote_mu, config.vote_sigma, config.vote_sigma * 0.1);
  }
  ensures(false, "unhandled workload kind");
  return agg::uniform_votes(config.group_size, rng, 0.0, 1.0);
}

[[nodiscard]] std::unique_ptr<net::FaultModel> make_faults(
    const ExperimentConfig& config) {
  if (config.partition_loss >= 0.0) {
    return net::PartitionLoss::split_at(
        static_cast<MemberId::underlying>(config.group_size / 2),
        config.ucast_loss, config.partition_loss);
  }
  if (config.ucast_loss <= 0.0) return std::make_unique<net::NoLoss>();
  return std::make_unique<net::IndependentLoss>(config.ucast_loss);
}

[[nodiscard]] std::unique_ptr<protocols::ProtocolNode> make_node(
    const ExperimentConfig& config, MemberId id, double vote,
    membership::View view, protocols::NodeEnv env, Rng rng) {
  switch (config.protocol) {
    case ProtocolKind::kHierGossip:
      return std::make_unique<protocols::gossip::HierGossipNode>(
          id, vote, std::move(view), env, rng, config.gossip);
    case ProtocolKind::kFullyDistributed:
      return std::make_unique<protocols::baseline::FullyDistributedNode>(
          id, vote, std::move(view), env, rng, config.fully_distributed);
    case ProtocolKind::kCentralized:
      return std::make_unique<protocols::baseline::CentralizedNode>(
          id, vote, std::move(view), env, rng, config.centralized);
    case ProtocolKind::kLeaderElection:
      return std::make_unique<protocols::baseline::LeaderElectionNode>(
          id, vote, std::move(view), env, rng, config.committee);
    case ProtocolKind::kCommittee:
      return std::make_unique<protocols::baseline::CommitteeNode>(
          id, vote, std::move(view), env, rng, config.committee);
  }
  ensures(false, "unhandled protocol kind");
  return nullptr;
}

}  // namespace

RunResult run_experiment(const ExperimentConfig& config) {
  expects(config.group_size >= 2, "need at least two members");
  const Rng root(config.seed);

  membership::Group group(config.group_size);
  if (config.assign_positions || config.hash == HashKind::kTopoAware ||
      config.workload == WorkloadKind::kField) {
    Rng pos_rng = root.derive(kPositionStream);
    group.scatter_positions(pos_rng);
  }

  Rng vote_rng = root.derive(kVoteStream);
  const agg::VoteTable votes = make_votes(config, group, vote_rng);

  // The well-known hash H: same salt at every member (it is group-wide
  // knowledge), different across seeds so box assignments vary per run.
  std::unique_ptr<hashing::HashFunction> hash;
  if (config.hash == HashKind::kTopoAware) {
    expects(group.has_positions(), "topo-aware hash requires positions");
    std::vector<Position> sample;
    sample.reserve(group.size());
    for (const MemberId m : group.members()) sample.push_back(group.position(m));
    hash = std::make_unique<hashing::TopoAwareHash>(
        [&group](MemberId m) { return group.position(m); }, sample);
  } else {
    Rng salt_rng = root.derive(kHashSaltStream);
    hash = std::make_unique<hashing::FairHash>(salt_rng.raw());
  }

  const std::uint32_t k = config.protocol == ProtocolKind::kHierGossip
                              ? config.gossip.k
                              : config.hierarchy_k;
  hierarchy::GridBoxHierarchy hier(config.group_size, k, *hash);

  sim::Simulator simulator;
  net::SimNetwork network(
      simulator, make_faults(config),
      std::make_unique<net::UniformLatency>(config.latency_lo,
                                            config.latency_hi),
      root.derive(kNetStream));
  network.set_liveness([&group](MemberId m) { return group.is_alive(m); });

  // Chaos: scripted adversity layered over (or replacing) the static fault
  // pipeline. The schedule draws from its own derived streams, so adding a
  // chaos spec never perturbs vote/view/node randomness.
  // Observability: one registry + observer per run when anything wants
  // events. Metric values are a pure function of (config, seed); the
  // registry lives on this stack frame, so parallel sweep runs never share
  // state and snapshots merge deterministically in slot order afterwards.
  std::unique_ptr<obs::MetricsRegistry> metrics;
  std::unique_ptr<obs::RunObserver> observer;
  if (config.collect_metrics || config.trace_sink != nullptr) {
    if (config.collect_metrics) {
      metrics = std::make_unique<obs::MetricsRegistry>();
    }
    obs::RunObserver::Options oopt;
    oopt.metrics = metrics.get();
    oopt.sink = config.trace_sink;
    oopt.simulator = &simulator;
    oopt.group_size = config.group_size;
    oopt.next = config.gossip.trace;
    observer = std::make_unique<obs::RunObserver>(oopt);
    network.set_observer(observer.get());
    group.set_crash_listener(
        [&observer](MemberId m) { observer->on_crash(m); });
  }

  // Hot-path profiling: thread-local collector installed for the run only.
  obs::ProfileCollector profiler;
  const bool profiling = config.profile || obs::profile_requested_by_env();
  obs::ProfileInstallGuard profile_guard(profiling ? &profiler : nullptr);

  net::ChaosSpec chaos = net::ChaosSpec::parse(config.chaos_spec);
  if (chaos.affects_network()) {
    network.install_chaos(std::make_unique<net::ChaosSchedule>(
        chaos, make_faults(config), config.group_size,
        root.derive(kChaosStream)));
  }
  net::schedule_chaos_crashes(chaos, simulator,
                              [&group](MemberId m) { group.crash(m); });
  if (group.has_positions()) {
    network.set_distance([&group](MemberId a, MemberId b) {
      return std::sqrt(squared_distance(group.position(a), group.position(b)));
    });
  }

  std::unique_ptr<agg::AuditRegistry> audit;
  if (config.audit) {
    audit = std::make_unique<agg::AuditRegistry>(config.group_size);
  }

  protocols::NodeEnv env;
  env.simulator = &simulator;
  env.network = &network;
  env.hierarchy = &hier;
  env.audit = audit.get();
  env.is_alive = [&group](MemberId m) { return group.is_alive(m); };
  env.kind = config.aggregate;

  // Always-on invariant checker (hier-gossip: it is the only protocol with
  // trace hooks). Chains in front of any caller-supplied trace; violations
  // throw InvariantError out of simulator.run() at the offending event.
  // Trace chain: node -> invariant checker -> run observer -> user trace.
  // The observer (when present) already forwards to config.gossip.trace.
  protocols::gossip::GossipTrace* trace_tail =
      observer != nullptr
          ? static_cast<protocols::gossip::GossipTrace*>(observer.get())
          : config.gossip.trace;
  ExperimentConfig node_config = config;
  node_config.gossip.trace = trace_tail;
  std::unique_ptr<protocols::InvariantChecker> checker;
  if (config.check_invariants &&
      config.protocol == ProtocolKind::kHierGossip) {
    protocols::InvariantChecker::Config icfg;
    icfg.group_size = config.group_size;
    icfg.fanout = config.gossip.k;
    icfg.num_phases = hier.num_phases();
    icfg.simulator = &simulator;
    icfg.audit = audit.get();
    // Theorem 1 bound: every phase lasts ⌈C·log_M N⌉ rounds, so all trace
    // activity must stop by start skew + num_phases × rounds-per-phase
    // rounds, plus one round of slack for the final deadline conclusion.
    const std::uint64_t total_rounds =
        hier.num_phases() * config.gossip.rounds_per_phase(config.group_size) +
        1;
    icfg.deadline =
        config.gossip.start_skew_max +
        SimTime::micros(static_cast<SimTime::underlying>(total_rounds) *
                        config.gossip.round_duration.ticks());
    icfg.next = trace_tail;
    checker = std::make_unique<protocols::InvariantChecker>(icfg);
    node_config.gossip.trace = checker.get();
  }

  Rng view_rng = root.derive(kViewStream);
  std::vector<std::unique_ptr<protocols::ProtocolNode>> nodes;
  nodes.reserve(config.group_size);
  for (const MemberId m : group.members()) {
    auto node = make_node(node_config, m, votes.of(m),
                          make_view(config, group, m, view_rng), env,
                          root.derive(kNodeStreamBase + m.value()));
    network.attach(m, *node);
    nodes.push_back(std::move(node));
  }
  for (auto& node : nodes) node->start(SimTime::zero());

  // Crash clock: one tick per gossip round, applying pf to each live member
  // (paper §7: crash without recovery). Stops once no live member is still
  // running the protocol, letting the simulation drain and finish.
  const membership::PerRoundCrash crash_model(config.crash_probability);
  if (config.crash_probability > 0.0) {
    auto crash_rng = std::make_shared<Rng>(root.derive(kCrashStream));
    auto round = std::make_shared<std::uint64_t>(0);
    simulator.schedule_periodic(
        config.round_duration(), config.round_duration(),
        [&group, &nodes, &crash_model, crash_rng, round]() {
          (void)group.apply_round_crashes(crash_model, (*round)++, *crash_rng);
          for (const auto& node : nodes) {
            if (!node->finished() && group.is_alive(node->self())) return true;
          }
          return false;
        });
  }

  const std::uint64_t executed = simulator.run();

  if (checker != nullptr) {
    // Termination: every member still alive at the end must have delivered
    // an estimate within the deadline (crashed members legitimately stop).
    std::vector<MemberId> alive;
    for (const MemberId m : group.members()) {
      if (group.is_alive(m)) alive.push_back(m);
    }
    checker->expect_all_finished(alive);
  }

  RunResult result;
  result.measurement = protocols::measure_run(group, nodes, votes,
                                              config.aggregate,
                                              network.stats(), audit.get());
  result.network = network.stats();
  result.sim_events = executed;
  result.sim_end_us = simulator.now().ticks();
  if (metrics != nullptr) {
    // Whole-run facts that have no natural event: queue pressure, executed
    // events, and end-of-run completeness in basis points (integral, so the
    // merged sweep maximum stays bitwise-deterministic).
    metrics->gauge("event_queue_depth").set(simulator.peak_pending_events());
    metrics->gauge("sim_events").set(executed);
    metrics->gauge("completeness_bp")
        .set(static_cast<std::uint64_t>(
            result.measurement.mean_completeness * 10'000.0 + 0.5));
    result.metrics = metrics->snapshot();
  }
  if (observer != nullptr) result.timeline = observer->timeline();
  if (profiling) result.profile = profiler.snapshot();
  if (group.has_positions() && network.stats().messages_sent > 0) {
    result.mean_link_distance =
        network.stats().link_distance_sum /
        static_cast<double>(network.stats().messages_sent);
  }
  if (config.protocol == ProtocolKind::kHierGossip) {
    result.effective_b = analysis::effective_b(
        config.gossip.fanout_m, std::max(0.0, config.ucast_loss),
        static_cast<double>(config.gossip.rounds_per_phase(config.group_size)),
        config.gossip.k, config.group_size);
  }
  return result;
}

}  // namespace gridbox::runner
