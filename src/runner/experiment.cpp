#include "src/runner/experiment.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "src/agg/vote.h"
#include "src/common/ensure.h"
#include "src/runner/world_setup.h"
#include "src/hierarchy/hierarchy.h"
#include "src/membership/group.h"
#include "src/net/chaos.h"
#include "src/net/network.h"
#include "src/obs/curves.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/lineage.h"
#include "src/obs/run_observer.h"
#include "src/obs/trace_sink.h"
#include "src/protocols/gossip/hier_gossip.h"
#include "src/protocols/invariant_checker.h"
#include "src/sim/simulator.h"
#include "src/analysis/completeness.h"
#include "src/analysis/epidemic.h"

namespace gridbox::runner {

namespace {

/// Members per phase group at `phase`, as (group key, member count) pairs.
/// One sort + run-length pass instead of a hash map: this runs inside the
/// instrumented window when curves are armed, so it stays cheap.
[[nodiscard]] std::vector<std::pair<std::uint64_t, std::uint64_t>>
group_sizes_at(const hierarchy::GridBoxHierarchy& hier,
               const membership::Group& group, std::size_t phase) {
  std::vector<std::uint64_t> keys;
  keys.reserve(group.members().size());
  for (const MemberId m : group.members()) {
    keys.push_back(hier.phase_group(m, phase));
  }
  std::sort(keys.begin(), keys.end());
  std::vector<std::pair<std::uint64_t, std::uint64_t>> sizes;
  for (std::size_t i = 0; i < keys.size();) {
    std::size_t j = i;
    while (j < keys.size() && keys[j] == keys[i]) ++j;
    sizes.emplace_back(keys[i], j - i);
    i = j;
  }
  return sizes;
}

/// Protocol-aware curve setup: the denominators are the maximum number of
/// knowledge-gain events each phase can produce (the "everyone learns
/// everything" ceiling), so cumulative gains / denominator is the empirical
/// infected fraction. Hier-gossip additionally gets the paper's analytic
/// model so one JSON carries both sides of the Figure 4 overlay.
void configure_curves(obs::CurveRecorder& curves,
                      const ExperimentConfig& config,
                      const hierarchy::GridBoxHierarchy& hier,
                      const membership::Group& group) {
  const std::uint64_t n = config.group_size;
  const std::uint32_t k = hier.fanout();
  const std::size_t phases = hier.num_phases();
  curves.set_meta(config.group_size, k);

  std::vector<std::uint64_t> denoms;
  std::uint64_t result_denom = 0;
  switch (config.protocol) {
    case ProtocolKind::kHierGossip: {
      // Phase 1: each of the |g| members of a box can learn all |g| votes.
      // Phase i >= 2: each member holds up to K child-slot aggregates.
      std::uint64_t d1 = 0;
      for (const auto& [key, size] : group_sizes_at(hier, group, 1)) {
        (void)key;
        d1 += size * size;
      }
      denoms.push_back(d1);
      for (std::size_t p = 2; p <= phases; ++p) denoms.push_back(n * k);
      break;
    }
    case ProtocolKind::kFullyDistributed:
      denoms.push_back(n * n);  // everyone can learn every vote
      break;
    case ProtocolKind::kCentralized:
      // The leader learns all N votes; everyone else holds only its own.
      denoms.push_back(2 * n - 1);
      result_denom = n;
      break;
    case ProtocolKind::kLeaderElection:
    case ProtocolKind::kCommittee: {
      const std::uint64_t committee_size =
          config.protocol == ProtocolKind::kLeaderElection
              ? 1
              : config.committee.committee_size;
      // Level 1: N own-vote seeds + each box committee member collecting the
      // |b|-1 other votes of its box.
      std::uint64_t d1 = n;
      std::uint64_t prev_committee = 0;
      for (const auto& [key, size] : group_sizes_at(hier, group, 1)) {
        (void)key;
        const std::uint64_t t = std::min<std::uint64_t>(committee_size, size);
        d1 += t * (size - 1);
        prev_committee += t;
      }
      denoms.push_back(d1);
      // Level p >= 2: level p-1 committee members export their partial (one
      // kLocal each) and level-p committee members fill up to K child slots.
      for (std::size_t p = 2; p <= phases; ++p) {
        std::uint64_t level_committee = 0;
        for (const auto& [key, size] : group_sizes_at(hier, group, p)) {
          (void)key;
          level_committee += std::min<std::uint64_t>(committee_size, size);
        }
        denoms.push_back(prev_committee + level_committee * k);
        prev_committee = level_committee;
      }
      result_denom = n;
      break;
    }
  }
  curves.set_denominators(std::move(denoms), result_denom);

  if (config.protocol == ProtocolKind::kHierGossip) {
    obs::CurveRecorder::Analytic a;
    a.enabled = true;
    a.b = analysis::effective_b(
        config.gossip.fanout_m, std::max(0.0, config.ucast_loss),
        static_cast<double>(config.gossip.rounds_per_phase(config.group_size)),
        config.gossip.k, config.group_size);
    a.rounds_per_phase = config.gossip.rounds_per_phase(config.group_size);
    // Phase i spreads v_i values through groups of (on average) m_i members:
    // v_1 = m_1 = mean occupied-box population, v_i = K child aggregates for
    // i >= 2 while m_i grows by K per level. b is per value in flight.
    for (std::size_t p = 1; p <= phases; ++p) {
      const auto sizes = group_sizes_at(hier, group, p);
      const double m =
          sizes.empty() ? 1.0
                        : static_cast<double>(n) /
                              static_cast<double>(sizes.size());
      const double values_in_flight = p == 1 ? m : static_cast<double>(k);
      obs::CurveRecorder::PhaseModel pm;
      pm.m = m;
      pm.b = values_in_flight > 0.0 ? a.b / values_in_flight : a.b;
      a.phases.push_back(pm);
    }
    a.c1 = analysis::first_phase_completeness(config.group_size,
                                              config.gossip.k, a.b);
    a.phase_bound = analysis::phase_completeness_bound(config.group_size, a.b);
    a.protocol_bound = analysis::protocol_completeness_bound(
        config.group_size, config.gossip.k, a.b);
    a.theorem1 = analysis::theorem1_bound(config.group_size);
    curves.set_analytic(std::move(a));
  }
}

}  // namespace

RunResult run_experiment(const ExperimentConfig& config) {
  expects(config.group_size >= 2, "need at least two members");
  const Rng root(config.seed);

  membership::Group group(config.group_size);
  if (config.assign_positions || config.hash == HashKind::kTopoAware ||
      config.workload == WorkloadKind::kField) {
    Rng pos_rng = root.derive(streams::kPosition);
    group.scatter_positions(pos_rng);
  }

  Rng vote_rng = root.derive(streams::kVote);
  const agg::VoteTable votes = make_votes(config, group, vote_rng);

  const std::unique_ptr<hashing::HashFunction> hash =
      make_hash(config, group, root);
  hierarchy::GridBoxHierarchy hier(config.group_size, hierarchy_fanout(config),
                                   *hash);

  sim::Simulator simulator;
  net::SimNetwork network(
      simulator, make_faults(config),
      std::make_unique<net::UniformLatency>(config.latency_lo,
                                            config.latency_hi),
      root.derive(streams::kNet));
  network.set_liveness([&group](MemberId m) { return group.is_alive(m); });

  // Chaos: scripted adversity layered over (or replacing) the static fault
  // pipeline. The schedule draws from its own derived streams, so adding a
  // chaos spec never perturbs vote/view/node randomness.
  // Observability: one registry + observer per run when anything wants
  // events. Metric values are a pure function of (config, seed); the
  // registry lives on this stack frame, so parallel sweep runs never share
  // state and snapshots merge deterministically in slot order afterwards.
  std::unique_ptr<obs::MetricsRegistry> metrics;
  std::unique_ptr<obs::RunObserver> observer;
  if (config.collect_metrics || config.trace_sink != nullptr ||
      config.lineage != nullptr || config.curves != nullptr ||
      config.flight != nullptr) {
    if (config.collect_metrics) {
      metrics = std::make_unique<obs::MetricsRegistry>();
    }
    obs::RunObserver::Options oopt;
    oopt.metrics = metrics.get();
    oopt.sink = config.trace_sink;
    oopt.simulator = &simulator;
    oopt.group_size = config.group_size;
    oopt.next = config.gossip.trace;
    oopt.lineage = config.lineage;
    oopt.curves = config.curves;
    oopt.flight = config.flight;
    observer = std::make_unique<obs::RunObserver>(oopt);
    network.set_observer(observer.get());
    group.set_crash_listener(
        [&observer](MemberId m) { observer->on_crash(m); });
  }
  if (config.lineage != nullptr) {
    config.lineage->set_clock(&simulator);
    config.lineage->capture_hierarchy(hier);
  }
  if (config.curves != nullptr) {
    config.curves->set_clock(&simulator);
    configure_curves(*config.curves, config, hier, group);
  }

  // Hot-path profiling: thread-local collector installed for the run only.
  // Allocated on demand so an unprofiled run never constructs the registry
  // (tests assert exactly that).
  const bool profiling = config.profile || obs::profile_requested_by_env();
  std::unique_ptr<obs::ProfileCollector> profiler;
  if (profiling) profiler = std::make_unique<obs::ProfileCollector>();
  obs::ProfileInstallGuard profile_guard(profiler.get());

  net::ChaosSpec chaos = net::ChaosSpec::parse(config.chaos_spec);
  // Churn needs an epoch boundary for a joiner to enter at; the one-shot
  // protocol has none. The service runtime (src/service) honors these.
  expects(!chaos.has_churn(),
          "join/recover directives require the service runtime");
  if (chaos.affects_network()) {
    network.install_chaos(std::make_unique<net::ChaosSchedule>(
        chaos, make_faults(config), config.group_size,
        root.derive(streams::kChaos)));
  }
  net::schedule_chaos_crashes(chaos, simulator,
                              [&group](MemberId m) { group.crash(m); });
  if (group.has_positions()) {
    network.set_distance([&group](MemberId a, MemberId b) {
      return std::sqrt(squared_distance(group.position(a), group.position(b)));
    });
  }

  const std::unique_ptr<agg::AuditRegistry> audit =
      make_audit(config, group, hier);

  // Shared struct-of-arrays node state (§DESIGN 11): one arena of flat
  // per-member lanes plus the hierarchy's phase-group segment tables,
  // computed once per run instead of once per node.
  protocols::StateArena arena(group.shared_members());
  arena.build_phase_tables(hier);
  simulator.reserve_events(4 * config.group_size);
  // The runaway-reschedule guard must scale with N: a healthy audited run
  // executes ~450 events per member at N = 10^5 and grows ~log N past
  // that, so the stock 500M lifetime cap is real headroom at small N but
  // less than one legitimate run at N = 10^6. 1000 events/member keeps a
  // comfortable 2x margin while still catching unbounded loops.
  simulator.set_event_limit(std::max<std::uint64_t>(
      500'000'000, 1000 * static_cast<std::uint64_t>(config.group_size)));

  protocols::NodeEnv env;
  env.scheduler = &simulator;
  env.network = &network;
  env.hierarchy = &hier;
  env.audit = audit.get();
  env.arena = &arena;
  env.is_alive = [&group](MemberId m) { return group.is_alive(m); };
  env.kind = config.aggregate;

  // Always-on invariant checker (hier-gossip: it is the only protocol with
  // trace hooks). Chains in front of any caller-supplied trace; violations
  // throw InvariantError out of simulator.run() at the offending event.
  // Trace chain: node -> invariant checker -> run observer -> user trace.
  // The observer (when present) already forwards to config.gossip.trace.
  protocols::gossip::GossipTrace* trace_tail =
      observer != nullptr
          ? static_cast<protocols::gossip::GossipTrace*>(observer.get())
          : config.gossip.trace;
  ExperimentConfig node_config = config;
  node_config.gossip.trace = trace_tail;
  std::unique_ptr<protocols::InvariantChecker> checker;
  if (config.check_invariants &&
      config.protocol == ProtocolKind::kHierGossip) {
    protocols::InvariantChecker::Config icfg;
    icfg.group_size = config.group_size;
    icfg.fanout = config.gossip.k;
    icfg.num_phases = hier.num_phases();
    icfg.scheduler = &simulator;
    icfg.audit = audit.get();
    // Theorem 1 bound: every phase lasts ⌈C·log_M N⌉ rounds, so all trace
    // activity must stop by start skew + num_phases × rounds-per-phase
    // rounds, plus one round of slack for the final deadline conclusion.
    const std::uint64_t total_rounds =
        hier.num_phases() * config.gossip.rounds_per_phase(config.group_size) +
        1;
    icfg.deadline =
        config.gossip.start_skew_max +
        SimTime::micros(static_cast<SimTime::underlying>(total_rounds) *
                        config.gossip.round_duration.ticks());
    icfg.next = trace_tail;
    checker = std::make_unique<protocols::InvariantChecker>(icfg);
    node_config.gossip.trace = checker.get();
  }
  // The baselines read their trace from the environment (they take no
  // per-protocol trace config); same chain head as hier-gossip.
  env.trace = node_config.gossip.trace;

  Rng view_rng = root.derive(streams::kView);
  std::vector<std::unique_ptr<protocols::ProtocolNode>> nodes;
  nodes.reserve(config.group_size);
  for (const MemberId m : group.members()) {
    auto node = make_node(node_config, m, votes.of(m),
                          make_view(config, group, m, view_rng), env,
                          root.derive(streams::kNodeBase + m.value()));
    network.attach(m, *node);
    nodes.push_back(std::move(node));
  }
  for (auto& node : nodes) node->start(SimTime::zero());

  // Crash clock: one tick per gossip round, applying pf to each live member
  // (paper §7: crash without recovery). Stops once no live member is still
  // running the protocol, letting the simulation drain and finish.
  const membership::PerRoundCrash crash_model(config.crash_probability);
  if (config.crash_probability > 0.0) {
    auto crash_rng = std::make_shared<Rng>(root.derive(streams::kCrash));
    auto round = std::make_shared<std::uint64_t>(0);
    simulator.schedule_periodic(
        config.round_duration(), config.round_duration(),
        [&group, &nodes, &crash_model, crash_rng, round]() {
          (void)group.apply_round_crashes(crash_model, (*round)++, *crash_rng);
          for (const auto& node : nodes) {
            if (!node->finished() && group.is_alive(node->self())) return true;
          }
          return false;
        });
  }

  // Live telemetry on the simulator substrate: one lane, sampled on the
  // virtual clock between run_until slices — the series is a pure function
  // of (config, seed), byte-identical at any host parallelism.
  std::unique_ptr<obs::TelemetryHub> tel_hub;
  std::unique_ptr<obs::TelemetrySampler> tel_sampler;
  if (config.telemetry.enabled) {
    tel_hub = std::make_unique<obs::TelemetryHub>(1);
    simulator.set_telemetry(&tel_hub->lane(0));
    tel_sampler =
        std::make_unique<obs::TelemetrySampler>(*tel_hub, config.telemetry);
  }

  std::uint64_t executed = 0;
  if (tel_sampler != nullptr) {
    while (!simulator.idle()) {
      executed += simulator.run_until(simulator.now() + tel_sampler->interval());
      tel_sampler->sample(simulator.now());
    }
  } else {
    executed = simulator.run();
  }

  if (checker != nullptr) {
    // Termination: every member still alive at the end must have delivered
    // an estimate within the deadline (crashed members legitimately stop).
    std::vector<MemberId> alive;
    for (const MemberId m : group.members()) {
      if (group.is_alive(m)) alive.push_back(m);
    }
    checker->expect_all_finished(alive);
  }

  RunResult result;
  result.measurement = protocols::measure_run(group, nodes, votes,
                                              config.aggregate,
                                              network.stats(), audit.get());
  result.network = network.stats();
  result.sim_events = executed;
  result.sim_end_us = simulator.now().ticks();
  if (metrics != nullptr) {
    // The observer tallies hot-path events locally; fold them into the
    // registry before anything reads it.
    observer->flush();
    // Whole-run facts that have no natural event: queue pressure, executed
    // events, and end-of-run completeness in basis points (integral, so the
    // merged sweep maximum stays bitwise-deterministic).
    metrics->gauge("event_queue_depth").set(simulator.peak_pending_events());
    metrics->gauge("sim_events").set(executed);
    metrics->gauge("completeness_bp")
        .set(static_cast<std::uint64_t>(
            result.measurement.mean_completeness * 10'000.0 + 0.5));
    result.metrics = metrics->snapshot();
  }
  if (observer != nullptr) result.timeline = observer->timeline();
  if (profiling) result.profile = profiler->snapshot();
  // The run clock dies with this frame; detach it so the caller-owned
  // trackers cannot dangle.
  if (config.lineage != nullptr) config.lineage->set_clock(nullptr);
  if (config.curves != nullptr) config.curves->set_clock(nullptr);
  if (group.has_positions() && network.stats().messages_sent > 0) {
    result.mean_link_distance =
        network.stats().link_distance_sum /
        static_cast<double>(network.stats().messages_sent);
  }
  if (config.protocol == ProtocolKind::kHierGossip) {
    result.effective_b = analysis::effective_b(
        config.gossip.fanout_m, std::max(0.0, config.ucast_loss),
        static_cast<double>(config.gossip.rounds_per_phase(config.group_size)),
        config.gossip.k, config.group_size);
  }
  return result;
}

}  // namespace gridbox::runner
