// Differential protocol oracle.
//
// Runs hierarchical gossip and the fully-distributed, centralized, and
// committee baselines over the SAME chaos script, seed, and vote table, with
// provenance auditing forced on. Every protocol computes the same global
// function under the same adversity, so any disagreement is a bug in a
// protocol, not in the scenario: each node's estimate must be
// reconstructible from the exact aggregate of its audited vote set
// (a wrong-but-complete answer can never pass), no merge may double count,
// and hier-gossip additionally runs under the full invariant checker.
#pragma once

#include <string>
#include <vector>

#include "src/protocols/protocol_stats.h"
#include "src/runner/config.h"

namespace gridbox::runner {

/// Outcome of one protocol under the shared scenario.
struct DifferentialRow {
  ProtocolKind protocol = ProtocolKind::kHierGossip;
  bool ran = false;    ///< false: the run threw (error holds the message)
  std::string error;
  protocols::RunMeasurement measurement;
};

struct DifferentialReport {
  std::vector<DifferentialRow> rows;

  /// True iff every protocol ran to completion with zero audit violations,
  /// zero reconstruction failures, and the identical ground-truth value.
  [[nodiscard]] bool ok() const;
};

/// Runs the differential oracle over `base` (its `protocol` field is
/// ignored; audit is forced on). Deterministic in (base, base.seed).
[[nodiscard]] DifferentialReport run_differential(const ExperimentConfig& base);

}  // namespace gridbox::runner
