#include "src/runner/cli.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <fstream>
#include <functional>
#include <future>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "src/common/ensure.h"
#include "src/common/thread_pool.h"
#include "src/net/chaos.h"
#include "src/obs/build_info.h"
#include "src/obs/curves.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/lineage.h"
#include "src/obs/manifest.h"
#include "src/obs/trace_sink.h"
#include "src/runner/differential.h"
#include "src/runner/experiment.h"
#include "src/runner/stats.h"
#include "src/runner/table.h"
#include "src/service/service.h"

namespace gridbox::runner {

namespace {

struct Parser {
  CliOptions options;
  std::string error;

  [[nodiscard]] bool fail(const std::string& message) {
    error = message;
    return false;
  }

  [[nodiscard]] bool parse_double(const std::string& flag,
                                  const std::string& value, double* out) {
    try {
      std::size_t used = 0;
      *out = std::stod(value, &used);
      if (used != value.size()) return fail(flag + ": not a number: " + value);
    } catch (const std::exception&) {
      return fail(flag + ": not a number: " + value);
    }
    return true;
  }

  [[nodiscard]] bool parse_uint(const std::string& flag,
                                const std::string& value, std::uint64_t* out) {
    try {
      std::size_t used = 0;
      const long long parsed = std::stoll(value, &used);
      if (used != value.size() || parsed < 0) {
        return fail(flag + ": not a non-negative integer: " + value);
      }
      *out = static_cast<std::uint64_t>(parsed);
    } catch (const std::exception&) {
      return fail(flag + ": not a non-negative integer: " + value);
    }
    return true;
  }

  [[nodiscard]] bool parse_protocol(const std::string& value) {
    static const std::map<std::string, ProtocolKind> kNames = {
        {"hier-gossip", ProtocolKind::kHierGossip},
        {"all-to-all", ProtocolKind::kFullyDistributed},
        {"centralized", ProtocolKind::kCentralized},
        {"leader", ProtocolKind::kLeaderElection},
        {"committee", ProtocolKind::kCommittee},
    };
    const auto it = kNames.find(value);
    if (it == kNames.end()) return fail("--protocol: unknown: " + value);
    options.config.protocol = it->second;
    return true;
  }

  [[nodiscard]] bool parse_aggregate(const std::string& value) {
    static const std::map<std::string, agg::AggregateKind> kNames = {
        {"average", agg::AggregateKind::kAverage},
        {"sum", agg::AggregateKind::kSum},
        {"min", agg::AggregateKind::kMin},
        {"max", agg::AggregateKind::kMax},
        {"count", agg::AggregateKind::kCount},
        {"range", agg::AggregateKind::kRange},
        {"stddev", agg::AggregateKind::kStdDev},
    };
    const auto it = kNames.find(value);
    if (it == kNames.end()) return fail("--aggregate: unknown: " + value);
    options.config.aggregate = it->second;
    return true;
  }

  /// --chaos accepts a spec file path or inline text (';' = newline). The
  /// spec is validated here so a typo fails at the command line, not three
  /// runs into a sweep.
  [[nodiscard]] bool parse_chaos(const std::string& value) {
    std::string text;
    if (std::ifstream file(value); file.good()) {
      std::ostringstream content;
      content << file.rdbuf();
      text = content.str();
    } else {
      text = value;
      std::replace(text.begin(), text.end(), ';', '\n');
    }
    try {
      (void)net::ChaosSpec::parse(text);
    } catch (const std::exception& e) {
      return fail(std::string("--chaos: ") + e.what());
    }
    options.config.chaos_spec = text;
    return true;
  }
};

}  // namespace

std::string usage_text() {
  return R"(gridbox_sim — one-shot aggregation experiments (DSN'01 reproduction)

usage: gridbox_sim [flags]

protocol
  --protocol NAME        hier-gossip (default) | all-to-all | centralized |
                         leader | committee
  --committee-size N     committee size K' for --protocol committee (default 3)

group & hierarchy
  --n N                  group size (default 200)
  --k K                  members per grid box / tree fanout (default 4)
  --view-coverage F      fraction of members in each view, (0,1] (default 1)
  --hash NAME            fair (default) | topo   (topo assigns positions)

gossip tuning
  --m M                  gossipees per round (default 2)
  --c C                  rounds-per-phase multiplier (default 1.0)
  --rounds-per-phase R   override the round formula with exactly R rounds
  --exchange MODE        full (default) | single  (values per message)
  --no-early-bump        synchronous phases (analysis model)
  --no-linger            terminate on final-phase saturation

faults
  --loss P               iid unicast loss probability (default 0.25)
  --partition-loss P     soft-partition cross loss; unset = no partition
  --pf P                 per-round member crash probability (default 0.001)
  --chaos SPEC           chaos script: a spec file path, or inline directives
                         separated by ';' (see docs/chaos.md). Network
                         directives replace --loss/--partition-loss

workload & measurement
  --workload NAME        uniform (default) | normal | field
  --aggregate NAME       average (default) | sum | min | max | count |
                         range | stddev
  --audit                verify no-double-counting per run
  --no-invariants        disable the always-on run invariant checker
  --differential         run hier-gossip + all baselines over the same
                         scenario and cross-check audited estimates
                         (exit 2 on any disagreement)
  --seed S               root seed (default 1); run r uses seed S+r
  --runs R               independent runs (default 1)
  --jobs N               worker threads for multi-run execution (default:
                         GRIDBOX_JOBS env var, else hardware concurrency);
                         results are identical for every N
  --csv PATH             also write per-run rows as CSV

service (docs/service.md)
  --instances I          stream I concurrent protocol instances through one
                         membership (service mode; chaos specs may add
                         join/recover churn directives)
  --epoch-interval-us U  launch cadence in µs (default 50000)
  --in-flight W          bounded in-flight window (default 8)

observability
  --metrics              collect per-run metrics and print the merged
                         snapshot (counters/gauges/histograms) as JSON
  --trace-out PATH       write a JSONL event trace per run; with --runs R>1
                         run r writes PATH-run<r> (before the extension)
  --run-manifest PATH    write a run.json manifest: config fingerprint,
                         seeds, per-run phase timelines and metrics
  --lineage PATH         write the causal vote-lineage forest per run as
                         JSON (gridbox-lineage/1; query with gridbox_explain)
  --curves-out PATH      write empirical epidemic curves per run as JSON
                         (gridbox-curves/1; hier-gossip also carries the
                         analytic Bailey model for the same N, K, b)
  --flight-recorder PATH arm a bounded in-memory event ring per run; when a
                         run dies on an invariant violation, dump config +
                         chaos spec + event tail to PATH for replay
  --profile              time hot paths (sim.run / net.send / gossip.round /
                         codec.encode / codec.decode / queue.pop) and print
                         the aggregate after the summary
  --telemetry-out PATH   stream gridbox-telemetry/1 JSONL health samples
                         (per-lane counters + log2 histograms; view live
                         with gridbox_top --file PATH)
  --telemetry-interval-us U
                         telemetry sampling cadence in simulated µs
                         (default 100000)

  --help                 this text
)";
}

CliParseResult parse_cli(const std::vector<std::string>& args) {
  Parser p;
  ExperimentConfig& config = p.options.config;

  std::size_t i = 0;
  const auto next_value = [&](const std::string& flag,
                              std::string* out) -> bool {
    if (i + 1 >= args.size()) return p.fail(flag + ": missing value");
    *out = args[++i];
    return true;
  };

  for (; i < args.size(); ++i) {
    const std::string& flag = args[i];
    std::string value;
    double d = 0.0;
    std::uint64_t u = 0;

    if (flag == "--help" || flag == "-h") {
      p.options.show_help = true;
      return CliParseResult{p.options, ""};
    } else if (flag == "--protocol") {
      if (!next_value(flag, &value) || !p.parse_protocol(value)) break;
    } else if (flag == "--aggregate") {
      if (!next_value(flag, &value) || !p.parse_aggregate(value)) break;
    } else if (flag == "--n") {
      if (!next_value(flag, &value) || !p.parse_uint(flag, value, &u)) break;
      config.group_size = static_cast<std::size_t>(u);
    } else if (flag == "--k") {
      if (!next_value(flag, &value) || !p.parse_uint(flag, value, &u)) break;
      config.gossip.k = static_cast<std::uint32_t>(u);
      config.hierarchy_k = static_cast<std::uint32_t>(u);
    } else if (flag == "--m") {
      if (!next_value(flag, &value) || !p.parse_uint(flag, value, &u)) break;
      config.gossip.fanout_m = static_cast<std::uint32_t>(u);
    } else if (flag == "--c") {
      if (!next_value(flag, &value) || !p.parse_double(flag, value, &d)) break;
      config.gossip.round_multiplier_c = d;
    } else if (flag == "--rounds-per-phase") {
      if (!next_value(flag, &value) || !p.parse_uint(flag, value, &u)) break;
      config.gossip.rounds_per_phase_override = u;
    } else if (flag == "--exchange") {
      if (!next_value(flag, &value)) break;
      if (value == "full") {
        config.gossip.exchange_mode =
            protocols::gossip::ExchangeMode::kFullState;
      } else if (value == "single") {
        config.gossip.exchange_mode =
            protocols::gossip::ExchangeMode::kSingleValue;
      } else {
        (void)p.fail("--exchange: unknown: " + value);
        break;
      }
    } else if (flag == "--no-early-bump") {
      config.gossip.early_bump = false;
    } else if (flag == "--no-linger") {
      config.gossip.final_phase_linger = false;
    } else if (flag == "--committee-size") {
      if (!next_value(flag, &value) || !p.parse_uint(flag, value, &u)) break;
      config.committee.committee_size = static_cast<std::uint32_t>(u);
    } else if (flag == "--view-coverage") {
      if (!next_value(flag, &value) || !p.parse_double(flag, value, &d)) break;
      config.view_coverage = d;
    } else if (flag == "--hash") {
      if (!next_value(flag, &value)) break;
      if (value == "fair") {
        config.hash = HashKind::kFair;
      } else if (value == "topo") {
        config.hash = HashKind::kTopoAware;
        config.assign_positions = true;
      } else {
        (void)p.fail("--hash: unknown: " + value);
        break;
      }
    } else if (flag == "--loss") {
      if (!next_value(flag, &value) || !p.parse_double(flag, value, &d)) break;
      config.ucast_loss = d;
    } else if (flag == "--partition-loss") {
      if (!next_value(flag, &value) || !p.parse_double(flag, value, &d)) break;
      config.partition_loss = d;
    } else if (flag == "--pf") {
      if (!next_value(flag, &value) || !p.parse_double(flag, value, &d)) break;
      config.crash_probability = d;
    } else if (flag == "--workload") {
      if (!next_value(flag, &value)) break;
      if (value == "uniform") {
        config.workload = WorkloadKind::kUniform;
      } else if (value == "normal") {
        config.workload = WorkloadKind::kNormal;
      } else if (value == "field") {
        config.workload = WorkloadKind::kField;
        config.assign_positions = true;
      } else {
        (void)p.fail("--workload: unknown: " + value);
        break;
      }
    } else if (flag == "--audit") {
      config.audit = true;
    } else if (flag == "--chaos") {
      if (!next_value(flag, &value) || !p.parse_chaos(value)) break;
    } else if (flag == "--no-invariants") {
      config.check_invariants = false;
    } else if (flag == "--differential") {
      p.options.differential = true;
    } else if (flag == "--seed") {
      if (!next_value(flag, &value) || !p.parse_uint(flag, value, &u)) break;
      config.seed = u;
    } else if (flag == "--runs") {
      if (!next_value(flag, &value) || !p.parse_uint(flag, value, &u)) break;
      if (u == 0) {
        (void)p.fail("--runs: must be at least 1");
        break;
      }
      p.options.runs = static_cast<std::size_t>(u);
    } else if (flag == "--jobs") {
      if (!next_value(flag, &value) || !p.parse_uint(flag, value, &u)) break;
      if (u == 0) {
        (void)p.fail("--jobs: must be at least 1");
        break;
      }
      config.jobs = static_cast<std::size_t>(u);
    } else if (flag == "--csv") {
      if (!next_value(flag, &value)) break;
      p.options.csv_path = value;
    } else if (flag == "--metrics") {
      p.options.metrics = true;
      config.collect_metrics = true;
    } else if (flag == "--trace-out") {
      if (!next_value(flag, &value)) break;
      p.options.trace_out = value;
    } else if (flag == "--run-manifest") {
      if (!next_value(flag, &value)) break;
      p.options.manifest_path = value;
      config.collect_metrics = true;  // manifests carry timelines + metrics
    } else if (flag == "--lineage") {
      if (!next_value(flag, &value)) break;
      p.options.lineage_out = value;
    } else if (flag == "--curves-out") {
      if (!next_value(flag, &value)) break;
      p.options.curves_out = value;
    } else if (flag == "--telemetry-out") {
      if (!next_value(flag, &value)) break;
      config.telemetry.out_path = value;
      config.telemetry.enabled = true;
    } else if (flag == "--telemetry-interval-us") {
      if (!next_value(flag, &value) || !p.parse_uint(flag, value, &u)) break;
      if (u == 0) {
        (void)p.fail("--telemetry-interval-us: must be positive");
        break;
      }
      config.telemetry.interval =
          SimTime::micros(static_cast<SimTime::underlying>(u));
      config.telemetry.enabled = true;
    } else if (flag == "--flight-recorder") {
      if (!next_value(flag, &value)) break;
      p.options.flight_out = value;
    } else if (flag == "--instances") {
      if (!next_value(flag, &value) || !p.parse_uint(flag, value, &u)) break;
      p.options.instances = static_cast<std::size_t>(u);
    } else if (flag == "--epoch-interval-us") {
      if (!next_value(flag, &value) || !p.parse_uint(flag, value, &u)) break;
      p.options.epoch_interval =
          SimTime::micros(static_cast<SimTime::underlying>(u));
    } else if (flag == "--in-flight") {
      if (!next_value(flag, &value) || !p.parse_uint(flag, value, &u)) break;
      if (u == 0) {
        (void)p.fail("--in-flight: must be at least 1");
        break;
      }
      p.options.in_flight = static_cast<std::size_t>(u);
    } else if (flag == "--profile") {
      config.profile = true;
    } else {
      (void)p.fail("unknown flag: " + flag);
      break;
    }
  }

  if (p.error.empty() && p.options.instances > 0) {
    if (p.options.runs > 1) {
      (void)p.fail("--instances: service mode streams one run; drop --runs");
    } else if (p.options.differential) {
      (void)p.fail(
          "--instances: the service differential lives in gridbox_node "
          "--instances --differential");
    }
  }
  if (!p.error.empty()) return CliParseResult{std::nullopt, p.error};
  return CliParseResult{p.options, ""};
}

namespace {

int run_differential_cli(const CliOptions& options) {
  Table table({"run", "protocol", "completeness", "survivors", "finished",
               "true value", "audit", "reconstruct"});
  bool all_ok = true;
  for (std::size_t run = 0; run < options.runs; ++run) {
    ExperimentConfig config = options.config;
    config.seed = options.config.seed + run;
    const DifferentialReport report = run_differential(config);
    if (!report.ok()) all_ok = false;
    for (const DifferentialRow& row : report.rows) {
      if (!row.ran) {
        table.add_row({std::to_string(run), to_string(row.protocol),
                       "error: " + row.error, "-", "-", "-", "-", "-"});
        continue;
      }
      const auto& m = row.measurement;
      table.add_row(
          {std::to_string(run), to_string(row.protocol),
           Table::num(m.mean_completeness), std::to_string(m.survivors),
           std::to_string(m.finished_nodes), Table::num(m.true_value),
           std::to_string(m.audit_violations),
           m.reconstruction_failures == 0 ? "ok"
                                          : std::to_string(
                                                m.reconstruction_failures) +
                                                " failed"});
    }
  }
  std::fputs(table.to_text().c_str(), stdout);
  std::printf("\ndifferential oracle: %s\n",
              all_ok ? "all protocols agree (clean)" : "DISAGREEMENT — BUG");
  return all_ok ? 0 : 2;
}

/// Service mode: one streaming run, a per-instance table, service metrics,
/// and (with --lineage) one gridbox-lineage-multi/1 document.
int run_service_cli(const CliOptions& options) {
  service::ServiceConfig sc;
  sc.experiment = options.config;
  sc.instances = options.instances;
  sc.epoch_interval = options.epoch_interval;
  sc.max_in_flight = options.in_flight;
  sc.collect_lineage = !options.lineage_out.empty();

  const auto started = std::chrono::steady_clock::now();
  service::ServiceResult result;
  try {
    result = service::run_service_experiment(sc);
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "error: %s\n", ex.what());
    return 1;
  }
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();

  Table table({"instance", "launched_ms", "done_ms", "participants",
               "completeness", "true value", "audit", "invariants", "msgs"});
  bool clean = result.completed;
  for (const service::InstanceResult& inst : result.instances) {
    const auto& m = inst.measurement;
    clean = clean && inst.completed && m.audit_violations == 0 &&
            m.reconstruction_failures == 0 && inst.invariant_violations == 0;
    table.add_row(
        {std::to_string(inst.id),
         std::to_string(inst.launched_at.ticks() / 1000),
         inst.completed ? std::to_string(inst.completed_at.ticks() / 1000)
                        : "FAILED",
         std::to_string(inst.participants), Table::num(m.mean_completeness),
         Table::num(m.true_value), std::to_string(m.audit_violations),
         std::to_string(inst.invariant_violations),
         std::to_string(inst.network.messages_sent)});
  }
  std::fputs(table.to_text().c_str(), stdout);
  if (!options.csv_path.empty()) {
    if (table.write_csv(options.csv_path)) {
      std::printf("[csv] %s\n", options.csv_path.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write %s\n",
                   options.csv_path.c_str());
      return 1;
    }
  }

  const service::ServiceMetrics& sm = result.metrics;
  std::printf(
      "\nservice: %zu/%zu instance(s) completed, %zu failed, %zu deferred "
      "launch(es)\n"
      "throughput %.2f instances/s (sim time), completion p50 %.1f ms "
      "p90 %.1f ms p99 %.1f ms\n"
      "demux: delivered %llu, malformed %llu, unknown %llu, retired %llu, "
      "closed sends %llu\n"
      "elapsed %.1f ms sim, wall-clock %.3f s\n",
      sm.completed, sm.launched, sm.failed, sm.deferred, sm.instances_per_sec,
      static_cast<double>(sm.p50_completion.ticks()) / 1000.0,
      static_cast<double>(sm.p90_completion.ticks()) / 1000.0,
      static_cast<double>(sm.p99_completion.ticks()) / 1000.0,
      static_cast<unsigned long long>(sm.demux.delivered),
      static_cast<unsigned long long>(sm.demux.malformed_envelope),
      static_cast<unsigned long long>(sm.demux.unknown_instance),
      static_cast<unsigned long long>(sm.demux.retired_instance),
      static_cast<unsigned long long>(sm.demux.closed_sends),
      static_cast<double>(result.elapsed.ticks()) / 1000.0, wall_seconds);

  if (!options.lineage_out.empty()) {
    std::ofstream out(options.lineage_out,
                      std::ios::binary | std::ios::trunc);
    out << service::lineage_multi_json(result.instances) << '\n';
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   options.lineage_out.c_str());
      return 1;
    }
    std::printf("[lineage] %s (gridbox-lineage-multi/1; query with "
                "gridbox_explain --instance ID)\n",
                options.lineage_out.c_str());
  }
  return clean ? 0 : 1;
}

}  // namespace

std::string trace_path_for_run(const std::string& base, std::size_t run,
                               std::size_t total_runs) {
  if (total_runs <= 1) return base;
  const std::size_t dot = base.find_last_of('.');
  const std::size_t slash = base.find_last_of('/');
  const std::string suffix = "-run" + std::to_string(run);
  // No extension, the last '.' is in a directory name, or the '.' leads a
  // hidden file (".trace", "out/.trace"): plain append.
  if (dot == std::string::npos ||
      (slash != std::string::npos && slash > dot) ||
      dot == (slash == std::string::npos ? 0 : slash + 1)) {
    return base + suffix;
  }
  return base.substr(0, dot) + suffix + base.substr(dot);
}

int run_cli(const CliOptions& options) {
  if (options.show_help) {
    std::fputs(usage_text().c_str(), stdout);
    return 0;
  }
  if (options.differential) return run_differential_cli(options);
  if (options.instances > 0) return run_service_cli(options);

  Table table({"run", "seed", "completeness", "incompleteness", "survivors",
               "true value", "mean abs err", "msgs", "rounds"});
  std::vector<double> completeness;
  std::vector<double> incompleteness;
  std::uint64_t audit_violations = 0;

  // Runs are independent (seed = base seed + run index) and fan across a
  // thread pool; results land in per-run slots so the printed rows and
  // summaries are identical for every --jobs value.
  const std::size_t jobs =
      std::min(options.config.resolved_jobs(), std::max<std::size_t>(options.runs, 1));
  const auto started = std::chrono::steady_clock::now();
  std::vector<RunResult> results(options.runs);
  const auto write_json = [](const std::string& path,
                             const std::string& text) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(text.data(), static_cast<std::streamsize>(text.size()));
    out.put('\n');
    if (!out) throw std::runtime_error("cannot write " + path);
  };
  const auto run_one = [&](std::size_t run) {
    ExperimentConfig config = options.config;
    config.seed = options.config.seed + run;
    // Each run owns its telemetry series, so parallel runs never contend
    // for one file; like traces, run r writes PATH-run<r>.
    if (config.telemetry.enabled && !config.telemetry.out_path.empty()) {
      config.telemetry.out_path = trace_path_for_run(
          config.telemetry.out_path, run, options.runs);
    }
    // Each run owns its trace file, so parallel runs never interleave lines.
    std::unique_ptr<obs::TraceSink> sink;
    if (!options.trace_out.empty()) {
      sink = obs::TraceSink::to_file(
          trace_path_for_run(options.trace_out, run, options.runs));
      config.trace_sink = sink.get();
    }
    std::unique_ptr<obs::LineageTracker> lineage;
    if (!options.lineage_out.empty()) {
      obs::LineageTracker::Options lopt;
      lopt.group_size = config.group_size;
      lineage = std::make_unique<obs::LineageTracker>(lopt);
      config.lineage = lineage.get();
    }
    std::unique_ptr<obs::CurveRecorder> curves;
    if (!options.curves_out.empty()) {
      obs::CurveRecorder::Options copt;
      copt.round_us =
          static_cast<std::uint64_t>(config.round_duration().ticks());
      curves = std::make_unique<obs::CurveRecorder>(copt);
      config.curves = curves.get();
    }
    std::unique_ptr<obs::FlightRecorder> flight;
    if (!options.flight_out.empty()) {
      obs::FlightRecorder::Options fopt;
      fopt.config_text = config_canonical_text(config);
      fopt.chaos_spec = config.chaos_spec;
      fopt.seed = config.seed;
      flight = std::make_unique<obs::FlightRecorder>(fopt);
      config.flight = flight.get();
    }
    try {
      results[run] = run_experiment(config);
    } catch (const InvariantError&) {
      // The ring holds the events leading up to the violation plus the
      // config and chaos spec needed to replay it; dump before unwinding.
      if (flight != nullptr) {
        const std::string path =
            trace_path_for_run(options.flight_out, run, options.runs);
        if (flight->dump_to_file(path)) {
          std::fprintf(stderr,
                       "[flight] invariant violated: dump written to %s\n",
                       path.c_str());
        }
      }
      throw;
    }
    if (lineage != nullptr) {
      for (const std::string& e : lineage->errors()) {
        std::fprintf(stderr, "[lineage] accounting error: %s\n", e.c_str());
      }
      write_json(trace_path_for_run(options.lineage_out, run, options.runs),
                 lineage->to_json());
    }
    if (curves != nullptr) {
      write_json(trace_path_for_run(options.curves_out, run, options.runs),
                 curves->to_json());
    }
  };
  try {
    if (jobs <= 1) {
      for (std::size_t run = 0; run < options.runs; ++run) run_one(run);
    } else {
      common::ThreadPool pool(jobs);
      std::vector<std::future<void>> futures;
      futures.reserve(options.runs);
      for (std::size_t run = 0; run < options.runs; ++run) {
        futures.push_back(pool.submit([&run_one, run] { run_one(run); }));
      }
      std::exception_ptr first_error;
      for (auto& future : futures) {
        try {
          future.get();
        } catch (...) {
          if (!first_error) first_error = std::current_exception();
        }
      }
      if (first_error) std::rethrow_exception(first_error);
    }
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "error: %s\n", ex.what());
    return 1;
  }
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();

  for (std::size_t run = 0; run < options.runs; ++run) {
    const auto& m = results[run].measurement;
    completeness.push_back(m.mean_completeness);
    incompleteness.push_back(m.mean_incompleteness);
    audit_violations += m.audit_violations;
    table.add_row({std::to_string(run),
                   std::to_string(options.config.seed + run),
                   Table::num(m.mean_completeness),
                   Table::num(m.mean_incompleteness),
                   std::to_string(m.survivors),
                   Table::num(m.true_value), Table::num(m.mean_abs_error),
                   std::to_string(m.network_messages),
                   std::to_string(m.max_rounds)});
  }

  std::fputs(table.to_text().c_str(), stdout);
  if (!options.csv_path.empty()) {
    if (table.write_csv(options.csv_path)) {
      std::printf("[csv] %s\n", options.csv_path.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write %s\n",
                   options.csv_path.c_str());
      return 1;
    }
  }

  const SummaryStats c = summarize(completeness);
  const SummaryStats q = summarize(incompleteness);
  std::printf(
      "\nsummary over %zu run(s): completeness %.6f +/- %.6f (95%% CI), "
      "incompleteness mean %.3g geomean %.3g\n"
      "wall-clock: %.3f s on %zu job(s)\n",
      options.runs, c.mean, c.ci95_half_width, q.mean,
      geometric_mean(incompleteness), wall_seconds, jobs);
  if (options.config.audit) {
    std::printf("audit: %llu double-counting violations%s\n",
                static_cast<unsigned long long>(audit_violations),
                audit_violations == 0 ? " (clean)" : " — BUG");
  }

  // Observability outputs, merged over runs in run (slot) order so the
  // emitted JSON is bitwise-identical for every --jobs value.
  obs::MetricsSnapshot merged_metrics;
  obs::ProfileSnapshot merged_profile;
  for (const RunResult& r : results) {
    merged_metrics.merge(r.metrics);
    merged_profile.merge(r.profile);
  }
  if (options.metrics) {
    std::printf("\n[metrics] %s\n", merged_metrics.to_json().c_str());
  }
  if (!merged_profile.empty()) {
    std::printf("\n[profile] %s\n", merged_profile.to_json().c_str());
  }
  if (!options.trace_out.empty()) {
    std::printf("[trace] %s (%zu file%s)\n", options.trace_out.c_str(),
                options.runs, options.runs == 1 ? "" : "s");
  }
  if (!options.lineage_out.empty()) {
    std::printf("[lineage] %s (%zu file%s)\n", options.lineage_out.c_str(),
                options.runs, options.runs == 1 ? "" : "s");
  }
  if (!options.curves_out.empty()) {
    std::printf("[curves] %s (%zu file%s)\n", options.curves_out.c_str(),
                options.runs, options.runs == 1 ? "" : "s");
  }
  if (!options.manifest_path.empty()) {
    obs::RunManifest manifest;
    manifest.tool = "gridbox_sim";
    manifest.git_rev = obs::git_revision();
    manifest.config_text = config_canonical_text(options.config);
    manifest.chaos_spec = options.config.chaos_spec;
    manifest.base_seed = options.config.seed;
    manifest.jobs = jobs;
    manifest.wall_s = wall_seconds;
    manifest.profile = merged_profile;
    for (std::size_t run = 0; run < options.runs; ++run) {
      obs::RunManifest::RunEntry entry;
      entry.seed = options.config.seed + run;
      entry.mean_completeness = results[run].measurement.mean_completeness;
      entry.network_messages = results[run].measurement.network_messages;
      entry.sim_events = results[run].sim_events;
      entry.sim_end_us = results[run].sim_end_us;
      entry.timeline = results[run].timeline;
      entry.metrics = results[run].metrics;
      manifest.runs.push_back(std::move(entry));
    }
    if (manifest.write(options.manifest_path)) {
      std::printf("[manifest] %s\n", options.manifest_path.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write %s\n",
                   options.manifest_path.c_str());
      return 1;
    }
  }
  return audit_violations == 0 ? 0 : 2;
}

}  // namespace gridbox::runner
