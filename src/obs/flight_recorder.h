// Flight recorder: a bounded in-memory ring of recent typed events.
//
// Unlike the TraceSink (which streams everything to JSONL and is too heavy
// to leave on in big sweeps), the flight recorder keeps only the last N
// events in fixed storage and is meant to be armed on runs that might die:
// when an invariant trips, the runner dumps a postmortem — the replay
// recipe (canonical config text, chaos spec, seed) plus the event tail
// leading up to the failure — so "what was the network doing right before
// member M violated the phase monotone?" has an answer without re-running.
//
// Events are plain structs (no strings, no heap per event after the ring
// reaches capacity); recording is a ring-slot write.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/sim/simulator.h"

namespace gridbox::obs {

class FlightRecorder {
 public:
  struct Options {
    /// Ring capacity (events kept). Must be > 0.
    std::size_t capacity = 4096;
    /// Replay recipe, embedded verbatim in every dump.
    std::string config_text;
    std::string chaos_spec;
    std::uint64_t seed = 0;
  };

  enum class EventKind : std::uint8_t {
    kSend = 0,
    kDrop = 1,
    kDuplicate = 2,
    kDeliver = 3,
    kDeadDest = 4,
    kMalformed = 5,
    kPhaseEntered = 6,
    kRound = 7,
    kGain = 8,
    kConcluded = 9,
    kFinished = 10,
    kCrash = 11,
  };

  struct Event {
    SimTime at = SimTime::zero();
    EventKind kind = EventKind::kSend;
    std::uint8_t aux = 0;    ///< GainKind / PhaseEnd, depending on kind
    std::uint32_t a = 0;     ///< member / source
    std::uint32_t b = 0;     ///< from / destination
    std::uint32_t phase = 0;
    std::uint32_t value = 0; ///< index / fanout / bytes
    std::uint32_t votes = 0;
  };

  explicit FlightRecorder(Options options);

  /// Ring-slot write; O(1), allocation-free once the ring is full.
  void record(const Event& event);

  [[nodiscard]] std::uint64_t total_recorded() const { return total_; }
  [[nodiscard]] std::size_t kept() const;

  /// The postmortem document ("gridbox-flight/1"): replay recipe + tail,
  /// oldest event first.
  [[nodiscard]] std::string dump() const;

  /// dump() to a file; returns false (and leaves no partial file behind on
  /// open failure) when the path cannot be written.
  [[nodiscard]] bool dump_to_file(const std::string& path) const;

 private:
  Options options_;
  std::vector<Event> ring_;
  std::uint64_t total_ = 0;
};

}  // namespace gridbox::obs
