#include "src/obs/timeline.h"

#include <algorithm>

#include "src/obs/json.h"

namespace gridbox::obs {

PhaseSpan& PhaseTimeline::at_phase(std::size_t phase) {
  if (phase >= phases.size()) phases.resize(phase + 1);
  return phases[phase];
}

void PhaseTimeline::merge(const PhaseTimeline& other) {
  if (other.phases.size() > phases.size()) {
    phases.resize(other.phases.size());
  }
  for (std::size_t i = 0; i < other.phases.size(); ++i) {
    PhaseSpan& mine = phases[i];
    const PhaseSpan& theirs = other.phases[i];
    mine.entered += theirs.entered;
    mine.concluded += theirs.concluded;
    mine.msgs_sent += theirs.msgs_sent;
    mine.rounds += theirs.rounds;
    mine.votes_concluded_sum += theirs.votes_concluded_sum;
    if (theirs.any_entered) {
      mine.first_entered = mine.any_entered
                               ? std::min(mine.first_entered,
                                          theirs.first_entered)
                               : theirs.first_entered;
      mine.any_entered = true;
    }
    mine.last_concluded = std::max(mine.last_concluded, theirs.last_concluded);
  }
}

std::string PhaseTimeline::to_json() const {
  JsonWriter w;
  w.begin_array();
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const PhaseSpan& span = phases[i];
    if (span.entered == 0 && span.concluded == 0 && span.msgs_sent == 0 &&
        span.rounds == 0) {
      continue;
    }
    w.begin_object();
    w.key("phase").value(static_cast<std::uint64_t>(i));
    w.key("entered").value(span.entered);
    w.key("concluded").value(span.concluded);
    w.key("msgs_sent").value(span.msgs_sent);
    w.key("rounds").value(span.rounds);
    w.key("votes_concluded_sum").value(span.votes_concluded_sum);
    if (span.any_entered) {
      const auto start = span.first_entered.ticks();
      const auto end = span.last_concluded.ticks();
      w.key("sim_start").value(static_cast<std::int64_t>(start));
      w.key("sim_end").value(static_cast<std::int64_t>(end));
      w.key("sim_us").value(
          static_cast<std::int64_t>(end > start ? end - start : 0));
    }
    w.end_object();
  }
  w.end_array();
  return w.take();
}

}  // namespace gridbox::obs
