#include "src/obs/flight_recorder.h"

#include <cstdio>
#include <fstream>
#include <utility>

#include "src/common/ensure.h"

namespace gridbox::obs {

namespace {

const char* kind_name(FlightRecorder::EventKind kind) {
  using EventKind = FlightRecorder::EventKind;
  switch (kind) {
    case EventKind::kSend:
      return "send";
    case EventKind::kDrop:
      return "drop";
    case EventKind::kDuplicate:
      return "dup";
    case EventKind::kDeliver:
      return "recv";
    case EventKind::kDeadDest:
      return "dead";
    case EventKind::kMalformed:
      return "malformed";
    case EventKind::kPhaseEntered:
      return "enter";
    case EventKind::kRound:
      return "round";
    case EventKind::kGain:
      return "gain";
    case EventKind::kConcluded:
      return "conclude";
    case EventKind::kFinished:
      return "finish";
    case EventKind::kCrash:
      return "crash";
  }
  return "?";
}

}  // namespace

FlightRecorder::FlightRecorder(Options options)
    : options_(std::move(options)) {
  expects(options_.capacity > 0, "flight recorder needs a capacity");
  ring_.reserve(options_.capacity);
}

void FlightRecorder::record(const Event& event) {
  if (ring_.size() < options_.capacity) {
    ring_.push_back(event);
  } else {
    ring_[total_ % options_.capacity] = event;
  }
  ++total_;
}

std::size_t FlightRecorder::kept() const { return ring_.size(); }

std::string FlightRecorder::dump() const {
  std::string out;
  out += "gridbox-flight/1\n";
  out += "seed " + std::to_string(options_.seed) + "\n";
  out += "events_recorded " + std::to_string(total_) + "\n";
  out += "events_kept " + std::to_string(ring_.size()) + "\n";
  out += "--- config ---\n";
  out += options_.config_text;
  if (!options_.config_text.empty() && options_.config_text.back() != '\n') {
    out += '\n';
  }
  out += "--- chaos ---\n";
  out += options_.chaos_spec;
  if (!options_.chaos_spec.empty() && options_.chaos_spec.back() != '\n') {
    out += '\n';
  }
  out += "--- tail ---\n";

  // Oldest first. When the ring wrapped, the oldest slot is total_ % cap.
  const std::size_t n = ring_.size();
  const std::size_t start =
      total_ > n ? static_cast<std::size_t>(total_ % options_.capacity) : 0;
  char line[160];
  for (std::size_t i = 0; i < n; ++i) {
    const Event& e = ring_[(start + i) % n];
    switch (e.kind) {
      case EventKind::kSend:
      case EventKind::kDrop:
      case EventKind::kDuplicate:
      case EventKind::kDeliver:
      case EventKind::kDeadDest:
      case EventKind::kMalformed:
        std::snprintf(line, sizeof(line),
                      "t=%lluus %s src=%u dst=%u bytes=%u\n",
                      static_cast<unsigned long long>(e.at.ticks()),
                      kind_name(e.kind), e.a, e.b, e.value);
        break;
      case EventKind::kPhaseEntered:
        std::snprintf(line, sizeof(line), "t=%lluus enter m=%u phase=%u\n",
                      static_cast<unsigned long long>(e.at.ticks()), e.a,
                      e.phase);
        break;
      case EventKind::kRound:
        std::snprintf(line, sizeof(line),
                      "t=%lluus round m=%u phase=%u fanout=%u\n",
                      static_cast<unsigned long long>(e.at.ticks()), e.a,
                      e.phase, e.value);
        break;
      case EventKind::kGain:
        std::snprintf(line, sizeof(line),
                      "t=%lluus gain m=%u phase=%u index=%u from=%u votes=%u "
                      "kind=%u\n",
                      static_cast<unsigned long long>(e.at.ticks()), e.a,
                      e.phase, e.value, e.b, e.votes, e.aux);
        break;
      case EventKind::kConcluded:
        std::snprintf(line, sizeof(line),
                      "t=%lluus conclude m=%u phase=%u votes=%u how=%u\n",
                      static_cast<unsigned long long>(e.at.ticks()), e.a,
                      e.phase, e.votes, e.aux);
        break;
      case EventKind::kFinished:
        std::snprintf(line, sizeof(line), "t=%lluus finish m=%u votes=%u\n",
                      static_cast<unsigned long long>(e.at.ticks()), e.a,
                      e.votes);
        break;
      case EventKind::kCrash:
        std::snprintf(line, sizeof(line), "t=%lluus crash m=%u\n",
                      static_cast<unsigned long long>(e.at.ticks()), e.a);
        break;
    }
    out += line;
  }
  return out;
}

bool FlightRecorder::dump_to_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  const std::string text = dump();
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  return static_cast<bool>(out);
}

}  // namespace gridbox::obs
