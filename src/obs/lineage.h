// Causal vote lineage: who learned what from whom.
//
// A LineageTracker consumes the rich knowledge-gain events emitted by every
// protocol (GossipTrace::on_knowledge_gained) and reconstructs, per member,
// the dissemination tree behind its final estimate: each gain node points at
// the sender-side node it was decoded from, each phase conclusion records
// exactly the cells it merged, and a member's final estimate resolves to a
// result push or its last conclusion. Because the tracker replays the same
// first-received-wins / merge bookkeeping the protocols perform, the vote
// count it derives for every member — and hence the run's mean completeness
// — must equal the protocol's own `completeness_bp` *exactly*. That makes
// lineage a third, independent accounting next to the metrics registry and
// NetworkStats, and any divergence is recorded in errors().
//
// The tracker is pull-fed by RunObserver (never chained as `next`), costs
// nothing when not constructed, and is queryable offline via to_json()
// ("gridbox-lineage/1") — the input of tools/gridbox_explain.
//
// Two-stage design: during the run, events are only appended to a flat raw
// log (32 bytes each, no random access — the run pays a few nanoseconds per
// event). The forest, the per-member accounting, and the error checks are
// resolved lazily by replaying that log in order the first time any reader
// asks (completeness_bp / nodes / errors / to_json).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/hierarchy/hierarchy.h"
#include "src/protocols/gossip/trace.h"
#include "src/sim/simulator.h"

namespace gridbox::obs {

class LineageTracker final : public protocols::gossip::GossipTrace {
 public:
  struct Options {
    std::size_t group_size = 0;
    /// Clock for gain timestamps (nullable: times come out as 0). Callers
    /// that construct the tracker before the simulator exists (the CLI)
    /// leave this null; run_experiment installs the run's clock via
    /// set_clock().
    const sim::Simulator* simulator = nullptr;
  };

  /// What a lineage node records. Gains mirror GainKind; kConclude nodes are
  /// synthesized at on_phase_concluded and list the cells they merged.
  enum class NodeOp : std::uint8_t {
    kGainRemote = 0,
    kGainLocal = 1,
    kGainAdopted = 2,
    kGainResult = 3,
    kConclude = 4,
  };

  /// One node of the dissemination forest. For gains, (phase, index) is the
  /// knowledge cell and `parent` the sender-side node it resolves to (-1 for
  /// local roots). For conclusions, `merged` lists the gain nodes combined.
  struct Node {
    MemberId member;
    MemberId from;
    std::uint32_t phase = 0;
    std::uint32_t index = 0;
    std::uint32_t votes = 0;
    NodeOp op = NodeOp::kGainLocal;
    SimTime at = SimTime::zero();
    std::int64_t parent = -1;
    std::vector<std::int64_t> merged;
  };

  explicit LineageTracker(Options options);

  // GossipTrace (fed by RunObserver).
  void on_phase_entered(MemberId member, std::size_t phase) override;
  void on_knowledge_gained(MemberId member, std::size_t phase,
                           std::uint32_t index, MemberId from,
                           std::uint32_t votes,
                           protocols::gossip::GainKind kind) override;
  void on_phase_concluded(MemberId member, std::size_t phase,
                          protocols::gossip::PhaseEnd how,
                          std::uint32_t votes) override;
  void on_finished(MemberId member, std::uint32_t votes) override;

  /// Membership event (no GossipTrace hook exists for it).
  void on_crash(MemberId member);

  /// Installs (or clears) the clock used to stamp nodes. Only valid to
  /// change between runs; the clock must outlive every event fed while set.
  void set_clock(const sim::Simulator* simulator) {
    options_.simulator = simulator;
  }

  /// Mean completeness over surviving members, replicating measure_run's
  /// arithmetic operation for operation so the basis-point gauge matches
  /// bit for bit.
  [[nodiscard]] double mean_completeness() const;

  /// mean_completeness() in basis points, rounded exactly like the
  /// `completeness_bp` metrics gauge.
  [[nodiscard]] std::uint64_t completeness_bp() const;

  [[nodiscard]] std::size_t finished_count() const;
  [[nodiscard]] const std::vector<Node>& nodes() const;

  /// Accounting inconsistencies detected while resolving the event log
  /// (unresolvable senders, merge sums that do not add up, finish/carry
  /// mismatches). Empty on a healthy run — tests assert exactly that.
  [[nodiscard]] const std::vector<std::string>& errors() const;

  /// Captures the run's hierarchy (fanout, phase count, per-member grid-box
  /// addresses) so to_json() can emit them after the hierarchy is gone.
  /// Called by run_experiment; the hierarchy lives on its stack frame.
  void capture_hierarchy(const hierarchy::GridBoxHierarchy& hierarchy);

  /// Serializes the forest as a "gridbox-lineage/1" JSON document. The
  /// captured hierarchy (when present) contributes per-member grid-box
  /// addresses so offline queries can reason about phase groups.
  [[nodiscard]] std::string to_json() const;

 private:
  /// One raw event, recorded on the hot path. 32 bytes, append-only: the
  /// per-event cost during the run is filling this struct and one amortized
  /// push_back — no tree building, no per-member state, no random access.
  /// The forest is resolved from the log lazily (finalize()), off the run's
  /// critical path, by replaying events in order: replay order equals event
  /// order, so the reconstruction is exact.
  struct RawEvent {
    enum class Type : std::uint8_t { kGain, kConclude, kFinish, kCrash };
    Type type = Type::kGain;
    std::uint8_t aux = 0;  ///< GainKind (kGain) / PhaseEnd (kConclude)
    std::uint32_t member = 0;
    std::uint32_t from = 0;
    std::uint32_t phase = 0;
    std::uint32_t index = 0;
    std::uint32_t votes = 0;
    SimTime at = SimTime::zero();
  };

  /// Both sides of one knowledge cell during replay. `held` is what occupies
  /// the cell (first-received-wins, mirroring the protocols); `exported` is
  /// what the member would *send* for it, which differs when a locally
  /// computed partial loses the cell race to a peer's (committee baseline).
  struct Cell {
    std::int32_t held = -1;
    std::int32_t exported = -1;
  };

  struct MemberState {
    /// Cell state. Phase-1 cells are sparse — a member only ever touches the
    /// cells of its own box, a K-sized island in a possibly 10^6-wide origin
    /// space — so they are kept as an index-sorted vector (binary search)
    /// rather than direct-indexed by origin id. Phase p >= 2 cells are
    /// direct-indexed by child slot (< K).
    std::vector<std::pair<std::uint32_t, Cell>> phase1;  ///< sorted by index
    std::vector<std::vector<Cell>> upper;  ///< [phase-2][index]
    std::int64_t carry = -1;   ///< latest conclusion / adoption
    std::int64_t result = -1;  ///< result push, if any
    std::int64_t final_node = -1;
    std::uint32_t final_votes = 0;
    bool finished = false;
    bool crashed = false;
  };

  /// The member's cell (phase, index), grown on demand.
  [[nodiscard]] static Cell& cell_at(MemberState& s, std::size_t phase,
                                     std::uint32_t index);
  /// Read-only lookup; nullptr when the member never touched the cell.
  [[nodiscard]] static const Cell* find_cell(const MemberState& s,
                                             std::size_t phase,
                                             std::uint32_t index);

  [[nodiscard]] SimTime now() const;

  /// Replays the raw log into the forest + per-member accounting. Runs at
  /// most once per log generation; every reader funnels through this.
  void finalize() const;
  // finalize() helpers, operating on the mutable replay state.
  [[nodiscard]] MemberState& state_of(MemberId member) const;
  /// The node `sender` would provide for cell (phase, index), or -1.
  [[nodiscard]] std::int64_t resolve_sender(MemberId sender, std::size_t phase,
                                            std::uint32_t index) const;
  std::int64_t add_node(Node node) const;
  void replay_gain(const RawEvent& e) const;
  void replay_conclude(const RawEvent& e) const;
  void replay_finish(const RawEvent& e) const;
  void error(std::string what) const;

  Options options_;
  std::vector<RawEvent> log_;  ///< hot-path append target

  // Replay products, rebuilt by finalize() when the log has grown.
  mutable bool finalized_ = false;
  mutable std::vector<MemberState> members_;
  mutable std::vector<Node> nodes_;
  mutable std::vector<std::string> errors_;
  mutable std::size_t finished_count_ = 0;

  // Hierarchy snapshot (capture_hierarchy). Addresses are flattened into a
  // single digit array with a fixed stride: one allocation instead of one
  // vector per member — capture runs inside the instrumented window.
  bool have_hierarchy_ = false;
  std::uint32_t fanout_ = 0;
  std::size_t num_phases_ = 0;
  std::size_t digit_count_ = 0;  ///< digits per address (stride)
  std::vector<std::uint32_t> address_digits_;  ///< group_size × digit_count
};

}  // namespace gridbox::obs
