#include "src/obs/bench_io.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "src/common/ensure.h"
#include "src/obs/json.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace gridbox::obs {

std::string BenchReport::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value(kSchema);
  w.key("suite").value(suite);
  w.key("git_rev").value(git_rev);
  w.key("repeats").value(repeats);
  w.key("jobs").value(static_cast<std::uint64_t>(jobs));
  w.key("entries").begin_array();
  for (const BenchEntry& e : entries) {
    w.begin_object();
    w.key("name").value(e.name);
    w.key("wall_s").value(e.wall_s);
    w.key("events_per_s").value(e.events_per_s);
    w.key("msgs_per_s").value(e.msgs_per_s);
    w.key("sim_events").value(e.sim_events);
    w.key("network_messages").value(e.network_messages);
    w.key("peak_rss_mb").value(e.peak_rss_mb);
    if (e.rss_per_member_b > 0.0) {
      w.key("rss_per_member_b").value(e.rss_per_member_b);
    }
    if (e.instances_per_s > 0.0) {
      w.key("instances_per_s").value(e.instances_per_s);
    }
    if (e.p99_completion_ms > 0.0) {
      w.key("p99_completion_ms").value(e.p99_completion_ms);
    }
    if (e.shards > 0) {
      w.key("shards").value(e.shards);
    }
    if (e.instructions_per_event > 0.0) {
      w.key("instructions_per_event").value(e.instructions_per_event);
    }
    if (e.cache_misses_per_event > 0.0) {
      w.key("cache_misses_per_event").value(e.cache_misses_per_event);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

bool BenchReport::write(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out.good()) return false;
  out << to_json() << '\n';
  return out.good();
}

BenchReport BenchReport::parse(const std::string& json_text) {
  const JsonValue root = json_parse(json_text);
  expects(root.is_object(), "bench report: top level must be an object");
  const std::string schema = root.string_or("schema", "");
  expects(schema == kSchema,
          "bench report: schema mismatch (want " + std::string(kSchema) +
              ", got " + (schema.empty() ? "<missing>" : schema) + ")");
  BenchReport report;
  report.suite = root.string_or("suite", "");
  report.git_rev = root.string_or("git_rev", "unknown");
  report.repeats = static_cast<std::uint64_t>(root.number_or("repeats", 1));
  report.jobs = static_cast<std::size_t>(root.number_or("jobs", 1));
  const JsonValue* entries = root.find("entries");
  expects(entries != nullptr && entries->is_array(),
          "bench report: missing entries array");
  for (const JsonValue& v : entries->array) {
    expects(v.is_object(), "bench report: entry must be an object");
    BenchEntry e;
    e.name = v.string_or("name", "");
    expects(!e.name.empty(), "bench report: entry without a name");
    e.wall_s = v.number_or("wall_s", 0.0);
    e.events_per_s = v.number_or("events_per_s", 0.0);
    e.msgs_per_s = v.number_or("msgs_per_s", 0.0);
    e.sim_events = static_cast<std::uint64_t>(v.number_or("sim_events", 0));
    e.network_messages =
        static_cast<std::uint64_t>(v.number_or("network_messages", 0));
    e.peak_rss_mb = v.number_or("peak_rss_mb", 0.0);
    e.rss_per_member_b = v.number_or("rss_per_member_b", 0.0);
    e.instances_per_s = v.number_or("instances_per_s", 0.0);
    e.p99_completion_ms = v.number_or("p99_completion_ms", 0.0);
    e.shards = static_cast<std::uint64_t>(v.number_or("shards", 0));
    e.instructions_per_event = v.number_or("instructions_per_event", 0.0);
    e.cache_misses_per_event = v.number_or("cache_misses_per_event", 0.0);
    report.entries.push_back(std::move(e));
  }
  return report;
}

BenchReport BenchReport::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  expects(in.good(), "bench report: cannot read " + path);
  std::ostringstream content;
  content << in.rdbuf();
  return parse(content.str());
}

std::string BenchDiffReport::render() const {
  std::ostringstream out;
  char line[320];
  std::snprintf(line, sizeof(line), "%-32s %12s %12s %8s %9s %9s %11s\n",
                "case", "old wall_s", "new wall_s", "ratio", "ev/s", "msg/s",
                "B/member");
  out << line;
  for (const BenchDiffRow& row : rows) {
    // Bytes-per-member is informational (never gates): shown as old->new
    // when either side reports it, blank otherwise.
    char rss[32];
    if (row.old_rss_per_member_b > 0.0 || row.new_rss_per_member_b > 0.0) {
      std::snprintf(rss, sizeof(rss), " %4.0f->%-5.0f",
                    row.old_rss_per_member_b, row.new_rss_per_member_b);
    } else {
      std::snprintf(rss, sizeof(rss), " %11s", "");
    }
    // Service-suite throughput/latency are informational like B/member:
    // rendered old->new when either side reports them, blank otherwise.
    char svc[48];
    if (row.old_instances_per_s > 0.0 || row.new_instances_per_s > 0.0) {
      std::snprintf(svc, sizeof(svc), " %5.1f->%-5.1f inst/s",
                    row.old_instances_per_s, row.new_instances_per_s);
    } else {
      svc[0] = '\0';
    }
    char p99[48];
    if (row.old_p99_completion_ms > 0.0 || row.new_p99_completion_ms > 0.0) {
      std::snprintf(p99, sizeof(p99), " %5.1f->%-5.1f p99ms",
                    row.old_p99_completion_ms, row.new_p99_completion_ms);
    } else {
      p99[0] = '\0';
    }
    // Perf-counter attribution: informational, never gates. A counter a
    // side could not read (kernel denied perf_event_open, non-Linux) shows
    // as n/a — zero would read as "free", which it is not.
    const auto coarse = [](char* buffer, std::size_t size, double value) {
      if (value > 0.0) {
        std::snprintf(buffer, size, "%.0f", value);
      } else {
        std::snprintf(buffer, size, "n/a");
      }
    };
    const auto fine = [](char* buffer, std::size_t size, double value) {
      if (value > 0.0) {
        std::snprintf(buffer, size, "%.1f", value);
      } else {
        std::snprintf(buffer, size, "n/a");
      }
    };
    char insn[64];
    if (row.old_instructions_per_event > 0.0 ||
        row.new_instructions_per_event > 0.0) {
      char a[24];
      char b[24];
      coarse(a, sizeof(a), row.old_instructions_per_event);
      coarse(b, sizeof(b), row.new_instructions_per_event);
      std::snprintf(insn, sizeof(insn), " %s->%s insn/ev", a, b);
    } else {
      insn[0] = '\0';
    }
    char miss[64];
    if (row.old_cache_misses_per_event > 0.0 ||
        row.new_cache_misses_per_event > 0.0) {
      char a[24];
      char b[24];
      fine(a, sizeof(a), row.old_cache_misses_per_event);
      fine(b, sizeof(b), row.new_cache_misses_per_event);
      std::snprintf(miss, sizeof(miss), " %s->%s miss/ev", a, b);
    } else {
      miss[0] = '\0';
    }
    // Shard count of the udp-suite cases: informational like B/member (a
    // baseline captured at one shard count legitimately compares against a
    // rerun at another; only the wall ratio gates).
    char shards[32];
    if (row.old_shards > 0 || row.new_shards > 0) {
      std::snprintf(shards, sizeof(shards), " %llu->%llu shard(s)",
                    static_cast<unsigned long long>(row.old_shards),
                    static_cast<unsigned long long>(row.new_shards));
    } else {
      shards[0] = '\0';
    }
    std::snprintf(line, sizeof(line),
                  "%-32s %12.6f %12.6f %7.3fx %+8.1f%% %+8.1f%%%s%s%s%s%s%s%s"
                  "\n",
                  row.name.c_str(), row.old_wall_s, row.new_wall_s,
                  row.wall_ratio, (row.events_ratio - 1.0) * 100.0,
                  (row.msgs_ratio - 1.0) * 100.0, rss, svc, p99, shards, insn,
                  miss, row.regressed ? "  REGRESSED" : "");
    out << line;
  }
  for (const std::string& name : only_in_old) {
    out << name << ": only in old report\n";
  }
  for (const std::string& name : only_in_new) {
    out << name << ": only in new report\n";
  }
  std::snprintf(line, sizeof(line),
                "worst ratio %.3fx over %zu case(s), %zu regression(s)\n",
                worst_ratio, rows.size(), regressions);
  out << line;
  return out.str();
}

BenchDiffReport bench_diff(const BenchReport& old_report,
                           const BenchReport& new_report, double threshold) {
  expects(threshold >= 0.0, "bench diff: threshold must be non-negative");
  BenchDiffReport report;
  std::map<std::string, const BenchEntry*> old_by_name;
  for (const BenchEntry& e : old_report.entries) old_by_name[e.name] = &e;

  for (const BenchEntry& e : new_report.entries) {
    const auto it = old_by_name.find(e.name);
    if (it == old_by_name.end()) {
      report.only_in_new.push_back(e.name);
      continue;
    }
    BenchDiffRow row;
    row.name = e.name;
    row.old_wall_s = it->second->wall_s;
    row.new_wall_s = e.wall_s;
    // A zero old time can only compare as "no regression" or "new cost".
    row.wall_ratio = row.old_wall_s > 0.0 ? row.new_wall_s / row.old_wall_s
                     : row.new_wall_s > 0.0 ? 1.0 + threshold + 1.0
                                            : 1.0;
    // 0 -> 0 (a suite that doesn't report the rate) renders as unchanged,
    // not as a 100% regression.
    row.old_events_per_s = it->second->events_per_s;
    row.new_events_per_s = e.events_per_s;
    row.events_ratio = row.old_events_per_s > 0.0
                           ? row.new_events_per_s / row.old_events_per_s
                       : row.new_events_per_s > 0.0 ? 0.0
                                                    : 1.0;
    row.old_msgs_per_s = it->second->msgs_per_s;
    row.new_msgs_per_s = e.msgs_per_s;
    row.msgs_ratio = row.old_msgs_per_s > 0.0
                         ? row.new_msgs_per_s / row.old_msgs_per_s
                     : row.new_msgs_per_s > 0.0 ? 0.0
                                                : 1.0;
    row.old_rss_per_member_b = it->second->rss_per_member_b;
    row.new_rss_per_member_b = e.rss_per_member_b;
    row.old_instances_per_s = it->second->instances_per_s;
    row.new_instances_per_s = e.instances_per_s;
    row.old_p99_completion_ms = it->second->p99_completion_ms;
    row.new_p99_completion_ms = e.p99_completion_ms;
    row.old_shards = it->second->shards;
    row.new_shards = e.shards;
    row.old_instructions_per_event = it->second->instructions_per_event;
    row.new_instructions_per_event = e.instructions_per_event;
    row.old_cache_misses_per_event = it->second->cache_misses_per_event;
    row.new_cache_misses_per_event = e.cache_misses_per_event;
    row.regressed = row.wall_ratio > 1.0 + threshold;
    if (row.regressed) ++report.regressions;
    report.worst_ratio = std::max(report.worst_ratio, row.wall_ratio);
    report.rows.push_back(std::move(row));
    old_by_name.erase(it);
  }
  for (const auto& [name, entry] : old_by_name) {
    (void)entry;
    report.only_in_old.push_back(name);
  }
  return report;
}

std::uint64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

}  // namespace gridbox::obs
