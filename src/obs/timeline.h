// Per-run phase timeline: when each gossip phase started and ended, and how
// much traffic it cost. Index 0 aggregates phase-less activity (baseline
// protocols, pre-start traffic); index i >= 1 is gossip phase i.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace gridbox::obs {

struct PhaseSpan {
  std::uint64_t entered = 0;    ///< members that entered this phase
  std::uint64_t concluded = 0;  ///< phase conclusions reported
  std::uint64_t msgs_sent = 0;  ///< sends attributed to this phase
  std::uint64_t rounds = 0;     ///< gossip rounds executed in this phase
  std::uint64_t votes_concluded_sum = 0;  ///< sum of votes over conclusions
  bool any_entered = false;               ///< first_entered is meaningful
  SimTime first_entered = SimTime::zero();
  SimTime last_concluded = SimTime::zero();
};

struct PhaseTimeline {
  std::vector<PhaseSpan> phases;

  [[nodiscard]] bool empty() const { return phases.empty(); }

  /// Grows to cover `phase` and returns its span.
  PhaseSpan& at_phase(std::size_t phase);

  /// Element-wise fold: counts add, first_entered takes the min, last
  /// concluded the max. Associative, so sweep reduction order is free.
  void merge(const PhaseTimeline& other);

  /// JSON array, one object per phase (integer-only and deterministic):
  /// [{"phase":1,"entered":N,...,"sim_start":t,"sim_end":t,"sim_us":d},...]
  /// Phases nothing ever touched are skipped. Per-phase completeness is
  /// derivable as votes_concluded_sum / (concluded * group_size).
  [[nodiscard]] std::string to_json() const;
};

}  // namespace gridbox::obs
