// Scoped profiling timers for the simulation hot paths.
//
// Deliberately a leaf utility (depends only on the standard library) so the
// sim/net layers can include it without a layering cycle through obs.
//
// Model: a ProfileCollector is installed per run on the executing thread
// (thread_local current pointer). GRIDBOX_PROFILE_SCOPE(name) at a hot-path
// entry reads that pointer; when none is installed — the default — the cost
// is one thread-local load and a branch, no clock reads. When installed, the
// scope records count and elapsed nanoseconds into the collector, keyed by
// the (static) section name. Each run's collector is snapshotted into its
// RunResult and the sweep reducer merges snapshots in slot order, so the
// *structure* of the merged profile (section names, counts) is deterministic
// at any --jobs; elapsed times are wall-clock measurements and are reported,
// like wall_s, as throughput telemetry rather than replayable output.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

namespace gridbox::obs {

struct ProfileEntry {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
};

/// Per-section totals, detached from the collector. Name-ordered.
struct ProfileSnapshot {
  std::map<std::string, ProfileEntry> sections;

  [[nodiscard]] bool empty() const { return sections.empty(); }

  /// Adds counts and times section-wise (associative).
  void merge(const ProfileSnapshot& other);

  /// {"name":{"count":N,"total_ns":T},...}
  [[nodiscard]] std::string to_json() const;
};

/// One run's (one thread's) profile accumulator.
class ProfileCollector {
 public:
  ProfileCollector() = default;
  ProfileCollector(const ProfileCollector&) = delete;
  ProfileCollector& operator=(const ProfileCollector&) = delete;

  /// The collector scoped timers on this thread record into (may be null).
  [[nodiscard]] static ProfileCollector* current();

  void record(const char* section, std::uint64_t ns);
  [[nodiscard]] ProfileSnapshot snapshot() const;

 private:
  friend class ProfileInstallGuard;
  // Keyed by the section-name pointer: scope names are string literals, so
  // within one translation unit pointer identity is name identity and the
  // hot-path lookup avoids string hashing. The same literal in different
  // TUs can land at different addresses (no string pooling guarantee), so
  // snapshot() re-keys by *content* and merges entries whose names collide —
  // keying output by pointer would split identical sections into duplicate
  // rows with address-dependent order.
  std::map<const char*, ProfileEntry> entries_;
};

/// Installs `collector` as the thread's current collector for its lifetime
/// (restores the previous one on destruction). Null is allowed: profiling
/// stays off and scopes stay free.
class ProfileInstallGuard {
 public:
  explicit ProfileInstallGuard(ProfileCollector* collector);
  ~ProfileInstallGuard();
  ProfileInstallGuard(const ProfileInstallGuard&) = delete;
  ProfileInstallGuard& operator=(const ProfileInstallGuard&) = delete;

 private:
  ProfileCollector* previous_;
};

/// Times one lexical scope into the thread's current collector, if any.
/// `section` must be a string literal (or otherwise outlive the collector).
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* section)
      : collector_(ProfileCollector::current()), section_(section) {
    if (collector_ != nullptr) {
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~ScopedTimer() {
    if (collector_ != nullptr) {
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      collector_->record(
          section_,
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                  .count()));
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  ProfileCollector* collector_;
  const char* section_;
  std::chrono::steady_clock::time_point start_;
};

/// True when the GRIDBOX_PROFILE environment variable asks for profiling
/// (non-empty, not "0"). Read once and cached.
[[nodiscard]] bool profile_requested_by_env();

}  // namespace gridbox::obs

#define GRIDBOX_PROFILE_CONCAT2(a, b) a##b
#define GRIDBOX_PROFILE_CONCAT(a, b) GRIDBOX_PROFILE_CONCAT2(a, b)
/// Times the enclosing scope under `name` (a string literal).
#define GRIDBOX_PROFILE_SCOPE(name)                       \
  ::gridbox::obs::ScopedTimer GRIDBOX_PROFILE_CONCAT(     \
      gridbox_profile_scope_, __LINE__)(name)
