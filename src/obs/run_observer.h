// RunObserver: one run's observability hub.
//
// Implements both instrumentation interfaces the substrates expose —
// net::NetworkObserver (transport decisions) and gossip::GossipTrace (phase
// machine) — and fans each event into up to three outputs:
//   - a MetricsRegistry (counters / gauges / histograms),
//   - a TraceSink (JSONL event stream),
//   - a PhaseTimeline (per-phase spans and message totals).
// All three are optional; a RunObserver with nothing attached is never
// installed (run_experiment only creates one when something wants events).
//
// Gossip events chain onward to `next`, so the observer can sit behind the
// InvariantChecker and in front of a caller-supplied trace. Per-phase
// message attribution uses the sender's current phase as reported by
// on_phase_entered (phase 0 = not in a phase yet / phase-less protocol).
#pragma once

#include <cstdint>
#include <vector>

#include "src/net/observer.h"
#include "src/obs/metrics.h"
#include "src/obs/timeline.h"
#include "src/obs/trace_sink.h"
#include "src/protocols/gossip/trace.h"
#include "src/sim/simulator.h"

namespace gridbox::obs {

class LineageTracker;
class CurveRecorder;
class FlightRecorder;

class RunObserver final : public net::NetworkObserver,
                          public protocols::gossip::GossipTrace {
 public:
  struct Options {
    MetricsRegistry* metrics = nullptr;           ///< nullable
    TraceSink* sink = nullptr;                    ///< nullable
    const sim::Simulator* simulator = nullptr;    ///< clock for trace stamps
    std::size_t group_size = 0;
    protocols::gossip::GossipTrace* next = nullptr;  ///< chain tail
    LineageTracker* lineage = nullptr;            ///< nullable
    CurveRecorder* curves = nullptr;              ///< nullable
    FlightRecorder* flight = nullptr;             ///< nullable
  };

  explicit RunObserver(Options options);

  // net::NetworkObserver
  void on_send(const net::Message& message, SimTime now) override;
  void on_drop(const net::Message& message, SimTime now) override;
  void on_duplicate(const net::Message& message, SimTime now) override;
  void on_deliver(const net::Message& message, SimTime now) override;
  void on_dead_destination(const net::Message& message, SimTime now) override;
  void on_malformed(const net::Message& message, SimTime now) override;

  // gossip::GossipTrace
  void on_phase_entered(MemberId member, std::size_t phase) override;
  void on_round_gossiped(MemberId member, std::size_t phase,
                         std::uint32_t fanout) override;
  void on_value_learned(MemberId member, std::size_t phase,
                        std::uint32_t index) override;
  void on_knowledge_gained(MemberId member, std::size_t phase,
                           std::uint32_t index, MemberId from,
                           std::uint32_t votes,
                           protocols::gossip::GainKind kind) override;
  void on_phase_concluded(MemberId member, std::size_t phase,
                          protocols::gossip::PhaseEnd how,
                          std::uint32_t votes) override;
  void on_finished(MemberId member, std::uint32_t votes) override;

  /// Membership event (wired by the experiment's crash clock and chaos
  /// schedule; there is no substrate interface for it).
  void on_crash(MemberId member);

  /// Writes the run's tallies into the metrics registry (no-op without
  /// one). run_experiment calls this once, after the simulator drains and
  /// before the registry is snapshotted; events observed later are lost.
  void flush();

  [[nodiscard]] const PhaseTimeline& timeline() const { return timeline_; }

 private:
  /// gossip_fanout_hist buckets: one per bound {0,1,2,3,4,6,8,16} plus
  /// overflow.
  static constexpr std::size_t kFanoutBuckets = 9;

  [[nodiscard]] SimTime now() const;

  Options options_;
  PhaseTimeline timeline_;
  std::vector<std::size_t> member_phase_;  ///< current phase per member

  // Per-run tallies, accumulated as plain members and written to the
  // registry once by flush(). The registry's deque-backed counters sit on
  // scattered cache lines; bouncing through five of them per message was
  // the dominant term in the obs-overhead gate.
  struct Tally {
    std::uint64_t msgs_sent = 0;
    std::uint64_t msgs_dropped = 0;
    std::uint64_t msgs_duplicated = 0;
    std::uint64_t msgs_delivered = 0;
    std::uint64_t msgs_dead_dest = 0;
    std::uint64_t msgs_malformed = 0;
    std::uint64_t bytes_on_wire = 0;
    std::uint64_t rounds = 0;
    std::uint64_t conclusions = 0;
    std::uint64_t finishes = 0;
    std::uint64_t crashes = 0;
  };
  Tally tally_;
  std::uint64_t fanout_counts_[kFanoutBuckets] = {};
  std::vector<std::uint64_t> msgs_by_phase_;  ///< index = sender phase
};

}  // namespace gridbox::obs
