// RunObserver: one run's observability hub.
//
// Implements both instrumentation interfaces the substrates expose —
// net::NetworkObserver (transport decisions) and gossip::GossipTrace (phase
// machine) — and fans each event into up to three outputs:
//   - a MetricsRegistry (counters / gauges / histograms),
//   - a TraceSink (JSONL event stream),
//   - a PhaseTimeline (per-phase spans and message totals).
// All three are optional; a RunObserver with nothing attached is never
// installed (run_experiment only creates one when something wants events).
//
// Gossip events chain onward to `next`, so the observer can sit behind the
// InvariantChecker and in front of a caller-supplied trace. Per-phase
// message attribution uses the sender's current phase as reported by
// on_phase_entered (phase 0 = not in a phase yet / phase-less protocol).
#pragma once

#include <cstdint>
#include <vector>

#include "src/net/observer.h"
#include "src/obs/metrics.h"
#include "src/obs/timeline.h"
#include "src/obs/trace_sink.h"
#include "src/protocols/gossip/trace.h"
#include "src/sim/simulator.h"

namespace gridbox::obs {

class RunObserver final : public net::NetworkObserver,
                          public protocols::gossip::GossipTrace {
 public:
  struct Options {
    MetricsRegistry* metrics = nullptr;           ///< nullable
    TraceSink* sink = nullptr;                    ///< nullable
    const sim::Simulator* simulator = nullptr;    ///< clock for trace stamps
    std::size_t group_size = 0;
    protocols::gossip::GossipTrace* next = nullptr;  ///< chain tail
  };

  explicit RunObserver(Options options);

  // net::NetworkObserver
  void on_send(const net::Message& message, SimTime now) override;
  void on_drop(const net::Message& message, SimTime now) override;
  void on_duplicate(const net::Message& message, SimTime now) override;
  void on_deliver(const net::Message& message, SimTime now) override;
  void on_dead_destination(const net::Message& message, SimTime now) override;
  void on_malformed(const net::Message& message, SimTime now) override;

  // gossip::GossipTrace
  void on_phase_entered(MemberId member, std::size_t phase) override;
  void on_round_gossiped(MemberId member, std::size_t phase,
                         std::uint32_t fanout) override;
  void on_value_learned(MemberId member, std::size_t phase,
                        std::uint32_t index) override;
  void on_phase_concluded(MemberId member, std::size_t phase,
                          protocols::gossip::PhaseEnd how,
                          std::uint32_t votes) override;
  void on_finished(MemberId member, std::uint32_t votes) override;

  /// Membership event (wired by the experiment's crash clock and chaos
  /// schedule; there is no substrate interface for it).
  void on_crash(MemberId member);

  [[nodiscard]] const PhaseTimeline& timeline() const { return timeline_; }

 private:
  [[nodiscard]] SimTime now() const;
  /// Cached per-phase counter for msgs_sent_by_phase (created lazily).
  Counter& phase_msgs_counter(std::size_t phase);

  Options options_;
  PhaseTimeline timeline_;
  std::vector<std::size_t> member_phase_;  ///< current phase per member

  // Hot-path handles, pre-registered so events never do string lookups.
  Counter* msgs_sent_ = nullptr;
  Counter* msgs_dropped_ = nullptr;
  Counter* msgs_duplicated_ = nullptr;
  Counter* msgs_delivered_ = nullptr;
  Counter* msgs_dead_dest_ = nullptr;
  Counter* msgs_malformed_ = nullptr;
  Counter* bytes_on_wire_ = nullptr;
  Counter* rounds_total_ = nullptr;
  Counter* phase_conclusions_ = nullptr;
  Counter* finishes_ = nullptr;
  Counter* crashes_ = nullptr;
  Histogram* fanout_hist_ = nullptr;
  std::vector<Counter*> msgs_by_phase_;  ///< index = phase
};

}  // namespace gridbox::obs
