#include "src/obs/trace_sink.h"

#include <fstream>

#include "src/common/ensure.h"

namespace gridbox::obs {

namespace {

/// TraceSink that owns its file stream.
class FileTraceSink final : public TraceSink {
 public:
  explicit FileTraceSink(const std::string& path)
      : file_(path, std::ios::binary) {
    expects(file_.good(), "trace sink: cannot open " + path);
    set_stream(file_);
  }

 private:
  std::ofstream file_;
};

}  // namespace

std::unique_ptr<TraceSink> TraceSink::to_file(const std::string& path) {
  return std::make_unique<FileTraceSink>(path);
}

void TraceSink::write_line(const std::string& line) {
  expects(out_ != nullptr, "trace sink has no stream");
  *out_ << line << '\n';
  ++lines_;
}

void TraceSink::message_event(const char* event, SimTime t, MemberId source,
                              MemberId destination, std::size_t bytes) {
  std::string line = "{\"t\":";
  line += std::to_string(t.ticks());
  line += ",\"ev\":\"";
  line += event;
  line += "\",\"src\":";
  line += std::to_string(source.value());
  line += ",\"dst\":";
  line += std::to_string(destination.value());
  line += ",\"bytes\":";
  line += std::to_string(bytes);
  line += '}';
  write_line(line);
}

void TraceSink::member_event(const char* event, SimTime t, MemberId member,
                             std::int64_t phase, std::int64_t value,
                             const char* value_key, const char* detail) {
  std::string line = "{\"t\":";
  line += std::to_string(t.ticks());
  line += ",\"ev\":\"";
  line += event;
  line += "\",\"m\":";
  line += std::to_string(member.value());
  if (phase != kOmitted) {
    line += ",\"phase\":";
    line += std::to_string(phase);
  }
  if (value != kOmitted) {
    line += ",\"";
    line += value_key;
    line += "\":";
    line += std::to_string(value);
  }
  if (detail != nullptr) {
    line += ",\"how\":\"";
    line += detail;
    line += '"';
  }
  line += '}';
  write_line(line);
}

}  // namespace gridbox::obs
