// Minimal JSON support for the observability subsystem.
//
// Writer: a streaming builder that produces compact, deterministic output —
// keys are emitted in the order the caller provides them, doubles with "%.17g"
// (shortest round-trippable is not needed; identical inputs give identical
// bytes). Reader: a small recursive-descent parser for the subset the repo
// itself emits (objects, arrays, strings, numbers, bools, null), used by
// bench_diff to load BENCH_*.json files. Neither aims to be a general JSON
// library; both are enough to make the repo's own artifacts round-trip.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace gridbox::obs {

/// Escapes `s` as the body of a JSON string (no surrounding quotes).
[[nodiscard]] std::string json_escape(const std::string& s);

/// Streaming JSON builder. Usage:
///   JsonWriter w;
///   w.begin_object();
///   w.key("name").value("run"); w.key("seed").value(7);
///   w.key("phases").begin_array(); ... w.end_array();
///   w.end_object();
///   std::string text = w.take();
/// Commas are inserted automatically; the caller is responsible for the
/// overall shape being well formed (begin/end pairs balanced).
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(const std::string& name);
  JsonWriter& value(const std::string& s);
  JsonWriter& value(const char* s);
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v);
  JsonWriter& value(bool v);
  JsonWriter& null();
  /// Splices pre-rendered JSON text in as one value (no escaping).
  JsonWriter& raw(const std::string& json);

  [[nodiscard]] const std::string& text() const { return out_; }
  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  void before_value();
  std::string out_;
  std::vector<bool> needs_comma_;  ///< one flag per open scope
  bool after_key_ = false;
};

/// Parsed JSON value (tree form).
struct JsonValue {
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject
  };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  /// Ordered map so re-serialization is deterministic.
  std::map<std::string, JsonValue> object;

  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool is_number() const { return kind == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind == Kind::kString; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(const std::string& name) const;
  /// find() + number coercion with a fallback.
  [[nodiscard]] double number_or(const std::string& name,
                                 double fallback) const;
  /// find() + string coercion with a fallback.
  [[nodiscard]] std::string string_or(const std::string& name,
                                      const std::string& fallback) const;
};

/// Parses `text`; throws PreconditionError (via expects) on malformed input.
[[nodiscard]] JsonValue json_parse(const std::string& text);

}  // namespace gridbox::obs
