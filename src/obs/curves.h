// Empirical epidemic curves, with the paper's analytic overlay.
//
// A CurveRecorder buckets knowledge-gain events (fed by RunObserver) into
// per-phase infected-count time series: bucket r of phase i holds how many
// (member, value) knowledge pairs existed after r gossip rounds. Divided by
// a protocol-aware denominator (the maximum achievable pairs, computed by
// run_experiment), that is the run's empirical infection fraction — the
// curves of Figures 4–11. The same JSON carries the Bailey logistic model
// (src/analysis/epidemic.h) evaluated for the same (N, K, b) and the
// closed-form completeness asymptotes (src/analysis/completeness.h), so
// empirical vs analytic plots come from one self-contained
// "gridbox-curves/1" document.
//
// Determinism: empirical fractions are computed in integer arithmetic
// (basis points); model values are quantized to basis points so the golden
// fixture is stable byte for byte.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/protocols/gossip/trace.h"
#include "src/sim/simulator.h"

namespace gridbox::obs {

class CurveRecorder {
 public:
  struct Options {
    /// Bucket width in microseconds — one gossip round. Must be > 0.
    std::uint64_t round_us = 1;
    /// Clock for bucketing (nullable: everything lands in bucket 0). The
    /// CLI constructs recorders before the simulator exists; run_experiment
    /// installs the run's clock via set_clock().
    const sim::Simulator* simulator = nullptr;
  };

  /// Bailey logistic parameters for one phase: group size m, per-value
  /// contact rate b (already divided by the number of values in flight).
  struct PhaseModel {
    double m = 1.0;
    double b = 0.0;
  };

  /// The analytic side of the overlay (hier-gossip only; empty for the
  /// baselines, whose JSON then carries empirical rows alone).
  struct Analytic {
    bool enabled = false;
    double b = 0.0;  ///< effective per-round contact rate
    std::uint64_t rounds_per_phase = 0;
    std::vector<PhaseModel> phases;  ///< index 0 = phase 1
    double c1 = 0.0;                 ///< first_phase_completeness
    double phase_bound = 0.0;        ///< phase_completeness_bound (i >= 2)
    double protocol_bound = 0.0;     ///< protocol_completeness_bound
    double theorem1 = 0.0;           ///< theorem1_bound
  };

  explicit CurveRecorder(Options options);

  /// One knowledge gain in `phase` at the current sim time. kResult gains go
  /// to their own row (result dissemination is not a phase epidemic).
  void record_gain(std::size_t phase, protocols::gossip::GainKind kind);

  /// Maximum achievable knowledge pairs per phase (index 0 = phase 1) and
  /// for the result row; protocol-aware, set by run_experiment.
  void set_denominators(std::vector<std::uint64_t> per_phase,
                        std::uint64_t result_denominator);
  void set_analytic(Analytic analytic);
  void set_meta(std::size_t group_size, std::uint32_t k);
  void set_clock(const sim::Simulator* simulator) {
    options_.simulator = simulator;
  }

  [[nodiscard]] std::uint64_t total_gains() const { return total_gains_; }

  /// Serializes everything as a "gridbox-curves/1" JSON document.
  [[nodiscard]] std::string to_json() const;

 private:
  /// Gains per bucket (rounds since t=0), indexed by bucket. A flat array:
  /// the hot path is one bounds check and an increment, and runs end after
  /// a few hundred rounds so the tail of zeroes is negligible. Zero-count
  /// buckets are skipped on output, matching the sparse representation.
  using Series = std::vector<std::uint64_t>;

  void write_series(class JsonWriter& w, const Series& series,
                    std::uint64_t denominator) const;

  Options options_;
  // Bucket lookup cache: sim time is monotonic, so nearly every gain lands
  // in the same bucket as the previous one. The division only runs when the
  // clock crosses a bucket edge — once per round, not once per event.
  std::uint64_t cached_bucket_ = 0;
  std::uint64_t cached_start_ = 1;  ///< > cached_end_ ⇒ first use recomputes
  std::uint64_t cached_end_ = 0;
  std::vector<Series> phase_series_;  ///< index 0 = phase 1
  Series result_series_;
  std::vector<std::uint64_t> denominators_;
  std::uint64_t result_denominator_ = 0;
  Analytic analytic_;
  std::size_t group_size_ = 0;
  std::uint32_t k_ = 0;
  std::uint64_t total_gains_ = 0;
};

}  // namespace gridbox::obs
