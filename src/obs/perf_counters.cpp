#include "src/obs/perf_counters.h"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstring>
#endif

namespace gridbox::obs {

#if defined(__linux__)

namespace {

int open_counter(std::uint64_t config) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = PERF_TYPE_HARDWARE;
  attr.size = sizeof(attr);
  attr.config = config;
  attr.disabled = 1;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  // Threads spawned after the counter opens (the UDP cases' reactor shard
  // threads all start inside the measured body) inherit it, so the reading
  // covers the whole run, not just the calling thread.
  attr.inherit = 1;
  // pid=0/cpu=-1: this thread (plus inherited children), any cpu.
  const long fd =
      syscall(__NR_perf_event_open, &attr, /*pid=*/0, /*cpu=*/-1,
              /*group_fd=*/-1, /*flags=*/0UL);
  return fd < 0 ? -1 : static_cast<int>(fd);
}

constexpr std::uint64_t kConfigs[PerfCounters::kSlots] = {
    PERF_COUNT_HW_INSTRUCTIONS,
    PERF_COUNT_HW_CPU_CYCLES,
    PERF_COUNT_HW_CACHE_MISSES,
    PERF_COUNT_HW_BRANCH_MISSES,
};

}  // namespace

PerfCounters::PerfCounters() {
  for (int i = 0; i < kSlots; ++i) fds_[i] = open_counter(kConfigs[i]);
}

PerfCounters::~PerfCounters() {
  for (const int fd : fds_) {
    if (fd >= 0) (void)close(fd);
  }
}

bool PerfCounters::available() const {
  for (const int fd : fds_) {
    if (fd >= 0) return true;
  }
  return false;
}

void PerfCounters::start() {
  for (const int fd : fds_) {
    if (fd < 0) continue;
    (void)ioctl(fd, PERF_EVENT_IOC_RESET, 0);
    (void)ioctl(fd, PERF_EVENT_IOC_ENABLE, 0);
  }
}

void PerfCounters::stop() {
  for (const int fd : fds_) {
    if (fd >= 0) (void)ioctl(fd, PERF_EVENT_IOC_DISABLE, 0);
  }
}

PerfReading PerfCounters::read() const {
  PerfReading out;
  std::uint64_t values[kSlots] = {};
  bool ok[kSlots] = {};
  for (int i = 0; i < kSlots; ++i) {
    if (fds_[i] < 0) continue;
    std::uint64_t value = 0;
    ok[i] = ::read(fds_[i], &value, sizeof(value)) == sizeof(value);
    values[i] = value;
  }
  out.has_instructions = ok[0];
  out.instructions = values[0];
  out.has_cycles = ok[1];
  out.cycles = values[1];
  out.has_cache_misses = ok[2];
  out.cache_misses = values[2];
  out.has_branch_misses = ok[3];
  out.branch_misses = values[3];
  return out;
}

#else  // !defined(__linux__)

PerfCounters::PerfCounters() = default;
PerfCounters::~PerfCounters() = default;
bool PerfCounters::available() const { return false; }
void PerfCounters::start() {}
void PerfCounters::stop() {}
PerfReading PerfCounters::read() const { return {}; }

#endif

}  // namespace gridbox::obs
