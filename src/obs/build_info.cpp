#include "src/obs/build_info.h"

namespace gridbox::obs {

// GRIDBOX_GIT_REV is injected by src/CMakeLists.txt on this one translation
// unit, so touching the revision only recompiles this file.
#ifndef GRIDBOX_GIT_REV
#define GRIDBOX_GIT_REV "unknown"
#endif

std::string git_revision() { return GRIDBOX_GIT_REV; }

}  // namespace gridbox::obs
