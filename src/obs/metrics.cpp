#include "src/obs/metrics.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "src/common/ensure.h"
#include "src/obs/json.h"

namespace gridbox::obs {

Histogram::Histogram(std::vector<std::uint64_t> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0) {
  expects(std::is_sorted(bounds_.begin(), bounds_.end()),
          "histogram bounds must be ascending");
}

void Histogram::observe(std::uint64_t v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
}

void Histogram::add_to_bucket(std::size_t bucket, std::uint64_t n) {
  expects(bucket < counts_.size(), "histogram add_to_bucket: bucket range");
  counts_[bucket] += n;
}

std::uint64_t Histogram::total() const {
  return std::accumulate(counts_.begin(), counts_.end(), std::uint64_t{0});
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) counters[name] += value;
  for (const auto& [name, value] : other.gauges) {
    auto& mine = gauges[name];
    mine = std::max(mine, value);
  }
  for (const auto& [name, hist] : other.histograms) {
    auto [it, inserted] = histograms.emplace(name, hist);
    if (inserted) continue;
    expects(it->second.bounds == hist.bounds,
            "histogram merge: bounds mismatch for " + name);
    for (std::size_t i = 0; i < hist.counts.size(); ++i) {
      it->second.counts[i] += hist.counts[i];
    }
  }
}

std::uint64_t MetricsSnapshot::counter_or_zero(const std::string& name) const {
  const auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

std::string MetricsSnapshot::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, value] : counters) w.key(name).value(value);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, value] : gauges) w.key(name).value(value);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, hist] : histograms) {
    w.key(name).begin_object();
    w.key("bounds").begin_array();
    for (const std::uint64_t b : hist.bounds) w.value(b);
    w.end_array();
    w.key("counts").begin_array();
    for (const std::uint64_t c : hist.counts) w.value(c);
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.take();
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const auto it = counter_index_.find(name);
  if (it != counter_index_.end()) return *it->second;
  counters_.emplace_back();
  counter_index_.emplace(name, &counters_.back());
  return counters_.back();
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const auto it = gauge_index_.find(name);
  if (it != gauge_index_.end()) return *it->second;
  gauges_.emplace_back();
  gauge_index_.emplace(name, &gauges_.back());
  return gauges_.back();
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<std::uint64_t> bounds) {
  const auto it = histogram_index_.find(name);
  if (it != histogram_index_.end()) {
    expects(bounds.empty() || bounds == it->second->bounds(),
            "histogram re-registered with different bounds: " + name);
    return *it->second;
  }
  expects(!bounds.empty(), "histogram needs bounds at first registration");
  histograms_.emplace_back(std::move(bounds));
  histogram_index_.emplace(name, &histograms_.back());
  return histograms_.back();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  for (const auto& [name, c] : counter_index_) {
    snap.counters.emplace(name, c->value());
  }
  for (const auto& [name, g] : gauge_index_) {
    snap.gauges.emplace(name, g->value());
  }
  for (const auto& [name, h] : histogram_index_) {
    snap.histograms.emplace(
        name, MetricsSnapshot::HistogramData{h->bounds(), h->counts()});
  }
  return snap;
}

}  // namespace gridbox::obs
