// Hardware perf-counter attribution for the bench harness.
//
// Wraps perf_event_open for the four counters that make a BENCH delta
// attributable instead of merely observed (ROADMAP item 5): instructions,
// cycles, cache misses, branch misses. Wall time says a change is faster;
// instructions-per-event says whether the win is less work or less stall.
//
// Graceful degradation is the contract: perf_event_open is routinely
// unavailable (containers without CAP_PERFMON, kernel.perf_event_paranoid,
// non-Linux hosts). Construction never throws for that reason — each
// counter that cannot be opened is simply absent from the Reading, and
// downstream (bench_io, bench_diff) renders absent as "n/a", never as a
// zero that could be mistaken for data.
#pragma once

#include <cstdint>

namespace gridbox::obs {

/// One measurement interval's counter values. A counter the host refused to
/// open reports has_* == false and 0.
struct PerfReading {
  bool has_instructions = false;
  bool has_cycles = false;
  bool has_cache_misses = false;
  bool has_branch_misses = false;
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t branch_misses = 0;

  [[nodiscard]] bool any() const {
    return has_instructions || has_cycles || has_cache_misses ||
           has_branch_misses;
  }
};

/// RAII group of per-thread hardware counters (user space only, this
/// process only). start() resets and enables, stop() disables, read()
/// returns whatever the host granted. Non-copyable: each instance owns fds.
class PerfCounters {
 public:
  PerfCounters();
  ~PerfCounters();
  PerfCounters(const PerfCounters&) = delete;
  PerfCounters& operator=(const PerfCounters&) = delete;

  /// True when at least one hardware counter opened.
  [[nodiscard]] bool available() const;

  void start();
  void stop();
  [[nodiscard]] PerfReading read() const;

  /// Slot order: instructions, cycles, cache misses, branch misses.
  static constexpr int kSlots = 4;

 private:
  int fds_[kSlots] = {-1, -1, -1, -1};
};

}  // namespace gridbox::obs
