// Live runtime telemetry: per-shard health lanes sampled into a
// schema-versioned JSONL time series.
//
// The post-mortem observability stack (metrics, lineage, curves, flight
// recorder) answers "what happened" after measure_run; this layer answers
// "what is the run doing right now". Each reactor shard (or the simulator)
// owns one cache-line-aligned TelemetryLane of relaxed-atomic counters and
// fixed-bucket log2 histograms — the same single-writer, no-lock discipline
// as the mux stat lanes (DESIGN.md §14) — recording timer-fire lateness,
// poll wake causes, datagrams drained per wake, cross-thread post queue
// depth, and dispatch work per wheel tick. The service engine adds a
// control-thread-only section: epoch launch→complete latency and
// window-occupancy/deferral gauges.
//
// Zero cost when off: every instrumented site holds a nullable
// TelemetryLane* and pays one pointer test per event when telemetry is not
// armed. When armed, the steady-state record path is a relaxed fetch_add
// into preallocated fixed arrays — no locks, no heap (the zero-alloc suite
// pins that claim).
//
// A TelemetrySampler on the control thread snapshots every lane on a fixed
// interval into one "gridbox-telemetry/1" JSONL record: integer-only,
// lanes merged in shard order, so on the simulator substrate the whole
// series is a byte-deterministic function of (config, seed). Leaf header:
// depends on common/types.h and the standard library only, so net/ and
// sim/ can include it without a layering cycle.
#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "src/common/types.h"

namespace gridbox::obs {

/// Fixed log2 histogram. Bucket 0 holds exact zeros; bucket b in [1, 14]
/// holds values in [2^(b-1), 2^b); the last bucket absorbs everything
/// larger. Observation is one relaxed fetch_add; merging is bucket-wise
/// addition, so per-shard histograms fold deterministically in shard order.
struct TelemetryHist {
  static constexpr std::size_t kBuckets = 16;
  std::atomic<std::uint64_t> buckets[kBuckets] = {};

  [[nodiscard]] static std::size_t bucket_of(std::uint64_t value) {
    if (value == 0) return 0;
    return std::min<std::size_t>(kBuckets - 1, std::bit_width(value));
  }

  void observe(std::uint64_t value) {
    buckets[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t total() const {
    std::uint64_t sum = 0;
    for (const auto& b : buckets) sum += b.load(std::memory_order_relaxed);
    return sum;
  }
};

/// One shard's live health counters. Single writer — the owning shard
/// thread — except note_post_depth, which post()ing threads race through a
/// relaxed fetch-max. Readers (the control-thread sampler) see a valid,
/// possibly slightly torn snapshot: each counter is individually atomic,
/// and per-sample deltas over a torn snapshot still bound the truth.
struct alignas(64) TelemetryLane {
  std::atomic<std::uint64_t> timers_fired{0};
  std::atomic<std::uint64_t> actions_run{0};
  /// Datagrams delivered (reactor shards) / frames delivered (simulator).
  std::atomic<std::uint64_t> frames_delivered{0};
  std::atomic<std::uint64_t> polls{0};
  std::atomic<std::uint64_t> wakes_io{0};      ///< poll returned readable fds
  std::atomic<std::uint64_t> wakes_timeout{0}; ///< quantum elapsed / spurious
  std::atomic<std::uint64_t> eintr_retries{0};
  /// High-water of the cross-thread post() inbox (reactor) or of the
  /// pending event queue (simulator).
  std::atomic<std::uint64_t> queue_depth_hw{0};
  /// Timer fire time minus scheduled deadline, µs. Always bucket 0 on the
  /// simulator: the virtual clock fires exactly on time.
  TelemetryHist timer_lateness_us;
  /// Datagrams drained per on_readable wake (bucket 0 = spurious wake).
  TelemetryHist drain_per_wake;
  /// Due entries dispatched per non-empty wheel pass.
  TelemetryHist dispatch_per_tick;

  void note_timer_fired(std::uint64_t lateness_us) {
    timers_fired.fetch_add(1, std::memory_order_relaxed);
    timer_lateness_us.observe(lateness_us);
  }

  void note_queue_depth(std::uint64_t depth) {
    std::uint64_t seen = queue_depth_hw.load(std::memory_order_relaxed);
    while (seen < depth && !queue_depth_hw.compare_exchange_weak(
                               seen, depth, std::memory_order_relaxed)) {
    }
  }
};

/// The service engine's stream-level gauges. Control thread only (the
/// engine's bookkeeping is single-threaded by construction), so plain
/// fields; the sampler runs on the same thread.
struct ServiceTelemetry {
  std::uint64_t launched = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t deferred = 0;
  std::uint64_t in_flight = 0;        ///< current window occupancy
  std::uint64_t in_flight_hw = 0;
  std::uint64_t deferred_queue = 0;   ///< launches currently parked
  std::uint64_t deferred_queue_hw = 0;
  /// Launch → every-participant-finished latency, µs, per instance.
  TelemetryHist epoch_latency_us;

  void note_occupancy(std::uint64_t running, std::uint64_t queued) {
    in_flight = running;
    in_flight_hw = std::max(in_flight_hw, running);
    deferred_queue = queued;
    deferred_queue_hw = std::max(deferred_queue_hw, queued);
  }
};

/// Plain (non-atomic) copy of one lane, and the fold unit for the
/// shard-ordered total.
struct LaneSnapshot {
  std::uint64_t timers_fired = 0;
  std::uint64_t actions_run = 0;
  std::uint64_t frames_delivered = 0;
  std::uint64_t polls = 0;
  std::uint64_t wakes_io = 0;
  std::uint64_t wakes_timeout = 0;
  std::uint64_t eintr_retries = 0;
  std::uint64_t queue_depth_hw = 0;
  std::uint64_t timer_lateness_us[TelemetryHist::kBuckets] = {};
  std::uint64_t drain_per_wake[TelemetryHist::kBuckets] = {};
  std::uint64_t dispatch_per_tick[TelemetryHist::kBuckets] = {};

  /// Counters and buckets add; the high-water gauge takes the max.
  void add(const LaneSnapshot& other);
};

/// Owns the per-shard lanes plus the service section, and renders the
/// merged JSONL record. Lane count is fixed at construction (one per
/// reactor shard; 1 on the simulator substrate).
class TelemetryHub {
 public:
  static constexpr const char* kSchema = "gridbox-telemetry/1";

  explicit TelemetryHub(std::size_t lanes);
  TelemetryHub(const TelemetryHub&) = delete;
  TelemetryHub& operator=(const TelemetryHub&) = delete;

  [[nodiscard]] std::size_t lane_count() const { return lane_count_; }
  [[nodiscard]] TelemetryLane& lane(std::size_t i) { return lanes_[i]; }

  /// Arms the service section (streamed-epoch runtimes); one-shot runs
  /// leave it off and the record omits "service".
  void enable_service() { service_enabled_ = true; }
  [[nodiscard]] bool service_enabled() const { return service_enabled_; }
  [[nodiscard]] ServiceTelemetry& service() { return service_; }

  [[nodiscard]] LaneSnapshot snapshot_lane(std::size_t i) const;
  /// All lanes folded in shard order (the deterministic merge).
  [[nodiscard]] LaneSnapshot snapshot_total() const;

  /// One "gridbox-telemetry/1" record (no trailing newline): integer-only,
  /// per-lane objects in shard order, the shard-ordered total, and the
  /// service section when armed.
  [[nodiscard]] std::string sample_json(std::uint64_t seq, SimTime now) const;

 private:
  std::unique_ptr<TelemetryLane[]> lanes_;
  std::size_t lane_count_ = 0;
  ServiceTelemetry service_;
  bool service_enabled_ = false;
};

/// Sampling configuration, carried by ExperimentConfig so every runtime
/// (simulator, UDP one-shot, both service substrates) reads one knob.
/// Execution-side instrumentation: excluded from config_canonical_text,
/// never affects what a run computes.
struct TelemetryConfig {
  bool enabled = false;
  /// Sampling cadence on the substrate's own clock (virtual µs on the
  /// simulator, wall µs on the reactors).
  SimTime interval = SimTime::millis(100);
  /// JSONL destination; empty = no file (latest() still serves the socket).
  std::string out_path;
  /// Optional in-memory sink: every record (newline-terminated) is
  /// appended. Non-owning; the determinism tests read telemetry here.
  std::string* sink = nullptr;
  /// UDP runtimes only: serve the latest record one-shot from
  /// 127.0.0.1:udp_port (0 = no stats socket). gridbox_top polls it.
  std::uint16_t udp_port = 0;
};

/// Control-thread sampler: renders the hub into JSONL on a fixed cadence.
/// sample() must be called from one thread at a time (the control shard
/// mid-run; the joining thread for the final sample).
class TelemetrySampler {
 public:
  TelemetrySampler(TelemetryHub& hub, TelemetryConfig config);
  ~TelemetrySampler();
  TelemetrySampler(const TelemetrySampler&) = delete;
  TelemetrySampler& operator=(const TelemetrySampler&) = delete;

  /// Appends one record stamped `now` to the file/sink and retains it as
  /// latest(). Flushes the file so a live `gridbox_top --file` tail sees
  /// complete lines.
  void sample(SimTime now);

  [[nodiscard]] const std::string& latest() const { return latest_; }
  [[nodiscard]] SimTime interval() const { return config_.interval; }
  [[nodiscard]] std::uint64_t samples() const { return seq_; }

 private:
  TelemetryHub& hub_;
  TelemetryConfig config_;
  std::FILE* file_ = nullptr;
  std::string latest_;
  std::uint64_t seq_ = 0;
};

}  // namespace gridbox::obs
