#include "src/obs/lineage.h"

#include <algorithm>
#include <string>
#include <utility>

#include "src/common/ensure.h"
#include "src/obs/json.h"

namespace gridbox::obs {

namespace {

const char* op_name(LineageTracker::NodeOp op) {
  using NodeOp = LineageTracker::NodeOp;
  switch (op) {
    case NodeOp::kGainRemote:
      return "remote";
    case NodeOp::kGainLocal:
      return "local";
    case NodeOp::kGainAdopted:
      return "adopted";
    case NodeOp::kGainResult:
      return "result";
    case NodeOp::kConclude:
      return "conclude";
  }
  return "?";
}

}  // namespace

LineageTracker::LineageTracker(Options options) : options_(options) {
  expects(options_.group_size > 0, "lineage tracker needs a group size");
  // A member produces roughly |box| + K·(phases−1) gains plus a conclusion
  // per phase and a finish; pre-size the log so a typical run never
  // reallocates mid-flight. resize-then-clear instead of reserve: it first-
  // touches the pages here, in setup, so the run itself never stalls on
  // page faults for the log.
  log_.resize(options_.group_size * 24);
  log_.clear();
}

SimTime LineageTracker::now() const {
  return options_.simulator != nullptr ? options_.simulator->now()
                                       : SimTime::zero();
}

LineageTracker::MemberState& LineageTracker::state_of(MemberId member) const {
  const std::size_t i = member.value();
  if (i >= members_.size()) members_.resize(i + 1);
  return members_[i];
}

LineageTracker::Cell& LineageTracker::cell_at(MemberState& s,
                                              std::size_t phase,
                                              std::uint32_t index) {
  if (phase == 1) {
    const auto it = std::lower_bound(
        s.phase1.begin(), s.phase1.end(), index,
        [](const auto& entry, std::uint32_t i) { return entry.first < i; });
    if (it != s.phase1.end() && it->first == index) return it->second;
    return s.phase1.insert(it, {index, Cell{}})->second;
  }
  if (phase - 2 >= s.upper.size()) s.upper.resize(phase - 1);
  std::vector<Cell>& row = s.upper[phase - 2];
  if (index >= row.size()) row.resize(index + 1);
  return row[index];
}

const LineageTracker::Cell* LineageTracker::find_cell(const MemberState& s,
                                                      std::size_t phase,
                                                      std::uint32_t index) {
  if (phase == 1) {
    const auto it = std::lower_bound(
        s.phase1.begin(), s.phase1.end(), index,
        [](const auto& entry, std::uint32_t i) { return entry.first < i; });
    return it != s.phase1.end() && it->first == index ? &it->second : nullptr;
  }
  if (phase - 2 >= s.upper.size()) return nullptr;
  const std::vector<Cell>& row = s.upper[phase - 2];
  return index < row.size() ? &row[index] : nullptr;
}

std::int64_t LineageTracker::add_node(Node node) const {
  nodes_.push_back(std::move(node));
  return static_cast<std::int64_t>(nodes_.size() - 1);
}

void LineageTracker::error(std::string what) const {
  errors_.push_back(std::move(what));
}

std::int64_t LineageTracker::resolve_sender(MemberId sender, std::size_t phase,
                                            std::uint32_t index) const {
  const Cell* cell = find_cell(state_of(sender), phase, index);
  if (cell == nullptr) return -1;
  // The export wins over the held cell: what a member *sends* for a cell can
  // be its own computed partial even when a peer's copy occupies the cell.
  if (cell->exported >= 0) return cell->exported;
  return cell->held;
}

void LineageTracker::on_phase_entered(MemberId member, std::size_t phase) {
  (void)member;
  (void)phase;
}

// --- Hot path: append-only. -----------------------------------------------

void LineageTracker::on_knowledge_gained(MemberId member, std::size_t phase,
                                         std::uint32_t index, MemberId from,
                                         std::uint32_t votes,
                                         protocols::gossip::GainKind kind) {
  RawEvent e;
  e.type = RawEvent::Type::kGain;
  e.aux = static_cast<std::uint8_t>(kind);
  e.member = member.value();
  e.from = from.value();
  e.phase = static_cast<std::uint32_t>(phase);
  e.index = index;
  e.votes = votes;
  e.at = now();
  log_.push_back(e);
  finalized_ = false;
}

void LineageTracker::on_phase_concluded(MemberId member, std::size_t phase,
                                        protocols::gossip::PhaseEnd how,
                                        std::uint32_t votes) {
  RawEvent e;
  e.type = RawEvent::Type::kConclude;
  e.aux = static_cast<std::uint8_t>(how);
  e.member = member.value();
  e.phase = static_cast<std::uint32_t>(phase);
  e.votes = votes;
  e.at = now();
  log_.push_back(e);
  finalized_ = false;
}

void LineageTracker::on_finished(MemberId member, std::uint32_t votes) {
  RawEvent e;
  e.type = RawEvent::Type::kFinish;
  e.member = member.value();
  e.votes = votes;
  e.at = now();
  log_.push_back(e);
  finalized_ = false;
}

void LineageTracker::on_crash(MemberId member) {
  RawEvent e;
  e.type = RawEvent::Type::kCrash;
  e.member = member.value();
  e.at = now();
  log_.push_back(e);
  finalized_ = false;
}

// --- Replay: the original incremental bookkeeping, run over the log. ------

void LineageTracker::replay_gain(const RawEvent& e) const {
  using protocols::gossip::GainKind;
  const MemberId member(e.member);
  const MemberId from(e.from);
  const std::size_t phase = e.phase;
  const std::uint32_t index = e.index;
  const std::uint32_t votes = e.votes;
  const auto kind = static_cast<GainKind>(e.aux);
  MemberState& s = state_of(member);

  Node node;
  node.member = member;
  node.from = from;
  node.phase = static_cast<std::uint32_t>(phase);
  node.index = index;
  node.votes = votes;
  node.at = e.at;

  switch (kind) {
    case GainKind::kLocal: {
      node.op = NodeOp::kGainLocal;
      // Phase-1 locals are leaves (the member's own vote); later locals seed
      // the member's child slot from its carry (the previous conclusion).
      if (phase >= 2) node.parent = s.carry;
      const std::int64_t id = add_node(std::move(node));
      Cell& cell = cell_at(s, phase, index);
      cell.exported = static_cast<std::int32_t>(id);  // what this member sends
      if (cell.held < 0) {
        cell.held = static_cast<std::int32_t>(id);    // first occupant wins
      }
      break;
    }
    case GainKind::kRemote: {
      node.op = NodeOp::kGainRemote;
      node.parent = resolve_sender(from, phase, index);
      if (node.parent < 0) {
        error("M" + std::to_string(member.value()) + " gained (" +
              std::to_string(phase) + "," + std::to_string(index) +
              ") from M" + std::to_string(from.value()) +
              " but the sender holds no such cell");
      }
      const std::int64_t id = add_node(std::move(node));
      Cell& cell = cell_at(s, phase, index);
      if (cell.held >= 0) {
        error("M" + std::to_string(member.value()) + " gained cell (" +
              std::to_string(phase) + "," + std::to_string(index) +
              ") twice");
      } else {
        cell.held = static_cast<std::int32_t>(id);
      }
      break;
    }
    case GainKind::kAdopted: {
      node.op = NodeOp::kGainAdopted;
      node.parent = resolve_sender(from, phase, index);
      if (node.parent < 0) {
        error("M" + std::to_string(member.value()) + " adopted (" +
              std::to_string(phase) + "," + std::to_string(index) +
              ") from M" + std::to_string(from.value()) +
              " but the sender holds no such cell");
      }
      // Adoption replaces the member's carry wholesale; the cell itself is
      // (re)seeded by the kLocal event of the phase entered next.
      s.carry = add_node(std::move(node));
      break;
    }
    case GainKind::kResult: {
      node.op = NodeOp::kGainResult;
      if (from == member) {
        node.parent = s.carry;  // locally computed from the last conclusion
      } else {
        node.parent = state_of(from).result;
        if (node.parent < 0) {
          error("M" + std::to_string(member.value()) +
                " received a result from M" + std::to_string(from.value()) +
                " which has none");
        }
      }
      s.result = add_node(std::move(node));
      break;
    }
  }
}

void LineageTracker::replay_conclude(const RawEvent& e) const {
  const MemberId member(e.member);
  const std::size_t phase = e.phase;
  const std::uint32_t votes = e.votes;
  const auto how = static_cast<protocols::gossip::PhaseEnd>(e.aux);
  MemberState& s = state_of(member);
  if (how == protocols::gossip::PhaseEnd::kAdopted) {
    // The adoption gain already became the carry; the conclusion is just the
    // protocol reporting it. Cross-check the vote count.
    if (s.carry < 0) {
      error("M" + std::to_string(member.value()) +
            " concluded by adoption with no adopted value");
    } else if (nodes_[static_cast<std::size_t>(s.carry)].votes != votes) {
      error("M" + std::to_string(member.value()) + " adopted " +
            std::to_string(nodes_[static_cast<std::size_t>(s.carry)].votes) +
            " votes but concluded " + std::to_string(votes));
    }
    return;
  }

  Node node;
  node.member = member;
  node.from = member;
  node.phase = static_cast<std::uint32_t>(phase);
  node.votes = votes;
  node.op = NodeOp::kConclude;
  node.at = e.at;
  std::uint64_t sum = 0;
  const auto merge_cell = [this, &node, &sum](const Cell& cell) {
    if (cell.held < 0) return;
    node.merged.push_back(cell.held);
    sum += nodes_[static_cast<std::size_t>(cell.held)].votes;
  };
  if (phase == 1) {
    for (const auto& [index, cell] : s.phase1) {
      (void)index;
      merge_cell(cell);
    }
  } else if (phase - 2 < s.upper.size()) {
    for (const Cell& cell : s.upper[phase - 2]) merge_cell(cell);
  }
  // Determinism: cells are index-ordered, not arrival-ordered; order the
  // merge list by node id.
  std::sort(node.merged.begin(), node.merged.end());
  if (sum != votes) {
    error("M" + std::to_string(member.value()) + " concluded phase " +
          std::to_string(phase) + " with " + std::to_string(votes) +
          " votes but its cells sum to " + std::to_string(sum));
  }
  s.carry = add_node(std::move(node));
}

void LineageTracker::replay_finish(const RawEvent& e) const {
  const MemberId member(e.member);
  const std::uint32_t votes = e.votes;
  MemberState& s = state_of(member);
  const std::int64_t final_node = s.result >= 0 ? s.result : s.carry;
  if (final_node < 0) {
    error("M" + std::to_string(member.value()) +
          " finished with no lineage for its estimate");
  } else if (nodes_[static_cast<std::size_t>(final_node)].votes != votes) {
    error("M" + std::to_string(member.value()) + " finished with " +
          std::to_string(votes) + " votes but its lineage carries " +
          std::to_string(
              nodes_[static_cast<std::size_t>(final_node)].votes));
  }
  if (s.finished) {
    error("M" + std::to_string(member.value()) + " finished twice");
  } else {
    ++finished_count_;
  }
  s.finished = true;
  s.final_node = final_node;
  s.final_votes = votes;
}

void LineageTracker::finalize() const {
  if (finalized_) return;
  members_.clear();
  members_.resize(options_.group_size);
  nodes_.clear();
  nodes_.reserve(log_.size());
  errors_.clear();
  finished_count_ = 0;
  for (const RawEvent& e : log_) {
    switch (e.type) {
      case RawEvent::Type::kGain:
        replay_gain(e);
        break;
      case RawEvent::Type::kConclude:
        replay_conclude(e);
        break;
      case RawEvent::Type::kFinish:
        replay_finish(e);
        break;
      case RawEvent::Type::kCrash:
        state_of(MemberId(e.member)).crashed = true;
        break;
    }
  }
  finalized_ = true;
}

std::size_t LineageTracker::finished_count() const {
  finalize();
  return finished_count_;
}

const std::vector<LineageTracker::Node>& LineageTracker::nodes() const {
  finalize();
  return nodes_;
}

const std::vector<std::string>& LineageTracker::errors() const {
  finalize();
  return errors_;
}

double LineageTracker::mean_completeness() const {
  finalize();
  // Exactly measure_run's loop: member order, crashed members skipped,
  // unfinished survivors contribute 0, one division at the end.
  const auto n = static_cast<double>(options_.group_size);
  double completeness_sum = 0.0;
  std::size_t survivors = 0;
  for (std::size_t i = 0; i < options_.group_size && i < members_.size();
       ++i) {
    const MemberState& s = members_[i];
    if (s.crashed) continue;
    ++survivors;
    double completeness = 0.0;
    if (s.finished) {
      completeness = static_cast<double>(s.final_votes) / n;
    }
    completeness_sum += completeness;
  }
  if (survivors == 0) return 0.0;
  return completeness_sum / static_cast<double>(survivors);
}

std::uint64_t LineageTracker::completeness_bp() const {
  return static_cast<std::uint64_t>(mean_completeness() * 10'000.0 + 0.5);
}

void LineageTracker::capture_hierarchy(
    const hierarchy::GridBoxHierarchy& hierarchy) {
  have_hierarchy_ = true;
  fanout_ = hierarchy.fanout();
  num_phases_ = hierarchy.num_phases();
  digit_count_ = num_phases_ > 0 ? num_phases_ - 1 : 0;
  address_digits_.assign(options_.group_size * digit_count_, 0);
  for (std::size_t i = 0; i < options_.group_size; ++i) {
    const hierarchy::GridBoxAddress addr =
        hierarchy.address_of(MemberId(static_cast<MemberId::underlying>(i)));
    for (std::size_t d = 0; d < digit_count_ && d < addr.digit_count(); ++d) {
      address_digits_[i * digit_count_ + d] = addr.digit(d);
    }
  }
}

std::string LineageTracker::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("schema");
  w.value("gridbox-lineage/1");
  w.key("group_size");
  w.value(static_cast<std::uint64_t>(options_.group_size));
  if (have_hierarchy_) {
    w.key("fanout");
    w.value(static_cast<std::uint64_t>(fanout_));
    w.key("num_phases");
    w.value(static_cast<std::uint64_t>(num_phases_));
  }
  w.key("completeness_bp");
  w.value(completeness_bp());

  w.key("members");
  w.begin_array();
  for (std::size_t i = 0; i < options_.group_size; ++i) {
    const MemberState& s = members_[i];
    w.begin_object();
    w.key("m");
    w.value(static_cast<std::uint64_t>(i));
    if (have_hierarchy_ && (i + 1) * digit_count_ <= address_digits_.size()) {
      w.key("addr");
      w.begin_array();
      for (std::size_t d = 0; d < digit_count_; ++d) {
        w.value(
            static_cast<std::uint64_t>(address_digits_[i * digit_count_ + d]));
      }
      w.end_array();
    }
    w.key("finished");
    w.value(static_cast<std::uint64_t>(s.finished ? 1 : 0));
    w.key("crashed");
    w.value(static_cast<std::uint64_t>(s.crashed ? 1 : 0));
    w.key("votes");
    w.value(static_cast<std::uint64_t>(s.final_votes));
    w.key("final");
    w.value(static_cast<std::int64_t>(s.final_node));
    w.end_object();
  }
  w.end_array();

  w.key("nodes");
  w.begin_array();
  for (const Node& node : nodes_) {
    w.begin_object();
    w.key("m");
    w.value(static_cast<std::uint64_t>(node.member.value()));
    w.key("op");
    w.value(op_name(node.op));
    w.key("phase");
    w.value(static_cast<std::uint64_t>(node.phase));
    w.key("index");
    w.value(static_cast<std::uint64_t>(node.index));
    w.key("from");
    w.value(static_cast<std::uint64_t>(node.from.value()));
    w.key("votes");
    w.value(static_cast<std::uint64_t>(node.votes));
    w.key("t");
    w.value(static_cast<std::uint64_t>(node.at.ticks()));
    w.key("parent");
    w.value(static_cast<std::int64_t>(node.parent));
    if (!node.merged.empty()) {
      w.key("merged");
      w.begin_array();
      for (const std::int64_t id : node.merged) {
        w.value(static_cast<std::int64_t>(id));
      }
      w.end_array();
    }
    w.end_object();
  }
  w.end_array();

  w.key("errors");
  w.begin_array();
  for (const std::string& e : errors_) w.value(e);
  w.end_array();

  w.end_object();
  return w.take();
}

}  // namespace gridbox::obs
