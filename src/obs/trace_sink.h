// Structured run tracing: a JSONL event stream.
//
// Every line is one self-contained JSON object with at minimum {"t": <sim
// time in microsecond ticks>, "ev": <event name>}; the remaining fields are
// integers identifying the actors (member ids, phases, byte counts). The
// stream is integer-only and emitted in simulation event order, so a replay
// of the same (config, seed) produces byte-identical output — the trace
// golden tests pin that property.
//
// Event vocabulary (docs/observability.md):
//   send / drop / dup / recv / dead / malformed   — transport decisions
//   enter / round / learn / conclude / finish     — gossip phase machine
//   crash                                         — membership
#pragma once

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>

#include "src/common/types.h"

namespace gridbox::obs {

class TraceSink {
 public:
  /// Writes to `out`, which must outlive the sink. The sink never flushes;
  /// the stream's own buffering applies.
  explicit TraceSink(std::ostream& out) : out_(&out) {}

  /// Opens `path` for writing and owns the stream. Throws PreconditionError
  /// when the file cannot be opened.
  [[nodiscard]] static std::unique_ptr<TraceSink> to_file(
      const std::string& path);

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;
  virtual ~TraceSink() = default;

  /// Transport event over a (source, destination) pair.
  void message_event(const char* event, SimTime t, MemberId source,
                     MemberId destination, std::size_t bytes);
  /// Phase-machine event at one member. Fields with value
  /// kOmitted are left out of the line.
  static constexpr std::int64_t kOmitted = -1;
  void member_event(const char* event, SimTime t, MemberId member,
                    std::int64_t phase = kOmitted,
                    std::int64_t value = kOmitted,
                    const char* value_key = "v",
                    const char* detail = nullptr);

  [[nodiscard]] std::uint64_t lines_written() const { return lines_; }

 protected:
  TraceSink() = default;
  void set_stream(std::ostream& out) { out_ = &out; }

 private:
  void write_line(const std::string& line);

  std::ostream* out_ = nullptr;
  std::uint64_t lines_ = 0;
};

}  // namespace gridbox::obs
