#include "src/obs/run_observer.h"

#include <cstdio>
#include <utility>

#include "src/common/ensure.h"

namespace gridbox::obs {

namespace {

const char* how_name(protocols::gossip::PhaseEnd how) {
  using protocols::gossip::PhaseEnd;
  switch (how) {
    case PhaseEnd::kTimeout:
      return "timeout";
    case PhaseEnd::kSaturated:
      return "saturated";
    case PhaseEnd::kAdopted:
      return "adopted";
  }
  return "?";
}

}  // namespace

RunObserver::RunObserver(Options options) : options_(options) {
  expects(options_.simulator != nullptr, "run observer: simulator required");
  member_phase_.assign(options_.group_size, 0);
  if (MetricsRegistry* m = options_.metrics; m != nullptr) {
    msgs_sent_ = &m->counter("msgs_sent");
    msgs_dropped_ = &m->counter("msgs_dropped");
    msgs_duplicated_ = &m->counter("msgs_duplicated");
    msgs_delivered_ = &m->counter("msgs_delivered");
    msgs_dead_dest_ = &m->counter("msgs_dead_dest");
    msgs_malformed_ = &m->counter("msgs_malformed");
    bytes_on_wire_ = &m->counter("bytes_on_wire");
    rounds_total_ = &m->counter("gossip_rounds");
    phase_conclusions_ = &m->counter("phase_conclusions");
    finishes_ = &m->counter("finishes");
    crashes_ = &m->counter("crashes");
    // Fanout is the per-round gossipee count: M in the paper, usually tiny.
    fanout_hist_ = &m->histogram("gossip_fanout_hist",
                                 {0, 1, 2, 3, 4, 6, 8, 16});
  }
}

SimTime RunObserver::now() const { return options_.simulator->now(); }

Counter& RunObserver::phase_msgs_counter(std::size_t phase) {
  if (phase >= msgs_by_phase_.size()) {
    msgs_by_phase_.resize(phase + 1, nullptr);
  }
  if (msgs_by_phase_[phase] == nullptr) {
    char name[40];
    std::snprintf(name, sizeof(name), "msgs_sent_by_phase.%02zu", phase);
    msgs_by_phase_[phase] = &options_.metrics->counter(name);
  }
  return *msgs_by_phase_[phase];
}

void RunObserver::on_send(const net::Message& message, SimTime t) {
  const std::size_t phase =
      message.source.value() < member_phase_.size()
          ? member_phase_[message.source.value()]
          : 0;
  if (options_.metrics != nullptr) {
    msgs_sent_->inc();
    bytes_on_wire_->inc(message.frame.size());
    phase_msgs_counter(phase).inc();
  }
  timeline_.at_phase(phase).msgs_sent += 1;
  if (options_.sink != nullptr) {
    options_.sink->message_event("send", t, message.source,
                                 message.destination,
                                 message.frame.size());
  }
}

void RunObserver::on_drop(const net::Message& message, SimTime t) {
  if (options_.metrics != nullptr) msgs_dropped_->inc();
  if (options_.sink != nullptr) {
    options_.sink->message_event("drop", t, message.source,
                                 message.destination,
                                 message.frame.size());
  }
}

void RunObserver::on_duplicate(const net::Message& message, SimTime t) {
  if (options_.metrics != nullptr) {
    msgs_duplicated_->inc();
    // A duplicate is one more wire traversal: bytes_on_wire counts it once,
    // matching NetworkStats::bytes_sent byte for byte.
    bytes_on_wire_->inc(message.frame.size());
  }
  if (options_.sink != nullptr) {
    options_.sink->message_event("dup", t, message.source,
                                 message.destination,
                                 message.frame.size());
  }
}

void RunObserver::on_deliver(const net::Message& message, SimTime t) {
  if (options_.metrics != nullptr) msgs_delivered_->inc();
  if (options_.sink != nullptr) {
    options_.sink->message_event("recv", t, message.source,
                                 message.destination,
                                 message.frame.size());
  }
}

void RunObserver::on_dead_destination(const net::Message& message, SimTime t) {
  if (options_.metrics != nullptr) msgs_dead_dest_->inc();
  if (options_.sink != nullptr) {
    options_.sink->message_event("dead", t, message.source,
                                 message.destination,
                                 message.frame.size());
  }
}

void RunObserver::on_malformed(const net::Message& message, SimTime t) {
  if (options_.metrics != nullptr) msgs_malformed_->inc();
  if (options_.sink != nullptr) {
    options_.sink->message_event("malformed", t, message.source,
                                 message.destination,
                                 message.frame.size());
  }
}

void RunObserver::on_phase_entered(MemberId member, std::size_t phase) {
  if (options_.next != nullptr) options_.next->on_phase_entered(member, phase);
  if (member.value() < member_phase_.size()) {
    member_phase_[member.value()] = phase;
  }
  PhaseSpan& span = timeline_.at_phase(phase);
  span.entered += 1;
  if (!span.any_entered || now() < span.first_entered) {
    span.first_entered = now();
    span.any_entered = true;
  }
  if (options_.sink != nullptr) {
    options_.sink->member_event("enter", now(), member,
                                static_cast<std::int64_t>(phase));
  }
}

void RunObserver::on_round_gossiped(MemberId member, std::size_t phase,
                                    std::uint32_t fanout) {
  if (options_.next != nullptr) {
    options_.next->on_round_gossiped(member, phase, fanout);
  }
  if (options_.metrics != nullptr) {
    rounds_total_->inc();
    fanout_hist_->observe(fanout);
  }
  timeline_.at_phase(phase).rounds += 1;
  // Rounds are the bulk of the stream; traced with the fanout so a timeline
  // reader can see gossip pressure per phase.
  if (options_.sink != nullptr) {
    options_.sink->member_event("round", now(), member,
                                static_cast<std::int64_t>(phase),
                                static_cast<std::int64_t>(fanout), "fanout");
  }
}

void RunObserver::on_value_learned(MemberId member, std::size_t phase,
                                   std::uint32_t index) {
  if (options_.next != nullptr) {
    options_.next->on_value_learned(member, phase, index);
  }
  if (options_.sink != nullptr) {
    options_.sink->member_event("learn", now(), member,
                                static_cast<std::int64_t>(phase),
                                static_cast<std::int64_t>(index), "index");
  }
}

void RunObserver::on_phase_concluded(MemberId member, std::size_t phase,
                                     protocols::gossip::PhaseEnd how,
                                     std::uint32_t votes) {
  if (options_.next != nullptr) {
    options_.next->on_phase_concluded(member, phase, how, votes);
  }
  if (options_.metrics != nullptr) phase_conclusions_->inc();
  PhaseSpan& span = timeline_.at_phase(phase);
  span.concluded += 1;
  span.votes_concluded_sum += votes;
  if (now() > span.last_concluded) span.last_concluded = now();
  if (options_.sink != nullptr) {
    options_.sink->member_event("conclude", now(), member,
                                static_cast<std::int64_t>(phase),
                                static_cast<std::int64_t>(votes), "votes",
                                how_name(how));
  }
}

void RunObserver::on_finished(MemberId member, std::uint32_t votes) {
  if (options_.next != nullptr) options_.next->on_finished(member, votes);
  if (options_.metrics != nullptr) finishes_->inc();
  if (options_.sink != nullptr) {
    options_.sink->member_event("finish", now(), member, TraceSink::kOmitted,
                                static_cast<std::int64_t>(votes), "votes");
  }
}

void RunObserver::on_crash(MemberId member) {
  if (options_.metrics != nullptr) crashes_->inc();
  if (options_.sink != nullptr) {
    options_.sink->member_event("crash", now(), member);
  }
}

}  // namespace gridbox::obs
