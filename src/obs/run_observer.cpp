#include "src/obs/run_observer.h"

#include <cstdio>
#include <utility>

#include "src/common/ensure.h"
#include "src/obs/curves.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/lineage.h"

namespace gridbox::obs {

namespace {

const char* how_name(protocols::gossip::PhaseEnd how) {
  using protocols::gossip::PhaseEnd;
  switch (how) {
    case PhaseEnd::kTimeout:
      return "timeout";
    case PhaseEnd::kSaturated:
      return "saturated";
    case PhaseEnd::kAdopted:
      return "adopted";
  }
  return "?";
}

/// Message-shaped flight event.
FlightRecorder::Event flight_msg(FlightRecorder::EventKind kind,
                                 const net::Message& message, SimTime t) {
  FlightRecorder::Event e;
  e.at = t;
  e.kind = kind;
  e.a = message.source.value();
  e.b = message.destination.value();
  e.value = static_cast<std::uint32_t>(message.frame.size());
  return e;
}

}  // namespace

RunObserver::RunObserver(Options options) : options_(options) {
  expects(options_.simulator != nullptr, "run observer: simulator required");
  member_phase_.assign(options_.group_size, 0);
}

SimTime RunObserver::now() const { return options_.simulator->now(); }

void RunObserver::flush() {
  MetricsRegistry* m = options_.metrics;
  if (m == nullptr) return;
  m->counter("msgs_sent").inc(tally_.msgs_sent);
  m->counter("msgs_dropped").inc(tally_.msgs_dropped);
  m->counter("msgs_duplicated").inc(tally_.msgs_duplicated);
  m->counter("msgs_delivered").inc(tally_.msgs_delivered);
  m->counter("msgs_dead_dest").inc(tally_.msgs_dead_dest);
  m->counter("msgs_malformed").inc(tally_.msgs_malformed);
  m->counter("bytes_on_wire").inc(tally_.bytes_on_wire);
  m->counter("gossip_rounds").inc(tally_.rounds);
  m->counter("phase_conclusions").inc(tally_.conclusions);
  m->counter("finishes").inc(tally_.finishes);
  m->counter("crashes").inc(tally_.crashes);
  // Fanout is the per-round gossipee count: M in the paper, usually tiny.
  Histogram& fanout =
      m->histogram("gossip_fanout_hist", {0, 1, 2, 3, 4, 6, 8, 16});
  for (std::size_t i = 0; i < kFanoutBuckets; ++i) {
    fanout.add_to_bucket(i, fanout_counts_[i]);
  }
  // A per-phase counter exists iff the phase sent something, matching the
  // lazy registration this replaced.
  for (std::size_t phase = 0; phase < msgs_by_phase_.size(); ++phase) {
    if (msgs_by_phase_[phase] == 0) continue;
    char name[40];
    std::snprintf(name, sizeof(name), "msgs_sent_by_phase.%02zu", phase);
    m->counter(name).inc(msgs_by_phase_[phase]);
  }
}

void RunObserver::on_send(const net::Message& message, SimTime t) {
  const std::size_t phase =
      message.source.value() < member_phase_.size()
          ? member_phase_[message.source.value()]
          : 0;
  tally_.msgs_sent += 1;
  tally_.bytes_on_wire += message.frame.size();
  if (phase >= msgs_by_phase_.size()) msgs_by_phase_.resize(phase + 1, 0);
  msgs_by_phase_[phase] += 1;
  timeline_.at_phase(phase).msgs_sent += 1;
  if (options_.sink != nullptr) {
    options_.sink->message_event("send", t, message.source,
                                 message.destination,
                                 message.frame.size());
  }
  if (options_.flight != nullptr) {
    options_.flight->record(
        flight_msg(FlightRecorder::EventKind::kSend, message, t));
  }
}

void RunObserver::on_drop(const net::Message& message, SimTime t) {
  tally_.msgs_dropped += 1;
  if (options_.sink != nullptr) {
    options_.sink->message_event("drop", t, message.source,
                                 message.destination,
                                 message.frame.size());
  }
  if (options_.flight != nullptr) {
    options_.flight->record(
        flight_msg(FlightRecorder::EventKind::kDrop, message, t));
  }
}

void RunObserver::on_duplicate(const net::Message& message, SimTime t) {
  tally_.msgs_duplicated += 1;
  // A duplicate is one more wire traversal: bytes_on_wire counts it once,
  // matching NetworkStats::bytes_sent byte for byte.
  tally_.bytes_on_wire += message.frame.size();
  if (options_.sink != nullptr) {
    options_.sink->message_event("dup", t, message.source,
                                 message.destination,
                                 message.frame.size());
  }
  if (options_.flight != nullptr) {
    options_.flight->record(
        flight_msg(FlightRecorder::EventKind::kDuplicate, message, t));
  }
}

void RunObserver::on_deliver(const net::Message& message, SimTime t) {
  tally_.msgs_delivered += 1;
  if (options_.sink != nullptr) {
    options_.sink->message_event("recv", t, message.source,
                                 message.destination,
                                 message.frame.size());
  }
  if (options_.flight != nullptr) {
    options_.flight->record(
        flight_msg(FlightRecorder::EventKind::kDeliver, message, t));
  }
}

void RunObserver::on_dead_destination(const net::Message& message, SimTime t) {
  tally_.msgs_dead_dest += 1;
  if (options_.sink != nullptr) {
    options_.sink->message_event("dead", t, message.source,
                                 message.destination,
                                 message.frame.size());
  }
  if (options_.flight != nullptr) {
    options_.flight->record(
        flight_msg(FlightRecorder::EventKind::kDeadDest, message, t));
  }
}

void RunObserver::on_malformed(const net::Message& message, SimTime t) {
  tally_.msgs_malformed += 1;
  if (options_.sink != nullptr) {
    options_.sink->message_event("malformed", t, message.source,
                                 message.destination,
                                 message.frame.size());
  }
  if (options_.flight != nullptr) {
    options_.flight->record(
        flight_msg(FlightRecorder::EventKind::kMalformed, message, t));
  }
}

void RunObserver::on_phase_entered(MemberId member, std::size_t phase) {
  if (options_.next != nullptr) options_.next->on_phase_entered(member, phase);
  if (member.value() < member_phase_.size()) {
    member_phase_[member.value()] = phase;
  }
  PhaseSpan& span = timeline_.at_phase(phase);
  span.entered += 1;
  if (!span.any_entered || now() < span.first_entered) {
    span.first_entered = now();
    span.any_entered = true;
  }
  if (options_.sink != nullptr) {
    options_.sink->member_event("enter", now(), member,
                                static_cast<std::int64_t>(phase));
  }
  if (options_.flight != nullptr) {
    FlightRecorder::Event e;
    e.at = now();
    e.kind = FlightRecorder::EventKind::kPhaseEntered;
    e.a = member.value();
    e.phase = static_cast<std::uint32_t>(phase);
    options_.flight->record(e);
  }
}

void RunObserver::on_round_gossiped(MemberId member, std::size_t phase,
                                    std::uint32_t fanout) {
  if (options_.next != nullptr) {
    options_.next->on_round_gossiped(member, phase, fanout);
  }
  tally_.rounds += 1;
  // Same bucket rule as Histogram::observe: first bound >= v, else overflow.
  static constexpr std::uint64_t kFanoutBounds[] = {0, 1, 2, 3, 4, 6, 8, 16};
  std::size_t bucket = 0;
  while (bucket < kFanoutBuckets - 1 && fanout > kFanoutBounds[bucket]) {
    ++bucket;
  }
  ++fanout_counts_[bucket];
  timeline_.at_phase(phase).rounds += 1;
  // Rounds are the bulk of the stream; traced with the fanout so a timeline
  // reader can see gossip pressure per phase.
  if (options_.sink != nullptr) {
    options_.sink->member_event("round", now(), member,
                                static_cast<std::int64_t>(phase),
                                static_cast<std::int64_t>(fanout), "fanout");
  }
  if (options_.flight != nullptr) {
    FlightRecorder::Event e;
    e.at = now();
    e.kind = FlightRecorder::EventKind::kRound;
    e.a = member.value();
    e.phase = static_cast<std::uint32_t>(phase);
    e.value = fanout;
    options_.flight->record(e);
  }
}

void RunObserver::on_value_learned(MemberId member, std::size_t phase,
                                   std::uint32_t index) {
  if (options_.next != nullptr) {
    options_.next->on_value_learned(member, phase, index);
  }
  if (options_.sink != nullptr) {
    options_.sink->member_event("learn", now(), member,
                                static_cast<std::int64_t>(phase),
                                static_cast<std::int64_t>(index), "index");
  }
}

void RunObserver::on_knowledge_gained(MemberId member, std::size_t phase,
                                      std::uint32_t index, MemberId from,
                                      std::uint32_t votes,
                                      protocols::gossip::GainKind kind) {
  if (options_.next != nullptr) {
    options_.next->on_knowledge_gained(member, phase, index, from, votes,
                                       kind);
  }
  // The JSONL stream keeps its historical shape: one "learn" line per
  // remote gain, byte-identical to the pre-lineage traces. Local seeds,
  // adoptions and result pushes are visible through lineage/flight instead.
  if (options_.sink != nullptr &&
      kind == protocols::gossip::GainKind::kRemote) {
    options_.sink->member_event("learn", now(), member,
                                static_cast<std::int64_t>(phase),
                                static_cast<std::int64_t>(index), "index");
  }
  if (options_.lineage != nullptr) {
    options_.lineage->on_knowledge_gained(member, phase, index, from, votes,
                                          kind);
  }
  if (options_.curves != nullptr) options_.curves->record_gain(phase, kind);
  if (options_.flight != nullptr) {
    FlightRecorder::Event e;
    e.at = now();
    e.kind = FlightRecorder::EventKind::kGain;
    e.aux = static_cast<std::uint8_t>(kind);
    e.a = member.value();
    e.b = from.value();
    e.phase = static_cast<std::uint32_t>(phase);
    e.value = index;
    e.votes = votes;
    options_.flight->record(e);
  }
}

void RunObserver::on_phase_concluded(MemberId member, std::size_t phase,
                                     protocols::gossip::PhaseEnd how,
                                     std::uint32_t votes) {
  if (options_.next != nullptr) {
    options_.next->on_phase_concluded(member, phase, how, votes);
  }
  tally_.conclusions += 1;
  PhaseSpan& span = timeline_.at_phase(phase);
  span.concluded += 1;
  span.votes_concluded_sum += votes;
  if (now() > span.last_concluded) span.last_concluded = now();
  if (options_.sink != nullptr) {
    options_.sink->member_event("conclude", now(), member,
                                static_cast<std::int64_t>(phase),
                                static_cast<std::int64_t>(votes), "votes",
                                how_name(how));
  }
  if (options_.lineage != nullptr) {
    options_.lineage->on_phase_concluded(member, phase, how, votes);
  }
  if (options_.flight != nullptr) {
    FlightRecorder::Event e;
    e.at = now();
    e.kind = FlightRecorder::EventKind::kConcluded;
    e.aux = static_cast<std::uint8_t>(how);
    e.a = member.value();
    e.phase = static_cast<std::uint32_t>(phase);
    e.votes = votes;
    options_.flight->record(e);
  }
}

void RunObserver::on_finished(MemberId member, std::uint32_t votes) {
  if (options_.next != nullptr) options_.next->on_finished(member, votes);
  tally_.finishes += 1;
  if (options_.sink != nullptr) {
    options_.sink->member_event("finish", now(), member, TraceSink::kOmitted,
                                static_cast<std::int64_t>(votes), "votes");
  }
  if (options_.lineage != nullptr) {
    options_.lineage->on_finished(member, votes);
  }
  if (options_.flight != nullptr) {
    FlightRecorder::Event e;
    e.at = now();
    e.kind = FlightRecorder::EventKind::kFinished;
    e.a = member.value();
    e.votes = votes;
    options_.flight->record(e);
  }
}

void RunObserver::on_crash(MemberId member) {
  tally_.crashes += 1;
  if (options_.sink != nullptr) {
    options_.sink->member_event("crash", now(), member);
  }
  if (options_.lineage != nullptr) options_.lineage->on_crash(member);
  if (options_.flight != nullptr) {
    FlightRecorder::Event e;
    e.at = now();
    e.kind = FlightRecorder::EventKind::kCrash;
    e.a = member.value();
    options_.flight->record(e);
  }
}

}  // namespace gridbox::obs
