// Build provenance for manifests and BENCH files.
#pragma once

#include <string>

namespace gridbox::obs {

/// The git revision the library was built from (short hash, "-dirty"
/// suffixed when the work tree had local changes at configure time), or
/// "unknown" when the build system could not determine it.
[[nodiscard]] std::string git_revision();

}  // namespace gridbox::obs
