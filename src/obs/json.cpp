#include "src/obs/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "src/common/ensure.h"

namespace gridbox::obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::before_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  expects(!needs_comma_.empty(), "json: end_object without begin");
  needs_comma_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  expects(!needs_comma_.empty(), "json: end_array without begin");
  needs_comma_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  before_value();
  out_ += '"';
  out_ += json_escape(name);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& s) {
  before_value();
  out_ += '"';
  out_ += json_escape(s);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* s) { return value(std::string(s)); }

JsonWriter& JsonWriter::value(double v) {
  before_value();
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(int v) {
  return value(static_cast<std::int64_t>(v));
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::raw(const std::string& json) {
  before_value();
  out_ += json;
  return *this;
}

const JsonValue* JsonValue::find(const std::string& name) const {
  if (kind != Kind::kObject) return nullptr;
  const auto it = object.find(name);
  return it == object.end() ? nullptr : &it->second;
}

double JsonValue::number_or(const std::string& name, double fallback) const {
  const JsonValue* v = find(name);
  return (v != nullptr && v->is_number()) ? v->number : fallback;
}

std::string JsonValue::string_or(const std::string& name,
                                 const std::string& fallback) const {
  const JsonValue* v = find(name);
  return (v != nullptr && v->is_string()) ? v->string : fallback;
}

namespace {

struct Parser {
  const std::string& text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
      ++pos;
    }
  }

  [[nodiscard]] char peek() {
    skip_ws();
    expects(pos < text.size(), "json: unexpected end of input");
    return text[pos];
  }

  void expect(char c) {
    expects(peek() == c, std::string("json: expected '") + c + "'");
    ++pos;
  }

  [[nodiscard]] bool consume(char c) {
    if (peek() == c) {
      ++pos;
      return true;
    }
    return false;
  }

  [[nodiscard]] JsonValue parse_value() {
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      JsonValue v;
      v.kind = JsonValue::Kind::kString;
      v.string = parse_string();
      return v;
    }
    if (c == 't' || c == 'f') return parse_bool();
    if (c == 'n') {
      expects(text.compare(pos, 4, "null") == 0, "json: bad literal");
      pos += 4;
      return JsonValue{};
    }
    return parse_number();
  }

  [[nodiscard]] JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    if (consume('}')) return v;
    while (true) {
      const std::string key = parse_string();
      expect(':');
      v.object.emplace(key, parse_value());
      if (consume('}')) return v;
      expect(',');
    }
  }

  [[nodiscard]] JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    if (consume(']')) return v;
    while (true) {
      v.array.push_back(parse_value());
      if (consume(']')) return v;
      expect(',');
    }
  }

  [[nodiscard]] std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      expects(pos < text.size(), "json: unterminated string");
      const char c = text[pos++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      expects(pos < text.size(), "json: unterminated escape");
      const char e = text[pos++];
      switch (e) {
        case '"':
        case '\\':
        case '/':
          out += e;
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          expects(pos + 4 <= text.size(), "json: truncated \\u escape");
          const unsigned long code =
              std::strtoul(text.substr(pos, 4).c_str(), nullptr, 16);
          pos += 4;
          // Only BMP code points below 0x80 are produced by our writer;
          // anything else degrades to '?' rather than growing a UTF-8
          // encoder here.
          out += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default:
          expects(false, "json: unknown escape");
      }
    }
  }

  [[nodiscard]] JsonValue parse_bool() {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    if (text.compare(pos, 4, "true") == 0) {
      v.boolean = true;
      pos += 4;
      return v;
    }
    expects(text.compare(pos, 5, "false") == 0, "json: bad literal");
    pos += 5;
    return v;
  }

  [[nodiscard]] JsonValue parse_number() {
    skip_ws();
    const std::size_t start = pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) != 0 ||
            text[pos] == '-' || text[pos] == '+' || text[pos] == '.' ||
            text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
    }
    expects(pos > start, "json: expected a value");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    try {
      v.number = std::stod(text.substr(start, pos - start));
    } catch (const std::exception&) {
      expects(false, "json: malformed number");
    }
    return v;
  }
};

}  // namespace

JsonValue json_parse(const std::string& text) {
  Parser parser{text};
  JsonValue v = parser.parse_value();
  parser.skip_ws();
  expects(parser.pos == text.size(), "json: trailing garbage");
  return v;
}

}  // namespace gridbox::obs
