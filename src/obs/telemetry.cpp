#include "src/obs/telemetry.h"

#include "src/common/ensure.h"
#include "src/obs/json.h"

namespace gridbox::obs {
namespace {

void write_hist(JsonWriter& w, const char* name,
                const std::uint64_t (&buckets)[TelemetryHist::kBuckets]) {
  w.key(name).begin_array();
  for (const std::uint64_t b : buckets) w.value(b);
  w.end_array();
}

void write_lane(JsonWriter& w, const LaneSnapshot& lane) {
  w.begin_object();
  w.key("timers_fired").value(lane.timers_fired);
  w.key("actions_run").value(lane.actions_run);
  w.key("frames").value(lane.frames_delivered);
  w.key("polls").value(lane.polls);
  w.key("wakes_io").value(lane.wakes_io);
  w.key("wakes_timeout").value(lane.wakes_timeout);
  w.key("eintr").value(lane.eintr_retries);
  w.key("queue_depth_hw").value(lane.queue_depth_hw);
  write_hist(w, "lateness_us", lane.timer_lateness_us);
  write_hist(w, "drain_per_wake", lane.drain_per_wake);
  write_hist(w, "dispatch_per_tick", lane.dispatch_per_tick);
  w.end_object();
}

void copy_hist(std::uint64_t (&out)[TelemetryHist::kBuckets],
               const TelemetryHist& hist) {
  for (std::size_t b = 0; b < TelemetryHist::kBuckets; ++b) {
    out[b] = hist.buckets[b].load(std::memory_order_relaxed);
  }
}

void add_hist(std::uint64_t (&out)[TelemetryHist::kBuckets],
              const std::uint64_t (&in)[TelemetryHist::kBuckets]) {
  for (std::size_t b = 0; b < TelemetryHist::kBuckets; ++b) out[b] += in[b];
}

}  // namespace

void LaneSnapshot::add(const LaneSnapshot& other) {
  timers_fired += other.timers_fired;
  actions_run += other.actions_run;
  frames_delivered += other.frames_delivered;
  polls += other.polls;
  wakes_io += other.wakes_io;
  wakes_timeout += other.wakes_timeout;
  eintr_retries += other.eintr_retries;
  queue_depth_hw = std::max(queue_depth_hw, other.queue_depth_hw);
  add_hist(timer_lateness_us, other.timer_lateness_us);
  add_hist(drain_per_wake, other.drain_per_wake);
  add_hist(dispatch_per_tick, other.dispatch_per_tick);
}

TelemetryHub::TelemetryHub(std::size_t lanes)
    : lanes_(std::make_unique<TelemetryLane[]>(lanes)), lane_count_(lanes) {
  expects(lanes > 0, "TelemetryHub needs at least one lane");
}

LaneSnapshot TelemetryHub::snapshot_lane(std::size_t i) const {
  expects(i < lane_count_, "telemetry lane index out of range");
  const TelemetryLane& lane = lanes_[i];
  LaneSnapshot snap;
  snap.timers_fired = lane.timers_fired.load(std::memory_order_relaxed);
  snap.actions_run = lane.actions_run.load(std::memory_order_relaxed);
  snap.frames_delivered = lane.frames_delivered.load(std::memory_order_relaxed);
  snap.polls = lane.polls.load(std::memory_order_relaxed);
  snap.wakes_io = lane.wakes_io.load(std::memory_order_relaxed);
  snap.wakes_timeout = lane.wakes_timeout.load(std::memory_order_relaxed);
  snap.eintr_retries = lane.eintr_retries.load(std::memory_order_relaxed);
  snap.queue_depth_hw = lane.queue_depth_hw.load(std::memory_order_relaxed);
  copy_hist(snap.timer_lateness_us, lane.timer_lateness_us);
  copy_hist(snap.drain_per_wake, lane.drain_per_wake);
  copy_hist(snap.dispatch_per_tick, lane.dispatch_per_tick);
  return snap;
}

LaneSnapshot TelemetryHub::snapshot_total() const {
  LaneSnapshot total;
  for (std::size_t i = 0; i < lane_count_; ++i) {
    total.add(snapshot_lane(i));
  }
  return total;
}

std::string TelemetryHub::sample_json(std::uint64_t seq, SimTime now) const {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value(kSchema);
  w.key("seq").value(seq);
  w.key("t_us").value(static_cast<std::int64_t>(now.ticks()));
  w.key("lanes").value(static_cast<std::uint64_t>(lane_count_));
  w.key("shards").begin_array();
  LaneSnapshot total;
  for (std::size_t i = 0; i < lane_count_; ++i) {
    const LaneSnapshot snap = snapshot_lane(i);
    write_lane(w, snap);
    total.add(snap);
  }
  w.end_array();
  w.key("total");
  write_lane(w, total);
  if (service_enabled_) {
    const ServiceTelemetry& s = service_;
    w.key("service").begin_object();
    w.key("launched").value(s.launched);
    w.key("completed").value(s.completed);
    w.key("failed").value(s.failed);
    w.key("deferred").value(s.deferred);
    w.key("in_flight").value(s.in_flight);
    w.key("in_flight_hw").value(s.in_flight_hw);
    w.key("deferred_queue").value(s.deferred_queue);
    w.key("deferred_queue_hw").value(s.deferred_queue_hw);
    std::uint64_t epoch[TelemetryHist::kBuckets];
    copy_hist(epoch, s.epoch_latency_us);
    write_hist(w, "epoch_latency_us", epoch);
    w.end_object();
  }
  w.end_object();
  return w.take();
}

TelemetrySampler::TelemetrySampler(TelemetryHub& hub, TelemetryConfig config)
    : hub_(hub), config_(std::move(config)) {
  expects(config_.interval > SimTime::zero(),
          "telemetry interval must be positive");
  if (!config_.out_path.empty()) {
    file_ = std::fopen(config_.out_path.c_str(), "w");
    expects(file_ != nullptr,
            "cannot open telemetry output file: " + config_.out_path);
  }
}

TelemetrySampler::~TelemetrySampler() {
  if (file_ != nullptr) (void)std::fclose(file_);
}

void TelemetrySampler::sample(SimTime now) {
  latest_ = hub_.sample_json(seq_++, now);
  if (file_ != nullptr) {
    (void)std::fwrite(latest_.data(), 1, latest_.size(), file_);
    (void)std::fputc('\n', file_);
    // Flush per record: the series is a live health feed, and a tailing
    // gridbox_top must only ever see whole lines.
    (void)std::fflush(file_);
  }
  if (config_.sink != nullptr) {
    config_.sink->append(latest_);
    config_.sink->push_back('\n');
  }
}

}  // namespace gridbox::obs
