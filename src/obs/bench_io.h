// BENCH_*.json: the perf-regression interchange format.
//
// gridbox_bench writes one BenchReport per suite; bench_diff loads two
// reports and compares entries by name. The schema is versioned so a CI
// baseline from an older layout fails loudly instead of comparing garbage.
//
// Wall times are medians over repeats (robust against one noisy run);
// events/s and msgs/s are derived from the same median repeat. Peak RSS is
// process-wide and monotone, so it describes the suite up to that point —
// still useful as a coarse memory-regression tripwire.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gridbox::obs {

struct BenchEntry {
  std::string name;                    ///< stable case id within the suite
  double wall_s = 0.0;                 ///< median wall seconds per repeat
  double events_per_s = 0.0;           ///< sim events / wall_s
  double msgs_per_s = 0.0;             ///< network messages / wall_s
  std::uint64_t sim_events = 0;        ///< per repeat (deterministic)
  std::uint64_t network_messages = 0;  ///< per repeat (deterministic)
  double peak_rss_mb = 0.0;            ///< process peak RSS after the case
  /// Peak RSS divided by the case's member count — the memory-scalability
  /// figure of merit for the big-N scale cases. 0 when the case does not
  /// report it (older reports parse fine: the field is optional).
  double rss_per_member_b = 0.0;
  /// Service-suite throughput/latency: completed instances per second and
  /// p99 launch-to-completion time. 0 when the case does not report them
  /// (non-service suites and older reports parse fine: both are optional).
  double instances_per_s = 0.0;
  double p99_completion_ms = 0.0;
  /// Reactor shard threads of the udp-suite cases. 0 when the case does not
  /// report it (other suites and older reports parse fine: optional).
  std::uint64_t shards = 0;
  /// Hardware perf-counter attribution: retired instructions and cache
  /// misses divided by sim events of the measured repeat. 0 when the
  /// kernel denies perf_event_open or the platform lacks it — absent, not
  /// "zero work" (older reports parse fine: both are optional).
  double instructions_per_event = 0.0;
  double cache_misses_per_event = 0.0;
};

struct BenchReport {
  /// Bumped when the JSON layout changes shape.
  static constexpr const char* kSchema = "gridbox-bench/1";

  std::string suite;    ///< "micro_core" | "fig06_scale" | "chaos_stress"
  std::string git_rev;
  std::uint64_t repeats = 1;
  std::size_t jobs = 1;
  std::vector<BenchEntry> entries;

  [[nodiscard]] std::string to_json() const;
  /// Writes to_json() to `path` (overwrites). Returns false on IO error.
  bool write(const std::string& path) const;

  /// Parses a report; throws PreconditionError on malformed input or a
  /// schema mismatch.
  [[nodiscard]] static BenchReport parse(const std::string& json_text);
  /// Reads and parses `path`; throws PreconditionError when unreadable.
  [[nodiscard]] static BenchReport load(const std::string& path);
};

/// One compared case: ratio = new/old, so > 1 is a regression for wall_s.
/// Throughput ratios run the other way (> 1 is an improvement); they are
/// reported for context but only the wall ratio gates.
struct BenchDiffRow {
  std::string name;
  double old_wall_s = 0.0;
  double new_wall_s = 0.0;
  double wall_ratio = 1.0;
  double old_events_per_s = 0.0;
  double new_events_per_s = 0.0;
  double events_ratio = 1.0;  ///< new/old events/s (0 when old was 0)
  double old_msgs_per_s = 0.0;
  double new_msgs_per_s = 0.0;
  double msgs_ratio = 1.0;  ///< new/old msgs/s (0 when old was 0)
  double old_rss_per_member_b = 0.0;  ///< informational, never gates
  double new_rss_per_member_b = 0.0;
  double old_instances_per_s = 0.0;  ///< informational, never gates
  double new_instances_per_s = 0.0;
  double old_p99_completion_ms = 0.0;  ///< informational, never gates
  double new_p99_completion_ms = 0.0;
  std::uint64_t old_shards = 0;  ///< informational, never gates
  std::uint64_t new_shards = 0;
  /// Perf-counter attribution: informational, never gates. 0 means the
  /// side did not report the counter (rendered as n/a, not as 0).
  double old_instructions_per_event = 0.0;
  double new_instructions_per_event = 0.0;
  double old_cache_misses_per_event = 0.0;
  double new_cache_misses_per_event = 0.0;
  bool regressed = false;   ///< wall_ratio > 1 + threshold
};

struct BenchDiffReport {
  std::vector<BenchDiffRow> rows;
  std::vector<std::string> only_in_old;  ///< cases that disappeared
  std::vector<std::string> only_in_new;
  double worst_ratio = 0.0;   ///< max wall_ratio over compared rows
  std::size_t regressions = 0;

  [[nodiscard]] bool ok() const { return regressions == 0; }
  /// Human-readable comparison table.
  [[nodiscard]] std::string render() const;
};

/// Compares matching entries. `threshold` is the tolerated fractional wall
/// slowdown (0.2 = fail past +20%). Suites must match; schema is checked at
/// parse time.
[[nodiscard]] BenchDiffReport bench_diff(const BenchReport& old_report,
                                         const BenchReport& new_report,
                                         double threshold);

/// Current process peak RSS in bytes (getrusage; 0 where unsupported).
[[nodiscard]] std::uint64_t peak_rss_bytes();

}  // namespace gridbox::obs
