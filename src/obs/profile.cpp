#include "src/obs/profile.h"

#include <cstdlib>
#include <cstring>

#include "src/obs/json.h"

namespace gridbox::obs {

namespace {
thread_local ProfileCollector* t_current_collector = nullptr;
}  // namespace

ProfileCollector* ProfileCollector::current() { return t_current_collector; }

void ProfileCollector::record(const char* section, std::uint64_t ns) {
  ProfileEntry& entry = entries_[section];
  ++entry.count;
  entry.total_ns += ns;
}

ProfileSnapshot ProfileCollector::snapshot() const {
  ProfileSnapshot snap;
  for (const auto& [name, entry] : entries_) {
    // Merge, don't assign: distinct pointers can carry the same section
    // name (one literal per translation unit), and assignment would keep
    // only whichever pointer sorted last.
    ProfileEntry& out = snap.sections[std::string(name)];
    out.count += entry.count;
    out.total_ns += entry.total_ns;
  }
  return snap;
}

ProfileInstallGuard::ProfileInstallGuard(ProfileCollector* collector)
    : previous_(t_current_collector) {
  t_current_collector = collector;
}

ProfileInstallGuard::~ProfileInstallGuard() {
  t_current_collector = previous_;
}

void ProfileSnapshot::merge(const ProfileSnapshot& other) {
  for (const auto& [name, entry] : other.sections) {
    ProfileEntry& mine = sections[name];
    mine.count += entry.count;
    mine.total_ns += entry.total_ns;
  }
}

std::string ProfileSnapshot::to_json() const {
  JsonWriter w;
  w.begin_object();
  for (const auto& [name, entry] : sections) {
    w.key(name).begin_object();
    w.key("count").value(entry.count);
    w.key("total_ns").value(entry.total_ns);
    w.end_object();
  }
  w.end_object();
  return w.take();
}

bool profile_requested_by_env() {
  static const bool requested = [] {
    const char* env = std::getenv("GRIDBOX_PROFILE");
    return env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0;
  }();
  return requested;
}

}  // namespace gridbox::obs
