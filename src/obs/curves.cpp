#include "src/obs/curves.h"

#include <algorithm>
#include <utility>

#include "src/analysis/epidemic.h"
#include "src/common/ensure.h"
#include "src/obs/json.h"

namespace gridbox::obs {

namespace {

/// Quantizes a fraction in [0, 1] to basis points. The empirical rows never
/// go through here (they are integer-exact); only model values do.
std::uint64_t to_bp(double frac) {
  if (frac <= 0.0) return 0;
  if (frac >= 1.0) return 10'000;
  return static_cast<std::uint64_t>(frac * 10'000.0 + 0.5);
}

}  // namespace

CurveRecorder::CurveRecorder(Options options) : options_(options) {
  expects(options_.round_us > 0, "curve recorder needs a round duration");
}

void CurveRecorder::record_gain(std::size_t phase,
                                protocols::gossip::GainKind kind) {
  const std::uint64_t t =
      options_.simulator != nullptr
          ? static_cast<std::uint64_t>(options_.simulator->now().ticks())
          : 0;
  std::uint64_t bucket;
  if (t >= cached_start_ && t < cached_end_) {
    bucket = cached_bucket_;
  } else {
    bucket = t / options_.round_us;
    cached_bucket_ = bucket;
    cached_start_ = bucket * options_.round_us;
    cached_end_ = cached_start_ + options_.round_us;
  }
  ++total_gains_;
  if (kind == protocols::gossip::GainKind::kResult) {
    if (bucket >= result_series_.size()) result_series_.resize(bucket + 1);
    ++result_series_[bucket];
    return;
  }
  if (phase == 0) return;  // defensive: phases are 1-based
  if (phase > phase_series_.size()) phase_series_.resize(phase);
  Series& series = phase_series_[phase - 1];
  if (bucket >= series.size()) series.resize(bucket + 1);
  ++series[bucket];
}

void CurveRecorder::set_denominators(std::vector<std::uint64_t> per_phase,
                                     std::uint64_t result_denominator) {
  denominators_ = std::move(per_phase);
  result_denominator_ = result_denominator;
}

void CurveRecorder::set_analytic(Analytic analytic) {
  analytic_ = std::move(analytic);
}

void CurveRecorder::set_meta(std::size_t group_size, std::uint32_t k) {
  group_size_ = group_size;
  k_ = k;
}

void CurveRecorder::write_series(JsonWriter& w, const Series& series,
                                 std::uint64_t denominator) const {
  // Cumulative counts, integer basis points: (cum * 10000 + d/2) / d.
  w.begin_array();
  std::uint64_t cum = 0;
  for (std::uint64_t bucket = 0; bucket < series.size(); ++bucket) {
    const std::uint64_t count = series[bucket];
    if (count == 0) continue;
    cum += count;
    w.begin_object();
    w.key("r");
    w.value(bucket);
    w.key("count");
    w.value(cum);
    if (denominator > 0) {
      // Saturate at 100%: adoption shortcuts can push raw gain counts past
      // the per-phase ceiling (an adopted aggregate is extra knowledge on
      // top of a full set of child slots).
      w.key("frac_bp");
      w.value(std::min<std::uint64_t>(
          (cum * 10'000 + denominator / 2) / denominator, 10'000));
    }
    w.end_object();
  }
  w.end_array();
}

std::string CurveRecorder::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("schema");
  w.value("gridbox-curves/1");
  w.key("group_size");
  w.value(static_cast<std::uint64_t>(group_size_));
  w.key("k");
  w.value(static_cast<std::uint64_t>(k_));
  w.key("round_us");
  w.value(options_.round_us);
  w.key("total_gains");
  w.value(total_gains_);

  w.key("phases");
  w.begin_array();
  for (std::size_t i = 0; i < phase_series_.size(); ++i) {
    const std::uint64_t denom =
        i < denominators_.size() ? denominators_[i] : 0;
    w.begin_object();
    w.key("phase");
    w.value(static_cast<std::uint64_t>(i + 1));
    w.key("denominator");
    w.value(denom);
    w.key("samples");
    write_series(w, phase_series_[i], denom);
    if (analytic_.enabled && i < analytic_.phases.size() &&
        analytic_.rounds_per_phase > 0) {
      // Bailey logistic for this phase's (m, b), one point per round. The
      // rounds are global (phase i nominally spans rounds (i-1)R .. iR) so
      // model and empirical samples share an x-axis.
      const PhaseModel& pm = analytic_.phases[i];
      const std::uint64_t phase_start =
          static_cast<std::uint64_t>(i) * analytic_.rounds_per_phase;
      w.key("model");
      w.begin_array();
      for (std::uint64_t r = 0; r <= analytic_.rounds_per_phase; ++r) {
        w.begin_object();
        w.key("r");
        w.value(phase_start + r);
        w.key("frac_bp");
        w.value(to_bp(analysis::infection_probability(
            pm.m, pm.b, static_cast<double>(r))));
        w.end_object();
      }
      w.end_array();
      w.key("asymptote_bp");
      w.value(to_bp(i == 0 ? analytic_.c1 : analytic_.phase_bound));
    }
    w.end_object();
  }
  w.end_array();

  w.key("result");
  w.begin_object();
  w.key("denominator");
  w.value(result_denominator_);
  w.key("samples");
  write_series(w, result_series_, result_denominator_);
  w.end_object();

  if (analytic_.enabled) {
    w.key("analytic");
    w.begin_object();
    w.key("b_milli");  // b exceeds 1; milli-units, not basis points
    w.value(static_cast<std::uint64_t>(analytic_.b * 1000.0 + 0.5));
    w.key("rounds_per_phase");
    w.value(analytic_.rounds_per_phase);
    w.key("c1_bp");
    w.value(to_bp(analytic_.c1));
    w.key("phase_bound_bp");
    w.value(to_bp(analytic_.phase_bound));
    w.key("protocol_bound_bp");
    w.value(to_bp(analytic_.protocol_bound));
    w.key("theorem1_bp");
    w.value(to_bp(analytic_.theorem1));
    w.end_object();
  }

  w.end_object();
  return w.take();
}

}  // namespace gridbox::obs
