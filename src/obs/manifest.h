// Per-invocation run manifest (run.json).
//
// A manifest makes a result file self-describing: it records everything
// needed to reproduce the runs it covers (canonical config text + hash,
// chaos spec, git revision, seeds, jobs) plus what each run did (phase
// timeline, message totals, metric snapshot). The obs layer cannot see
// runner::ExperimentConfig, so the runner hands in the already-canonical
// config text; the hash is computed here so every producer hashes the same
// way.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/profile.h"
#include "src/obs/timeline.h"

namespace gridbox::obs {

/// FNV-1a 64-bit over bytes; the config fingerprint hash.
[[nodiscard]] std::uint64_t fnv1a64(const std::string& bytes);

struct RunManifest {
  /// Bumped when the JSON layout changes shape.
  static constexpr const char* kSchema = "gridbox-run-manifest/1";

  std::string tool;            ///< producing binary, e.g. "gridbox_sim"
  std::string git_rev;         ///< obs::git_revision()
  std::string config_text;     ///< canonical key=value config serialization
  std::string chaos_spec;      ///< raw spec text; empty = none
  std::uint64_t base_seed = 0;
  std::size_t jobs = 1;
  double wall_s = 0.0;         ///< host wall-clock for the whole invocation

  struct RunEntry {
    std::uint64_t seed = 0;
    double mean_completeness = 0.0;
    std::uint64_t network_messages = 0;
    std::uint64_t sim_events = 0;
    std::int64_t sim_end_us = 0;       ///< last simulated timestamp
    PhaseTimeline timeline;            ///< may be empty (metrics off)
    MetricsSnapshot metrics;           ///< may be empty (metrics off)
  };
  std::vector<RunEntry> runs;

  ProfileSnapshot profile;  ///< merged hot-path profile; usually empty

  [[nodiscard]] std::uint64_t config_hash() const {
    return fnv1a64(config_text);
  }

  [[nodiscard]] std::string to_json() const;

  /// Writes to_json() to `path` (overwrites). Returns false on IO error.
  bool write(const std::string& path) const;
};

}  // namespace gridbox::obs
