#include "src/obs/manifest.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>

#include "src/obs/json.h"

namespace gridbox::obs {

std::uint64_t fnv1a64(const std::string& bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string RunManifest::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value(kSchema);
  w.key("tool").value(tool);
  w.key("git_rev").value(git_rev);
  char hash_hex[24];
  std::snprintf(hash_hex, sizeof(hash_hex), "%016" PRIx64, config_hash());
  w.key("config_hash").value(hash_hex);
  w.key("config").value(config_text);
  w.key("chaos_spec").value(chaos_spec);
  w.key("base_seed").value(base_seed);
  w.key("jobs").value(static_cast<std::uint64_t>(jobs));
  w.key("wall_s").value(wall_s);
  w.key("runs").begin_array();
  for (const RunEntry& run : runs) {
    w.begin_object();
    w.key("seed").value(run.seed);
    w.key("mean_completeness").value(run.mean_completeness);
    w.key("network_messages").value(run.network_messages);
    w.key("sim_events").value(run.sim_events);
    w.key("sim_end_us").value(run.sim_end_us);
    if (!run.timeline.empty()) {
      w.key("phases").raw(run.timeline.to_json());
    }
    if (!run.metrics.empty()) {
      w.key("metrics").raw(run.metrics.to_json());
    }
    w.end_object();
  }
  w.end_array();
  if (!profile.empty()) {
    w.key("profile").raw(profile.to_json());
  }
  w.end_object();
  return w.take();
}

bool RunManifest::write(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out.good()) return false;
  out << to_json() << '\n';
  return out.good();
}

}  // namespace gridbox::obs
