// Metrics registry: counters, gauges, and fixed-bucket histograms.
//
// Design constraints, in order:
//   1. Zero overhead when disabled — instrumentation sites hold a nullable
//      handle and do nothing but one pointer test when metrics are off.
//   2. Deterministic — a snapshot is a pure function of the run (no wall
//      clock, no addresses, no hash-map iteration order), and snapshot merge
//      is associative and order-independent for counters/histograms, so the
//      sweep reducer can fold per-run snapshots in slot order and get the
//      same bytes at any --jobs value.
//   3. Cheap when enabled — handles are registered once (string lookup) and
//      updated as plain integer arithmetic on stable addresses.
//
// A registry instance belongs to one run (one thread); cross-run aggregation
// happens by merging snapshots, never by sharing a registry.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

namespace gridbox::obs {

/// Monotone event count.
class Counter {
 public:
  void inc(std::uint64_t by = 1) { value_ += by; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-set / high-watermark value. Merge semantics: maximum (snapshots of
/// parallel runs keep the worst case, which is what capacity questions ask).
class Gauge {
 public:
  void set(std::uint64_t v) { value_ = v; }
  void set_max(std::uint64_t v) {
    if (v > value_) value_ = v;
  }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Fixed-bucket histogram: counts per bucket, where bucket i holds samples
/// v <= bounds[i] (first matching bound) and one overflow bucket holds
/// samples above the last bound. Fixed bounds keep merges exact: two
/// histograms with the same bounds merge by bucket-wise addition.
class Histogram {
 public:
  explicit Histogram(std::vector<std::uint64_t> bounds);

  void observe(std::uint64_t v);

  /// Bucket-wise addition (bucket `bounds().size()` = overflow), mirroring
  /// snapshot merge. For writers that tally buckets locally and flush once.
  void add_to_bucket(std::size_t bucket, std::uint64_t n);

  [[nodiscard]] const std::vector<std::uint64_t>& bounds() const {
    return bounds_;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const {
    return counts_;
  }
  [[nodiscard]] std::uint64_t total() const;

 private:
  std::vector<std::uint64_t> bounds_;  ///< ascending upper bounds
  std::vector<std::uint64_t> counts_;  ///< bounds_.size() + 1 buckets
};

/// Point-in-time copy of a registry, detached from the run that produced it.
/// Maps are ordered by metric name, so serialization is deterministic.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::uint64_t> gauges;
  struct HistogramData {
    std::vector<std::uint64_t> bounds;
    std::vector<std::uint64_t> counts;
  };
  std::map<std::string, HistogramData> histograms;

  [[nodiscard]] bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  /// Folds `other` in: counters and histogram buckets add, gauges take the
  /// max. Histograms under the same name must share bounds. Associative and
  /// commutative, so any fold order over a set of run snapshots produces the
  /// same result.
  void merge(const MetricsSnapshot& other);

  /// Counter value by name (0 when absent) — convenience for tests and
  /// reconciliation checks.
  [[nodiscard]] std::uint64_t counter_or_zero(const std::string& name) const;

  /// Compact JSON object: {"counters":{...},"gauges":{...},
  /// "histograms":{name:{"bounds":[...],"counts":[...]}}}. Deterministic
  /// (name-ordered, integer-only).
  [[nodiscard]] std::string to_json() const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the counter registered under `name`, creating it on first use.
  /// The reference stays valid for the registry's lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Creating call fixes the bounds; later calls with the same name must
  /// pass identical bounds (or empty to mean "whatever was registered").
  Histogram& histogram(const std::string& name,
                       std::vector<std::uint64_t> bounds);

  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  std::map<std::string, Counter*> counter_index_;
  std::map<std::string, Gauge*> gauge_index_;
  std::map<std::string, Histogram*> histogram_index_;
  std::deque<Counter> counters_;      ///< deque: stable addresses
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
};

}  // namespace gridbox::obs
