// The simulation engine: a virtual clock driving an event queue.
//
// All gridbox protocols are state machines driven by this engine; nothing in
// the library uses wall-clock time or threads, so every run is a pure,
// reproducible function of (configuration, seed).
//
// Two scheduling families exist side by side. The typed entry points
// (schedule_frame_after, the TimerTarget overload of schedule_periodic)
// carry their work inline in the event — zero heap allocations per event in
// steady state — and are what the transport and the protocol round loops
// use. The std::function entry points remain for setup, chaos scripting,
// and tests, where flexibility beats allocation counts.
#pragma once

#include <cstdint>
#include <functional>

#include "src/common/types.h"
#include "src/obs/telemetry.h"
#include "src/sim/event_queue.h"
#include "src/sim/scheduler.h"

namespace gridbox::sim {

/// Final so calls through a concrete Simulator& devirtualize: the Scheduler
/// interface costs nothing on the simulation hot path (the zero-allocation
/// proof binary pins the allocation half of that claim).
class Simulator final : public Scheduler {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  [[nodiscard]] SimTime now() const override { return now_; }

  /// Schedules an action at an absolute time (>= now; earlier times are
  /// clamped to now, which models "as soon as possible").
  void schedule_at(SimTime time, Action action) override;

  /// Schedules an action after a relative delay (>= 0).
  void schedule_after(SimTime delay, Action action) override;

  /// Schedules delivery of `message` to `sink` after `delay` (>= 0). The
  /// message travels inside the event — no closure, no allocation.
  void schedule_frame_after(SimTime delay, const net::Message& message,
                            FrameSink& sink);

  /// Schedules `tick` at `start` and then every `interval` until it returns
  /// false. Each tick reschedules itself, so cancellation is by return value.
  void schedule_periodic(SimTime start, SimTime interval,
                         std::function<bool()> tick);

  /// Typed periodic timer: fires target.on_timer(timer_id) at `start` and
  /// then every `interval` while it returns true. Equivalent ordering to the
  /// std::function overload (the tick runs, then the next tick is enqueued)
  /// but allocation-free per firing. The target must outlive the chain.
  void schedule_periodic(SimTime start, SimTime interval, TimerTarget& target,
                         std::uint32_t timer_id = 0) override;

  /// One-shot typed timer at an absolute time (clamped to now); the return
  /// value of on_timer is ignored.
  void schedule_timer_at(SimTime time, TimerTarget& target,
                         std::uint32_t timer_id = 0) override;

  /// Runs until the queue is empty. Returns events executed.
  std::uint64_t run();

  /// Runs until the queue is empty or simulated time would exceed `deadline`.
  /// Events at exactly `deadline` do fire.
  std::uint64_t run_until(SimTime deadline);

  /// Executes at most one event. Returns false if the queue was empty.
  bool step();

  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }
  [[nodiscard]] bool idle() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

  /// Deepest the event queue ever got (event_queue_depth telemetry).
  [[nodiscard]] std::size_t peak_pending_events() const {
    return queue_.peak_size();
  }

  /// Pending typed-timer events whose target satisfies `pred` (see
  /// EventQueue::count_timers_where): the service runtime's quiescence
  /// probe before retiring an instance's nodes.
  [[nodiscard]] std::size_t count_timers_where(
      const std::function<bool(const TimerTarget*)>& pred) const {
    return queue_.count_timers_where(pred);
  }

  /// Hard cap on lifetime events executed (across run(), run_until(), and
  /// step() calls); exceeding it throws InvariantError. Guards against
  /// protocol bugs that reschedule forever.
  void set_event_limit(std::uint64_t limit) { event_limit_ = limit; }

  /// Pre-sizes the event queue for `capacity` simultaneously pending events
  /// (large-N runs: avoids reallocation churn during the start-skew burst).
  void reserve_events(std::size_t capacity) { queue_.reserve(capacity); }

  /// Arms live telemetry into `lane` (nullptr disarms). The simulator is
  /// one shard, so a run on this substrate fills exactly lane 0; timer
  /// lateness is always zero here — the virtual clock fires on time — which
  /// is precisely what makes the series golden-testable.
  void set_telemetry(obs::TelemetryLane* lane) { telemetry_ = lane; }

 private:
  void execute(Event& event);

  SimTime now_ = SimTime::zero();
  EventQueue queue_;
  std::uint64_t executed_ = 0;
  std::uint64_t event_limit_ = 500'000'000;
  obs::TelemetryLane* telemetry_ = nullptr;
};

}  // namespace gridbox::sim
