// The simulation engine: a virtual clock driving an event queue.
//
// All gridbox protocols are state machines driven by this engine; nothing in
// the library uses wall-clock time or threads, so every run is a pure,
// reproducible function of (configuration, seed).
#pragma once

#include <cstdint>
#include <functional>

#include "src/common/types.h"
#include "src/sim/event_queue.h"

namespace gridbox::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules an action at an absolute time (>= now; earlier times are
  /// clamped to now, which models "as soon as possible").
  void schedule_at(SimTime time, Action action);

  /// Schedules an action after a relative delay (>= 0).
  void schedule_after(SimTime delay, Action action);

  /// Schedules `tick` at `start` and then every `interval` until it returns
  /// false. Each tick reschedules itself, so cancellation is by return value.
  void schedule_periodic(SimTime start, SimTime interval,
                         std::function<bool()> tick);

  /// Runs until the queue is empty. Returns events executed.
  std::uint64_t run();

  /// Runs until the queue is empty or simulated time would exceed `deadline`.
  /// Events at exactly `deadline` do fire.
  std::uint64_t run_until(SimTime deadline);

  /// Executes at most one event. Returns false if the queue was empty.
  bool step();

  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }
  [[nodiscard]] bool idle() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

  /// Deepest the event queue ever got (event_queue_depth telemetry).
  [[nodiscard]] std::size_t peak_pending_events() const {
    return queue_.peak_size();
  }

  /// Hard cap on lifetime events executed (across run(), run_until(), and
  /// step() calls); exceeding it throws InvariantError. Guards against
  /// protocol bugs that reschedule forever.
  void set_event_limit(std::uint64_t limit) { event_limit_ = limit; }

 private:
  SimTime now_ = SimTime::zero();
  EventQueue queue_;
  std::uint64_t executed_ = 0;
  std::uint64_t event_limit_ = 500'000'000;
};

}  // namespace gridbox::sim
