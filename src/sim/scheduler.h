// The clock-and-timer interface protocols are written against.
//
// A protocol node is a state machine driven by two things: message
// deliveries (net::Transport) and timers. This interface is the timer half:
// it is everything the protocol layer may ask of "time". Two implementations
// exist:
//
//   - sim::Simulator: the discrete-event engine. now() is virtual time and
//     a run is a pure function of (configuration, seed).
//   - net::Reactor: real wall-clock time over a poll loop with a hashed
//     timer wheel, driving the same protocol code over real UDP sockets.
//
// The interface deliberately excludes the simulator's frame-delivery and
// run-loop entry points (schedule_frame_after, run, step): those belong to
// the transport and the host, not to protocol code. Keeping the surface this
// narrow is what lets one protocol implementation run unmodified in both
// worlds — the differential harness (docs/udp_runtime.md) depends on it.
#pragma once

#include <cstdint>

#include "src/common/types.h"
#include "src/sim/event_queue.h"

namespace gridbox::sim {

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Current time. Virtual microseconds under the simulator; microseconds
  /// since reactor start under the real-socket runtime.
  [[nodiscard]] virtual SimTime now() const = 0;

  /// Schedules an action at an absolute time (>= now; earlier times are
  /// clamped to now, which models "as soon as possible").
  virtual void schedule_at(SimTime time, Action action) = 0;

  /// Schedules an action after a relative delay (>= 0).
  virtual void schedule_after(SimTime delay, Action action) = 0;

  /// Typed periodic timer: fires target.on_timer(timer_id) at `start` and
  /// then every `interval` while it returns true. The target must outlive
  /// the chain. Allocation-free per firing under the simulator.
  virtual void schedule_periodic(SimTime start, SimTime interval,
                                 TimerTarget& target,
                                 std::uint32_t timer_id = 0) = 0;

  /// One-shot typed timer at an absolute time (clamped to now); the return
  /// value of on_timer is ignored.
  virtual void schedule_timer_at(SimTime time, TimerTarget& target,
                                 std::uint32_t timer_id = 0) = 0;
};

}  // namespace gridbox::sim
