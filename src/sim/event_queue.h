// Deterministically ordered discrete-event queue with typed events.
#pragma once

#include <cstdint>
#include <functional>
#include <variant>
#include <vector>

#include "src/common/types.h"
#include "src/net/message.h"

namespace gridbox::sim {

/// Generic action executed when an event fires. The escape hatch for setup
/// and test code; the two hot event kinds below avoid std::function (and its
/// per-capture heap allocation) entirely.
using Action = std::function<void()>;

/// Receiver of an in-queue frame delivery. Implemented by net::SimNetwork;
/// the event stores the sink pointer instead of a closure so delivering a
/// message never allocates.
class FrameSink {
 public:
  virtual ~FrameSink() = default;
  virtual void deliver_frame(const net::Message& message) = 0;
};

/// Receiver of a protocol timer tick. Returning true from on_timer asks the
/// simulator to re-arm the timer one interval later (periodic rounds);
/// returning false ends the chain.
class TimerTarget {
 public:
  virtual ~TimerTarget() = default;
  [[nodiscard]] virtual bool on_timer(std::uint32_t timer_id) = 0;
};

/// Message delivery: the frame rides inside the event, so the whole hop
/// (send -> queue -> deliver) is a couple of fixed-size copies.
struct DeliverFrame {
  net::Message message;
  FrameSink* sink = nullptr;
};

/// Protocol timer tick. interval > 0 makes it periodic: the simulator
/// re-arms it while the target's on_timer returns true.
struct TimerFire {
  TimerTarget* target = nullptr;
  SimTime interval = SimTime::zero();
  std::uint32_t timer_id = 0;
};

/// What fires when an event comes due.
using EventWork = std::variant<Action, DeliverFrame, TimerFire>;

/// A scheduled event. Events at equal times fire in scheduling order: the
/// monotone sequence number makes the whole simulation a deterministic
/// function of the seed, independent of container or heap internals.
struct Event {
  SimTime time;
  std::uint64_t sequence = 0;
  EventWork work;

  /// Executes the event's work once. Timer re-arming is the simulator's
  /// job (Simulator::step); firing a periodic TimerFire here invokes the
  /// target a single time and discards the reschedule request.
  void fire();
};

/// Min-queue of events ordered by (time, sequence).
///
/// Storage is a slab of Event bodies plus a binary heap of 24-byte
/// (time, sequence, slot) keys: heap sift operations move small keys, not
/// ~300-byte events, and freed slab slots are recycled through a LIFO free
/// list. In steady state (all vectors at capacity) push and pop perform
/// zero heap allocations — the property the zero-allocation message path
/// is built on, and the counting-allocator tests assert.
class EventQueue {
 public:
  /// Enqueues work at an absolute simulated time.
  void push(SimTime time, EventWork work);

  /// Pre-sizes heap and slab for `capacity` simultaneously pending events,
  /// so large-N runs reach steady state without reallocation during the
  /// initial burst.
  void reserve(std::size_t capacity) {
    heap_.reserve(capacity);
    slab_.reserve(capacity);
    free_slots_.reserve(capacity);
  }

  /// Removes and returns the earliest event. Requires !empty().
  [[nodiscard]] Event pop();

  /// Time of the earliest event. Requires !empty().
  [[nodiscard]] SimTime next_time() const;

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Total events ever pushed (also the next sequence number).
  [[nodiscard]] std::uint64_t total_pushed() const { return next_sequence_; }

  /// High-watermark of size() over the queue's lifetime (backlog telemetry:
  /// the event_queue_depth gauge). Deterministic — a pure function of the
  /// push/pop sequence.
  [[nodiscard]] std::size_t peak_size() const { return peak_size_; }

  /// Counts pending TimerFire events whose target satisfies `pred`. O(size):
  /// a cold-path probe the service runtime uses as a quiescence proof before
  /// destroying timer targets (a pending TimerFire holds a raw pointer into
  /// the node it would fire on).
  [[nodiscard]] std::size_t count_timers_where(
      const std::function<bool(const TimerTarget*)>& pred) const {
    std::size_t count = 0;
    for (const Key& key : heap_) {
      const auto* fire = std::get_if<TimerFire>(&slab_[key.slot].work);
      if (fire != nullptr && pred(fire->target)) ++count;
    }
    return count;
  }

  /// Discards all pending events AND resets the queue's statistics:
  /// total_pushed()/peak_size() return 0 and sequence numbering restarts,
  /// exactly as if the queue were freshly constructed (capacity is kept).
  /// A cleared queue is therefore indistinguishable from a new one — the
  /// semantics replay tooling relies on when it reuses a queue across runs.
  void clear();

 private:
  /// Heap element: orders events without touching their (large) bodies.
  struct Key {
    SimTime time;
    std::uint64_t sequence = 0;
    std::uint32_t slot = 0;
  };

  struct Later {
    bool operator()(const Key& a, const Key& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.sequence > b.sequence;
    }
  };

  std::vector<Key> heap_;        ///< max-heap under Later, earliest on top
  std::vector<Event> slab_;      ///< event bodies, indexed by Key::slot
  std::vector<std::uint32_t> free_slots_;  ///< recycled slab indices (LIFO)
  std::uint64_t next_sequence_ = 0;
  std::size_t peak_size_ = 0;
};

}  // namespace gridbox::sim
