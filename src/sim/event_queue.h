// Deterministically ordered discrete-event queue.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/types.h"

namespace gridbox::sim {

/// Action executed when an event fires.
using Action = std::function<void()>;

/// A scheduled event. Events at equal times fire in scheduling order: the
/// monotone sequence number makes the whole simulation a deterministic
/// function of the seed, independent of container or heap internals.
struct Event {
  SimTime time;
  std::uint64_t sequence = 0;
  Action action;
};

/// Min-heap of events ordered by (time, sequence).
///
/// Implemented as a std::vector managed with std::push_heap/std::pop_heap
/// rather than std::priority_queue: pop() must move the Event (its action is
/// a potentially expensive std::function) out of the container, and
/// priority_queue::top() only exposes a const reference — moving through a
/// const_cast is undefined behaviour.
class EventQueue {
 public:
  /// Enqueues an action at an absolute simulated time.
  void push(SimTime time, Action action);

  /// Removes and returns the earliest event. Requires !empty().
  [[nodiscard]] Event pop();

  /// Time of the earliest event. Requires !empty().
  [[nodiscard]] SimTime next_time() const;

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Total events ever pushed (also the next sequence number).
  [[nodiscard]] std::uint64_t total_pushed() const { return next_sequence_; }

  /// High-watermark of size() over the queue's lifetime (backlog telemetry:
  /// the event_queue_depth gauge). Deterministic — a pure function of the
  /// push/pop sequence.
  [[nodiscard]] std::size_t peak_size() const { return peak_size_; }

  void clear();

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.sequence > b.sequence;
    }
  };

  std::vector<Event> heap_;  ///< max-heap under Later, i.e. earliest on top
  std::uint64_t next_sequence_ = 0;
  std::size_t peak_size_ = 0;
};

}  // namespace gridbox::sim
