#include "src/sim/event_queue.h"

#include <algorithm>
#include <utility>

#include "src/common/ensure.h"

namespace gridbox::sim {

void EventQueue::push(SimTime time, Action action) {
  heap_.push_back(Event{time, next_sequence_++, std::move(action)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  if (heap_.size() > peak_size_) peak_size_ = heap_.size();
}

Event EventQueue::pop() {
  expects(!heap_.empty(), "pop on empty event queue");
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Event event = std::move(heap_.back());
  heap_.pop_back();
  return event;
}

SimTime EventQueue::next_time() const {
  expects(!heap_.empty(), "next_time on empty event queue");
  return heap_.front().time;
}

void EventQueue::clear() {
  heap_.clear();
  next_sequence_ = 0;
  peak_size_ = 0;
}

}  // namespace gridbox::sim
