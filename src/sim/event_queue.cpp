#include "src/sim/event_queue.h"

#include <algorithm>
#include <utility>

#include "src/common/ensure.h"
#include "src/obs/profile.h"

namespace gridbox::sim {

void Event::fire() {
  if (auto* action = std::get_if<Action>(&work)) {
    (*action)();
  } else if (auto* deliver = std::get_if<DeliverFrame>(&work)) {
    deliver->sink->deliver_frame(deliver->message);
  } else if (auto* timer = std::get_if<TimerFire>(&work)) {
    (void)timer->target->on_timer(timer->timer_id);
  }
}

void EventQueue::push(SimTime time, EventWork work) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slab_[slot].time = time;
    slab_[slot].sequence = next_sequence_;
    slab_[slot].work = std::move(work);
  } else {
    slot = static_cast<std::uint32_t>(slab_.size());
    slab_.push_back(Event{time, next_sequence_, std::move(work)});
  }
  heap_.push_back(Key{time, next_sequence_, slot});
  ++next_sequence_;
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  if (heap_.size() > peak_size_) peak_size_ = heap_.size();
}

Event EventQueue::pop() {
  GRIDBOX_PROFILE_SCOPE("queue.pop");
  expects(!heap_.empty(), "pop on empty event queue");
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  const std::uint32_t slot = heap_.back().slot;
  heap_.pop_back();
  Event event = std::move(slab_[slot]);
  // Leave the vacated slot holding a cheap monostate-like Action so a frame
  // or captured state is not kept alive until the slot is reused.
  slab_[slot].work = Action{};
  free_slots_.push_back(slot);
  return event;
}

SimTime EventQueue::next_time() const {
  expects(!heap_.empty(), "next_time on empty event queue");
  return heap_.front().time;
}

void EventQueue::clear() {
  heap_.clear();
  slab_.clear();
  free_slots_.clear();
  next_sequence_ = 0;
  peak_size_ = 0;
}

}  // namespace gridbox::sim
