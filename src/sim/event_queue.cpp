#include "src/sim/event_queue.h"

#include <utility>

#include "src/common/ensure.h"

namespace gridbox::sim {

void EventQueue::push(SimTime time, Action action) {
  heap_.push(Event{time, next_sequence_++, std::move(action)});
}

Event EventQueue::pop() {
  expects(!heap_.empty(), "pop on empty event queue");
  // std::priority_queue::top() returns const&; the action must be moved out,
  // so copy the header fields then const_cast the (about to be popped) slot.
  Event event = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  return event;
}

SimTime EventQueue::next_time() const {
  expects(!heap_.empty(), "next_time on empty event queue");
  return heap_.top().time;
}

void EventQueue::clear() {
  heap_ = {};
  next_sequence_ = 0;
}

}  // namespace gridbox::sim
