#include "src/sim/simulator.h"

#include <utility>

#include "src/common/ensure.h"
#include "src/obs/profile.h"  // leaf utility: standard library only

namespace gridbox::sim {

void Simulator::schedule_at(SimTime time, Action action) {
  if (time < now_) time = now_;
  queue_.push(time, std::move(action));
}

void Simulator::schedule_after(SimTime delay, Action action) {
  expects(delay.ticks() >= 0, "negative delay");
  queue_.push(now_ + delay, std::move(action));
}

void Simulator::schedule_frame_after(SimTime delay, const net::Message& message,
                                     FrameSink& sink) {
  expects(delay.ticks() >= 0, "negative delay");
  queue_.push(now_ + delay, DeliverFrame{message, &sink});
}

namespace {

// Self-rescheduling periodic action. Owns the tick callable by value and
// re-enqueues a copy of itself while the tick returns true, so there is no
// shared-ownership cycle and the chain dies naturally with the queue.
struct Repeater {
  Simulator* simulator;
  SimTime interval;
  std::function<bool()> tick;

  void operator()() {
    if (tick()) simulator->schedule_after(interval, Repeater{*this});
  }
};

}  // namespace

void Simulator::schedule_periodic(SimTime start, SimTime interval,
                                  std::function<bool()> tick) {
  expects(interval.ticks() > 0, "periodic interval must be positive");
  schedule_at(start, Repeater{this, interval, std::move(tick)});
}

void Simulator::schedule_periodic(SimTime start, SimTime interval,
                                  TimerTarget& target, std::uint32_t timer_id) {
  expects(interval.ticks() > 0, "periodic interval must be positive");
  if (start < now_) start = now_;
  queue_.push(start, TimerFire{&target, interval, timer_id});
}

void Simulator::schedule_timer_at(SimTime time, TimerTarget& target,
                                  std::uint32_t timer_id) {
  if (time < now_) time = now_;
  queue_.push(time, TimerFire{&target, SimTime::zero(), timer_id});
}

std::uint64_t Simulator::run() {
  GRIDBOX_PROFILE_SCOPE("sim.run");
  std::uint64_t count = 0;
  while (step()) {
    ++count;
    // Checked against the lifetime total, not the per-call count: otherwise a
    // caller looping over run()/run_until() would reset the runaway guard on
    // every call and a reschedule loop could spin forever.
    ensures(executed_ <= event_limit_,
            "event limit exceeded: likely a runaway reschedule loop");
  }
  return count;
}

std::uint64_t Simulator::run_until(SimTime deadline) {
  std::uint64_t count = 0;
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    (void)step();
    ++count;
    ensures(executed_ <= event_limit_,
            "event limit exceeded: likely a runaway reschedule loop");
  }
  if (now_ < deadline) now_ = deadline;
  return count;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  if (telemetry_ != nullptr) telemetry_->note_queue_depth(queue_.size());
  Event event = queue_.pop();
  ensures(event.time >= now_, "event queue returned an event from the past");
  now_ = event.time;
  ++executed_;
  execute(event);
  return true;
}

void Simulator::execute(Event& event) {
  if (auto* action = std::get_if<Action>(&event.work)) {
    if (telemetry_ != nullptr) {
      telemetry_->actions_run.fetch_add(1, std::memory_order_relaxed);
    }
    (*action)();
  } else if (auto* deliver = std::get_if<DeliverFrame>(&event.work)) {
    if (telemetry_ != nullptr) {
      telemetry_->frames_delivered.fetch_add(1, std::memory_order_relaxed);
    }
    deliver->sink->deliver_frame(deliver->message);
  } else {
    // Mirror Repeater's ordering exactly: the tick runs first, then the next
    // tick is enqueued, so event sequence numbers match the closure-based
    // engine and golden traces stay bitwise identical.
    auto& timer = std::get<TimerFire>(event.work);
    // Virtual-clock fires are exactly on time: lateness 0 by construction.
    if (telemetry_ != nullptr) telemetry_->note_timer_fired(0);
    const bool again = timer.target->on_timer(timer.timer_id);
    if (again && timer.interval.ticks() > 0) {
      queue_.push(now_ + timer.interval, std::move(event.work));
    }
  }
}

}  // namespace gridbox::sim
