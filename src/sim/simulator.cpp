#include "src/sim/simulator.h"

#include <utility>

#include "src/common/ensure.h"
#include "src/obs/profile.h"  // leaf utility: standard library only

namespace gridbox::sim {

void Simulator::schedule_at(SimTime time, Action action) {
  if (time < now_) time = now_;
  queue_.push(time, std::move(action));
}

void Simulator::schedule_after(SimTime delay, Action action) {
  expects(delay.ticks() >= 0, "negative delay");
  queue_.push(now_ + delay, std::move(action));
}

namespace {

// Self-rescheduling periodic action. Owns the tick callable by value and
// re-enqueues a copy of itself while the tick returns true, so there is no
// shared-ownership cycle and the chain dies naturally with the queue.
struct Repeater {
  Simulator* simulator;
  SimTime interval;
  std::function<bool()> tick;

  void operator()() {
    if (tick()) simulator->schedule_after(interval, Repeater{*this});
  }
};

}  // namespace

void Simulator::schedule_periodic(SimTime start, SimTime interval,
                                  std::function<bool()> tick) {
  expects(interval.ticks() > 0, "periodic interval must be positive");
  schedule_at(start, Repeater{this, interval, std::move(tick)});
}

std::uint64_t Simulator::run() {
  GRIDBOX_PROFILE_SCOPE("sim.run");
  std::uint64_t count = 0;
  while (step()) {
    ++count;
    // Checked against the lifetime total, not the per-call count: otherwise a
    // caller looping over run()/run_until() would reset the runaway guard on
    // every call and a reschedule loop could spin forever.
    ensures(executed_ <= event_limit_,
            "event limit exceeded: likely a runaway reschedule loop");
  }
  return count;
}

std::uint64_t Simulator::run_until(SimTime deadline) {
  std::uint64_t count = 0;
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    (void)step();
    ++count;
    ensures(executed_ <= event_limit_,
            "event limit exceeded: likely a runaway reschedule loop");
  }
  if (now_ < deadline) now_ = deadline;
  return count;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  Event event = queue_.pop();
  ensures(event.time >= now_, "event queue returned an event from the past");
  now_ = event.time;
  ++executed_;
  event.action();
  return true;
}

}  // namespace gridbox::sim
