// The service runtime over real UDP sockets, and its differential oracle.
//
// run_udp_service drives the same ServiceEngine the simulator uses, wired
// to net::UdpTransport shards and net::Reactor threads: one socket per
// member for the WHOLE service (the mux demultiplexes instances above the
// transport, so the fd count is constant no matter how many epochs stream
// through). Engine bookkeeping runs on reactor 0; nodes start on their own
// shard via Reactor::post; drain detection hops the shards with the posted
// count_timers chain.
//
// run_service_differential is the per-instance differential oracle: the
// identical ServiceConfig runs on both substrates, and every instance of
// the stream must independently satisfy the one-shot oracle's agreement
// definition (completed, audit-clean, reconstructing, finished ==
// survivors) with bit-identical ground truth — both substrates derive
// instance i's world from the same Rng(seed).derive(kInstanceWorld)
// .derive(i) root, so true values must match bit for bit.
#pragma once

#include <cstdint>
#include <string>

#include "src/service/service.h"

namespace gridbox::service {

struct UdpServiceConfig {
  ServiceConfig service;

  /// Member m listens on 127.0.0.1:(port_base + m). Parallel test runs
  /// must pick disjoint port windows.
  std::uint16_t port_base = 39000;

  /// Reactor shard threads; 0 = min(4, hardware_concurrency, N).
  std::size_t shards = 0;
};

struct UdpServiceResult {
  ServiceResult result;
  std::size_t shards = 0;
  std::uint64_t timers_fired = 0;
  std::uint64_t polls = 0;
  std::uint64_t eintr_retries = 0;
};

/// Runs the service over real sockets. Throws PreconditionError on setup
/// failures (ports in use, fd limits that cannot be raised).
[[nodiscard]] UdpServiceResult run_udp_service(const UdpServiceConfig& config);

/// One instance's verdict in the service differential.
struct ServiceDifferentialRow {
  std::uint32_t id = 0;
  bool ok = false;
  std::string why;  ///< empty when ok
};

struct ServiceDifferentialReport {
  ServiceResult sim;
  UdpServiceResult udp;
  std::vector<ServiceDifferentialRow> rows;  ///< one per instance id

  /// True iff every instance of the stream agrees on both substrates.
  [[nodiscard]] bool ok() const;

  /// Human-readable summary: service totals, then every diverging
  /// instance, ending in OK / DIVERGED.
  [[nodiscard]] std::string describe() const;
};

/// Runs the per-instance differential oracle. Audit and invariant checking
/// are forced on for both sides.
[[nodiscard]] ServiceDifferentialReport run_service_differential(
    const UdpServiceConfig& config);

}  // namespace gridbox::service
