// The instance envelope: a strict 8-byte header multiplexing many protocol
// instances over one frame path.
//
// The service runtime (src/service) runs many concurrent protocol instances
// over one shared transport. On the wire nothing changes below this layer —
// the GRBX datagram codec, the UDP transport, and the simulator's typed
// event queue all carry `net::Frame` unchanged. What changes is the frame
// *content*: the service wraps every protocol payload in a fixed header
//
//   offset  size  field
//   0       2     magic 0x4D58 ("MX"), little endian
//   2       1     version (1)
//   3       1     reserved (must be 0)
//   4       4     instance id, little endian
//
// followed by the untouched inner payload. Validation is strict in the
// spirit of the datagram codec (datagram.h): every field is checked, a bad
// envelope yields a typed error and the frame is counted malformed — never
// delivered, never a crash. The inner payload's own length is implicit
// (outer size minus header), mirroring how the datagram trusts its length
// field only after exact-size validation.
//
// The envelope costs 8 of the frame's 256 bytes. The largest payload any
// protocol here sends is the hier-gossip phase message at 236 bytes
// (11 + 5 entries x 45), so wrapping can never overflow; envelope_wrap
// enforces that as a precondition rather than a silent truncation.
#pragma once

#include <cstdint>
#include <string>

#include "src/net/frame.h"

namespace gridbox::service {

/// Envelope header size in bytes.
inline constexpr std::size_t kEnvelopeBytes = 8;

/// Envelope magic ("MX" little endian), distinct from the datagram's GRBX
/// magic so a stray unwrapped frame can never masquerade as an envelope.
inline constexpr std::uint16_t kEnvelopeMagic = 0x4D58;

/// Envelope format version.
inline constexpr std::uint8_t kEnvelopeVersion = 1;

/// Why an envelope failed to decode. kOk is 0 so decoders can test
/// `if (error != EnvelopeError::kOk)`.
enum class EnvelopeError : std::uint8_t {
  kOk = 0,
  kTooShort,      ///< outer frame smaller than the fixed header
  kBadMagic,      ///< first two bytes are not 0x4D58
  kBadVersion,    ///< unsupported version byte
  kBadReserved,   ///< reserved byte not zero
};

[[nodiscard]] std::string to_string(EnvelopeError error);

/// Wraps `inner` for `instance_id`. Precondition: the inner payload plus the
/// header fits the constant frame bound (true for every protocol message —
/// see the header comment).
[[nodiscard]] net::Frame envelope_wrap(std::uint32_t instance_id,
                                       const net::Frame& inner);

/// Strictly validates and strips the envelope. On success fills
/// `instance_id` and `inner` and returns kOk; on any failure returns the
/// specific error and leaves both out-parameters untouched.
[[nodiscard]] EnvelopeError envelope_unwrap(const net::Frame& outer,
                                            std::uint32_t& instance_id,
                                            net::Frame& inner);

}  // namespace gridbox::service
