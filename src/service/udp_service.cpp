#include "src/service/udp_service.h"

#include <algorithm>
#include <exception>
#include <functional>
#include <memory>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/ensure.h"
#include "src/net/chaos.h"
#include "src/net/reactor.h"
#include "src/net/telemetry_socket.h"
#include "src/net/udp_transport.h"
#include "src/runner/udp_runtime.h"
#include "src/runner/world_setup.h"

namespace gridbox::service {

namespace {

/// Self-stopping periodic sampler tick on the control reactor: samples on
/// the reactor clock and stops rescheduling once the stream resolves, so
/// the wheel quiesces with the run.
struct SamplerTick final : sim::TimerTarget {
  obs::TelemetrySampler* sampler = nullptr;
  net::Reactor* clock = nullptr;
  std::function<bool()> keep_going;

  bool on_timer(std::uint32_t /*timer_id*/) override {
    sampler->sample(clock->now());
    return keep_going();
  }
};

}  // namespace

UdpServiceResult run_udp_service(const UdpServiceConfig& udp_config) {
  const ServiceConfig& service = udp_config.service;
  const runner::ExperimentConfig& config = service.experiment;
  expects(config.group_size >= 2, "need at least two members");
  // One socket per member for the whole service — the mux keeps the fd
  // count independent of the instance count.
  const std::uint64_t fd_need = config.group_size + 64;
  runner::require_fd_capacity(fd_need);

  const Rng root(config.seed);
  membership::Group shared_group(config.group_size);

  const std::size_t shard_count =
      udp_config.shards > 0
          ? udp_config.shards
          : std::max<std::size_t>(
                1, std::min<std::size_t>(
                       {4, std::thread::hardware_concurrency(),
                        config.group_size}));
  const auto epoch = std::chrono::steady_clock::now();
  std::vector<std::unique_ptr<net::Reactor>> reactors;
  std::vector<std::unique_ptr<net::UdpTransport>> transports;
  reactors.reserve(shard_count);
  transports.reserve(shard_count);
  const net::ChaosSpec chaos = net::ChaosSpec::parse(config.chaos_spec);
  const bool shim_active = chaos.affects_network() ||
                           config.ucast_loss > 0.0 ||
                           config.partition_loss >= 0.0;
  const Rng chaos_root = root.derive(runner::streams::kChaos);
  for (std::size_t s = 0; s < shard_count; ++s) {
    // No dispatch mutex: each shard dispatches its own members lock-free
    // (DESIGN.md §14); the mux and the engine are built for that.
    reactors.push_back(std::make_unique<net::Reactor>(net::Reactor::Options{}));
    reactors.back()->bind_epoch(epoch);
    net::UdpTransport::Options topt;
    topt.port_base = udp_config.port_base;
    auto transport =
        std::make_unique<net::UdpTransport>(*reactors.back(), topt);
    transport->set_liveness(
        [&shared_group](MemberId m) { return shared_group.is_alive(m); });
    if (shim_active) {
      auto schedule = std::make_unique<net::ChaosSchedule>(
          chaos, runner::make_faults(config), config.group_size,
          chaos_root.derive(s));
      transport->install_chaos(std::move(schedule));
    }
    transports.push_back(std::move(transport));
  }

  InstanceMux::Options mopt;
  mopt.group_size = config.group_size;
  mopt.transport_of = [&transports, shard_count](MemberId m) ->
      net::Transport* { return transports[m.value() % shard_count].get(); };
  mopt.max_instances = service.instances;
  mopt.shard_count = shard_count;
  mopt.shard_of = [shard_count](MemberId m) -> std::size_t {
    return m.value() % shard_count;
  };
  InstanceMux mux(std::move(mopt));
  mux.attach_all();  // sockets bind here, once, for every epoch to come

  std::vector<net::Reactor*> shard_reactors;
  shard_reactors.reserve(shard_count);
  for (const auto& reactor : reactors) shard_reactors.push_back(reactor.get());

  ServiceEngine::Substrate substrate;
  substrate.control = shard_reactors.front();
  substrate.scheduler_of = [shard_reactors, shard_count](MemberId m) ->
      sim::Scheduler* { return shard_reactors[m.value() % shard_count]; };
  substrate.post_to_member = [shard_reactors, shard_count](MemberId m,
                                                           sim::Action a) {
    shard_reactors[m.value() % shard_count]->post(std::move(a));
  };
  // Drain detection hops every shard in turn (counting is only legal on
  // the shard's own thread), then lands the total back on the control
  // reactor. Built back-to-front so each hop knows its successor.
  substrate.count_timers =
      [shard_reactors](std::function<bool(const sim::TimerTarget*)> pred,
                       std::function<void(std::size_t)> done) {
        auto total = std::make_shared<std::size_t>(0);
        std::function<void()> next = [r0 = shard_reactors.front(),
                                      done = std::move(done), total]() {
          r0->post([done, total]() { done(*total); });
        };
        for (std::size_t s = shard_reactors.size(); s-- > 0;) {
          next = [r = shard_reactors[s], pred, total,
                  next = std::move(next)]() {
            r->post([r, pred, total, next]() {
              *total += r->count_timers_where(pred);
              next();
            });
          };
        }
        next();
      };
  substrate.sim_clock = nullptr;
  substrate.shards = shard_count;

  // Live telemetry: one lane per shard, reactor + transport of a shard
  // sharing its lane (both write from the shard's own thread).
  std::unique_ptr<obs::TelemetryHub> tel_hub;
  std::unique_ptr<obs::TelemetrySampler> tel_sampler;
  if (config.telemetry.enabled) {
    tel_hub = std::make_unique<obs::TelemetryHub>(shard_count);
    tel_hub->enable_service();
    for (std::size_t s = 0; s < shard_count; ++s) {
      reactors[s]->set_telemetry(&tel_hub->lane(s));
      transports[s]->set_telemetry(&tel_hub->lane(s));
    }
    substrate.telemetry = tel_hub.get();
    tel_sampler =
        std::make_unique<obs::TelemetrySampler>(*tel_hub, config.telemetry);
  }

  // The engine's whole schedule lands on reactor 0 before its thread
  // starts; all later rescheduling happens on that thread.
  ServiceEngine engine(service, mux, shared_group, substrate);
  engine.begin();

  // Sampler cadence and (optionally) the stats socket live on reactor 0 —
  // the control shard, the same thread the engine mutates the service
  // section on, so latest() is served without locks.
  SamplerTick sampler_tick;
  std::unique_ptr<net::TelemetrySocket> tel_socket;
  if (tel_sampler != nullptr) {
    sampler_tick.sampler = tel_sampler.get();
    sampler_tick.clock = shard_reactors.front();
    sampler_tick.keep_going = [&engine]() { return !engine.finished(); };
    shard_reactors.front()->schedule_periodic(
        config.telemetry.interval, config.telemetry.interval, sampler_tick);
    if (config.telemetry.udp_port != 0) {
      tel_socket = std::make_unique<net::TelemetrySocket>(
          *shard_reactors.front(), config.telemetry.udp_port,
          [sampler = tel_sampler.get()]() { return sampler->latest(); });
    }
  }

  const auto done = [&engine]() { return engine.finished(); };
  const SimTime deadline = engine.global_deadline();
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(shard_count);
  threads.reserve(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    threads.emplace_back([&, s]() {
      try {
        (void)reactors[s]->run_until(done, deadline);
      } catch (...) {
        errors[s] = std::current_exception();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }

  UdpServiceResult result;
  result.result = engine.collect();
  result.shards = shard_count;
  // Final sample post-join: the joins ordered every shard's lane writes
  // before this read, so the closing record is exact, not torn.
  if (tel_sampler != nullptr) {
    tel_sampler->sample(shard_reactors.front()->now());
  }
  for (std::size_t s = 0; s < shard_count; ++s) {
    result.timers_fired += reactors[s]->timers_fired();
    result.polls += reactors[s]->polls();
    result.eintr_retries += reactors[s]->eintr_retries();
    result.eintr_retries += transports[s]->recv_eintr_retries();
  }
  mux.detach_all();
  return result;
}

namespace {

/// The one-shot oracle's agreement definition, applied to one instance on
/// one substrate.
void check_side(const char* side, const InstanceResult& row,
                std::ostringstream& why) {
  if (!row.completed) why << side << " did not complete; ";
  if (row.measurement.audit_violations != 0) {
    why << side << " audit violations: " << row.measurement.audit_violations
        << "; ";
  }
  if (row.measurement.reconstruction_failures != 0) {
    why << side << " reconstruction failures: "
        << row.measurement.reconstruction_failures << "; ";
  }
  if (row.invariant_violations != 0) {
    why << side << " invariant violations: " << row.invariant_violations
        << " (" << row.first_violation << "); ";
  }
  if (row.measurement.finished_nodes != row.measurement.survivors) {
    why << side << " finished " << row.measurement.finished_nodes << "/"
        << row.measurement.survivors << " survivors; ";
  }
}

}  // namespace

bool ServiceDifferentialReport::ok() const {
  if (rows.empty()) return false;
  return std::all_of(rows.begin(), rows.end(),
                     [](const ServiceDifferentialRow& r) { return r.ok; });
}

std::string ServiceDifferentialReport::describe() const {
  std::ostringstream out;
  out << "service differential: " << rows.size() << " instances, sim "
      << sim.metrics.completed << " completed / " << sim.metrics.failed
      << " failed, udp " << udp.result.metrics.completed << " completed / "
      << udp.result.metrics.failed << " failed\n";
  for (const ServiceDifferentialRow& row : rows) {
    if (!row.ok) out << "  instance " << row.id << ": " << row.why << "\n";
  }
  out << (ok() ? "OK" : "DIVERGED") << "\n";
  return out.str();
}

ServiceDifferentialReport run_service_differential(
    const UdpServiceConfig& config) {
  UdpServiceConfig forced = config;
  forced.service.experiment.audit = true;
  forced.service.experiment.check_invariants = true;

  ServiceDifferentialReport report;
  report.sim = run_service_experiment(forced.service);
  report.udp = run_udp_service(forced);

  const std::vector<InstanceResult>& sim_rows = report.sim.instances;
  const std::vector<InstanceResult>& udp_rows = report.udp.result.instances;
  const std::size_t count = std::max(sim_rows.size(), udp_rows.size());
  report.rows.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    ServiceDifferentialRow row;
    row.id = static_cast<std::uint32_t>(i);
    if (i >= sim_rows.size() || i >= udp_rows.size()) {
      row.ok = false;
      row.why = "instance missing on one substrate";
      report.rows.push_back(std::move(row));
      continue;
    }
    const InstanceResult& s = sim_rows[i];
    const InstanceResult& u = udp_rows[i];
    std::ostringstream why;
    check_side("sim", s, why);
    check_side("udp", u, why);
    // Ground truth is derived, not measured: instance i's true value must
    // be bit-identical across substrates or world derivation has drifted.
    if (s.measurement.true_value != u.measurement.true_value) {
      why << "true value mismatch (sim " << s.measurement.true_value
          << " vs udp " << u.measurement.true_value << "); ";
    }
    if (s.participants != u.participants) {
      why << "participant cohorts differ (sim " << s.participants
          << " vs udp " << u.participants << "); ";
    }
    row.why = why.str();
    row.ok = row.why.empty();
    report.rows.push_back(std::move(row));
  }
  return report;
}

}  // namespace gridbox::service
