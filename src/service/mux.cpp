#include "src/service/mux.h"

#include <utility>

#include "src/common/ensure.h"
#include "src/service/envelope.h"

namespace gridbox::service {

InstanceSender::InstanceSender(InstanceMux& mux, std::uint32_t instance)
    : mux_(mux),
      instance_(instance),
      lanes_(std::make_unique<Lane[]>(mux.options_.shard_count)) {}

void InstanceSender::attach(MemberId id, net::Endpoint& endpoint) {
  mux_.route(instance_, id, endpoint);
}

void InstanceSender::detach(MemberId id) { mux_.unroute(instance_, id); }

void InstanceSender::send(net::Message message) {
  mux_.forward(*this, std::move(message));
}

const net::NetworkStats& InstanceSender::stats() const {
  // Control-thread only: merges the shard lanes into the cached scratch.
  // The counters are monotone; callers read them either after the owning
  // instance stopped sending (complete/fail) or after the threads joined.
  merged_ = net::NetworkStats{};
  for (std::size_t s = 0; s < mux_.options_.shard_count; ++s) {
    const Lane& lane = lanes_[s];
    merged_.messages_sent += lane.messages_sent.load(std::memory_order_relaxed);
    merged_.bytes_sent += lane.bytes_sent.load(std::memory_order_relaxed);
    merged_.messages_delivered +=
        lane.messages_delivered.load(std::memory_order_relaxed);
    merged_.messages_dead_dest +=
        lane.messages_dead_dest.load(std::memory_order_relaxed);
  }
  return merged_;
}

InstanceMux::InstanceMux(Options options) : options_(std::move(options)) {
  expects(options_.group_size >= 1, "mux needs at least one member");
  expects(static_cast<bool>(options_.transport_of),
          "mux needs a transport map");
  expects(options_.max_instances >= 1, "mux needs at least one instance slot");
  expects(options_.shard_count >= 1, "mux needs at least one shard lane");
  ports_.reserve(options_.group_size);
  for (std::size_t m = 0; m < options_.group_size; ++m) {
    ports_.push_back(std::make_unique<MemberPort>(
        *this, MemberId{static_cast<MemberId::underlying>(m)}));
  }
  slots_ = std::make_unique<Slot[]>(options_.max_instances);
  lanes_ = std::make_unique<Lane[]>(options_.shard_count);
}

void InstanceMux::attach_all() {
  expects(!attached_, "mux already attached");
  for (std::size_t m = 0; m < options_.group_size; ++m) {
    const MemberId id{static_cast<MemberId::underlying>(m)};
    options_.transport_of(id)->attach(id, *ports_[m]);
  }
  attached_ = true;
}

void InstanceMux::detach_all() {
  if (!attached_) return;
  for (std::size_t m = 0; m < options_.group_size; ++m) {
    const MemberId id{static_cast<MemberId::underlying>(m)};
    options_.transport_of(id)->detach(id);
  }
  attached_ = false;
}

std::unique_ptr<InstanceSender> InstanceMux::open_instance(std::uint32_t id) {
  expects(id == next_id_.load(std::memory_order_relaxed),
          "instance ids must be opened in order");
  expects(id < options_.max_instances,
          "instance id beyond Options::max_instances");
  auto sender = std::make_unique<InstanceSender>(*this, id);
  Slot& slot = slots_[id];
  // Publication order: fill the slot, release-store its state, then
  // release-store next_id_. A demux that acquire-loads next_id_ > id
  // therefore sees the slot open with routes and sender fully visible.
  slot.routes = std::make_unique<std::atomic<net::Endpoint*>[]>(
      options_.group_size);  // value-initialized: all unrouted
  slot.sender = sender.get();
  slot.state.store(kOpen, std::memory_order_release);
  next_id_.store(id + 1, std::memory_order_release);
  return sender;
}

void InstanceMux::close_instance(std::uint32_t id) {
  expects(id < options_.max_instances &&
              slots_[id].state.load(std::memory_order_relaxed) == kOpen,
          "closing an instance that is not open");
  // Retire-only: routes and sender stay in place so a demux racing this
  // store on another shard still dereferences live memory. The engine's
  // drain handshake orders every such demux before node/sender teardown.
  slots_[id].state.store(kRetired, std::memory_order_release);
}

void InstanceMux::route(std::uint32_t instance, MemberId member,
                        net::Endpoint& endpoint) {
  expects(instance < options_.max_instances &&
              slots_[instance].state.load(std::memory_order_relaxed) == kOpen,
          "routing into an instance that is not open");
  expects(member.value() < options_.group_size, "member outside the group");
  slots_[instance].routes[member.value()].store(&endpoint,
                                                std::memory_order_release);
}

void InstanceMux::unroute(std::uint32_t instance, MemberId member) {
  if (instance >= options_.max_instances ||
      slots_[instance].state.load(std::memory_order_relaxed) != kOpen) {
    return;  // closed already: nothing to unroute
  }
  expects(member.value() < options_.group_size, "member outside the group");
  slots_[instance].routes[member.value()].store(nullptr,
                                                std::memory_order_release);
}

void InstanceMux::forward(InstanceSender& sender, net::Message message) {
  // Runs on the sending member's shard; that shard's lanes take the counts.
  const std::size_t lane = lane_of(message.source);
  if (!is_open(sender.instance())) {
    // A lingering node of a closed instance gossiping into the void — the
    // service's equivalent of a message to a crashed process.
    lanes_[lane].closed_sends.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  net::Message outer;
  outer.source = message.source;
  outer.destination = message.destination;
  outer.frame = envelope_wrap(sender.instance(), message.frame);
  InstanceSender::Lane& slane = sender.lanes_[lane];
  slane.messages_sent.fetch_add(1, std::memory_order_relaxed);
  slane.bytes_sent.fetch_add(outer.frame.size(), std::memory_order_relaxed);
  options_.transport_of(outer.source)->send(std::move(outer));
}

void InstanceMux::demux(MemberId self, const net::Message& outer) {
  // Runs on self's owning shard; that shard's lanes take the counts.
  Lane& lane = lanes_[lane_of(self)];
  std::uint32_t instance = 0;
  net::Frame inner;
  const EnvelopeError error = envelope_unwrap(outer.frame, instance, inner);
  if (error != EnvelopeError::kOk) {
    lane.malformed_envelope.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Acquire next_id_ BEFORE touching the slot: the open's release store of
  // next_id_ is what publishes the slot's routes and sender.
  if (instance >= next_id_.load(std::memory_order_acquire)) {
    lane.unknown_instance.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Slot& slot = slots_[instance];
  if (slot.state.load(std::memory_order_acquire) != kOpen) {
    lane.retired_instance.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  net::Endpoint* endpoint =
      slot.routes[self.value()].load(std::memory_order_acquire);
  if (endpoint == nullptr) {
    // The member is not a participant of this instance's epoch (it joined
    // after launch, or was down at launch): to the instance it is dead.
    lane.unrouted_member.fetch_add(1, std::memory_order_relaxed);
    slot.sender->lanes_[lane_of(self)].messages_dead_dest.fetch_add(
        1, std::memory_order_relaxed);
    return;
  }
  lane.delivered.fetch_add(1, std::memory_order_relaxed);
  slot.sender->lanes_[lane_of(self)].messages_delivered.fetch_add(
      1, std::memory_order_relaxed);
  net::Message message;
  message.source = outer.source;
  message.destination = outer.destination;
  message.frame = inner;
  endpoint->on_message(message);
}

DemuxStats InstanceMux::stats() const {
  // Merged deterministically in shard order; control thread or post-join.
  DemuxStats out;
  for (std::size_t s = 0; s < options_.shard_count; ++s) {
    const Lane& lane = lanes_[s];
    out.delivered += lane.delivered.load(std::memory_order_relaxed);
    out.malformed_envelope +=
        lane.malformed_envelope.load(std::memory_order_relaxed);
    out.unknown_instance +=
        lane.unknown_instance.load(std::memory_order_relaxed);
    out.retired_instance +=
        lane.retired_instance.load(std::memory_order_relaxed);
    out.unrouted_member += lane.unrouted_member.load(std::memory_order_relaxed);
    out.closed_sends += lane.closed_sends.load(std::memory_order_relaxed);
  }
  return out;
}

}  // namespace gridbox::service
