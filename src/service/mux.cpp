#include "src/service/mux.h"

#include <utility>

#include "src/common/ensure.h"
#include "src/service/envelope.h"

namespace gridbox::service {

InstanceSender::InstanceSender(InstanceMux& mux, std::uint32_t instance)
    : mux_(mux), instance_(instance) {}

void InstanceSender::attach(MemberId id, net::Endpoint& endpoint) {
  mux_.route(instance_, id, endpoint);
}

void InstanceSender::detach(MemberId id) { mux_.unroute(instance_, id); }

void InstanceSender::send(net::Message message) {
  mux_.forward(*this, std::move(message));
}

InstanceMux::InstanceMux(Options options) : options_(std::move(options)) {
  expects(options_.group_size >= 1, "mux needs at least one member");
  expects(static_cast<bool>(options_.transport_of),
          "mux needs a transport map");
  ports_.reserve(options_.group_size);
  for (std::size_t m = 0; m < options_.group_size; ++m) {
    ports_.push_back(std::make_unique<MemberPort>(
        *this, MemberId{static_cast<MemberId::underlying>(m)}));
  }
}

void InstanceMux::attach_all() {
  expects(!attached_, "mux already attached");
  for (std::size_t m = 0; m < options_.group_size; ++m) {
    const MemberId id{static_cast<MemberId::underlying>(m)};
    options_.transport_of(id)->attach(id, *ports_[m]);
  }
  attached_ = true;
}

void InstanceMux::detach_all() {
  if (!attached_) return;
  for (std::size_t m = 0; m < options_.group_size; ++m) {
    const MemberId id{static_cast<MemberId::underlying>(m)};
    options_.transport_of(id)->detach(id);
  }
  attached_ = false;
}

std::unique_ptr<InstanceSender> InstanceMux::open_instance(std::uint32_t id) {
  expects(id == next_id_, "instance ids must be opened in order");
  ++next_id_;
  auto sender = std::make_unique<InstanceSender>(*this, id);
  Slot slot;
  slot.routes.assign(options_.group_size, nullptr);
  slot.sender = sender.get();
  instances_.emplace(id, std::move(slot));
  return sender;
}

void InstanceMux::close_instance(std::uint32_t id) {
  const auto it = instances_.find(id);
  expects(it != instances_.end(), "closing an instance that is not open");
  instances_.erase(it);
}

void InstanceMux::route(std::uint32_t instance, MemberId member,
                        net::Endpoint& endpoint) {
  const auto it = instances_.find(instance);
  expects(it != instances_.end(), "routing into an instance that is not open");
  expects(member.value() < options_.group_size, "member outside the group");
  it->second.routes[member.value()] = &endpoint;
}

void InstanceMux::unroute(std::uint32_t instance, MemberId member) {
  const auto it = instances_.find(instance);
  if (it == instances_.end()) return;  // closed already: nothing to unroute
  expects(member.value() < options_.group_size, "member outside the group");
  it->second.routes[member.value()] = nullptr;
}

void InstanceMux::forward(InstanceSender& sender, net::Message message) {
  if (!is_open(sender.instance())) {
    // A lingering node of a closed instance gossiping into the void — the
    // service's equivalent of a message to a crashed process.
    ++stats_.closed_sends;
    return;
  }
  net::Message outer;
  outer.source = message.source;
  outer.destination = message.destination;
  outer.frame = envelope_wrap(sender.instance(), message.frame);
  sender.stats_.messages_sent += 1;
  sender.stats_.bytes_sent += outer.frame.size();
  options_.transport_of(outer.source)->send(std::move(outer));
}

void InstanceMux::demux(MemberId self, const net::Message& outer) {
  std::uint32_t instance = 0;
  net::Frame inner;
  const EnvelopeError error = envelope_unwrap(outer.frame, instance, inner);
  if (error != EnvelopeError::kOk) {
    ++stats_.malformed_envelope;
    return;
  }
  if (instance >= next_id_) {
    ++stats_.unknown_instance;
    return;
  }
  const auto it = instances_.find(instance);
  if (it == instances_.end()) {
    ++stats_.retired_instance;
    return;
  }
  Slot& slot = it->second;
  net::Endpoint* endpoint = slot.routes[self.value()];
  if (endpoint == nullptr) {
    // The member is not a participant of this instance's epoch (it joined
    // after launch, or was down at launch): to the instance it is dead.
    ++stats_.unrouted_member;
    slot.sender->stats_.messages_dead_dest += 1;
    return;
  }
  ++stats_.delivered;
  slot.sender->stats_.messages_delivered += 1;
  net::Message message;
  message.source = outer.source;
  message.destination = outer.destination;
  message.frame = inner;
  endpoint->on_message(message);
}

}  // namespace gridbox::service
