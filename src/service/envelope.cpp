#include "src/service/envelope.h"

#include <cstring>

#include "src/common/ensure.h"

namespace gridbox::service {

std::string to_string(EnvelopeError error) {
  switch (error) {
    case EnvelopeError::kOk:
      return "ok";
    case EnvelopeError::kTooShort:
      return "frame shorter than the envelope header";
    case EnvelopeError::kBadMagic:
      return "bad envelope magic";
    case EnvelopeError::kBadVersion:
      return "unsupported envelope version";
    case EnvelopeError::kBadReserved:
      return "nonzero reserved envelope byte";
  }
  return "unknown envelope error";
}

net::Frame envelope_wrap(std::uint32_t instance_id, const net::Frame& inner) {
  expects(inner.size() + kEnvelopeBytes <= net::kMaxPayloadBytes,
          "payload too large to carry an instance envelope");
  std::uint8_t header[kEnvelopeBytes];
  header[0] = static_cast<std::uint8_t>(kEnvelopeMagic & 0xFF);
  header[1] = static_cast<std::uint8_t>(kEnvelopeMagic >> 8);
  header[2] = kEnvelopeVersion;
  header[3] = 0;  // reserved
  header[4] = static_cast<std::uint8_t>(instance_id & 0xFF);
  header[5] = static_cast<std::uint8_t>((instance_id >> 8) & 0xFF);
  header[6] = static_cast<std::uint8_t>((instance_id >> 16) & 0xFF);
  header[7] = static_cast<std::uint8_t>((instance_id >> 24) & 0xFF);
  net::Frame outer(header, kEnvelopeBytes);
  ensures(outer.try_append(inner.data(), inner.size()),
          "envelope wrap overflow");
  return outer;
}

EnvelopeError envelope_unwrap(const net::Frame& outer,
                              std::uint32_t& instance_id, net::Frame& inner) {
  if (outer.size() < kEnvelopeBytes) return EnvelopeError::kTooShort;
  const std::uint8_t* b = outer.data();
  const std::uint16_t magic =
      static_cast<std::uint16_t>(b[0] | (static_cast<std::uint16_t>(b[1]) << 8));
  if (magic != kEnvelopeMagic) return EnvelopeError::kBadMagic;
  if (b[2] != kEnvelopeVersion) return EnvelopeError::kBadVersion;
  if (b[3] != 0) return EnvelopeError::kBadReserved;
  instance_id = static_cast<std::uint32_t>(b[4]) |
                (static_cast<std::uint32_t>(b[5]) << 8) |
                (static_cast<std::uint32_t>(b[6]) << 16) |
                (static_cast<std::uint32_t>(b[7]) << 24);
  inner = net::Frame(b + kEnvelopeBytes, outer.size() - kEnvelopeBytes);
  return EnvelopeError::kOk;
}

}  // namespace gridbox::service
