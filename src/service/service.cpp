#include "src/service/service.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "src/common/ensure.h"
#include "src/hashing/fair_hash.h"
#include "src/net/network.h"
#include "src/runner/world_setup.h"

namespace gridbox::service {

namespace {

/// Nearest-rank percentile over a sorted sample (zero when empty).
SimTime percentile(const std::vector<SimTime>& sorted, double p) {
  if (sorted.empty()) return SimTime::zero();
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const auto i = static_cast<std::size_t>(rank + 0.5);
  return sorted[std::min(i, sorted.size() - 1)];
}

}  // namespace

ServiceEngine::ServiceEngine(const ServiceConfig& config, InstanceMux& mux,
                             membership::Group& shared_group,
                             Substrate substrate)
    : config_(config),
      mux_(mux),
      shared_group_(shared_group),
      substrate_(std::move(substrate)),
      crash_model_(config.experiment.crash_probability),
      crash_rng_(
          Rng(config.experiment.seed).derive(runner::streams::kCrash)) {
  const runner::ExperimentConfig& xc = config_.experiment;
  expects(xc.group_size >= 2, "need at least two members");
  expects(config_.instances >= 1, "need at least one instance");
  expects(config_.epoch_interval > SimTime::zero(),
          "epoch interval must be positive");
  expects(config_.max_in_flight >= 1, "in-flight window must be at least 1");
  expects(substrate_.control != nullptr, "substrate needs a control scheduler");
  expects(static_cast<bool>(substrate_.scheduler_of) &&
              static_cast<bool>(substrate_.post_to_member) &&
              static_cast<bool>(substrate_.count_timers),
          "substrate seam incomplete");
  expects(shared_group_.size() == xc.group_size,
          "shared group size must match the experiment config");

  chaos_ = net::ChaosSpec::parse(xc.chaos_spec);
  for (const net::ChurnEvent& e : chaos_.joins) {
    expects(e.member.value() < xc.group_size, "join member outside the group");
  }
  for (const net::ChurnEvent& e : chaos_.recovers) {
    expects(e.member.value() < xc.group_size,
            "recover member outside the group");
  }

  scan_interval_ = xc.round_duration();

  // Deadlines are sized from the protocol horizon. The phase count is
  // structural (it depends on N and K, not on the per-instance hash salt),
  // so a probe hierarchy stands in for every instance's.
  const hashing::FairHash probe_hash(0);
  const hierarchy::GridBoxHierarchy probe(
      xc.group_size, runner::hierarchy_fanout(xc), probe_hash);
  const SimTime horizon = runner::protocol_horizon(xc, probe.num_phases());
  instance_deadline_ = std::max(
      config_.min_deadline,
      SimTime::micros(static_cast<SimTime::underlying>(
          static_cast<double>(horizon.ticks()) * config_.deadline_factor)));
  // Backstop for the event loop: even a fully serialized stream (every
  // launch deferred behind a failing predecessor) resolves within this.
  const auto n = static_cast<SimTime::underlying>(config_.instances);
  global_deadline_ =
      SimTime::micros(config_.epoch_interval.ticks() * n +
                      instance_deadline_.ticks() * (n + 1));
}

void ServiceEngine::begin() {
  // Crashes from any source (churn script, chaos crash directives, the
  // per-round pf model) fan into every running instance's membership view.
  shared_group_.set_crash_listener([this](MemberId m) { fan_crash(m); });

  // Joiners are absent from service start: they participate in nothing
  // until their join time, then enter at the next epoch boundary.
  for (const net::ChurnEvent& e : chaos_.joins) {
    shared_group_.crash(e.member);
  }
  for (const net::ChurnEvent& e : chaos_.joins) {
    substrate_.control->schedule_at(
        e.at, [this, m = e.member]() { shared_group_.recover(m); });
  }
  for (const net::ChurnEvent& e : chaos_.recovers) {
    substrate_.control->schedule_at(
        e.at, [this, m = e.member]() { shared_group_.recover(m); });
  }
  // Scripted chaos crashes are service-wide events here (the one-shot
  // runners schedule these themselves; the engine owns them in a service
  // run so they hit the shared view exactly once).
  for (const net::CrashEvent& e : chaos_.crashes) {
    substrate_.control->schedule_at(
        e.at, [this, m = e.member]() { shared_group_.crash(m); });
  }

  if (config_.experiment.crash_probability > 0.0) {
    substrate_.control->schedule_after(scan_interval_,
                                       [this]() { crash_tick(); });
  }

  for (std::size_t i = 0; i < config_.instances; ++i) {
    const SimTime due = SimTime::micros(
        config_.epoch_interval.ticks() * static_cast<SimTime::underlying>(i));
    substrate_.control->schedule_at(
        due, [this, id = static_cast<std::uint32_t>(i)]() {
          on_launch_due(id);
        });
  }

  substrate_.control->schedule_after(scan_interval_, [this]() { scan(); });
}

void ServiceEngine::crash_tick() {
  (void)shared_group_.apply_round_crashes(crash_model_, crash_round_++,
                                          crash_rng_);
  if (!done_.load(std::memory_order_relaxed)) {
    substrate_.control->schedule_after(scan_interval_,
                                       [this]() { crash_tick(); });
  }
}

void ServiceEngine::fan_crash(MemberId member) {
  for (auto& [id, inst] : live_) {
    if (inst->state == State::kRunning && inst->group.is_alive(member)) {
      inst->group.crash(member);
      if (inst->lineage) inst->lineage->on_crash(member);
    }
  }
}

std::size_t ServiceEngine::running_count() const { return in_flight_; }

void ServiceEngine::sync_telemetry() {
  if (substrate_.telemetry == nullptr) return;
  obs::ServiceTelemetry& s = substrate_.telemetry->service();
  s.launched = launched_;
  s.completed = completed_count_;
  s.failed = failed_count_;
  s.deferred = deferred_count_;
  s.note_occupancy(in_flight_, deferred_.size());
}

void ServiceEngine::on_launch_due(std::uint32_t id) {
  // Launches must stay in id order (the mux's monotone id space), so a due
  // epoch also defers while older deferred launches are still queued.
  if (!deferred_.empty() || running_count() >= config_.max_in_flight) {
    deferred_.push_back(id);
    ++deferred_count_;
    sync_telemetry();
    return;
  }
  launch(id);
}

void ServiceEngine::try_launches() {
  while (!deferred_.empty() && running_count() < config_.max_in_flight) {
    const std::uint32_t id = deferred_.front();
    deferred_.pop_front();
    launch(id);
  }
}

void ServiceEngine::launch(std::uint32_t id) {
  const runner::ExperimentConfig& xc = config_.experiment;
  const SimTime now = substrate_.control->now();

  // Per-instance world: same derivation order as run_experiment, but off an
  // instance-specific root, so every epoch aggregates fresh votes over a
  // fresh hash salt (hence a fresh hierarchy) — and both substrates derive
  // bit-identical worlds for the differential oracle.
  const Rng inst_root = Rng(xc.seed).derive(kInstanceWorld).derive(id);
  membership::Group igroup(xc.group_size);
  if (xc.assign_positions || xc.hash == runner::HashKind::kTopoAware ||
      xc.workload == runner::WorkloadKind::kField) {
    Rng pos_rng = inst_root.derive(runner::streams::kPosition);
    igroup.scatter_positions(pos_rng);
  }
  Rng vote_rng = inst_root.derive(runner::streams::kVote);
  agg::VoteTable votes = runner::make_votes(xc, igroup, vote_rng);
  auto inst =
      std::make_unique<Instance>(id, std::move(igroup), std::move(votes));
  inst->hash = runner::make_hash(xc, inst->group, inst_root);
  inst->hier = std::make_unique<hierarchy::GridBoxHierarchy>(
      xc.group_size, runner::hierarchy_fanout(xc), *inst->hash);
  inst->audit = runner::make_audit(xc, inst->group, *inst->hier);
  // With several reactor shards, this instance's nodes register votes and
  // merges from every shard concurrently; arm the registry's internal lock.
  if (inst->audit != nullptr && substrate_.shards > 1) {
    inst->audit->set_concurrent(true);
  }

  if (!arena_pool_.empty()) {
    inst->arena = std::move(arena_pool_.back());
    arena_pool_.pop_back();
    inst->arena->recycle(inst->group.shared_members(), *inst->hier);
  } else {
    inst->arena =
        std::make_unique<protocols::StateArena>(inst->group.shared_members());
    inst->arena->build_phase_tables(*inst->hier);
  }

  // The epoch's cohort: members alive in the shared view right now. To the
  // instance, everyone else is crashed from the start.
  for (const MemberId m : inst->group.members()) {
    if (!shared_group_.is_alive(m)) inst->group.crash(m);
  }
  inst->participants = inst->group.alive_count();

  inst->launched_at = now;
  inst->deadline = now + instance_deadline_;

  // Observability chain: node -> checker -> lineage (the checker forwards
  // before checking, so lineage keeps the offending event too).
  runner::ExperimentConfig node_config = xc;
  node_config.gossip.trace = nullptr;
  protocols::gossip::GossipTrace* tail = nullptr;
  if (config_.collect_lineage && substrate_.sim_clock != nullptr &&
      xc.protocol == runner::ProtocolKind::kHierGossip) {
    obs::LineageTracker::Options lopt;
    lopt.group_size = xc.group_size;
    lopt.simulator = substrate_.sim_clock;
    inst->lineage = std::make_unique<obs::LineageTracker>(lopt);
    inst->lineage->capture_hierarchy(*inst->hier);
    tail = inst->lineage.get();
  }
  if (xc.check_invariants && xc.protocol == runner::ProtocolKind::kHierGossip) {
    protocols::InvariantChecker::Config icfg;
    icfg.group_size = xc.group_size;
    icfg.fanout = xc.gossip.k;
    icfg.num_phases = inst->hier->num_phases();
    icfg.scheduler = substrate_.control;
    icfg.audit = inst->audit.get();
    // Theorem 1 is meaningful on the virtual clock; on a real host the
    // instance deadline (a generous multiple of the horizon) plays that
    // role, so scheduler noise cannot fake a violation.
    icfg.deadline =
        substrate_.sim_clock != nullptr
            ? now + runner::protocol_horizon(xc, inst->hier->num_phases())
            : inst->deadline;
    icfg.fail_fast = substrate_.sim_clock != nullptr;
    icfg.concurrent = substrate_.shards > 1;
    icfg.next = tail;
    inst->checker = std::make_unique<protocols::InvariantChecker>(icfg);
    node_config.gossip.trace = inst->checker.get();
  } else {
    node_config.gossip.trace = tail;
  }

  inst->sender = mux_.open_instance(id);

  protocols::NodeEnv base_env;
  base_env.network = inst->sender.get();
  base_env.hierarchy = inst->hier.get();
  base_env.audit = inst->audit.get();
  base_env.arena = inst->arena.get();
  base_env.is_alive = [g = &inst->group](MemberId m) {
    return g->is_alive(m);
  };
  base_env.kind = xc.aggregate;
  base_env.trace = node_config.gossip.trace;

  // All N nodes are constructed (measure_run and the sequential view-RNG
  // consumption both require it); only participants attach and start.
  Rng view_rng = inst_root.derive(runner::streams::kView);
  inst->nodes.reserve(xc.group_size);
  for (const MemberId m : inst->group.members()) {
    protocols::NodeEnv env = base_env;
    env.scheduler = substrate_.scheduler_of(m);
    auto node = runner::make_node(
        node_config, m, inst->votes.of(m),
        runner::make_view(xc, inst->group, m, view_rng), env,
        inst_root.derive(runner::streams::kNodeBase + m.value()));
    if (inst->group.is_alive(m)) inst->sender->attach(m, *node);
    inst->nodes.push_back(std::move(node));
  }
  for (const auto& node : inst->nodes) {
    const MemberId m = node->self();
    if (!inst->group.is_alive(m)) continue;
    // Starting schedules timers, which is only thread-legal on the member's
    // own shard. The liveness re-check covers a crash landing between this
    // post and its execution.
    substrate_.post_to_member(
        m, [node = node.get(), g = &inst->group, m, at = now]() {
          if (g->is_alive(m)) node->start(at);
        });
  }

  live_.emplace(id, std::move(inst));
  ++launched_;
  ++in_flight_;
  sync_telemetry();
}

bool ServiceEngine::instance_done(const Instance& inst) const {
  for (const auto& node : inst.nodes) {
    if (!node->finished() && inst.group.is_alive(node->self())) return false;
  }
  return true;
}

void ServiceEngine::complete(Instance& inst, SimTime now) {
  inst.completed_at = now;
  completion_times_.push_back(now - inst.launched_at);
  inst.network = inst.sender->stats();
  mux_.close_instance(inst.id);
  inst.state = State::kDraining;
  --in_flight_;
  ++completed_count_;
  if (substrate_.telemetry != nullptr) {
    substrate_.telemetry->service().epoch_latency_us.observe(
        static_cast<std::uint64_t>((now - inst.launched_at).ticks()));
  }
  sync_telemetry();
}

void ServiceEngine::fail(Instance& inst) {
  inst.network = inst.sender->stats();
  mux_.close_instance(inst.id);
  inst.state = State::kFailed;
  --in_flight_;
  ++failed_count_;
  sync_telemetry();
  if (inst.checker) {
    // Materialize never-finished violations for the report (collect mode:
    // the UDP substrate never fail-fasts).
    std::vector<MemberId> alive;
    for (const MemberId m : inst.group.members()) {
      if (inst.group.is_alive(m)) alive.push_back(m);
    }
    inst.checker->expect_all_finished(alive);
  }
}

void ServiceEngine::probe_drain(Instance& inst) {
  inst.count_outstanding = true;
  // The nodes' TimerTarget identities; shared so the predicate survives the
  // asynchronous shard hop on the UDP substrate.
  auto targets = std::make_shared<std::vector<const sim::TimerTarget*>>();
  targets->reserve(inst.nodes.size());
  for (const auto& node : inst.nodes) {
    targets->push_back(static_cast<const sim::TimerTarget*>(node.get()));
  }
  std::sort(targets->begin(), targets->end());
  substrate_.count_timers(
      [targets](const sim::TimerTarget* t) {
        return std::binary_search(targets->begin(), targets->end(), t);
      },
      [this, id = inst.id](std::size_t pending) {
        on_drain_count(id, pending);
      });
}

void ServiceEngine::on_drain_count(std::uint32_t id, std::size_t pending) {
  const auto it = live_.find(id);
  if (it == live_.end()) return;
  Instance& inst = *it->second;
  inst.count_outstanding = false;
  if (pending > 0) return;  // linger timers remain; the scan probes again
  finalize(inst, /*teardown=*/true);
  live_.erase(it);
  maybe_done();
}

void ServiceEngine::finalize(Instance& inst, bool teardown) {
  InstanceResult row;
  row.id = inst.id;
  row.completed = true;
  row.launched_at = inst.launched_at;
  row.completed_at = inst.completed_at;
  row.participants = inst.participants;
  row.network = inst.network;
  if (inst.checker) {
    std::vector<MemberId> alive;
    for (const MemberId m : inst.group.members()) {
      if (inst.group.is_alive(m)) alive.push_back(m);
    }
    inst.checker->expect_all_finished(alive);
    row.invariant_violations = inst.checker->violations().size();
    if (!inst.checker->violations().empty()) {
      row.first_violation = inst.checker->violations().front().what;
    }
  }
  row.measurement =
      protocols::measure_run(inst.group, inst.nodes, inst.votes,
                             config_.experiment.aggregate, inst.network,
                             inst.audit.get());
  if (inst.lineage) row.lineage_json = inst.lineage->to_json();
  results_.push_back(std::move(row));
  if (teardown) {
    inst.nodes.clear();
    inst.sender.reset();
    inst.checker.reset();
    inst.lineage.reset();
    arena_pool_.push_back(std::move(inst.arena));
  }
}

void ServiceEngine::scan() {
  const SimTime now = substrate_.control->now();
  try_launches();
  std::vector<std::uint32_t> ids;
  ids.reserve(live_.size());
  for (const auto& [id, inst] : live_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  for (const std::uint32_t id : ids) {
    const auto it = live_.find(id);
    if (it == live_.end()) continue;
    Instance& inst = *it->second;
    if (inst.state == State::kRunning) {
      if (instance_done(inst)) {
        complete(inst, now);
      } else if (now >= inst.deadline) {
        fail(inst);
        parked_.push_back(std::move(it->second));
        live_.erase(it);
        continue;
      }
    }
    if (inst.state == State::kDraining && !inst.count_outstanding) {
      // In the simulator the count resolves inline (possibly finalizing and
      // erasing the instance right here); on UDP it hops the shards and
      // lands back on the control thread later.
      probe_drain(inst);
    }
  }
  try_launches();
  maybe_done();
  if (!done_.load(std::memory_order_relaxed)) {
    substrate_.control->schedule_after(scan_interval_, [this]() { scan(); });
  }
}

void ServiceEngine::maybe_done() {
  if (launched_ == config_.instances && live_.empty() && deferred_.empty()) {
    done_.store(true, std::memory_order_release);
  }
}

ServiceResult ServiceEngine::collect() {
  expects(!collected_, "collect() is single-shot");
  collected_ = true;

  ServiceResult result;
  result.elapsed = substrate_.control->now();

  // Stragglers the event loop abandoned (global deadline / event budget):
  // draining ones did answer — measure them in place, without destroying
  // nodes that may still own scheduled timers; running ones failed.
  for (auto& [id, inst] : live_) {
    if (inst->state == State::kDraining) {
      finalize(*inst, /*teardown=*/false);
    } else if (inst->state == State::kRunning) {
      inst->network = inst->sender->stats();
      mux_.close_instance(inst->id);
      inst->state = State::kFailed;
      --in_flight_;
      ++failed_count_;
      parked_.push_back(std::move(inst));
    }
  }
  live_.clear();

  for (const auto& inst : parked_) {
    InstanceResult row;
    row.id = inst->id;
    row.completed = false;
    row.launched_at = inst->launched_at;
    row.participants = inst->participants;
    row.network = inst->network;
    if (inst->checker) {
      row.invariant_violations = inst->checker->violations().size();
      if (!inst->checker->violations().empty()) {
        row.first_violation = inst->checker->violations().front().what;
      }
    }
    results_.push_back(std::move(row));
  }

  std::sort(results_.begin(), results_.end(),
            [](const InstanceResult& a, const InstanceResult& b) {
              return a.id < b.id;
            });
  result.instances = std::move(results_);

  ServiceMetrics& m = result.metrics;
  m.launched = launched_;
  m.completed = completed_count_;
  m.failed = failed_count_;
  m.deferred = deferred_count_;
  std::sort(completion_times_.begin(), completion_times_.end());
  m.p50_completion = percentile(completion_times_, 0.50);
  m.p90_completion = percentile(completion_times_, 0.90);
  m.p99_completion = percentile(completion_times_, 0.99);
  if (result.elapsed > SimTime::zero()) {
    m.instances_per_sec = static_cast<double>(completed_count_) /
                          (static_cast<double>(result.elapsed.ticks()) / 1e6);
  }
  m.demux = mux_.stats();

  result.completed =
      completed_count_ == config_.instances && failed_count_ == 0;
  return result;
}

std::string lineage_multi_json(const std::vector<InstanceResult>& instances) {
  // The per-instance documents are already serialized JSON objects; the
  // container only nests them, so plain concatenation is exact.
  std::string out = "{\"schema\":\"gridbox-lineage-multi/1\",\"instances\":[";
  bool first = true;
  for (const InstanceResult& inst : instances) {
    if (inst.lineage_json.empty()) continue;
    if (!first) out += ",";
    first = false;
    out += "{\"id\":" + std::to_string(inst.id) + ",\"doc\":";
    out += inst.lineage_json;
    out += "}";
  }
  out += "]}";
  return out;
}

ServiceResult run_service_experiment(const ServiceConfig& config) {
  const runner::ExperimentConfig& xc = config.experiment;
  sim::Simulator simulator;
  simulator.set_event_limit(
      std::max<std::uint64_t>(500'000'000, static_cast<std::uint64_t>(1000) *
                                               xc.group_size *
                                               config.instances));
  const Rng root(xc.seed);

  membership::Group shared_group(xc.group_size);
  net::SimNetwork network(simulator, runner::make_faults(xc),
                          std::make_unique<net::UniformLatency>(xc.latency_lo,
                                                               xc.latency_hi),
                          root.derive(runner::streams::kNet));
  network.set_liveness(
      [&shared_group](MemberId m) { return shared_group.is_alive(m); });
  const net::ChaosSpec chaos = net::ChaosSpec::parse(xc.chaos_spec);
  if (chaos.affects_network()) {
    network.install_chaos(std::make_unique<net::ChaosSchedule>(
        chaos, runner::make_faults(xc), xc.group_size,
        root.derive(runner::streams::kChaos)));
  }

  InstanceMux::Options mopt;
  mopt.group_size = xc.group_size;
  mopt.transport_of = [&network](MemberId) -> net::Transport* {
    return &network;
  };
  mopt.max_instances = config.instances;
  InstanceMux mux(std::move(mopt));
  mux.attach_all();

  ServiceEngine::Substrate substrate;
  substrate.control = &simulator;
  substrate.scheduler_of = [&simulator](MemberId) -> sim::Scheduler* {
    return &simulator;
  };
  substrate.post_to_member = [](MemberId, sim::Action action) { action(); };
  substrate.count_timers =
      [&simulator](std::function<bool(const sim::TimerTarget*)> pred,
                   std::function<void(std::size_t)> done) {
        done(simulator.count_timers_where(pred));
      };
  substrate.sim_clock = &simulator;

  // Live telemetry: the simulator is one shard, so one lane. The sampler
  // ticks on the virtual clock, making the whole JSONL series a pure
  // function of (config, seed) — the determinism tests pin the bytes.
  std::unique_ptr<obs::TelemetryHub> tel_hub;
  std::unique_ptr<obs::TelemetrySampler> tel_sampler;
  if (xc.telemetry.enabled) {
    tel_hub = std::make_unique<obs::TelemetryHub>(1);
    tel_hub->enable_service();
    simulator.set_telemetry(&tel_hub->lane(0));
    substrate.telemetry = tel_hub.get();
    tel_sampler = std::make_unique<obs::TelemetrySampler>(*tel_hub,
                                                          xc.telemetry);
  }

  ServiceEngine engine(config, mux, shared_group, substrate);
  engine.begin();
  if (tel_sampler != nullptr) {
    // The periodic tick rides the same event queue as the run; it stops
    // rescheduling once the stream resolves so the loop below still drains.
    simulator.schedule_periodic(xc.telemetry.interval, xc.telemetry.interval,
                                [&engine, &tel_sampler, &simulator]() {
                                  tel_sampler->sample(simulator.now());
                                  return !engine.finished();
                                });
  }
  const SimTime deadline = engine.global_deadline();
  while (!engine.finished() && !simulator.idle() &&
         simulator.now() <= deadline) {
    (void)simulator.step();
  }
  ServiceResult result = engine.collect();
  // Final sample: the resolved stream's end state always makes the series.
  if (tel_sampler != nullptr) tel_sampler->sample(simulator.now());
  return result;
}

}  // namespace gridbox::service
