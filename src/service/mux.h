// InstanceMux: many concurrent protocol instances over one transport.
//
// The service runtime runs a stream of aggregation queries — each a full
// protocol instance — over ONE shared membership and ONE transport per
// member. The mux is the routing layer that makes that possible:
//
//   - Receive side: every member gets one demux endpoint, attached to the
//     member's raw transport exactly once at setup (so the UDP runtime's fd
//     count is constant no matter how many instances stream through). An
//     arriving frame is strictly envelope-validated (envelope.h) and routed
//     to the addressed instance's endpoint for that member.
//   - Send side: each instance gets an InstanceSender — a net::Transport the
//     instance's nodes hold as their env.network. It wraps every outgoing
//     frame in the instance envelope and forwards it through the sending
//     member's raw transport, keeping per-instance NetworkStats.
//
// Instance ids are handed out monotonically. A frame addressed to an id
// never opened is counted `unknown_instance`; one addressed to an id that
// was opened and has since closed is counted `retired_instance`; a frame
// whose envelope fails validation is counted `malformed_envelope`. All
// three are dropped — never delivered, never a crash — mirroring the strict
// datagram codec one layer down.
//
// Threading: all mutation (open/close/route/demux/send) happens under the
// run's dispatch serialization — the simulator's single thread, or the UDP
// runtime's dispatch mutex (every delivery, timer, and posted action already
// runs under it). The mux therefore takes no locks of its own.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/types.h"
#include "src/net/stats.h"
#include "src/net/transport.h"

namespace gridbox::service {

class InstanceMux;

/// Demultiplexer counters: what happened to envelope-bearing frames.
struct DemuxStats {
  std::uint64_t delivered = 0;           ///< routed to a live instance endpoint
  std::uint64_t malformed_envelope = 0;  ///< failed strict envelope validation
  std::uint64_t unknown_instance = 0;    ///< instance id never opened
  std::uint64_t retired_instance = 0;    ///< instance id opened, since closed
  std::uint64_t unrouted_member = 0;     ///< live instance, member not routed
                                         ///< (non-participant of the epoch)
  std::uint64_t closed_sends = 0;        ///< sends dropped: instance closed
};

/// The per-instance transport: what an instance's protocol nodes hold as
/// their env.network. attach()/detach() populate the instance's routing
/// table inside the mux; send() wraps the instance envelope and forwards
/// through the sending member's raw transport. Owned by the engine's
/// instance record, NOT by the mux — nodes keep their Transport* through
/// the final-phase linger window after the instance closes, and a send in
/// that window must land here (dropped and counted), not on a dangling
/// pointer.
class InstanceSender final : public net::Transport {
 public:
  InstanceSender(InstanceMux& mux, std::uint32_t instance);

  void attach(MemberId id, net::Endpoint& endpoint) override;
  void detach(MemberId id) override;
  void send(net::Message message) override;
  [[nodiscard]] const net::NetworkStats& stats() const override {
    return stats_;
  }

  [[nodiscard]] std::uint32_t instance() const { return instance_; }

 private:
  friend class InstanceMux;  // delivery-side stat updates

  InstanceMux& mux_;
  std::uint32_t instance_ = 0;
  net::NetworkStats stats_;
};

class InstanceMux {
 public:
  struct Options {
    std::size_t group_size = 0;
    /// The raw transport that carries a given member's traffic (the shard
    /// transport in the UDP runtime; the one SimNetwork in the simulator).
    std::function<net::Transport*(MemberId)> transport_of;
  };

  explicit InstanceMux(Options options);
  InstanceMux(const InstanceMux&) = delete;
  InstanceMux& operator=(const InstanceMux&) = delete;

  /// Attaches one demux endpoint per member to its raw transport. Call once
  /// at setup, before any instance opens; sockets bind here (UDP) and stay
  /// bound for the whole service run.
  void attach_all();

  /// Detaches every demux endpoint (teardown symmetry; optional when the
  /// transports are destroyed right after anyway).
  void detach_all();

  /// Opens instance `id` and returns its sender. Ids must be handed out in
  /// increasing order with no gaps — the monotone id space is what lets the
  /// demux distinguish a retired instance from one that never existed.
  [[nodiscard]] std::unique_ptr<InstanceSender> open_instance(
      std::uint32_t id);

  /// Closes instance `id`: frames addressed to it count retired from now
  /// on, and its sender's send() calls drop (counted closed_sends). The
  /// routing slot is freed — per-instance memory does not grow with the
  /// epoch stream.
  void close_instance(std::uint32_t id);

  [[nodiscard]] bool is_open(std::uint32_t id) const {
    return instances_.find(id) != instances_.end();
  }

  [[nodiscard]] std::uint32_t instances_opened() const { return next_id_; }
  [[nodiscard]] const DemuxStats& stats() const { return stats_; }

 private:
  friend class InstanceSender;

  /// One live instance's routing state. The sender pointer aliases the
  /// engine-owned InstanceSender so the delivery path can update its
  /// per-instance stats.
  struct Slot {
    std::vector<net::Endpoint*> routes;  ///< by member id; null = unrouted
    InstanceSender* sender = nullptr;
  };

  /// One member's receive port: the Endpoint attached to the raw transport.
  class MemberPort final : public net::Endpoint {
   public:
    MemberPort(InstanceMux& mux, MemberId self) : mux_(mux), self_(self) {}
    void on_message(const net::Message& message) override {
      mux_.demux(self_, message);
    }

   private:
    InstanceMux& mux_;
    MemberId self_;
  };

  void demux(MemberId self, const net::Message& outer);
  void route(std::uint32_t instance, MemberId member, net::Endpoint& endpoint);
  void unroute(std::uint32_t instance, MemberId member);
  void forward(InstanceSender& sender, net::Message message);

  Options options_;
  std::vector<std::unique_ptr<MemberPort>> ports_;  ///< by member id
  std::unordered_map<std::uint32_t, Slot> instances_;
  std::uint32_t next_id_ = 0;
  DemuxStats stats_;
  bool attached_ = false;
};

}  // namespace gridbox::service
