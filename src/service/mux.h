// InstanceMux: many concurrent protocol instances over one transport.
//
// The service runtime runs a stream of aggregation queries — each a full
// protocol instance — over ONE shared membership and ONE transport per
// member. The mux is the routing layer that makes that possible:
//
//   - Receive side: every member gets one demux endpoint, attached to the
//     member's raw transport exactly once at setup (so the UDP runtime's fd
//     count is constant no matter how many instances stream through). An
//     arriving frame is strictly envelope-validated (envelope.h) and routed
//     to the addressed instance's endpoint for that member.
//   - Send side: each instance gets an InstanceSender — a net::Transport the
//     instance's nodes hold as their env.network. It wraps every outgoing
//     frame in the instance envelope and forwards it through the sending
//     member's raw transport, keeping per-instance NetworkStats.
//
// Instance ids are handed out monotonically. A frame addressed to an id
// never opened is counted `unknown_instance`; one addressed to an id that
// was opened and has since closed is counted `retired_instance`; a frame
// whose envelope fails validation is counted `malformed_envelope`. All
// three are dropped — never delivered, never a crash — mirroring the strict
// datagram codec one layer down.
//
// Threading (DESIGN.md §14): there is no dispatch lock. Control-plane calls
// (open/close/route/unroute, attach_all/detach_all, stats()) are made by
// ONE thread — the engine's control shard (the simulator thread in the sim
// substrate). Data-plane calls run concurrently on every reactor shard:
// demux(self, ...) on self's owning shard, forward(...) on the sending
// member's shard. The two planes meet lock-free:
//
//   - Instance slots are preallocated (Options::max_instances) and each
//     carries an atomic lifecycle state (unopened -> open -> retired, never
//     reused). open_instance publishes the slot with a release store of the
//     state and then of next_id_; demux acquires next_id_ first, so any id
//     below it has a fully visible slot. close_instance only flips the
//     state to retired — routes and the sender pointer stay intact, and the
//     engine's drain handshake (a count_timers hop through every shard)
//     guarantees no demux that saw the slot open is still running when the
//     instance's nodes and sender are destroyed.
//   - Counters are per-shard lanes (cache-line sized, single-writer), merged
//     in shard order by the control-plane stats() readers.
//
// One honest caveat: a datagram can physically cross the kernel between two
// shards faster than an unrelated atomic store propagates, so a shard may
// transiently miss a just-opened instance (counted unknown_instance) or a
// just-added route (counted unrouted_member). Both count as datagram drops,
// which the protocol already tolerates; in practice store visibility is
// orders of magnitude faster than a syscall round trip, and the engine's
// post() of every node start hands the opening writes to the node's own
// shard before it can send a single frame.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/common/types.h"
#include "src/net/stats.h"
#include "src/net/transport.h"

namespace gridbox::service {

class InstanceMux;

/// Demultiplexer counters: what happened to envelope-bearing frames.
struct DemuxStats {
  std::uint64_t delivered = 0;           ///< routed to a live instance endpoint
  std::uint64_t malformed_envelope = 0;  ///< failed strict envelope validation
  std::uint64_t unknown_instance = 0;    ///< instance id never opened
  std::uint64_t retired_instance = 0;    ///< instance id opened, since closed
  std::uint64_t unrouted_member = 0;     ///< live instance, member not routed
                                         ///< (non-participant of the epoch)
  std::uint64_t closed_sends = 0;        ///< sends dropped: instance closed
};

/// The per-instance transport: what an instance's protocol nodes hold as
/// their env.network. attach()/detach() populate the instance's routing
/// table inside the mux; send() wraps the instance envelope and forwards
/// through the sending member's raw transport. Owned by the engine's
/// instance record, NOT by the mux — nodes keep their Transport* through
/// the final-phase linger window after the instance closes, and a send in
/// that window must land here (dropped and counted), not on a dangling
/// pointer. Stats are kept in per-shard lanes (send side writes the sending
/// member's lane, delivery side the receiving member's); stats() merges
/// them in shard order and must only be called from the control thread.
class InstanceSender final : public net::Transport {
 public:
  InstanceSender(InstanceMux& mux, std::uint32_t instance);

  void attach(MemberId id, net::Endpoint& endpoint) override;
  void detach(MemberId id) override;
  void send(net::Message message) override;
  [[nodiscard]] const net::NetworkStats& stats() const override;

  [[nodiscard]] std::uint32_t instance() const { return instance_; }

 private:
  friend class InstanceMux;  // delivery-side stat updates

  /// One shard's share of the sender's traffic counters. Each lane has a
  /// single writer (its shard thread); relaxed ops suffice, merges happen
  /// after a stronger ordering point (the drain handshake or thread join).
  struct alignas(64) Lane {
    std::atomic<std::uint64_t> messages_sent{0};
    std::atomic<std::uint64_t> bytes_sent{0};
    std::atomic<std::uint64_t> messages_delivered{0};
    std::atomic<std::uint64_t> messages_dead_dest{0};
  };

  InstanceMux& mux_;
  std::uint32_t instance_ = 0;
  std::unique_ptr<Lane[]> lanes_;             ///< one per shard
  mutable net::NetworkStats merged_;          ///< stats() scratch (control thread)
};

class InstanceMux {
 public:
  struct Options {
    std::size_t group_size = 0;
    /// The raw transport that carries a given member's traffic (the shard
    /// transport in the UDP runtime; the one SimNetwork in the simulator).
    std::function<net::Transport*(MemberId)> transport_of;
    /// Upper bound on instance ids ever opened: slots are preallocated so
    /// the demux path can index them without locks or rehashing. The engine
    /// passes its configured instance count; the default covers direct use.
    std::size_t max_instances = 1024;
    /// Reactor shards feeding the data plane; sizes the stat lanes.
    std::size_t shard_count = 1;
    /// Maps a member to its owning shard (stat lane selection). Unset means
    /// everything on lane 0 (the simulator substrate, single-shard runs).
    std::function<std::size_t(MemberId)> shard_of;
  };

  explicit InstanceMux(Options options);
  InstanceMux(const InstanceMux&) = delete;
  InstanceMux& operator=(const InstanceMux&) = delete;

  /// Attaches one demux endpoint per member to its raw transport. Call once
  /// at setup, before any instance opens; sockets bind here (UDP) and stay
  /// bound for the whole service run.
  void attach_all();

  /// Detaches every demux endpoint (teardown symmetry; optional when the
  /// transports are destroyed right after anyway).
  void detach_all();

  /// Opens instance `id` and returns its sender. Ids must be handed out in
  /// increasing order with no gaps — the monotone id space is what lets the
  /// demux distinguish a retired instance from one that never existed.
  /// Control thread only.
  [[nodiscard]] std::unique_ptr<InstanceSender> open_instance(
      std::uint32_t id);

  /// Closes instance `id`: frames addressed to it count retired from now
  /// on, and its sender's send() calls drop (counted closed_sends). The
  /// slot's routing table is retained (bounded by max_instances) so demuxes
  /// racing the close on other shards never chase a freed pointer; the
  /// routed endpoints themselves must outlive the engine's drain handshake.
  /// Control thread only.
  void close_instance(std::uint32_t id);

  /// Thread-safe (acquire load of the slot state).
  [[nodiscard]] bool is_open(std::uint32_t id) const {
    return id < options_.max_instances &&
           slots_[id].state.load(std::memory_order_acquire) == kOpen;
  }

  [[nodiscard]] std::uint32_t instances_opened() const {
    return next_id_.load(std::memory_order_acquire);
  }

  /// Demux counters merged over the per-shard lanes, in shard order.
  /// Control thread (or post-join) only: a mid-run merge on another thread
  /// would be a valid but torn snapshot.
  [[nodiscard]] DemuxStats stats() const;

 private:
  friend class InstanceSender;

  /// Slot lifecycle. Monotone per slot: kUnopened -> kOpen -> kRetired.
  enum : std::uint8_t { kUnopened = 0, kOpen = 1, kRetired = 2 };

  /// One instance's routing state, preallocated and never reused. The
  /// sender pointer aliases the engine-owned InstanceSender so the delivery
  /// path can update its per-instance stats.
  struct Slot {
    std::atomic<std::uint8_t> state{kUnopened};
    /// By member id; null = unrouted. Allocated at open, published by the
    /// release store of `state`, retained past retirement.
    std::unique_ptr<std::atomic<net::Endpoint*>[]> routes;
    InstanceSender* sender = nullptr;
  };

  /// One shard's share of the demux counters (single writer: that shard).
  struct alignas(64) Lane {
    std::atomic<std::uint64_t> delivered{0};
    std::atomic<std::uint64_t> malformed_envelope{0};
    std::atomic<std::uint64_t> unknown_instance{0};
    std::atomic<std::uint64_t> retired_instance{0};
    std::atomic<std::uint64_t> unrouted_member{0};
    std::atomic<std::uint64_t> closed_sends{0};
  };

  /// One member's receive port: the Endpoint attached to the raw transport.
  class MemberPort final : public net::Endpoint {
   public:
    MemberPort(InstanceMux& mux, MemberId self) : mux_(mux), self_(self) {}
    void on_message(const net::Message& message) override {
      mux_.demux(self_, message);
    }

   private:
    InstanceMux& mux_;
    MemberId self_;
  };

  [[nodiscard]] std::size_t lane_of(MemberId member) const {
    return options_.shard_of ? options_.shard_of(member) : 0;
  }

  void demux(MemberId self, const net::Message& outer);
  void route(std::uint32_t instance, MemberId member, net::Endpoint& endpoint);
  void unroute(std::uint32_t instance, MemberId member);
  void forward(InstanceSender& sender, net::Message message);

  Options options_;
  std::vector<std::unique_ptr<MemberPort>> ports_;  ///< by member id
  std::unique_ptr<Slot[]> slots_;                   ///< by instance id
  std::unique_ptr<Lane[]> lanes_;                   ///< by shard
  std::atomic<std::uint32_t> next_id_{0};
  bool attached_ = false;
};

}  // namespace gridbox::service
