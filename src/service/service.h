// Aggregation as a service: a stream of concurrent protocol instances.
//
// The paper treats one aggregation as one protocol run. A long-lived
// deployment instead answers a *stream* of aggregate queries — a new epoch
// launches on a fixed cadence while its predecessors are still draining.
// The ServiceEngine is that runtime: it multiplexes many concurrent
// instances over ONE shared membership, ONE transport per member (via
// InstanceMux), and ONE event engine, on either substrate (simulator or
// UDP reactors) through the Substrate seam.
//
// Instance lifecycle:
//   launch    — a fresh world (votes, hash salt, hierarchy, audit, nodes)
//               derived from Rng(seed).derive(kInstanceWorld).derive(id);
//               participants are the members alive in the shared group at
//               launch. Launches respect the max_in_flight window: an epoch
//               due while the window is full is deferred, launching (in id
//               order) as soon as a slot frees.
//   running   — nodes execute; crashes in the shared liveness view fan into
//               every running instance's own membership view.
//   draining  — every participant finished (or died): the instance closes
//               in the mux (late frames count `retired_instance`) and waits
//               for its nodes' remaining timers — the final-phase linger —
//               to expire. Closing stops deliveries, so no new timers
//               appear: the pending count is monotone non-increasing.
//   completed — timers quiescent: the run is measured (measure_run + the
//               per-instance invariant checker), the arena returns to the
//               recycle pool, and the nodes are destroyed. Per-instance
//               memory does not grow with the length of the epoch stream.
//   failed    — the instance deadline passed first: it closes in the mux
//               and is parked (nodes kept alive but unreachable) until
//               engine teardown; its violations are reported.
//
// Churn: `join M at=T` marks M absent from service start (it participates
// in no instance) until T, when it enters the shared view again and is a
// participant of every instance launched from the next epoch on — joiners
// enter at epoch boundaries, never mid-instance. `recover M at=T` re-enters
// a (chaos-)crashed member the same way. Running instances never resurrect
// a member: their membership view only shrinks.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/agg/audit.h"
#include "src/agg/vote.h"
#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/hashing/hash_function.h"
#include "src/hierarchy/hierarchy.h"
#include "src/membership/crash_model.h"
#include "src/membership/group.h"
#include "src/net/chaos.h"
#include "src/net/stats.h"
#include "src/obs/lineage.h"
#include "src/protocols/arena.h"
#include "src/protocols/invariant_checker.h"
#include "src/protocols/node.h"
#include "src/protocols/protocol_stats.h"
#include "src/runner/config.h"
#include "src/service/mux.h"
#include "src/sim/scheduler.h"
#include "src/sim/simulator.h"

namespace gridbox::service {

/// Stream tag for per-instance world derivation: instance i's root is
/// Rng(seed).derive(kInstanceWorld).derive(i), so instance worlds are
/// independent of each other and of every runner::streams tag.
inline constexpr std::uint64_t kInstanceWorld = 0x5E;

struct ServiceConfig {
  /// The per-instance experiment (protocol, group size, loss, chaos, ...).
  /// chaos_spec here MAY contain join/recover directives — the service
  /// engine is the one runtime that honors them.
  runner::ExperimentConfig experiment;

  /// Total instances to stream through the service.
  std::size_t instances = 8;

  /// Launch cadence: instance i is due at i * epoch_interval.
  SimTime epoch_interval = SimTime::millis(50);

  /// Bounded in-flight window: a due launch defers while this many
  /// instances are running (draining ones have answered; they don't count).
  std::size_t max_in_flight = 8;

  /// Per-instance deadline = max(min_deadline, deadline_factor * horizon).
  double deadline_factor = 20.0;
  SimTime min_deadline = SimTime::seconds(5);

  /// Attach a per-instance LineageTracker (simulator substrate only) and
  /// return its JSON per instance — input of `gridbox_explain --instance`.
  bool collect_lineage = false;
};

/// Outcome of one instance of the stream.
struct InstanceResult {
  std::uint32_t id = 0;
  bool completed = false;
  SimTime launched_at = SimTime::zero();
  SimTime completed_at = SimTime::zero();
  /// Members alive in the shared group at launch (the epoch's cohort).
  std::size_t participants = 0;
  protocols::RunMeasurement measurement;
  net::NetworkStats network;
  std::size_t invariant_violations = 0;
  std::string first_violation;
  /// "gridbox-lineage/1" document (collect_lineage runs only).
  std::string lineage_json;
};

/// Service-level throughput/latency metrics.
struct ServiceMetrics {
  std::size_t launched = 0;
  std::size_t completed = 0;
  std::size_t failed = 0;
  /// Launches that were deferred at their due epoch (window full).
  std::size_t deferred = 0;
  /// Completion-time (launch -> every participant finished) percentiles.
  SimTime p50_completion = SimTime::zero();
  SimTime p90_completion = SimTime::zero();
  SimTime p99_completion = SimTime::zero();
  /// Completed instances per second of engine time.
  double instances_per_sec = 0.0;
  DemuxStats demux;
};

struct ServiceResult {
  /// Every instance completed and none failed.
  bool completed = false;
  SimTime elapsed = SimTime::zero();
  std::vector<InstanceResult> instances;  ///< sorted by id
  ServiceMetrics metrics;
};

/// The service engine. Substrate-agnostic: all scheduling goes through the
/// Substrate seam, so the same engine drives the simulator and the UDP
/// reactor mesh. There is no dispatch lock (DESIGN.md §14): every callback
/// the engine schedules runs on the control shard's thread (the simulator
/// thread in the sim substrate), so the engine's own bookkeeping is
/// single-threaded by construction. What other shards touch concurrently
/// is safe on its own terms — node completion and Group liveness are
/// atomic, the mux is lock-free, `done_` (the run_until probe every shard
/// reads) is an atomic flag, and with `Substrate::shards > 1` each
/// instance's audit registry and invariant checker are armed for
/// concurrent trace events.
class ServiceEngine {
 public:
  struct Substrate {
    /// Scheduler for engine bookkeeping (launch clock, scan, churn script).
    /// UDP: reactor 0. All begin()-time scheduling happens on it.
    sim::Scheduler* control = nullptr;
    /// Scheduler owning a given member's timers (its shard reactor).
    std::function<sim::Scheduler*(MemberId)> scheduler_of;
    /// Runs an action on the member's shard (inline in the simulator;
    /// Reactor::post on UDP). Used to start nodes on their own shard, where
    /// scheduling is thread-legal.
    std::function<void(MemberId, sim::Action)> post_to_member;
    /// Counts pending timers matching `pred` across every shard, then calls
    /// `done(count)` back on the control scheduler. The engine's drain
    /// detection: an instance's nodes are quiescent when the count is zero.
    std::function<void(std::function<bool(const sim::TimerTarget*)>,
                       std::function<void(std::size_t)>)>
        count_timers;
    /// Non-null on the simulator substrate: enables Theorem-1 checker
    /// deadlines, fail-fast invariants, and lineage timestamping.
    const sim::Simulator* sim_clock = nullptr;
    /// Reactor shard threads driving the run (1 on the simulator). With
    /// more than one, the engine arms each instance's audit registry and
    /// invariant checker for concurrent trace events.
    std::size_t shards = 1;
    /// Live telemetry hub (non-owning; may be null). The engine fills the
    /// service section — launch/complete/fail/defer counts, window
    /// occupancy gauges, the epoch-latency histogram — all on the control
    /// thread, where the sampler also runs.
    obs::TelemetryHub* telemetry = nullptr;
  };

  /// `mux` must be attached; `shared_group` is the service's liveness view
  /// (the transports' liveness oracle must read it). Both must outlive the
  /// engine.
  ServiceEngine(const ServiceConfig& config, InstanceMux& mux,
                membership::Group& shared_group, Substrate substrate);
  ServiceEngine(const ServiceEngine&) = delete;
  ServiceEngine& operator=(const ServiceEngine&) = delete;

  /// Schedules the whole service: epoch launches, the periodic scan, the
  /// churn script, and the per-round crash clock. Call once, before the
  /// event loop runs (UDP: before the reactor threads start).
  void begin();

  /// True once every instance has been launched and resolved (completed or
  /// failed). The event loop's done() probe — every shard thread reads it,
  /// so it is a bare atomic load (set once, on the control thread).
  [[nodiscard]] bool finished() const {
    return done_.load(std::memory_order_acquire);
  }

  /// Backstop deadline for the event loop: generous serial worst case.
  [[nodiscard]] SimTime global_deadline() const { return global_deadline_; }

  /// Builds the final result. Call once, after the event loop has stopped.
  /// Instances still draining are measured in place; instances still
  /// running are reported failed.
  [[nodiscard]] ServiceResult collect();

 private:
  enum class State : std::uint8_t { kRunning, kDraining, kFailed };

  /// One live instance: its own world over the shared members.
  struct Instance {
    Instance(std::uint32_t instance_id, membership::Group g, agg::VoteTable v)
        : id(instance_id), group(std::move(g)), votes(std::move(v)) {}

    std::uint32_t id = 0;
    State state = State::kRunning;
    SimTime launched_at = SimTime::zero();
    SimTime deadline = SimTime::zero();
    SimTime completed_at = SimTime::zero();
    std::size_t participants = 0;
    /// The instance's own membership view: participants alive, everyone
    /// else crashed. Shrinks with shared-group crashes while running;
    /// frozen from draining on (so measurement is stable).
    membership::Group group;
    agg::VoteTable votes;
    std::unique_ptr<hashing::HashFunction> hash;
    std::unique_ptr<hierarchy::GridBoxHierarchy> hier;
    std::unique_ptr<agg::AuditRegistry> audit;
    std::unique_ptr<protocols::StateArena> arena;
    std::unique_ptr<obs::LineageTracker> lineage;
    std::unique_ptr<protocols::InvariantChecker> checker;
    std::unique_ptr<InstanceSender> sender;
    std::vector<std::unique_ptr<protocols::ProtocolNode>> nodes;
    /// Snapshot of the sender's stats, taken when the instance closes.
    net::NetworkStats network;
    /// A count_timers probe is in flight (UDP: it resolves asynchronously).
    bool count_outstanding = false;
  };

  void on_launch_due(std::uint32_t id);
  void try_launches();
  void launch(std::uint32_t id);
  void scan();
  [[nodiscard]] bool instance_done(const Instance& inst) const;
  void complete(Instance& inst, SimTime now);
  void fail(Instance& inst);
  void probe_drain(Instance& inst);
  void on_drain_count(std::uint32_t id, std::size_t pending);
  /// Measures a drained instance into results_. With `teardown`, also
  /// destroys its nodes and recycles its arena (only legal when quiescent
  /// or after the event loop stopped).
  void finalize(Instance& inst, bool teardown);
  void fan_crash(MemberId member);
  void crash_tick();
  void maybe_done();
  /// Mirrors the engine's stream counters into the telemetry hub's service
  /// section (no-op when telemetry is off). Control thread only.
  void sync_telemetry();
  [[nodiscard]] std::size_t running_count() const;

  ServiceConfig config_;
  InstanceMux& mux_;
  membership::Group& shared_group_;
  Substrate substrate_;
  net::ChaosSpec chaos_;
  membership::PerRoundCrash crash_model_;
  Rng crash_rng_;
  std::uint64_t crash_round_ = 0;

  SimTime scan_interval_ = SimTime::zero();
  SimTime instance_deadline_ = SimTime::zero();
  SimTime global_deadline_ = SimTime::zero();

  std::unordered_map<std::uint32_t, std::unique_ptr<Instance>> live_;
  std::vector<std::unique_ptr<Instance>> parked_;  ///< failed, kept to teardown
  std::deque<std::uint32_t> deferred_;
  std::vector<std::unique_ptr<protocols::StateArena>> arena_pool_;
  std::vector<InstanceResult> results_;
  std::vector<SimTime> completion_times_;

  std::size_t launched_ = 0;
  std::size_t in_flight_ = 0;
  std::size_t completed_count_ = 0;
  std::size_t failed_count_ = 0;
  std::size_t deferred_count_ = 0;
  /// Written on the control thread; probed by every shard's run_until.
  std::atomic<bool> done_{false};
  bool collected_ = false;
};

/// One full service run on the simulator substrate. Deterministic in
/// config (including config.experiment.seed).
[[nodiscard]] ServiceResult run_service_experiment(const ServiceConfig& config);

/// Bundles the per-instance "gridbox-lineage/1" documents of a
/// collect_lineage run into one "gridbox-lineage-multi/1" container —
/// the multi-instance input of `gridbox_explain --instance ID`. Instances
/// without lineage (failed, or lineage off) are omitted.
[[nodiscard]] std::string lineage_multi_json(
    const std::vector<InstanceResult>& instances);

}  // namespace gridbox::service
