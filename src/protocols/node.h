// Framework shared by every aggregation protocol.
//
// A protocol is a set of per-member state machines (ProtocolNode) driven by
// a scheduler's clock (simulated or real) and a transport's deliveries.
// Nodes act only on
//   - their own configuration and view,
//   - the well-known hierarchy parameters (H, K, N-estimate), and
//   - received messages;
// they never read the experiment's ground truth. The one exception is the
// liveness oracle: a crashed process simply stops executing, which we model
// by nodes checking their own liveness before acting.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "src/agg/aggregate.h"
#include "src/agg/audit.h"
#include "src/agg/vote.h"
#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/hierarchy/hierarchy.h"
#include "src/membership/view.h"
#include "src/net/transport.h"
#include "src/protocols/arena.h"
#include "src/protocols/gossip/trace.h"
#include "src/sim/scheduler.h"

namespace gridbox::protocols {

/// Everything a node needs from its environment. All pointers are non-owning
/// and must outlive the node; `audit` may be null (audit off).
///
/// `scheduler` and `network` are the two abstraction seams that make the
/// same node code run in the simulator and over real UDP sockets: the world
/// that builds the node decides which implementations back them.
struct NodeEnv {
  sim::Scheduler* scheduler = nullptr;
  net::Transport* network = nullptr;
  const hierarchy::GridBoxHierarchy* hierarchy = nullptr;
  agg::AuditRegistry* audit = nullptr;  // nullable
  /// Shared struct-of-arrays state for the run's nodes (nullable: a node
  /// without one gets a private single-slot arena).
  StateArena* arena = nullptr;  // nullable
  /// Liveness of *this* node: a crashed process stops executing.
  std::function<bool(MemberId)> is_alive;
  agg::AggregateKind kind = agg::AggregateKind::kAverage;
  /// Observability chain shared by every protocol (nullable). Hierarchical
  /// gossip keeps its own GossipConfig::trace; baselines emit through this.
  gossip::GossipTrace* trace = nullptr;  // nullable
  /// Fires once when this node sets its outcome (nullable; sim runs leave
  /// it unset). The sharded UDP runtimes hook it to tick their per-shard
  /// completion counters instead of scanning every node from done().
  /// Called on the node's own dispatch thread, after finished() is true.
  std::function<void(MemberId)> on_finished;
};

/// Final outcome at one member.
struct NodeOutcome {
  bool finished = false;              ///< protocol terminated at this member
  agg::Partial estimate;              ///< its global aggregate estimate
  std::uint64_t audit_token = agg::kNoAuditToken;
  SimTime finish_time = SimTime::zero();
};

class ProtocolNode : public net::Endpoint, public sim::TimerTarget {
 public:
  /// `vote` is this member's own input; `view` the members it knows about.
  ProtocolNode(MemberId self, double vote, membership::View view, NodeEnv env,
               Rng rng);
  ~ProtocolNode() override = default;

  /// Schedules this node's behaviour starting at `at`. Called once.
  virtual void start(SimTime at) = 0;

  [[nodiscard]] MemberId self() const { return self_; }
  [[nodiscard]] double own_vote() const { return arena_->vote(slot_); }
  [[nodiscard]] const membership::View& view() const { return view_; }

  [[nodiscard]] const NodeOutcome& outcome() const { return outcome_; }

  /// True once the protocol terminated at this member. Safe to read from
  /// other threads (atomic, acquire): a true result publishes the outcome
  /// fields written before the release store in set_outcome. The sharded
  /// runtimes probe this cross-shard (crash clock, service completion
  /// scan) while the owning shard is still dispatching.
  [[nodiscard]] bool finished() const {
    return finished_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::uint64_t messages_sent() const {
    return arena_->messages_sent(slot_);
  }
  [[nodiscard]] std::uint64_t rounds_executed() const {
    return arena_->round(slot_);
  }

 protected:
  [[nodiscard]] sim::Scheduler& scheduler() { return *env_.scheduler; }
  [[nodiscard]] net::Transport& network() { return *env_.network; }
  [[nodiscard]] const hierarchy::GridBoxHierarchy& hier() const {
    return *env_.hierarchy;
  }
  [[nodiscard]] agg::AuditRegistry* audit() { return env_.audit; }
  [[nodiscard]] gossip::GossipTrace* env_trace() { return env_.trace; }
  [[nodiscard]] agg::AggregateKind kind() const { return env_.kind; }
  [[nodiscard]] Rng& rng() { return rng_; }

  [[nodiscard]] bool alive() const {
    return !env_.is_alive || env_.is_alive(self_);
  }

  /// Sends a wire frame to `to`, with bookkeeping. The frame is copied into
  /// the message by value — no heap allocation on this path.
  void send_to(MemberId to, const net::Frame& frame);

  /// sim::TimerTarget: the typed periodic-round timer calls this; the default
  /// forwards to on_round(). Protocols with a single round loop just override
  /// on_round(); ones with several timers may override on_timer directly.
  [[nodiscard]] bool on_timer(std::uint32_t timer_id) override;

  /// One protocol round tick; return true to keep the round timer armed.
  /// Default: stop (protocols without a round loop never arm the timer).
  [[nodiscard]] virtual bool on_round() { return false; }

  /// Arms the typed periodic round timer: on_round() fires at `start` and
  /// then every `interval` while it returns true. Allocation-free per tick.
  void start_rounds(SimTime start, SimTime interval);

  /// Registers this node's own vote with the audit registry (token 0 if
  /// audit is off) and records it in the arena's audit-token lane. Call
  /// once during start().
  [[nodiscard]] std::uint64_t register_own_vote();

  void count_round() { ++arena_->round(slot_); }
  void set_outcome(agg::Partial estimate, std::uint64_t token);

  /// The run's state arena and this node's slot in it. Protocols keep
  /// hot per-member scalars (phase, round budget) in arena lanes rather
  /// than member fields.
  [[nodiscard]] StateArena& arena() { return *arena_; }
  [[nodiscard]] const StateArena& arena() const { return *arena_; }
  [[nodiscard]] std::size_t slot() const { return slot_; }

 private:
  MemberId self_;
  membership::View view_;
  NodeEnv env_;
  std::unique_ptr<StateArena> solo_arena_;  // only when env.arena is null
  StateArena* arena_;
  std::size_t slot_;
  Rng rng_;
  NodeOutcome outcome_;
  /// Mirrors outcome_.finished for lock-free cross-thread reads; the
  /// release store in set_outcome publishes the full outcome_ record.
  std::atomic<bool> finished_{false};
};

}  // namespace gridbox::protocols
