// Always-on run invariants for Hierarchical Gossiping.
//
// An InvariantChecker is a GossipTrace that validates protocol behaviour
// *while the run executes*, not at measurement time. It enforces the
// machine-checkable core of the paper's claims: phase indices only move
// forward (§6.3 phase structure), the vote count behind a member's estimate
// never decreases, every merge combines disjoint vote sets (§2
// no-double-counting, via AuditRegistry deltas observed at the merge's own
// conclusion event), values are only learned for in-range slots, and all
// trace activity stays within the ⌈C·log_M N⌉ × num_phases deadline
// (Theorem 1). A violation carries member/phase/time context and, by
// default, fails fast by throwing InvariantError out of the simulator loop.
//
// The checker chains: forward events to `next` to stack it with a recording
// or logging trace. Forwarding happens before checking, so a chained
// recorder keeps the offending event even when the checker throws.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/agg/audit.h"
#include "src/common/types.h"
#include "src/protocols/gossip/trace.h"
#include "src/sim/scheduler.h"

namespace gridbox::protocols {

/// One detected invariant violation, with enough context to localize it.
struct InvariantViolation {
  MemberId member;
  std::size_t phase = 0;
  SimTime at = SimTime::zero();
  std::string what;
};

class InvariantChecker final : public gossip::GossipTrace {
 public:
  struct Config {
    /// Group size; bounds phase-1 value indices (vote origins).
    std::size_t group_size = 0;
    /// Hierarchy fanout K; bounds phase >= 2 value indices (child slots).
    /// 0 disables the slot-range check.
    std::size_t fanout = 0;
    /// Highest legal phase index. 0 disables the phase-range check.
    std::size_t num_phases = 0;
    /// Clock for violation timestamps and the deadline check (optional).
    const sim::Scheduler* scheduler = nullptr;
    /// When set, merge disjointness is checked at every phase conclusion by
    /// watching this registry's violation counter (optional).
    const agg::AuditRegistry* audit = nullptr;
    /// Trace events after this time violate the termination bound
    /// (Theorem 1). zero() disables the deadline check.
    SimTime deadline = SimTime::zero();
    /// Throw InvariantError at the first violation (after recording it).
    bool fail_fast = true;
    /// Trace events arrive from several reactor shards concurrently. Each
    /// member's events still come from one thread (its owning shard), so
    /// per-member state stays lock-free; only the shared violation list and
    /// the audit-delta watermark take an internal mutex. In this mode the
    /// audit-delta attribution is best-effort: a counter jump observed at
    /// one member's conclusion may have been caused by a concurrent merge
    /// on another shard (the violation is still recorded exactly once).
    bool concurrent = false;
    /// Downstream trace to forward every event to (optional).
    gossip::GossipTrace* next = nullptr;
  };

  explicit InvariantChecker(Config config);

  void on_phase_entered(MemberId member, std::size_t phase) override;
  void on_round_gossiped(MemberId member, std::size_t phase,
                         std::uint32_t fanout) override;
  void on_value_learned(MemberId member, std::size_t phase,
                        std::uint32_t index) override;
  void on_knowledge_gained(MemberId member, std::size_t phase,
                           std::uint32_t index, MemberId from,
                           std::uint32_t votes,
                           gossip::GainKind kind) override;
  void on_phase_concluded(MemberId member, std::size_t phase,
                          gossip::PhaseEnd how, std::uint32_t votes) override;
  void on_finished(MemberId member, std::uint32_t votes) override;

  /// Post-run check: records a violation for every member of `members` that
  /// never reported on_finished (call with the members still alive at the
  /// end of the run; crashed members legitimately never finish).
  void expect_all_finished(const std::vector<MemberId>& members);

  /// Read after the run's shard threads joined (never mid-run when
  /// Config::concurrent).
  [[nodiscard]] const std::vector<InvariantViolation>& violations() const {
    return violations_;
  }
  [[nodiscard]] std::size_t finished_count() const {
    return finished_count_.load(std::memory_order_acquire);
  }

 private:
  struct MemberState {
    std::size_t last_entered = 0;    // highest phase entered
    std::size_t last_concluded = 0;  // highest phase concluded
    std::uint32_t votes = 0;         // votes behind the latest conclusion
    bool finished = false;
  };

  [[nodiscard]] SimTime now() const;
  [[nodiscard]] MemberState& state_of(MemberId member);
  void check_deadline(MemberId member, std::size_t phase, const char* event);
  /// Shared range checks for on_value_learned / on_knowledge_gained.
  void check_learn(MemberId member, std::size_t phase, std::uint32_t index);
  /// Records (and, under fail_fast, throws) a violation.
  void violate(MemberId member, std::size_t phase, std::string what);

  Config config_;
  /// index = member id value; one extra overflow slot at [group_size] that
  /// all out-of-range ids clamp to (fixed size — never resized, so shard
  /// threads can index their own members' entries lock-free).
  std::vector<MemberState> states_;
  std::vector<InvariantViolation> violations_;
  std::uint64_t audit_violations_seen_ = 0;
  std::atomic<std::size_t> finished_count_{0};
  /// Guards violations_ and audit_violations_seen_ when Config::concurrent.
  mutable std::mutex mutex_;
};

}  // namespace gridbox::protocols
