// A gossip-style failure detection service (paper reference [16]:
// van Renesse, Minsky & Hayden, "A gossip-style failure detection service",
// Middleware '98).
//
// Why it is in this repo: §6.2 argues that leader-election approaches to
// aggregation either lose whole subtrees on leader crashes or "require the
// use of accurate failure detectors". This module implements that missing
// substrate so the claim can be *measured*: bench/cmp_fd_latency shows that
// gossip failure detection needs time comparable to the whole Hierarchical
// Gossiping run, which is exactly why the paper's one-shot protocol avoids
// failure detection altogether.
//
// Mechanics (per the Middleware '98 design, adapted to this repo's constant
// message bound): every member keeps a heartbeat counter per known member;
// each round it increments its own counter and gossips a bounded random
// slice of its table to a few random members; receivers keep the pointwise
// maximum. A member whose counter has not moved for `fail_rounds` rounds is
// suspected. The original protocol ships the whole table; shipping a random
// bounded slice preserves the epidemic argument at a constant message size
// (entries reach everyone in O(log N) gossip hops, repeated over rounds).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/membership/view.h"
#include "src/net/transport.h"
#include "src/sim/scheduler.h"

namespace gridbox::protocols::fd {

struct FdConfig {
  /// Gossip targets per round.
  std::uint32_t fanout = 2;

  /// Heartbeat entries per message (constant bound: 12 bytes each + header).
  std::uint32_t entries_per_message = 16;

  /// Rounds without heartbeat progress before suspecting a member.
  std::uint32_t fail_rounds = 20;

  SimTime round_duration = SimTime::millis(10);
};

class GossipFailureDetector final : public net::Endpoint,
                                    public sim::TimerTarget {
 public:
  static constexpr std::uint8_t kWireType = 0x20;

  GossipFailureDetector(MemberId self, membership::View view,
                        sim::Scheduler& scheduler, net::Transport& network,
                        Rng rng, FdConfig config);

  /// Begins heartbeating and gossiping at `at`; runs until stop().
  void start(SimTime at);

  /// Stops the round timer (the detector also stops if its member dies —
  /// callers wire liveness via `set_liveness`).
  void stop() { running_ = false; }

  /// Liveness of this detector's own member (a crashed process halts).
  void set_liveness(std::function<bool(MemberId)> is_alive);

  void on_message(const net::Message& message) override;

  /// Is `member` currently suspected of having failed?
  [[nodiscard]] bool suspects(MemberId member) const;

  /// All currently suspected members.
  [[nodiscard]] std::vector<MemberId> suspected() const;

  /// The round in which `member` became suspected (empty if not suspected).
  /// Suspicion clears if a newer heartbeat arrives (recovery / slow path).
  [[nodiscard]] std::optional<std::uint64_t> suspected_since(
      MemberId member) const;

  [[nodiscard]] std::uint64_t rounds_executed() const { return round_; }
  [[nodiscard]] std::uint64_t messages_sent() const { return messages_sent_; }
  [[nodiscard]] MemberId self() const { return self_; }

 private:
  struct Entry {
    std::uint64_t heartbeat = 0;
    std::uint64_t last_progress_round = 0;
    std::optional<std::uint64_t> suspected_at;
  };

  bool on_round();
  [[nodiscard]] bool on_timer(std::uint32_t timer_id) override;
  void absorb(MemberId member, std::uint64_t heartbeat);
  [[nodiscard]] Entry* entry_of(MemberId member);
  [[nodiscard]] const Entry* entry_of(MemberId member) const;

  MemberId self_;
  membership::View view_;
  sim::Scheduler* scheduler_;
  net::Transport* network_;
  Rng rng_;
  FdConfig config_;
  std::function<bool(MemberId)> is_alive_;

  bool running_ = false;
  std::uint64_t round_ = 0;
  std::uint64_t messages_sent_ = 0;
  std::vector<Entry> table_;       // indexed by view order
  std::vector<MemberId> members_;  // view members (sorted)
  // Per-round sampling scratch, reused so steady-state rounds do not
  // allocate.
  std::vector<std::size_t> scratch_targets_;
  std::vector<std::size_t> scratch_slice_;
};

}  // namespace gridbox::protocols::fd
