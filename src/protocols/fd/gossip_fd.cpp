#include "src/protocols/fd/gossip_fd.h"

#include <algorithm>
#include <utility>

#include "src/agg/codec.h"
#include "src/common/ensure.h"

namespace gridbox::protocols::fd {

GossipFailureDetector::GossipFailureDetector(MemberId self,
                                             membership::View view,
                                             sim::Scheduler& scheduler,
                                             net::Transport& network, Rng rng,
                                             FdConfig config)
    : self_(self),
      view_(std::move(view)),
      scheduler_(&scheduler),
      network_(&network),
      rng_(rng),
      config_(config) {
  expects(config_.fanout >= 1, "fanout must be at least 1");
  expects(config_.entries_per_message >= 1, "need at least one entry");
  expects(config_.fail_rounds >= 1, "fail_rounds must be at least 1");
  members_ = view_.members();
  table_.resize(members_.size());
}

void GossipFailureDetector::set_liveness(
    std::function<bool(MemberId)> is_alive) {
  is_alive_ = std::move(is_alive);
}

GossipFailureDetector::Entry* GossipFailureDetector::entry_of(
    MemberId member) {
  const auto it = std::lower_bound(members_.begin(), members_.end(), member);
  if (it == members_.end() || *it != member) return nullptr;
  return &table_[static_cast<std::size_t>(it - members_.begin())];
}

const GossipFailureDetector::Entry* GossipFailureDetector::entry_of(
    MemberId member) const {
  return const_cast<GossipFailureDetector*>(this)->entry_of(member);
}

void GossipFailureDetector::start(SimTime at) {
  expects(!running_, "start called twice");
  running_ = true;
  scheduler_->schedule_periodic(at, config_.round_duration, *this);
}

bool GossipFailureDetector::on_timer(std::uint32_t /*timer_id*/) {
  return on_round();
}

bool GossipFailureDetector::on_round() {
  if (!running_) return false;
  if (is_alive_ && !is_alive_(self_)) {
    running_ = false;  // crashed: halt; start() may relaunch after recovery
    return false;
  }
  ++round_;

  // Beat our own heart.
  if (Entry* self_entry = entry_of(self_)) {
    ++self_entry->heartbeat;
    self_entry->last_progress_round = round_;
    self_entry->suspected_at.reset();
  }

  // Refresh suspicion state.
  for (std::size_t i = 0; i < members_.size(); ++i) {
    Entry& entry = table_[i];
    if (members_[i] == self_) continue;
    if (round_ >= entry.last_progress_round + config_.fail_rounds) {
      if (!entry.suspected_at.has_value()) entry.suspected_at = round_;
    }
  }

  // Gossip a bounded random slice of the table.
  if (members_.size() > 1) {
    rng_.sample_indices_into(
        members_.size(),
        std::min<std::size_t>(config_.fanout + 1, members_.size()),
        scratch_targets_);
    std::size_t sent = 0;
    for (const std::size_t t : scratch_targets_) {
      if (members_[t] == self_) continue;  // +1 oversample skips self
      if (sent++ >= config_.fanout) break;

      rng_.sample_indices_into(
          members_.size(),
          std::min<std::size_t>(config_.entries_per_message, members_.size()),
          scratch_slice_);
      agg::ByteWriter w;
      w.u8(kWireType);
      w.u8(static_cast<std::uint8_t>(scratch_slice_.size()));
      for (const std::size_t i : scratch_slice_) {
        w.u32(members_[i].value());
        w.u64(table_[i].heartbeat);
      }
      ++messages_sent_;
      network_->send(net::Message{self_, members_[t], w.take()});
    }
  }
  return true;
}

void GossipFailureDetector::on_message(const net::Message& message) {
  if (is_alive_ && !is_alive_(self_)) return;
  const net::Frame& frame = message.frame;
  if (frame.empty() || frame[0] != kWireType) return;
  agg::ByteReader r(frame);
  (void)r.u8();
  const std::size_t count = r.u8();
  // Strict framing: header (type + count) plus count fixed 12-byte entries,
  // nothing more and nothing less.
  expects(frame.size() == 2 + count * 12, "fd gossip frame length mismatch");
  for (std::size_t i = 0; i < count; ++i) {
    const MemberId member{r.u32()};
    const std::uint64_t heartbeat = r.u64();
    absorb(member, heartbeat);
  }
}

void GossipFailureDetector::absorb(MemberId member, std::uint64_t heartbeat) {
  Entry* entry = entry_of(member);
  if (entry == nullptr) return;  // unknown member (partial views)
  if (heartbeat > entry->heartbeat) {
    entry->heartbeat = heartbeat;
    entry->last_progress_round = round_;
    entry->suspected_at.reset();  // it moved: clear any suspicion
  }
}

bool GossipFailureDetector::suspects(MemberId member) const {
  const Entry* entry = entry_of(member);
  return entry != nullptr && entry->suspected_at.has_value();
}

std::vector<MemberId> GossipFailureDetector::suspected() const {
  std::vector<MemberId> out;
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (table_[i].suspected_at.has_value()) out.push_back(members_[i]);
  }
  return out;
}

std::optional<std::uint64_t> GossipFailureDetector::suspected_since(
    MemberId member) const {
  const Entry* entry = entry_of(member);
  if (entry == nullptr) return std::nullopt;
  return entry->suspected_at;
}

}  // namespace gridbox::protocols::fd
