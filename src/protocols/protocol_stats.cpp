#include "src/protocols/protocol_stats.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "src/common/ensure.h"

namespace gridbox::protocols {

namespace {

// Relative comparison for the additive moments: the oracle re-merges in
// audit-bit order while the protocol merged in arrival order, so
// floating-point sums may differ in the last bits.
bool close_rel(double a, double b) {
  const double scale = std::max({std::abs(a), std::abs(b), 1.0});
  return std::abs(a - b) <= 1e-9 * scale;
}

/// Re-merges the votes named by `token`'s audited member set. O(set size),
/// via the registry's window iteration — never scans the whole universe.
agg::Partial reconstruct_partial(const agg::VoteTable& votes,
                                 const agg::AuditRegistry& audit,
                                 std::uint64_t token) {
  agg::Partial exact;
  audit.for_each_member(token, [&votes, &exact](MemberId m) {
    exact.merge(agg::Partial::from_vote(votes.of(m)));
  });
  return exact;
}

bool partial_matches(const agg::Partial& exact, const agg::Partial& estimate) {
  if (exact.count() != estimate.count()) return false;
  if (exact.count() == 0) return true;
  return exact.min() == estimate.min() && exact.max() == estimate.max() &&
         close_rel(exact.sum(), estimate.sum()) &&
         close_rel(exact.sum_squares(), estimate.sum_squares());
}

}  // namespace

RunMeasurement measure_run(
    const membership::Group& group,
    const std::vector<std::unique_ptr<ProtocolNode>>& nodes,
    const agg::VoteTable& votes, agg::AggregateKind kind,
    const net::NetworkStats& net_stats, const agg::AuditRegistry* audit) {
  expects(nodes.size() == group.size(), "one node per group member expected");

  RunMeasurement m;
  m.group_size = group.size();
  m.network_messages = net_stats.messages_sent;
  m.true_value = votes.exact_partial_all().value(kind);

  const auto n = static_cast<double>(group.size());
  double completeness_sum = 0.0;
  double error_sum = 0.0;
  double min_completeness = 1.0;

  // Reconstruction oracle, memoized by audit record: content-identical
  // audit sets share one dedup record, so at saturation (every node holding
  // the same root set) the O(N) re-merge happens once, not N times.
  std::unordered_map<std::size_t, agg::Partial> exact_by_record;

  for (const auto& node : nodes) {
    m.protocol_messages += node->messages_sent();
    m.max_rounds = std::max(m.max_rounds, node->rounds_executed());
    if (!group.is_alive(node->self())) continue;
    ++m.survivors;

    double completeness = 0.0;
    if (node->finished()) {
      ++m.finished_nodes;
      const NodeOutcome& out = node->outcome();
      completeness = static_cast<double>(out.estimate.count()) / n;
      if (!out.estimate.empty()) {
        error_sum += std::abs(out.estimate.value(kind) - m.true_value);
      }
      m.last_finish = std::max(m.last_finish, out.finish_time);
      if (audit != nullptr && out.audit_token != agg::kNoAuditToken) {
        // Cross-check: the count-based completeness must equal the audited
        // provenance set size, or the partial was corrupted along the way.
        ensures(audit->votes_behind(out.audit_token) == out.estimate.count(),
                "estimate count disagrees with audited vote set");
        const std::size_t rec = audit->record_of(out.audit_token);
        auto [it, fresh] = exact_by_record.try_emplace(rec);
        if (fresh) {
          it->second = reconstruct_partial(votes, *audit, out.audit_token);
        }
        if (!partial_matches(it->second, out.estimate)) {
          ++m.reconstruction_failures;
        }
      }
    }
    completeness_sum += completeness;
    min_completeness = std::min(min_completeness, completeness);
  }

  if (m.survivors > 0) {
    m.mean_completeness = completeness_sum / static_cast<double>(m.survivors);
    m.min_completeness = min_completeness;
  }
  m.mean_incompleteness = 1.0 - m.mean_completeness;
  if (m.finished_nodes > 0) {
    m.mean_abs_error = error_sum / static_cast<double>(m.finished_nodes);
  }
  if (audit != nullptr) m.audit_violations = audit->violation_count();
  return m;
}

bool estimate_reconstructs(const ProtocolNode& node,
                           const agg::VoteTable& votes,
                           const agg::AuditRegistry& audit) {
  if (!node.finished()) return true;
  const NodeOutcome& out = node.outcome();
  if (out.audit_token == agg::kNoAuditToken) return true;
  return partial_matches(reconstruct_partial(votes, audit, out.audit_token),
                         out.estimate);
}

}  // namespace gridbox::protocols
