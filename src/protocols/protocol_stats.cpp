#include "src/protocols/protocol_stats.h"

#include <algorithm>
#include <cmath>

#include "src/common/ensure.h"

namespace gridbox::protocols {

RunMeasurement measure_run(
    const membership::Group& group,
    const std::vector<std::unique_ptr<ProtocolNode>>& nodes,
    const agg::VoteTable& votes, agg::AggregateKind kind,
    const net::NetworkStats& net_stats, const agg::AuditRegistry* audit) {
  expects(nodes.size() == group.size(), "one node per group member expected");

  RunMeasurement m;
  m.group_size = group.size();
  m.network_messages = net_stats.messages_sent;
  m.true_value = votes.exact_partial_all().value(kind);

  const auto n = static_cast<double>(group.size());
  double completeness_sum = 0.0;
  double error_sum = 0.0;
  double min_completeness = 1.0;

  for (const auto& node : nodes) {
    m.protocol_messages += node->messages_sent();
    m.max_rounds = std::max(m.max_rounds, node->rounds_executed());
    if (!group.is_alive(node->self())) continue;
    ++m.survivors;

    double completeness = 0.0;
    if (node->finished()) {
      ++m.finished_nodes;
      const NodeOutcome& out = node->outcome();
      completeness = static_cast<double>(out.estimate.count()) / n;
      if (!out.estimate.empty()) {
        error_sum += std::abs(out.estimate.value(kind) - m.true_value);
      }
      m.last_finish = std::max(m.last_finish, out.finish_time);
      if (audit != nullptr && out.audit_token != agg::kNoAuditToken) {
        // Cross-check: the count-based completeness must equal the audited
        // provenance set size, or the partial was corrupted along the way.
        ensures(audit->votes_behind(out.audit_token) == out.estimate.count(),
                "estimate count disagrees with audited vote set");
      }
    }
    completeness_sum += completeness;
    min_completeness = std::min(min_completeness, completeness);
  }

  if (m.survivors > 0) {
    m.mean_completeness = completeness_sum / static_cast<double>(m.survivors);
    m.min_completeness = min_completeness;
  }
  m.mean_incompleteness = 1.0 - m.mean_completeness;
  if (m.finished_nodes > 0) {
    m.mean_abs_error = error_sum / static_cast<double>(m.finished_nodes);
  }
  if (audit != nullptr) m.audit_violations = audit->violation_count();
  return m;
}

}  // namespace gridbox::protocols
