#include "src/protocols/invariant_checker.h"

#include <algorithm>
#include <utility>

#include "src/common/ensure.h"

namespace gridbox::protocols {

InvariantChecker::InvariantChecker(Config config)
    : config_(std::move(config)) {
  expects(config_.group_size > 0, "invariant checker needs a group size");
  // One extra overflow slot for out-of-range ids: the vector never grows
  // again, so shard threads can index into it without synchronization.
  states_.resize(config_.group_size + 1);
  if (config_.audit != nullptr) {
    audit_violations_seen_ = config_.audit->violation_count();
  }
}

SimTime InvariantChecker::now() const {
  return config_.scheduler != nullptr ? config_.scheduler->now()
                                      : SimTime::zero();
}

InvariantChecker::MemberState& InvariantChecker::state_of(MemberId member) {
  // Out-of-range member ids clamp to the shared overflow slot rather than
  // an OOB access (or a resize, which would race the other shards); the
  // range violation itself is reported by the caller.
  const std::size_t i =
      std::min<std::size_t>(member.value(), config_.group_size);
  return states_[i];
}

void InvariantChecker::check_deadline(MemberId member, std::size_t phase,
                                      const char* event) {
  if (config_.deadline == SimTime::zero()) return;
  const SimTime t = now();
  if (t > config_.deadline) {
    violate(member, phase,
            std::string(event) + " at t=" + std::to_string(t.ticks()) +
                "us, past the termination deadline " +
                std::to_string(config_.deadline.ticks()) +
                "us (Theorem 1 bound)");
  }
}

void InvariantChecker::violate(MemberId member, std::size_t phase,
                               std::string what) {
  InvariantViolation v;
  v.member = member;
  v.phase = phase;
  v.at = now();
  v.what = std::move(what);
  {
    std::unique_lock<std::mutex> lock;
    if (config_.concurrent) lock = std::unique_lock<std::mutex>(mutex_);
    violations_.push_back(v);
  }
  if (config_.fail_fast) {
    throw InvariantError("run invariant violated at member M" +
                         std::to_string(member.value()) + " phase " +
                         std::to_string(phase) + " t=" +
                         std::to_string(v.at.ticks()) + "us: " + v.what);
  }
}

void InvariantChecker::on_phase_entered(MemberId member, std::size_t phase) {
  if (config_.next != nullptr) config_.next->on_phase_entered(member, phase);
  MemberState& s = state_of(member);
  check_deadline(member, phase, "phase entered");
  if (member.value() >= config_.group_size) {
    violate(member, phase, "phase entered by out-of-range member id");
  }
  if (phase == 0) violate(member, phase, "entered phase 0 (phases are 1-based)");
  if (config_.num_phases != 0 && phase > config_.num_phases) {
    violate(member, phase,
            "entered phase beyond num_phases=" +
                std::to_string(config_.num_phases));
  }
  if (s.finished) violate(member, phase, "phase entered after termination");
  if (phase <= s.last_entered) {
    violate(member, phase,
            "phase index not monotone: entered phase " +
                std::to_string(phase) + " after phase " +
                std::to_string(s.last_entered));
  }
  s.last_entered = phase;
}

void InvariantChecker::on_round_gossiped(MemberId member, std::size_t phase,
                                         std::uint32_t fanout) {
  if (config_.next != nullptr) {
    config_.next->on_round_gossiped(member, phase, fanout);
  }
  check_deadline(member, phase, "round gossiped");
  // A member can never contact more gossipees than there are other members;
  // M itself is not known here (it is a protocol knob, not a hierarchy one).
  if (config_.group_size != 0 && fanout >= config_.group_size) {
    violate(member, phase,
            "round contacted " + std::to_string(fanout) +
                " gossipees in a group of " +
                std::to_string(config_.group_size));
  }
}

void InvariantChecker::on_value_learned(MemberId member, std::size_t phase,
                                        std::uint32_t index) {
  if (config_.next != nullptr) {
    config_.next->on_value_learned(member, phase, index);
  }
  check_learn(member, phase, index);
}

void InvariantChecker::on_knowledge_gained(MemberId member, std::size_t phase,
                                           std::uint32_t index, MemberId from,
                                           std::uint32_t votes,
                                           gossip::GainKind kind) {
  if (config_.next != nullptr) {
    config_.next->on_knowledge_gained(member, phase, index, from, votes, kind);
  }
  // Result pushes carry the whole aggregate, not a (phase, slot) cell, so
  // the slot-range check does not apply to them.
  if (kind != gossip::GainKind::kResult) check_learn(member, phase, index);
  if (from.value() >= config_.group_size) {
    violate(member, phase,
            "knowledge gained from out-of-range member " +
                std::to_string(from.value()) + " (group size " +
                std::to_string(config_.group_size) + ")");
  }
  if (votes == 0) {
    violate(member, phase, "knowledge gained covering zero votes");
  }
  if (votes > config_.group_size) {
    violate(member, phase,
            "knowledge gained covering " + std::to_string(votes) +
                " votes in a group of " + std::to_string(config_.group_size));
  }
}

void InvariantChecker::check_learn(MemberId member, std::size_t phase,
                                   std::uint32_t index) {
  check_deadline(member, phase, "value learned");
  if (phase == 0) {
    violate(member, phase, "value learned in phase 0 (phases are 1-based)");
  }
  if (phase == 1) {
    if (index >= config_.group_size) {
      violate(member, phase,
              "vote learned from out-of-range origin " +
                  std::to_string(index) + " (group size " +
                  std::to_string(config_.group_size) + ")");
    }
  } else if (config_.fanout != 0 && index >= config_.fanout) {
    violate(member, phase,
            "child aggregate learned for out-of-range slot " +
                std::to_string(index) + " (fanout " +
                std::to_string(config_.fanout) + ")");
  }
}

void InvariantChecker::on_phase_concluded(MemberId member, std::size_t phase,
                                          gossip::PhaseEnd how,
                                          std::uint32_t votes) {
  if (config_.next != nullptr) {
    config_.next->on_phase_concluded(member, phase, how, votes);
  }
  MemberState& s = state_of(member);
  check_deadline(member, phase, "phase concluded");
  // Disjoint-merge check: conclude_phase registers its merge immediately
  // before emitting this event (same call stack), so a jump in the audit
  // registry's violation counter since the last event pins double counting
  // to this member and phase — during the run, not at measurement time.
  if (config_.audit != nullptr) {
    const std::uint64_t current = config_.audit->violation_count();
    bool jumped = false;
    {
      std::unique_lock<std::mutex> lock;
      if (config_.concurrent) lock = std::unique_lock<std::mutex>(mutex_);
      if (current > audit_violations_seen_) {
        audit_violations_seen_ = current;
        jumped = true;
      }
    }
    if (jumped) {
      violate(member, phase,
              "merge combined overlapping vote sets (double counting, §2)");
    }
  }
  if (phase == 0) violate(member, phase, "concluded phase 0");
  if (phase <= s.last_concluded) {
    violate(member, phase,
            "phase conclusions not monotone: concluded phase " +
                std::to_string(phase) + " after phase " +
                std::to_string(s.last_concluded));
  }
  if (votes < s.votes) {
    violate(member, phase,
            "vote count decreased: " + std::to_string(votes) + " after " +
                std::to_string(s.votes));
  }
  if (votes > config_.group_size) {
    violate(member, phase,
            "vote count " + std::to_string(votes) + " exceeds group size " +
                std::to_string(config_.group_size));
  }
  s.last_concluded = phase;
  s.votes = votes;
}

void InvariantChecker::on_finished(MemberId member, std::uint32_t votes) {
  if (config_.next != nullptr) config_.next->on_finished(member, votes);
  MemberState& s = state_of(member);
  check_deadline(member, s.last_concluded, "termination");
  if (s.finished) violate(member, s.last_concluded, "terminated twice");
  if (votes != s.votes) {
    violate(member, s.last_concluded,
            "terminated with " + std::to_string(votes) +
                " votes but last conclusion covered " +
                std::to_string(s.votes));
  }
  s.finished = true;
  finished_count_.fetch_add(1, std::memory_order_release);
}

void InvariantChecker::expect_all_finished(
    const std::vector<MemberId>& members) {
  for (const MemberId m : members) {
    const MemberState& s = state_of(m);
    if (!s.finished) {
      violate(m, s.last_concluded,
              "member never terminated (deadline " +
                  std::to_string(config_.deadline.ticks()) + "us)");
    }
  }
}

}  // namespace gridbox::protocols
