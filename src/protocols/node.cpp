#include "src/protocols/node.h"

#include <utility>

#include "src/common/ensure.h"

namespace gridbox::protocols {

ProtocolNode::ProtocolNode(MemberId self, double vote, membership::View view,
                           NodeEnv env, Rng rng)
    : self_(self),
      view_(std::move(view)),
      env_(env),
      solo_arena_(env.arena == nullptr
                      ? std::make_unique<StateArena>(StateArena::solo(self))
                      : nullptr),
      arena_(env.arena != nullptr ? env.arena : solo_arena_.get()),
      slot_(arena_->slot_of(self)),
      rng_(rng) {
  expects(env_.scheduler != nullptr, "node env: scheduler required");
  expects(env_.network != nullptr, "node env: network required");
  expects(env_.hierarchy != nullptr, "node env: hierarchy required");
  arena_->vote(slot_) = vote;
}

void ProtocolNode::send_to(MemberId to, const net::Frame& frame) {
  ++arena_->messages_sent(slot_);
  env_.network->send(net::Message{self_, to, frame});
}

bool ProtocolNode::on_timer(std::uint32_t /*timer_id*/) { return on_round(); }

void ProtocolNode::start_rounds(SimTime start, SimTime interval) {
  env_.scheduler->schedule_periodic(start, interval, *this);
}

std::uint64_t ProtocolNode::register_own_vote() {
  const std::uint64_t token = env_.audit == nullptr
                                  ? agg::kNoAuditToken
                                  : env_.audit->register_vote(self_);
  arena_->audit_token(slot_) = token;
  return token;
}

void ProtocolNode::set_outcome(agg::Partial estimate, std::uint64_t token) {
  outcome_.finished = true;
  outcome_.estimate = estimate;
  outcome_.audit_token = token;
  outcome_.finish_time = env_.scheduler->now();
  // Release-publish the outcome record: a cross-thread finished() == true
  // implies the fields above are visible. A duplicate conclusion (e.g. a
  // chaos-duplicated result frame) must not re-notify the completion hook.
  const bool was_finished = finished_.exchange(true, std::memory_order_release);
  if (!was_finished && env_.on_finished) env_.on_finished(self_);
}

}  // namespace gridbox::protocols
