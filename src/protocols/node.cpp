#include "src/protocols/node.h"

#include <utility>

#include "src/common/ensure.h"

namespace gridbox::protocols {

ProtocolNode::ProtocolNode(MemberId self, double vote, membership::View view,
                           NodeEnv env, Rng rng)
    : self_(self),
      vote_(vote),
      view_(std::move(view)),
      env_(env),
      rng_(rng) {
  expects(env_.simulator != nullptr, "node env: simulator required");
  expects(env_.network != nullptr, "node env: network required");
  expects(env_.hierarchy != nullptr, "node env: hierarchy required");
}

void ProtocolNode::send_to(MemberId to, const net::Frame& frame) {
  ++messages_sent_;
  env_.network->send(net::Message{self_, to, frame});
}

bool ProtocolNode::on_timer(std::uint32_t /*timer_id*/) { return on_round(); }

void ProtocolNode::start_rounds(SimTime start, SimTime interval) {
  env_.simulator->schedule_periodic(start, interval, *this);
}

std::uint64_t ProtocolNode::register_own_vote() {
  if (env_.audit == nullptr) return agg::kNoAuditToken;
  return env_.audit->register_vote(self_);
}

void ProtocolNode::set_outcome(agg::Partial estimate, std::uint64_t token) {
  outcome_.finished = true;
  outcome_.estimate = estimate;
  outcome_.audit_token = token;
  outcome_.finish_time = env_.simulator->now();
}

}  // namespace gridbox::protocols
