// Run-level measurement: turns per-node outcomes into the paper's metrics.
//
// Completeness (§2) is "the percentage of group member votes taken into
// account in the final global function value calculated at a random member".
// Per node that is the partial's count() / N — exact because merges are over
// disjoint sets (the audit registry verifies this; any violation is surfaced
// here). A surviving member with no estimate at all counts as completeness 0;
// crashed members are not sampled.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/agg/audit.h"
#include "src/agg/vote.h"
#include "src/membership/group.h"
#include "src/net/stats.h"
#include "src/protocols/node.h"

namespace gridbox::protocols {

struct RunMeasurement {
  std::size_t group_size = 0;
  std::size_t survivors = 0;        ///< members alive at the end of the run
  std::size_t finished_nodes = 0;   ///< survivors that delivered an estimate

  double mean_completeness = 0.0;   ///< avg over survivors (unfinished = 0)
  double min_completeness = 0.0;
  double mean_incompleteness = 1.0;

  /// Mean |node estimate − true aggregate| over survivors with an estimate;
  /// the "accuracy" interpretation of completeness (§2).
  double mean_abs_error = 0.0;
  double true_value = 0.0;

  std::uint64_t protocol_messages = 0;  ///< sum of per-node send counts
  std::uint64_t network_messages = 0;   ///< accepted by the transport
  std::uint64_t max_rounds = 0;         ///< slowest node's round count
  SimTime last_finish = SimTime::zero();
  std::uint64_t audit_violations = 0;   ///< nonzero = double counting bug

  /// Finished nodes whose estimate is NOT the exact aggregate of their
  /// audited vote set (see reconstruction oracle below); nonzero means a
  /// wrong-but-complete answer. Only computed when an audit registry is
  /// present.
  std::uint64_t reconstruction_failures = 0;
};

[[nodiscard]] RunMeasurement measure_run(
    const membership::Group& group,
    const std::vector<std::unique_ptr<ProtocolNode>>& nodes,
    const agg::VoteTable& votes, agg::AggregateKind kind,
    const net::NetworkStats& net_stats, const agg::AuditRegistry* audit);

/// Reconstruction oracle: re-aggregates `node`'s audited vote set from the
/// ground-truth vote table and compares it against the node's estimate —
/// count, min, and max must match exactly; sum and sum-of-squares to 1e-9
/// relative (merge order may differ from the protocol's). A complete but
/// wrong answer can never pass this. Returns true when the estimate is
/// faithful; nodes without an audit token pass vacuously (nothing claimed).
[[nodiscard]] bool estimate_reconstructs(const ProtocolNode& node,
                                         const agg::VoteTable& votes,
                                         const agg::AuditRegistry& audit);

}  // namespace gridbox::protocols
