// Per-run struct-of-arrays state for protocol nodes.
//
// Before this arena existed every node object carried its own scalars and
// per-peer std::map state, so a run's member state was N heap-scattered
// objects — fine at N=200, hopeless at N=10^5..10^6 where pointer chasing
// and per-node map allocations dominate. The arena owns flat parallel
// arrays indexed by *member slot* (dense 0..N-1, equal to the member id in
// every experiment configuration) and nodes read and write their slot.
//
// The arena also precomputes the hierarchy's phase-group layout once per
// run: for each phase, the member list stably sorted by phase group (so
// members of one group are a contiguous *segment*, ascending by id within
// the group — the same order the per-node phase_peers vectors used to
// have), plus each member's segment offset/size/position. Nodes whose view
// is the full run view share these tables instead of materializing
// per-node peer vectors, which is what turns the old O(N^2) peer-list
// memory of the final phases into O(N · phases) for the whole run.
//
// A node constructed without a shared arena (hand-wired tests) gets a
// private single-slot arena; behaviour is identical, only the sharing is
// lost.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/ensure.h"
#include "src/common/types.h"
#include "src/hierarchy/hierarchy.h"

namespace gridbox::protocols {

class StateArena {
 public:
  /// Shared arena over a run's member set. `members` must be sorted
  /// ascending with dense ids 0..N-1 (slot == id); the vector is aliased,
  /// not copied, so views sharing it can be recognized by data() identity.
  explicit StateArena(std::shared_ptr<const std::vector<MemberId>> members);

  /// Single-slot arena for one directly-constructed node.
  [[nodiscard]] static StateArena solo(MemberId self);

  [[nodiscard]] std::size_t size() const { return members_->size(); }
  [[nodiscard]] const std::vector<MemberId>& members() const {
    return *members_;
  }
  [[nodiscard]] const std::shared_ptr<const std::vector<MemberId>>&
  shared_members() const {
    return members_;
  }

  [[nodiscard]] std::size_t slot_of(MemberId id) const {
    if (solo_) {
      expects(id == (*members_)[0], "solo arena: unknown member");
      return 0;
    }
    expects(id.value() < members_->size(), "member outside arena");
    return id.value();
  }

  // Core per-slot state (vote value, audit token, phase, round, timer
  // budget, message counter). References stay valid for the arena's
  // lifetime — the arrays never reallocate after construction.
  [[nodiscard]] double& vote(std::size_t slot) { return vote_[slot]; }
  [[nodiscard]] double vote(std::size_t slot) const { return vote_[slot]; }
  [[nodiscard]] std::uint64_t& audit_token(std::size_t slot) {
    return audit_token_[slot];
  }
  [[nodiscard]] std::uint32_t& phase(std::size_t slot) {
    return phase_[slot];
  }
  [[nodiscard]] std::uint64_t& round(std::size_t slot) {
    return round_[slot];
  }
  [[nodiscard]] std::uint64_t round(std::size_t slot) const {
    return round_[slot];
  }
  [[nodiscard]] std::uint64_t& rounds_budget(std::size_t slot) {
    return rounds_budget_[slot];
  }
  [[nodiscard]] std::uint64_t& messages_sent(std::size_t slot) {
    return messages_sent_[slot];
  }
  [[nodiscard]] std::uint64_t messages_sent(std::size_t slot) const {
    return messages_sent_[slot];
  }

  /// Builds the per-phase segment tables (idempotent; requires a dense
  /// arena). `hier` must describe this run's hierarchy.
  void build_phase_tables(const hierarchy::GridBoxHierarchy& hier);

  /// Rebinds a retired arena to a new instance's world: aliases `members`
  /// (same size, dense — so slot arithmetic is unchanged), zeroes every
  /// state lane, and rebuilds the phase tables for `hier` (each instance
  /// hashes members into its own grid-box layout). The lane vectors keep
  /// their capacity, so recycling across a long epoch stream allocates
  /// only the per-phase tables — the service's arena pool leans on this.
  void recycle(std::shared_ptr<const std::vector<MemberId>> members,
               const hierarchy::GridBoxHierarchy& hier);
  [[nodiscard]] bool has_phase_tables() const { return !phase_order_.empty(); }

  /// A member's phase-group segment: the contiguous range
  /// [offset, offset+size) of that phase's order, with `pos` the member's
  /// own index within it.
  struct Segment {
    std::uint32_t offset = 0;
    std::uint32_t size = 0;
    std::uint32_t pos = 0;
  };

  [[nodiscard]] Segment segment(std::size_t phase, MemberId id) const {
    const PhaseTable& t = table(phase);
    const std::size_t m = id.value();
    return Segment{t.offset[m], t.size[m], t.pos[m]};
  }

  /// The member at `index` of `phase`'s group-sorted order.
  [[nodiscard]] MemberId ordered_member(std::size_t phase,
                                        std::size_t index) const {
    return table(phase).order[index];
  }

  /// Whether `id` falls inside the segment (same phase group).
  [[nodiscard]] bool in_segment(const Segment& seg, std::size_t phase,
                                MemberId id) const {
    if (id.value() >= size()) return false;
    const PhaseTable& t = table(phase);
    const std::uint32_t idx = t.offset[id.value()];
    return idx == seg.offset;  // same group <=> same segment start
  }

  /// Position of `id` within its own segment at `phase`.
  [[nodiscard]] std::uint32_t pos_in_segment(std::size_t phase,
                                             MemberId id) const {
    return table(phase).pos[id.value()];
  }

 private:
  struct PhaseTable {
    std::vector<MemberId> order;       // members sorted by (group, id)
    std::vector<std::uint32_t> offset;  // by member id: segment start
    std::vector<std::uint32_t> size;    // by member id: segment length
    std::vector<std::uint32_t> pos;     // by member id: index − offset
  };

  [[nodiscard]] const PhaseTable& table(std::size_t phase) const {
    expects(phase >= 1 && phase <= phase_order_.size(),
            "phase outside arena tables");
    return phase_order_[phase - 1];
  }

  explicit StateArena(std::shared_ptr<const std::vector<MemberId>> members,
                      bool solo);

  std::shared_ptr<const std::vector<MemberId>> members_;
  bool solo_ = false;
  std::vector<double> vote_;
  std::vector<std::uint64_t> audit_token_;
  std::vector<std::uint32_t> phase_;
  std::vector<std::uint64_t> round_;
  std::vector<std::uint64_t> rounds_budget_;
  std::vector<std::uint64_t> messages_sent_;
  std::vector<PhaseTable> phase_order_;  // index = phase − 1
};

}  // namespace gridbox::protocols
