#include "src/protocols/gossip/periodic.h"

#include <utility>

#include "src/common/ensure.h"
#include "src/hierarchy/hierarchy.h"

namespace gridbox::protocols::gossip {

PeriodicAggregatorNode::PeriodicAggregatorNode(
    MemberId self, std::function<double(std::size_t)> vote_for_epoch,
    membership::View view, protocols::NodeEnv env, Rng rng,
    PeriodicConfig config)
    : self_(self),
      vote_for_epoch_(std::move(vote_for_epoch)),
      view_(std::move(view)),
      env_(env),
      rng_(rng),
      config_(config) {
  expects(static_cast<bool>(vote_for_epoch_), "vote function required");
  expects(config_.epochs >= 1, "need at least one epoch");
  expects(env_.hierarchy != nullptr, "hierarchy required");
  // Worst-case instance duration: every phase runs to its deadline, plus the
  // start tick; then in-flight messages need max_latency to drain.
  const std::uint64_t rounds =
      config_.gossip.rounds_per_phase(env_.hierarchy->group_size_estimate()) *
      env_.hierarchy->num_phases();
  const SimTime duration =
      SimTime{static_cast<SimTime::underlying>(rounds + 2) *
              config_.gossip.round_duration.ticks()} +
      config_.gossip.start_skew_max + config_.max_latency;
  expects(config_.period > duration,
          "period must exceed the worst-case instance duration plus latency "
          "(epochs may not overlap on the wire)");
}

void PeriodicAggregatorNode::start(SimTime at) {
  expects(!started_, "start called twice");
  started_ = true;
  // Epoch e begins at `at + e * period`; the chain self-schedules so crashes
  // stop it naturally (a dead member's instance never finishes and the next
  // begin_epoch call still happens but the instance won't act).
  env_.scheduler->schedule_at(at, [this]() { begin_epoch(0); });
}

void PeriodicAggregatorNode::begin_epoch(std::size_t epoch) {
  harvest_previous();
  epoch_ = epoch;
  instance_ = std::make_unique<HierGossipNode>(
      self_, vote_for_epoch_(epoch), view_, env_,
      rng_.derive(0xE90C0000 + epoch), config_.gossip);
  instance_->start(env_.scheduler->now());
  if (epoch + 1 < config_.epochs) {
    env_.scheduler->schedule_after(
        config_.period, [this, next = epoch + 1]() { begin_epoch(next); });
  } else {
    // Harvest the final epoch once it must have drained.
    env_.scheduler->schedule_after(config_.period,
                                   [this]() { harvest_previous(); });
  }
}

void PeriodicAggregatorNode::harvest_previous() {
  if (instance_ == nullptr) return;
  if (instance_->finished()) {
    history_.push_back(instance_->outcome());
  } else {
    // Crashed or starved epochs leave a hole: record an unfinished outcome
    // so history_ stays aligned with epoch numbers.
    history_.push_back(protocols::NodeOutcome{});
  }
  instance_.reset();
}

void PeriodicAggregatorNode::on_message(const net::Message& message) {
  if (instance_ != nullptr) instance_->on_message(message);
  // Messages between epochs (none, by the period precondition) or before
  // start are dropped.
}

}  // namespace gridbox::protocols::gossip
