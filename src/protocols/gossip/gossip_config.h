// Tunables of the Hierarchical Gossiping protocol (§6.3, §7).
#pragma once

#include <cstdint>

#include "src/common/types.h"

namespace gridbox::protocols::gossip {

class GossipTrace;

/// Which known value a member gossips each time it contacts a gossipee.
enum class ValuePolicy : std::uint8_t {
  /// Paper's rule: one uniformly random known value per message.
  kRandomSingle = 0,
  /// Ablation: prefer the value this member has sent least often (helps the
  /// slowest-spreading value, at no extra message cost).
  kRarestFirst = 1,
  /// Ablation: cycle deterministically through the known values.
  kRoundRobin = 2,
};

/// How much of its known state a member pushes per gossip message.
enum class ExchangeMode : std::uint8_t {
  /// Classic "gossip with" semantics: push the known state of the current
  /// phase, capped at kMaxEntriesPerMessage entries (a random subset when
  /// above the cap), so messages stay constant-size bounded. Default: this
  /// is what reproduces the paper's measured completeness levels.
  kFullState = 0,
  /// The literal §6.3 wording: exactly one selected value per message
  /// (selection per ValuePolicy). Weaker mixing at the same message count;
  /// kept as an ablation (bench/abl_fanout).
  kSingleValue = 1,
};

/// Hard cap on values per gossip message in kFullState mode; together with
/// the fixed entry encodings this keeps every payload under
/// net::kMaxPayloadBytes regardless of K or box occupancy.
inline constexpr std::size_t kMaxEntriesPerMessage = 5;

struct GossipConfig {
  /// K — average members per grid box and tree fanout. Paper default 4.
  std::uint32_t k = 4;

  /// M — gossipees contacted per gossip round. Paper default 2.
  std::uint32_t fanout_m = 2;

  /// C — rounds-per-phase multiplier: each phase lasts ⌈C · log_M N⌉ gossip
  /// rounds (paper §7). Paper default 1.0.
  double round_multiplier_c = 1.0;

  /// Nonzero: use exactly this many gossip rounds per phase instead of the
  /// ⌈C·log_M N⌉ formula. Figure 8 sweeps this directly (x = rounds per
  /// phase, 1..5).
  std::uint64_t rounds_per_phase_override = 0;

  /// Wall-clock length of one gossip round.
  SimTime round_duration = SimTime::millis(10);

  /// Step 2(b): bump to the next phase as soon as all K child aggregates are
  /// known, instead of always waiting out the timeout. The paper's
  /// simulations enable this; its analysis assumes it off (synchronous
  /// phases). Never applies to phase 1, where a member cannot know it has
  /// seen everything.
  bool early_bump = true;

  /// Also bump phase 1 early once votes from *every view member in the same
  /// grid box* are known. Sound only with complete views; off by default to
  /// match the paper.
  bool phase1_early_bump_with_view = false;

  /// In the last phase, a saturated member keeps gossiping until the phase
  /// deadline instead of terminating immediately. Termination cannot starve
  /// peers in any earlier phase (the member moves up and keeps gossiping),
  /// but a member that terminates stops serving root aggregates; lingering
  /// costs nothing in time (the deadline is unchanged) and keeps the last
  /// phase's epidemic fed. On by default; off reproduces literal
  /// terminate-on-saturation (see bench/abl_sync_vs_async).
  bool final_phase_linger = true;

  ExchangeMode exchange_mode = ExchangeMode::kFullState;

  /// Value selection for ExchangeMode::kSingleValue.
  ValuePolicy value_policy = ValuePolicy::kRandomSingle;

  /// Maximum random start skew: each node starts phase 1 at a uniform time
  /// in [0, start_skew_max], modelling multicast-initiated starts reaching
  /// members at slightly different times. Zero = simultaneous (paper).
  SimTime start_skew_max = SimTime::zero();

  /// Optional observability hooks (non-owning; must outlive the nodes).
  GossipTrace* trace = nullptr;

  /// Gossip rounds in each phase for a group-size estimate n.
  [[nodiscard]] std::uint64_t rounds_per_phase(std::size_t n) const;
};

}  // namespace gridbox::protocols::gossip
