// Hierarchical Gossiping (§6.3) — the paper's primary contribution.
//
// Each member runs num_phases() phases. In phase 1 it gossips, within its own
// grid box, individual votes of box members (always including its own). In
// phase i ≥ 2 it gossips, within its phase-i group, the aggregate values of
// that group's K child slots, seeding its own child slot with the result of
// phase i−1. A phase ends after ⌈C·log_M N⌉ gossip rounds, or — step 2(b) —
// as soon as all K child aggregates are known. After the last phase the
// member holds its estimate of the global aggregate and the protocol
// terminates at that member.
//
// No leader election, no failure detection, no acknowledgements: robustness
// comes entirely from epidemic redundancy. Message and time complexity are
// O(N·log²N) and O(log²N) — poly-logarithmically sub-optimal.
//
// State layout. When the run provides a StateArena with phase tables and
// this node's view is the run's full view, gossip targets come straight from
// the arena's per-phase group segments — no per-node peer vectors, which at
// the final phase used to mean every node holding an (N−1)-entry list.
// Phase-1 knowledge is a small struct-of-arrays over the node's box members
// (index-parallel flags + values) instead of a std::map per node; iteration
// stays in ascending-id order, so RNG draws, wire bytes, and traces are
// bitwise-identical to the map-based implementation.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "src/common/bitset.h"
#include "src/protocols/gossip/gossip_config.h"
#include "src/protocols/gossip/trace.h"
#include "src/protocols/node.h"

namespace gridbox::protocols::gossip {

class HierGossipNode final : public protocols::ProtocolNode {
 public:
  HierGossipNode(MemberId self, double vote, membership::View view,
                 protocols::NodeEnv env, Rng rng, GossipConfig config);

  void start(SimTime at) override;
  void on_message(const net::Message& message) override;

  /// 1-based phase currently executing; num_phases()+1 once finished.
  [[nodiscard]] std::size_t current_phase() const { return phase_; }

  /// Rounds spent in the current phase so far.
  [[nodiscard]] std::uint64_t rounds_in_phase() const { return rounds_in_phase_; }

  [[nodiscard]] const GossipConfig& config() const { return config_; }

  /// Simulated time at which each phase completed (index 0 = phase 1).
  [[nodiscard]] const std::vector<SimTime>& phase_completion_times() const {
    return phase_end_times_;
  }

 private:
  /// One known value: either a member's vote (phase 1) or a child-slot
  /// aggregate (phases >= 2), plus audit provenance and a send counter for
  /// the rarest-first ablation policy.
  struct KnownValue {
    agg::Partial partial;
    std::uint64_t audit_token = agg::kNoAuditToken;
    std::uint64_t times_sent = 0;
  };

  /// A sendable value: its wire key (origin id in phase 1, child slot in
  /// phases >= 2) plus the mutable entry behind it.
  struct Candidate {
    std::uint64_t key = 0;
    KnownValue* value = nullptr;
  };

  /// Wire entry for a phase-1 vote batch (20 bytes on the wire).
  struct VoteEntry {
    MemberId origin;
    double value = 0.0;
    std::uint64_t token = agg::kNoAuditToken;
  };

  /// Wire entry for a phase >= 2 child-aggregate batch (45 bytes on the wire).
  struct ChildEntry {
    std::uint32_t slot = 0;
    agg::Partial partial;
    std::uint64_t token = agg::kNoAuditToken;
  };

  bool on_round() override;              // periodic tick; false stops timer
  void gossip_once(MemberId target);     // send one value to one gossipee
  [[nodiscard]] net::Frame encode_votes(std::uint64_t group_prefix,
                                        const std::vector<VoteEntry>& entries);
  [[nodiscard]] net::Frame encode_children(
      std::uint8_t phase, std::uint64_t group_prefix,
      const std::vector<ChildEntry>& entries);
  void conclude_phase(PhaseEnd how);     // aggregate own knowledge and bump
  void adopt_phase_result(std::size_t msg_phase, const agg::Partial& partial,
                          std::uint64_t token, MemberId sender);
  void finish_phase(PhaseEnd how);       // record carry_ and advance
  void enter_phase(std::size_t phase);
  void absorb_vote(MemberId origin, double value, std::uint64_t token,
                   MemberId sender);
  void absorb_child(std::uint32_t slot, const agg::Partial& partial,
                    std::uint64_t token, MemberId sender);
  [[nodiscard]] bool phase_saturated() const;  // all values known (early bump)
  [[nodiscard]] Candidate pick_value_to_send();
  void rebuild_peer_cache();

  /// Gossipees available this phase (segment size − 1, or peers_.size()).
  [[nodiscard]] std::size_t peer_count() const;
  /// The `index`-th gossipee (ascending id, self excluded).
  [[nodiscard]] MemberId peer_at(std::size_t index) const;

  /// Number of phase-1 votes known (box members + out-of-box extras).
  [[nodiscard]] std::size_t known_vote_count() const {
    return p1_mask_.count() + p1_extra_.size();
  }

  /// Calls fn(MemberId origin, KnownValue&) for every known phase-1 vote in
  /// ascending origin order — the iteration order the old std::map had.
  template <typename Fn>
  void for_each_known_vote(Fn&& fn) {
    auto it = p1_extra_.begin();
    for (std::size_t i = 0; i < p1_ids_.size(); ++i) {
      if (!p1_mask_.test(i)) continue;
      while (it != p1_extra_.end() && it->first < p1_ids_[i]) {
        fn(it->first, it->second);
        ++it;
      }
      fn(p1_ids_[i], p1_values_[i]);
    }
    for (; it != p1_extra_.end(); ++it) fn(it->first, it->second);
  }

  GossipConfig config_;
  // Hot per-member scalars live in the run arena's lanes (struct-of-arrays);
  // these references are this node's slots in them.
  std::uint32_t& phase_;          // 0 = not started; num_phases+1 = finished
  std::uint64_t& rounds_budget_;  // phase deadline on the global round grid
  std::uint64_t rounds_in_phase_ = 0;

  // True when gossip targets come from the arena's phase segments (shared
  // arena with phase tables, full run view). Otherwise peers_ is
  // materialized per phase, as the map-based implementation did.
  bool use_segment_ = false;
  StateArena::Segment seg_;  // current phase's segment (use_segment_ only)

  // Phase-1 knowledge, struct-of-arrays: p1_ids_ is the node's box-member
  // universe (sorted, includes self), p1_mask_ flags which votes are known,
  // p1_values_ holds them index-parallel. Out-of-universe origins (possible
  // under partial views: a peer knows box members this node's view lacks)
  // overflow into the ordered p1_extra_ map.
  std::vector<MemberId> p1_ids_;
  MemberBitset p1_mask_;
  std::vector<KnownValue> p1_values_;
  std::map<MemberId, KnownValue> p1_extra_;

  // Phase-i (i >= 2) knowledge: one aggregate per child slot, first received
  // wins (paper: "when it first receives the same ... in phase i"). Values
  // for phases this node is not currently in are dropped, per the paper —
  // buffering them lets fast nodes skip whole phases without gossiping,
  // which starves slower peers and collapses completeness.
  std::vector<std::optional<KnownValue>> known_children_;

  // Result of the previous phase, seeding this node's own child slot.
  KnownValue carry_;

  // View members in the same phase group as this node, re-filtered per
  // phase. Only populated when segments are unavailable (hand-wired tests,
  // partial views) — with segments this stays empty at every phase.
  std::vector<MemberId> peers_;

  std::vector<SimTime> phase_end_times_;
  std::size_t round_robin_cursor_ = 0;

  // Per-round scratch, reused across rounds so the steady-state gossip path
  // stops allocating once these reach their high-water capacity. Contents
  // are dead between calls; every user clears before filling.
  std::vector<VoteEntry> scratch_votes_;
  std::vector<ChildEntry> scratch_children_;
  std::vector<Candidate> scratch_candidates_;
  std::vector<std::size_t> scratch_round_picks_;  ///< gossipee picks per round
  std::vector<std::size_t> scratch_picks_;        ///< entry subsampling
};

}  // namespace gridbox::protocols::gossip
