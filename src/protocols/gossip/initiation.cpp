#include "src/protocols/gossip/initiation.h"

#include <algorithm>
#include <utility>

#include "src/agg/codec.h"
#include "src/common/ensure.h"

namespace gridbox::protocols::gossip {

FloodStarter::FloodStarter(MemberId self, membership::View view,
                           sim::Scheduler& scheduler, net::Transport& network,
                           Rng rng, FloodConfig config,
                           std::function<void(std::uint64_t)> on_start)
    : self_(self),
      view_(std::move(view)),
      scheduler_(&scheduler),
      network_(&network),
      rng_(rng),
      config_(config),
      on_start_(std::move(on_start)) {
  expects(config_.fanout >= 1, "flood fanout must be at least 1");
  expects(config_.repeat_rounds >= 1, "flood needs at least one round");
  expects(static_cast<bool>(on_start_), "start callback required");
}

void FloodStarter::initiate(std::uint64_t instance) {
  trigger(instance);
}

bool FloodStarter::on_message(const net::Message& message) {
  const net::Frame& frame = message.frame;
  if (frame.empty() || frame[0] != kWireType) return false;
  // Strict framing: type byte + u64 instance id, exactly.
  expects(frame.size() == 9, "flood frame length mismatch");
  agg::ByteReader r(frame);
  (void)r.u8();
  const std::uint64_t instance = r.u64();
  trigger(instance);
  return true;
}

void FloodStarter::trigger(std::uint64_t instance) {
  // Instances are expected to start in order; an already-seen (or older)
  // instance id is a duplicate START and is ignored.
  if (last_started_ != kNone && instance <= last_started_) return;
  last_started_ = instance;
  on_start_(instance);
  forward_round(instance, config_.repeat_rounds);
}

void FloodStarter::forward_round(std::uint64_t instance,
                                 std::uint32_t rounds_left) {
  if (rounds_left == 0) return;
  agg::ByteWriter w;
  w.u8(kWireType);
  w.u64(instance);
  const net::Frame frame = w.take();

  std::vector<MemberId> others;
  for (const MemberId m : view_.members()) {
    if (m != self_) others.push_back(m);
  }
  if (!others.empty()) {
    const auto picks = rng_.sample_indices(
        others.size(),
        std::min<std::size_t>(config_.fanout, others.size()));
    for (const std::size_t i : picks) {
      network_->send(net::Message{self_, others[i], frame});
    }
  }
  scheduler_->schedule_after(
      config_.round_duration, [this, instance, rounds_left]() {
        // A newer instance supersedes the flood of an older one.
        if (last_started_ == instance) {
          forward_round(instance, rounds_left - 1);
        }
      });
}

}  // namespace gridbox::protocols::gossip
