// Observability hooks for Hierarchical Gossiping.
//
// A GossipTrace receives structured callbacks as nodes move through the
// protocol: phase entries, value arrivals, and conclusions (with *why* the
// phase ended — timeout, saturation, or adoption). Used by tests to assert
// internal behaviour and by operators to understand a run; the default
// no-op implementation costs one null check per event.
#pragma once

#include <cstdint>

#include "src/common/types.h"

namespace gridbox::protocols::gossip {

/// Why a phase ended at a member.
enum class PhaseEnd : std::uint8_t {
  kTimeout = 0,    ///< the phase-deadline grid expired
  kSaturated = 1,  ///< all K child values (step 2(b)) were obtained
  kAdopted = 2,    ///< an enclosing subtree aggregate was adopted
};

/// How a member came to know a value (the causal provenance of a
/// knowledge-gain event — see on_knowledge_gained below).
enum class GainKind : std::uint8_t {
  kRemote = 0,   ///< decoded from a message; `from` is the sender
  kLocal = 1,    ///< produced locally (own vote, or a carried aggregate)
  kAdopted = 2,  ///< an enclosing subtree aggregate was adopted wholesale
  kResult = 3,   ///< the final result was obtained (baselines' result push)
};

class GossipTrace {
 public:
  virtual ~GossipTrace() = default;

  /// `member` began working on `phase` (1-based).
  virtual void on_phase_entered(MemberId member, std::size_t phase) {
    (void)member;
    (void)phase;
  }

  /// `member` executed one gossip round in `phase`, contacting `fanout`
  /// gossipees (0 when it had no eligible peers). Fired after the round's
  /// sends, so a chained metrics sink sees the per-round fanout the paper's
  /// M parameter controls.
  virtual void on_round_gossiped(MemberId member, std::size_t phase,
                                 std::uint32_t fanout) {
    (void)member;
    (void)phase;
    (void)fanout;
  }

  /// `member` learned a value: a vote (phase 1, `index` = origin id) or a
  /// child aggregate (phase >= 2, `index` = slot).
  virtual void on_value_learned(MemberId member, std::size_t phase,
                                std::uint32_t index) {
    (void)member;
    (void)phase;
    (void)index;
  }

  /// Rich causal form of on_value_learned: `member` now knows the value at
  /// (`phase`, `index`) covering `votes` votes, and learned it `kind`-wise
  /// from `from` (the sender for kRemote/kAdopted/kResult received over the
  /// wire; the member itself for kLocal and locally computed results).
  /// The default forwards remote gains to the legacy on_value_learned hook,
  /// so existing traces keep seeing exactly the events they saw before.
  virtual void on_knowledge_gained(MemberId member, std::size_t phase,
                                   std::uint32_t index, MemberId from,
                                   std::uint32_t votes, GainKind kind) {
    (void)from;
    (void)votes;
    if (kind == GainKind::kRemote) on_value_learned(member, phase, index);
  }

  /// `member` concluded `phase` covering `votes` votes, for reason `how`.
  /// Adoption that skips phases reports the *highest* phase concluded.
  virtual void on_phase_concluded(MemberId member, std::size_t phase,
                                  PhaseEnd how, std::uint32_t votes) {
    (void)member;
    (void)phase;
    (void)how;
    (void)votes;
  }

  /// The protocol terminated at `member` with `votes` votes covered.
  virtual void on_finished(MemberId member, std::uint32_t votes) {
    (void)member;
    (void)votes;
  }
};

}  // namespace gridbox::protocols::gossip
