// Protocol initiation by epidemic flood (§2: "The protocol is assumed to be
// initiated simultaneously at all members, but our results apply in cases
// such as a multicast being used for protocol initiation").
//
// The network provides only unicast, so the "multicast" is a gossip flood:
// an initiator sends START to a few random view members; every member, on
// its first START, fires its callback (typically HierGossipNode::start) and
// re-forwards START to `fanout` random members each round for `repeat_rounds`
// rounds. With fanout >= 2 the flood reaches the whole group in O(log N)
// rounds with high probability, giving exactly the bounded start skew the
// gossip protocol tolerates.
#pragma once

#include <cstdint>
#include <functional>

#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/membership/view.h"
#include "src/net/network.h"
#include "src/sim/scheduler.h"

namespace gridbox::protocols::gossip {

struct FloodConfig {
  std::uint32_t fanout = 3;
  std::uint32_t repeat_rounds = 3;
  SimTime round_duration = SimTime::millis(10);
  /// Identifies the protocol instance being started; echoed to the callback
  /// so one flood endpoint can serve successive instances.
  std::uint64_t instance = 0;
};

/// Per-member flood participant. Not itself a net::Endpoint — it is meant to
/// sit behind a demultiplexer (see MessageDemux) next to the protocol node it
/// starts. Wire format: u8 type (kStartFlood) + u64 instance.
class FloodStarter {
 public:
  /// `on_start(instance)` fires exactly once per instance id, at the
  /// simulated time the first START for it arrives (or initiate() is called).
  FloodStarter(MemberId self, membership::View view, sim::Scheduler& scheduler,
               net::Transport& network, Rng rng, FloodConfig config,
               std::function<void(std::uint64_t)> on_start);

  /// The wire type tag this class uses (first payload byte).
  static constexpr std::uint8_t kWireType = 0x10;

  /// Called at the initiating member: fires the callback locally and begins
  /// flooding.
  void initiate(std::uint64_t instance);

  /// Feed a received message; returns true if it was a START frame (handled).
  bool on_message(const net::Message& message);

  [[nodiscard]] bool started(std::uint64_t instance) const {
    return last_started_ != kNone && instance <= last_started_;
  }

 private:
  static constexpr std::uint64_t kNone = ~std::uint64_t{0};

  void trigger(std::uint64_t instance);
  void forward_round(std::uint64_t instance, std::uint32_t rounds_left);

  MemberId self_;
  membership::View view_;
  sim::Scheduler* scheduler_;
  net::Transport* network_;
  Rng rng_;
  FloodConfig config_;
  std::function<void(std::uint64_t)> on_start_;
  std::uint64_t last_started_ = kNone;
};

/// Routes inbound messages by their leading type byte: START frames to the
/// FloodStarter, everything else to the wrapped protocol endpoint. Attach
/// *this* to the network in place of the protocol node.
class MessageDemux final : public net::Endpoint {
 public:
  MessageDemux(FloodStarter& starter, net::Endpoint& protocol)
      : starter_(&starter), protocol_(&protocol) {}

  void on_message(const net::Message& message) override {
    if (!starter_->on_message(message)) protocol_->on_message(message);
  }

 private:
  FloodStarter* starter_;
  net::Endpoint* protocol_;
};

}  // namespace gridbox::protocols::gossip
