#include "src/protocols/gossip/hier_gossip.h"

#include <algorithm>
#include <array>
#include <utility>

#include "src/agg/codec.h"
#include "src/common/ensure.h"
#include "src/common/log.h"
#include "src/obs/profile.h"

namespace gridbox::protocols::gossip {

namespace {

// Wire message types. Both carry a batch of 1..kMaxEntriesPerMessage
// entries; single-value mode simply sends batches of one.
constexpr std::uint8_t kVoteGossip = 1;   // phase 1: member votes
constexpr std::uint8_t kChildGossip = 2;  // phase >= 2: child aggregates

// Fixed wire layout, used both to encode and to validate lengths strictly on
// receive: type u8 + phase u8 + group prefix u64 + count u8, then `count`
// fixed-size entries. Anything whose length does not match exactly is
// malformed — truncated AND overlong frames are rejected.
constexpr std::size_t kBatchHeaderBytes = 1 + 1 + 8 + 1;
constexpr std::size_t kVoteEntryBytes = 4 + 8 + 8;  // origin, value, token
constexpr std::size_t kChildEntryBytes =
    1 + agg::kPartialWireBytes + 8;  // slot, partial, token

}  // namespace

net::Frame HierGossipNode::encode_votes(
    std::uint64_t group_prefix, const std::vector<VoteEntry>& entries) {
  GRIDBOX_PROFILE_SCOPE("codec.encode");
  agg::ByteWriter w;
  w.u8(kVoteGossip);
  w.u8(1);  // phase
  w.u64(group_prefix);
  w.u8(static_cast<std::uint8_t>(entries.size()));
  for (const VoteEntry& e : entries) {
    w.u32(e.origin.value());
    w.f64(e.value);
    w.u64(e.token);
  }
  return w.take();
}

net::Frame HierGossipNode::encode_children(
    std::uint8_t phase, std::uint64_t group_prefix,
    const std::vector<ChildEntry>& entries) {
  GRIDBOX_PROFILE_SCOPE("codec.encode");
  agg::ByteWriter w;
  w.u8(kChildGossip);
  w.u8(phase);
  w.u64(group_prefix);
  w.u8(static_cast<std::uint8_t>(entries.size()));
  for (const ChildEntry& e : entries) {
    w.u8(static_cast<std::uint8_t>(e.slot));
    agg::write_partial(w, e.partial);
    w.u64(e.token);
  }
  return w.take();
}

HierGossipNode::HierGossipNode(MemberId self, double vote,
                               membership::View view, protocols::NodeEnv env,
                               Rng rng, GossipConfig config)
    : ProtocolNode(self, vote, std::move(view), env, rng),
      config_(config),
      phase_(arena().phase(slot())),
      rounds_budget_(arena().rounds_budget(slot())) {
  expects(config_.k == hier().fanout(),
          "gossip config K must match the hierarchy fanout");
  // Segment mode needs the run's phase tables *and* this node seeing the
  // run's exact member set (the tables describe the full group, not a
  // partial view). Views share the arena's vector, so pointer identity is
  // the test.
  use_segment_ = arena().has_phase_tables() &&
                 this->view().members().data() == arena().members().data();
}

void HierGossipNode::start(SimTime at) {
  ensures(phase_ == 0, "start called twice");
  SimTime begin = at;
  if (config_.start_skew_max.ticks() > 0) {
    begin += SimTime{static_cast<SimTime::underlying>(
        rng().uniform_int(0, static_cast<std::uint64_t>(
                                 config_.start_skew_max.ticks())))};
  }
  enter_phase(1);
  start_rounds(begin, config_.round_duration);
}

void HierGossipNode::enter_phase(std::size_t phase) {
  phase_ = static_cast<std::uint32_t>(phase);
  rounds_in_phase_ = 0;
  // Phase deadlines sit on a fixed grid: phase i times out once the member
  // has executed i * ⌈C·log_M N⌉ rounds since its own start. A member that
  // bumps early (step 2(b)) therefore spends the saved rounds gossiping in
  // the *next* phase — it keeps feeding slower peers instead of terminating
  // ahead of them, which is what makes the asynchronous protocol's
  // completeness match (even slightly beat) the synchronous analysis.
  rounds_budget_ =
      static_cast<std::uint64_t>(phase) *
      config_.rounds_per_phase(hier().group_size_estimate());
  round_robin_cursor_ = 0;
  rebuild_peer_cache();

  if (phase == 1) {
    // The phase-1 universe: this node's box members (itself included),
    // ascending by id — the key set the old per-node std::map grew into.
    if (use_segment_) {
      p1_ids_.reserve(seg_.size);
      for (std::uint32_t i = 0; i < seg_.size; ++i) {
        p1_ids_.push_back(arena().ordered_member(1, seg_.offset + i));
      }
    } else {
      p1_ids_ = peers_;
      p1_ids_.insert(
          std::lower_bound(p1_ids_.begin(), p1_ids_.end(), self()), self());
    }
    p1_mask_ = MemberBitset(p1_ids_.size());
    p1_values_.assign(p1_ids_.size(), KnownValue{});
    // Own vote is always known.
    KnownValue own;
    own.partial = agg::Partial::from_vote(own_vote());
    own.audit_token = register_own_vote();
    const std::size_t self_idx =
        use_segment_
            ? seg_.pos
            : static_cast<std::size_t>(
                  std::lower_bound(p1_ids_.begin(), p1_ids_.end(), self()) -
                  p1_ids_.begin());
    p1_mask_.set(self_idx);
    p1_values_[self_idx] = std::move(own);
  } else {
    known_children_.assign(config_.k, std::nullopt);
    // Seed our own child slot with the previous phase's result (§6.3:
    // "Mj already knows about the aggregate value for its own
    // height-(i−1) subtree immediately after phase (i−1) concludes").
    known_children_[hier().child_slot(self(), phase)] = carry_;
  }
  if (config_.trace != nullptr) {
    config_.trace->on_phase_entered(self(), phase);
    if (phase == 1) {
      config_.trace->on_knowledge_gained(self(), 1, self().value(), self(), 1,
                                         GainKind::kLocal);
    } else {
      config_.trace->on_knowledge_gained(
          self(), phase,
          static_cast<std::uint32_t>(hier().child_slot(self(), phase)), self(),
          carry_.partial.count(), GainKind::kLocal);
    }
  }
}

void HierGossipNode::rebuild_peer_cache() {
  if (use_segment_) {
    seg_ = arena().segment(phase_, self());
    peers_.clear();
  } else {
    peers_ = hier().phase_peers(view().members(), self(), phase_);
  }
}

std::size_t HierGossipNode::peer_count() const {
  return use_segment_ ? seg_.size - 1 : peers_.size();
}

MemberId HierGossipNode::peer_at(std::size_t index) const {
  if (!use_segment_) return peers_[index];
  // The segment includes self at seg_.pos; skipping it reproduces the old
  // self-excluded peer vector index for index.
  const std::size_t j = index < seg_.pos ? index : index + 1;
  return arena().ordered_member(phase_, seg_.offset + j);
}

bool HierGossipNode::on_round() {
  if (finished() || !alive()) return false;

  // Deadline check first, against the global phase grid: messages gossiped
  // in the last round of a phase window land (latency < round length) before
  // this tick, so they still count. rounds_executed() counts every round
  // since this member's start.
  while (!finished() && rounds_executed() >= rounds_budget_) {
    conclude_phase(PhaseEnd::kTimeout);
  }
  if (finished()) return false;

  GRIDBOX_PROFILE_SCOPE("gossip.round");
  count_round();
  ++rounds_in_phase_;

  std::uint32_t fanout = 0;
  const std::size_t gossipees = peer_count();
  if (gossipees > 0) {
    // Note: gossip_once subsamples entries into scratch_picks_, so the
    // round's gossipee picks need their own scratch vector.
    rng().sample_indices_into(
        gossipees, std::min<std::size_t>(config_.fanout_m, gossipees),
        scratch_round_picks_);
    fanout = static_cast<std::uint32_t>(scratch_round_picks_.size());
    for (const std::size_t p : scratch_round_picks_) gossip_once(peer_at(p));
  }
  if (config_.trace != nullptr) {
    config_.trace->on_round_gossiped(self(), phase_, fanout);
  }
  return true;
}

void HierGossipNode::gossip_once(MemberId target) {
  const std::uint64_t group = hier().phase_group(self(), phase_);
  if (phase_ == 1) {
    std::vector<VoteEntry>& entries = scratch_votes_;
    entries.clear();
    if (config_.exchange_mode == ExchangeMode::kSingleValue) {
      const Candidate picked = pick_value_to_send();
      if (picked.value == nullptr) return;
      ++picked.value->times_sent;
      entries.push_back(VoteEntry{
          MemberId{static_cast<MemberId::underlying>(picked.key)},
          picked.value->partial.sum(), picked.value->audit_token});
    } else {
      // Full-state: everything known, or a uniform subset above the cap.
      for_each_known_vote([&entries](MemberId origin, KnownValue& kv) {
        entries.push_back(VoteEntry{origin, kv.partial.sum(), kv.audit_token});
      });
      if (entries.size() > kMaxEntriesPerMessage) {
        // Same draw sequence as sampling from a separate `all` vector, so
        // seeded runs and their wire bytes are unchanged.
        rng().sample_indices_into(entries.size(), kMaxEntriesPerMessage,
                                  scratch_picks_);
        std::array<VoteEntry, kMaxEntriesPerMessage> picked;
        for (std::size_t i = 0; i < scratch_picks_.size(); ++i) {
          picked[i] = entries[scratch_picks_[i]];
        }
        entries.assign(picked.begin(), picked.begin() + scratch_picks_.size());
      }
    }
    if (!entries.empty()) send_to(target, encode_votes(group, entries));
  } else {
    std::vector<ChildEntry>& entries = scratch_children_;
    entries.clear();
    if (config_.exchange_mode == ExchangeMode::kSingleValue) {
      const Candidate picked = pick_value_to_send();
      if (picked.value == nullptr) return;
      ++picked.value->times_sent;
      entries.push_back(
          ChildEntry{static_cast<std::uint32_t>(picked.key),
                     picked.value->partial, picked.value->audit_token});
    } else {
      for (std::uint32_t slot = 0; slot < config_.k; ++slot) {
        const auto& known = known_children_[slot];
        if (known.has_value()) {
          entries.push_back(
              ChildEntry{slot, known->partial, known->audit_token});
        }
      }
      if (entries.size() > kMaxEntriesPerMessage) {
        rng().sample_indices_into(entries.size(), kMaxEntriesPerMessage,
                                  scratch_picks_);
        std::array<ChildEntry, kMaxEntriesPerMessage> picked;
        for (std::size_t i = 0; i < scratch_picks_.size(); ++i) {
          picked[i] = entries[scratch_picks_[i]];
        }
        entries.assign(picked.begin(), picked.begin() + scratch_picks_.size());
      }
    }
    if (!entries.empty()) {
      send_to(target, encode_children(static_cast<std::uint8_t>(phase_),
                                      group, entries));
    }
  }
}

HierGossipNode::Candidate HierGossipNode::pick_value_to_send() {
  // Collect candidate values for the current phase, ascending by key — the
  // same order the std::map iteration produced.
  std::vector<Candidate>& candidates = scratch_candidates_;
  candidates.clear();
  if (phase_ == 1) {
    for_each_known_vote([&candidates](MemberId origin, KnownValue& kv) {
      candidates.push_back(Candidate{origin.value(), &kv});
    });
  } else {
    for (std::uint32_t slot = 0; slot < config_.k; ++slot) {
      auto& known = known_children_[slot];
      if (known.has_value()) {
        candidates.push_back(Candidate{slot, &known.value()});
      }
    }
  }
  if (candidates.empty()) return Candidate{};

  switch (config_.value_policy) {
    case ValuePolicy::kRandomSingle:
      return candidates[rng().index(candidates.size())];
    case ValuePolicy::kRarestFirst:
      return *std::min_element(candidates.begin(), candidates.end(),
                               [](const Candidate& a, const Candidate& b) {
                                 return a.value->times_sent <
                                        b.value->times_sent;
                               });
    case ValuePolicy::kRoundRobin:
      return candidates[round_robin_cursor_++ % candidates.size()];
  }
  return candidates.front();
}

void HierGossipNode::on_message(const net::Message& message) {
  if (finished() || !alive()) return;
  GRIDBOX_PROFILE_SCOPE("codec.decode");
  agg::ByteReader r(message.frame);
  const std::uint8_t type = r.u8();
  const std::size_t msg_phase = r.u8();
  const std::uint64_t group_prefix = r.u64();

  // The paper absorbs a value only "by a gossip message from another member
  // in phase i": messages for other phases — stale ones from laggards — are
  // dropped, not buffered. The exception is *adoption* (below).
  if (type == kVoteGossip) {
    const std::size_t count = r.u8();
    expects(message.frame.size() ==
                kBatchHeaderBytes + count * kVoteEntryBytes,
            "vote gossip frame length mismatch");
    if (msg_phase != 1) return;
    for (std::size_t i = 0; i < count && i < kMaxEntriesPerMessage; ++i) {
      const MemberId origin{r.u32()};
      const double value = r.f64();
      const std::uint64_t token = r.u64();
      if (phase_ != 1) continue;  // may have bumped mid-batch
      if (group_prefix != hier().phase_group(self(), 1)) return;
      absorb_vote(origin, value, token, message.source);
    }
  } else if (type == kChildGossip) {
    const std::size_t count = r.u8();
    expects(message.frame.size() ==
                kBatchHeaderBytes + count * kChildEntryBytes,
            "child gossip frame length mismatch");
    if (msg_phase > hier().num_phases() || msg_phase < 2) return;
    for (std::size_t i = 0; i < count && i < kMaxEntriesPerMessage; ++i) {
      const std::uint32_t slot = r.u8();
      const agg::Partial partial = agg::read_partial(r);
      const std::uint64_t token = r.u64();
      if (finished()) return;
      if (slot >= config_.k) return;  // malformed
      if (msg_phase == phase_) {
        if (group_prefix != hier().phase_group(self(), msg_phase)) return;
        absorb_child(slot, partial, token, message.source);
      } else if (config_.early_bump && phase_ >= 1 && msg_phase > phase_ &&
                 group_prefix == hier().phase_group(self(), msg_phase) &&
                 slot == hier().child_slot(self(), msg_phase)) {
        // Adoption: a peer ahead of us gossiped the aggregate of a subtree
        // that *encloses this member's current working subtree* — a value
        // our next phases exist to compute. "Mj knows about the aggregate
        // value of a subtree when it first receives the same": adopt it (if
        // at least as complete as what we could conclude ourselves) and jump
        // to the sender's phase. This is how a member left behind by
        // early-bumping peers — common when grid boxes are sparse — catches
        // up instead of carrying a permanently incomplete subtree value to
        // the root.
        adopt_phase_result(msg_phase, partial, token, message.source);
      }
      // Other entries (stale, or not about our own subtree) are skipped.
    }
  }
  // Unknown types are dropped: forward compatibility over crashing.
}

void HierGossipNode::absorb_vote(MemberId origin, double value,
                                 std::uint64_t token, MemberId sender) {
  // First received wins; duplicates are idempotent (same origin, same vote).
  bool inserted = false;
  const auto it = std::lower_bound(p1_ids_.begin(), p1_ids_.end(), origin);
  if (it != p1_ids_.end() && *it == origin) {
    const auto idx = static_cast<std::size_t>(it - p1_ids_.begin());
    if (!p1_mask_.test(idx)) {
      p1_mask_.set(idx);
      p1_values_[idx].partial = agg::Partial::from_vote(value);
      p1_values_[idx].audit_token = token;
      p1_values_[idx].times_sent = 0;
      inserted = true;
    }
  } else {
    // Origin outside this node's phase-1 universe: possible under partial
    // views, where a box peer knows members this node's view lacks.
    KnownValue kv;
    kv.partial = agg::Partial::from_vote(value);
    kv.audit_token = token;
    inserted = p1_extra_.emplace(origin, std::move(kv)).second;
  }
  if (inserted && config_.trace != nullptr) {
    config_.trace->on_knowledge_gained(self(), 1, origin.value(), sender, 1,
                                       GainKind::kRemote);
  }
  if (phase_ == 1 && config_.phase1_early_bump_with_view &&
      phase_saturated()) {
    conclude_phase(PhaseEnd::kSaturated);
  }
}

void HierGossipNode::absorb_child(std::uint32_t slot,
                                  const agg::Partial& partial,
                                  std::uint64_t token, MemberId sender) {
  if (known_children_[slot].has_value()) return;  // first received wins
  KnownValue kv;
  kv.partial = partial;
  kv.audit_token = token;
  known_children_[slot] = std::move(kv);
  if (config_.trace != nullptr) {
    config_.trace->on_knowledge_gained(self(), phase_, slot, sender,
                                       partial.count(), GainKind::kRemote);
  }
  if (config_.early_bump && phase_saturated()) {
    if (phase_ >= hier().num_phases() && config_.final_phase_linger) {
      // Saturated in the last phase: the estimate cannot improve, but
      // terminating now would stop feeding peers that still miss root
      // aggregates. Keep gossiping; the deadline concludes us.
      return;
    }
    conclude_phase(PhaseEnd::kSaturated);
  }
}

bool HierGossipNode::phase_saturated() const {
  if (phase_ == 1) {
    if (!config_.phase1_early_bump_with_view) return false;
    // All box members' votes known (p1_ids_ is exactly that set, self
    // included and always known).
    return p1_mask_.count() == p1_ids_.size();
  }
  return std::all_of(known_children_.begin(), known_children_.end(),
                     [](const auto& v) { return v.has_value(); });
}

void HierGossipNode::conclude_phase(PhaseEnd how) {
  agg::Partial acc;
  std::vector<std::uint64_t> tokens;
  if (phase_ == 1) {
    for_each_known_vote([&acc, &tokens](MemberId, KnownValue& kv) {
      acc.merge(kv.partial);
      tokens.push_back(kv.audit_token);
    });
  } else {
    for (const auto& known : known_children_) {
      if (!known.has_value()) continue;
      acc.merge(known->partial);
      tokens.push_back(known->audit_token);
    }
  }
  carry_.partial = acc;
  carry_.audit_token =
      audit() != nullptr ? audit()->register_merge(tokens) : agg::kNoAuditToken;
  carry_.times_sent = 0;
  finish_phase(how);
}

void HierGossipNode::adopt_phase_result(std::size_t msg_phase,
                                        const agg::Partial& partial,
                                        std::uint64_t token, MemberId sender) {
  // What would this member conclude from its own knowledge right now?
  std::uint32_t own_count = 0;
  if (phase_ == 1) {
    own_count = static_cast<std::uint32_t>(known_vote_count());
  } else {
    for (const auto& known : known_children_) {
      if (known.has_value()) own_count += known->partial.count();
    }
  }
  // Keep gossiping if we are strictly better informed than the adopter —
  // our conclusion will spread on its own merit.
  if (partial.count() < own_count) return;
  carry_.partial = partial;
  carry_.audit_token = token;
  carry_.times_sent = 0;
  if (config_.trace != nullptr) {
    config_.trace->on_knowledge_gained(
        self(), msg_phase,
        static_cast<std::uint32_t>(hier().child_slot(self(), msg_phase)),
        sender, partial.count(), GainKind::kAdopted);
  }
  // The adopted value concludes phase msg_phase − 1, skipping the phases in
  // between; they end (vacuously) now.
  while (phase_ + 1 < msg_phase) {
    phase_end_times_.push_back(scheduler().now());
    ++phase_;
  }
  finish_phase(PhaseEnd::kAdopted);
}

void HierGossipNode::finish_phase(PhaseEnd how) {
  phase_end_times_.push_back(scheduler().now());
  if (config_.trace != nullptr) {
    config_.trace->on_phase_concluded(self(), phase_, how,
                                      carry_.partial.count());
  }
  if (phase_ >= hier().num_phases()) {
    set_outcome(carry_.partial, carry_.audit_token);
    phase_ = static_cast<std::uint32_t>(hier().num_phases() + 1);
    if (config_.trace != nullptr) {
      config_.trace->on_finished(self(), carry_.partial.count());
    }
  } else {
    enter_phase(phase_ + 1);
  }
}

}  // namespace gridbox::protocols::gossip
