#include "src/protocols/gossip/gossip_config.h"

#include <algorithm>
#include <cmath>

#include "src/common/ensure.h"

namespace gridbox::protocols::gossip {

std::uint64_t GossipConfig::rounds_per_phase(std::size_t n) const {
  expects(k >= 2, "K must be at least 2");
  expects(fanout_m >= 1, "M must be at least 1");
  expects(round_multiplier_c > 0.0, "C must be positive");
  if (rounds_per_phase_override > 0) return rounds_per_phase_override;
  // ⌈C · log_M N⌉; with M = 1 the base-M log is undefined, so fall back to
  // base 2 (a single-gossipee round still spreads one value per round).
  const double base = fanout_m >= 2 ? static_cast<double>(fanout_m) : 2.0;
  const double rounds =
      round_multiplier_c * std::log(std::max<std::size_t>(n, 2)) / std::log(base);
  return static_cast<std::uint64_t>(std::max(1.0, std::ceil(rounds)));
}

}  // namespace gridbox::protocols::gossip
