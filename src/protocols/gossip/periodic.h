// Periodic aggregation (§2: "Our discussion considers only one run of the
// aggregation protocol, but this can be extended to one which periodically
// calculates the global aggregate").
//
// A PeriodicAggregatorNode runs successive one-shot Hierarchical Gossiping
// instances — epochs — over the same long-lived group, sampling a fresh vote
// each epoch from a caller-supplied function (a sensor read, a load probe).
// Epochs are sequential in simulated time: the period must exceed the
// worst-case instance duration plus the maximum network latency, so an
// epoch's stragglers cannot leak messages into the next instance (validated
// at construction). One epoch at a time keeps the wire format of the
// underlying protocol unchanged.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "src/protocols/gossip/hier_gossip.h"

namespace gridbox::protocols::gossip {

struct PeriodicConfig {
  GossipConfig gossip;

  /// Time between epoch starts.
  SimTime period = SimTime::seconds(2);

  /// Epochs to run; the node stops scheduling after the last one.
  std::size_t epochs = 1;

  /// Upper bound on one-way network latency, used to validate that epochs
  /// cannot overlap on the wire.
  SimTime max_latency = SimTime::millis(10);
};

class PeriodicAggregatorNode final : public net::Endpoint {
 public:
  /// `vote_for_epoch(e)` is sampled at the start of epoch e (0-based).
  PeriodicAggregatorNode(MemberId self,
                         std::function<double(std::size_t)> vote_for_epoch,
                         membership::View view, protocols::NodeEnv env,
                         Rng rng, PeriodicConfig config);

  /// Schedules epoch 0 at `at` and each next epoch one period later.
  void start(SimTime at);

  void on_message(const net::Message& message) override;

  /// Outcomes of all *completed* epochs, in epoch order.
  [[nodiscard]] const std::vector<protocols::NodeOutcome>& history() const {
    return history_;
  }

  /// The epoch currently running (last scheduled), 0-based; meaningful once
  /// start() was called.
  [[nodiscard]] std::size_t current_epoch() const { return epoch_; }

  /// The most recent completed estimate, if any epoch has finished.
  [[nodiscard]] const protocols::NodeOutcome* latest() const {
    return history_.empty() ? nullptr : &history_.back();
  }

  [[nodiscard]] MemberId self() const { return self_; }

 private:
  void begin_epoch(std::size_t epoch);
  void harvest_previous();

  MemberId self_;
  std::function<double(std::size_t)> vote_for_epoch_;
  membership::View view_;
  protocols::NodeEnv env_;
  Rng rng_;
  PeriodicConfig config_;

  bool started_ = false;
  std::size_t epoch_ = 0;
  std::unique_ptr<HierGossipNode> instance_;
  std::vector<protocols::NodeOutcome> history_;
};

}  // namespace gridbox::protocols::gossip
