#include "src/protocols/arena.h"

#include <algorithm>
#include <utility>

namespace gridbox::protocols {

StateArena::StateArena(std::shared_ptr<const std::vector<MemberId>> members)
    : StateArena(std::move(members), /*solo=*/false) {}

StateArena::StateArena(std::shared_ptr<const std::vector<MemberId>> members,
                       bool solo)
    : members_(std::move(members)), solo_(solo) {
  expects(members_ != nullptr && !members_->empty(),
          "arena needs at least one member");
  if (!solo_) {
    for (std::size_t i = 0; i < members_->size(); ++i) {
      expects((*members_)[i].value() == i,
              "shared arena requires dense member ids (slot == id)");
    }
  }
  const std::size_t n = members_->size();
  vote_.assign(n, 0.0);
  audit_token_.assign(n, 0);
  phase_.assign(n, 0);
  round_.assign(n, 0);
  rounds_budget_.assign(n, 0);
  messages_sent_.assign(n, 0);
}

StateArena StateArena::solo(MemberId self) {
  auto members = std::make_shared<const std::vector<MemberId>>(
      std::vector<MemberId>{self});
  return StateArena(std::move(members), /*solo=*/true);
}

void StateArena::recycle(
    std::shared_ptr<const std::vector<MemberId>> members,
    const hierarchy::GridBoxHierarchy& hier) {
  expects(!solo_, "recycle needs a shared (dense) arena");
  expects(members != nullptr && members->size() == members_->size(),
          "recycle requires the same group size");
  for (std::size_t i = 0; i < members->size(); ++i) {
    expects((*members)[i].value() == i,
            "shared arena requires dense member ids (slot == id)");
  }
  members_ = std::move(members);
  std::fill(vote_.begin(), vote_.end(), 0.0);
  std::fill(audit_token_.begin(), audit_token_.end(), 0);
  std::fill(phase_.begin(), phase_.end(), 0);
  std::fill(round_.begin(), round_.end(), 0);
  std::fill(rounds_budget_.begin(), rounds_budget_.end(), 0);
  std::fill(messages_sent_.begin(), messages_sent_.end(), 0);
  phase_order_.clear();
  build_phase_tables(hier);
}

void StateArena::build_phase_tables(const hierarchy::GridBoxHierarchy& hier) {
  if (has_phase_tables()) return;
  expects(!solo_, "phase tables need a shared (dense) arena");
  const std::size_t n = members_->size();
  const std::size_t phases = hier.num_phases();
  phase_order_.resize(phases);
  std::vector<std::uint64_t> keys(n);
  for (std::size_t p = 1; p <= phases; ++p) {
    PhaseTable& t = phase_order_[p - 1];
    for (std::size_t i = 0; i < n; ++i) {
      keys[i] = hier.phase_group((*members_)[i], p);
    }
    t.order = *members_;
    // Stable: within one group, members stay ascending by id — the exact
    // order the per-node phase_peers vectors had.
    std::stable_sort(t.order.begin(), t.order.end(),
                     [&keys](MemberId a, MemberId b) {
                       return keys[a.value()] < keys[b.value()];
                     });
    t.offset.resize(n);
    t.size.resize(n);
    t.pos.resize(n);
    std::size_t start = 0;
    while (start < n) {
      std::size_t end = start + 1;
      const std::uint64_t group = keys[t.order[start].value()];
      while (end < n && keys[t.order[end].value()] == group) ++end;
      for (std::size_t i = start; i < end; ++i) {
        const std::size_t m = t.order[i].value();
        t.offset[m] = static_cast<std::uint32_t>(start);
        t.size[m] = static_cast<std::uint32_t>(end - start);
        t.pos[m] = static_cast<std::uint32_t>(i - start);
      }
      start = end;
    }
  }
}

}  // namespace gridbox::protocols
