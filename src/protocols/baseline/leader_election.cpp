#include "src/protocols/baseline/leader_election.h"

#include <utility>

namespace gridbox::protocols::baseline {

namespace {

CommitteeConfig single_leader(CommitteeConfig config) {
  config.committee_size = 1;
  return config;
}

}  // namespace

LeaderElectionNode::LeaderElectionNode(MemberId self, double vote,
                                       membership::View view,
                                       protocols::NodeEnv env, Rng rng,
                                       CommitteeConfig config)
    : CommitteeNode(self, vote, std::move(view), env, rng,
                    single_leader(config)) {}

}  // namespace gridbox::protocols::baseline
