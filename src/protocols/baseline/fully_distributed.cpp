#include "src/protocols/baseline/fully_distributed.h"

#include <algorithm>

#include "src/agg/codec.h"
#include "src/common/ensure.h"

namespace gridbox::protocols::baseline {

namespace {

constexpr std::uint8_t kVote = 1;
// Exact wire size of a kVote message: type + origin + value + token.
constexpr std::size_t kVoteWireBytes = 1 + 4 + 8 + 8;

net::Frame encode_vote(MemberId origin, double value, std::uint64_t token) {
  agg::ByteWriter w;
  w.u8(kVote);
  w.u32(origin.value());
  w.f64(value);
  w.u64(token);
  return w.take();
}

}  // namespace

FullyDistributedNode::FullyDistributedNode(MemberId self, double vote,
                                           membership::View view,
                                           protocols::NodeEnv env, Rng rng,
                                           FullyDistributedConfig config)
    : ProtocolNode(self, vote, std::move(view), env, rng), config_(config) {
  expects(config_.fanout_m >= 1, "fanout must be at least 1");
}

void FullyDistributedNode::absorb(MemberId origin, const KnownVote& kv,
                                  MemberId sender) {
  const std::size_t id = origin.value();
  if (id >= known_mask_.universe_size()) known_mask_.grow_universe(id + 1);
  if (known_mask_.test(id)) return;  // first received wins
  known_mask_.set(id);
  if (id >= votes_.size()) votes_.resize(id + 1);
  votes_[id] = kv;
  if (origin != self()) {
    if (gossip::GossipTrace* trace = env_trace()) {
      trace->on_knowledge_gained(self(), 1, origin.value(), sender, 1,
                                 gossip::GainKind::kRemote);
    }
  }
}

void FullyDistributedNode::start(SimTime at) {
  own_token_ = register_own_vote();
  absorb(self(), KnownVote{own_vote(), own_token_}, self());
  if (gossip::GossipTrace* trace = env_trace()) {
    trace->on_phase_entered(self(), 1);
    trace->on_knowledge_gained(self(), 1, self().value(), self(), 1,
                               gossip::GainKind::kLocal);
  }
  send_queue_.clear();
  for (const MemberId m : view().members()) {
    if (m != self()) send_queue_.push_back(m);
  }
  rng().shuffle(send_queue_);
  start_rounds(at, config_.round_duration);
}

bool FullyDistributedNode::on_round() {
  if (finished() || !alive()) return false;
  count_round();
  for (std::uint32_t i = 0;
       i < config_.fanout_m && send_cursor_ < send_queue_.size(); ++i) {
    send_to(send_queue_[send_cursor_++],
            encode_vote(self(), own_vote(), own_token_));
  }
  if (send_cursor_ >= send_queue_.size()) {
    if (++rounds_after_send_ > config_.drain_rounds) {
      conclude();
      return false;
    }
  }
  return true;
}

void FullyDistributedNode::on_message(const net::Message& message) {
  if (finished() || !alive()) return;
  agg::ByteReader r(message.frame);
  if (r.u8() != kVote) return;
  expects(message.frame.size() == kVoteWireBytes,
          "vote frame length mismatch");
  const MemberId origin{r.u32()};
  const double value = r.f64();
  const std::uint64_t token = r.u64();
  absorb(origin, KnownVote{value, token}, message.source);
}

void FullyDistributedNode::conclude() {
  agg::Partial acc;
  std::vector<std::uint64_t> tokens;
  known_mask_.for_each_set([this, &acc, &tokens](std::size_t id) {
    acc.merge(agg::Partial::from_vote(votes_[id].value));
    tokens.push_back(votes_[id].audit_token);
  });
  const std::uint64_t token =
      audit() != nullptr ? audit()->register_merge(tokens) : agg::kNoAuditToken;
  set_outcome(acc, token);
  if (gossip::GossipTrace* trace = env_trace()) {
    trace->on_phase_concluded(self(), 1, gossip::PhaseEnd::kTimeout,
                              acc.count());
    trace->on_finished(self(), acc.count());
  }
}

}  // namespace gridbox::protocols::baseline
