// Single-leader hierarchical baseline (§6.2): a committee of exactly one.
//
// The leader of each subtree is the member with the smallest hash value;
// everything else is CommitteeNode machinery. The interesting failure mode —
// the crash of a height-i leader excluding ~K^i votes from the final
// estimate — is exercised by tests/test_baselines.cpp and measured by
// bench/cmp_baselines.
#pragma once

#include "src/protocols/baseline/committee.h"

namespace gridbox::protocols::baseline {

class LeaderElectionNode final : public CommitteeNode {
 public:
  /// `config.committee_size` is forced to 1.
  LeaderElectionNode(MemberId self, double vote, membership::View view,
                     protocols::NodeEnv env, Rng rng, CommitteeConfig config);
};

}  // namespace gridbox::protocols::baseline
