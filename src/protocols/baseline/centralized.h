// Centralized baseline (§5): members send their votes to a well-known
// leader, which aggregates and disseminates the result.
//
// Optimal O(N) messages, but: the leader's bandwidth makes the running time
// O(N); the leader is a message-implosion hotspot (modelled by a per-round
// receive cap — overflow messages are lost); and a leader crash loses the
// entire computation. This is the paper's argument against centralization.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/bitset.h"
#include "src/protocols/node.h"

namespace gridbox::protocols::baseline {

struct CentralizedConfig {
  /// The well-known leader.
  MemberId leader = MemberId{0};

  /// How many times a member (re)sends its vote, one per round.
  std::uint32_t vote_retries = 1;

  /// If true, member m sends its vote starting at round
  /// (m mod ceil(N / leader_receive_cap)) so the leader's inbox is not
  /// swamped in round 0; if false, everyone sends immediately, and the
  /// implosion loss becomes visible.
  bool staggered_sends = true;

  /// Messages the leader can absorb per round; the rest are dropped
  /// (receive-buffer overflow under implosion).
  std::uint32_t leader_receive_cap = 16;

  /// Rounds the leader waits before computing the aggregate. Zero means
  /// "auto": long enough for all staggered sends plus retries plus drain.
  std::uint32_t collect_rounds = 0;

  /// Per-round send budget during result dissemination.
  std::uint32_t dissemination_fanout = 2;

  SimTime round_duration = SimTime::millis(10);
};

class CentralizedNode final : public protocols::ProtocolNode {
 public:
  CentralizedNode(MemberId self, double vote, membership::View view,
                  protocols::NodeEnv env, Rng rng, CentralizedConfig config);

  void start(SimTime at) override;
  void on_message(const net::Message& message) override;

  [[nodiscard]] bool is_leader() const { return self() == config_.leader; }

  /// Votes the leader lost to receive-buffer overflow (leader node only).
  [[nodiscard]] std::uint64_t implosion_drops() const {
    return implosion_drops_;
  }

 private:
  bool on_round() override;
  [[nodiscard]] std::uint32_t effective_collect_rounds() const;

  CentralizedConfig config_;
  std::uint64_t round_ = 0;
  std::uint64_t own_token_ = agg::kNoAuditToken;

  // Leader state. Struct-of-arrays collection: bit `id` set ⟺
  // collected_[id] holds that member's (vote, token); grows on demand.
  MemberBitset collected_mask_;
  std::vector<std::pair<double, std::uint64_t>> collected_;
  std::uint32_t received_this_round_ = 0;
  std::uint64_t implosion_drops_ = 0;
  bool result_ready_ = false;
  agg::Partial result_;
  std::uint64_t result_token_ = agg::kNoAuditToken;
  std::vector<MemberId> dissemination_queue_;
  std::size_t dissemination_cursor_ = 0;

  // Member state.
  std::uint32_t sends_done_ = 0;
};

}  // namespace gridbox::protocols::baseline
