#include "src/protocols/baseline/committee.h"

#include <algorithm>

#include "src/agg/codec.h"
#include "src/common/ensure.h"
#include "src/hashing/hash_function.h"

namespace gridbox::protocols::baseline {

namespace {

constexpr std::uint8_t kVote = 1;
constexpr std::uint8_t kChildPartial = 2;
constexpr std::uint8_t kResult = 3;

// Exact wire sizes, enforced on receive.
constexpr std::size_t kVoteWireBytes = 1 + 4 + 8 + 8;
constexpr std::size_t kChildWireBytes = 1 + 1 + 1 + agg::kPartialWireBytes + 8;
constexpr std::size_t kResultWireBytes = 1 + agg::kPartialWireBytes + 8;

net::Frame encode_vote(MemberId origin, double value, std::uint64_t token) {
  agg::ByteWriter w;
  w.u8(kVote);
  w.u32(origin.value());
  w.f64(value);
  w.u64(token);
  return w.take();
}

net::Frame encode_child(std::uint8_t phase, std::uint32_t slot,
                        const agg::Partial& partial, std::uint64_t token) {
  agg::ByteWriter w;
  w.u8(kChildPartial);
  w.u8(phase);
  w.u8(static_cast<std::uint8_t>(slot));
  agg::write_partial(w, partial);
  w.u64(token);
  return w.take();
}

net::Frame encode_result(const agg::Partial& partial, std::uint64_t token) {
  agg::ByteWriter w;
  w.u8(kResult);
  agg::write_partial(w, partial);
  w.u64(token);
  return w.take();
}

}  // namespace

CommitteeNode::CommitteeNode(MemberId self, double vote, membership::View view,
                             protocols::NodeEnv env, Rng rng,
                             CommitteeConfig config)
    : ProtocolNode(self, vote, std::move(view), env, rng), config_(config) {
  expects(config_.committee_size >= 1, "committee size must be at least 1");
  expects(config_.phase_rounds >= 1, "phase rounds must be at least 1");
  expects(config_.fanout_m >= 1, "fanout must be at least 1");
}

std::vector<MemberId> CommitteeNode::committee_of(std::size_t phase,
                                                  std::uint64_t prefix) const {
  // Deterministic "election": the K' members with smallest hash value (ties
  // by id). Every member with the same view computes the same committees, so
  // no election protocol runs — which is exactly why this approach needs
  // consistent complete views (§6.2).
  std::vector<MemberId> in_group;
  for (const MemberId m : view().members()) {
    if (hier().phase_group(m, phase) == prefix) in_group.push_back(m);
  }
  const auto by_hash = [this](MemberId a, MemberId b) {
    const double ha = hier().hash_value(a);
    const double hb = hier().hash_value(b);
    if (ha != hb) return ha < hb;
    return a < b;
  };
  const std::size_t take =
      std::min<std::size_t>(config_.committee_size, in_group.size());
  std::partial_sort(in_group.begin(), in_group.begin() + static_cast<std::ptrdiff_t>(take),
                    in_group.end(), by_hash);
  in_group.resize(take);
  return in_group;
}

void CommitteeNode::start(SimTime at) {
  own_token_ = register_own_vote();
  num_phases_ = hier().num_phases();

  my_committee_.resize(num_phases_);
  am_committee_.assign(num_phases_, false);
  for (std::size_t p = 1; p <= num_phases_; ++p) {
    my_committee_[p - 1] = committee_of(p, hier().phase_group(self(), p));
    am_committee_[p - 1] =
        std::find(my_committee_[p - 1].begin(), my_committee_[p - 1].end(),
                  self()) != my_committee_[p - 1].end();
  }
  if (num_phases_ >= 2) {
    slots_.assign(num_phases_ - 1, {});
    for (auto& s : slots_) s.assign(hier().fanout(), std::nullopt);
  }
  level_partial_.assign(num_phases_, std::nullopt);

  if (am_committee_[0]) {
    const std::size_t id = self().value();
    votes_mask_.grow_universe(id + 1);
    votes_.resize(id + 1);
    votes_mask_.set(id);
    votes_[id] = std::make_pair(own_vote(), own_token_);
  }
  if (gossip::GossipTrace* trace = env_trace()) {
    trace->on_phase_entered(self(), 1);
    trace->on_knowledge_gained(self(), 1, self().value(), self(), 1,
                               gossip::GainKind::kLocal);
  }
  enter_step(0);
  start_rounds(at, config_.round_duration);
}

void CommitteeNode::enter_step(std::size_t step) {
  step_ = step;
  if (step >= 1 && step <= num_phases_ - 1 && am_committee_[step - 1]) {
    compute_level_partial(step);
  }
  if (step == num_phases_ && am_committee_[num_phases_ - 1] && !have_result_) {
    // Root committee: the aggregation is done; compute the global estimate.
    compute_level_partial(num_phases_);
    const auto& root = level_partial_[num_phases_ - 1];
    if (root.has_value()) {
      acquire_result(root->partial, root->audit_token, self());
    }
  }
}

void CommitteeNode::compute_level_partial(std::size_t level) {
  if (level_partial_[level - 1].has_value()) return;
  agg::Partial acc;
  std::vector<std::uint64_t> tokens;
  if (level == 1) {
    votes_mask_.for_each_set([this, &acc, &tokens](std::size_t id) {
      acc.merge(agg::Partial::from_vote(votes_[id].first));
      tokens.push_back(votes_[id].second);
    });
  } else {
    for (const auto& slot : slots_[level - 2]) {
      if (!slot.has_value()) continue;
      acc.merge(slot->partial);
      tokens.push_back(slot->audit_token);
    }
  }
  KnownValue kv;
  kv.partial = acc;
  kv.audit_token =
      audit() != nullptr ? audit()->register_merge(tokens) : agg::kNoAuditToken;
  level_partial_[level - 1] = kv;
  if (gossip::GossipTrace* trace = env_trace()) {
    trace->on_phase_concluded(self(), level, gossip::PhaseEnd::kTimeout,
                              acc.count());
    if (level < num_phases_) {
      // The partial this member will send upward: its export for the parent
      // level's child slot (the slot cell itself keeps whatever arrived
      // first, which may be a peer's partial — see below).
      trace->on_knowledge_gained(
          self(), level + 1,
          static_cast<std::uint32_t>(hier().child_slot(self(), level + 1)),
          self(), acc.count(), gossip::GainKind::kLocal);
    }
  }

  // If this member also sits on the committee one level up, its own child
  // slot is known immediately — absorb locally instead of self-sending.
  if (level < num_phases_ && am_committee_[level]) {
    auto& slot = slots_[level - 1][hier().child_slot(self(), level + 1)];
    if (!slot.has_value()) slot = kv;
  }
}

void CommitteeNode::acquire_result(const agg::Partial& partial,
                                   std::uint64_t token, MemberId from) {
  if (have_result_) return;
  have_result_ = true;
  result_.partial = partial;
  result_.audit_token = token;
  if (gossip::GossipTrace* trace = env_trace()) {
    trace->on_knowledge_gained(self(), num_phases_, 0, from, partial.count(),
                               gossip::GainKind::kResult);
  }

  // Compute, once, everyone this member is responsible for informing:
  // committees of child groups at every level where it sits on a committee,
  // and the whole grid box if it is on the box committee.
  forward_targets_.clear();
  for (std::size_t p = num_phases_; p >= 2; --p) {
    if (!am_committee_[p - 1]) continue;
    const std::uint64_t prefix = hier().phase_group(self(), p);
    for (std::uint32_t slot = 0; slot < hier().fanout(); ++slot) {
      const std::uint64_t child_prefix = prefix * hier().fanout() + slot;
      for (const MemberId m : committee_of(p - 1, child_prefix)) {
        if (m != self()) forward_targets_.push_back(m);
      }
    }
  }
  if (am_committee_[0]) {
    for (const MemberId m :
         hier().phase_peers(view().members(), self(), 1)) {
      forward_targets_.push_back(m);
    }
  }
  std::sort(forward_targets_.begin(), forward_targets_.end());
  forward_targets_.erase(
      std::unique(forward_targets_.begin(), forward_targets_.end()),
      forward_targets_.end());
  rng().shuffle(forward_targets_);
}

bool CommitteeNode::on_round() {
  if (finished() || !alive()) return false;
  count_round();
  const std::uint64_t round = round_++;
  const std::size_t step =
      static_cast<std::size_t>(round / config_.phase_rounds);
  if (step != step_ && step <= num_phases_) enter_step(step);

  std::uint32_t budget = config_.fanout_m;

  if (step == 0) {
    // Phase 1: send the vote to the box committee (retransmit each round).
    for (const MemberId m : my_committee_[0]) {
      if (budget == 0) break;
      if (m == self()) continue;
      send_to(m, encode_vote(self(), own_vote(), own_token_));
      --budget;
    }
  } else if (step <= num_phases_ - 1 && am_committee_[step - 1]) {
    // Phase step+1: forward this member's level partial to the committee of
    // its parent group.
    const auto& lp = level_partial_[step - 1];
    if (lp.has_value()) {
      const std::uint32_t slot = hier().child_slot(self(), step + 1);
      for (const MemberId m : my_committee_[step]) {
        if (budget == 0) break;
        if (m == self()) continue;
        send_to(m, encode_child(static_cast<std::uint8_t>(step + 1), slot,
                                lp->partial, lp->audit_token));
        --budget;
      }
    }
  }

  // Dissemination: any result holder keeps pushing it down its subtrees,
  // cycling deterministically through its (pre-shuffled) target list so
  // every target is covered once per ceil(targets / budget) rounds.
  if (have_result_ && !forward_targets_.empty()) {
    const std::size_t sends =
        std::min<std::size_t>(budget, forward_targets_.size());
    for (std::size_t i = 0; i < sends; ++i) {
      send_to(forward_targets_[forward_cursor_++ % forward_targets_.size()],
              encode_result(result_.partial, result_.audit_token));
    }
  }

  // 2 * num_phases_ steps (up + down) plus drain.
  const std::uint64_t total_rounds =
      static_cast<std::uint64_t>(2 * num_phases_) * config_.phase_rounds + 3;
  if (round + 1 >= total_rounds) {
    conclude();
    return false;
  }
  return true;
}

void CommitteeNode::conclude() {
  if (have_result_) {
    set_outcome(result_.partial, result_.audit_token);
    if (gossip::GossipTrace* trace = env_trace()) {
      trace->on_finished(self(), result_.partial.count());
    }
  }
  // Without a result this member ends the protocol with no estimate:
  // completeness 0, the measurable cost of leader loss.
}

void CommitteeNode::on_message(const net::Message& message) {
  if (finished() || !alive()) return;
  agg::ByteReader r(message.frame);
  const std::uint8_t type = r.u8();
  if (type == kVote) {
    expects(message.frame.size() == kVoteWireBytes,
            "vote frame length mismatch");
    if (!am_committee_[0]) return;  // not my job
    if (level_partial_[0].has_value()) return;  // box already closed
    const MemberId origin{r.u32()};
    const double value = r.f64();
    const std::uint64_t token = r.u64();
    const std::size_t id = origin.value();
    if (id >= votes_mask_.universe_size()) votes_mask_.grow_universe(id + 1);
    const bool inserted = !votes_mask_.test(id);
    if (inserted) {
      votes_mask_.set(id);
      if (id >= votes_.size()) votes_.resize(id + 1);
      votes_[id] = std::make_pair(value, token);
    }
    if (inserted) {
      if (gossip::GossipTrace* trace = env_trace()) {
        trace->on_knowledge_gained(self(), 1, origin.value(), message.source,
                                   1, gossip::GainKind::kRemote);
      }
    }
  } else if (type == kChildPartial) {
    expects(message.frame.size() == kChildWireBytes,
            "child partial frame length mismatch");
    const std::size_t phase = r.u8();
    const std::uint32_t slot = r.u8();
    const agg::Partial partial = agg::read_partial(r);
    const std::uint64_t token = r.u64();
    if (phase < 2 || phase > num_phases_ || slot >= hier().fanout()) return;
    if (!am_committee_[phase - 1]) return;
    if (level_partial_[phase - 1].has_value()) return;  // level closed
    auto& cell = slots_[phase - 2][slot];
    if (!cell.has_value()) {
      KnownValue kv;
      kv.partial = partial;
      kv.audit_token = token;
      cell = kv;
      if (gossip::GossipTrace* trace = env_trace()) {
        trace->on_knowledge_gained(self(), phase, slot, message.source,
                                   partial.count(), gossip::GainKind::kRemote);
      }
    }
  } else if (type == kResult) {
    expects(message.frame.size() == kResultWireBytes,
            "result frame length mismatch");
    const agg::Partial partial = agg::read_partial(r);
    const std::uint64_t token = r.u64();
    acquire_result(partial, token, message.source);
  }
}

bool CommitteeNode::on_committee(std::size_t phase) const {
  expects(phase >= 1 && phase <= am_committee_.size(), "phase out of range");
  return am_committee_[phase - 1];
}

}  // namespace gridbox::protocols::baseline
