// Leader-election baseline on the Grid Box Hierarchy (§6.2), generalized to
// committees of K' leaders per subtree.
//
// Every internal node of the hierarchy gets a deterministic committee: the K'
// members of that subtree with the smallest (H(m), id) — computable locally
// from a (complete, consistent) view, exactly the assumption the paper says
// this class of protocol needs. Aggregation runs bottom-up phase by phase:
// members send votes to their box committee; child committees forward their
// partials to parent committees; the root committee then disseminates the
// result back down the tree.
//
// With K' = 1 this is the plain Leader Election approach; the paper's
// critique — a leader crash at height i silently loses ~K^i votes, and
// committees only push the problem to committee-dissemination cost — is
// directly measurable here (see bench/cmp_baselines).
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "src/common/bitset.h"
#include "src/protocols/node.h"

namespace gridbox::protocols::baseline {

struct CommitteeConfig {
  /// K' — committee size per subtree. 1 = single leader.
  std::uint32_t committee_size = 1;

  /// Rounds allotted to each aggregation phase / dissemination level.
  /// Senders retransmit every round of the window (cheap reliability; the
  /// paper's variant without retransmission is phase_rounds = 1).
  std::uint32_t phase_rounds = 2;

  /// Per-round send budget (bandwidth constraint).
  std::uint32_t fanout_m = 4;

  SimTime round_duration = SimTime::millis(10);
};

class CommitteeNode : public protocols::ProtocolNode {
 public:
  CommitteeNode(MemberId self, double vote, membership::View view,
                protocols::NodeEnv env, Rng rng, CommitteeConfig config);

  void start(SimTime at) override;
  void on_message(const net::Message& message) override;

  /// True if this member sits on the committee of its phase-`phase` group.
  [[nodiscard]] bool on_committee(std::size_t phase) const;

 private:
  struct KnownValue {
    agg::Partial partial;
    std::uint64_t audit_token = agg::kNoAuditToken;
  };

  bool on_round() override;
  void enter_step(std::size_t step);
  void compute_level_partial(std::size_t level);
  void acquire_result(const agg::Partial& partial, std::uint64_t token,
                      MemberId from);
  void conclude();

  /// K' smallest-(H, id) view members of the phase-`phase` group with the
  /// given prefix.
  [[nodiscard]] std::vector<MemberId> committee_of(std::size_t phase,
                                                   std::uint64_t prefix) const;

  CommitteeConfig config_;
  std::size_t num_phases_ = 0;
  std::uint64_t round_ = 0;
  std::size_t step_ = 0;  // 0-based: step s drives aggregation phase s+1
  std::uint64_t own_token_ = agg::kNoAuditToken;

  std::vector<std::vector<MemberId>> my_committee_;  // [phase-1]
  std::vector<bool> am_committee_;                   // [phase-1]

  // Box-committee vote collection (phase 1), struct-of-arrays: bit `id`
  // set ⟺ votes_[id] holds (vote, token); grows on demand.
  MemberBitset votes_mask_;
  std::vector<std::pair<double, std::uint64_t>> votes_;

  // slots_[p-2][slot]: first-received child partial of phase p (p >= 2).
  std::vector<std::vector<std::optional<KnownValue>>> slots_;

  // level_partial_[q-1]: this member's aggregate of its phase-q group, valid
  // only when am_committee_[q-1].
  std::vector<std::optional<KnownValue>> level_partial_;

  bool have_result_ = false;
  KnownValue result_;
  std::vector<MemberId> forward_targets_;  // once result held
  std::size_t forward_cursor_ = 0;
};

}  // namespace gridbox::protocols::baseline
