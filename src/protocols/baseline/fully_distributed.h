// Fully distributed baseline (§4): every member sends its vote to every
// other member and aggregates whatever it received.
//
// O(N²) messages, O(N) time (the per-member bandwidth constraint of M
// messages per round means N−1 sends take ⌈(N−1)/M⌉ rounds), and
// completeness that tracks the raw network delivery rate — the paper's
// argument for why this does not scale.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/bitset.h"
#include "src/protocols/node.h"

namespace gridbox::protocols::baseline {

struct FullyDistributedConfig {
  /// Per-round send budget (the bandwidth constraint).
  std::uint32_t fanout_m = 2;
  /// Extra rounds after the last send, letting in-flight messages land.
  std::uint32_t drain_rounds = 2;
  SimTime round_duration = SimTime::millis(10);
};

class FullyDistributedNode final : public protocols::ProtocolNode {
 public:
  FullyDistributedNode(MemberId self, double vote, membership::View view,
                       protocols::NodeEnv env, Rng rng,
                       FullyDistributedConfig config);

  void start(SimTime at) override;
  void on_message(const net::Message& message) override;

 private:
  struct KnownVote {
    double value = 0.0;
    std::uint64_t audit_token = agg::kNoAuditToken;
  };

  bool on_round() override;
  void conclude();
  void absorb(MemberId origin, const KnownVote& kv, MemberId sender);

  FullyDistributedConfig config_;
  std::vector<MemberId> send_queue_;  // members not yet sent to
  std::size_t send_cursor_ = 0;
  std::uint64_t rounds_after_send_ = 0;
  std::uint64_t own_token_ = agg::kNoAuditToken;
  // Knowledge vector, struct-of-arrays: bit `id` set ⟺ votes_[id] holds
  // that member's vote. Grows on demand (forged origins included), and
  // word-at-a-time iteration replaces the old std::map walk.
  MemberBitset known_mask_;
  std::vector<KnownVote> votes_;
};

}  // namespace gridbox::protocols::baseline
