#include "src/protocols/baseline/centralized.h"

#include <algorithm>

#include "src/agg/codec.h"
#include "src/common/ensure.h"

namespace gridbox::protocols::baseline {

namespace {

constexpr std::uint8_t kVote = 1;
constexpr std::uint8_t kResult = 2;

// Exact wire sizes, enforced on receive: truncated or padded frames are
// rejected as malformed instead of being partially decoded.
constexpr std::size_t kVoteWireBytes = 1 + 4 + 8 + 8;
constexpr std::size_t kResultWireBytes = 1 + agg::kPartialWireBytes + 8;

net::Frame encode_vote(MemberId origin, double value, std::uint64_t token) {
  agg::ByteWriter w;
  w.u8(kVote);
  w.u32(origin.value());
  w.f64(value);
  w.u64(token);
  return w.take();
}

net::Frame encode_result(const agg::Partial& partial, std::uint64_t token) {
  agg::ByteWriter w;
  w.u8(kResult);
  agg::write_partial(w, partial);
  w.u64(token);
  return w.take();
}

}  // namespace

CentralizedNode::CentralizedNode(MemberId self, double vote,
                                 membership::View view,
                                 protocols::NodeEnv env, Rng rng,
                                 CentralizedConfig config)
    : ProtocolNode(self, vote, std::move(view), env, rng), config_(config) {
  expects(config_.vote_retries >= 1, "at least one vote send required");
  expects(config_.leader_receive_cap >= 1, "leader must receive something");
  expects(config_.dissemination_fanout >= 1, "dissemination fanout >= 1");
}

std::uint32_t CentralizedNode::effective_collect_rounds() const {
  if (config_.collect_rounds > 0) return config_.collect_rounds;
  const std::size_t senders = view().size() > 0 ? view().size() - 1 : 0;
  const std::uint32_t stagger_span =
      config_.staggered_sends
          ? static_cast<std::uint32_t>(
                (senders + config_.leader_receive_cap - 1) /
                config_.leader_receive_cap)
          : 1;
  return stagger_span + config_.vote_retries + 2;
}

void CentralizedNode::start(SimTime at) {
  own_token_ = register_own_vote();
  if (is_leader()) {
    const std::size_t id = self().value();
    collected_mask_.grow_universe(id + 1);
    collected_.resize(id + 1);
    collected_mask_.set(id);
    collected_[id] = std::make_pair(own_vote(), own_token_);
  }
  if (gossip::GossipTrace* trace = env_trace()) {
    trace->on_phase_entered(self(), 1);
    trace->on_knowledge_gained(self(), 1, self().value(), self(), 1,
                               gossip::GainKind::kLocal);
  }
  start_rounds(at, config_.round_duration);
}

bool CentralizedNode::on_round() {
  if (finished() || !alive()) return false;
  count_round();
  const std::uint64_t round = round_++;
  received_this_round_ = 0;

  if (is_leader()) {
    const std::uint32_t collect = effective_collect_rounds();
    if (!result_ready_ && round >= collect) {
      // Compute the global estimate from whatever arrived.
      agg::Partial acc;
      std::vector<std::uint64_t> tokens;
      collected_mask_.for_each_set([this, &acc, &tokens](std::size_t id) {
        acc.merge(agg::Partial::from_vote(collected_[id].first));
        tokens.push_back(collected_[id].second);
      });
      result_ = acc;
      result_token_ = audit() != nullptr ? audit()->register_merge(tokens)
                                         : agg::kNoAuditToken;
      result_ready_ = true;
      if (gossip::GossipTrace* trace = env_trace()) {
        trace->on_phase_concluded(self(), 1, gossip::PhaseEnd::kTimeout,
                                  result_.count());
        trace->on_knowledge_gained(self(), 1, 0, self(), result_.count(),
                                   gossip::GainKind::kResult);
      }
      dissemination_queue_.clear();
      for (const MemberId m : view().members()) {
        if (m != self()) dissemination_queue_.push_back(m);
      }
      rng().shuffle(dissemination_queue_);
    }
    if (result_ready_) {
      for (std::uint32_t i = 0; i < config_.dissemination_fanout &&
                                dissemination_cursor_ < dissemination_queue_.size();
           ++i) {
        send_to(dissemination_queue_[dissemination_cursor_++],
                encode_result(result_, result_token_));
      }
      if (dissemination_cursor_ >= dissemination_queue_.size()) {
        set_outcome(result_, result_token_);
        if (gossip::GossipTrace* trace = env_trace()) {
          trace->on_finished(self(), result_.count());
        }
        return false;
      }
    }
    return true;
  }

  // Non-leader: send the vote in the assigned window, then wait for the
  // result. The protocol has no acknowledgements — a lost result message
  // means this member simply ends with no estimate.
  const std::size_t senders = view().size() > 0 ? view().size() - 1 : 0;
  const std::uint32_t stagger_span =
      config_.staggered_sends
          ? std::max<std::uint32_t>(
                1, static_cast<std::uint32_t>(
                       (senders + config_.leader_receive_cap - 1) /
                       config_.leader_receive_cap))
          : 1;
  const std::uint64_t first_send =
      config_.staggered_sends ? (self().value() % stagger_span) : 0;
  if (round >= first_send && sends_done_ < config_.vote_retries) {
    send_to(config_.leader, encode_vote(self(), own_vote(), own_token_));
    ++sends_done_;
  }

  // Give up once the leader has certainly finished disseminating (plus
  // slack): collect window + ceil(N / fanout) rounds + drain.
  const std::uint64_t horizon =
      effective_collect_rounds() +
      (view().size() + config_.dissemination_fanout - 1) /
          config_.dissemination_fanout +
      4;
  return round < horizon;
}

void CentralizedNode::on_message(const net::Message& message) {
  if (finished() || !alive()) return;
  agg::ByteReader r(message.frame);
  const std::uint8_t type = r.u8();
  if (type == kVote) {
    expects(message.frame.size() == kVoteWireBytes,
            "vote frame length mismatch");
  } else if (type == kResult) {
    expects(message.frame.size() == kResultWireBytes,
            "result frame length mismatch");
  }
  if (type == kVote && is_leader()) {
    if (result_ready_) return;  // votes after the cut are simply late
    if (++received_this_round_ > config_.leader_receive_cap) {
      ++implosion_drops_;  // inbox overflow: the implosion problem, made real
      return;
    }
    const MemberId origin{r.u32()};
    const double value = r.f64();
    const std::uint64_t token = r.u64();
    const std::size_t id = origin.value();
    if (id >= collected_mask_.universe_size()) {
      collected_mask_.grow_universe(id + 1);
    }
    const bool inserted = !collected_mask_.test(id);
    if (inserted) {
      collected_mask_.set(id);
      if (id >= collected_.size()) collected_.resize(id + 1);
      collected_[id] = std::make_pair(value, token);
    }
    if (inserted) {
      if (gossip::GossipTrace* trace = env_trace()) {
        trace->on_knowledge_gained(self(), 1, origin.value(), message.source,
                                   1, gossip::GainKind::kRemote);
      }
    }
  } else if (type == kResult && !is_leader()) {
    const agg::Partial partial = agg::read_partial(r);
    const std::uint64_t token = r.u64();
    set_outcome(partial, token);
    if (gossip::GossipTrace* trace = env_trace()) {
      trace->on_knowledge_gained(self(), 1, 0, message.source, partial.count(),
                                 gossip::GainKind::kResult);
      trace->on_finished(self(), partial.count());
    }
  }
}

}  // namespace gridbox::protocols::baseline
