// Deterministic chaos injection: scripted, time-varying network adversity.
//
// The paper's robustness claim (§7, Figures 7–10) is evaluated there under
// static iid loss, one partition shape, and per-round crashes. A ChaosSpec
// scripts richer adversity — loss bursts (Gilbert–Elliott), per-link
// asymmetric loss, bounded extra delay/reorder, duplication, partition
// epochs, and scheduled crashes — as a small text artifact, so a scenario is
// reproducible bit-for-bit from (spec text, seed) at any host parallelism.
//
// RNG discipline: a ChaosSchedule owns independent derived streams for drop
// decisions, delay jitter, and duplication. Separated streams give exact
// metamorphic relations the test suite leans on: adding `dup` to a spec
// perturbs neither the drop pattern nor the jitter draws, so duplicated runs
// must produce identical estimates (idempotent merges), not just similar
// ones.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/net/fault_model.h"
#include "src/sim/simulator.h"

namespace gridbox::net {

/// Gilbert–Elliott two-state loss burst active during [from, to). The chain
/// starts in the good state at epoch entry and advances once per message
/// consulted while the epoch is active.
struct BurstEpoch {
  SimTime from = SimTime::zero();
  SimTime to = SimTime::zero();
  double good_loss = 0.0;  ///< drop probability in the good state
  double bad_loss = 0.0;   ///< drop probability in the bad state
  double go_bad = 0.0;     ///< P(good -> bad) per message
  double go_good = 0.0;    ///< P(bad -> good) per message

  friend bool operator==(const BurstEpoch&, const BurstEpoch&) = default;
};

/// Directed per-link loss override (source -> destination only, so loss can
/// be asymmetric). Takes precedence over every other loss source.
struct LinkLoss {
  MemberId source;
  MemberId destination;
  double loss = 0.0;

  friend bool operator==(const LinkLoss&, const LinkLoss&) = default;
};

/// Extra delivery delay: with `probability`, a delivered message is held an
/// additional Uniform[lo, hi] — bounded delay that also induces reordering.
struct JitterSpec {
  double probability = 0.0;  ///< 0 = off
  SimTime lo = SimTime::zero();
  SimTime hi = SimTime::zero();

  friend bool operator==(const JitterSpec&, const JitterSpec&) = default;
};

/// Duplication: with `probability`, a *delivered* message is delivered
/// `extra` additional times, each at the original delivery time plus
/// Uniform[0, spread]. Duplicates are only ever made of messages that
/// survive the loss pipeline and never precede the original, so they model
/// a transport re-delivering stale copies. With spread=0 they are exact
/// no-ops (merges are idempotent and the receiver's phase cannot move
/// between same-tick deliveries; tested bit-for-bit). With spread>0 a copy
/// may land after the receiver has *entered* the message's phase and be
/// absorbed where the original was dropped as stale — legitimate extra
/// knowledge, never double counting (the audit stays clean; tested).
struct DuplicationSpec {
  double probability = 0.0;  ///< 0 = off
  std::uint32_t extra = 1;
  SimTime spread = SimTime::zero();

  friend bool operator==(const DuplicationSpec&, const DuplicationSpec&) =
      default;
};

/// Soft-partition epoch active during [from, to): members with id value <
/// boundary are side 0, the rest side 1. Cross-side messages drop with
/// `cross_loss`; same-side messages drop with `within_loss` when
/// `has_within`, else fall through to bursts / base loss.
struct PartitionEpoch {
  SimTime from = SimTime::zero();
  SimTime to = SimTime::zero();
  bool boundary_is_half = true;  ///< boundary = group_size / 2
  MemberId::underlying boundary = 0;
  double cross_loss = 0.0;
  double within_loss = 0.0;
  bool has_within = false;

  friend bool operator==(const PartitionEpoch&, const PartitionEpoch&) =
      default;
};

/// Scheduled crash (without recovery, matching the paper's model).
struct CrashEvent {
  MemberId member;
  SimTime at = SimTime::zero();

  friend bool operator==(const CrashEvent&, const CrashEvent&) = default;
};

/// Scheduled membership churn: a member joining the group or recovering from
/// a crash at a scripted time. Only the service runtime (src/service) honors
/// these — the paper's one-shot protocol has no epoch boundary for a joiner
/// to enter at, so run_experiment/run_udp_experiment reject specs containing
/// them. Churn is scripted, never randomized, so adding a join/recover line
/// to a spec perturbs no RNG stream of the loss/jitter/dup pipeline.
struct ChurnEvent {
  MemberId member;
  SimTime at = SimTime::zero();

  friend bool operator==(const ChurnEvent&, const ChurnEvent&) = default;
};

/// A parsed chaos scenario. Value-semantic and serializable: parse() and
/// to_text() round-trip, so a spec is a checked-in, replayable artifact.
/// Grammar (one directive per line, '#' comments — see docs/chaos.md):
///
///   loss P
///   burst FROMus..TOus good=P bad=P go-bad=P go-good=P
///   link MA->MB P
///   jitter p=P LOus..HIus
///   dup p=P extra=N spread=Tus
///   partition FROMus..TOus boundary=half|INT cross=P [within=P]
///   crash MID at=Tus
///   join MID at=Tus
///   recover MID at=Tus
///
/// Times accept `us`, `ms`, or `s` suffixes (bare integers are µs) and
/// serialize canonically in µs.
struct ChaosSpec {
  std::optional<double> base_loss;  ///< replaces the wrapped base fault model
  std::vector<BurstEpoch> bursts;
  std::vector<LinkLoss> links;
  JitterSpec jitter;
  DuplicationSpec dup;
  std::vector<PartitionEpoch> partitions;
  std::vector<CrashEvent> crashes;
  std::vector<ChurnEvent> joins;     ///< service-mode only (see ChurnEvent)
  std::vector<ChurnEvent> recovers;  ///< service-mode only (see ChurnEvent)

  /// Parses spec text; throws PreconditionError with a line-numbered message
  /// on malformed input.
  [[nodiscard]] static ChaosSpec parse(const std::string& text);

  /// Canonical serialization; parse(to_text()) == *this.
  [[nodiscard]] std::string to_text() const;

  /// True if any directive affects message handling (everything but
  /// crashes and churn).
  [[nodiscard]] bool affects_network() const;

  /// True if the spec scripts membership churn (join/recover directives).
  [[nodiscard]] bool has_churn() const;

  [[nodiscard]] bool empty() const;

  friend bool operator==(const ChaosSpec&, const ChaosSpec&) = default;
};

/// A random but well-formed spec over the given group and time horizon, for
/// fuzzing: every draw comes from `rng`, so a corpus is reproducible from
/// seeds alone. Generated specs contain only protocol-legal adversity
/// (loss, delay, duplication, partitions, crashes — never forged bytes).
[[nodiscard]] ChaosSpec random_chaos_spec(Rng& rng, std::size_t group_size,
                                          SimTime horizon);

/// What the chaos layer decided for one send.
struct ChaosDecision {
  bool drop = false;
  SimTime extra_delay = SimTime::zero();  ///< added to the model latency
  /// Extra deliveries, each at the original delivery time plus this offset
  /// (offsets are >= 0: a duplicate never precedes its original).
  std::vector<SimTime> duplicate_delays;
};

/// Runtime engine for a ChaosSpec: wraps a base FaultModel and scripts
/// time-varying adversity from the simulator clock. Owned and consulted by
/// SimNetwork (install_chaos); per-run construction keeps multi-run sweeps
/// bitwise deterministic at any --jobs.
class ChaosSchedule {
 public:
  /// `base` is the fallback loss model consulted when no directive claims a
  /// message (required; pass NoLoss for none). `group_size` resolves
  /// `boundary=half`. `rng` seeds the three independent decision streams.
  ChaosSchedule(ChaosSpec spec, std::unique_ptr<FaultModel> base,
                std::size_t group_size, Rng rng);

  /// Clock used to evaluate time-varying epochs; SimNetwork binds this to
  /// its simulator on install.
  void bind_clock(std::function<SimTime()> clock);

  /// Consulted once per send, in send order.
  [[nodiscard]] ChaosDecision on_send(MemberId source, MemberId destination);

  [[nodiscard]] const ChaosSpec& spec() const { return spec_; }

 private:
  [[nodiscard]] bool decide_drop(MemberId source, MemberId destination,
                                 SimTime now);

  ChaosSpec spec_;
  std::unique_ptr<FaultModel> base_;
  std::size_t group_size_;
  Rng drop_rng_;
  Rng jitter_rng_;
  Rng dup_rng_;
  std::function<SimTime()> clock_;
  std::vector<bool> burst_bad_;      // GE chain state per burst epoch
  std::vector<bool> burst_active_;   // was the epoch active last time we saw it
  std::unordered_map<std::uint64_t, double> link_loss_;
};

/// Schedules the spec's crash events on the simulator. `crash` is invoked at
/// each event's time (callers bind it to membership::Group::crash); the
/// callback form keeps src/net independent of src/membership.
void schedule_chaos_crashes(const ChaosSpec& spec, sim::Simulator& simulator,
                            std::function<void(MemberId)> crash);

}  // namespace gridbox::net
