#include "src/net/reactor.h"

#include <cerrno>

#include <algorithm>
#include <utility>

#include "src/common/ensure.h"

namespace gridbox::net {

Reactor::Reactor(Options options) : options_(options) {
  expects(options_.tick > SimTime::zero(), "wheel tick must be positive");
  expects(options_.slots > 0, "wheel needs at least one slot");
  wheel_.resize(options_.slots);
  poll_fn_ = [](pollfd* fds, nfds_t nfds, int timeout) {
    return ::poll(fds, nfds, timeout);
  };
}

SimTime Reactor::now() const {
  if (clock_fn_) return clock_fn_();
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  return SimTime::micros(
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count());
}

void Reactor::schedule_at(SimTime time, sim::Action action) {
  Entry entry;
  entry.deadline = std::max(time, now());
  entry.action = std::move(action);
  insert(std::move(entry));
}

void Reactor::schedule_after(SimTime delay, sim::Action action) {
  expects(delay >= SimTime::zero(), "delay must be non-negative");
  schedule_at(now() + delay, std::move(action));
}

void Reactor::schedule_periodic(SimTime start, SimTime interval,
                                sim::TimerTarget& target,
                                std::uint32_t timer_id) {
  expects(interval > SimTime::zero(), "periodic interval must be positive");
  Entry entry;
  entry.deadline = std::max(start, now());
  entry.interval = interval;
  entry.target = &target;
  entry.timer_id = timer_id;
  insert(std::move(entry));
}

void Reactor::schedule_timer_at(SimTime time, sim::TimerTarget& target,
                                std::uint32_t timer_id) {
  Entry entry;
  entry.deadline = std::max(time, now());
  entry.target = &target;
  entry.timer_id = timer_id;
  insert(std::move(entry));
}

void Reactor::add_fd(int fd, IoHandler& handler) {
  expects(fd >= 0, "invalid fd");
  pollfd p{};
  p.fd = fd;
  p.events = POLLIN;
  pollfds_.push_back(p);
  handlers_.push_back(&handler);
}

void Reactor::remove_fd(int fd) {
  for (std::size_t i = 0; i < pollfds_.size(); ++i) {
    if (pollfds_[i].fd == fd) {
      pollfds_.erase(pollfds_.begin() + static_cast<std::ptrdiff_t>(i));
      handlers_.erase(handlers_.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
}

std::size_t Reactor::slot_of(SimTime deadline) const {
  // A slot whose tick was already processed is not revisited until the
  // wheel wraps a full lap later, so an entry due now (or in the already-
  // processed part of the current tick) must land in the next tick the
  // loop will visit — it then fires at most one quantum late.
  const std::int64_t tick =
      std::max<std::int64_t>(0, deadline.ticks()) / options_.tick.ticks();
  const std::int64_t effective = std::max(tick, last_tick_ + 1);
  return static_cast<std::size_t>(static_cast<std::uint64_t>(effective) %
                                  options_.slots);
}

void Reactor::insert(Entry entry) {
  wheel_[slot_of(entry.deadline)].push_back(std::move(entry));
  ++pending_timers_;
}

void Reactor::fire_due_timers() { advance_wheel(now()); }

void Reactor::post(sim::Action action) {
  std::lock_guard<std::mutex> guard(post_mutex_);
  posted_.push_back(std::move(action));
  // The one multi-writer telemetry site: any thread may post, so the
  // high-water update is a fetch-max race, not a single-writer add.
  if (telemetry_ != nullptr) telemetry_->note_queue_depth(posted_.size());
}

void Reactor::drain_posted() {
  // Swap the inbox out under its own lock, then run the batch on this
  // thread: post() never blocks on dispatch, and a posted action posting
  // onward (the retirement handshake hopping shards) lands in the fresh
  // inbox for the next iteration. The post_mutex_ acquire/release pair is
  // the happens-before edge that publishes the poster's prior writes.
  std::vector<sim::Action> batch;
  {
    std::lock_guard<std::mutex> guard(post_mutex_);
    if (posted_.empty()) return;
    batch.swap(posted_);
  }
  for (sim::Action& action : batch) {
    ++actions_run_;
    if (telemetry_ != nullptr) {
      telemetry_->actions_run.fetch_add(1, std::memory_order_relaxed);
    }
    action();
  }
}

std::size_t Reactor::count_timers_where(
    const std::function<bool(const sim::TimerTarget*)>& pred) const {
  std::size_t count = 0;
  for (const auto& slot : wheel_) {
    for (const Entry& entry : slot) {
      if (entry.target != nullptr && pred(entry.target)) ++count;
    }
  }
  return count;
}

void Reactor::advance_wheel(SimTime now) {
  if (pending_timers_ == 0) {
    last_tick_ = now.ticks() / options_.tick.ticks();
    return;
  }
  const std::int64_t cur_tick = now.ticks() / options_.tick.ticks();
  // Visit each slot between the last processed tick and now. After a stall
  // longer than one lap every slot is due anyway, so one full sweep covers
  // the gap without walking tick-by-tick through it.
  const std::int64_t span =
      std::min<std::int64_t>(cur_tick - last_tick_,
                             static_cast<std::int64_t>(options_.slots));
  if (span <= 0) return;
  due_.clear();
  std::vector<Entry> deferred;
  const std::int64_t tick_us = options_.tick.ticks();
  for (std::int64_t t = cur_tick - span + 1; t <= cur_tick; ++t) {
    auto& slot = wheel_[static_cast<std::size_t>(t) % options_.slots];
    for (std::size_t i = 0; i < slot.size();) {
      const std::int64_t entry_tick = slot[i].deadline.ticks() / tick_us;
      if (entry_tick > cur_tick) {
        // An earlier wheel lap shares this slot; parked until its own lap.
        ++i;
        continue;
      }
      // This slot is not revisited until the wheel wraps, so everything
      // belonging to the processed ticks must leave it now: entries due
      // by `now` fire, ones due later in the current tick migrate to the
      // next tick's slot (and fire at most one quantum late).
      if (slot[i].deadline <= now) {
        due_.push_back(std::move(slot[i]));
      } else {
        deferred.push_back(std::move(slot[i]));
      }
      slot[i] = std::move(slot.back());
      slot.pop_back();
    }
  }
  last_tick_ = cur_tick;
  pending_timers_ -= due_.size() + deferred.size();
  for (Entry& entry : deferred) insert(std::move(entry));
  if (due_.empty()) return;
  // Fire in deadline order, mirroring the simulator's time-ordered queue
  // (ties keep extraction order — there is no cross-thread order to match).
  std::stable_sort(due_.begin(), due_.end(),
                   [](const Entry& a, const Entry& b) {
                     return a.deadline < b.deadline;
                   });
  if (telemetry_ != nullptr) {
    telemetry_->dispatch_per_tick.observe(due_.size());
  }
  for (Entry& entry : due_) {
    if (entry.target != nullptr) {
      ++timers_fired_;
      if (telemetry_ != nullptr) {
        // Lateness vs the scheduled deadline — the wheel's quantum plus
        // any poll stall, the primary "is the loop keeping up" signal.
        telemetry_->note_timer_fired(
            static_cast<std::uint64_t>((now - entry.deadline).ticks()));
      }
      const bool again = entry.target->on_timer(entry.timer_id);
      if (again && entry.interval > SimTime::zero()) {
        // Re-arm one interval after the *scheduled* deadline, not after
        // the (late) fire time: rounds keep the simulator's cadence
        // instead of accumulating dispatch latency.
        entry.deadline += entry.interval;
        insert(std::move(entry));
      }
    } else {
      ++actions_run_;
      if (telemetry_ != nullptr) {
        telemetry_->actions_run.fetch_add(1, std::memory_order_relaxed);
      }
      entry.action();
    }
  }
  due_.clear();
}

bool Reactor::run_until(const std::function<bool()>& done, SimTime deadline) {
  const int timeout_ms = static_cast<int>(
      std::max<std::int64_t>(1, options_.tick.ticks() / 1000));
  for (;;) {
    drain_posted();
    advance_wheel(now());
    if (done()) return true;
    if (now() >= deadline) return false;
    ++polls_;
    if (telemetry_ != nullptr) {
      telemetry_->polls.fetch_add(1, std::memory_order_relaxed);
    }
    const int n = poll_fn_(pollfds_.empty() ? nullptr : pollfds_.data(),
                           static_cast<nfds_t>(pollfds_.size()), timeout_ms);
    if (n < 0) {
      // A signal interrupting poll is routine (profilers, timers): retry.
      // Anything else is a programming error worth failing loudly on.
      expects(errno == EINTR, "poll failed");
      ++eintr_retries_;
      if (telemetry_ != nullptr) {
        telemetry_->eintr_retries.fetch_add(1, std::memory_order_relaxed);
      }
      continue;
    }
    if (telemetry_ != nullptr) {
      auto& cause = n == 0 ? telemetry_->wakes_timeout : telemetry_->wakes_io;
      cause.fetch_add(1, std::memory_order_relaxed);
    }
    if (n == 0) continue;  // quantum elapsed, or a spurious wakeup
    for (std::size_t i = 0; i < pollfds_.size(); ++i) {
      if ((pollfds_[i].revents & (POLLIN | POLLERR | POLLHUP)) == 0) continue;
      pollfds_[i].revents = 0;
      handlers_[i]->on_readable(pollfds_[i].fd);
    }
  }
}

}  // namespace gridbox::net
