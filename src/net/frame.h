// The fixed-capacity wire frame: the paper's constant message size bound,
// realised as a value type.
//
// The paper's scalability argument assumes "all messages sent over the
// network are constant size bounded" (§2). Earlier revisions modelled that
// bound with a heap-allocated byte vector validated at construction; the
// bound now *is* the representation: a Frame owns an inline 256-byte buffer
// and a length, so a message costs a few cache lines to copy and zero heap
// allocations to build, send, duplicate, or deliver. Oversized payloads are
// impossible by construction, not merely rejected.
//
// This header is a dependency leaf (standard library + ensure.h only) so the
// codec layer and the simulator's typed event queue can both hold frames
// without pulling in the rest of src/net.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <vector>

#include "src/common/ensure.h"

namespace gridbox::net {

/// Maximum payload size in bytes. A constant chosen to hold a small, fixed
/// handful of votes or composable partials plus addressing headers — the
/// paper's requirement is a *constant* bound independent of N ("the byte-size
/// of the function f's output is not much larger than the byte-size of an
/// individual vote", §1), which a 256-byte frame satisfies for every message
/// any protocol here sends.
inline constexpr std::size_t kMaxPayloadBytes = 256;

/// A wire payload with inline storage: up to kMaxPayloadBytes bytes and a
/// length, no heap. Copying a Frame is a fixed-size memcpy, which is what
/// makes chaos duplication and in-queue delivery events allocation-free.
class Frame {
 public:
  /// An empty frame (size 0).
  Frame() = default;

  /// Copies `size` bytes from `data`. Throws PreconditionError when `size`
  /// exceeds the constant bound — the transport-boundary enforcement that
  /// keeps a protocol from silently shipping a growing digest.
  Frame(const std::uint8_t* data, std::size_t size) {
    expects(size <= kMaxPayloadBytes,
            "payload exceeds the constant message size bound");
    size_ = static_cast<std::uint16_t>(size);
    if (size > 0) std::memcpy(bytes_.data(), data, size);
  }

  /// Convenience for tests and setup code that already has a byte vector.
  explicit Frame(const std::vector<std::uint8_t>& bytes)
      : Frame(bytes.data(), bytes.size()) {}

  Frame(std::initializer_list<std::uint8_t> bytes)
      : Frame(bytes.begin(), bytes.size()) {}

  [[nodiscard]] const std::uint8_t* data() const { return bytes_.data(); }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Unchecked byte access; `i` must be < size().
  [[nodiscard]] std::uint8_t operator[](std::size_t i) const {
    return bytes_[i];
  }

  [[nodiscard]] const std::uint8_t* begin() const { return bytes_.data(); }
  [[nodiscard]] const std::uint8_t* end() const { return bytes_.data() + size_; }

  /// Appends `n` bytes, space permitting; returns false (and appends
  /// nothing) when the frame is full. The codec's ByteWriter layers its
  /// field-level overflow diagnostics on top of this primitive.
  [[nodiscard]] bool try_append(const void* src, std::size_t n) {
    if (size_ + n > kMaxPayloadBytes) return false;
    std::memcpy(bytes_.data() + size_, src, n);
    size_ = static_cast<std::uint16_t>(size_ + n);
    return true;
  }

  friend bool operator==(const Frame& a, const Frame& b) {
    return a.size_ == b.size_ &&
           std::memcmp(a.bytes_.data(), b.bytes_.data(), a.size_) == 0;
  }

 private:
  std::uint16_t size_ = 0;
  /// Zero-initialised so padding beyond size() is deterministic: copying or
  /// hashing a whole frame can never observe indeterminate bytes.
  std::array<std::uint8_t, kMaxPayloadBytes> bytes_{};
};

}  // namespace gridbox::net
