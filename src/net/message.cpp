#include "src/net/message.h"

#include <type_traits>

// Message and Frame are header-only value types; this translation unit
// exists to give the types a home object file (and to catch ODR issues
// early if the header ever grows non-inline definitions).

namespace gridbox::net {

// The zero-allocation message path rests on these properties: a Message can
// be memcpy'd into and out of the event queue's slab with no heap traffic.
static_assert(std::is_trivially_copyable_v<Frame>);
static_assert(std::is_trivially_copyable_v<Message>);

}  // namespace gridbox::net
