#include "src/net/message.h"

// Message and Payload are header-only value types; this translation unit
// exists to give the types a home object file (and to catch ODR issues
// early if the header ever grows non-inline definitions).
