#include "src/net/latency_model.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/common/ensure.h"

namespace gridbox::net {

ConstantLatency::ConstantLatency(SimTime delay) : delay_(delay) {
  expects(delay.ticks() >= 0, "latency must be non-negative");
}

SimTime ConstantLatency::delay(MemberId, MemberId, Rng&) const {
  return delay_;
}

UniformLatency::UniformLatency(SimTime lo, SimTime hi) : lo_(lo), hi_(hi) {
  expects(lo.ticks() >= 0 && lo <= hi, "require 0 <= lo <= hi");
}

SimTime UniformLatency::delay(MemberId, MemberId, Rng& rng) const {
  return SimTime{static_cast<SimTime::underlying>(rng.uniform_int(
      static_cast<std::uint64_t>(lo_.ticks()),
      static_cast<std::uint64_t>(hi_.ticks())))};
}

ExponentialLatency::ExponentialLatency(SimTime base, SimTime mean_extra,
                                       SimTime cap_extra)
    : base_(base), mean_extra_(mean_extra), cap_extra_(cap_extra) {
  expects(base.ticks() >= 0, "base latency must be non-negative");
  expects(mean_extra.ticks() > 0, "mean extra latency must be positive");
  expects(cap_extra >= mean_extra, "cap must be at least the mean");
}

SimTime ExponentialLatency::delay(MemberId, MemberId, Rng& rng) const {
  const double extra =
      rng.exponential(static_cast<double>(mean_extra_.ticks()));
  const auto capped = std::min<SimTime::underlying>(
      static_cast<SimTime::underlying>(extra), cap_extra_.ticks());
  return base_ + SimTime{capped};
}

DistanceLatency::DistanceLatency(std::function<Position(MemberId)> position_of,
                                 SimTime base, SimTime per_unit)
    : position_of_(std::move(position_of)), base_(base), per_unit_(per_unit) {
  expects(static_cast<bool>(position_of_), "position function must be callable");
  expects(base.ticks() >= 0 && per_unit.ticks() >= 0,
          "latency components must be non-negative");
}

SimTime DistanceLatency::delay(MemberId source, MemberId destination,
                               Rng&) const {
  const double d = std::sqrt(
      squared_distance(position_of_(source), position_of_(destination)));
  return base_ + SimTime{static_cast<SimTime::underlying>(
                     d * static_cast<double>(per_unit_.ticks()))};
}

}  // namespace gridbox::net
