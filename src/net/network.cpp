#include "src/net/network.h"

#include <utility>

#include "src/common/ensure.h"
#include "src/obs/profile.h"

namespace gridbox::net {

SimNetwork::SimNetwork(sim::Simulator& simulator,
                       std::unique_ptr<FaultModel> faults,
                       std::unique_ptr<LatencyModel> latency, Rng rng)
    : simulator_(simulator),
      faults_(std::move(faults)),
      latency_(std::move(latency)),
      rng_(rng) {
  expects(faults_ != nullptr, "fault model required");
  expects(latency_ != nullptr, "latency model required");
}

void SimNetwork::attach(MemberId id, Endpoint& endpoint) {
  expects(id.is_valid(), "cannot attach the invalid member id");
  if (id.value() >= endpoints_.size()) endpoints_.resize(id.value() + 1);
  endpoints_[id.value()] = &endpoint;
}

void SimNetwork::detach(MemberId id) {
  if (id.value() < endpoints_.size()) endpoints_[id.value()] = nullptr;
}

void SimNetwork::set_liveness(std::function<bool(MemberId)> is_alive) {
  is_alive_ = std::move(is_alive);
}

void SimNetwork::set_distance(
    std::function<double(MemberId, MemberId)> distance) {
  distance_ = std::move(distance);
}

void SimNetwork::install_chaos(std::unique_ptr<ChaosSchedule> chaos) {
  expects(chaos != nullptr, "chaos schedule required");
  expects(stats_.messages_sent == 0, "install chaos before any send");
  chaos_ = std::move(chaos);
  chaos_->bind_clock([this]() { return simulator_.now(); });
}

void SimNetwork::send(Message message) {
  GRIDBOX_PROFILE_SCOPE("net.send");
  ++stats_.messages_sent;
  stats_.bytes_sent += message.frame.size();
  if (distance_) {
    stats_.link_distance_sum +=
        distance_(message.source, message.destination);
  }
  if (observer_ != nullptr) observer_->on_send(message, simulator_.now());
  // The drop decision happens before the latency draw, so a dropped message
  // consumes nothing from the latency stream — and the chaos pipeline uses
  // its own streams, so installing a no-loss chaos schedule leaves the
  // network RNG sequence identical to a chaos-free run.
  SimTime extra = SimTime::zero();
  std::vector<SimTime> duplicates;
  if (chaos_) {
    ChaosDecision decision =
        chaos_->on_send(message.source, message.destination);
    if (decision.drop) {
      ++stats_.messages_dropped;
      if (observer_ != nullptr) observer_->on_drop(message, simulator_.now());
      return;
    }
    extra = decision.extra_delay;
    duplicates = std::move(decision.duplicate_delays);
  } else if (faults_->drops(message.source, message.destination, rng_)) {
    ++stats_.messages_dropped;
    if (observer_ != nullptr) observer_->on_drop(message, simulator_.now());
    return;
  }
  const SimTime delay =
      latency_->delay(message.source, message.destination, rng_) + extra;
  // The original is scheduled first: a duplicate landing at the same tick
  // loses the event-queue sequence tiebreak, so it can never preempt the
  // copy it was made from. Each schedule copies the message into the event;
  // duplicates reuse the frame already built — no re-encode, no deep copy.
  simulator_.schedule_frame_after(delay, message, *this);
  for (const SimTime offset : duplicates) {
    ++stats_.messages_duplicated;
    // A duplicate traverses the wire too: count its bytes exactly once, in
    // lockstep with the observability-layer bytes_on_wire counter.
    stats_.bytes_sent += message.frame.size();
    if (observer_ != nullptr) {
      observer_->on_duplicate(message, simulator_.now());
    }
    simulator_.schedule_frame_after(delay + offset, message, *this);
  }
}

void SimNetwork::deliver_frame(const Message& message) {
  Endpoint* endpoint = message.destination.value() < endpoints_.size()
                           ? endpoints_[message.destination.value()]
                           : nullptr;
  const bool alive = !is_alive_ || is_alive_(message.destination);
  if (endpoint == nullptr || !alive) {
    ++stats_.messages_dead_dest;
    if (observer_ != nullptr) {
      observer_->on_dead_destination(message, simulator_.now());
    }
    return;
  }
  ++stats_.messages_delivered;
  if (observer_ != nullptr) observer_->on_deliver(message, simulator_.now());
  try {
    endpoint->on_message(message);
  } catch (const PreconditionError&) {
    // A corrupt or truncated payload must never take a node down: decoding
    // failures surface as PreconditionError (ByteReader, Partial checks);
    // the message is counted and dropped, the node keeps running.
    ++stats_.messages_malformed;
    if (observer_ != nullptr) {
      observer_->on_malformed(message, simulator_.now());
    }
  }
}

}  // namespace gridbox::net
