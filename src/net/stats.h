// Counters describing what the simulated network actually did in a run.
#pragma once

#include <cstdint>

namespace gridbox::net {

struct NetworkStats {
  std::uint64_t messages_sent = 0;       ///< send() calls accepted
  std::uint64_t messages_dropped = 0;    ///< lost to the fault model
  std::uint64_t messages_dead_dest = 0;  ///< destination crashed/detached at delivery
  std::uint64_t messages_delivered = 0;  ///< reached a live endpoint
  std::uint64_t messages_malformed = 0;  ///< rejected by the receiver's decoder
  std::uint64_t messages_duplicated = 0;  ///< extra deliveries from chaos dup

  /// Frame bytes put on the wire: counted once per wire traversal, so each
  /// chaos-injected duplicate adds the frame size again. Matches the
  /// observability bytes_on_wire counter exactly.
  std::uint64_t bytes_sent = 0;

  /// Sum of Euclidean link distances over all sends; meaningful only when a
  /// distance function is registered (topology ablation). Together with
  /// messages_sent this gives mean hop distance per message.
  double link_distance_sum = 0.0;

  [[nodiscard]] double delivery_rate() const {
    return messages_sent == 0
               ? 0.0
               : static_cast<double>(messages_delivered) /
                     static_cast<double>(messages_sent);
  }

  void reset() { *this = NetworkStats{}; }
};

}  // namespace gridbox::net
