// Message-delivery fault models.
//
// The paper evaluates under (a) independent unicast loss with probability
// `ucastl` and (b) a soft network partition where cross-partition messages
// are dropped with probability `partl` while intra-partition messages see
// `ucastl` (§7, Figure 9). Both are implemented here behind one interface so
// protocols are fault-model agnostic.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/rng.h"
#include "src/common/types.h"

namespace gridbox::net {

/// Decides, per message, whether the network drops it.
class FaultModel {
 public:
  virtual ~FaultModel() = default;

  /// Returns true if a message from `source` to `destination` is lost.
  /// Called exactly once per send; implementations may consume randomness.
  [[nodiscard]] virtual bool drops(MemberId source, MemberId destination,
                                   Rng& rng) const = 0;
};

/// Lossless network (used by correctness tests: with no faults the protocol
/// must achieve completeness exactly 1).
class NoLoss final : public FaultModel {
 public:
  [[nodiscard]] bool drops(MemberId, MemberId, Rng&) const override {
    return false;
  }
};

/// Independent (iid) unicast loss with a fixed probability — the paper's
/// `ucastl`.
class IndependentLoss final : public FaultModel {
 public:
  explicit IndependentLoss(double loss_probability);

  [[nodiscard]] bool drops(MemberId, MemberId, Rng& rng) const override;

  [[nodiscard]] double loss_probability() const { return loss_probability_; }

 private:
  double loss_probability_;
};

/// Soft partition: the group is split into two halves; messages crossing the
/// partition are dropped with `cross_loss`, messages within a half with
/// `within_loss`. Models correlated failures / congestion (Figure 9).
class PartitionLoss final : public FaultModel {
 public:
  /// `side_of` maps a member to its partition side (any integer; unequal
  /// sides mean the message crosses the partition).
  PartitionLoss(std::function<int(MemberId)> side_of, double within_loss,
                double cross_loss);

  /// Convenience: members with id value < `boundary` are side 0, others 1.
  static std::unique_ptr<PartitionLoss> split_at(MemberId::underlying boundary,
                                                 double within_loss,
                                                 double cross_loss);

  [[nodiscard]] bool drops(MemberId source, MemberId destination,
                           Rng& rng) const override;

 private:
  std::function<int(MemberId)> side_of_;
  double within_loss_;
  double cross_loss_;
};

/// Per-link override on top of a base model; used by failure-injection tests
/// to sever or degrade specific links deterministically.
class LinkOverrideLoss final : public FaultModel {
 public:
  explicit LinkOverrideLoss(std::unique_ptr<FaultModel> base);

  /// Sets the loss probability of the directed link source -> destination.
  void set_link(MemberId source, MemberId destination, double loss_probability);

  [[nodiscard]] bool drops(MemberId source, MemberId destination,
                           Rng& rng) const override;

 private:
  struct LinkKey {
    MemberId::underlying source;
    MemberId::underlying destination;
    friend bool operator==(const LinkKey&, const LinkKey&) = default;
  };
  struct LinkKeyHash {
    std::size_t operator()(const LinkKey& k) const {
      return std::hash<std::uint64_t>{}(
          (static_cast<std::uint64_t>(k.source) << 32) | k.destination);
    }
  };

  std::unique_ptr<FaultModel> base_;
  std::unordered_map<LinkKey, double, LinkKeyHash> overrides_;
};

}  // namespace gridbox::net
