#include "src/net/stats.h"

// NetworkStats is a plain aggregate; definitions live in the header.
