#include "src/net/datagram.h"

#include <cstring>

namespace gridbox::net {

namespace {

void put_u16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v & 0xff);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}

void put_u32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v & 0xff);
  p[1] = static_cast<std::uint8_t>((v >> 8) & 0xff);
  p[2] = static_cast<std::uint8_t>((v >> 16) & 0xff);
  p[3] = static_cast<std::uint8_t>((v >> 24) & 0xff);
}

[[nodiscard]] std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

[[nodiscard]] std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

const char* to_string(DecodeError error) {
  switch (error) {
    case DecodeError::kOk: return "ok";
    case DecodeError::kTooShort: return "too-short";
    case DecodeError::kBadMagic: return "bad-magic";
    case DecodeError::kBadVersion: return "bad-version";
    case DecodeError::kBadReserved: return "bad-reserved";
    case DecodeError::kOversizePayload: return "oversize-payload";
    case DecodeError::kLengthMismatch: return "length-mismatch";
  }
  return "unknown";
}

std::size_t encode_datagram(const Message& message, std::uint8_t* buffer) {
  put_u32(buffer, kDatagramMagic);
  buffer[4] = kDatagramVersion;
  buffer[5] = 0;
  put_u16(buffer + 6, static_cast<std::uint16_t>(message.frame.size()));
  put_u32(buffer + 8, message.source.value());
  put_u32(buffer + 12, message.destination.value());
  if (!message.frame.empty()) {
    std::memcpy(buffer + kDatagramHeaderBytes, message.frame.data(),
                message.frame.size());
  }
  return kDatagramHeaderBytes + message.frame.size();
}

DecodeError decode_datagram(const std::uint8_t* data, std::size_t size,
                            Message& out) {
  if (size < kDatagramHeaderBytes) return DecodeError::kTooShort;
  if (get_u32(data) != kDatagramMagic) return DecodeError::kBadMagic;
  if (data[4] != kDatagramVersion) return DecodeError::kBadVersion;
  if (data[5] != 0) return DecodeError::kBadReserved;
  const std::uint16_t payload_len = get_u16(data + 6);
  if (payload_len > kMaxPayloadBytes) return DecodeError::kOversizePayload;
  if (size != kDatagramHeaderBytes + payload_len) {
    return DecodeError::kLengthMismatch;
  }
  out.source = MemberId(get_u32(data + 8));
  out.destination = MemberId(get_u32(data + 12));
  out.frame = Frame(data + kDatagramHeaderBytes, payload_len);
  return DecodeError::kOk;
}

}  // namespace gridbox::net
