// The simulated unreliable asynchronous network.
//
// Connects protocol endpoints over a point-to-point transport with pluggable
// loss (FaultModel) and delay (LatencyModel). This is the substrate the paper
// assumes: "an underlying routing mechanism ... that enables any member to
// send messages to any other member" (§2), unreliable and asynchronous.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/net/chaos.h"
#include "src/net/fault_model.h"
#include "src/net/latency_model.h"
#include "src/net/message.h"
#include "src/net/observer.h"
#include "src/net/stats.h"
#include "src/net/transport.h"
#include "src/sim/simulator.h"

namespace gridbox::net {

/// In-flight messages are typed deliver-frame events: the frame rides inside
/// the event queue, so a send -> deliver hop is two fixed-size copies and no
/// heap allocation (chaos duplicates reuse the already-built frame the same
/// way — one more event copy each, never a deep copy).
///
/// Final: protocol code dispatches through Transport, but the simulator's
/// own calls (deliver_frame) and the runner's wiring stay devirtualized.
class SimNetwork final : public Transport, public sim::FrameSink {
 public:
  /// The network does not own the simulator; it must outlive the network.
  SimNetwork(sim::Simulator& simulator, std::unique_ptr<FaultModel> faults,
             std::unique_ptr<LatencyModel> latency, Rng rng);

  SimNetwork(const SimNetwork&) = delete;
  SimNetwork& operator=(const SimNetwork&) = delete;

  /// Registers the receiver for a member id. The endpoint must outlive the
  /// network or be detached first.
  void attach(MemberId id, Endpoint& endpoint) override;

  /// Removes the receiver; in-flight messages to it are dropped on arrival.
  void detach(MemberId id) override;

  /// Optional liveness oracle consulted at delivery time; a message to a
  /// member for which this returns false is counted as dead-destination.
  /// (Crashed members neither send nor receive — membership::Group wires
  /// this to its crash state.)
  void set_liveness(std::function<bool(MemberId)> is_alive);

  /// Optional distance function for link-load accounting (topology ablation).
  void set_distance(std::function<double(MemberId, MemberId)> distance);

  /// Installs a chaos schedule. While installed, the schedule's own fault
  /// pipeline decides drops (the constructor-time fault model is bypassed —
  /// wrap it into the schedule to keep it) and may add bounded delay and
  /// duplicate deliveries. The network binds the schedule to its simulator
  /// clock. Install before any send.
  void install_chaos(std::unique_ptr<ChaosSchedule> chaos);

  /// The installed schedule, or nullptr.
  [[nodiscard]] const ChaosSchedule* chaos() const { return chaos_.get(); }

  /// Optional observability hooks, called in deterministic event order (see
  /// observer.h). Non-owning; null detaches. The observer must outlive the
  /// network or be detached first.
  void set_observer(NetworkObserver* observer) { observer_ = observer; }

  /// Sends one unicast message. May be dropped by the fault model; otherwise
  /// it is delivered after the model latency, if the destination is then
  /// attached and alive. Self-sends are delivered like any other message.
  void send(Message message) override;

  [[nodiscard]] const NetworkStats& stats() const override { return stats_; }
  void reset_stats() { stats_.reset(); }

  [[nodiscard]] sim::Simulator& simulator() { return simulator_; }

 private:
  /// sim::FrameSink: called by the simulator when an in-flight message's
  /// delivery event comes due.
  void deliver_frame(const Message& message) override;

  sim::Simulator& simulator_;
  std::unique_ptr<FaultModel> faults_;
  std::unique_ptr<ChaosSchedule> chaos_;
  std::unique_ptr<LatencyModel> latency_;
  Rng rng_;
  // Dense routing table indexed by member id (ids are dense 0..N-1 in every
  // experiment): one array load per delivery instead of a hash lookup on
  // the hottest path in the simulator. Unattached slots are null.
  std::vector<Endpoint*> endpoints_;
  std::function<bool(MemberId)> is_alive_;
  std::function<double(MemberId, MemberId)> distance_;
  NetworkStats stats_;
  NetworkObserver* observer_ = nullptr;
};

}  // namespace gridbox::net
