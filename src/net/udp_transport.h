// net::Transport over real nonblocking UDP sockets on loopback.
//
// One UdpTransport serves one shard of a run's members on one Reactor
// (thread). Each attached member gets its own nonblocking datagram socket
// bound to a well-known port (port_base + member id) — addressing is pure
// arithmetic, so there is no discovery protocol and any member can unicast
// to any other, which is exactly the routing substrate the paper assumes.
// Frames travel as the strict 16-byte-header datagrams of datagram.h; a
// receiver either delivers the frame bytes unchanged or counts the
// datagram malformed.
//
// Chaos shim: the same ChaosSchedule grammar the simulator uses is applied
// in userspace on the send path — a send may be dropped, delayed (the
// datagram is re-scheduled on the reactor's timer wheel), or duplicated
// before it ever reaches sendto(2). Loss/burst/jitter/dup specs therefore
// mean the same thing over real sockets as in simulation, on top of
// whatever the kernel itself drops (full socket buffers under load are
// counted as drops too — the protocols are built for exactly that).
//
// Threading: one UdpTransport is owned by one reactor shard, and every
// call on it (send from a protocol callback, on_readable from the
// reactor, attach/detach during setup and teardown) happens on that
// shard's thread — the shard-ownership model of DESIGN.md §14. The
// transport itself takes no locks and holds no atomics; cross-shard
// traffic goes through the kernel (a send lands in the *destination*
// member's socket, drained by the destination's shard). Stats reads at
// measurement time happen after the reactor threads have joined.
#pragma once

#include <netinet/in.h>
#include <sys/types.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/common/types.h"
#include "src/net/chaos.h"
#include "src/net/reactor.h"
#include "src/net/stats.h"
#include "src/net/transport.h"

namespace gridbox::net {

class UdpTransport final : public Transport, public IoHandler {
 public:
  struct Options {
    /// Member m is addressed at 127.0.0.1:(port_base + m.value()).
    std::uint16_t port_base = 0;
    /// Receive buffer request per socket (the kernel clamps to rmem_max);
    /// large because hundreds of peers may burst at one socket.
    int rcvbuf_bytes = 4 << 20;
    /// Datagrams drained per on_readable call before yielding back to the
    /// reactor, so one flooded socket cannot starve timers forever.
    std::size_t max_drain = 256;
  };

  /// Injectable syscalls, for unit tests that script EINTR/EAGAIN and
  /// short reads without a kernel in the loop.
  struct Hooks {
    std::function<ssize_t(int fd, void* buf, std::size_t len)> recv;
    std::function<ssize_t(int fd, const void* buf, std::size_t len,
                          const sockaddr_in& to)>
        send_to;
  };

  /// The reactor must outlive the transport.
  UdpTransport(Reactor& reactor, Options options);
  ~UdpTransport() override;

  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  /// Binds a nonblocking socket for `id` and registers it with the
  /// reactor. Throws PreconditionError if the bind fails.
  void attach(MemberId id, Endpoint& endpoint) override;

  /// Closes the member's socket; datagrams already queued for it vanish
  /// with the socket (the kernel's version of dropped-on-arrival).
  void detach(MemberId id) override;

  void send(Message message) override;

  [[nodiscard]] const NetworkStats& stats() const override { return stats_; }

  /// Liveness oracle consulted at delivery, mirroring SimNetwork: a
  /// datagram for a dead member counts dead-destination, not delivered.
  void set_liveness(std::function<bool(MemberId)> is_alive);

  /// Installs the userspace chaos shim (see file comment). The schedule is
  /// bound to the reactor clock. Install before any send.
  void install_chaos(std::unique_ptr<ChaosSchedule> chaos);
  [[nodiscard]] const ChaosSchedule* chaos() const { return chaos_.get(); }

  void set_hooks(Hooks hooks);

  /// Arms live telemetry into the owning shard's lane (nullptr disarms) —
  /// the same lane as the shard's reactor; shard-thread writes only.
  void set_telemetry(obs::TelemetryLane* lane) { telemetry_ = lane; }

  /// IoHandler: drains the readable socket; tolerates EINTR (retries) and
  /// EAGAIN/spurious wakeups (returns) without spinning.
  void on_readable(int fd) override;

  /// Number of local members with an open socket.
  [[nodiscard]] std::size_t attached_count() const;

  /// The attached member's socket fd, or -1. Lets mocked-reactor tests
  /// drive on_readable with the fd the real dispatch would pass.
  [[nodiscard]] int fd_of(MemberId id) const;

  /// EINTR retries observed inside recv loops (test observability).
  [[nodiscard]] std::uint64_t recv_eintr_retries() const {
    return recv_eintr_retries_;
  }

 private:
  struct LocalMember {
    int fd = -1;
    Endpoint* endpoint = nullptr;
  };

  /// Encodes and sendto()s one already-chaos-approved message.
  void transmit(const Message& message);
  [[nodiscard]] sockaddr_in address_of(MemberId id) const;
  [[nodiscard]] LocalMember* local_of(MemberId id);

  Reactor& reactor_;
  Options options_;
  Hooks hooks_;
  std::vector<LocalMember> locals_;    ///< dense by member id value
  std::vector<MemberId> fd_owner_;     ///< dense by fd (loopback fds are small)
  std::function<bool(MemberId)> is_alive_;
  std::unique_ptr<ChaosSchedule> chaos_;
  NetworkStats stats_;
  std::uint64_t recv_eintr_retries_ = 0;
  obs::TelemetryLane* telemetry_ = nullptr;
};

}  // namespace gridbox::net
