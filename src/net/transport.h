// The transport interface protocols are written against.
//
// The paper assumes only "an underlying routing mechanism ... that enables
// any member to send messages to any other member" (§2) — unreliable,
// asynchronous, unicast. This interface is exactly that mechanism, with two
// implementations:
//
//   - net::SimNetwork: the discrete-event simulated network (pluggable loss
//     and latency models, scripted chaos, deterministic in the seed).
//   - net::UdpTransport: real nonblocking UDP sockets on a poll reactor,
//     shipping the same fixed net::Frame bytes on the wire.
//
// Protocol nodes hold a Transport* and call send(); everything else
// (fault/latency models, chaos installation, observers, socket addressing)
// is an implementation concern configured by the world that owns the
// transport. The differential harness runs one protocol over both
// implementations and cross-checks the results (docs/udp_runtime.md).
#pragma once

#include "src/common/types.h"
#include "src/net/message.h"
#include "src/net/stats.h"

namespace gridbox::net {

/// Receiver side of the transport. Protocol nodes implement this.
class Endpoint {
 public:
  virtual ~Endpoint() = default;
  virtual void on_message(const Message& message) = 0;
};

/// Point-to-point unicast with a constant message size bound (net::Frame).
/// May drop, delay, reorder, and duplicate; never corrupts silently —
/// payloads a receiver cannot decode are counted malformed, not delivered.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Registers the receiver for a member id. The endpoint must outlive the
  /// transport or be detached first.
  virtual void attach(MemberId id, Endpoint& endpoint) = 0;

  /// Removes the receiver; in-flight messages to it are dropped on arrival.
  virtual void detach(MemberId id) = 0;

  /// Sends one unicast message. Fire-and-forget: delivery is best-effort
  /// and asynchronous. Self-sends are delivered like any other message.
  virtual void send(Message message) = 0;

  /// What the transport actually did so far (sends, drops, deliveries...).
  [[nodiscard]] virtual const NetworkStats& stats() const = 0;
};

}  // namespace gridbox::net
