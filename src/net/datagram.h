// The UDP wire encoding of one net::Message.
//
// A datagram is a fixed 16-byte header followed by the frame payload:
//
//   offset  size  field
//        0     4  magic        0x47'52'42'58 ("GRBX", little-endian u32)
//        4     1  version      1
//        5     1  reserved     0
//        6     2  payload_len  little-endian u16, <= net::kMaxPayloadBytes
//        8     4  source       little-endian u32 member id
//       12     4  destination  little-endian u32 member id
//       16     n  payload      exactly payload_len frame bytes
//
// Decoding is strict: the datagram's total size must equal
// kDatagramHeaderBytes + payload_len exactly — truncated AND padded
// datagrams are malformed, never partially accepted. That mirrors
// SimNetwork's contract ("never corrupts silently"): a receiver either
// delivers the frame bytes unchanged or counts the datagram malformed.
//
// Free functions over raw buffers, deliberately socket-free: the decode
// fuzz tests (tests/test_udp_fuzz.cpp) drive this exact code path with
// arbitrary byte soup and no file descriptors in sight.
#pragma once

#include <cstddef>
#include <cstdint>

#include "src/net/message.h"

namespace gridbox::net {

inline constexpr std::size_t kDatagramHeaderBytes = 16;
inline constexpr std::size_t kMaxDatagramBytes =
    kDatagramHeaderBytes + kMaxPayloadBytes;
inline constexpr std::uint32_t kDatagramMagic = 0x47524258;  // "GRBX"
inline constexpr std::uint8_t kDatagramVersion = 1;

/// Why a buffer failed to decode (kOk = it decoded).
enum class DecodeError : std::uint8_t {
  kOk = 0,
  kTooShort = 1,        ///< fewer than kDatagramHeaderBytes bytes
  kBadMagic = 2,        ///< magic mismatch: not a gridbox datagram
  kBadVersion = 3,      ///< version this decoder does not speak
  kBadReserved = 4,     ///< reserved byte nonzero
  kOversizePayload = 5, ///< header claims more than kMaxPayloadBytes
  kLengthMismatch = 6,  ///< total size != header bytes + claimed payload
};

[[nodiscard]] const char* to_string(DecodeError error);

/// Writes the datagram for `message` into `buffer`, which must hold at
/// least kMaxDatagramBytes. Returns the number of bytes written
/// (kDatagramHeaderBytes + frame size).
[[nodiscard]] std::size_t encode_datagram(const Message& message,
                                          std::uint8_t* buffer);

/// Parses `size` bytes at `data` into `out`. Returns kOk and fills `out`
/// only when the buffer is a well-formed datagram; on any error `out` is
/// untouched. Never reads past `data + size` and never throws — this is
/// the boundary where untrusted network bytes enter the process.
[[nodiscard]] DecodeError decode_datagram(const std::uint8_t* data,
                                          std::size_t size, Message& out);

}  // namespace gridbox::net
