#include "src/net/udp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "src/common/ensure.h"
#include "src/net/datagram.h"

namespace gridbox::net {

UdpTransport::UdpTransport(Reactor& reactor, Options options)
    : reactor_(reactor), options_(options) {
  hooks_.recv = [](int fd, void* buf, std::size_t len) {
    return ::recv(fd, buf, len, 0);
  };
  hooks_.send_to = [](int fd, const void* buf, std::size_t len,
                      const sockaddr_in& to) {
    return ::sendto(fd, buf, len, 0, reinterpret_cast<const sockaddr*>(&to),
                    sizeof(to));
  };
}

UdpTransport::~UdpTransport() {
  for (std::size_t i = 0; i < locals_.size(); ++i) {
    if (locals_[i].fd >= 0) detach(MemberId(static_cast<std::uint32_t>(i)));
  }
}

sockaddr_in UdpTransport::address_of(MemberId id) const {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(
      static_cast<std::uint16_t>(options_.port_base + id.value()));
  return addr;
}

UdpTransport::LocalMember* UdpTransport::local_of(MemberId id) {
  if (id.value() >= locals_.size()) return nullptr;
  LocalMember& local = locals_[id.value()];
  return local.fd >= 0 ? &local : nullptr;
}

void UdpTransport::attach(MemberId id, Endpoint& endpoint) {
  expects(id.is_valid(), "cannot attach the invalid member id");
  expects(options_.port_base + id.value() <= 65535,
          "member id exceeds the port space above port_base");
  const int fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
  expects(fd >= 0, "socket(2) failed");
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &options_.rcvbuf_bytes,
                     sizeof(options_.rcvbuf_bytes));
  const sockaddr_in addr = address_of(id);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    expects(false, "bind(2) failed: port in use or out of fds");
  }
  if (id.value() >= locals_.size()) locals_.resize(id.value() + 1);
  locals_[id.value()] = LocalMember{fd, &endpoint};
  if (static_cast<std::size_t>(fd) >= fd_owner_.size()) {
    fd_owner_.resize(static_cast<std::size_t>(fd) + 1, MemberId::invalid());
  }
  fd_owner_[static_cast<std::size_t>(fd)] = id;
  reactor_.add_fd(fd, *this);
}

void UdpTransport::detach(MemberId id) {
  LocalMember* local = local_of(id);
  if (local == nullptr) return;
  reactor_.remove_fd(local->fd);
  fd_owner_[static_cast<std::size_t>(local->fd)] = MemberId::invalid();
  ::close(local->fd);
  local->fd = -1;
  local->endpoint = nullptr;
}

void UdpTransport::set_liveness(std::function<bool(MemberId)> is_alive) {
  is_alive_ = std::move(is_alive);
}

void UdpTransport::install_chaos(std::unique_ptr<ChaosSchedule> chaos) {
  expects(chaos != nullptr, "chaos schedule required");
  expects(stats_.messages_sent == 0, "install chaos before any send");
  chaos_ = std::move(chaos);
  chaos_->bind_clock([this]() { return reactor_.now(); });
}

void UdpTransport::set_hooks(Hooks hooks) {
  if (hooks.recv) hooks_.recv = std::move(hooks.recv);
  if (hooks.send_to) hooks_.send_to = std::move(hooks.send_to);
}

void UdpTransport::transmit(const Message& message) {
  const LocalMember* local = local_of(message.source);
  // Send from the source member's own socket when it is local (the normal
  // case); a transport asked to forward for a foreign source uses any open
  // socket — the header, not the kernel address, carries identity.
  int fd = local != nullptr ? local->fd : -1;
  if (fd < 0) {
    for (const LocalMember& candidate : locals_) {
      if (candidate.fd >= 0) {
        fd = candidate.fd;
        break;
      }
    }
  }
  expects(fd >= 0, "transmit with no open socket");
  std::uint8_t buffer[kMaxDatagramBytes];
  const std::size_t size = encode_datagram(message, buffer);
  const sockaddr_in to = address_of(message.destination);
  for (;;) {
    const ssize_t n = hooks_.send_to(fd, buffer, size, to);
    if (n >= 0) return;
    if (errno == EINTR) continue;
    // EAGAIN/ENOBUFS: the kernel's queues are full. That is network loss,
    // which is precisely what these protocols are designed to survive.
    ++stats_.messages_dropped;
    return;
  }
}

void UdpTransport::send(Message message) {
  ++stats_.messages_sent;
  stats_.bytes_sent += message.frame.size();
  if (chaos_ != nullptr) {
    ChaosDecision decision =
        chaos_->on_send(message.source, message.destination);
    if (decision.drop) {
      ++stats_.messages_dropped;
      return;
    }
    if (decision.extra_delay > SimTime::zero() ||
        !decision.duplicate_delays.empty()) {
      const SimTime base = reactor_.now() + decision.extra_delay;
      for (const SimTime offset : decision.duplicate_delays) {
        ++stats_.messages_duplicated;
        stats_.bytes_sent += message.frame.size();
        reactor_.schedule_at(base + offset,
                             [this, message]() { transmit(message); });
      }
      if (decision.extra_delay > SimTime::zero()) {
        reactor_.schedule_at(base, [this, message]() { transmit(message); });
        return;
      }
    }
  }
  transmit(message);
}

void UdpTransport::on_readable(int fd) {
  const MemberId owner = static_cast<std::size_t>(fd) < fd_owner_.size()
                             ? fd_owner_[static_cast<std::size_t>(fd)]
                             : MemberId::invalid();
  // Oversized datagrams must be *seen* to be rejected: the buffer holds
  // one byte more than the maximum legal datagram, so anything longer
  // reads as > kMaxDatagramBytes and fails strict decoding instead of
  // being silently truncated into a plausible prefix.
  std::uint8_t buffer[kMaxDatagramBytes + 1];
  std::size_t received = 0;
  for (std::size_t drained = 0; drained < options_.max_drain; ++drained) {
    const ssize_t n = hooks_.recv(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) {
        // Interrupted before a datagram was read: retry, but bounded by
        // max_drain like every other iteration — never a spin.
        ++recv_eintr_retries_;
        continue;
      }
      // EAGAIN/EWOULDBLOCK: drained (or the wakeup was spurious). Any
      // other errno on a datagram socket is also just "nothing to read".
      if (telemetry_ != nullptr) telemetry_->drain_per_wake.observe(received);
      return;
    }
    ++received;
    Message message;
    const DecodeError error =
        decode_datagram(buffer, static_cast<std::size_t>(n), message);
    if (error != DecodeError::kOk ||
        (owner.is_valid() && message.destination != owner)) {
      // Byte soup, or a datagram mis-addressed to this port: count it and
      // keep the socket draining — never deliver, never crash.
      ++stats_.messages_malformed;
      continue;
    }
    const LocalMember* local = local_of(message.destination);
    const bool alive = !is_alive_ || is_alive_(message.destination);
    if (local == nullptr || local->endpoint == nullptr || !alive) {
      ++stats_.messages_dead_dest;
      continue;
    }
    ++stats_.messages_delivered;
    if (telemetry_ != nullptr) {
      telemetry_->frames_delivered.fetch_add(1, std::memory_order_relaxed);
    }
    try {
      local->endpoint->on_message(message);
    } catch (const PreconditionError&) {
      // Well-framed datagram, undecodable payload: same contract as the
      // simulated network — count malformed, keep the node running.
      ++stats_.messages_malformed;
    }
  }
  // max_drain exhausted with the socket still hot: the reactor will wake
  // again immediately; the histogram records a full-bucket drain.
  if (telemetry_ != nullptr) telemetry_->drain_per_wake.observe(received);
}

int UdpTransport::fd_of(MemberId id) const {
  if (!id.is_valid() || id.value() >= locals_.size()) return -1;
  return locals_[id.value()].fd;
}

std::size_t UdpTransport::attached_count() const {
  std::size_t count = 0;
  for (const LocalMember& local : locals_) {
    if (local.fd >= 0) ++count;
  }
  return count;
}

}  // namespace gridbox::net
