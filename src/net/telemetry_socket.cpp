#include "src/net/telemetry_socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "src/common/ensure.h"

namespace gridbox::net {

TelemetrySocket::TelemetrySocket(Reactor& reactor, std::uint16_t port,
                                 std::function<std::string()> provider)
    : reactor_(reactor), port_(port), provider_(std::move(provider)) {
  expects(port_ != 0, "telemetry socket needs a nonzero port");
  expects(static_cast<bool>(provider_), "telemetry socket needs a provider");
  fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
  expects(fd_ >= 0, "socket(2) failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port_);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd_);
    fd_ = -1;
    expects(false, "bind(2) failed for telemetry stats socket");
  }
  reactor_.add_fd(fd_, *this);
}

TelemetrySocket::~TelemetrySocket() {
  if (fd_ >= 0) {
    reactor_.remove_fd(fd_);
    (void)::close(fd_);
  }
}

void TelemetrySocket::on_readable(int fd) {
  // Every received datagram is a probe regardless of content; the reply is
  // the latest record. Bounded drain like the transport: a prober flooding
  // the socket cannot starve the shard's timers.
  for (int i = 0; i < 16; ++i) {
    std::uint8_t probe[64];
    sockaddr_in from{};
    socklen_t from_len = sizeof(from);
    const ssize_t n =
        ::recvfrom(fd, probe, sizeof(probe), 0,
                   reinterpret_cast<sockaddr*>(&from), &from_len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // drained (EAGAIN) or spurious
    }
    std::string reply = provider_();
    reply.push_back('\n');
    // A lost or truncated reply is fine: the prober just asks again.
    (void)::sendto(fd, reply.data(), reply.size(), 0,
                   reinterpret_cast<const sockaddr*>(&from), from_len);
  }
}

}  // namespace gridbox::net
