// One-shot UDP stats endpoint for live telemetry.
//
// Binds a single datagram socket on 127.0.0.1 and registers it with the
// control reactor. Any datagram received is a probe; the reply is whatever
// the provider callback returns — in practice the latest
// gridbox-telemetry/1 record, newline-terminated. Request/reply over one
// datagram each keeps the protocol stateless: gridbox_top sends a byte,
// reads a record, renders, repeats. The provider runs on the reactor's
// thread (the same thread the sampler writes latest() on), so no locking.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "src/net/reactor.h"

namespace gridbox::net {

class TelemetrySocket final : public IoHandler {
 public:
  /// Binds 127.0.0.1:port and registers with `reactor` (which must outlive
  /// this object). Throws PreconditionError if the bind fails.
  TelemetrySocket(Reactor& reactor, std::uint16_t port,
                  std::function<std::string()> provider);
  ~TelemetrySocket() override;
  TelemetrySocket(const TelemetrySocket&) = delete;
  TelemetrySocket& operator=(const TelemetrySocket&) = delete;

  void on_readable(int fd) override;

  [[nodiscard]] std::uint16_t port() const { return port_; }

 private:
  Reactor& reactor_;
  std::uint16_t port_ = 0;
  int fd_ = -1;
  std::function<std::string()> provider_;
};

}  // namespace gridbox::net
