// Real-time event loop: poll(2) over nonblocking sockets plus a hashed
// timer wheel, presented to protocol code as a sim::Scheduler.
//
// This is the real-world twin of sim::Simulator. The simulator advances a
// virtual clock to the next queued event; the reactor sleeps in poll(2)
// until a socket turns readable or the next timer-wheel tick comes due, and
// reads its clock from steady_clock µs since a run-wide epoch. Protocol
// nodes cannot tell the difference: start_rounds() arms the same typed
// TimerTarget chain, and on_timer's return value re-arms or stops the
// periodic timer exactly as in the simulator.
//
// Threading model (docs/udp_runtime.md): a run shards its members over a
// few reactors, one thread each, and each shard OWNS its members end to
// end. Everything protocol-visible — timer fires, datagram deliveries,
// scheduled actions, the run_until done() probe — executes lock-free on
// the owning shard's thread, because every piece of state a callback
// touches is either shard-local (the member's node, its arena lanes, the
// shard's transport) or explicitly concurrency-safe (atomic Group
// liveness, the mutex-gated AuditRegistry, atomic completion counters).
// The reactor itself takes no dispatch lock; post() is the one
// cross-thread entry point, and its mutex hand-off is what publishes
// another thread's writes to this shard. Scheduling calls (schedule_*)
// are reactor-thread-local: they may be made during setup before the loop
// starts, or from inside a callback this reactor is running — never from
// another thread (cross-shard work goes through post()).
//
// The loop tolerates EINTR (poll retried, counted), EAGAIN (drain loops
// simply end), and spurious wakeups (a poll return with nothing readable
// costs one bounded iteration) without busy-spinning: every iteration
// either dispatches work or sleeps in poll for the tick quantum.
#pragma once

#include <poll.h>

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "src/common/types.h"
#include "src/obs/telemetry.h"
#include "src/sim/scheduler.h"

namespace gridbox::net {

/// Receiver of socket readiness. Implemented by UdpTransport.
class IoHandler {
 public:
  virtual ~IoHandler() = default;
  /// `fd` polled readable (possibly spuriously). Drain until EAGAIN.
  virtual void on_readable(int fd) = 0;
};

class Reactor final : public sim::Scheduler {
 public:
  struct Options {
    /// Timer wheel tick quantum; also the poll sleep bound, so a timer
    /// fires at most ~one quantum late.
    SimTime tick = SimTime::millis(1);
    /// Wheel slots; horizon before a wrap is tick * slots (entries past
    /// the horizon simply wait out extra laps).
    std::size_t slots = 4096;
  };

  explicit Reactor(Options options);
  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Sets the steady_clock instant that maps to SimTime::zero(). All
  /// reactors of one run share one epoch so their clocks agree.
  void bind_epoch(std::chrono::steady_clock::time_point epoch) {
    epoch_ = epoch;
  }

  /// Real microseconds since the epoch.
  [[nodiscard]] SimTime now() const override;

  // sim::Scheduler — same clamping semantics as the simulator: times in
  // the past mean "as soon as possible".
  void schedule_at(SimTime time, sim::Action action) override;
  void schedule_after(SimTime delay, sim::Action action) override;
  void schedule_periodic(SimTime start, SimTime interval,
                         sim::TimerTarget& target,
                         std::uint32_t timer_id = 0) override;
  void schedule_timer_at(SimTime time, sim::TimerTarget& target,
                         std::uint32_t timer_id = 0) override;

  /// Registers `fd` for readability watching. The handler must outlive the
  /// registration.
  void add_fd(int fd, IoHandler& handler);
  void remove_fd(int fd);

  /// Runs the poll/timer loop until `done()` returns true (probed once per
  /// iteration on this thread; a multi-shard done() must read only atomics)
  /// or the real clock passes `deadline`. Returns true iff done() turned
  /// true.
  bool run_until(const std::function<bool()>& done, SimTime deadline);

  /// Enqueues an action to run on this reactor's thread. The one scheduling
  /// entry point that IS safe to call from other threads: schedule_* are
  /// reactor-thread-local, so cross-shard work (the service runtime starting
  /// an instance's nodes on their home shards) goes through here. Posted
  /// actions run on this reactor's thread at the top of the next loop
  /// iteration, in post order — the post_mutex_ hand-off makes the poster's
  /// prior writes visible to the action. Actions still queued when the loop
  /// exits are discarded.
  void post(sim::Action action);

  /// Pending wheel timers (typed entries) whose target satisfies `pred`.
  /// NOT thread-safe: call from this reactor's own thread — in practice
  /// from a post()ed action, where the wheel is quiescent. The service
  /// runtime's retirement handshake counts an instance's timers to prove no
  /// wheel entry still points into nodes about to be destroyed.
  [[nodiscard]] std::size_t count_timers_where(
      const std::function<bool(const sim::TimerTarget*)>& pred) const;

  /// Fires every timer due at or before now() once, without polling.
  /// Exposed for mocked-reactor unit tests that drive the loop by hand.
  void fire_due_timers();

  /// Injectable poll(2), for tests that script EINTR and spurious wakeups.
  using PollFn = std::function<int(pollfd*, nfds_t, int)>;
  void set_poll_fn(PollFn fn) { poll_fn_ = std::move(fn); }

  /// Injectable clock, for tests that script timer lateness. When set,
  /// now() reads it instead of steady_clock (the epoch is ignored).
  using ClockFn = std::function<SimTime()>;
  void set_clock_fn(ClockFn fn) { clock_fn_ = std::move(fn); }

  /// Arms live telemetry into `lane` (nullptr disarms). Set before the
  /// loop starts; when null the hooks cost one pointer test each.
  void set_telemetry(obs::TelemetryLane* lane) { telemetry_ = lane; }

  [[nodiscard]] std::uint64_t timers_fired() const { return timers_fired_; }
  [[nodiscard]] std::uint64_t actions_run() const { return actions_run_; }
  [[nodiscard]] std::uint64_t polls() const { return polls_; }
  [[nodiscard]] std::uint64_t eintr_retries() const { return eintr_retries_; }

 private:
  /// One wheel entry: either a typed timer (target != null) or an action.
  struct Entry {
    SimTime deadline;
    SimTime interval;  ///< zero = one-shot
    sim::TimerTarget* target = nullptr;
    std::uint32_t timer_id = 0;
    sim::Action action;  ///< used when target == null
  };

  void insert(Entry entry);
  /// Runs cross-thread post()ed actions on this thread, in post order.
  void drain_posted();
  [[nodiscard]] std::size_t slot_of(SimTime deadline) const;
  /// Collects due entries from slots in (last_tick_, now-tick], fires them
  /// on this thread, re-inserts surviving periodic timers.
  void advance_wheel(SimTime now);

  Options options_;
  std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
  std::vector<std::vector<Entry>> wheel_;
  std::int64_t last_tick_ = -1;  ///< last wheel tick fully processed
  std::size_t pending_timers_ = 0;
  std::vector<Entry> due_;  ///< scratch: entries being fired this pass

  std::vector<pollfd> pollfds_;
  std::vector<IoHandler*> handlers_;  ///< parallel to pollfds_
  PollFn poll_fn_;
  ClockFn clock_fn_;
  obs::TelemetryLane* telemetry_ = nullptr;

  std::mutex post_mutex_;            ///< guards posted_ only
  std::vector<sim::Action> posted_;  ///< cross-thread inbox (post())

  std::uint64_t timers_fired_ = 0;
  std::uint64_t actions_run_ = 0;
  std::uint64_t polls_ = 0;
  std::uint64_t eintr_retries_ = 0;
};

}  // namespace gridbox::net
