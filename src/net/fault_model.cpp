#include "src/net/fault_model.h"

#include <utility>

#include "src/common/ensure.h"

namespace gridbox::net {

IndependentLoss::IndependentLoss(double loss_probability)
    : loss_probability_(loss_probability) {
  expects(loss_probability >= 0.0 && loss_probability <= 1.0,
          "loss probability must be in [0,1]");
}

bool IndependentLoss::drops(MemberId, MemberId, Rng& rng) const {
  return rng.bernoulli(loss_probability_);
}

PartitionLoss::PartitionLoss(std::function<int(MemberId)> side_of,
                             double within_loss, double cross_loss)
    : side_of_(std::move(side_of)),
      within_loss_(within_loss),
      cross_loss_(cross_loss) {
  expects(static_cast<bool>(side_of_), "side_of function must be callable");
  expects(within_loss >= 0.0 && within_loss <= 1.0, "within_loss in [0,1]");
  expects(cross_loss >= 0.0 && cross_loss <= 1.0, "cross_loss in [0,1]");
}

std::unique_ptr<PartitionLoss> PartitionLoss::split_at(
    MemberId::underlying boundary, double within_loss, double cross_loss) {
  return std::make_unique<PartitionLoss>(
      [boundary](MemberId m) { return m.value() < boundary ? 0 : 1; },
      within_loss, cross_loss);
}

bool PartitionLoss::drops(MemberId source, MemberId destination,
                          Rng& rng) const {
  const bool crosses = side_of_(source) != side_of_(destination);
  return rng.bernoulli(crosses ? cross_loss_ : within_loss_);
}

LinkOverrideLoss::LinkOverrideLoss(std::unique_ptr<FaultModel> base)
    : base_(std::move(base)) {
  expects(base_ != nullptr, "base fault model required");
}

void LinkOverrideLoss::set_link(MemberId source, MemberId destination,
                                double loss_probability) {
  expects(loss_probability >= 0.0 && loss_probability <= 1.0,
          "loss probability must be in [0,1]");
  overrides_[LinkKey{source.value(), destination.value()}] = loss_probability;
}

bool LinkOverrideLoss::drops(MemberId source, MemberId destination,
                             Rng& rng) const {
  const auto it =
      overrides_.find(LinkKey{source.value(), destination.value()});
  if (it != overrides_.end()) return rng.bernoulli(it->second);
  return base_->drops(source, destination, rng);
}

}  // namespace gridbox::net
