// Network messages with a hard constant size bound.
//
// The paper's scalability argument assumes "all messages sent over the
// network are constant size bounded" (§2). The bound is enforced by the
// net::Frame representation itself (see frame.h): a protocol that tried to
// ship a growing digest cannot even construct the payload.
#pragma once

#include "src/common/types.h"
#include "src/net/frame.h"

namespace gridbox::net {

/// A point-to-point message. The network provides only unicast; anything
/// resembling multicast is built from unicasts by the protocols (matching the
/// paper's unicast loss model). Trivially copyable apart from the inline
/// frame bytes: duplicating or queueing a message never touches the heap.
struct Message {
  MemberId source;
  MemberId destination;
  Frame frame;
};

}  // namespace gridbox::net
