// Network messages with a hard constant size bound.
//
// The paper's scalability argument assumes "all messages sent over the
// network are constant size bounded" (§2). The bound is enforced here, at the
// transport boundary: a protocol that tried to ship a growing digest would
// throw, not silently cheat the model.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/ensure.h"
#include "src/common/types.h"

namespace gridbox::net {

/// Maximum payload size in bytes. A constant chosen to hold a small, fixed
/// handful of votes or composable partials plus addressing headers — the
/// paper's requirement is a *constant* bound independent of N ("the byte-size
/// of the function f's output is not much larger than the byte-size of an
/// individual vote", §1), which a 256-byte frame satisfies for every message
/// any protocol here sends.
inline constexpr std::size_t kMaxPayloadBytes = 256;

/// Raw payload bytes. Construction validates the size bound.
class Payload {
 public:
  Payload() = default;
  explicit Payload(std::vector<std::uint8_t> bytes) : bytes_(std::move(bytes)) {
    expects(bytes_.size() <= kMaxPayloadBytes,
            "payload exceeds the constant message size bound");
  }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  [[nodiscard]] std::size_t size() const { return bytes_.size(); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// A point-to-point message. The network provides only unicast; anything
/// resembling multicast is built from unicasts by the protocols (matching the
/// paper's unicast loss model).
struct Message {
  MemberId source;
  MemberId destination;
  Payload payload;
};

}  // namespace gridbox::net
