#include "src/net/chaos.h"

#include <algorithm>
#include <array>
#include <charconv>
#include <sstream>
#include <utility>

#include "src/common/ensure.h"

namespace gridbox::net {

namespace {

// Independent decision-stream tags (see header: separated streams give the
// metamorphic test suite exact invariances under spec composition).
constexpr std::uint64_t kDropStream = 0x01;
constexpr std::uint64_t kJitterStream = 0x02;
constexpr std::uint64_t kDupStream = 0x03;

[[nodiscard]] std::uint64_t link_key(MemberId source, MemberId destination) {
  return (static_cast<std::uint64_t>(source.value()) << 32) |
         destination.value();
}

// ---- parsing helpers --------------------------------------------------------

struct SpecError {
  std::size_t line;
  std::string what;
};

[[noreturn]] void fail_at(std::size_t line, const std::string& what) {
  throw PreconditionError("chaos spec line " + std::to_string(line) + ": " +
                          what);
}

[[nodiscard]] std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) {
    if (token.front() == '#') break;  // trailing comment
    tokens.push_back(token);
  }
  return tokens;
}

[[nodiscard]] double parse_probability(const std::string& text,
                                       std::size_t line) {
  std::size_t used = 0;
  double p = 0.0;
  try {
    p = std::stod(text, &used);
  } catch (const std::exception&) {
    fail_at(line, "not a probability: " + text);
  }
  if (used != text.size() || p < 0.0 || p > 1.0) {
    fail_at(line, "probability out of [0,1]: " + text);
  }
  return p;
}

[[nodiscard]] SimTime parse_time(const std::string& text, std::size_t line) {
  std::size_t used = 0;
  long long ticks = 0;
  try {
    ticks = std::stoll(text, &used);
  } catch (const std::exception&) {
    fail_at(line, "not a time: " + text);
  }
  if (ticks < 0) fail_at(line, "time must be non-negative: " + text);
  const std::string suffix = text.substr(used);
  if (suffix.empty() || suffix == "us") return SimTime::micros(ticks);
  if (suffix == "ms") return SimTime::millis(ticks);
  if (suffix == "s") return SimTime::seconds(ticks);
  fail_at(line, "unknown time suffix: " + text);
}

/// "FROM..TO" -> pair of times with FROM <= TO.
[[nodiscard]] std::pair<SimTime, SimTime> parse_window(const std::string& text,
                                                       std::size_t line) {
  const std::size_t dots = text.find("..");
  if (dots == std::string::npos) fail_at(line, "expected FROM..TO: " + text);
  const SimTime from = parse_time(text.substr(0, dots), line);
  const SimTime to = parse_time(text.substr(dots + 2), line);
  if (to < from) fail_at(line, "window ends before it starts: " + text);
  return {from, to};
}

[[nodiscard]] MemberId parse_member(const std::string& text,
                                    std::size_t line) {
  if (text.size() < 2 || text.front() != 'M') {
    fail_at(line, "expected a member id like M5: " + text);
  }
  std::size_t used = 0;
  unsigned long v = 0;
  try {
    v = std::stoul(text.substr(1), &used);
  } catch (const std::exception&) {
    fail_at(line, "expected a member id like M5: " + text);
  }
  if (used != text.size() - 1) {
    fail_at(line, "expected a member id like M5: " + text);
  }
  return MemberId{static_cast<MemberId::underlying>(v)};
}

/// "key=value" -> value, enforcing the expected key.
[[nodiscard]] std::string expect_kv(const std::string& token,
                                    const std::string& key, std::size_t line) {
  const std::string prefix = key + "=";
  if (token.rfind(prefix, 0) != 0) {
    fail_at(line, "expected " + key + "=..., got: " + token);
  }
  return token.substr(prefix.size());
}

[[nodiscard]] std::string time_text(SimTime t) {
  return std::to_string(t.ticks()) + "us";
}

[[nodiscard]] std::string prob_text(double p) {
  // Shortest exact representation (std::to_chars), so parse(to_text())
  // round-trips bit-for-bit even for machine-generated probabilities.
  std::array<char, 32> buf{};
  const auto [end, ec] = std::to_chars(buf.data(), buf.data() + buf.size(), p);
  ensures(ec == std::errc{}, "probability formatting failed");
  return std::string(buf.data(), end);
}

}  // namespace

ChaosSpec ChaosSpec::parse(const std::string& text) {
  ChaosSpec spec;
  std::istringstream in(text);
  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::vector<std::string> t = tokenize(raw);
    if (t.empty()) continue;
    const std::string& directive = t[0];
    const auto want = [&](std::size_t n) {
      if (t.size() != n + 1) {
        fail_at(line_no, directive + ": expected " + std::to_string(n) +
                             " argument(s), got " + std::to_string(t.size() - 1));
      }
    };
    if (directive == "loss") {
      want(1);
      spec.base_loss = parse_probability(t[1], line_no);
    } else if (directive == "burst") {
      want(5);
      BurstEpoch b;
      std::tie(b.from, b.to) = parse_window(t[1], line_no);
      b.good_loss = parse_probability(expect_kv(t[2], "good", line_no), line_no);
      b.bad_loss = parse_probability(expect_kv(t[3], "bad", line_no), line_no);
      b.go_bad = parse_probability(expect_kv(t[4], "go-bad", line_no), line_no);
      b.go_good =
          parse_probability(expect_kv(t[5], "go-good", line_no), line_no);
      spec.bursts.push_back(b);
    } else if (directive == "link") {
      want(2);
      const std::size_t arrow = t[1].find("->");
      if (arrow == std::string::npos) {
        fail_at(line_no, "expected MA->MB: " + t[1]);
      }
      LinkLoss l;
      l.source = parse_member(t[1].substr(0, arrow), line_no);
      l.destination = parse_member(t[1].substr(arrow + 2), line_no);
      l.loss = parse_probability(t[2], line_no);
      spec.links.push_back(l);
    } else if (directive == "jitter") {
      want(2);
      spec.jitter.probability =
          parse_probability(expect_kv(t[1], "p", line_no), line_no);
      std::tie(spec.jitter.lo, spec.jitter.hi) = parse_window(t[2], line_no);
    } else if (directive == "dup") {
      want(3);
      spec.dup.probability =
          parse_probability(expect_kv(t[1], "p", line_no), line_no);
      const std::string extra = expect_kv(t[2], "extra", line_no);
      try {
        spec.dup.extra = static_cast<std::uint32_t>(std::stoul(extra));
      } catch (const std::exception&) {
        fail_at(line_no, "dup: extra must be a count: " + extra);
      }
      if (spec.dup.extra == 0) fail_at(line_no, "dup: extra must be >= 1");
      spec.dup.spread = parse_time(expect_kv(t[3], "spread", line_no), line_no);
    } else if (directive == "partition") {
      if (t.size() != 4 && t.size() != 5) {
        fail_at(line_no, "partition: expected 3 or 4 arguments");
      }
      PartitionEpoch p;
      std::tie(p.from, p.to) = parse_window(t[1], line_no);
      const std::string boundary = expect_kv(t[2], "boundary", line_no);
      if (boundary == "half") {
        p.boundary_is_half = true;
      } else {
        p.boundary_is_half = false;
        try {
          p.boundary =
              static_cast<MemberId::underlying>(std::stoul(boundary));
        } catch (const std::exception&) {
          fail_at(line_no, "partition: bad boundary: " + boundary);
        }
      }
      p.cross_loss =
          parse_probability(expect_kv(t[3], "cross", line_no), line_no);
      if (t.size() == 5) {
        p.has_within = true;
        p.within_loss =
            parse_probability(expect_kv(t[4], "within", line_no), line_no);
      }
      spec.partitions.push_back(p);
    } else if (directive == "crash") {
      want(2);
      CrashEvent c;
      c.member = parse_member(t[1], line_no);
      c.at = parse_time(expect_kv(t[2], "at", line_no), line_no);
      spec.crashes.push_back(c);
    } else if (directive == "join" || directive == "recover") {
      want(2);
      ChurnEvent e;
      e.member = parse_member(t[1], line_no);
      e.at = parse_time(expect_kv(t[2], "at", line_no), line_no);
      (directive == "join" ? spec.joins : spec.recovers).push_back(e);
    } else {
      fail_at(line_no, "unknown directive: " + directive);
    }
  }
  return spec;
}

std::string ChaosSpec::to_text() const {
  std::ostringstream out;
  if (base_loss.has_value()) out << "loss " << prob_text(*base_loss) << "\n";
  for (const BurstEpoch& b : bursts) {
    out << "burst " << time_text(b.from) << ".." << time_text(b.to)
        << " good=" << prob_text(b.good_loss) << " bad=" << prob_text(b.bad_loss)
        << " go-bad=" << prob_text(b.go_bad)
        << " go-good=" << prob_text(b.go_good) << "\n";
  }
  for (const LinkLoss& l : links) {
    out << "link M" << l.source.value() << "->M" << l.destination.value()
        << " " << prob_text(l.loss) << "\n";
  }
  if (jitter.probability > 0.0) {
    out << "jitter p=" << prob_text(jitter.probability) << " "
        << time_text(jitter.lo) << ".." << time_text(jitter.hi) << "\n";
  }
  if (dup.probability > 0.0) {
    out << "dup p=" << prob_text(dup.probability) << " extra=" << dup.extra
        << " spread=" << time_text(dup.spread) << "\n";
  }
  for (const PartitionEpoch& p : partitions) {
    out << "partition " << time_text(p.from) << ".." << time_text(p.to)
        << " boundary=";
    if (p.boundary_is_half) {
      out << "half";
    } else {
      out << p.boundary;
    }
    out << " cross=" << prob_text(p.cross_loss);
    if (p.has_within) out << " within=" << prob_text(p.within_loss);
    out << "\n";
  }
  for (const CrashEvent& c : crashes) {
    out << "crash M" << c.member.value() << " at=" << time_text(c.at) << "\n";
  }
  for (const ChurnEvent& e : joins) {
    out << "join M" << e.member.value() << " at=" << time_text(e.at) << "\n";
  }
  for (const ChurnEvent& e : recovers) {
    out << "recover M" << e.member.value() << " at=" << time_text(e.at)
        << "\n";
  }
  return out.str();
}

bool ChaosSpec::affects_network() const {
  return base_loss.has_value() || !bursts.empty() || !links.empty() ||
         jitter.probability > 0.0 || dup.probability > 0.0 ||
         !partitions.empty();
}

bool ChaosSpec::has_churn() const { return !joins.empty() || !recovers.empty(); }

bool ChaosSpec::empty() const {
  return !affects_network() && crashes.empty() && !has_churn();
}

ChaosSpec random_chaos_spec(Rng& rng, std::size_t group_size,
                            SimTime horizon) {
  expects(group_size >= 2, "need at least two members");
  expects(horizon.ticks() > 0, "need a positive horizon");
  ChaosSpec spec;
  const auto random_time = [&rng, horizon]() {
    return SimTime{static_cast<SimTime::underlying>(rng.uniform_int(
        0, static_cast<std::uint64_t>(horizon.ticks())))};
  };
  const auto random_window = [&]() {
    SimTime a = random_time();
    SimTime b = random_time();
    if (b < a) std::swap(a, b);
    return std::pair{a, b};
  };
  if (rng.bernoulli(0.7)) spec.base_loss = rng.uniform() * 0.4;
  const std::size_t bursts = rng.uniform_int(0, 2);
  for (std::size_t i = 0; i < bursts; ++i) {
    BurstEpoch b;
    std::tie(b.from, b.to) = random_window();
    b.good_loss = rng.uniform() * 0.1;
    b.bad_loss = 0.5 + rng.uniform() * 0.5;
    b.go_bad = rng.uniform() * 0.3;
    b.go_good = rng.uniform() * 0.5;
    spec.bursts.push_back(b);
  }
  const std::size_t links = rng.uniform_int(0, 3);
  for (std::size_t i = 0; i < links; ++i) {
    LinkLoss l;
    l.source = MemberId{
        static_cast<MemberId::underlying>(rng.index(group_size))};
    l.destination = MemberId{
        static_cast<MemberId::underlying>(rng.index(group_size))};
    l.loss = rng.bernoulli(0.5) ? 1.0 : rng.uniform();
    spec.links.push_back(l);
  }
  if (rng.bernoulli(0.5)) {
    spec.jitter.probability = rng.uniform();
    spec.jitter.lo = SimTime::zero();
    spec.jitter.hi = SimTime{static_cast<SimTime::underlying>(
        rng.uniform_int(1, static_cast<std::uint64_t>(horizon.ticks() / 8)))};
  }
  if (rng.bernoulli(0.5)) {
    spec.dup.probability = rng.uniform();
    spec.dup.extra = static_cast<std::uint32_t>(rng.uniform_int(1, 2));
    spec.dup.spread = SimTime{static_cast<SimTime::underlying>(
        rng.uniform_int(0, static_cast<std::uint64_t>(horizon.ticks() / 8)))};
  }
  if (rng.bernoulli(0.4)) {
    PartitionEpoch p;
    std::tie(p.from, p.to) = random_window();
    if (rng.bernoulli(0.5)) {
      p.boundary_is_half = true;
    } else {
      p.boundary_is_half = false;
      p.boundary = static_cast<MemberId::underlying>(
          rng.uniform_int(1, group_size - 1));
    }
    p.cross_loss = 0.5 + rng.uniform() * 0.5;
    if (rng.bernoulli(0.5)) {
      p.has_within = true;
      p.within_loss = rng.uniform() * 0.3;
    }
    spec.partitions.push_back(p);
  }
  const std::size_t crashes = rng.uniform_int(0, 3);
  for (std::size_t i = 0; i < crashes; ++i) {
    CrashEvent c;
    c.member = MemberId{
        static_cast<MemberId::underlying>(rng.index(group_size))};
    c.at = random_time();
    spec.crashes.push_back(c);
  }
  return spec;
}

ChaosSchedule::ChaosSchedule(ChaosSpec spec, std::unique_ptr<FaultModel> base,
                             std::size_t group_size, Rng rng)
    : spec_(std::move(spec)),
      base_(std::move(base)),
      group_size_(group_size),
      drop_rng_(rng.derive(kDropStream)),
      jitter_rng_(rng.derive(kJitterStream)),
      dup_rng_(rng.derive(kDupStream)),
      burst_bad_(spec_.bursts.size(), false),
      burst_active_(spec_.bursts.size(), false) {
  expects(base_ != nullptr, "base fault model required (use NoLoss)");
  expects(group_size_ >= 1, "group size required to resolve boundaries");
  if (spec_.base_loss.has_value()) {
    base_ = std::make_unique<IndependentLoss>(*spec_.base_loss);
  }
  for (const LinkLoss& l : spec_.links) {
    link_loss_[link_key(l.source, l.destination)] = l.loss;
  }
}

void ChaosSchedule::bind_clock(std::function<SimTime()> clock) {
  clock_ = std::move(clock);
}

bool ChaosSchedule::decide_drop(MemberId source, MemberId destination,
                                SimTime now) {
  // Per-link overrides claim the message outright (asymmetric by design).
  const auto link = link_loss_.find(link_key(source, destination));
  if (link != link_loss_.end()) return drop_rng_.bernoulli(link->second);

  // Partition epochs: cross-side traffic is claimed; same-side traffic is
  // claimed only when the epoch scripts a within-loss.
  for (const PartitionEpoch& p : spec_.partitions) {
    if (now < p.from || now >= p.to) continue;
    const MemberId::underlying boundary =
        p.boundary_is_half
            ? static_cast<MemberId::underlying>(group_size_ / 2)
            : p.boundary;
    const bool cross = (source.value() < boundary) !=
                       (destination.value() < boundary);
    if (cross) return drop_rng_.bernoulli(p.cross_loss);
    if (p.has_within) return drop_rng_.bernoulli(p.within_loss);
  }

  // Gilbert–Elliott bursts: the chain resets to good at each epoch entry and
  // advances once per consulted message while active.
  for (std::size_t i = 0; i < spec_.bursts.size(); ++i) {
    const BurstEpoch& b = spec_.bursts[i];
    const bool active = now >= b.from && now < b.to;
    if (!active) {
      burst_active_[i] = false;
      continue;
    }
    if (!burst_active_[i]) {
      burst_active_[i] = true;
      burst_bad_[i] = false;
    }
    const bool drop =
        drop_rng_.bernoulli(burst_bad_[i] ? b.bad_loss : b.good_loss);
    if (burst_bad_[i]) {
      if (drop_rng_.bernoulli(b.go_good)) burst_bad_[i] = false;
    } else {
      if (drop_rng_.bernoulli(b.go_bad)) burst_bad_[i] = true;
    }
    return drop;
  }

  return base_->drops(source, destination, drop_rng_);
}

ChaosDecision ChaosSchedule::on_send(MemberId source, MemberId destination) {
  ensures(static_cast<bool>(clock_), "chaos schedule used before bind_clock");
  const SimTime now = clock_();
  ChaosDecision decision;
  decision.drop = decide_drop(source, destination, now);
  if (decision.drop) return decision;
  if (spec_.jitter.probability > 0.0 &&
      jitter_rng_.bernoulli(spec_.jitter.probability)) {
    decision.extra_delay = SimTime{static_cast<SimTime::underlying>(
        jitter_rng_.uniform_int(
            static_cast<std::uint64_t>(spec_.jitter.lo.ticks()),
            static_cast<std::uint64_t>(spec_.jitter.hi.ticks())))};
  }
  if (spec_.dup.probability > 0.0 &&
      dup_rng_.bernoulli(spec_.dup.probability)) {
    decision.duplicate_delays.reserve(spec_.dup.extra);
    for (std::uint32_t i = 0; i < spec_.dup.extra; ++i) {
      decision.duplicate_delays.push_back(
          SimTime{static_cast<SimTime::underlying>(dup_rng_.uniform_int(
              0, static_cast<std::uint64_t>(spec_.dup.spread.ticks())))});
    }
  }
  return decision;
}

void schedule_chaos_crashes(const ChaosSpec& spec, sim::Simulator& simulator,
                            std::function<void(MemberId)> crash) {
  expects(static_cast<bool>(crash), "crash callback required");
  const auto shared = std::make_shared<std::function<void(MemberId)>>(
      std::move(crash));
  for (const CrashEvent& c : spec.crashes) {
    simulator.schedule_at(c.at,
                          [shared, member = c.member]() { (*shared)(member); });
  }
}

}  // namespace gridbox::net
