// Message latency models for the simulated network.
//
// The protocols are latency-agnostic (gossip rounds are timer-driven), but a
// realistic latency distribution exercises asynchrony: messages from the same
// round arrive out of order and may straddle phase boundaries, exactly the
// regime the paper's simulations cover (§7 relaxes the synchronous-phase
// assumption of the analysis).
#pragma once

#include <functional>
#include <memory>

#include "src/common/rng.h"
#include "src/common/types.h"

namespace gridbox::net {

class LatencyModel {
 public:
  virtual ~LatencyModel() = default;

  /// One-way delay for a message from `source` to `destination`.
  [[nodiscard]] virtual SimTime delay(MemberId source, MemberId destination,
                                      Rng& rng) const = 0;
};

/// Fixed one-way delay.
class ConstantLatency final : public LatencyModel {
 public:
  explicit ConstantLatency(SimTime delay);
  [[nodiscard]] SimTime delay(MemberId, MemberId, Rng&) const override;

 private:
  SimTime delay_;
};

/// Uniform in [lo, hi].
class UniformLatency final : public LatencyModel {
 public:
  UniformLatency(SimTime lo, SimTime hi);
  [[nodiscard]] SimTime delay(MemberId, MemberId, Rng& rng) const override;

 private:
  SimTime lo_;
  SimTime hi_;
};

/// base + Exp(mean), truncated at base + cap: a long-tailed WAN-ish delay
/// that can never stall the simulation unboundedly.
class ExponentialLatency final : public LatencyModel {
 public:
  ExponentialLatency(SimTime base, SimTime mean_extra, SimTime cap_extra);
  [[nodiscard]] SimTime delay(MemberId, MemberId, Rng& rng) const override;

 private:
  SimTime base_;
  SimTime mean_extra_;
  SimTime cap_extra_;
};

/// Delay proportional to the Euclidean distance between member positions,
/// plus a base: models multihop routing cost in a sensor field. Used by the
/// topology-awareness ablation to show that a topologically aware hash keeps
/// early protocol phases on short links (§6.1).
class DistanceLatency final : public LatencyModel {
 public:
  /// `position_of` must return the member's coordinates; `per_unit` is the
  /// added delay per unit of distance.
  DistanceLatency(std::function<Position(MemberId)> position_of, SimTime base,
                  SimTime per_unit);
  [[nodiscard]] SimTime delay(MemberId source, MemberId destination,
                              Rng& rng) const override;

 private:
  std::function<Position(MemberId)> position_of_;
  SimTime base_;
  SimTime per_unit_;
};

}  // namespace gridbox::net
