// Transport-level observability hooks.
//
// A NetworkObserver receives one callback per transport decision, in the
// exact deterministic order the network makes them: accept (on_send), drop,
// duplicate scheduling, and the three delivery outcomes. The hooks mirror
// NetworkStats counters one-to-one, so an observer that counts events must
// reconcile exactly with net::stats at the end of a run — the obs subsystem
// tests that invariant to keep the two accounting paths from drifting.
//
// The default implementation is all no-ops; a detached network pays one
// null-pointer test per event.
#pragma once

#include "src/common/types.h"
#include "src/net/message.h"

namespace gridbox::net {

class NetworkObserver {
 public:
  virtual ~NetworkObserver() = default;

  /// send() accepted the message (counted in messages_sent; fires before the
  /// drop decision, so every offered message is seen exactly once).
  virtual void on_send(const Message& message, SimTime now) {
    (void)message;
    (void)now;
  }
  /// The fault pipeline dropped the message.
  virtual void on_drop(const Message& message, SimTime now) {
    (void)message;
    (void)now;
  }
  /// Chaos scheduled one extra delivery of the message.
  virtual void on_duplicate(const Message& message, SimTime now) {
    (void)message;
    (void)now;
  }
  /// The message reached a live, attached endpoint.
  virtual void on_deliver(const Message& message, SimTime now) {
    (void)message;
    (void)now;
  }
  /// The destination was detached or crashed at delivery time.
  virtual void on_dead_destination(const Message& message, SimTime now) {
    (void)message;
    (void)now;
  }
  /// The receiver's decoder rejected the payload.
  virtual void on_malformed(const Message& message, SimTime now) {
    (void)message;
    (void)now;
  }
};

}  // namespace gridbox::net
