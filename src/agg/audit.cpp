#include "src/agg/audit.h"

#include "src/common/ensure.h"

namespace gridbox::agg {

AuditRegistry::AuditRegistry(std::size_t universe) : universe_(universe) {
  expects(universe > 0, "audit universe must be positive");
}

std::uint64_t AuditRegistry::register_vote(MemberId member) {
  expects(member.value() < universe_, "member outside audit universe");
  MemberBitset set(universe_);
  set.set(member.value());
  sets_.push_back(std::move(set));
  return sets_.size();  // token = index + 1; 0 is reserved
}

std::uint64_t AuditRegistry::register_merge(
    const std::vector<std::uint64_t>& tokens) {
  MemberBitset acc(universe_);
  for (const std::uint64_t token : tokens) {
    if (token == kNoAuditToken) continue;
    if (token > sets_.size()) {
      ++unknown_tokens_;  // forged or corrupt wire data; skip, don't crash
      continue;
    }
    const MemberBitset& set = set_of(token);
    if (acc.intersects(set)) ++violations_;
    acc.merge(set);
  }
  sets_.push_back(std::move(acc));
  return sets_.size();
}

const MemberBitset& AuditRegistry::set_of(std::uint64_t token) const {
  expects(token != kNoAuditToken && token <= sets_.size(),
          "unknown audit token");
  return sets_[token - 1];
}

std::size_t AuditRegistry::votes_behind(std::uint64_t token) const {
  if (token == kNoAuditToken) return 0;
  return set_of(token).count();
}

}  // namespace gridbox::agg
