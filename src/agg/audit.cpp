#include "src/agg/audit.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "src/common/ensure.h"

namespace gridbox::agg {

namespace {

/// FNV-1a over the window content (offset + words). Deterministic across
/// runs and platforms; collisions are resolved by content comparison.
std::uint64_t window_hash(std::uint32_t first_word, const std::uint64_t* words,
                          std::uint32_t num_words) {
  std::uint64_t h = 14695981039346656037ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xFF;
      h *= 1099511628211ULL;
    }
  };
  mix(first_word);
  for (std::uint32_t i = 0; i < num_words; ++i) mix(words[i]);
  return h;
}

}  // namespace

AuditRegistry::AuditRegistry(std::size_t universe) : universe_(universe) {
  expects(universe > 0, "audit universe must be positive");
}

void AuditRegistry::set_bit_order(std::vector<std::uint32_t> member_to_bit) {
  expects(token_record_.empty(), "bit order must be set before any token");
  expects(member_to_bit.size() == universe_,
          "bit order size must match universe");
  std::vector<std::uint32_t> inverse(universe_,
                                     static_cast<std::uint32_t>(universe_));
  for (std::size_t m = 0; m < universe_; ++m) {
    const std::uint32_t bit = member_to_bit[m];
    expects(bit < universe_ && inverse[bit] == universe_,
            "bit order must be a permutation");
    inverse[bit] = static_cast<std::uint32_t>(m);
  }
  member_to_bit_ = std::move(member_to_bit);
  bit_to_member_ = std::move(inverse);
}

std::uint32_t AuditRegistry::intern(std::uint32_t first_word,
                                    const std::uint64_t* words,
                                    std::uint32_t num_words) {
  const std::uint64_t h = window_hash(first_word, words, num_words);
  std::vector<std::uint32_t>& bucket = dedup_[h];
  for (const std::uint32_t id : bucket) {
    const Record& r = records_[id];
    if (r.first_word != first_word || r.num_words != num_words) continue;
    if (num_words == 0 ||
        std::memcmp(&pool_[r.pool_index], words,
                    static_cast<std::size_t>(num_words) * 8) == 0) {
      return id;
    }
  }
  Record rec;
  rec.first_word = first_word;
  rec.num_words = num_words;
  rec.pool_index = static_cast<std::uint32_t>(pool_.size());
  rec.hash = h;
  std::uint32_t bits = 0;
  for (std::uint32_t i = 0; i < num_words; ++i) {
    bits += static_cast<std::uint32_t>(std::popcount(words[i]));
  }
  rec.count = bits;
  pool_.insert(pool_.end(), words, words + num_words);
  const auto id = static_cast<std::uint32_t>(records_.size());
  records_.push_back(rec);
  bucket.push_back(id);
  return id;
}

std::uint64_t AuditRegistry::register_vote(MemberId member) {
  expects(member.value() < universe_, "member outside audit universe");
  std::unique_lock<std::mutex> lock;
  if (concurrent_) lock = std::unique_lock<std::mutex>(mutex_);
  const std::size_t bit = to_bit(member.value());
  const std::uint64_t word = std::uint64_t{1} << (bit % 64);
  token_record_.push_back(
      intern(static_cast<std::uint32_t>(bit / 64), &word, 1));
  return token_record_.size();  // token = index + 1; 0 is reserved
}

std::uint64_t AuditRegistry::register_merge(
    const std::vector<std::uint64_t>& tokens) {
  std::unique_lock<std::mutex> lock;
  if (concurrent_) lock = std::unique_lock<std::mutex>(mutex_);
  if (acc_words_.empty()) acc_words_.assign((universe_ + 63) / 64, 0);
  std::size_t lo = acc_words_.size();  // touched word range, for cleanup
  std::size_t hi = 0;
  for (const std::uint64_t token : tokens) {
    if (token == kNoAuditToken) continue;
    if (token > token_record_.size()) {
      ++unknown_tokens_;  // forged or corrupt wire data; skip, don't crash
      continue;
    }
    const Record& rec = records_[token_record_[token - 1]];
    bool overlap = false;
    for (std::uint32_t i = 0; i < rec.num_words; ++i) {
      const std::size_t w = rec.first_word + i;
      const std::uint64_t v = pool_[rec.pool_index + i];
      if ((acc_words_[w] & v) != 0) overlap = true;
      acc_words_[w] |= v;
    }
    if (overlap) ++violations_;
    if (rec.num_words != 0) {
      lo = std::min(lo, static_cast<std::size_t>(rec.first_word));
      hi = std::max(hi, static_cast<std::size_t>(rec.first_word) +
                            rec.num_words);
    }
  }
  // Trim the touched range to the nonzero window (inputs may be empty sets).
  while (lo < hi && acc_words_[lo] == 0) ++lo;
  while (hi > lo && acc_words_[hi - 1] == 0) --hi;
  const std::uint32_t num_words =
      lo < hi ? static_cast<std::uint32_t>(hi - lo) : 0;
  token_record_.push_back(intern(static_cast<std::uint32_t>(lo < hi ? lo : 0),
                                 num_words != 0 ? &acc_words_[lo] : nullptr,
                                 num_words));
  if (lo < hi) std::fill(acc_words_.begin() + lo, acc_words_.begin() + hi, 0);
  return token_record_.size();
}

const AuditRegistry::Record& AuditRegistry::record(std::uint64_t token) const {
  expects(token != kNoAuditToken && token <= token_record_.size(),
          "unknown audit token");
  return records_[token_record_[token - 1]];
}

MemberBitset AuditRegistry::set_of(std::uint64_t token) const {
  MemberBitset out(universe_);
  for_each_member(token, [&out](MemberId m) { out.set(m.value()); });
  return out;
}

std::size_t AuditRegistry::votes_behind(std::uint64_t token) const {
  if (token == kNoAuditToken) return 0;
  return record(token).count;
}

std::size_t AuditRegistry::record_of(std::uint64_t token) const {
  expects(token != kNoAuditToken && token <= token_record_.size(),
          "unknown audit token");
  return token_record_[token - 1];
}

}  // namespace gridbox::agg
