#include "src/agg/codec.h"

#include <bit>
#include <cstring>

namespace gridbox::agg {

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

std::uint8_t ByteReader::u8() {
  need(1);
  return (*bytes_)[pos_++];
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>((*bytes_)[pos_++]) << (8 * i);
  }
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>((*bytes_)[pos_++]) << (8 * i);
  }
  return v;
}

double ByteReader::f64() { return std::bit_cast<double>(u64()); }

void write_partial(ByteWriter& w, const Partial& p) {
  w.u32(p.count());
  w.f64(p.sum());
  w.f64(p.sum_squares());
  w.f64(p.min());
  w.f64(p.max());
}

Partial read_partial(ByteReader& r) {
  const std::uint32_t count = r.u32();
  const double sum = r.f64();
  const double sum_squares = r.f64();
  const double min = r.f64();
  const double max = r.f64();
  return Partial::deserialize(count, sum, sum_squares, min, max);
}

}  // namespace gridbox::agg
