#include "src/agg/codec.h"

#include <bit>
#include <string>

namespace gridbox::agg {

void ByteWriter::append(const void* src, std::size_t n, const char* field) {
  if (!frame_.try_append(src, n)) {
    // Cold path: compose the diagnostic only on failure. Naming the field
    // and offset points straight at the layout that broke the budget.
    throw PreconditionError(
        "message exceeds the constant frame capacity: writing " +
        std::string(field) + " of " + std::to_string(n) + " byte(s) at offset " +
        std::to_string(frame_.size()) + " (capacity " +
        std::to_string(net::kMaxPayloadBytes) + ")");
  }
}

void ByteWriter::u32(std::uint32_t v) {
  std::uint8_t buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<std::uint8_t>(v >> (8 * i));
  append(buf, sizeof buf, "u32");
}

void ByteWriter::u64(std::uint64_t v) {
  std::uint8_t buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<std::uint8_t>(v >> (8 * i));
  append(buf, sizeof buf, "u64");
}

void ByteWriter::f64(double v) {
  std::uint8_t buf[8];
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(v);
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<std::uint8_t>(bits >> (8 * i));
  }
  append(buf, sizeof buf, "f64");
}

std::uint8_t ByteReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
  }
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
  }
  return v;
}

double ByteReader::f64() { return std::bit_cast<double>(u64()); }

void write_partial(ByteWriter& w, const Partial& p) {
  w.u32(p.count());
  w.f64(p.sum());
  w.f64(p.sum_squares());
  w.f64(p.min());
  w.f64(p.max());
}

Partial read_partial(ByteReader& r) {
  const std::uint32_t count = r.u32();
  const double sum = r.f64();
  const double sum_squares = r.f64();
  const double min = r.f64();
  const double max = r.f64();
  return Partial::deserialize(count, sum, sum_squares, min, max);
}

}  // namespace gridbox::agg
