#include "src/agg/vote.h"

#include <cmath>
#include <numbers>

#include "src/common/ensure.h"

namespace gridbox::agg {

double VoteTable::of(MemberId id) const {
  expects(id.value() < values_.size(), "member id out of range");
  return values_[id.value()];
}

Partial VoteTable::exact_partial(const std::vector<MemberId>& subset) const {
  Partial acc;
  for (const MemberId m : subset) acc.merge(Partial::from_vote(of(m)));
  return acc;
}

Partial VoteTable::exact_partial_all() const {
  Partial acc;
  for (const double v : values_) acc.merge(Partial::from_vote(v));
  return acc;
}

VoteTable uniform_votes(std::size_t n, Rng& rng, double lo, double hi) {
  expects(lo <= hi, "uniform_votes requires lo <= hi");
  std::vector<double> values(n);
  for (auto& v : values) v = lo + (hi - lo) * rng.uniform();
  return VoteTable{std::move(values)};
}

VoteTable normal_votes(std::size_t n, Rng& rng, double mu, double sigma) {
  std::vector<double> values(n);
  for (auto& v : values) v = rng.normal(mu, sigma);
  return VoteTable{std::move(values)};
}

VoteTable field_votes(std::size_t n,
                      const std::function<Position(MemberId)>& position_of,
                      Rng& rng, double base, double amplitude,
                      double noise_sigma) {
  expects(static_cast<bool>(position_of), "position function must be callable");
  std::vector<double> values(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Position p = position_of(MemberId{static_cast<MemberId::underlying>(i)});
    // Smooth bump: hottest near (0.7, 0.3), cool in the opposite corner.
    const double field =
        std::sin(std::numbers::pi * p.x) *
        std::cos(0.5 * std::numbers::pi * p.y) *
        std::exp(-2.0 * squared_distance(p, Position{0.7, 0.3}));
    values[i] = base + amplitude * field + rng.normal(0.0, noise_sigma);
  }
  return VoteTable{std::move(values)};
}

}  // namespace gridbox::agg
