// Composable aggregate functions (§1).
//
// The paper requires f with: (1) f(W1 ∪ W2) = g(f(W1), f(W2)) for disjoint
// vote sets, and (2) output not much larger than one vote. We satisfy both
// with a single Partial carrying the five classic decomposable moments
// (count, sum, sum of squares, min, max). One merge law serves every
// aggregate kind; the kind only matters when extracting the final value.
// The wire encoding is fixed-size (36 bytes), so every protocol message
// stays under the constant bound regardless of how many votes a partial
// summarizes.
#pragma once

#include <cstdint>
#include <string>

#include "src/common/types.h"

namespace gridbox::agg {

/// Which global function the group is evaluating.
enum class AggregateKind : std::uint8_t {
  kAverage = 0,
  kSum = 1,
  kMin = 2,
  kMax = 3,
  kCount = 4,
  kRange = 5,    ///< max − min
  kStdDev = 6,   ///< population standard deviation
};

[[nodiscard]] std::string to_string(AggregateKind kind);

/// Decomposable summary of a set of votes. Value-semantic, 36 wire bytes.
class Partial {
 public:
  /// The empty partial: identity of merge (summarizes the empty vote set).
  Partial() = default;

  /// Summary of the single vote `v`.
  [[nodiscard]] static Partial from_vote(double v);

  /// Reconstitutes a partial from its wire fields (codec use only).
  /// Requires internally consistent fields: count > 0 implies min <= max,
  /// count == 0 implies the all-zero partial.
  [[nodiscard]] static Partial deserialize(std::uint32_t count, double sum,
                                           double sum_squares, double min,
                                           double max);

  /// Disjoint-union composition: after a.merge(b), `a` summarizes the union
  /// of the two vote sets. Associative and commutative; Partial{} is the
  /// identity. Callers are responsible for disjointness (the protocols
  /// guarantee it structurally; audit mode verifies it).
  void merge(const Partial& other);

  /// Final value of the aggregate of the summarized set.
  /// Requires count() > 0 for every kind except kCount.
  [[nodiscard]] double value(AggregateKind kind) const;

  [[nodiscard]] std::uint32_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double sum_squares() const { return sum_squares_; }
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }

  friend bool operator==(const Partial&, const Partial&) = default;

 private:
  std::uint32_t count_ = 0;
  double sum_ = 0.0;
  double sum_squares_ = 0.0;
  double min_ = 0.0;  // meaningful only when count_ > 0
  double max_ = 0.0;  // meaningful only when count_ > 0
};

}  // namespace gridbox::agg
