#include "src/agg/aggregate.h"

#include <algorithm>
#include <cmath>

#include "src/common/ensure.h"

namespace gridbox::agg {

std::string to_string(AggregateKind kind) {
  switch (kind) {
    case AggregateKind::kAverage: return "average";
    case AggregateKind::kSum: return "sum";
    case AggregateKind::kMin: return "min";
    case AggregateKind::kMax: return "max";
    case AggregateKind::kCount: return "count";
    case AggregateKind::kRange: return "range";
    case AggregateKind::kStdDev: return "stddev";
  }
  return "unknown";
}

Partial Partial::from_vote(double v) {
  Partial p;
  p.count_ = 1;
  p.sum_ = v;
  p.sum_squares_ = v * v;
  p.min_ = v;
  p.max_ = v;
  return p;
}

Partial Partial::deserialize(std::uint32_t count, double sum,
                             double sum_squares, double min, double max) {
  if (count == 0) return Partial{};
  expects(min <= max, "corrupt partial: min > max");
  Partial p;
  p.count_ = count;
  p.sum_ = sum;
  p.sum_squares_ = sum_squares;
  p.min_ = min;
  p.max_ = max;
  return p;
}

void Partial::merge(const Partial& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  count_ += other.count_;
  sum_ += other.sum_;
  sum_squares_ += other.sum_squares_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Partial::value(AggregateKind kind) const {
  if (kind == AggregateKind::kCount) return static_cast<double>(count_);
  expects(count_ > 0, "value of an empty partial");
  switch (kind) {
    case AggregateKind::kAverage:
      return sum_ / static_cast<double>(count_);
    case AggregateKind::kSum:
      return sum_;
    case AggregateKind::kMin:
      return min_;
    case AggregateKind::kMax:
      return max_;
    case AggregateKind::kRange:
      return max_ - min_;
    case AggregateKind::kStdDev: {
      const double n = static_cast<double>(count_);
      const double mean = sum_ / n;
      // Clamp: cancellation can push the variance a hair below zero.
      return std::sqrt(std::max(0.0, sum_squares_ / n - mean * mean));
    }
    case AggregateKind::kCount:
      break;  // handled above
  }
  ensures(false, "unhandled aggregate kind");
  return 0.0;
}

}  // namespace gridbox::agg
