// Votes: the per-member inputs to the global aggregate (§1).
//
// A vote is one scalar measurement (a temperature, a pressure, a load
// average). VoteTable is the experiment's ground truth assignment of votes
// to members; the workload generators model the paper's motivating
// scenarios (sensor fields with spatially-correlated readings).
#pragma once

#include <functional>
#include <vector>

#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/agg/aggregate.h"

namespace gridbox::agg {

struct Vote {
  MemberId member;
  double value = 0.0;
};

/// Ground-truth vote per member id (ids 0..n-1).
class VoteTable {
 public:
  explicit VoteTable(std::vector<double> values) : values_(std::move(values)) {}

  [[nodiscard]] std::size_t size() const { return values_.size(); }
  [[nodiscard]] double of(MemberId id) const;

  /// Exact aggregate over votes of members in `subset`.
  [[nodiscard]] Partial exact_partial(const std::vector<MemberId>& subset) const;

  /// Exact aggregate over all members.
  [[nodiscard]] Partial exact_partial_all() const;

  [[nodiscard]] const std::vector<double>& values() const { return values_; }

 private:
  std::vector<double> values_;
};

// --- Workload generators -------------------------------------------------

/// iid Uniform(lo, hi) votes.
[[nodiscard]] VoteTable uniform_votes(std::size_t n, Rng& rng, double lo,
                                      double hi);

/// iid Normal(mu, sigma) votes.
[[nodiscard]] VoteTable normal_votes(std::size_t n, Rng& rng, double mu,
                                     double sigma);

/// Spatially correlated votes: a smooth scalar field over the unit square
/// sampled at each member's position, plus iid sensor noise. Models e.g.
/// the temperature field across an airplane wing: nearby sensors read
/// nearby values, the regime where "completeness represents accuracy".
[[nodiscard]] VoteTable field_votes(std::size_t n,
                                    const std::function<Position(MemberId)>& position_of,
                                    Rng& rng, double base, double amplitude,
                                    double noise_sigma);

}  // namespace gridbox::agg
