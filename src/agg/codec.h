// Byte-level serialization for protocol messages.
//
// Little-endian, fixed-width primitives; no varints (message sizes must be
// statically predictable to honour the constant size bound). ByteWriter /
// ByteReader are deliberately dumb: each protocol composes its own message
// layout from them, and the Partial codec below is shared by all.
#pragma once

#include <cstdint>
#include <vector>

#include "src/agg/aggregate.h"
#include "src/common/ensure.h"

namespace gridbox::agg {

class ByteWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);

  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(bytes_); }
  [[nodiscard]] std::size_t size() const { return bytes_.size(); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Throws PreconditionError on truncated input (a malformed message must
/// never crash a node — callers catch and drop).
class ByteReader {
 public:
  explicit ByteReader(const std::vector<std::uint8_t>& bytes)
      : bytes_(&bytes) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] double f64();

  [[nodiscard]] bool exhausted() const { return pos_ == bytes_->size(); }
  [[nodiscard]] std::size_t remaining() const { return bytes_->size() - pos_; }

 private:
  void need(std::size_t n) const {
    expects(pos_ + n <= bytes_->size(), "truncated message");
  }

  const std::vector<std::uint8_t>* bytes_;
  std::size_t pos_ = 0;
};

/// Fixed 36-byte encoding of a Partial (u32 count + 4 f64 moments).
inline constexpr std::size_t kPartialWireBytes = 36;

void write_partial(ByteWriter& w, const Partial& p);
[[nodiscard]] Partial read_partial(ByteReader& r);

}  // namespace gridbox::agg
