// Byte-level serialization for protocol messages.
//
// Little-endian, fixed-width primitives; no varints (message sizes must be
// statically predictable to honour the constant size bound). ByteWriter /
// ByteReader are deliberately dumb: each protocol composes its own message
// layout from them, and the Partial codec below is shared by all.
//
// Both ends operate on net::Frame, the fixed 256-byte inline wire buffer:
// encoding writes fields into the frame in place and decoding reads straight
// out of the delivered frame, so the steady-state message path performs zero
// heap allocations (asserted by the counting-allocator tests).
#pragma once

#include <cstdint>

#include "src/agg/aggregate.h"
#include "src/common/ensure.h"
#include "src/net/frame.h"

namespace gridbox::agg {

/// Builds one frame. Writes are bounds-checked at encode time: a protocol
/// message that would exceed the constant size bound throws
/// PreconditionError naming the field that overflowed — the failure surfaces
/// where the oversized layout was composed, not later at the transport.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { append(&v, sizeof v, "u8"); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);

  /// Returns the built frame and resets the writer to empty for reuse.
  [[nodiscard]] net::Frame take() {
    net::Frame out = frame_;
    frame_ = net::Frame{};
    return out;
  }

  [[nodiscard]] std::size_t size() const { return frame_.size(); }

 private:
  void append(const void* src, std::size_t n, const char* field);

  net::Frame frame_;
};

/// Throws PreconditionError on truncated input (a malformed message must
/// never crash a node — callers catch and drop). The frame (or buffer) must
/// outlive the reader.
class ByteReader {
 public:
  explicit ByteReader(const net::Frame& frame)
      : data_(frame.data()), size_(frame.size()) {}
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] double f64();

  [[nodiscard]] bool exhausted() const { return pos_ == size_; }
  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }

 private:
  void need(std::size_t n) const {
    expects(pos_ + n <= size_, "truncated message");
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Fixed 36-byte encoding of a Partial (u32 count + 4 f64 moments).
inline constexpr std::size_t kPartialWireBytes = 36;

void write_partial(ByteWriter& w, const Partial& p);
[[nodiscard]] Partial read_partial(ByteReader& r);

}  // namespace gridbox::agg
