// Vote-provenance audit (test & verification infrastructure).
//
// The paper's no-double-counting constraint (§2) is guaranteed structurally
// by the protocols (disjoint subtree partials), and this registry *proves* it
// per run. Every partial flowing through a protocol can carry an 8-byte audit
// token on the wire; the registry maps tokens to the exact set of members
// whose votes the partial summarizes. Registering a merge of non-disjoint
// sets is the double-counting bug the constraint forbids — it is counted and
// (optionally) thrown on.
//
// Tokens are simulation-side metadata, not protocol information: protocols
// forward them opaquely and never branch on them, so audited and unaudited
// runs execute identically.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/bitset.h"
#include "src/common/types.h"

namespace gridbox::agg {

/// Token value meaning "no audit attached".
inline constexpr std::uint64_t kNoAuditToken = 0;

class AuditRegistry {
 public:
  /// `universe` is the group size; bit i tracks member i's vote.
  explicit AuditRegistry(std::size_t universe);

  /// Token for the singleton set {member}.
  [[nodiscard]] std::uint64_t register_vote(MemberId member);

  /// Token for the union of the sets behind `tokens` (kNoAuditToken entries
  /// are ignored). Overlapping sets increment violation_count(). Tokens this
  /// registry never issued (possible when untrusted peers forge wire bytes)
  /// are skipped and counted in unknown_token_count() — audit instrumentation
  /// must never crash a node.
  [[nodiscard]] std::uint64_t register_merge(
      const std::vector<std::uint64_t>& tokens);

  /// The member set behind a token. Requires a token from this registry.
  [[nodiscard]] const MemberBitset& set_of(std::uint64_t token) const;

  /// Number of votes behind the token (0 for kNoAuditToken).
  [[nodiscard]] std::size_t votes_behind(std::uint64_t token) const;

  /// How many merges combined overlapping member sets. Any nonzero value is
  /// a protocol bug (double counting) — unless unknown_token_count() is also
  /// nonzero, which indicates forged wire data rather than a protocol bug.
  [[nodiscard]] std::uint64_t violation_count() const { return violations_; }

  /// Merge inputs that were not tokens issued by this registry.
  [[nodiscard]] std::uint64_t unknown_token_count() const {
    return unknown_tokens_;
  }

  [[nodiscard]] std::size_t universe() const { return universe_; }

 private:
  std::size_t universe_;
  std::vector<MemberBitset> sets_;  // index = token − 1
  std::uint64_t violations_ = 0;
  std::uint64_t unknown_tokens_ = 0;
};

}  // namespace gridbox::agg
