// Vote-provenance audit (test & verification infrastructure).
//
// The paper's no-double-counting constraint (§2) is guaranteed structurally
// by the protocols (disjoint subtree partials), and this registry *proves* it
// per run. Every partial flowing through a protocol can carry an 8-byte audit
// token on the wire; the registry maps tokens to the exact set of members
// whose votes the partial summarizes. Registering a merge of non-disjoint
// sets is the double-counting bug the constraint forbids — it is counted and
// (optionally) thrown on.
//
// Tokens are simulation-side metadata, not protocol information: protocols
// forward them opaquely and never branch on them, so audited and unaudited
// runs execute identically.
//
// Storage is built for 10^5..10^6-member universes. One full-width bitset
// per token would be O(tokens * N) bits (~gigabytes at N=100k); instead each
// token references a *record* holding only the nonzero word window of its
// set, records are content-deduplicated (saturated subtree sets repeat
// across members of a group), and an optional member→bit permutation
// (set_bit_order) lays hierarchy boxes out contiguously so subtree windows
// stay narrow. All queries are phrased in member space; the permutation is
// invisible except through for_each_member's iteration order.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/common/bitset.h"
#include "src/common/types.h"

namespace gridbox::agg {

/// Token value meaning "no audit attached".
inline constexpr std::uint64_t kNoAuditToken = 0;

class AuditRegistry {
 public:
  /// `universe` is the group size; member i's vote is tracked by one bit.
  explicit AuditRegistry(std::size_t universe);

  /// Installs a member→bit permutation (size == universe). Must be called
  /// before any token is issued. Sorting members by hierarchy box makes
  /// subtree sets contiguous bit ranges, which is what keeps the windowed
  /// records narrow; without it storage is still correct, just wider.
  void set_bit_order(std::vector<std::uint32_t> member_to_bit);

  /// Arms the internal mutex around register_vote/register_merge so nodes
  /// on different reactor shards can register concurrently. Off by default:
  /// the simulator path stays lock-free and pays only an untaken branch.
  /// Reads (set_of, for_each_member, record_of) stay unsynchronized — call
  /// them only before the run goes concurrent or after the shards join;
  /// violation_count()/unknown_token_count() are atomic and safe mid-run.
  void set_concurrent(bool on) { concurrent_ = on; }

  /// Token for the singleton set {member}.
  [[nodiscard]] std::uint64_t register_vote(MemberId member);

  /// Token for the union of the sets behind `tokens` (kNoAuditToken entries
  /// are ignored). Overlapping sets increment violation_count(). Tokens this
  /// registry never issued (possible when untrusted peers forge wire bytes)
  /// are skipped and counted in unknown_token_count() — audit instrumentation
  /// must never crash a node.
  [[nodiscard]] std::uint64_t register_merge(
      const std::vector<std::uint64_t>& tokens);

  /// The member set behind a token, materialized in member space. Requires a
  /// token from this registry. O(set size) — reporting/test use only.
  [[nodiscard]] MemberBitset set_of(std::uint64_t token) const;

  /// Calls fn(MemberId) for every member behind `token`, in bit order
  /// (== ascending member id under the identity bit order).
  template <typename Fn>
  void for_each_member(std::uint64_t token, Fn&& fn) const {
    const Record& rec = record(token);
    for (std::uint32_t wi = 0; wi < rec.num_words; ++wi) {
      std::uint64_t w = pool_[rec.pool_index + wi];
      const std::size_t base =
          (static_cast<std::size_t>(rec.first_word) + wi) * 64;
      while (w != 0) {
        const std::size_t bit =
            base + static_cast<std::size_t>(std::countr_zero(w));
        fn(MemberId{static_cast<MemberId::underlying>(to_member(bit))});
        w &= w - 1;
      }
    }
  }

  /// Number of votes behind the token (0 for kNoAuditToken). O(1).
  [[nodiscard]] std::size_t votes_behind(std::uint64_t token) const;

  /// The storage record a token resolves to. Content-deduplicated: two
  /// tokens over identical member sets share a record id, which makes this a
  /// memoization key for per-set derived values (see measure_run).
  [[nodiscard]] std::size_t record_of(std::uint64_t token) const;

  /// How many merges combined overlapping member sets. Any nonzero value is
  /// a protocol bug (double counting) — unless unknown_token_count() is also
  /// nonzero, which indicates forged wire data rather than a protocol bug.
  [[nodiscard]] std::uint64_t violation_count() const {
    return violations_.load(std::memory_order_acquire);
  }

  /// Merge inputs that were not tokens issued by this registry.
  [[nodiscard]] std::uint64_t unknown_token_count() const {
    return unknown_tokens_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::size_t universe() const { return universe_; }

  /// Distinct stored records (post-dedup) and pooled words — storage
  /// telemetry for the scale benches.
  [[nodiscard]] std::size_t record_count() const { return records_.size(); }
  [[nodiscard]] std::size_t pool_words() const { return pool_.size(); }

 private:
  struct Record {
    std::uint32_t first_word = 0;  ///< absolute word offset of the window
    std::uint32_t num_words = 0;   ///< window width (0 == empty set)
    std::uint32_t pool_index = 0;  ///< window start in pool_
    std::uint32_t count = 0;       ///< cached popcount
    std::uint64_t hash = 0;
  };

  [[nodiscard]] const Record& record(std::uint64_t token) const;
  [[nodiscard]] std::size_t to_bit(std::size_t member) const {
    return member_to_bit_.empty() ? member : member_to_bit_[member];
  }
  [[nodiscard]] std::size_t to_member(std::size_t bit) const {
    return bit_to_member_.empty() ? bit : bit_to_member_[bit];
  }
  /// Interns the trimmed window [first_word, first_word+num_words) currently
  /// sitting in `words` and returns its record index (existing on dedup hit).
  std::uint32_t intern(std::uint32_t first_word, const std::uint64_t* words,
                       std::uint32_t num_words);

  std::size_t universe_;
  std::vector<std::uint32_t> member_to_bit_;  // empty == identity
  std::vector<std::uint32_t> bit_to_member_;
  std::vector<std::uint32_t> token_record_;  // index = token − 1
  std::vector<Record> records_;
  std::vector<std::uint64_t> pool_;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> dedup_;
  std::vector<std::uint64_t> acc_words_;  // full-width merge scratch
  std::atomic<std::uint64_t> violations_{0};
  std::atomic<std::uint64_t> unknown_tokens_{0};
  bool concurrent_ = false;        ///< set before the run goes multi-shard
  mutable std::mutex mutex_;       ///< guards registrations when concurrent
};

}  // namespace gridbox::agg
