#include "src/hierarchy/address.h"

#include <limits>

#include "src/common/ensure.h"

namespace gridbox::hierarchy {

std::uint64_t checked_pow(std::uint64_t radix, std::size_t exponent) {
  expects(radix >= 2, "radix must be at least 2");
  std::uint64_t result = 1;
  for (std::size_t i = 0; i < exponent; ++i) {
    expects(result <= std::numeric_limits<std::uint64_t>::max() / radix,
            "radix^exponent overflows");
    result *= radix;
  }
  return result;
}

GridBoxAddress::GridBoxAddress(GridBoxId box, std::size_t digit_count,
                               std::uint32_t radix)
    : box_(box), radix_(radix), digits_(digit_count, 0) {
  expects(radix >= 2, "radix must be at least 2");
  expects(box.value() < checked_pow(radix, digit_count),
          "box id does not fit in the given digit count");
  std::uint64_t rest = box.value();
  for (std::size_t i = digit_count; i-- > 0;) {
    digits_[i] = static_cast<std::uint32_t>(rest % radix);
    rest /= radix;
  }
}

std::uint32_t GridBoxAddress::digit(std::size_t i) const {
  expects(i < digits_.size(), "digit index out of range");
  return digits_[i];
}

bool GridBoxAddress::same_subtree(const GridBoxAddress& other,
                                  std::size_t height) const {
  expects(radix_ == other.radix_ && digits_.size() == other.digits_.size(),
          "addresses from different hierarchies");
  return subtree_prefix(height) == other.subtree_prefix(height);
}

std::uint64_t GridBoxAddress::subtree_prefix(std::size_t height) const {
  // Dropping the `height` least significant digits leaves the prefix that
  // names the height-`height` subtree. (height 0 = the box itself; height
  // >= digit_count = the root, prefix 0 for everyone.)
  if (height >= digits_.size()) return 0;
  return box_.value() / checked_pow(radix_, height);
}

std::string GridBoxAddress::to_string() const {
  std::string out;
  for (const std::uint32_t d : digits_) {
    if (d < 10) {
      out += static_cast<char>('0' + d);
    } else {
      out += '[' + std::to_string(d) + ']';
    }
  }
  return out;
}

std::string GridBoxAddress::to_string_masked(std::size_t height) const {
  std::string out;
  const std::size_t shown =
      height >= digits_.size() ? 0 : digits_.size() - height;
  for (std::size_t i = 0; i < digits_.size(); ++i) {
    if (i < shown) {
      const std::uint32_t d = digits_[i];
      if (d < 10) {
        out += static_cast<char>('0' + d);
      } else {
        out += '[' + std::to_string(d) + ']';
      }
    } else {
      out += '*';
    }
  }
  return out;
}

}  // namespace gridbox::hierarchy
