// Grid box addresses: fixed-width base-K digit strings (§6.1).
//
// "Each grid box is assigned a unique (log_K N − 1)-digit address in base K."
// A height-i subtree is the set of boxes agreeing in the most significant
// (digits − i) digits, so subtree membership is integer-prefix arithmetic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace gridbox::hierarchy {

class GridBoxAddress {
 public:
  /// Address of `box` written with `digit_count` base-`radix` digits.
  /// Requires radix >= 2 and box < radix^digit_count.
  GridBoxAddress(GridBoxId box, std::size_t digit_count, std::uint32_t radix);

  [[nodiscard]] GridBoxId box() const { return box_; }
  [[nodiscard]] std::size_t digit_count() const { return digits_.size(); }
  [[nodiscard]] std::uint32_t radix() const { return radix_; }

  /// Digit at position `i`, 0 = most significant. Requires i < digit_count.
  [[nodiscard]] std::uint32_t digit(std::size_t i) const;

  /// All digits, most significant first.
  [[nodiscard]] const std::vector<std::uint32_t>& digits() const {
    return digits_;
  }

  /// True iff this and `other` agree in the most significant
  /// (digit_count − height) digits — i.e. they lie in the same height-
  /// `height` subtree. height > digit_count behaves like the full tree.
  [[nodiscard]] bool same_subtree(const GridBoxAddress& other,
                                  std::size_t height) const;

  /// Integer identifying this box's height-`height` subtree (the address
  /// prefix as a number). Two boxes share a subtree iff prefixes are equal.
  [[nodiscard]] std::uint64_t subtree_prefix(std::size_t height) const;

  /// "01", "132", ... Most significant digit first. Digits >= 10 are printed
  /// as '[d]' blocks so multi-digit radices stay unambiguous.
  [[nodiscard]] std::string to_string() const;

  /// Wildcard form used in the paper's figures: height-1 subtree of "01" in
  /// a 2-digit hierarchy prints as "0*".
  [[nodiscard]] std::string to_string_masked(std::size_t height) const;

  friend bool operator==(const GridBoxAddress&, const GridBoxAddress&) = default;

 private:
  GridBoxId box_;
  std::uint32_t radix_;
  std::vector<std::uint32_t> digits_;
};

/// radix^exponent with overflow checking (throws PreconditionError).
[[nodiscard]] std::uint64_t checked_pow(std::uint64_t radix,
                                        std::size_t exponent);

}  // namespace gridbox::hierarchy
