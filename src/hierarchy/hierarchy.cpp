#include "src/hierarchy/hierarchy.h"

#include <algorithm>
#include <limits>

#include "src/common/ensure.h"

namespace gridbox::hierarchy {

namespace {

// ceil(log_k n) computed with exact integer arithmetic (floating-point log
// misplaces exact powers). Returns 1 for n <= k.
[[nodiscard]] std::size_t ceil_log(std::uint64_t n, std::uint64_t k) {
  std::size_t phases = 1;
  std::uint64_t reach = k;  // k^phases
  while (reach < n) {
    ++phases;
    expects(reach <= std::numeric_limits<std::uint64_t>::max() / k,
            "group size estimate too large for fanout");
    reach *= k;
  }
  return phases;
}

}  // namespace

GridBoxHierarchy::GridBoxHierarchy(std::size_t group_size_estimate,
                                   std::uint32_t members_per_box,
                                   const hashing::HashFunction& hash)
    : n_(group_size_estimate), k_(members_per_box), hash_(&hash) {
  expects(group_size_estimate >= 1, "group size estimate must be positive");
  expects(members_per_box >= 2, "K must be at least 2");
  phases_ = ceil_log(n_, k_);
  num_boxes_ = checked_pow(k_, phases_ - 1);
}

double GridBoxHierarchy::hash_value(MemberId id) const {
  return hash_->unit_value(id);
}

GridBoxId GridBoxHierarchy::box_of(MemberId id) const {
  const double u = hash_->unit_value(id);
  ensures(u >= 0.0 && u < 1.0, "hash value outside [0,1)");
  const auto box =
      static_cast<std::uint64_t>(u * static_cast<double>(num_boxes_));
  return GridBoxId{static_cast<GridBoxId::underlying>(
      std::min<std::uint64_t>(box, num_boxes_ - 1))};
}

GridBoxAddress GridBoxHierarchy::address_of(GridBoxId box) const {
  return GridBoxAddress{box, digit_count(), k_};
}

std::uint64_t GridBoxHierarchy::phase_group(MemberId id,
                                            std::size_t phase) const {
  expects(phase >= 1 && phase <= phases_, "phase out of range");
  return box_of(id).value() / checked_pow(k_, phase - 1);
}

bool GridBoxHierarchy::same_phase_group(MemberId a, MemberId b,
                                        std::size_t phase) const {
  return phase_group(a, phase) == phase_group(b, phase);
}

std::uint32_t GridBoxHierarchy::child_slot(MemberId id,
                                           std::size_t phase) const {
  expects(phase >= 2 && phase <= phases_, "child_slot needs phase >= 2");
  return static_cast<std::uint32_t>(
      (box_of(id).value() / checked_pow(k_, phase - 2)) % k_);
}

std::vector<MemberId> GridBoxHierarchy::phase_peers(
    const std::vector<MemberId>& candidates, MemberId self,
    std::size_t phase) const {
  const std::uint64_t own = phase_group(self, phase);
  std::vector<MemberId> peers;
  for (const MemberId m : candidates) {
    if (m != self && phase_group(m, phase) == own) peers.push_back(m);
  }
  return peers;
}

}  // namespace gridbox::hierarchy
