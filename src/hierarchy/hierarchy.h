// The Grid Box Hierarchy (§6.1): N members hashed into N/K grid boxes whose
// base-K addresses induce a K-ary subtree structure used phase-by-phase.
//
// Sizing. With group-size estimate N and fanout K, the hierarchy has
//   num_phases  = max(1, ceil(log_K N))        (tree height)
//   digit_count = num_phases − 1               (digits per box address)
//   num_boxes   = K^digit_count                (≈ N/K boxes, avg K members)
// A member with hash value u ∈ [0,1) lives in box floor(u · num_boxes) — the
// paper's "H(Mj) · N/K written in base K". Every member can compute every
// other member's box locally, which is what makes the phases
// coordination-free.
//
// Phase terminology (paper §6.3). In phase i (1-based), a member works within
// its *phase-i group*: the set of members whose addresses agree in the most
// significant digit_count − (i−1) digits. Phase 1's group is the member's own
// grid box; phase num_phases' group is the whole tree. For i ≥ 2 the group
// splits into K *child slots* — the K possible values of the first masked
// digit — and the phase's job is to collect one child aggregate per slot.
//
// N only needs to be an *estimate* (§6.1): the hierarchy depends on N only
// through ceil(log_K N), so membership drift that keeps N within a factor K
// of the estimate changes nothing at all.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/types.h"
#include "src/hashing/hash_function.h"
#include "src/hierarchy/address.h"

namespace gridbox::hierarchy {

class GridBoxHierarchy {
 public:
  /// `group_size_estimate` is the (approximate) N known at all members;
  /// `members_per_box` is the constant K >= 2; `hash` is the group-wide
  /// well-known H and must outlive this object.
  GridBoxHierarchy(std::size_t group_size_estimate,
                   std::uint32_t members_per_box,
                   const hashing::HashFunction& hash);

  [[nodiscard]] std::uint32_t fanout() const { return k_; }
  [[nodiscard]] std::size_t group_size_estimate() const { return n_; }
  [[nodiscard]] std::size_t num_phases() const { return phases_; }
  [[nodiscard]] std::size_t digit_count() const { return phases_ - 1; }
  [[nodiscard]] std::uint64_t num_boxes() const { return num_boxes_; }

  /// The grid box of a member.
  [[nodiscard]] GridBoxId box_of(MemberId id) const;

  /// Raw H(id) in [0,1). Exposed because protocols reuse the well-known H
  /// for other deterministic group-wide choices (e.g. committee election).
  [[nodiscard]] double hash_value(MemberId id) const;

  [[nodiscard]] GridBoxAddress address_of(GridBoxId box) const;
  [[nodiscard]] GridBoxAddress address_of(MemberId id) const {
    return address_of(box_of(id));
  }

  /// Integer naming the phase-`phase` group of `id` (its address prefix with
  /// phase−1 digits masked). Requires 1 <= phase <= num_phases.
  [[nodiscard]] std::uint64_t phase_group(MemberId id, std::size_t phase) const;

  /// True iff both members are in the same phase-`phase` group.
  [[nodiscard]] bool same_phase_group(MemberId a, MemberId b,
                                      std::size_t phase) const;

  /// Which of the K child slots of its phase-`phase` group `id`'s own
  /// phase-(phase−1) group occupies. Requires 2 <= phase <= num_phases.
  [[nodiscard]] std::uint32_t child_slot(MemberId id, std::size_t phase) const;

  /// Members of `candidates` in the same phase-`phase` group as `self`
  /// (`self` is excluded). Order follows `candidates`.
  [[nodiscard]] std::vector<MemberId> phase_peers(
      const std::vector<MemberId>& candidates, MemberId self,
      std::size_t phase) const;

 private:
  std::size_t n_;
  std::uint32_t k_;
  std::size_t phases_;
  std::uint64_t num_boxes_;
  const hashing::HashFunction* hash_;
};

}  // namespace gridbox::hierarchy
