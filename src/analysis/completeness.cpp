#include "src/analysis/completeness.h"

#include <cmath>

#include "src/common/ensure.h"

namespace gridbox::analysis {

namespace {

// log of Binomial(n, i) pmf at success probability p, via lgamma.
[[nodiscard]] double log_binom_pmf(std::size_t n, std::size_t i, double p) {
  const double dn = static_cast<double>(n);
  const double di = static_cast<double>(i);
  const double log_choose = std::lgamma(dn + 1.0) - std::lgamma(di + 1.0) -
                            std::lgamma(dn - di + 1.0);
  // Guard the log terms at the boundary i == 0 / i == n.
  double log_p_term = 0.0;
  if (i > 0) log_p_term += di * std::log(p);
  if (i < n) log_p_term += (dn - di) * std::log1p(-p);
  return log_choose + log_p_term;
}

// ceil(log_k n), >= 1 (number of protocol phases).
[[nodiscard]] std::size_t phase_count(std::size_t n, std::uint32_t k) {
  std::size_t phases = 1;
  std::uint64_t reach = k;
  while (reach < n) {
    ++phases;
    reach *= k;
  }
  return phases;
}

}  // namespace

double phase_completeness_bound(std::size_t n, double b) {
  expects(n >= 2, "need N >= 2");
  const double dn = static_cast<double>(n);
  // 1 / (1 + N e^{-b ln N}) = 1 / (1 + N^{1-b}).
  return 1.0 / (1.0 + std::pow(dn, 1.0 - b));
}

double phase_completeness_simple(std::size_t n, double b) {
  expects(n >= 2, "need N >= 2");
  return 1.0 - std::pow(static_cast<double>(n), -(b - 1.0));
}

double first_phase_incompleteness(std::size_t n, std::uint32_t k, double b) {
  expects(n >= 2 && k >= 2, "need N >= 2 and K >= 2");
  expects(b > 0.0, "need b > 0");
  const double dn = static_cast<double>(n);
  const double p = static_cast<double>(k) / dn;
  expects(p <= 1.0, "K must not exceed N");
  const double c = static_cast<double>(k) * b * std::log(dn);

  // 1 − C1 = Σ_i pmf(i) · [1 − 1/(1 + i·e^{−c/i})]
  //        = Σ_i pmf(i) · i·e^{−c/i} / (1 + i·e^{−c/i});  the i = 0 term
  // vanishes. Sum in linear space with log-space pmf terms: every term is
  // positive and <= pmf(i), so the sum is stable.
  double incompleteness = 0.0;
  for (std::size_t i = 1; i <= n; ++i) {
    const double di = static_cast<double>(i);
    const double log_pmf = log_binom_pmf(n, i, p);
    if (log_pmf < -745.0) continue;  // below exp() underflow; term is 0
    const double spread = di * std::exp(-c / di);
    const double miss = spread / (1.0 + spread);
    incompleteness += std::exp(log_pmf) * miss;
  }
  return incompleteness;
}

double first_phase_completeness(std::size_t n, std::uint32_t k, double b) {
  return 1.0 - first_phase_incompleteness(n, k, b);
}

double protocol_completeness_bound(std::size_t n, std::uint32_t k, double b) {
  const std::size_t phases = phase_count(n, k);
  double completeness = first_phase_completeness(n, k, b);
  const double per_phase = phase_completeness_bound(n, b);
  for (std::size_t i = 2; i <= phases; ++i) completeness *= per_phase;
  return completeness;
}

double theorem1_bound(std::size_t n) {
  expects(n >= 2, "need N >= 2");
  return 1.0 - 1.0 / static_cast<double>(n);
}

}  // namespace gridbox::analysis
