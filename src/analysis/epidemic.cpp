#include "src/analysis/epidemic.h"

#include <cmath>

#include "src/common/ensure.h"

namespace gridbox::analysis {

double logistic_infected(double m, double b, double t) {
  expects(m >= 1.0, "population must be at least 1");
  expects(b >= 0.0 && t >= 0.0, "rate and time must be non-negative");
  return m / (1.0 + m * std::exp(-b * t));
}

double infection_probability(double m, double b, double t) {
  return logistic_infected(m, b, t) / m;
}

double rounds_to_reach(double m, double b, double target) {
  expects(target > 0.0 && target < 1.0, "target probability in (0,1)");
  expects(b > 0.0, "rate must be positive");
  // p = 1 / (1 + m e^{-bt})  =>  t = ln(m·p/(1−p)) / b.
  const double odds = target / (1.0 - target);
  return std::log(m * odds) / b;
}

double effective_b(std::uint32_t fanout_m, double ucast_loss,
                   double rounds_per_phase, std::uint32_t k, std::size_t n) {
  expects(fanout_m >= 1 && k >= 2 && n >= 2, "degenerate parameters");
  expects(ucast_loss >= 0.0 && ucast_loss < 1.0, "loss in [0,1)");
  // The analysis gives each phase K·ln N rounds of b successful contacts;
  // the simulation gives rounds_per_phase rounds of M·(1−ucastl) successful
  // contacts. Equating total successful contacts per phase:
  //   b = M(1−ucastl) · rounds_per_phase / (K·ln N).
  const double contacts = static_cast<double>(fanout_m) * (1.0 - ucast_loss);
  return contacts * rounds_per_phase /
         (static_cast<double>(k) * std::log(static_cast<double>(n)));
}

}  // namespace gridbox::analysis
