// Deterministic epidemic model (Bailey 1975), as used in §6.3.
//
// One initial infective among m members; each infected member contacts b
// random members per round. The logistic solution of
//     dx/dt = (b/m) · x · (m − x),   x(0) = 1
// gives the infected count x(t) = m / (1 + m·e^{−bt}) (the paper's
// approximation of m/(1+(m−1)e^{−bt}) for large m). The probability that a
// uniformly random member is infected after t rounds is x(t)/m.
#pragma once

#include <cstdint>

namespace gridbox::analysis {

/// Infected count x(t) under the logistic epidemic. Requires m >= 1, b >= 0,
/// t >= 0. Uses the paper's form x = m / (1 + m e^{-bt}).
[[nodiscard]] double logistic_infected(double m, double b, double t);

/// Probability a random member is infected after t rounds = x(t)/m.
[[nodiscard]] double infection_probability(double m, double b, double t);

/// Rounds needed for the infection probability to reach `target` (inverse of
/// the logistic); target in (0,1).
[[nodiscard]] double rounds_to_reach(double m, double b, double target);

/// The effective per-round successful-contact rate b for the simulation
/// knobs (fanout M, unicast loss, rounds-per-phase vs the analysis' K·ln N
/// phase length). See DESIGN.md §6 for the derivation; the paper quotes
/// "b evaluates to about 0.75" at N=200, K=4, M=2, C=1, ucastl=0.25.
[[nodiscard]] double effective_b(std::uint32_t fanout_m, double ucast_loss,
                                 double rounds_per_phase, std::uint32_t k,
                                 std::size_t n);

}  // namespace gridbox::analysis
