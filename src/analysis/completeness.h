// Completeness bounds of the Hierarchical Gossiping protocol (§6.3).
//
// All formulas follow the paper's epidemic analysis, with phase length
// K·ln N rounds and per-member contact rate b. Because a member gossips one
// randomly chosen value per contact, a phase tracking v concurrent values
// spreads each at effective rate b/v.
#pragma once

#include <cstdint>

namespace gridbox::analysis {

/// Lower bound on the probability that one specific child aggregate reaches
/// a given member during a phase i >= 2 (K values in flight, subtree size
/// <= N):   C_i(N,K,b) >= 1 / (1 + N·e^{−b·ln N}) = 1 / (1 + N^{1−b}).
[[nodiscard]] double phase_completeness_bound(std::size_t n, double b);

/// The paper's simplified form of the same bound: 1 − 1/N^{b−1}.
[[nodiscard]] double phase_completeness_simple(std::size_t n, double b);

/// Expected first-phase completeness C_1(N,K,b): a random member's box has
/// size i ~ Binomial(N, K/N); a box of size i spreads i values over K·ln N
/// rounds, each at rate b/i, so a given vote reaches a given box member with
/// probability 1/(1 + i·e^{−K·b·ln(N)/i}). Exact binomial sum, evaluated in
/// log space (stable for N up to ~10^6).
[[nodiscard]] double first_phase_completeness(std::size_t n, std::uint32_t k,
                                              double b);

/// 1 − C_1: the quantity plotted (log-log) in Figures 4 and 5.
[[nodiscard]] double first_phase_incompleteness(std::size_t n, std::uint32_t k,
                                                double b);

/// Expected end-to-end completeness bound: C_1 · Π_{i=2}^{log_K N} C_i.
[[nodiscard]] double protocol_completeness_bound(std::size_t n,
                                                 std::uint32_t k, double b);

/// Theorem 1: for K >= 2, b >= 4 and large N, completeness >= 1 − 1/N.
[[nodiscard]] double theorem1_bound(std::size_t n);

}  // namespace gridbox::analysis
