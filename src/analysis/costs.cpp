#include "src/analysis/costs.h"

#include <algorithm>
#include <cmath>

#include "src/common/ensure.h"

namespace gridbox::analysis {

GossipCosts gossip_costs(std::size_t n, std::uint32_t k, std::uint32_t m,
                         double c) {
  expects(n >= 2 && k >= 2 && m >= 1 && c > 0.0, "degenerate parameters");
  GossipCosts costs;
  std::uint64_t reach = k;
  costs.phases = 1;
  while (reach < n) {
    ++costs.phases;
    reach *= k;
  }
  const double base = m >= 2 ? static_cast<double>(m) : 2.0;
  costs.rounds_per_phase = static_cast<std::uint64_t>(std::max(
      1.0, std::ceil(c * std::log(static_cast<double>(std::max<std::size_t>(
                             n, 2))) /
                     std::log(base))));
  costs.total_rounds = costs.rounds_per_phase * costs.phases;
  costs.max_messages = static_cast<std::uint64_t>(n) * costs.total_rounds * m;
  return costs;
}

FullyDistributedCosts fully_distributed_costs(std::size_t n,
                                              std::uint32_t m) {
  expects(n >= 2 && m >= 1, "degenerate parameters");
  FullyDistributedCosts costs;
  costs.messages = static_cast<std::uint64_t>(n) * (n - 1);
  costs.send_rounds = (n - 1 + m - 1) / m;
  return costs;
}

CentralizedCosts centralized_costs(std::size_t n, std::uint32_t fanout) {
  expects(n >= 2 && fanout >= 1, "degenerate parameters");
  CentralizedCosts costs;
  costs.messages = 2 * (static_cast<std::uint64_t>(n) - 1);
  costs.dissemination_rounds = (n - 1 + fanout - 1) / fanout;
  return costs;
}

}  // namespace gridbox::analysis
