// Closed-form cost predictions for the protocols (§4, §5, §6.3): message
// and time complexity, checked against simulation by the model-validation
// tests. These are the formulas behind the paper's complexity table talk —
// exact worst cases, not asymptotics, so a simulated run can be compared
// against them (sync runs meet them with equality; early bumping can only
// reduce them).
#pragma once

#include <cstdint>

namespace gridbox::analysis {

struct GossipCosts {
  std::size_t phases = 0;            ///< ceil(log_K N)
  std::uint64_t rounds_per_phase = 0;
  std::uint64_t total_rounds = 0;    ///< per member: phases * rounds_per_phase
  std::uint64_t max_messages = 0;    ///< group-wide: N * total_rounds * M
};

/// Hierarchical Gossiping (§6.3): O(log^2 N) rounds, O(N log^2 N) messages.
/// `rounds_per_phase` follows the simulation's ⌈C·log_M N⌉ rule.
[[nodiscard]] GossipCosts gossip_costs(std::size_t n, std::uint32_t k,
                                       std::uint32_t m, double c);

/// Fully distributed (§4): exactly N(N−1) messages; ⌈(N−1)/M⌉ send rounds.
struct FullyDistributedCosts {
  std::uint64_t messages = 0;
  std::uint64_t send_rounds = 0;
};
[[nodiscard]] FullyDistributedCosts fully_distributed_costs(std::size_t n,
                                                            std::uint32_t m);

/// Centralized (§5): 2(N−1) messages; collection + dissemination both limited
/// by the leader's bandwidth, so time is O(N).
struct CentralizedCosts {
  std::uint64_t messages = 0;
  std::uint64_t dissemination_rounds = 0;
};
[[nodiscard]] CentralizedCosts centralized_costs(std::size_t n,
                                                 std::uint32_t fanout);

}  // namespace gridbox::analysis
