#include "src/membership/group.h"

#include <cmath>

namespace gridbox::membership {

Group::Group(std::size_t size)
    : size_(size),
      num_words_((size + 63) / 64),
      alive_words_(new std::atomic<std::uint64_t>[(size + 63) / 64]),
      alive_count_(size) {
  expects(size > 0, "group must have at least one member");
  for (std::size_t w = 0; w < num_words_; ++w) {
    alive_words_[w].store(~std::uint64_t{0}, std::memory_order_relaxed);
  }
  // Clear the tail bits past size so a full-word view never counts ghosts.
  const std::size_t tail = size_ & 63u;
  if (tail != 0) {
    alive_words_[num_words_ - 1].store((std::uint64_t{1} << tail) - 1,
                                       std::memory_order_relaxed);
  }
  std::vector<MemberId> ids;
  ids.reserve(size);
  for (std::size_t i = 0; i < size; ++i) {
    ids.push_back(MemberId{static_cast<MemberId::underlying>(i)});
  }
  members_ = std::make_shared<const std::vector<MemberId>>(std::move(ids));
}

Group::Group(Group&& other) noexcept
    : size_(other.size_),
      num_words_(other.num_words_),
      members_(std::move(other.members_)),
      on_crash_(std::move(other.on_crash_)),
      alive_words_(std::move(other.alive_words_)),
      alive_count_(other.alive_count_.load(std::memory_order_relaxed)),
      positions_(std::move(other.positions_)) {
  other.size_ = 0;
  other.num_words_ = 0;
}

void Group::crash(MemberId id) {
  expects(id.value() < size_, "member id out of range");
  const std::size_t word_index = id.value() >> 6;
  const std::uint64_t bit = std::uint64_t{1} << (id.value() & 63u);
  {
    std::lock_guard<std::mutex> lock(transition_mutex_);
    const std::uint64_t cur =
        alive_words_[word_index].load(std::memory_order_relaxed);
    if ((cur & bit) == 0) return;  // already dead: no re-notify
    alive_words_[word_index].store(cur & ~bit, std::memory_order_release);
    alive_count_.fetch_sub(1, std::memory_order_release);
  }
  // Outside the transition lock: listeners may do real work (fan a crash
  // into every running service instance) or consult liveness themselves.
  if (on_crash_) on_crash_(id);
}

void Group::recover(MemberId id) {
  expects(id.value() < size_, "member id out of range");
  const std::size_t word_index = id.value() >> 6;
  const std::uint64_t bit = std::uint64_t{1} << (id.value() & 63u);
  std::lock_guard<std::mutex> lock(transition_mutex_);
  const std::uint64_t cur =
      alive_words_[word_index].load(std::memory_order_relaxed);
  if ((cur & bit) != 0) return;  // already alive
  alive_words_[word_index].store(cur | bit, std::memory_order_release);
  alive_count_.fetch_add(1, std::memory_order_release);
}

std::size_t Group::apply_round_crashes(const CrashModel& model,
                                       std::uint64_t round, Rng& rng) {
  std::size_t crashed = 0;
  for (const MemberId m : members()) {
    if (is_alive(m) && model.crashes(m, round, rng)) {
      crash(m);
      ++crashed;
    }
  }
  return crashed;
}

void Group::scatter_positions(Rng& rng) {
  positions_.resize(size_);
  for (auto& p : positions_) p = Position{rng.uniform(), rng.uniform()};
}

void Group::grid_positions(Rng& rng, double jitter) {
  expects(jitter >= 0.0, "jitter must be non-negative");
  const std::size_t n = size_;
  const auto side =
      static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(n))));
  positions_.resize(n);
  const double cell = 1.0 / static_cast<double>(side);
  for (std::size_t i = 0; i < n; ++i) {
    const double cx = (static_cast<double>(i % side) + 0.5) * cell;
    const double cy = (static_cast<double>(i / side) + 0.5) * cell;
    positions_[i] = Position{cx + (rng.uniform() - 0.5) * jitter * cell,
                             cy + (rng.uniform() - 0.5) * jitter * cell};
  }
}

Position Group::position(MemberId id) const {
  expects(has_positions(), "group has no positions assigned");
  expects(id.value() < positions_.size(), "member id out of range");
  return positions_[id.value()];
}

void Group::set_position(MemberId id, Position p) {
  if (positions_.empty()) positions_.resize(size_);
  expects(id.value() < positions_.size(), "member id out of range");
  positions_[id.value()] = p;
}

}  // namespace gridbox::membership
