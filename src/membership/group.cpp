#include "src/membership/group.h"

#include <cmath>

namespace gridbox::membership {

Group::Group(std::size_t size)
    : size_(size), alive_(size), alive_count_(size) {
  expects(size > 0, "group must have at least one member");
  alive_.set_all();
  std::vector<MemberId> ids;
  ids.reserve(size);
  for (std::size_t i = 0; i < size; ++i) {
    ids.push_back(MemberId{static_cast<MemberId::underlying>(i)});
  }
  members_ = std::make_shared<const std::vector<MemberId>>(std::move(ids));
}

void Group::crash(MemberId id) {
  expects(id.value() < size_, "member id out of range");
  if (alive_.test(id.value())) {
    alive_.reset(id.value());
    --alive_count_;
    if (on_crash_) on_crash_(id);
  }
}

void Group::recover(MemberId id) {
  expects(id.value() < size_, "member id out of range");
  if (!alive_.test(id.value())) {
    alive_.set(id.value());
    ++alive_count_;
  }
}

std::size_t Group::apply_round_crashes(const CrashModel& model,
                                       std::uint64_t round, Rng& rng) {
  std::size_t crashed = 0;
  for (const MemberId m : members()) {
    if (is_alive(m) && model.crashes(m, round, rng)) {
      crash(m);
      ++crashed;
    }
  }
  return crashed;
}

void Group::scatter_positions(Rng& rng) {
  positions_.resize(size_);
  for (auto& p : positions_) p = Position{rng.uniform(), rng.uniform()};
}

void Group::grid_positions(Rng& rng, double jitter) {
  expects(jitter >= 0.0, "jitter must be non-negative");
  const std::size_t n = size_;
  const auto side =
      static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(n))));
  positions_.resize(n);
  const double cell = 1.0 / static_cast<double>(side);
  for (std::size_t i = 0; i < n; ++i) {
    const double cx = (static_cast<double>(i % side) + 0.5) * cell;
    const double cy = (static_cast<double>(i / side) + 0.5) * cell;
    positions_[i] = Position{cx + (rng.uniform() - 0.5) * jitter * cell,
                             cy + (rng.uniform() - 0.5) * jitter * cell};
  }
}

Position Group::position(MemberId id) const {
  expects(has_positions(), "group has no positions assigned");
  expects(id.value() < positions_.size(), "member id out of range");
  return positions_[id.value()];
}

void Group::set_position(MemberId id, Position p) {
  if (positions_.empty()) positions_.resize(size_);
  expects(id.value() < positions_.size(), "member id out of range");
  positions_[id.value()] = p;
}

}  // namespace gridbox::membership
