// The process group: identities, liveness, and (optionally) positions.
//
// The Group is the experiment's ground truth. Protocol nodes never read it
// directly — they act on their View and on received messages — but the
// network consults its liveness oracle and the measurement layer compares
// protocol outputs against the group's true votes.
//
// Threading: liveness is read-mostly with atomic crash publication. The
// sharded UDP runtime probes `is_alive` from every reactor thread on the
// delivery hot path, while crashes/recoveries originate on one control or
// shard thread; `is_alive`/`alive_count` are therefore lock-free atomic
// reads, and the (rare) alive<->crashed transitions serialize on a small
// internal mutex so the count stays consistent and the crash listener
// fires exactly once per member. Everything else (positions, member
// vector) is immutable after setup.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "src/common/ensure.h"
#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/membership/crash_model.h"
#include "src/membership/view.h"

namespace gridbox::membership {

class Group {
 public:
  /// Creates a group of `size` members with ids 0..size-1, all alive.
  explicit Group(std::size_t size);

  /// Movable so per-instance groups can be built and handed to an
  /// Instance record. Moving is only legal before any concurrent access
  /// (true today: instances move their group at construction time).
  Group(Group&& other) noexcept;
  Group& operator=(Group&&) = delete;
  Group(const Group&) = delete;
  Group& operator=(const Group&) = delete;

  [[nodiscard]] std::size_t size() const { return size_; }

  /// Members alive right now.
  [[nodiscard]] std::size_t alive_count() const {
    return alive_count_.load(std::memory_order_acquire);
  }

  [[nodiscard]] bool is_alive(MemberId id) const {
    expects(id.value() < size_, "member id out of range");
    const std::uint64_t word =
        alive_words_[id.value() >> 6].load(std::memory_order_acquire);
    return ((word >> (id.value() & 63u)) & 1u) != 0u;
  }

  /// Marks a member crashed. Idempotent; safe to call concurrently with
  /// `is_alive` readers on other threads.
  void crash(MemberId id);

  /// Observer for alive -> crashed transitions, however they are triggered
  /// (per-round crash model or chaos schedule). Fires once per member (the
  /// transition itself is serialized internally); a repeated crash() on a
  /// dead member does not re-notify. Set before the run goes concurrent.
  void set_crash_listener(std::function<void(MemberId)> listener) {
    on_crash_ = std::move(listener);
  }

  /// Marks a member recovered. Idempotent.
  void recover(MemberId id);

  /// Applies one round of the crash model to every currently-alive member.
  /// Returns the number of members that crashed this round.
  std::size_t apply_round_crashes(const CrashModel& model, std::uint64_t round,
                                  Rng& rng);

  /// All member ids (alive or not), ascending.
  [[nodiscard]] const std::vector<MemberId>& members() const {
    return *members_;
  }

  /// The member vector as a shareable handle (the full view and the state
  /// arena alias it instead of copying).
  [[nodiscard]] const std::shared_ptr<const std::vector<MemberId>>&
  shared_members() const {
    return members_;
  }

  /// Complete view over the whole group (paper's baseline assumption).
  /// Shares the group's member vector — copying the returned View is O(1).
  [[nodiscard]] View full_view() const { return View{members_}; }

  /// Assigns uniform random positions in the unit square (sensor fields).
  void scatter_positions(Rng& rng);

  /// Assigns positions on a jittered sqrt(N) x sqrt(N) grid (e.g. sensors
  /// glued to an airplane wing at roughly regular spacing).
  void grid_positions(Rng& rng, double jitter = 0.1);

  [[nodiscard]] bool has_positions() const { return !positions_.empty(); }
  [[nodiscard]] Position position(MemberId id) const;
  void set_position(MemberId id, Position p);

 private:
  std::size_t size_ = 0;
  std::size_t num_words_ = 0;
  std::shared_ptr<const std::vector<MemberId>> members_;
  std::function<void(MemberId)> on_crash_;
  /// Bit i of word i/64 == member i alive. Atomic words so shard threads
  /// read liveness lock-free while crashes publish with release stores.
  std::unique_ptr<std::atomic<std::uint64_t>[]> alive_words_;
  std::atomic<std::size_t> alive_count_{0};
  /// Serializes alive<->crashed transitions only (never taken on reads).
  mutable std::mutex transition_mutex_;
  std::vector<Position> positions_;
};

}  // namespace gridbox::membership
