#include "src/membership/view.h"

namespace gridbox::membership {

const std::vector<MemberId> View::kEmpty;

View::View(std::vector<MemberId> members) {
  std::sort(members.begin(), members.end());
  members.erase(std::unique(members.begin(), members.end()), members.end());
  members_ = std::make_shared<const std::vector<MemberId>>(std::move(members));
}

std::vector<MemberId>& View::mutate() {
  if (!members_ || members_.use_count() > 1) {
    members_ = std::make_shared<const std::vector<MemberId>>(
        members_ ? *members_ : std::vector<MemberId>{});
  }
  // Sole owner now; the const in the shared_ptr element type is a sharing
  // contract, not deep immutability.
  return const_cast<std::vector<MemberId>&>(*members_);
}

bool View::contains(MemberId id) const {
  const auto& m = members();
  return std::binary_search(m.begin(), m.end(), id);
}

void View::add(MemberId id) {
  auto& m = mutate();
  const auto it = std::lower_bound(m.begin(), m.end(), id);
  if (it == m.end() || *it != id) m.insert(it, id);
}

void View::remove(MemberId id) {
  auto& m = mutate();
  const auto it = std::lower_bound(m.begin(), m.end(), id);
  if (it != m.end() && *it == id) m.erase(it);
}

View complete_view(std::size_t group_size) {
  std::vector<MemberId> all;
  all.reserve(group_size);
  for (std::size_t i = 0; i < group_size; ++i) {
    all.push_back(MemberId{static_cast<MemberId::underlying>(i)});
  }
  return View{std::move(all)};
}

}  // namespace gridbox::membership
