#include "src/membership/view.h"

namespace gridbox::membership {

View::View(std::vector<MemberId> members) : members_(std::move(members)) {
  std::sort(members_.begin(), members_.end());
  members_.erase(std::unique(members_.begin(), members_.end()),
                 members_.end());
}

bool View::contains(MemberId id) const {
  return std::binary_search(members_.begin(), members_.end(), id);
}

void View::add(MemberId id) {
  const auto it = std::lower_bound(members_.begin(), members_.end(), id);
  if (it == members_.end() || *it != id) members_.insert(it, id);
}

void View::remove(MemberId id) {
  const auto it = std::lower_bound(members_.begin(), members_.end(), id);
  if (it != members_.end() && *it == id) members_.erase(it);
}

View complete_view(std::size_t group_size) {
  std::vector<MemberId> all;
  all.reserve(group_size);
  for (std::size_t i = 0; i < group_size; ++i) {
    all.push_back(MemberId{static_cast<MemberId::underlying>(i)});
  }
  return View{std::move(all)};
}

}  // namespace gridbox::membership
