// A member's view: the list of other group members it knows about.
//
// The paper assumes complete views for analysis ("we assume henceforth that
// all members know about each other, although this can be relaxed in our
// final hierarchical gossiping solution", §2). View supports both complete
// and partial knowledge: protocols only ever ask a View, never the global
// Group, so partial-view operation is a drop-in.
//
// Views are copy-on-write: copying a View shares the underlying member
// vector, and add/remove clone it first. N nodes holding the full view by
// value therefore cost one vector, not N — the difference between O(N) and
// O(N^2) memory at 10^5+ members.
#pragma once

#include <algorithm>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/common/types.h"

namespace gridbox::membership {

class View {
 public:
  View() = default;
  explicit View(std::vector<MemberId> members);

  /// Wraps an already sorted, duplicate-free shared member vector without
  /// copying (Group::full_view and the state arena share one vector this
  /// way).
  explicit View(std::shared_ptr<const std::vector<MemberId>> members)
      : members_(std::move(members)) {}

  /// All known members, sorted by id, no duplicates.
  [[nodiscard]] const std::vector<MemberId>& members() const {
    return members_ ? *members_ : kEmpty;
  }

  [[nodiscard]] std::size_t size() const { return members().size(); }
  [[nodiscard]] bool empty() const { return members().empty(); }
  [[nodiscard]] bool contains(MemberId id) const;

  /// Adds a member (idempotent). Clones the shared vector if needed.
  void add(MemberId id);

  /// Removes a member (idempotent). Clones the shared vector if needed.
  void remove(MemberId id);

  /// Uniformly random known member satisfying `pred`, excluding `self`.
  /// Returns MemberId::invalid() if none qualifies. O(size) scan — callers
  /// with hot paths should pre-filter (see subtree caches in the protocols).
  template <typename Pred>
  [[nodiscard]] MemberId sample_where(Rng& rng, MemberId self,
                                      Pred pred) const {
    // Reservoir sampling over qualifying members: single pass, exact
    // uniformity, no allocation.
    MemberId chosen = MemberId::invalid();
    std::size_t seen = 0;
    for (const MemberId m : members()) {
      if (m == self || !pred(m)) continue;
      ++seen;
      if (rng.index(seen) == 0) chosen = m;
    }
    return chosen;
  }

 private:
  /// Makes members_ uniquely owned and mutable (clones if shared or null).
  std::vector<MemberId>& mutate();

  static const std::vector<MemberId> kEmpty;
  std::shared_ptr<const std::vector<MemberId>> members_;
};

/// A complete view over ids 0..n-1 (the common experimental setup).
[[nodiscard]] View complete_view(std::size_t group_size);

}  // namespace gridbox::membership
