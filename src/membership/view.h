// A member's view: the list of other group members it knows about.
//
// The paper assumes complete views for analysis ("we assume henceforth that
// all members know about each other, although this can be relaxed in our
// final hierarchical gossiping solution", §2). View supports both complete
// and partial knowledge: protocols only ever ask a View, never the global
// Group, so partial-view operation is a drop-in.
#pragma once

#include <algorithm>
#include <vector>

#include "src/common/rng.h"
#include "src/common/types.h"

namespace gridbox::membership {

class View {
 public:
  View() = default;
  explicit View(std::vector<MemberId> members);

  /// All known members, sorted by id, no duplicates.
  [[nodiscard]] const std::vector<MemberId>& members() const {
    return members_;
  }

  [[nodiscard]] std::size_t size() const { return members_.size(); }
  [[nodiscard]] bool empty() const { return members_.empty(); }
  [[nodiscard]] bool contains(MemberId id) const;

  /// Adds a member (idempotent).
  void add(MemberId id);

  /// Removes a member (idempotent).
  void remove(MemberId id);

  /// Uniformly random known member satisfying `pred`, excluding `self`.
  /// Returns MemberId::invalid() if none qualifies. O(size) scan — callers
  /// with hot paths should pre-filter (see subtree caches in the protocols).
  template <typename Pred>
  [[nodiscard]] MemberId sample_where(Rng& rng, MemberId self,
                                      Pred pred) const {
    // Reservoir sampling over qualifying members: single pass, exact
    // uniformity, no allocation.
    MemberId chosen = MemberId::invalid();
    std::size_t seen = 0;
    for (const MemberId m : members_) {
      if (m == self || !pred(m)) continue;
      ++seen;
      if (rng.index(seen) == 0) chosen = m;
    }
    return chosen;
  }

 private:
  std::vector<MemberId> members_;
};

/// A complete view over ids 0..n-1 (the common experimental setup).
[[nodiscard]] View complete_view(std::size_t group_size);

}  // namespace gridbox::membership
