#include "src/membership/crash_model.h"

#include "src/common/ensure.h"

namespace gridbox::membership {

PerRoundCrash::PerRoundCrash(double probability) : probability_(probability) {
  expects(probability >= 0.0 && probability <= 1.0,
          "crash probability must be in [0,1]");
}

bool PerRoundCrash::crashes(MemberId, std::uint64_t, Rng& rng) const {
  return rng.bernoulli(probability_);
}

void ScheduledCrash::add(MemberId member, std::uint64_t round) {
  schedule_[member] = round;
}

bool ScheduledCrash::crashes(MemberId member, std::uint64_t round,
                             Rng&) const {
  const auto it = schedule_.find(member);
  return it != schedule_.end() && it->second == round;
}

}  // namespace gridbox::membership
