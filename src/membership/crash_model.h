// Member crash models.
//
// Paper §7: "Members were prone to crashes (without recovery) in every gossip
// round with probability pf." The model is consulted once per member per
// round by the experiment driver; alternative models support deterministic
// failure injection and crash-recovery testing.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/rng.h"
#include "src/common/types.h"

namespace gridbox::membership {

class CrashModel {
 public:
  virtual ~CrashModel() = default;

  /// Whether `member` crashes during gossip round `round` (0-based).
  [[nodiscard]] virtual bool crashes(MemberId member, std::uint64_t round,
                                     Rng& rng) const = 0;
};

class NoCrash final : public CrashModel {
 public:
  [[nodiscard]] bool crashes(MemberId, std::uint64_t, Rng&) const override {
    return false;
  }
};

/// Independent crash with fixed per-round probability — the paper's `pf`.
class PerRoundCrash final : public CrashModel {
 public:
  explicit PerRoundCrash(double probability);
  [[nodiscard]] bool crashes(MemberId, std::uint64_t, Rng& rng) const override;
  [[nodiscard]] double probability() const { return probability_; }

 private:
  double probability_;
};

/// Deterministic schedule: member m crashes at exactly round r. Used by
/// failure-injection tests (e.g. kill the would-be leader of a subtree and
/// check which votes are lost).
class ScheduledCrash final : public CrashModel {
 public:
  void add(MemberId member, std::uint64_t round);
  [[nodiscard]] bool crashes(MemberId member, std::uint64_t round,
                             Rng&) const override;

 private:
  std::unordered_map<MemberId, std::uint64_t> schedule_;
};

}  // namespace gridbox::membership
