// N = 10^5 struct-of-arrays smoke: one lossless audited hier-gossip run
// three orders of magnitude past the paper's N = 200 default, proving the
// flat-state arena actually carries the scale it was built for. Everything
// stays armed: the audit registry (no double counting), the always-on
// invariant checker (any violation throws out of the run), the metrics
// gauges, and the lineage tracker — whose independently replayed
// completeness must equal the protocol's own gauge bit for bit.
#include <gtest/gtest.h>

#include "src/obs/lineage.h"
#include "src/runner/experiment.h"

namespace gridbox {
namespace {

TEST(ScaleSmoke, HierGossip100kAuditAndLineageClean) {
  runner::ExperimentConfig config;
  config.group_size = 100'000;
  config.ucast_loss = 0.0;
  config.crash_probability = 0.0;
  config.audit = true;
  config.collect_metrics = true;
  config.seed = 20010701;

  obs::LineageTracker::Options lopt;
  lopt.group_size = config.group_size;
  obs::LineageTracker lineage(lopt);
  config.lineage = &lineage;

  const runner::RunResult r = runner::run_experiment(config);

  // Audit-clean: not a single double-counted vote in ~10^5 concluding
  // merges, and every finished estimate reconstructs from its audited set.
  EXPECT_EQ(r.measurement.audit_violations, 0u);
  EXPECT_EQ(r.measurement.reconstruction_failures, 0u);

  // Lossless, crash-free: everyone survives, everyone finishes, and the
  // estimates are near-exact (the small residual is asynchronous phase
  // bumping, same as at N = 200 — see test_properties.cpp).
  EXPECT_EQ(r.measurement.survivors, config.group_size);
  EXPECT_EQ(r.measurement.finished_nodes, config.group_size);
  EXPECT_GE(r.measurement.mean_completeness, 0.995);

  // Lineage accounting: zero errors, and its replayed completeness equals
  // the run's own measurement — and the metrics gauge — exactly.
  ASSERT_TRUE(lineage.errors().empty())
      << lineage.errors().size()
      << " accounting errors, first: " << lineage.errors().front();
  const auto want_bp = static_cast<std::uint64_t>(
      r.measurement.mean_completeness * 10'000.0 + 0.5);
  EXPECT_EQ(lineage.completeness_bp(), want_bp);
  EXPECT_EQ(r.metrics.gauges.at("completeness_bp"), want_bp);
  EXPECT_EQ(lineage.finished_count(), r.measurement.finished_nodes);
}

}  // namespace
}  // namespace gridbox
