#include "src/runner/experiment.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "src/common/ensure.h"
#include "src/runner/stats.h"
#include "src/runner/sweep.h"
#include "src/runner/table.h"

namespace gridbox::runner {
namespace {

TEST(Stats, SummarizeKnownSamples) {
  const SummaryStats s = summarize({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_EQ(s.n, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_NEAR(s.stddev, 1.5811, 1e-3);
  EXPECT_GT(s.ci95_half_width, 0.0);
}

TEST(Stats, EvenCountMedianAveragesMiddlePair) {
  const SummaryStats s = summarize({1.0, 2.0, 10.0, 20.0});
  EXPECT_DOUBLE_EQ(s.median, 6.0);
}

TEST(Stats, SingleSampleHasZeroSpread) {
  const SummaryStats s = summarize({7.5});
  EXPECT_DOUBLE_EQ(s.mean, 7.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_half_width, 0.0);
}

TEST(Stats, EmptyInputThrows) {
  EXPECT_THROW((void)summarize({}), PreconditionError);
}

TEST(Stats, GeometricMeanBasics) {
  EXPECT_NEAR(geometric_mean({1.0, 100.0}), 10.0, 1e-9);
  EXPECT_NEAR(geometric_mean({5.0, 5.0, 5.0}), 5.0, 1e-9);
  // Zeros are clamped to the floor, not fatal.
  EXPECT_GT(geometric_mean({0.0, 1.0}), 0.0);
}

TEST(Table, AlignedTextOutput) {
  Table t({"x", "value"});
  t.add_row({"1", "10.5"});
  t.add_row({"200", "3"});
  const std::string text = t.to_text();
  EXPECT_NE(text.find("x"), std::string::npos);
  EXPECT_NE(text.find("200"), std::string::npos);
  EXPECT_NE(text.find("-----"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), PreconditionError);
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t({"name", "note"});
  t.add_row({"plain", "a,b"});
  t.add_row({"quoted", "say \"hi\""});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, NumFormatsCompactly) {
  EXPECT_EQ(Table::num(0.0), "0.0000");
  EXPECT_EQ(Table::num(123.0), "123.0");
  EXPECT_EQ(Table::num(1.5, 2), "1.50");
  EXPECT_NE(Table::num(1e-9).find("e"), std::string::npos);
}

TEST(Table, WriteCsvRoundTrips) {
  Table t({"a"});
  t.add_row({"1"});
  const std::string path = ::testing::TempDir() + "gridbox_table_test.csv";
  ASSERT_TRUE(t.write_csv(path));
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a");
  std::getline(in, line);
  EXPECT_EQ(line, "1");
  std::remove(path.c_str());
}

ExperimentConfig lossless_config(std::size_t n) {
  ExperimentConfig config;
  config.group_size = n;
  config.ucast_loss = 0.0;
  config.crash_probability = 0.0;
  // Generous budget: lossless runs then reach exact completeness (checked
  // below on fixed seeds).
  config.gossip.round_multiplier_c = 4.0;
  config.audit = true;
  return config;
}

TEST(Experiment, LosslessGossipIsPerfectlyComplete) {
  const RunResult r = run_experiment(lossless_config(64));
  EXPECT_EQ(r.measurement.group_size, 64u);
  EXPECT_EQ(r.measurement.survivors, 64u);
  EXPECT_EQ(r.measurement.finished_nodes, 64u);
  EXPECT_DOUBLE_EQ(r.measurement.mean_completeness, 1.0);
  EXPECT_DOUBLE_EQ(r.measurement.mean_incompleteness, 0.0);
  EXPECT_NEAR(r.measurement.mean_abs_error, 0.0, 1e-12);
  EXPECT_EQ(r.measurement.audit_violations, 0u);
  EXPECT_GT(r.effective_b, 0.0);
}

TEST(Experiment, SameSeedSameResult) {
  ExperimentConfig config;
  config.group_size = 100;
  config.seed = 1234;
  const RunResult a = run_experiment(config);
  const RunResult b = run_experiment(config);
  EXPECT_EQ(a.measurement.mean_completeness, b.measurement.mean_completeness);
  EXPECT_EQ(a.measurement.network_messages, b.measurement.network_messages);
  EXPECT_EQ(a.network.messages_dropped, b.network.messages_dropped);
}

TEST(Experiment, DifferentSeedsDiffer) {
  ExperimentConfig config;
  config.group_size = 100;
  config.seed = 1;
  const RunResult a = run_experiment(config);
  config.seed = 2;
  const RunResult b = run_experiment(config);
  EXPECT_NE(a.measurement.network_messages, b.measurement.network_messages);
}

TEST(Experiment, LossyRunStillAuditClean) {
  ExperimentConfig config;
  config.group_size = 150;
  config.ucast_loss = 0.4;
  config.crash_probability = 0.003;
  config.audit = true;
  const RunResult r = run_experiment(config);
  EXPECT_EQ(r.measurement.audit_violations, 0u);
  EXPECT_LE(r.measurement.mean_completeness, 1.0);
  EXPECT_GT(r.measurement.mean_completeness, 0.3);
  EXPECT_LE(r.measurement.survivors, 150u);
}

TEST(Experiment, PartitionLossDegradesCompleteness) {
  ExperimentConfig base = lossless_config(100);
  base.ucast_loss = 0.1;
  const double clean =
      run_experiment(base).measurement.mean_completeness;
  base.partition_loss = 0.9;
  const double partitioned =
      run_experiment(base).measurement.mean_completeness;
  EXPECT_LT(partitioned, clean);
  EXPECT_GT(partitioned, 0.2);  // each half still aggregates itself
}

TEST(Experiment, EveryProtocolRunsLossless) {
  for (const ProtocolKind kind :
       {ProtocolKind::kHierGossip, ProtocolKind::kFullyDistributed,
        ProtocolKind::kCentralized, ProtocolKind::kLeaderElection,
        ProtocolKind::kCommittee}) {
    ExperimentConfig config = lossless_config(48);
    config.protocol = kind;
    config.committee.committee_size = 2;
    const RunResult r = run_experiment(config);
    EXPECT_GE(r.measurement.mean_completeness, 0.999) << to_string(kind);
    EXPECT_EQ(r.measurement.audit_violations, 0u) << to_string(kind);
  }
}

TEST(Experiment, TopoAwareHashRunsAndReducesLinkDistance) {
  ExperimentConfig config = lossless_config(200);
  config.assign_positions = true;
  const RunResult fair = run_experiment(config);
  config.hash = HashKind::kTopoAware;
  const RunResult topo = run_experiment(config);
  EXPECT_GE(topo.measurement.mean_completeness, 0.999);
  // Early phases stay within spatially tight grid boxes.
  EXPECT_LT(topo.mean_link_distance, fair.mean_link_distance);
}

TEST(Experiment, FieldWorkloadRequiresPositionsAndWorks) {
  ExperimentConfig config = lossless_config(80);
  config.workload = WorkloadKind::kField;
  config.assign_positions = true;
  const RunResult r = run_experiment(config);
  EXPECT_GE(r.measurement.mean_completeness, 0.999);
}

TEST(Experiment, RejectsTinyGroups) {
  ExperimentConfig config;
  config.group_size = 1;
  EXPECT_THROW((void)run_experiment(config), PreconditionError);
}

TEST(Sweep, ProducesOnePointPerX) {
  ExperimentConfig base = lossless_config(40);
  const SweepResult result = run_sweep(
      base, "loss", {0.0, 0.2},
      [](ExperimentConfig& c, double x) { c.ucast_loss = x; }, 3);
  ASSERT_EQ(result.points.size(), 2u);
  EXPECT_EQ(result.x_label, "loss");
  EXPECT_EQ(result.points[0].incompleteness.n, 3u);
  EXPECT_DOUBLE_EQ(result.points[0].x, 0.0);
  EXPECT_LE(result.points[0].incompleteness.mean, 0.01);
  EXPECT_GE(result.points[1].incompleteness.mean,
            result.points[0].incompleteness.mean);
  EXPECT_EQ(result.points[0].audit_violations, 0u);
}

TEST(Sweep, SeedsDifferAcrossPointsAndRuns) {
  // If seeds were reused, messages at identical configs would be identical;
  // two runs at the same x must differ.
  ExperimentConfig base = lossless_config(40);
  base.ucast_loss = 0.3;
  const SweepResult result = run_sweep(
      base, "dummy", {1.0}, [](ExperimentConfig&, double) {}, 4);
  EXPECT_GT(result.points[0].incompleteness.stddev + 1e-12, 0.0);
  EXPECT_GT(result.points[0].messages.stddev, 0.0);
}

TEST(Sweep, SeedsAreClosedFormPerPointAndRun) {
  // Point p, run r must use seed base.seed + p*runs_per_point + r — i.e. a
  // point's seeds depend only on its index, not on how the sweep is
  // executed. A sweep over {x, x} must therefore give different summaries
  // per point (different seed blocks), while re-running a single-point
  // sweep whose base.seed is offset by runs_per_point reproduces point 1 of
  // the two-point sweep exactly.
  ExperimentConfig base = lossless_config(40);
  base.ucast_loss = 0.3;
  base.jobs = 1;
  const std::size_t runs = 3;
  const SweepResult both = run_sweep(
      base, "dup", {1.0, 1.0}, [](ExperimentConfig&, double) {}, runs);
  EXPECT_NE(both.points[0].messages.mean, both.points[1].messages.mean);

  ExperimentConfig offset = base;
  offset.seed = base.seed + runs;  // point 1's seed block
  const SweepResult second = run_sweep(
      offset, "dup", {1.0}, [](ExperimentConfig&, double) {}, runs);
  EXPECT_EQ(second.points[0].messages.mean, both.points[1].messages.mean);
  EXPECT_EQ(second.points[0].incompleteness.mean,
            both.points[1].incompleteness.mean);
}

void expect_same_stats(const SummaryStats& a, const SummaryStats& b) {
  EXPECT_EQ(a.n, b.n);
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.stddev, b.stddev);
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(a.median, b.median);
  EXPECT_EQ(a.ci95_half_width, b.ci95_half_width);
}

TEST(Sweep, ParallelSweepIsBitwiseIdenticalToSerial) {
  ExperimentConfig base = lossless_config(40);
  base.ucast_loss = 0.3;
  base.crash_probability = 0.002;
  base.audit = true;

  base.jobs = 1;
  const SweepResult serial = run_sweep(
      base, "loss", {0.1, 0.3},
      [](ExperimentConfig& c, double x) { c.ucast_loss = x; }, 4);
  base.jobs = 4;
  const SweepResult parallel = run_sweep(
      base, "loss", {0.1, 0.3},
      [](ExperimentConfig& c, double x) { c.ucast_loss = x; }, 4);

  EXPECT_EQ(parallel.jobs_used, 4u);
  EXPECT_EQ(serial.jobs_used, 1u);
  ASSERT_EQ(parallel.points.size(), serial.points.size());
  for (std::size_t i = 0; i < serial.points.size(); ++i) {
    const SweepPoint& s = serial.points[i];
    const SweepPoint& p = parallel.points[i];
    EXPECT_EQ(p.x, s.x);
    expect_same_stats(p.incompleteness, s.incompleteness);
    EXPECT_EQ(p.incompleteness_geomean, s.incompleteness_geomean);
    expect_same_stats(p.completeness, s.completeness);
    expect_same_stats(p.messages, s.messages);
    expect_same_stats(p.rounds, s.rounds);
    expect_same_stats(p.abs_error, s.abs_error);
    EXPECT_EQ(p.mean_effective_b, s.mean_effective_b);
    EXPECT_EQ(p.audit_violations, s.audit_violations);
  }
}

TEST(Sweep, ParallelSweepPropagatesRunExceptions) {
  ExperimentConfig base = lossless_config(40);
  base.jobs = 4;
  EXPECT_THROW(
      (void)run_sweep(
          base, "n", {40, 1},  // group_size 1 is rejected by run_experiment
          [](ExperimentConfig& c, double x) {
            c.group_size = static_cast<std::size_t>(x);
          },
          2),
      PreconditionError);
}

TEST(Sweep, ReportsWallClockAndJobs) {
  ExperimentConfig base = lossless_config(40);
  base.jobs = 2;
  const SweepResult sweep = run_sweep(
      base, "x", {1.0}, [](ExperimentConfig&, double) {}, 2);
  EXPECT_EQ(sweep.jobs_used, 2u);
  EXPECT_GT(sweep.wall_seconds, 0.0);
}

TEST(Sweep, RejectsEmptyInput) {
  ExperimentConfig base;
  EXPECT_THROW((void)run_sweep(base, "x", {},
                               [](ExperimentConfig&, double) {}, 1),
               PreconditionError);
  EXPECT_THROW((void)run_sweep(base, "x", {1.0},
                               [](ExperimentConfig&, double) {}, 0),
               PreconditionError);
}

}  // namespace
}  // namespace gridbox::runner
