// Regression test: ProfileCollector keys its hot-path map by section-name
// *pointer* (cheap), but the same scope name used from two translation
// units generally lands at two different addresses. snapshot() must re-key
// by content and merge such entries into one section — the bug this guards
// against split them into duplicate rows whose order depended on load
// addresses, breaking profile determinism across builds.
#include <gtest/gtest.h>

#include <cstdint>

#include "src/obs/profile.h"

namespace gridbox::obs::two_tu_test {

// Implemented in test_profile_two_tu_helper.cpp.
const char* helper_section_name();
void helper_record(std::uint64_t ns);

namespace {

const char kSection[] = "twotu.section";

TEST(ProfileTwoTu, SameSectionNameFromTwoTusMergesIntoOneRow) {
  // The premise: two distinct name addresses with equal content. If a
  // future toolchain pools these arrays the test would pass vacuously, so
  // assert the premise explicitly.
  ASSERT_NE(static_cast<const void*>(kSection),
            static_cast<const void*>(helper_section_name()));
  ASSERT_STREQ(kSection, helper_section_name());

  ProfileCollector collector;
  ProfileInstallGuard guard(&collector);
  ProfileCollector::current()->record(kSection, 5);
  helper_record(7);
  ProfileCollector::current()->record(kSection, 1);

  const ProfileSnapshot snap = collector.snapshot();
  ASSERT_EQ(snap.sections.size(), 1u);
  const ProfileEntry& entry = snap.sections.at("twotu.section");
  EXPECT_EQ(entry.count, 3u);
  EXPECT_EQ(entry.total_ns, 13u);
}

}  // namespace
}  // namespace gridbox::obs::two_tu_test
