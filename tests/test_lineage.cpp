// Causal vote lineage, empirical epidemic curves, and the flight recorder.
//
// The headline guarantee: the lineage tracker reconstructs every member's
// dissemination tree from knowledge-gain events alone, and the completeness
// it derives equals the protocol's own measurement *exactly* (basis-point
// equality, same rounding), on all protocols, under chaos. Lineage is a
// third independent accounting next to metrics and NetworkStats — any
// divergence is a protocol or instrumentation bug, surfaced via errors().
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "src/obs/curves.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/json.h"
#include "src/obs/lineage.h"
#include "src/obs/profile.h"
#include "src/protocols/gossip/trace.h"
#include "src/runner/config.h"
#include "src/runner/experiment.h"

namespace gridbox {
namespace {

using obs::CurveRecorder;
using obs::FlightRecorder;
using obs::JsonValue;
using obs::LineageTracker;
using runner::ExperimentConfig;
using runner::ProtocolKind;
using runner::RunResult;

// Same adversity as test_metrics' reconciliation worlds: static loss plus a
// chaos script with extra loss, duplication, jitter, and a scripted crash.
ExperimentConfig chaos_world(ProtocolKind protocol) {
  ExperimentConfig config;
  config.protocol = protocol;
  config.group_size = 40;
  config.ucast_loss = 0.1;
  config.crash_probability = 0.0;
  config.audit = true;
  config.chaos_spec =
      "loss 0.2\n"
      "dup p=0.15 extra=1 spread=400us\n"
      "jitter p=0.2 0us..1ms\n"
      "crash M5 at=30ms\n";
  config.seed = 1234;
  return config;
}

void expect_lineage_explains_run(ExperimentConfig config) {
  LineageTracker::Options lopt;
  lopt.group_size = config.group_size;
  LineageTracker lineage(lopt);
  config.lineage = &lineage;
  const RunResult result = runner::run_experiment(config);

  ASSERT_TRUE(lineage.errors().empty())
      << lineage.errors().size() << " accounting errors, first: "
      << lineage.errors().front();
  ASSERT_FALSE(lineage.nodes().empty());

  // Bit-exact: the lineage-derived mean completeness reproduces
  // measure_run's arithmetic, so the basis-point gauges must be equal.
  const auto want_bp = static_cast<std::uint64_t>(
      result.measurement.mean_completeness * 10'000.0 + 0.5);
  EXPECT_EQ(lineage.completeness_bp(), want_bp);
  EXPECT_EQ(lineage.finished_count(), result.measurement.finished_nodes);
}

TEST(Lineage, ExplainsHierGossipUnderChaos) {
  expect_lineage_explains_run(chaos_world(ProtocolKind::kHierGossip));
}

TEST(Lineage, ExplainsFullyDistributedUnderChaos) {
  expect_lineage_explains_run(chaos_world(ProtocolKind::kFullyDistributed));
}

TEST(Lineage, ExplainsCentralizedUnderChaos) {
  expect_lineage_explains_run(chaos_world(ProtocolKind::kCentralized));
}

TEST(Lineage, ExplainsLeaderElectionUnderChaos) {
  expect_lineage_explains_run(chaos_world(ProtocolKind::kLeaderElection));
}

TEST(Lineage, ExplainsCommitteeUnderChaos) {
  ExperimentConfig config = chaos_world(ProtocolKind::kCommittee);
  config.committee.committee_size = 3;
  expect_lineage_explains_run(config);
}

TEST(Lineage, ExplainsLossyCrashyHierWorld) {
  ExperimentConfig config;
  config.group_size = 64;
  config.ucast_loss = 0.25;
  config.crash_probability = 0.002;
  config.audit = true;
  config.seed = 99;
  expect_lineage_explains_run(config);
}

TEST(Lineage, JsonDocumentCarriesForestAndAddresses) {
  ExperimentConfig config = chaos_world(ProtocolKind::kHierGossip);
  LineageTracker::Options lopt;
  lopt.group_size = config.group_size;
  LineageTracker lineage(lopt);
  config.lineage = &lineage;
  (void)runner::run_experiment(config);

  const JsonValue root = obs::json_parse(lineage.to_json());
  EXPECT_EQ(root.string_or("schema", ""), "gridbox-lineage/1");
  EXPECT_EQ(root.number_or("group_size", 0), 40.0);
  EXPECT_GT(root.number_or("num_phases", 0), 0.0);
  const JsonValue* members = root.find("members");
  ASSERT_NE(members, nullptr);
  ASSERT_EQ(members->array.size(), 40u);
  const JsonValue* addr = members->array[0].find("addr");
  ASSERT_NE(addr, nullptr);
  EXPECT_TRUE(addr->is_array());
  const JsonValue* nodes = root.find("nodes");
  ASSERT_NE(nodes, nullptr);
  EXPECT_FALSE(nodes->array.empty());
  const JsonValue* errors = root.find("errors");
  ASSERT_NE(errors, nullptr);
  EXPECT_TRUE(errors->array.empty());
}

// ---------------------------------------------------------------------------
// Epidemic curves.

ExperimentConfig curves_config() {
  ExperimentConfig config;
  config.group_size = 32;
  config.gossip.k = 4;
  config.ucast_loss = 0.2;
  config.crash_probability = 0.0;
  config.seed = 7;
  return config;
}

std::string record_curves_json(const ExperimentConfig& base) {
  ExperimentConfig config = base;
  CurveRecorder::Options copt;
  copt.round_us = static_cast<std::uint64_t>(config.round_duration().ticks());
  CurveRecorder curves(copt);
  config.curves = &curves;
  (void)runner::run_experiment(config);
  return curves.to_json();
}

void check_against_golden(const std::string& name, const std::string& got) {
  const std::string path =
      std::string(GRIDBOX_TEST_DATA_DIR) + "/golden/" + name;
  if (std::getenv("GRIDBOX_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << got;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing fixture " << path
                         << " (regenerate with GRIDBOX_REGEN_GOLDEN=1)";
  std::ostringstream want;
  want << in.rdbuf();
  EXPECT_EQ(got, want.str())
      << name
      << ": curves drifted from the golden fixture. If the change is "
         "intentional, regenerate with GRIDBOX_REGEN_GOLDEN=1.";
}

// The canonical hier-gossip world's curve document is byte-stable: integer
// basis points end to end, no floating-point text.
TEST(Curves, GoldenDocumentReplaysByteIdentical) {
  const std::string got = record_curves_json(curves_config());
  ASSERT_FALSE(got.empty());
  check_against_golden("curves_n32_k4_seed7.json", got);
}

TEST(Curves, InProcessReplayIsDeterministic) {
  EXPECT_EQ(record_curves_json(curves_config()),
            record_curves_json(curves_config()));
}

TEST(Curves, CarriesEmpiricalSeriesAndAnalyticModel) {
  const JsonValue root = obs::json_parse(record_curves_json(curves_config()));
  EXPECT_EQ(root.string_or("schema", ""), "gridbox-curves/1");
  EXPECT_EQ(root.number_or("group_size", 0), 32.0);
  EXPECT_GT(root.number_or("total_gains", 0), 0.0);

  const JsonValue* phases = root.find("phases");
  ASSERT_NE(phases, nullptr);
  ASSERT_GE(phases->array.size(), 2u);
  for (const JsonValue& phase : phases->array) {
    EXPECT_GT(phase.number_or("denominator", 0), 0.0);
    const JsonValue* samples = phase.find("samples");
    ASSERT_NE(samples, nullptr);
    // Fractions are cumulative, integral, and saturate at 100%.
    double last = -1.0;
    for (const JsonValue& s : samples->array) {
      const double bp = s.number_or("frac_bp", -1);
      EXPECT_GE(bp, last);
      EXPECT_LE(bp, 10'000.0);
      last = bp;
    }
    // Hier-gossip: every phase also carries the Bailey model overlay.
    const JsonValue* model = phase.find("model");
    ASSERT_NE(model, nullptr);
    EXPECT_FALSE(model->array.empty());
  }
  const JsonValue* analytic = root.find("analytic");
  ASSERT_NE(analytic, nullptr);
  EXPECT_GT(analytic->number_or("b_milli", 0), 0.0);
  EXPECT_GT(analytic->number_or("protocol_bound_bp", 0), 0.0);
}

TEST(Curves, BaselineDocumentsHaveNoAnalyticOverlay) {
  ExperimentConfig config = curves_config();
  config.protocol = ProtocolKind::kFullyDistributed;
  const JsonValue root = obs::json_parse(record_curves_json(config));
  const JsonValue* phases = root.find("phases");
  ASSERT_NE(phases, nullptr);
  ASSERT_EQ(phases->array.size(), 1u);
  EXPECT_EQ(phases->array[0].find("model"), nullptr);
  EXPECT_EQ(root.find("analytic"), nullptr);
}

// ---------------------------------------------------------------------------
// Flight recorder.

FlightRecorder::Event crash_event(std::uint64_t t, std::uint32_t member) {
  FlightRecorder::Event e;
  e.at = SimTime::micros(static_cast<SimTime::underlying>(t));
  e.kind = FlightRecorder::EventKind::kCrash;
  e.a = member;
  return e;
}

TEST(FlightRecorderTest, RingKeepsTheTailOldestFirst) {
  FlightRecorder::Options fopt;
  fopt.capacity = 4;
  fopt.config_text = "proto=hier-gossip n=8";
  fopt.chaos_spec = "loss 0.5";
  fopt.seed = 42;
  FlightRecorder flight(fopt);
  for (std::uint64_t i = 0; i < 10; ++i) {
    flight.record(crash_event(i, static_cast<std::uint32_t>(i)));
  }
  EXPECT_EQ(flight.total_recorded(), 10u);
  EXPECT_EQ(flight.kept(), 4u);

  const std::string dump = flight.dump();
  EXPECT_NE(dump.find("gridbox-flight/1"), std::string::npos);
  EXPECT_NE(dump.find("seed 42"), std::string::npos);
  EXPECT_NE(dump.find("events_recorded 10"), std::string::npos);
  EXPECT_NE(dump.find("events_kept 4"), std::string::npos);
  EXPECT_NE(dump.find("proto=hier-gossip n=8"), std::string::npos);
  EXPECT_NE(dump.find("loss 0.5"), std::string::npos);
  // Events 0..5 were evicted; 6..9 remain, oldest first.
  EXPECT_EQ(dump.find("crash m=5"), std::string::npos);
  const std::size_t tail = dump.find("--- tail ---");
  ASSERT_NE(tail, std::string::npos);
  EXPECT_LT(dump.find("t=6us crash m=6"), dump.find("t=7us crash m=7"));
  EXPECT_LT(dump.find("t=8us crash m=8"), dump.find("t=9us crash m=9"));
}

TEST(FlightRecorderTest, CapturesARunsEventStream) {
  ExperimentConfig config = curves_config();
  FlightRecorder::Options fopt;
  fopt.config_text = runner::config_canonical_text(config);
  fopt.chaos_spec = config.chaos_spec;
  fopt.seed = config.seed;
  FlightRecorder flight(fopt);
  config.flight = &flight;
  (void)runner::run_experiment(config);
  EXPECT_GT(flight.total_recorded(), 0u);
  const std::string dump = flight.dump();
  EXPECT_NE(dump.find("gain"), std::string::npos);
  EXPECT_NE(dump.find("conclude"), std::string::npos);
  EXPECT_NE(dump.find("finish"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Profiling satellites: new scopes exist, and an unprofiled run never
// installs a collector at all (the hot path stays free).

class CollectorProbe final : public protocols::gossip::GossipTrace {
 public:
  bool saw_collector = false;

  void on_phase_entered(MemberId member, std::size_t phase) override {
    (void)member;
    (void)phase;
    if (obs::ProfileCollector::current() != nullptr) saw_collector = true;
  }
};

TEST(Profile, NoCollectorInstalledWhenProfilingOff) {
  if (obs::profile_requested_by_env()) {
    GTEST_SKIP() << "GRIDBOX_PROFILE is set";
  }
  ExperimentConfig config = curves_config();
  CollectorProbe probe;
  config.gossip.trace = &probe;
  const RunResult result = runner::run_experiment(config);
  EXPECT_TRUE(result.profile.empty());
  EXPECT_FALSE(probe.saw_collector);
}

TEST(Profile, CodecAndQueueScopesReportWhenOn) {
  ExperimentConfig config = curves_config();
  config.profile = true;
  const RunResult result = runner::run_experiment(config);
  ASSERT_FALSE(result.profile.empty());
  for (const char* section :
       {"sim.run", "queue.pop", "codec.encode", "codec.decode"}) {
    const auto it = result.profile.sections.find(section);
    ASSERT_NE(it, result.profile.sections.end()) << section;
    EXPECT_GT(it->second.count, 0u) << section;
  }
}

}  // namespace
}  // namespace gridbox
