#include "src/agg/audit.h"

#include <gtest/gtest.h>

#include "src/common/ensure.h"

namespace gridbox::agg {
namespace {

TEST(AuditRegistry, VoteTokensAreSingletons) {
  AuditRegistry reg(10);
  const auto t = reg.register_vote(MemberId{3});
  EXPECT_NE(t, kNoAuditToken);
  EXPECT_EQ(reg.votes_behind(t), 1u);
  EXPECT_TRUE(reg.set_of(t).test(3));
  EXPECT_FALSE(reg.set_of(t).test(2));
}

TEST(AuditRegistry, NoTokenMeansNoVotes) {
  AuditRegistry reg(10);
  EXPECT_EQ(reg.votes_behind(kNoAuditToken), 0u);
}

TEST(AuditRegistry, MergeOfDisjointSetsIsClean) {
  AuditRegistry reg(10);
  const auto a = reg.register_vote(MemberId{1});
  const auto b = reg.register_vote(MemberId{2});
  const auto c = reg.register_vote(MemberId{3});
  const auto ab = reg.register_merge({a, b});
  EXPECT_EQ(reg.votes_behind(ab), 2u);
  const auto abc = reg.register_merge({ab, c});
  EXPECT_EQ(reg.votes_behind(abc), 3u);
  EXPECT_EQ(reg.violation_count(), 0u);
}

TEST(AuditRegistry, MergeDetectsDoubleCounting) {
  AuditRegistry reg(10);
  const auto a = reg.register_vote(MemberId{1});
  const auto b = reg.register_vote(MemberId{2});
  const auto ab = reg.register_merge({a, b});
  // Merging {1,2} with {1} counts member 1 twice.
  (void)reg.register_merge({ab, a});
  EXPECT_EQ(reg.violation_count(), 1u);
}

TEST(AuditRegistry, MergeIgnoresNoTokenEntries) {
  AuditRegistry reg(10);
  const auto a = reg.register_vote(MemberId{5});
  const auto m = reg.register_merge({kNoAuditToken, a, kNoAuditToken});
  EXPECT_EQ(reg.votes_behind(m), 1u);
  EXPECT_EQ(reg.violation_count(), 0u);
}

TEST(AuditRegistry, EmptyMergeYieldsEmptySet) {
  AuditRegistry reg(10);
  const auto m = reg.register_merge({});
  EXPECT_EQ(reg.votes_behind(m), 0u);
}

TEST(AuditRegistry, UnknownTokenThrows) {
  AuditRegistry reg(10);
  EXPECT_THROW((void)reg.set_of(999), PreconditionError);
  EXPECT_THROW((void)reg.set_of(kNoAuditToken), PreconditionError);
}

TEST(AuditRegistry, MemberOutsideUniverseThrows) {
  AuditRegistry reg(10);
  EXPECT_THROW((void)reg.register_vote(MemberId{10}), PreconditionError);
}

TEST(AuditRegistry, DeepMergeChainTracksExactMembership) {
  // Simulates the hierarchy: 16 votes merged pairwise up a binary tree.
  AuditRegistry reg(16);
  std::vector<std::uint64_t> level;
  for (std::uint32_t i = 0; i < 16; ++i) {
    level.push_back(reg.register_vote(MemberId{i}));
  }
  while (level.size() > 1) {
    std::vector<std::uint64_t> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(reg.register_merge({level[i], level[i + 1]}));
    }
    level = next;
  }
  EXPECT_EQ(reg.votes_behind(level[0]), 16u);
  EXPECT_EQ(reg.violation_count(), 0u);
}

}  // namespace
}  // namespace gridbox::agg
