#include "src/analysis/completeness.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/analysis/epidemic.h"
#include "src/common/ensure.h"

namespace gridbox::analysis {
namespace {

TEST(Epidemic, LogisticStartsNearOneInfective) {
  // x(0) = m/(1+m): approximately 1 for large m (the paper's approximation).
  EXPECT_NEAR(logistic_infected(1000.0, 2.0, 0.0), 1.0, 0.01);
}

TEST(Epidemic, LogisticSaturatesAtPopulation) {
  EXPECT_NEAR(logistic_infected(1000.0, 2.0, 50.0), 1000.0, 1e-6);
}

TEST(Epidemic, InfectionProbabilityIsMonotoneInTime) {
  double prev = 0.0;
  for (double t = 0.0; t <= 30.0; t += 1.0) {
    const double p = infection_probability(500.0, 1.5, t);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(Epidemic, InfectionProbabilityIsMonotoneInRate) {
  double prev = 0.0;
  for (double b = 0.5; b <= 8.0; b += 0.5) {
    const double p = infection_probability(500.0, b, 10.0);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(Epidemic, RoundsToReachInvertsTheLogistic) {
  const double m = 2000.0;
  const double b = 1.3;
  for (const double target : {0.5, 0.9, 0.99, 0.9999}) {
    const double t = rounds_to_reach(m, b, target);
    EXPECT_NEAR(infection_probability(m, b, t), target, 1e-9);
  }
}

TEST(Epidemic, EffectiveBMatchesPaperQuote) {
  // Paper §7: defaults N=200, K=4, M=2, C=1.0, ucastl=0.25 give b ≈ 0.75.
  const double rounds = std::ceil(1.0 * std::log(200.0) / std::log(2.0));
  const double b = effective_b(2, 0.25, rounds, 4, 200);
  EXPECT_NEAR(b, 0.75, 0.35);

  // Figure 11: C=1.4, ucastl=0, N≈450 gives b ≈ 1.0.
  const double rounds11 = std::ceil(1.4 * std::log(450.0) / std::log(2.0));
  const double b11 = effective_b(2, 0.0, rounds11, 4, 450);
  EXPECT_NEAR(b11, 1.0, 0.35);
}

TEST(Completeness, PhaseBoundApproachesOneForLargeB) {
  EXPECT_GT(phase_completeness_bound(1000, 4.0), 0.999999);
  EXPECT_LT(phase_completeness_bound(1000, 1.0), 0.6);
}

TEST(Completeness, PhaseBoundsAgreeAsymptotically) {
  for (const std::size_t n : {100u, 1000u, 10000u}) {
    const double exact = phase_completeness_bound(n, 4.0);
    const double simple = phase_completeness_simple(n, 4.0);
    EXPECT_NEAR(exact, simple, 1e-6);
  }
}

TEST(Completeness, FirstPhaseIncompletenessIsAProbability) {
  for (const std::size_t n : {100u, 500u, 2000u}) {
    const double q = first_phase_incompleteness(n, 4, 4.0);
    EXPECT_GE(q, 0.0);
    EXPECT_LE(q, 1.0);
  }
}

TEST(Completeness, FirstPhaseMonotoneInB) {
  // Figure 4/5 prerequisite: more gossip per round -> higher completeness.
  double prev = 0.0;
  for (double b = 1.0; b <= 8.0; b += 1.0) {
    const double c = first_phase_completeness(2000, 4, b);
    EXPECT_GT(c, prev);
    prev = c;
  }
}

TEST(Completeness, FirstPhaseMonotoneInK) {
  // Figure 5: incompleteness falls monotonically with K at N=2000, b=4.
  double prev = 1.0;
  for (const std::uint32_t k : {4u, 8u, 16u, 32u}) {
    const double q = first_phase_incompleteness(2000, k, 4.0);
    EXPECT_LT(q, prev);
    prev = q;
  }
}

TEST(Completeness, Figure4ShapeIncompletenessBelowOneOverN) {
  // Figure 4's conclusion (Postulate 1): at K=2, b=4 the first-phase
  // completeness is >= 1 − 1/N across the plotted range.
  for (const std::size_t n : {1000u, 2000u, 4000u, 8000u}) {
    EXPECT_LT(first_phase_incompleteness(n, 2, 4.0),
              1.0 / static_cast<double>(n));
  }
}

TEST(Completeness, Figure4ShapeLogLogSlopeAtLeastLinear) {
  // -log(1-C1) vs log(N) grows at least linearly (the paper reads a straight
  // line off the plot).
  const double q1 = first_phase_incompleteness(1000, 2, 4.0);
  const double q8 = first_phase_incompleteness(8000, 2, 4.0);
  // N grew 8x; incompleteness must fall at least 8x.
  EXPECT_LT(q8, q1 / 8.0);
}

TEST(Completeness, ProtocolBoundSatisfiesTheorem1) {
  // Theorem 1: K >= 2, b >= 4, large N -> completeness >= 1 − 1/N.
  for (const std::size_t n : {500u, 1000u, 4000u}) {
    for (const std::uint32_t k : {2u, 4u, 8u}) {
      EXPECT_GE(protocol_completeness_bound(n, k, 4.0),
                theorem1_bound(n) - 1e-9)
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(Completeness, ProtocolBoundDegradesGracefullyAtLowB) {
  const double high = protocol_completeness_bound(1000, 4, 4.0);
  const double low = protocol_completeness_bound(1000, 4, 1.5);
  EXPECT_GT(high, low);
  EXPECT_GT(low, 0.0);
}

TEST(Completeness, DegenerateInputsThrow) {
  EXPECT_THROW((void)first_phase_incompleteness(1, 4, 4.0),
               PreconditionError);
  EXPECT_THROW((void)first_phase_incompleteness(100, 4, 0.0),
               PreconditionError);
  EXPECT_THROW((void)phase_completeness_bound(1, 4.0), PreconditionError);
  EXPECT_THROW((void)first_phase_incompleteness(2, 4, 1.0),
               PreconditionError);  // K > N
}

}  // namespace
}  // namespace gridbox::analysis
