// Observability plumbing: JSON writer/parser, trace sink, golden JSONL
// trace, run manifest, and the BENCH file format + diff.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "src/common/ensure.h"
#include "src/obs/bench_io.h"
#include "src/obs/json.h"
#include "src/obs/manifest.h"
#include "src/obs/trace_sink.h"
#include "src/runner/cli.h"
#include "src/runner/config.h"
#include "src/runner/experiment.h"

namespace gridbox {
namespace {

using obs::BenchEntry;
using obs::BenchReport;
using obs::JsonValue;
using obs::JsonWriter;
using obs::TraceSink;
using runner::ExperimentConfig;

TEST(Json, WriterProducesCompactDeterministicText) {
  JsonWriter w;
  w.begin_object();
  w.key("name").value("run");
  w.key("n").value(std::uint64_t{42});
  w.key("ok").value(true);
  w.key("xs").begin_array().value(1).value(2).end_array();
  w.end_object();
  EXPECT_EQ(w.take(), R"({"name":"run","n":42,"ok":true,"xs":[1,2]})");
}

TEST(Json, EscapesControlCharactersAndQuotes) {
  JsonWriter w;
  w.begin_object();
  w.key("s").value("a\"b\\c\nd");
  w.end_object();
  EXPECT_EQ(w.take(), "{\"s\":\"a\\\"b\\\\c\\nd\"}");
}

TEST(Json, ParseRoundTripsRepoArtifacts) {
  const std::string text =
      R"({"schema":"x/1","n":3,"pi":3.5,"flag":false,"nothing":null,)"
      R"("list":[1,"two",{"k":"v"}]})";
  const JsonValue root = obs::json_parse(text);
  ASSERT_TRUE(root.is_object());
  EXPECT_EQ(root.string_or("schema", ""), "x/1");
  EXPECT_EQ(root.number_or("n", 0), 3.0);
  EXPECT_EQ(root.number_or("pi", 0), 3.5);
  const JsonValue* list = root.find("list");
  ASSERT_NE(list, nullptr);
  ASSERT_EQ(list->array.size(), 3u);
  EXPECT_EQ(list->array[1].string, "two");
  EXPECT_EQ(list->array[2].string_or("k", ""), "v");
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_THROW((void)obs::json_parse("{\"a\":}"), PreconditionError);
  EXPECT_THROW((void)obs::json_parse("[1,2"), PreconditionError);
  EXPECT_THROW((void)obs::json_parse(""), PreconditionError);
}

TEST(TraceSinkTest, LineFormatsAreIntegerOnlyAndStable) {
  std::ostringstream out;
  TraceSink sink(out);
  sink.message_event("send", SimTime::micros(12), MemberId{3}, MemberId{7},
                     21);
  sink.member_event("conclude", SimTime::micros(40), MemberId{5}, 2, 4,
                    "votes", "timeout");
  sink.member_event("crash", SimTime::micros(50), MemberId{9});
  EXPECT_EQ(out.str(),
            "{\"t\":12,\"ev\":\"send\",\"src\":3,\"dst\":7,\"bytes\":21}\n"
            "{\"t\":40,\"ev\":\"conclude\",\"m\":5,\"phase\":2,\"votes\":4,"
            "\"how\":\"timeout\"}\n"
            "{\"t\":50,\"ev\":\"crash\",\"m\":9}\n");
  EXPECT_EQ(sink.lines_written(), 3u);
}

TEST(TraceSinkTest, EveryLineParsesAsJson) {
  std::ostringstream out;
  TraceSink sink(out);
  sink.message_event("drop", SimTime::micros(1), MemberId{0}, MemberId{1}, 9);
  sink.member_event("round", SimTime::micros(2), MemberId{1}, 1, 2, "fanout");
  std::istringstream lines(out.str());
  std::string line;
  while (std::getline(lines, line)) {
    EXPECT_NO_THROW((void)obs::json_parse(line)) << line;
  }
}

TEST(TracePaths, PerRunSuffixInsertsBeforeExtension) {
  EXPECT_EQ(runner::trace_path_for_run("trace.jsonl", 0, 1), "trace.jsonl");
  EXPECT_EQ(runner::trace_path_for_run("trace.jsonl", 2, 4),
            "trace-run2.jsonl");
  EXPECT_EQ(runner::trace_path_for_run("out/t", 1, 3), "out/t-run1");
  EXPECT_EQ(runner::trace_path_for_run("a.b/trace", 1, 2), "a.b/trace-run1");
  // A leading dot names a hidden file, not an extension.
  EXPECT_EQ(runner::trace_path_for_run(".trace", 1, 2), ".trace-run1");
  EXPECT_EQ(runner::trace_path_for_run("out/.trace", 1, 2), "out/.trace-run1");
  EXPECT_EQ(runner::trace_path_for_run("trace", 0, 2), "trace-run0");
}

// The golden JSONL trace: a canonical world's full event stream (transport
// + phase machine), byte-identical on every replay. Regenerate deliberately
// with GRIDBOX_REGEN_GOLDEN=1.
ExperimentConfig golden_config() {
  ExperimentConfig config;
  config.group_size = 32;
  config.gossip.k = 4;
  config.ucast_loss = 0.2;
  config.crash_probability = 0.0;
  config.seed = 7;
  return config;
}

std::string record_jsonl_trace() {
  std::ostringstream out;
  TraceSink sink(out);
  ExperimentConfig config = golden_config();
  config.trace_sink = &sink;
  (void)runner::run_experiment(config);
  return out.str();
}

void check_against_golden(const std::string& name, const std::string& got) {
  const std::string path =
      std::string(GRIDBOX_TEST_DATA_DIR) + "/golden/" + name;
  if (std::getenv("GRIDBOX_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << got;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing fixture " << path
                         << " (regenerate with GRIDBOX_REGEN_GOLDEN=1)";
  std::ostringstream want;
  want << in.rdbuf();
  if (got != want.str()) {
    const std::string& w = want.str();
    std::size_t i = 0;
    while (i < got.size() && i < w.size() && got[i] == w[i]) ++i;
    std::size_t line = 1;
    for (std::size_t j = 0; j < i; ++j) {
      if (w[j] == '\n') ++line;
    }
    FAIL() << name << ": trace drifted from golden fixture at line " << line
           << " (byte " << i << " of " << w.size()
           << "). If the change is intentional, regenerate with "
              "GRIDBOX_REGEN_GOLDEN=1.";
  }
}

TEST(GoldenJsonlTrace, CanonicalWorldReplaysByteIdentical) {
  const std::string got = record_jsonl_trace();
  ASSERT_FALSE(got.empty());
  check_against_golden("obs_trace_n32_k4_seed7.jsonl", got);
}

TEST(GoldenJsonlTrace, InProcessReplayIsDeterministic) {
  EXPECT_EQ(record_jsonl_trace(), record_jsonl_trace());
}

TEST(Manifest, Fnv1aMatchesKnownVectors) {
  EXPECT_EQ(obs::fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(obs::fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
}

TEST(Manifest, JsonCarriesConfigFingerprintAndRuns) {
  obs::RunManifest manifest;
  manifest.tool = "test";
  manifest.git_rev = "deadbeef";
  manifest.config_text = "proto=hier-gossip n=8";
  manifest.base_seed = 42;
  manifest.jobs = 4;
  obs::RunManifest::RunEntry entry;
  entry.seed = 42;
  entry.mean_completeness = 0.5;
  entry.network_messages = 10;
  manifest.runs.push_back(entry);

  const JsonValue root = obs::json_parse(manifest.to_json());
  EXPECT_EQ(root.string_or("schema", ""), obs::RunManifest::kSchema);
  EXPECT_EQ(root.string_or("config", ""), manifest.config_text);
  // The hash field is the FNV-1a of the config text, as fixed-width hex.
  char want_hash[24];
  std::snprintf(want_hash, sizeof(want_hash), "%016llx",
                static_cast<unsigned long long>(
                    obs::fnv1a64(manifest.config_text)));
  EXPECT_EQ(root.string_or("config_hash", ""), want_hash);
  const JsonValue* runs = root.find("runs");
  ASSERT_NE(runs, nullptr);
  ASSERT_EQ(runs->array.size(), 1u);
  EXPECT_EQ(runs->array[0].number_or("seed", 0), 42.0);
}

TEST(CanonicalConfig, DistinguishesKnobsAndIgnoresInstrumentation) {
  ExperimentConfig a;
  ExperimentConfig b = a;
  EXPECT_EQ(runner::config_canonical_text(a), runner::config_canonical_text(b));

  b.collect_metrics = true;
  b.profile = true;
  b.jobs = 16;
  b.seed = 999;  // seed is per-run identification, not a config knob
  EXPECT_EQ(runner::config_canonical_text(a), runner::config_canonical_text(b));

  b.gossip.fanout_m = 3;
  EXPECT_NE(runner::config_canonical_text(a), runner::config_canonical_text(b));
}

BenchReport sample_report() {
  BenchReport report;
  report.suite = "micro_core";
  report.git_rev = "abc123";
  report.repeats = 3;
  report.jobs = 2;
  BenchEntry e;
  e.name = "hier_n200";
  e.wall_s = 0.5;
  e.events_per_s = 1000.0;
  e.msgs_per_s = 500.0;
  e.sim_events = 500;
  e.network_messages = 250;
  e.peak_rss_mb = 32.0;
  report.entries.push_back(e);
  return report;
}

TEST(BenchIo, ReportRoundTripsThroughJson) {
  const BenchReport report = sample_report();
  const BenchReport parsed = BenchReport::parse(report.to_json());
  EXPECT_EQ(parsed.suite, report.suite);
  EXPECT_EQ(parsed.git_rev, report.git_rev);
  EXPECT_EQ(parsed.repeats, report.repeats);
  ASSERT_EQ(parsed.entries.size(), 1u);
  EXPECT_EQ(parsed.entries[0].name, "hier_n200");
  EXPECT_EQ(parsed.entries[0].wall_s, 0.5);
  EXPECT_EQ(parsed.entries[0].sim_events, 500u);
  // Round trip is byte-exact: parse(to_json()).to_json() == to_json().
  EXPECT_EQ(parsed.to_json(), report.to_json());
}

TEST(BenchIo, ParseRejectsSchemaMismatch) {
  EXPECT_THROW((void)BenchReport::parse(R"({"schema":"other/9"})"),
               PreconditionError);
  EXPECT_THROW((void)BenchReport::parse("not json"),
               PreconditionError);
}

TEST(BenchIo, DiffFlagsOnlyRegressionsPastThreshold) {
  const BenchReport old_report = sample_report();
  BenchReport new_report = sample_report();
  new_report.entries[0].wall_s = 0.55;  // +10%: inside a 20% threshold
  EXPECT_TRUE(obs::bench_diff(old_report, new_report, 0.2).ok());

  new_report.entries[0].wall_s = 0.65;  // +30%: regression
  const obs::BenchDiffReport diff =
      obs::bench_diff(old_report, new_report, 0.2);
  EXPECT_FALSE(diff.ok());
  EXPECT_EQ(diff.regressions, 1u);
  EXPECT_NEAR(diff.worst_ratio, 1.3, 1e-9);
  EXPECT_NE(diff.render().find("REGRESSED"), std::string::npos);
}

TEST(BenchIo, DiffReportsThroughputDeltas) {
  const BenchReport old_report = sample_report();
  BenchReport new_report = sample_report();
  new_report.entries[0].events_per_s = 1250.0;  // +25%
  new_report.entries[0].msgs_per_s = 400.0;     // -20%
  const obs::BenchDiffReport diff =
      obs::bench_diff(old_report, new_report, 0.2);
  ASSERT_EQ(diff.rows.size(), 1u);
  EXPECT_EQ(diff.rows[0].old_events_per_s, 1000.0);
  EXPECT_EQ(diff.rows[0].new_events_per_s, 1250.0);
  EXPECT_NEAR(diff.rows[0].events_ratio, 1.25, 1e-9);
  EXPECT_NEAR(diff.rows[0].msgs_ratio, 0.8, 1e-9);
  // Throughput changes inform but never gate: only wall time regresses.
  EXPECT_TRUE(diff.ok());
  const std::string table = diff.render();
  EXPECT_NE(table.find("+25.0%"), std::string::npos);
  EXPECT_NE(table.find("-20.0%"), std::string::npos);
}

TEST(BenchIo, DiffTracksDisappearedAndNewCases) {
  const BenchReport old_report = sample_report();
  BenchReport new_report = sample_report();
  new_report.entries[0].name = "renamed_case";
  const obs::BenchDiffReport diff =
      obs::bench_diff(old_report, new_report, 0.2);
  EXPECT_TRUE(diff.ok());  // nothing compared, nothing regressed
  ASSERT_EQ(diff.only_in_old.size(), 1u);
  ASSERT_EQ(diff.only_in_new.size(), 1u);
  EXPECT_EQ(diff.only_in_old[0], "hier_n200");
  EXPECT_EQ(diff.only_in_new[0], "renamed_case");
}

TEST(BenchIo, SpeedupsNeverFlagRegression) {
  const BenchReport old_report = sample_report();
  BenchReport new_report = sample_report();
  new_report.entries[0].wall_s = 0.1;  // 5x faster
  EXPECT_TRUE(obs::bench_diff(old_report, new_report, 0.0).ok());
}

TEST(BenchIo, PeakRssIsNonZeroOnSupportedPlatforms) {
#if defined(__unix__) || defined(__APPLE__)
  EXPECT_GT(obs::peak_rss_bytes(), 0u);
#else
  GTEST_SKIP() << "no getrusage on this platform";
#endif
}

}  // namespace
}  // namespace gridbox
