// Wire-level and exchange-mode behaviour of Hierarchical Gossiping:
// malformed payload safety, message-size bounds, and the full-state vs
// single-value trade-off.
#include <gtest/gtest.h>

#include "src/agg/codec.h"
#include "src/protocols/gossip/hier_gossip.h"
#include "tests/testing_world.h"

namespace gridbox::protocols::gossip {
namespace {

using gridbox::testing::World;
using gridbox::testing::WorldOptions;

GossipConfig base_config() {
  GossipConfig config;
  config.k = 4;
  config.fanout_m = 2;
  config.round_multiplier_c = 2.0;
  return config;
}

TEST(GossipWire, MessagesRespectTheConstantBound) {
  // Worst-case payloads stay within net::kMaxPayloadBytes by construction:
  // header (1+1+8+1) + 5 child entries of (1 + 36 + 8) = 236 <= 256, and
  // 5 vote entries of (4 + 8 + 8) = 111 <= 256. Exercise a real run and
  // confirm the transport never rejected anything (it throws on oversize).
  WorldOptions options;
  options.group_size = 200;
  options.k = 4;
  World world(options);
  auto nodes = world.make_nodes<HierGossipNode>(base_config());
  world.start_all(nodes);
  EXPECT_NO_THROW(world.simulator().run());
  EXPECT_GT(world.network().stats().messages_sent, 0u);

  // And the arithmetic, explicitly:
  EXPECT_LE(1 + 1 + 8 + 1 + kMaxEntriesPerMessage * (1 + agg::kPartialWireBytes + 8),
            net::kMaxPayloadBytes);
  EXPECT_LE(1 + 1 + 8 + 1 + kMaxEntriesPerMessage * (4 + 8 + 8),
            net::kMaxPayloadBytes);
}

TEST(GossipWire, MalformedPayloadsAreCountedAndIgnored) {
  WorldOptions options;
  options.group_size = 16;
  options.k = 4;
  World world(options);
  auto nodes = world.make_nodes<HierGossipNode>(base_config());
  world.start_all(nodes);

  // Inject garbage at t=5ms: unknown type, truncated vote batch, truncated
  // child batch, and a child batch whose partial violates min<=max.
  world.simulator().schedule_at(SimTime::millis(5), [&world] {
    const auto send_raw = [&world](const net::Frame& frame) {
      world.network().send(net::Message{MemberId{0}, MemberId{1}, frame});
    };
    send_raw(net::Frame{{0xFF, 0x00, 0x01}});  // unknown type: ignored
    {
      agg::ByteWriter w;
      w.u8(1);   // vote gossip
      w.u8(1);   // phase 1
      w.u64(0);  // group
      w.u8(3);   // claims 3 entries...
      w.u32(2);  // ...but carries half of one
      send_raw(w.take());
    }
    {
      agg::ByteWriter w;
      w.u8(2);  // child gossip
      w.u8(2);  // phase 2
      w.u64(0);
      w.u8(1);
      w.u8(0);          // slot
      w.u32(2);         // count
      w.f64(10.0);      // sum
      w.f64(100.0);     // sumsq
      w.f64(9.0);       // min
      w.f64(1.0);       // max < min: corrupt
      w.u64(0);         // token
      send_raw(w.take());
    }
  });

  world.simulator().run();
  // The run completes; the corrupt messages were counted, not fatal.
  EXPECT_GE(world.network().stats().messages_malformed, 2u);
  for (const auto& node : nodes) EXPECT_TRUE(node->finished());
}

TEST(GossipWire, FullStateBeatsSingleValueUnderLoss) {
  const auto mean_completeness = [](ExchangeMode mode) {
    double total = 0.0;
    constexpr int kRuns = 8;
    for (int run = 0; run < kRuns; ++run) {
      WorldOptions options;
      options.group_size = 128;
      options.k = 4;
      options.loss = 0.4;
      options.seed = 600 + static_cast<std::uint64_t>(run);
      World world(options);
      GossipConfig config = base_config();
      config.round_multiplier_c = 1.0;
      config.exchange_mode = mode;
      auto nodes = world.make_nodes<HierGossipNode>(config);
      world.start_all(nodes);
      world.simulator().run();
      double run_total = 0.0;
      for (const auto& node : nodes) {
        run_total +=
            static_cast<double>(node->outcome().estimate.count()) / 128.0;
      }
      total += run_total / 128.0;
    }
    return total / kRuns;
  };

  const double full = mean_completeness(ExchangeMode::kFullState);
  const double single = mean_completeness(ExchangeMode::kSingleValue);
  EXPECT_GT(full, single);
  EXPECT_GT(full, 0.95);
}

TEST(GossipWire, SingleValueModeStillConvergesLossless) {
  WorldOptions options;
  options.group_size = 64;
  options.k = 4;
  World world(options);
  GossipConfig config = base_config();
  config.exchange_mode = ExchangeMode::kSingleValue;
  config.round_multiplier_c = 4.0;
  auto nodes = world.make_nodes<HierGossipNode>(config);
  world.start_all(nodes);
  world.simulator().run();
  for (const auto& node : nodes) {
    ASSERT_TRUE(node->finished());
    EXPECT_GE(node->outcome().estimate.count(), 60u);
  }
  EXPECT_EQ(world.audit()->violation_count(), 0u);
}

TEST(GossipWire, StaleVoteGossipAfterBumpIsHarmless) {
  // A node past phase 1 receiving phase-1 vote gossip must ignore it (no
  // absorption into later-phase state, no crash, no audit violation).
  WorldOptions options;
  options.group_size = 32;
  options.k = 4;
  World world(options);
  auto nodes = world.make_nodes<HierGossipNode>(base_config());
  world.start_all(nodes);

  // Very late vote injection: everyone is long past phase 1.
  world.simulator().schedule_at(SimTime::seconds(2), [&world] {
    agg::ByteWriter w;
    w.u8(1);
    w.u8(1);
    w.u64(0);
    w.u8(1);
    w.u32(999);   // bogus origin
    w.f64(1e9);   // absurd vote
    w.u64(0);
    world.network().send(net::Message{MemberId{0}, MemberId{1}, w.take()});
  });
  world.simulator().run();
  for (const auto& node : nodes) {
    ASSERT_TRUE(node->finished());
    EXPECT_LE(node->outcome().estimate.count(), 32u);
    EXPECT_LT(node->outcome().estimate.max(), 1e6);  // bogus vote excluded
  }
  EXPECT_EQ(world.audit()->violation_count(), 0u);
}

// Returns `frame` re-cut to `new_size`: shorter = truncated, longer =
// zero-padded (overlong). Both must be rejected by strict length validation.
net::Frame resized(const net::Frame& frame, std::size_t new_size) {
  std::vector<std::uint8_t> bytes(frame.begin(), frame.end());
  bytes.resize(new_size, 0);
  return net::Frame{bytes};
}

TEST(GossipWire, TruncatedAndOverlongGossipFramesAreMalformed) {
  WorldOptions options;
  options.group_size = 16;
  options.k = 4;
  World world(options);
  auto nodes = world.make_nodes<HierGossipNode>(base_config());
  world.start_all(nodes);

  world.simulator().schedule_at(SimTime::millis(5), [&world] {
    agg::ByteWriter w;
    w.u8(1);   // vote gossip
    w.u8(1);   // phase 1
    w.u64(0);  // group
    w.u8(1);   // one entry
    w.u32(2);
    w.f64(1.0);
    w.u64(0);
    const net::Frame valid = w.take();  // 11 + 20 bytes
    ASSERT_EQ(valid.size(), 31u);
    const auto send = [&world](const net::Frame& f) {
      world.network().send(net::Message{MemberId{0}, MemberId{1}, f});
    };
    send(resized(valid, valid.size() - 1));  // truncated
    send(resized(valid, valid.size() + 1));  // overlong (padded)
    send(resized(valid, valid.size() + 20)); // claims 1 entry, carries 2
  });
  world.simulator().run();
  EXPECT_EQ(world.network().stats().messages_malformed, 3u);
  for (const auto& node : nodes) EXPECT_TRUE(node->finished());
}

}  // namespace
}  // namespace gridbox::protocols::gossip
