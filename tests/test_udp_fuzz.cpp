// Datagram-decode fuzz (gridbox_chaos_tests): byte soup into the exact
// decode path UdpTransport::on_readable runs. Three corpora, all seeded
// through the repo Rng so every failure replays from a seed alone:
//
//   1. uniformly random buffers of 0–512 bytes (most fail the magic check),
//   2. mutated valid datagrams — truncated, extended, and bit-flipped, so
//      inputs concentrate on the accept/reject boundary instead of dying
//      at the first header field,
//   3. the same corpus pushed through UdpTransport::on_readable via a
//      scripted recv hook, asserting the malformed counter accounts for
//      every rejected buffer and nothing crashes.
//
// The binary runs under whatever sanitizers the build enables (the chaos
// suite is exercised under ASan/UBSan in CI); "no crash, no UB" is the
// property, the EXPECTs are the accounting on top.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/net/datagram.h"
#include "src/net/reactor.h"
#include "src/net/udp_transport.h"

namespace gridbox {
namespace {

constexpr std::size_t kFuzzBufferMax = 512;  // ISSUE: 0–512-byte inputs

[[nodiscard]] std::vector<std::uint8_t> random_buffer(Rng& rng,
                                                      std::size_t max_size) {
  const auto size = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::uint64_t>(max_size)));
  std::vector<std::uint8_t> bytes(size);
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return bytes;
}

[[nodiscard]] std::vector<std::uint8_t> valid_datagram(Rng& rng) {
  const auto payload = static_cast<std::size_t>(
      rng.uniform_int(0, net::kMaxPayloadBytes));
  std::vector<std::uint8_t> body(payload);
  for (auto& b : body) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  const net::Message message{
      MemberId(static_cast<std::uint32_t>(rng.uniform_int(0, (1u << 20) - 1))),
      MemberId(static_cast<std::uint32_t>(rng.uniform_int(0, (1u << 20) - 1))),
      net::Frame(body.data(), body.size())};
  std::vector<std::uint8_t> bytes(net::kMaxDatagramBytes);
  bytes.resize(net::encode_datagram(message, bytes.data()));
  return bytes;
}

/// Truncate, extend with junk, or flip bits — the mutations a hostile or
/// broken peer actually produces.
[[nodiscard]] std::vector<std::uint8_t> mutated_datagram(Rng& rng) {
  std::vector<std::uint8_t> bytes = valid_datagram(rng);
  switch (rng.uniform_int(0, 2)) {
    case 0:  // truncate anywhere, including to zero
      bytes.resize(static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::uint64_t>(bytes.size()))));
      break;
    case 1: {  // append 1..(512 - size) junk bytes
      const std::size_t room = kFuzzBufferMax - bytes.size();
      const auto extra = static_cast<std::size_t>(
          rng.uniform_int(1, room > 0 ? room : 1));
      for (std::size_t i = 0; i < extra; ++i) {
        bytes.push_back(static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
      }
      break;
    }
    default: {  // flip 1..8 random bits
      const auto flips = rng.uniform_int(1, 8);
      for (std::uint64_t i = 0; i < flips && !bytes.empty(); ++i) {
        const std::size_t at = rng.index(bytes.size());
        bytes[at] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
      }
      break;
    }
  }
  return bytes;
}

/// Decode must never crash, and an accepted buffer must be internally
/// consistent: exact framing and a frame that re-encodes to the input.
void check_decode(const std::vector<std::uint8_t>& bytes) {
  net::Message out;
  const net::DecodeError error =
      net::decode_datagram(bytes.data(), bytes.size(), out);
  if (error != net::DecodeError::kOk) return;
  ASSERT_EQ(bytes.size(), net::kDatagramHeaderBytes + out.frame.size());
  std::uint8_t reencoded[net::kMaxDatagramBytes];
  const std::size_t size = net::encode_datagram(out, reencoded);
  ASSERT_EQ(size, bytes.size());
  ASSERT_EQ(std::memcmp(reencoded, bytes.data(), size), 0)
      << "accepted datagram does not round-trip";
}

TEST(DatagramFuzz, RandomBuffersNeverCrashTheDecoder) {
  Rng rng{0xF022001};
  std::uint64_t accepted = 0;
  for (int i = 0; i < 20000; ++i) {
    const auto bytes = random_buffer(rng, kFuzzBufferMax);
    check_decode(bytes);
    net::Message out;
    if (net::decode_datagram(bytes.data(), bytes.size(), out) ==
        net::DecodeError::kOk) {
      ++accepted;
    }
  }
  // A 4-byte magic + version + reserved gate makes random acceptance
  // astronomically unlikely; nonzero means the gate rotted.
  EXPECT_EQ(accepted, 0u);
}

TEST(DatagramFuzz, MutatedDatagramsNeverCrashTheDecoder) {
  Rng rng{0xF022002};
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  for (int i = 0; i < 20000; ++i) {
    const auto bytes = mutated_datagram(rng);
    check_decode(bytes);
    net::Message out;
    if (net::decode_datagram(bytes.data(), bytes.size(), out) ==
        net::DecodeError::kOk) {
      ++accepted;  // e.g. bit flips confined to the payload — legal
    } else {
      ++rejected;
    }
  }
  // The corpus must exercise both sides of the boundary to mean anything.
  EXPECT_GT(accepted, 0u);
  EXPECT_GT(rejected, 0u);
}

class NullEndpoint final : public net::Endpoint {
 public:
  void on_message(const net::Message&) override { ++delivered_; }
  std::uint64_t delivered_ = 0;
};

TEST(DatagramFuzz, ReceivePathAccountsForEveryFuzzedBuffer) {
  net::Reactor reactor(net::Reactor::Options{});
  net::UdpTransport::Options topt;
  topt.port_base = 50000;
  topt.max_drain = 1;  // one scripted buffer per on_readable call
  net::UdpTransport transport(reactor, topt);
  NullEndpoint endpoint;
  transport.attach(MemberId{0}, endpoint);
  const int fd = transport.fd_of(MemberId{0});

  Rng rng{0xF022003};
  std::vector<std::uint8_t> pending;
  net::UdpTransport::Hooks hooks;
  hooks.recv = [&pending](int, void* buf, std::size_t len) -> ssize_t {
    const std::size_t n = std::min(len, pending.size());
    std::memcpy(buf, pending.data(), n);
    return static_cast<ssize_t>(n);
  };
  transport.set_hooks(std::move(hooks));

  std::uint64_t fed = 0;
  for (int i = 0; i < 20000; ++i) {
    pending = (i % 2 == 0) ? random_buffer(rng, kFuzzBufferMax)
                           : mutated_datagram(rng);
    transport.on_readable(fd);
    ++fed;
    const auto& stats = transport.stats();
    // Conservation: every buffer lands in exactly one bucket. (A buffer
    // longer than the recv buffer is truncated by the hook exactly as a
    // kernel recv would truncate an oversize datagram — still counted.)
    ASSERT_EQ(stats.messages_malformed + stats.messages_delivered +
                  stats.messages_dead_dest,
              fed);
  }
  EXPECT_GT(transport.stats().messages_malformed, 0u);
  EXPECT_EQ(endpoint.delivered_,
            transport.stats().messages_delivered);
}

}  // namespace
}  // namespace gridbox
