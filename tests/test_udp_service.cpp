// Real-socket service gate (ctest labels udp + service, serial): a
// 64-instance pipelined service run over loopback UDP under chaos loss and
// scripted churn, cross-checked per instance against the simulator — every
// instance must be audit-clean, reconstructing, invariant-clean, and
// bit-equal on ground truth across the two substrates. Also the one-shot
// UDP runner's churn rejection (validated before any socket binds).
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "src/common/ensure.h"
#include "src/runner/udp_runtime.h"
#include "src/service/udp_service.h"

namespace gridbox {
namespace {

TEST(UdpService, OneShotUdpRunnerRejectsChurnSpecs) {
  runner::UdpRunConfig config;
  config.experiment.group_size = 16;
  config.experiment.chaos_spec = "join M1 at=5ms\n";
  EXPECT_THROW((void)runner::run_udp_experiment(config), PreconditionError);
}

TEST(UdpService, SixtyFourInstanceDifferentialUnderLossAndChurn) {
  service::UdpServiceConfig config;
  config.service.experiment.group_size = 32;
  config.service.experiment.seed = 21;
  config.service.experiment.ucast_loss = 0.0;  // loss scripted below
  config.service.experiment.crash_probability = 0.0;
  config.service.experiment.gossip.round_duration = SimTime::millis(2);
  config.service.experiment.chaos_spec =
      "loss 0.05\ncrash M3 at=30ms\njoin M5 at=40ms\nrecover M3 at=80ms\n";
  config.service.instances = 64;
  config.service.epoch_interval = SimTime::millis(5);
  // Window 8 gives the stream headroom: a deferred launch fires when a
  // slot frees, which is sim-timed on one substrate and wall-timed on the
  // other, so a saturated window could legitimately shift a cohort
  // (docs/service.md). Deferral is therefore NOT asserted to be zero below
  // — on a loaded host the wall clock can outrun the window anyway — the
  // pipelining proof is the windowed-overlap count, and the per-instance
  // ground-truth bit-equality stays strict either way.
  config.service.max_in_flight = 8;
  config.port_base = 42000;

  const service::ServiceDifferentialReport report =
      service::run_service_differential(config);
  EXPECT_TRUE(report.ok()) << report.describe();
  EXPECT_EQ(report.sim.metrics.completed, 64u);
  EXPECT_EQ(report.udp.result.metrics.completed, 64u);
  EXPECT_EQ(report.rows.size(), 64u);

  // The stream genuinely pipelined: an instance takes several times the
  // launch cadence, so successive epochs overlapped in flight. Proven by
  // counting windowed overlaps — consecutive instances whose lifetimes
  // [launched_at, completed_at) intersect — rather than by asserting the
  // window never filled: deferral depends on wall-clock completion speed,
  // which a loaded CI host legitimately varies.
  EXPECT_GT(report.udp.result.metrics.p50_completion,
            config.service.epoch_interval);
  std::size_t overlapped = 0;
  const std::vector<service::InstanceResult>& rows =
      report.udp.result.instances;
  for (std::size_t i = 0; i + 1 < rows.size(); ++i) {
    if (rows[i + 1].launched_at < rows[i].completed_at) ++overlapped;
  }
  EXPECT_GT(overlapped, rows.size() / 2)
      << "only " << overlapped << " of " << rows.size() - 1
      << " consecutive instance pairs overlapped in flight";
  EXPECT_GT(report.udp.result.metrics.instances_per_sec, 0.0);
  // One socket set served the whole stream; the demux rejected nothing a
  // healthy run should deliver.
  EXPECT_GT(report.udp.result.metrics.demux.delivered, 0u);
  EXPECT_EQ(report.udp.result.metrics.demux.malformed_envelope, 0u);
  EXPECT_EQ(report.udp.result.metrics.demux.unknown_instance, 0u);
}

}  // namespace
}  // namespace gridbox
