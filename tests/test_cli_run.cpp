// End-to-end run_cli coverage: exit codes and CSV side effects.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "src/runner/cli.h"

namespace gridbox::runner {
namespace {

TEST(CliRun, HelpReturnsZero) {
  CliOptions options;
  options.show_help = true;
  EXPECT_EQ(run_cli(options), 0);
}

TEST(CliRun, SmallRunSucceedsAndWritesCsv) {
  const std::string path = ::testing::TempDir() + "gridbox_cli_run.csv";
  std::remove(path.c_str());

  CliOptions options;
  options.config.group_size = 48;
  options.config.ucast_loss = 0.1;
  options.config.crash_probability = 0.0;
  options.config.audit = true;
  options.runs = 3;
  options.csv_path = path;
  EXPECT_EQ(run_cli(options), 0);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_NE(header.find("completeness"), std::string::npos);
  int rows = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) ++rows;
  }
  EXPECT_EQ(rows, 3);
  std::remove(path.c_str());
}

TEST(CliRun, UnwritableCsvPathFails) {
  CliOptions options;
  options.config.group_size = 16;
  options.config.crash_probability = 0.0;
  options.runs = 1;
  options.csv_path = "/nonexistent-dir/nope.csv";
  EXPECT_EQ(run_cli(options), 1);
}

TEST(CliRun, InvalidConfigurationReturnsError) {
  CliOptions options;
  options.config.group_size = 1;  // rejected by run_experiment
  EXPECT_EQ(run_cli(options), 1);
}

}  // namespace
}  // namespace gridbox::runner
