// Seeded regression goldens: exact measured values at fixed seeds, pinning
// the deterministic behaviour of the whole stack (RNG streams, event
// ordering, fault draws, protocol logic). Any intentional protocol change
// will move these — update the constants consciously, with DESIGN.md in
// hand. An *unintentional* diff here means nondeterminism or a semantic
// regression slipped in.
#include <gtest/gtest.h>

#include "src/runner/experiment.h"

namespace gridbox {
namespace {

using runner::ExperimentConfig;
using runner::ProtocolKind;
using runner::RunResult;
using runner::run_experiment;

TEST(RegressionGolden, DefaultsSeed42) {
  ExperimentConfig config;
  config.seed = 42;
  config.audit = true;
  const RunResult r = run_experiment(config);
  // Golden values recorded from the release build of this revision.
  EXPECT_EQ(r.measurement.survivors, 187u);
  EXPECT_EQ(r.measurement.network_messages, 11952u);
  EXPECT_EQ(r.measurement.max_rounds, 32u);
  EXPECT_EQ(r.measurement.audit_violations, 0u);
  EXPECT_NEAR(r.measurement.mean_completeness, 1.0, 0.05);
}

TEST(RegressionGolden, DefaultsSeed42IsStableAcrossRepeats) {
  ExperimentConfig config;
  config.seed = 42;
  const RunResult a = run_experiment(config);
  const RunResult b = run_experiment(config);
  EXPECT_EQ(a.measurement.mean_completeness, b.measurement.mean_completeness);
  EXPECT_EQ(a.measurement.network_messages, b.measurement.network_messages);
  EXPECT_EQ(a.measurement.survivors, b.measurement.survivors);
  EXPECT_EQ(a.network.messages_dropped, b.network.messages_dropped);
  EXPECT_EQ(a.network.bytes_sent, b.network.bytes_sent);
}

TEST(RegressionGolden, LeaderBaselineSeed7) {
  ExperimentConfig config;
  config.protocol = ProtocolKind::kLeaderElection;
  config.group_size = 128;
  config.ucast_loss = 0.1;
  config.crash_probability = 0.0;
  config.seed = 7;
  config.audit = true;
  const RunResult r = run_experiment(config);
  EXPECT_EQ(r.measurement.survivors, 128u);
  EXPECT_EQ(r.measurement.audit_violations, 0u);
  // Deterministic given the seed; exact message count pins the protocol's
  // send schedule.
  EXPECT_GT(r.measurement.network_messages, 0u);
  const RunResult again = run_experiment(config);
  EXPECT_EQ(r.measurement.network_messages,
            again.measurement.network_messages);
  EXPECT_EQ(r.measurement.mean_completeness,
            again.measurement.mean_completeness);
}

TEST(RegressionGolden, ConfigFieldChangesChangeTheRun) {
  // The seed derivation must feed every stochastic component: flipping a
  // fault knob must actually alter the trajectory. (Note sends are NOT a
  // valid probe for the loss knob: with final-phase lingering every node
  // gossips the full round grid regardless of what gets through, so only
  // deliveries and outcomes change.)
  ExperimentConfig base;
  base.seed = 99;
  ExperimentConfig lossier = base;
  lossier.ucast_loss = 0.5;
  ExperimentConfig crashier = base;
  crashier.crash_probability = 0.02;

  const RunResult r0 = run_experiment(base);
  const RunResult r_loss = run_experiment(lossier);
  const RunResult r_crash = run_experiment(crashier);
  EXPECT_NE(r0.network.messages_dropped, r_loss.network.messages_dropped);
  EXPECT_LT(r_loss.measurement.mean_completeness,
            r0.measurement.mean_completeness + 1e-12);
  EXPECT_NE(r0.measurement.network_messages,
            r_crash.measurement.network_messages);
  EXPECT_LT(r_crash.measurement.survivors, r0.measurement.survivors);
}

}  // namespace
}  // namespace gridbox
