// GossipTrace: the observability hooks expose the protocol's internal
// decisions, letting these tests assert behaviour that outcomes alone
// cannot show (why phases ended, whether adoption fired, event ordering).
#include "src/protocols/gossip/trace.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/protocols/gossip/hier_gossip.h"
#include "tests/testing_world.h"

namespace gridbox::protocols::gossip {
namespace {

using gridbox::testing::World;
using gridbox::testing::WorldOptions;

struct RecordingTrace final : GossipTrace {
  struct Conclusion {
    std::size_t phase;
    PhaseEnd how;
    std::uint32_t votes;
  };

  void on_phase_entered(MemberId member, std::size_t phase) override {
    entered[member].push_back(phase);
  }
  void on_value_learned(MemberId member, std::size_t phase,
                        std::uint32_t index) override {
    learned[member].push_back({phase, index});
  }
  void on_phase_concluded(MemberId member, std::size_t phase, PhaseEnd how,
                          std::uint32_t votes) override {
    concluded[member].push_back({phase, how, votes});
  }
  void on_finished(MemberId member, std::uint32_t votes) override {
    finished[member] = votes;
  }

  [[nodiscard]] std::size_t count(PhaseEnd how) const {
    std::size_t n = 0;
    for (const auto& [member, list] : concluded) {
      for (const auto& c : list) {
        if (c.how == how) ++n;
      }
    }
    return n;
  }

  std::map<MemberId, std::vector<std::size_t>> entered;
  std::map<MemberId, std::vector<std::pair<std::size_t, std::uint32_t>>>
      learned;
  std::map<MemberId, std::vector<Conclusion>> concluded;
  std::map<MemberId, std::uint32_t> finished;
};

GossipConfig traced_config(RecordingTrace& trace, double c = 2.0) {
  GossipConfig config;
  config.k = 4;
  config.fanout_m = 2;
  config.round_multiplier_c = c;
  config.trace = &trace;
  return config;
}

TEST(Trace, PhaseEntriesAreSequentialFromOne) {
  RecordingTrace trace;
  WorldOptions options;
  options.group_size = 64;
  World world(options);
  auto nodes = world.make_nodes<HierGossipNode>(traced_config(trace));
  world.start_all(nodes);
  world.simulator().run();

  ASSERT_EQ(trace.entered.size(), 64u);
  for (const auto& [member, phases] : trace.entered) {
    ASSERT_FALSE(phases.empty());
    EXPECT_EQ(phases.front(), 1u);
    for (std::size_t i = 1; i < phases.size(); ++i) {
      EXPECT_GT(phases[i], phases[i - 1]);  // adoption may skip, never repeat
    }
    EXPECT_EQ(phases.back(), world.hierarchy().num_phases());
  }
}

TEST(Trace, EveryMemberConcludesEveryPhaseOnceOrViaAdoption) {
  RecordingTrace trace;
  WorldOptions options;
  options.group_size = 100;
  World world(options);
  auto nodes = world.make_nodes<HierGossipNode>(traced_config(trace));
  world.start_all(nodes);
  world.simulator().run();

  for (const auto& [member, list] : trace.concluded) {
    // Conclusions are for strictly increasing phases ending at the root.
    for (std::size_t i = 1; i < list.size(); ++i) {
      EXPECT_GT(list[i].phase, list[i - 1].phase);
    }
    EXPECT_EQ(list.back().phase, world.hierarchy().num_phases());
    // Coverage never shrinks as phases widen.
    for (std::size_t i = 1; i < list.size(); ++i) {
      EXPECT_GE(list[i].votes, list[i - 1].votes);
    }
  }
}

TEST(Trace, FinishedVotesMatchOutcome) {
  RecordingTrace trace;
  WorldOptions options;
  options.group_size = 48;
  options.loss = 0.3;
  World world(options);
  auto nodes = world.make_nodes<HierGossipNode>(traced_config(trace));
  world.start_all(nodes);
  world.simulator().run();

  for (const auto& node : nodes) {
    ASSERT_TRUE(trace.finished.contains(node->self()));
    EXPECT_EQ(trace.finished[node->self()], node->outcome().estimate.count());
  }
}

TEST(Trace, LosslessRunsSaturateMostNonFinalPhases) {
  RecordingTrace trace;
  WorldOptions options;
  options.group_size = 128;
  World world(options);
  auto nodes = world.make_nodes<HierGossipNode>(traced_config(trace));
  world.start_all(nodes);
  world.simulator().run();

  // With lingering, final phases conclude at the deadline (timeout); a good
  // share of earlier phases should saturate (step 2(b)) in a lossless
  // network (adoption and sparse-box timeouts take the rest).
  EXPECT_GT(trace.count(PhaseEnd::kSaturated), 64u);
  EXPECT_GT(trace.count(PhaseEnd::kTimeout), 0u);
}

TEST(Trace, SynchronousModeNeverSaturates) {
  RecordingTrace trace;
  WorldOptions options;
  options.group_size = 64;
  World world(options);
  GossipConfig config = traced_config(trace);
  config.early_bump = false;
  auto nodes = world.make_nodes<HierGossipNode>(config);
  world.start_all(nodes);
  world.simulator().run();

  EXPECT_EQ(trace.count(PhaseEnd::kSaturated), 0u);
  EXPECT_EQ(trace.count(PhaseEnd::kAdopted), 0u);
  // 64 members x 3 phases, all by timeout.
  EXPECT_EQ(trace.count(PhaseEnd::kTimeout),
            64u * world.hierarchy().num_phases());
}

TEST(Trace, AdoptionFiresForLaggards) {
  // Sparse boxes (large K relative to N via small N per box) plus loss make
  // laggards: some member should catch up by adoption.
  RecordingTrace trace;
  WorldOptions options;
  options.group_size = 200;
  options.k = 4;
  options.loss = 0.35;
  options.seed = 11;
  World world(options);
  auto nodes = world.make_nodes<HierGossipNode>(traced_config(trace, 1.0));
  world.start_all(nodes);
  world.simulator().run();

  EXPECT_GT(trace.count(PhaseEnd::kAdopted), 0u);
}

TEST(Trace, ValueLearnedIndicesAreWellFormed) {
  RecordingTrace trace;
  WorldOptions options;
  options.group_size = 64;
  World world(options);
  auto nodes = world.make_nodes<HierGossipNode>(traced_config(trace));
  world.start_all(nodes);
  world.simulator().run();

  for (const auto& [member, events] : trace.learned) {
    for (const auto& [phase, index] : events) {
      if (phase == 1) {
        EXPECT_LT(index, 64u);  // an origin member id
        EXPECT_TRUE(world.hierarchy().same_phase_group(member,
                                                       MemberId{index}, 1));
      } else {
        EXPECT_LT(index, 4u);  // a child slot
      }
    }
  }
}

}  // namespace
}  // namespace gridbox::protocols::gossip
