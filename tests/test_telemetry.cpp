// Live-telemetry gates: lane/histogram semantics, the shard-ordered fold,
// scripted-clock lateness attribution on the reactor wheel, and the
// headline determinism claim — on the simulator substrate the whole
// gridbox-telemetry/1 JSONL series is a byte-deterministic function of
// (config, seed), invariant under the jobs knob and under how a scripted
// load is distributed across lanes.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/net/reactor.h"
#include "src/obs/json.h"
#include "src/obs/telemetry.h"
#include "src/runner/config.h"
#include "src/runner/experiment.h"
#include "src/service/service.h"
#include "src/sim/simulator.h"

namespace gridbox {
namespace {

using obs::JsonValue;
using obs::LaneSnapshot;
using obs::TelemetryHist;
using obs::TelemetryHub;

TEST(TelemetryHistTest, Log2BucketingHoldsAtTheEdges) {
  EXPECT_EQ(TelemetryHist::bucket_of(0), 0u);   // exact zeros
  EXPECT_EQ(TelemetryHist::bucket_of(1), 1u);   // [1, 2)
  EXPECT_EQ(TelemetryHist::bucket_of(2), 2u);   // [2, 4)
  EXPECT_EQ(TelemetryHist::bucket_of(3), 2u);
  EXPECT_EQ(TelemetryHist::bucket_of(4), 3u);   // [4, 8)
  EXPECT_EQ(TelemetryHist::bucket_of(3000), 12u);  // [2048, 4096)
  // The last bucket absorbs everything past the covered range.
  EXPECT_EQ(TelemetryHist::bucket_of(std::uint64_t{1} << 20),
            TelemetryHist::kBuckets - 1);
  EXPECT_EQ(TelemetryHist::bucket_of(~std::uint64_t{0}),
            TelemetryHist::kBuckets - 1);
}

/// Drives the same scripted load into a hub with `lanes` lanes, member m
/// landing on lane m % lanes — the shard_of rule of every runtime.
LaneSnapshot folded_total(std::size_t lanes) {
  TelemetryHub hub(lanes);
  for (std::uint64_t m = 0; m < 96; ++m) {
    obs::TelemetryLane& lane = hub.lane(m % lanes);
    lane.note_timer_fired(m % 7);
    lane.actions_run.fetch_add(1 + m % 3, std::memory_order_relaxed);
    lane.frames_delivered.fetch_add(m % 5, std::memory_order_relaxed);
    lane.drain_per_wake.observe(m % 5);
    lane.dispatch_per_tick.observe(m % 11);
    lane.note_queue_depth(m % 9);
  }
  return hub.snapshot_total();
}

TEST(TelemetryHubTest, ShardOrderedFoldIsInvariantUnderLaneCount) {
  const LaneSnapshot one = folded_total(1);
  for (const std::size_t lanes : {std::size_t{2}, std::size_t{4}}) {
    const LaneSnapshot many = folded_total(lanes);
    EXPECT_EQ(one.timers_fired, many.timers_fired) << lanes;
    EXPECT_EQ(one.actions_run, many.actions_run) << lanes;
    EXPECT_EQ(one.frames_delivered, many.frames_delivered) << lanes;
    // The high-water gauge folds by max, so the global maximum survives
    // any distribution of members over lanes.
    EXPECT_EQ(one.queue_depth_hw, many.queue_depth_hw) << lanes;
    for (std::size_t b = 0; b < TelemetryHist::kBuckets; ++b) {
      EXPECT_EQ(one.timer_lateness_us[b], many.timer_lateness_us[b])
          << lanes << " lanes, bucket " << b;
      EXPECT_EQ(one.drain_per_wake[b], many.drain_per_wake[b])
          << lanes << " lanes, bucket " << b;
      EXPECT_EQ(one.dispatch_per_tick[b], many.dispatch_per_tick[b])
          << lanes << " lanes, bucket " << b;
    }
  }
}

TEST(TelemetrySamplerTest, EmitsSchemaVersionedSequencedRecords) {
  TelemetryHub hub(2);
  hub.lane(0).note_timer_fired(100);
  hub.lane(1).note_timer_fired(0);

  std::string sink;
  obs::TelemetryConfig config;
  config.enabled = true;
  config.interval = SimTime::millis(10);
  config.sink = &sink;
  obs::TelemetrySampler sampler(hub, config);
  sampler.sample(SimTime::millis(10));
  hub.lane(0).frames_delivered.fetch_add(3, std::memory_order_relaxed);
  sampler.sample(SimTime::millis(20));
  EXPECT_EQ(sampler.samples(), 2u);

  std::istringstream lines(sink);
  std::string line;
  std::uint64_t expected_seq = 0;
  std::string last;
  while (std::getline(lines, line)) {
    const JsonValue doc = obs::json_parse(line);
    EXPECT_EQ(doc.string_or("schema", ""), TelemetryHub::kSchema);
    EXPECT_EQ(static_cast<std::uint64_t>(doc.number_or("seq", 99)),
              expected_seq++);
    EXPECT_EQ(doc.number_or("lanes", 0), 2.0);
    const JsonValue* shards = doc.find("shards");
    ASSERT_NE(shards, nullptr);
    ASSERT_TRUE(shards->is_array());
    EXPECT_EQ(shards->array.size(), 2u);
    EXPECT_NE(doc.find("total"), nullptr);
    // One-shot hub: the service section is not armed, so it is absent.
    EXPECT_EQ(doc.find("service"), nullptr);
    last = line;
  }
  EXPECT_EQ(expected_seq, 2u);
  EXPECT_EQ(sampler.latest(), last);

  // The second record saw the frame deliveries that landed in between.
  const JsonValue doc = obs::json_parse(last);
  const JsonValue* total = doc.find("total");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(total->number_or("frames", 0), 3.0);
  EXPECT_EQ(total->number_or("timers_fired", 0), 2.0);
}

TEST(TelemetryReactorTest, ScriptedClockAttributesTimerLateness) {
  net::Reactor reactor{net::Reactor::Options{}};
  obs::TelemetryLane lane;
  reactor.set_telemetry(&lane);
  SimTime clock = SimTime::zero();
  reactor.set_clock_fn([&clock]() { return clock; });

  struct Once final : sim::TimerTarget {
    int fired = 0;
    bool on_timer(std::uint32_t) override {
      ++fired;
      return false;
    }
  } target;
  reactor.schedule_timer_at(SimTime::millis(5), target);

  // The loop stalls: the clock reaches t=8ms before the wheel advances, so
  // the 5ms timer fires 3000us late — bucket 12 covers [2048, 4096).
  clock = SimTime::micros(8000);
  reactor.fire_due_timers();

  EXPECT_EQ(target.fired, 1);
  EXPECT_EQ(lane.timers_fired.load(std::memory_order_relaxed), 1u);
  EXPECT_EQ(lane.timer_lateness_us.buckets[12].load(std::memory_order_relaxed),
            1u);
  EXPECT_EQ(lane.timer_lateness_us.total(), 1u);
  EXPECT_EQ(lane.dispatch_per_tick.total(), 1u);
}

TEST(TelemetrySimulatorTest, VirtualClockFiresExactlyOnTime) {
  sim::Simulator sim;
  obs::TelemetryLane lane;
  sim.set_telemetry(&lane);

  struct Ticker final : sim::TimerTarget {
    int left = 5;
    bool on_timer(std::uint32_t) override { return --left > 0; }
  } ticker;
  sim.schedule_periodic(SimTime::millis(1), SimTime::millis(1), ticker);
  sim.run();

  EXPECT_EQ(lane.timers_fired.load(std::memory_order_relaxed), 5u);
  // Lateness is identically zero on the virtual clock: all in bucket 0.
  EXPECT_EQ(lane.timer_lateness_us.buckets[0].load(std::memory_order_relaxed),
            5u);
  EXPECT_EQ(lane.timer_lateness_us.total(), 5u);
}

/// One full simulator run with telemetry streamed to an in-memory sink.
std::string one_shot_series(std::size_t jobs) {
  runner::ExperimentConfig config;
  config.group_size = 48;
  config.seed = 20010701;
  config.jobs = jobs;
  config.telemetry.enabled = true;
  config.telemetry.interval = SimTime::millis(20);
  std::string sink;
  config.telemetry.sink = &sink;
  const runner::RunResult result = runner::run_experiment(config);
  EXPECT_GT(result.sim_events, 0u);
  return sink;
}

TEST(TelemetryDeterminismTest, OneShotSeriesIsByteIdenticalAcrossRunsAndJobs) {
  const std::string first = one_shot_series(1);
  ASSERT_FALSE(first.empty());
  // Repeatable, and independent of the execution-side jobs knob.
  EXPECT_EQ(first, one_shot_series(1));
  EXPECT_EQ(first, one_shot_series(8));

  // Every line parses, carries the schema, and the clock never rewinds.
  std::istringstream lines(first);
  std::string line;
  double last_t = -1.0;
  std::size_t records = 0;
  while (std::getline(lines, line)) {
    const JsonValue doc = obs::json_parse(line);
    EXPECT_EQ(doc.string_or("schema", ""), TelemetryHub::kSchema);
    const double t = doc.number_or("t_us", -1.0);
    EXPECT_GE(t, last_t);
    last_t = t;
    ++records;
  }
  EXPECT_GT(records, 1u);  // the cadence sampled mid-run, not just at exit
}

/// One streaming service run on the simulator substrate, telemetry to an
/// in-memory sink.
std::string service_series(std::size_t jobs) {
  service::ServiceConfig sc;
  sc.experiment.group_size = 24;
  sc.experiment.seed = 77;
  sc.experiment.jobs = jobs;
  sc.experiment.telemetry.enabled = true;
  sc.experiment.telemetry.interval = SimTime::millis(10);
  std::string sink;
  sc.experiment.telemetry.sink = &sink;
  sc.instances = 6;
  sc.epoch_interval = SimTime::millis(5);
  sc.max_in_flight = 4;
  const service::ServiceResult result = service::run_service_experiment(sc);
  EXPECT_EQ(result.metrics.completed, 6u);
  return sink;
}

TEST(TelemetryDeterminismTest, ServiceSeriesIsByteIdenticalAcrossRunsAndJobs) {
  const std::string first = service_series(1);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, service_series(1));
  EXPECT_EQ(first, service_series(8));

  // Service runs carry the service section; the final record accounts for
  // the whole stream.
  std::istringstream lines(first);
  std::string line;
  std::string last;
  while (std::getline(lines, line)) last = line;
  const JsonValue doc = obs::json_parse(last);
  const JsonValue* service = doc.find("service");
  ASSERT_NE(service, nullptr);
  EXPECT_EQ(service->number_or("launched", 0), 6.0);
  EXPECT_EQ(service->number_or("completed", 0), 6.0);
  EXPECT_EQ(service->number_or("in_flight", 99), 0.0);
  const JsonValue* epoch = service->find("epoch_latency_us");
  ASSERT_NE(epoch, nullptr);
  ASSERT_TRUE(epoch->is_array());
  double observed = 0;
  for (const JsonValue& b : epoch->array) observed += b.number;
  EXPECT_EQ(observed, 6.0);  // one latency observation per completion
}

}  // namespace
}  // namespace gridbox
