// The ISSUE acceptance gate, as a test: N = 1000 members as threads on
// loopback running real hier-gossip rounds over UDP, audit-clean, and in
// agreement with the simulator run of the identical world — plus the same
// under a chaos spec. Lives in its own binary (gridbox_udp_tests, ctest
// label `udp`) because a thousand sockets and real round timers are beyond
// the tier-1 wall-clock budget.
//
// Port discipline: this binary owns the 45xxx window.
#include <gtest/gtest.h>

#include "src/runner/udp_differential.h"
#include "src/runner/udp_runtime.h"

namespace gridbox {
namespace {

[[nodiscard]] runner::UdpRunConfig scale_config(std::uint16_t port_base,
                                                std::uint64_t seed) {
  runner::UdpRunConfig config;
  config.experiment.group_size = 1000;
  config.experiment.ucast_loss = 0.25;  // the paper's ucastl
  config.experiment.crash_probability = 0.0;
  config.experiment.gossip.round_duration = SimTime::millis(5);
  config.experiment.seed = seed;
  config.port_base = port_base;
  return config;
}

TEST(UdpScale, ThousandMemberHierGossipIsAuditCleanOverLoopback) {
  runner::UdpRunConfig config = scale_config(45000, 21);
  config.experiment.audit = true;
  const auto result = runner::run_udp_experiment(config);

  EXPECT_TRUE(result.completed) << "did not finish before the wall deadline";
  EXPECT_EQ(result.invariant_violations, 0u) << result.first_violation;
  EXPECT_EQ(result.measurement.audit_violations, 0u);
  EXPECT_EQ(result.measurement.reconstruction_failures, 0u);
  EXPECT_EQ(result.measurement.finished_nodes, result.measurement.survivors);
  EXPECT_EQ(result.measurement.survivors, 1000u);
  // Real rounds really ran: the wheel fired per-node round timers and the
  // sockets moved the gossip volume, not some empty no-op loop.
  EXPECT_GT(result.timers_fired, 1000u);
  EXPECT_GT(result.network.messages_delivered, 10'000u);
}

TEST(UdpScale, ThousandMemberDifferentialAgreesWithTheSimulator) {
  const auto report = runner::run_udp_differential(scale_config(46000, 22));
  EXPECT_TRUE(report.ok()) << report.describe();
  EXPECT_EQ(report.sim.measurement.true_value,
            report.udp.measurement.true_value);
}

TEST(UdpScale, ThousandMemberDifferentialSurvivesChaos) {
  runner::UdpRunConfig config = scale_config(47000, 23);
  config.experiment.chaos_spec =
      "loss 0.15\n"
      "burst 0us..40000us good=0.05 bad=0.6 go-bad=0.02 go-good=0.2\n"
      "jitter p=0.1 0us..2000us\n"
      "dup p=0.02 extra=1 spread=1000us\n";
  const auto report = runner::run_udp_differential(config);
  EXPECT_TRUE(report.ok()) << report.describe();
}

}  // namespace
}  // namespace gridbox
