// UdpTransport + Reactor over real loopback sockets, plus mocked-syscall
// unit tests for the receive path's EINTR/EAGAIN/spurious-wakeup behavior.
//
// Port discipline: every test binds its own disjoint port window (ctest
// runs tests of this binary as separate parallel processes). Windows here
// live in 43xxx; the differential/scale/soak suites use 44xxx-46xxx.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/net/chaos.h"
#include "src/net/datagram.h"
#include "src/net/fault_model.h"
#include "src/net/reactor.h"
#include "src/net/udp_transport.h"

namespace gridbox {
namespace {

class CollectingEndpoint final : public net::Endpoint {
 public:
  void on_message(const net::Message& message) override {
    messages_.push_back(message);
  }
  std::vector<net::Message> messages_;
};

[[nodiscard]] net::Reactor::Options reactor_options() {
  return net::Reactor::Options{};  // defaults: 1ms tick, 512-slot wheel
}

TEST(UdpTransport, DeliversFramesAcrossRealSockets) {
  net::Reactor reactor(reactor_options());
  net::UdpTransport::Options topt;
  topt.port_base = 43000;
  net::UdpTransport transport(reactor, topt);

  CollectingEndpoint a;
  CollectingEndpoint b;
  transport.attach(MemberId{0}, a);
  transport.attach(MemberId{1}, b);
  ASSERT_EQ(transport.attached_count(), 2u);

  const net::Frame frame{0xAA, 0xBB, 0xCC};
  transport.send(net::Message{MemberId{0}, MemberId{1}, frame});
  transport.send(net::Message{MemberId{1}, MemberId{0}, frame});
  transport.send(net::Message{MemberId{0}, MemberId{0}, frame});  // self

  const bool done = reactor.run_until(
      [&]() { return a.messages_.size() == 2 && b.messages_.size() == 1; },
      SimTime::seconds(5));
  ASSERT_TRUE(done) << "loopback delivery timed out";

  EXPECT_EQ(b.messages_[0].source, MemberId{0});
  EXPECT_TRUE(b.messages_[0].frame == frame);
  EXPECT_EQ(transport.stats().messages_sent, 3u);
  EXPECT_EQ(transport.stats().messages_delivered, 3u);
  EXPECT_EQ(transport.stats().messages_malformed, 0u);
}

TEST(UdpTransport, CountsRawGarbageAsMalformed) {
  net::Reactor reactor(reactor_options());
  net::UdpTransport::Options topt;
  topt.port_base = 43050;
  net::UdpTransport transport(reactor, topt);

  CollectingEndpoint a;
  transport.attach(MemberId{0}, a);

  // A plain socket lobs byte soup at the member's port: short junk, a
  // valid header with padding appended, and an empty datagram.
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in to{};
  to.sin_family = AF_INET;
  to.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  to.sin_port = htons(43050);
  const std::uint8_t junk[5] = {1, 2, 3, 4, 5};
  ASSERT_GT(::sendto(fd, junk, sizeof(junk), 0,
                     reinterpret_cast<sockaddr*>(&to), sizeof(to)), 0);
  std::uint8_t padded[net::kMaxDatagramBytes + 4] = {};
  const std::size_t valid = net::encode_datagram(
      net::Message{MemberId{9}, MemberId{0}, net::Frame{7}}, padded);
  ASSERT_GT(::sendto(fd, padded, valid + 4, 0,
                     reinterpret_cast<sockaddr*>(&to), sizeof(to)), 0);
  ASSERT_EQ(::sendto(fd, junk, 0, 0, reinterpret_cast<sockaddr*>(&to),
                     sizeof(to)), 0);
  ::close(fd);

  const bool done = reactor.run_until(
      [&]() { return transport.stats().messages_malformed >= 3; },
      SimTime::seconds(5));
  ASSERT_TRUE(done) << "malformed datagrams were not counted";
  EXPECT_TRUE(a.messages_.empty());
  EXPECT_EQ(transport.stats().messages_delivered, 0u);
}

TEST(UdpTransport, ChaosShimDropsOnTheSendPath) {
  net::Reactor reactor(reactor_options());
  net::UdpTransport::Options topt;
  topt.port_base = 43100;
  net::UdpTransport transport(reactor, topt);

  CollectingEndpoint a;
  CollectingEndpoint b;
  transport.attach(MemberId{0}, a);
  transport.attach(MemberId{1}, b);

  auto schedule = std::make_unique<net::ChaosSchedule>(
      net::ChaosSpec::parse("loss 1.0"), std::make_unique<net::NoLoss>(), 2,
      Rng{99});
  transport.install_chaos(std::move(schedule));

  for (int i = 0; i < 20; ++i) {
    transport.send(net::Message{MemberId{0}, MemberId{1}, net::Frame{1}});
  }
  EXPECT_EQ(transport.stats().messages_sent, 20u);
  EXPECT_EQ(transport.stats().messages_dropped, 20u);

  // Nothing in flight: the poll loop must come back empty-handed.
  (void)reactor.run_until([&]() { return !b.messages_.empty(); },
                          SimTime::millis(30));
  EXPECT_TRUE(b.messages_.empty());
}

TEST(UdpTransport, ChaosShimDuplicatesViaTheTimerWheel) {
  net::Reactor reactor(reactor_options());
  net::UdpTransport::Options topt;
  topt.port_base = 43150;
  net::UdpTransport transport(reactor, topt);

  CollectingEndpoint a;
  CollectingEndpoint b;
  transport.attach(MemberId{0}, a);
  transport.attach(MemberId{1}, b);

  auto schedule = std::make_unique<net::ChaosSchedule>(
      net::ChaosSpec::parse("dup p=1.0 extra=2 spread=2000us"),
      std::make_unique<net::NoLoss>(), 2, Rng{5});
  transport.install_chaos(std::move(schedule));

  transport.send(net::Message{MemberId{0}, MemberId{1}, net::Frame{3}});
  const bool done = reactor.run_until(
      [&]() { return b.messages_.size() == 3; }, SimTime::seconds(5));
  ASSERT_TRUE(done) << "duplicates did not arrive";
  EXPECT_EQ(transport.stats().messages_duplicated, 2u);
  EXPECT_EQ(transport.stats().messages_delivered, 3u);
}

// === Mocked-syscall receive-path tests (satellite: EINTR/EAGAIN). ===

/// Scripted recv(2): returns each queued result in order, then EAGAIN
/// forever. A result with bytes installs those bytes; one with err sets
/// errno and returns -1.
struct ScriptedRecv {
  struct Step {
    std::vector<std::uint8_t> bytes;
    int err = 0;  ///< nonzero: fail with this errno
  };
  std::vector<Step> steps;
  std::size_t next = 0;
  std::uint64_t calls = 0;

  ssize_t operator()(int, void* buf, std::size_t len) {
    ++calls;
    if (next >= steps.size()) {
      errno = EAGAIN;
      return -1;
    }
    const Step& step = steps[next++];
    if (step.err != 0) {
      errno = step.err;
      return -1;
    }
    const std::size_t n = std::min(len, step.bytes.size());
    std::memcpy(buf, step.bytes.data(), n);
    return static_cast<ssize_t>(n);
  }
};

[[nodiscard]] std::vector<std::uint8_t> encoded(MemberId from, MemberId to,
                                                std::uint8_t payload) {
  std::uint8_t buffer[net::kMaxDatagramBytes];
  const std::size_t size = net::encode_datagram(
      net::Message{from, to, net::Frame{payload}}, buffer);
  return std::vector<std::uint8_t>(buffer, buffer + size);
}

TEST(UdpTransport, ReceivePathRetriesEintrWithoutSpinning) {
  net::Reactor reactor(reactor_options());
  net::UdpTransport::Options topt;
  topt.port_base = 43200;
  net::UdpTransport transport(reactor, topt);
  CollectingEndpoint a;
  transport.attach(MemberId{0}, a);

  auto script = std::make_shared<ScriptedRecv>();
  script->steps.push_back({{}, EINTR});
  script->steps.push_back({{}, EINTR});
  script->steps.push_back({encoded(MemberId{1}, MemberId{0}, 0x7E), 0});
  net::UdpTransport::Hooks hooks;
  hooks.recv = [script](int fd, void* buf, std::size_t len) {
    return (*script)(fd, buf, len);
  };
  transport.set_hooks(std::move(hooks));

  // Drive the handler directly — a mocked reactor turn with the fd the
  // real dispatch would pass, so the owner lookup behaves as in production.
  transport.on_readable(transport.fd_of(MemberId{0}));

  // Two EINTR retries, one datagram, one EAGAIN that ends the drain: four
  // calls total — bounded, not a spin.
  EXPECT_EQ(script->calls, 4u);
  EXPECT_EQ(transport.recv_eintr_retries(), 2u);
  ASSERT_EQ(a.messages_.size(), 1u);
  EXPECT_EQ(a.messages_[0].frame[0], 0x7E);
}

TEST(UdpTransport, SpuriousWakeupReadsOnceAndReturns) {
  net::Reactor reactor(reactor_options());
  net::UdpTransport::Options topt;
  topt.port_base = 43250;
  net::UdpTransport transport(reactor, topt);
  CollectingEndpoint a;
  transport.attach(MemberId{0}, a);

  auto script = std::make_shared<ScriptedRecv>();  // EAGAIN immediately
  net::UdpTransport::Hooks hooks;
  hooks.recv = [script](int fd, void* buf, std::size_t len) {
    return (*script)(fd, buf, len);
  };
  transport.set_hooks(std::move(hooks));

  transport.on_readable(transport.fd_of(MemberId{0}));
  EXPECT_EQ(script->calls, 1u);
  EXPECT_TRUE(a.messages_.empty());
  EXPECT_EQ(transport.stats().messages_malformed, 0u);
}

TEST(UdpTransport, EndlessEintrIsBoundedByMaxDrain) {
  net::Reactor reactor(reactor_options());
  net::UdpTransport::Options topt;
  topt.port_base = 43300;
  topt.max_drain = 16;
  net::UdpTransport transport(reactor, topt);
  CollectingEndpoint a;
  transport.attach(MemberId{0}, a);

  auto script = std::make_shared<ScriptedRecv>();
  for (int i = 0; i < 1000; ++i) script->steps.push_back({{}, EINTR});
  net::UdpTransport::Hooks hooks;
  hooks.recv = [script](int fd, void* buf, std::size_t len) {
    return (*script)(fd, buf, len);
  };
  transport.set_hooks(std::move(hooks));

  // A pathological signal storm must yield back to the reactor after
  // max_drain iterations, not spin through the whole storm.
  transport.on_readable(transport.fd_of(MemberId{0}));
  EXPECT_EQ(script->calls, 16u);
}

TEST(UdpTransport, MockedDrainCountsMalformedAndDeliversValid) {
  net::Reactor reactor(reactor_options());
  net::UdpTransport::Options topt;
  topt.port_base = 43350;
  net::UdpTransport transport(reactor, topt);
  CollectingEndpoint a;
  transport.attach(MemberId{0}, a);

  auto script = std::make_shared<ScriptedRecv>();
  script->steps.push_back({{0xDE, 0xAD}, 0});                       // junk
  script->steps.push_back({encoded(MemberId{4}, MemberId{0}, 1), 0});
  script->steps.push_back({encoded(MemberId{4}, MemberId{9}, 2), 0});  // mis-addressed
  script->steps.push_back({{}, EINTR});
  script->steps.push_back({encoded(MemberId{5}, MemberId{0}, 3), 0});
  net::UdpTransport::Hooks hooks;
  hooks.recv = [script](int fd, void* buf, std::size_t len) {
    return (*script)(fd, buf, len);
  };
  transport.set_hooks(std::move(hooks));

  transport.on_readable(transport.fd_of(MemberId{0}));
  EXPECT_EQ(transport.stats().messages_malformed, 2u);
  EXPECT_EQ(transport.stats().messages_delivered, 2u);
  ASSERT_EQ(a.messages_.size(), 2u);
  EXPECT_EQ(a.messages_[0].frame[0], 1);
  EXPECT_EQ(a.messages_[1].frame[0], 3);
}

TEST(Reactor, PollEintrIsRetriedNotFatal) {
  net::Reactor reactor(reactor_options());
  int eintr_left = 3;
  reactor.set_poll_fn([&](pollfd* fds, nfds_t nfds, int timeout) -> int {
    if (eintr_left > 0) {
      --eintr_left;
      errno = EINTR;
      return -1;
    }
    return ::poll(fds, nfds, timeout);
  });

  bool fired = false;
  reactor.schedule_after(SimTime::millis(5), [&]() { fired = true; });
  const bool done =
      reactor.run_until([&]() { return fired; }, SimTime::seconds(5));
  EXPECT_TRUE(done);
  EXPECT_EQ(reactor.eintr_retries(), 3u);
}

/// Typed periodic timer driven by the wheel: counts fires, stops at limit.
class CountingTimer final : public sim::TimerTarget {
 public:
  explicit CountingTimer(std::uint64_t limit) : limit_(limit) {}
  bool on_timer(std::uint32_t) override { return ++fires_ < limit_; }
  std::uint64_t fires_ = 0;

 private:
  std::uint64_t limit_;
};

TEST(Reactor, TimerWheelDrivesTypedPeriodicTimers) {
  net::Reactor reactor(reactor_options());
  CountingTimer timer(5);
  reactor.schedule_periodic(SimTime::zero(), SimTime::millis(2), timer);
  const bool done = reactor.run_until([&]() { return timer.fires_ == 5; },
                                      SimTime::seconds(5));
  EXPECT_TRUE(done);
  // The chain self-cancelled at 5: give the wheel a few more quanta and
  // assert no sixth fire.
  (void)reactor.run_until([]() { return false; }, SimTime::millis(20));
  EXPECT_EQ(timer.fires_, 5u);
  EXPECT_GE(reactor.timers_fired(), 5u);
}

TEST(Reactor, FarFutureTimersParkBeyondTheWheelHorizon) {
  // A 16-slot wheel with a 1ms tick has a 16ms horizon; a 40ms timer must
  // wait out two extra laps and still fire on time, while a near timer
  // sharing its slot fires on its own lap.
  net::Reactor::Options ropt;
  ropt.slots = 16;
  net::Reactor reactor(ropt);
  bool near = false;
  bool far = false;
  reactor.schedule_after(SimTime::millis(8), [&]() { near = true; });
  reactor.schedule_after(SimTime::millis(40), [&]() { far = true; });

  ASSERT_TRUE(reactor.run_until([&]() { return near; }, SimTime::seconds(5)));
  EXPECT_FALSE(far) << "far timer fired a lap early";
  ASSERT_TRUE(reactor.run_until([&]() { return far; }, SimTime::seconds(5)));
  EXPECT_GE(reactor.now(), SimTime::millis(40));
}

// post() is the one cross-thread entry into a shard (DESIGN.md §14): each
// posting thread's actions must run on the reactor's own thread, in the
// order that thread posted them — even while the wheel is firing timers
// between drains. Two posters model two peer shards handing work over.
TEST(Reactor, CrossThreadPostsExecuteInPostOrderUnderTimerLoad) {
  net::Reactor reactor(reactor_options());
  CountingTimer load(1'000'000);  // periodic fire every tick, never stops
  reactor.schedule_periodic(SimTime::zero(), SimTime::millis(1), load);

  constexpr int kPosters = 2;
  constexpr int kEach = 400;
  // Written only inside posted actions — i.e. only on the reactor thread.
  std::vector<std::vector<int>> got(kPosters);
  std::atomic<int> landed{0};
  std::atomic<bool> wrong_thread{false};

  std::thread::id reactor_thread;
  std::thread runner([&]() {
    reactor_thread = std::this_thread::get_id();
    (void)reactor.run_until(
        [&]() { return landed.load(std::memory_order_acquire) ==
                       kPosters * kEach; },
        SimTime::seconds(30));
  });

  std::vector<std::thread> posters;
  posters.reserve(kPosters);
  for (int p = 0; p < kPosters; ++p) {
    posters.emplace_back([&, p]() {
      for (int i = 0; i < kEach; ++i) {
        reactor.post([&, p, i]() {
          if (std::this_thread::get_id() != reactor_thread) {
            wrong_thread.store(true);
          }
          got[p].push_back(i);
          landed.fetch_add(1, std::memory_order_release);
        });
        if (i % 32 == 0) std::this_thread::yield();  // interleave the posters
      }
    });
  }
  for (std::thread& t : posters) t.join();
  runner.join();

  EXPECT_FALSE(wrong_thread.load()) << "a posted action ran off-shard";
  EXPECT_GT(reactor.timers_fired(), 0u) << "the timer load never ran";
  for (int p = 0; p < kPosters; ++p) {
    ASSERT_EQ(got[p].size(), static_cast<std::size_t>(kEach))
        << "poster " << p << " lost posts (deadline hit?)";
    for (int i = 0; i < kEach; ++i) {
      ASSERT_EQ(got[p][i], i) << "poster " << p << " reordered at " << i;
    }
  }
}

}  // namespace
}  // namespace gridbox
