#include "src/agg/aggregate.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/agg/codec.h"
#include "src/agg/vote.h"
#include "src/common/ensure.h"
#include "src/common/rng.h"

namespace gridbox::agg {
namespace {

Partial partial_of(const std::vector<double>& votes) {
  Partial p;
  for (const double v : votes) p.merge(Partial::from_vote(v));
  return p;
}

TEST(Partial, EmptyIsIdentity) {
  Partial p;
  EXPECT_TRUE(p.empty());
  Partial q = Partial::from_vote(3.5);
  q.merge(Partial{});
  EXPECT_EQ(q, Partial::from_vote(3.5));
  Partial r;
  r.merge(Partial::from_vote(3.5));
  EXPECT_EQ(r, Partial::from_vote(3.5));
}

TEST(Partial, SingleVoteValues) {
  const Partial p = Partial::from_vote(7.0);
  EXPECT_EQ(p.count(), 1u);
  EXPECT_DOUBLE_EQ(p.value(AggregateKind::kAverage), 7.0);
  EXPECT_DOUBLE_EQ(p.value(AggregateKind::kSum), 7.0);
  EXPECT_DOUBLE_EQ(p.value(AggregateKind::kMin), 7.0);
  EXPECT_DOUBLE_EQ(p.value(AggregateKind::kMax), 7.0);
  EXPECT_DOUBLE_EQ(p.value(AggregateKind::kCount), 1.0);
  EXPECT_DOUBLE_EQ(p.value(AggregateKind::kRange), 0.0);
  EXPECT_DOUBLE_EQ(p.value(AggregateKind::kStdDev), 0.0);
}

TEST(Partial, KnownSetValues) {
  const Partial p = partial_of({2.0, 4.0, 6.0, 8.0});
  EXPECT_DOUBLE_EQ(p.value(AggregateKind::kAverage), 5.0);
  EXPECT_DOUBLE_EQ(p.value(AggregateKind::kSum), 20.0);
  EXPECT_DOUBLE_EQ(p.value(AggregateKind::kMin), 2.0);
  EXPECT_DOUBLE_EQ(p.value(AggregateKind::kMax), 8.0);
  EXPECT_DOUBLE_EQ(p.value(AggregateKind::kRange), 6.0);
  EXPECT_NEAR(p.value(AggregateKind::kStdDev), std::sqrt(5.0), 1e-12);
}

TEST(Partial, ValueOfEmptyThrowsExceptCount) {
  Partial p;
  EXPECT_DOUBLE_EQ(p.value(AggregateKind::kCount), 0.0);
  EXPECT_THROW((void)p.value(AggregateKind::kAverage), PreconditionError);
  EXPECT_THROW((void)p.value(AggregateKind::kMin), PreconditionError);
}

TEST(Partial, MergeIsCommutative) {
  const Partial a = partial_of({1.0, 2.0, 3.0});
  const Partial b = partial_of({10.0, -5.0});
  Partial ab = a;
  ab.merge(b);
  Partial ba = b;
  ba.merge(a);
  EXPECT_EQ(ab, ba);
}

TEST(Partial, MergeIsAssociative) {
  const Partial a = partial_of({1.0});
  const Partial b = partial_of({2.0, 3.0});
  const Partial c = partial_of({4.0, 5.0, 6.0});
  Partial left = a;
  left.merge(b);
  left.merge(c);
  Partial bc = b;
  bc.merge(c);
  Partial right = a;
  right.merge(bc);
  EXPECT_EQ(left, right);
}

// The paper's composability law: f(W1 ∪ W2) = g(f(W1), f(W2)) for disjoint
// vote sets — property-tested across random splits and all aggregate kinds.
class ComposabilityTest
    : public ::testing::TestWithParam<AggregateKind> {};

TEST_P(ComposabilityTest, SplitMergeEqualsWhole) {
  const AggregateKind kind = GetParam();
  Rng rng(1234);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 1 + rng.index(50);
    std::vector<double> votes(n);
    for (auto& v : votes) v = rng.normal(20.0, 30.0);

    const std::size_t cut = rng.index(n + 1);
    const Partial whole = partial_of(votes);
    const Partial left =
        partial_of({votes.begin(), votes.begin() + static_cast<long>(cut)});
    const Partial right =
        partial_of({votes.begin() + static_cast<long>(cut), votes.end()});
    Partial merged = left;
    merged.merge(right);

    ASSERT_EQ(merged.count(), whole.count());
    if (whole.count() > 0) {
      EXPECT_NEAR(merged.value(kind), whole.value(kind),
                  1e-9 * (1.0 + std::abs(whole.value(kind))));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, ComposabilityTest,
    ::testing::Values(AggregateKind::kAverage, AggregateKind::kSum,
                      AggregateKind::kMin, AggregateKind::kMax,
                      AggregateKind::kCount, AggregateKind::kRange,
                      AggregateKind::kStdDev),
    [](const ::testing::TestParamInfo<AggregateKind>& info) {
      return to_string(info.param);
    });

TEST(Partial, DeserializeRejectsCorruptMinMax) {
  EXPECT_THROW((void)Partial::deserialize(2, 10.0, 60.0, 9.0, 1.0),
               PreconditionError);
}

TEST(Codec, PrimitivesRoundTrip) {
  ByteWriter w;
  w.u8(0xAB);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.f64(-1234.5678);
  const auto bytes = w.take();
  EXPECT_EQ(bytes.size(), 1u + 4u + 8u + 8u);

  ByteReader r(bytes);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_DOUBLE_EQ(r.f64(), -1234.5678);
  EXPECT_TRUE(r.exhausted());
}

TEST(Codec, TruncatedReadThrows) {
  ByteWriter w;
  w.u32(7);
  const auto bytes = w.take();
  ByteReader r(bytes);
  (void)r.u32();
  EXPECT_THROW((void)r.u8(), PreconditionError);
}

TEST(Codec, PartialRoundTripsExactly) {
  Rng rng(77);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<double> votes(1 + rng.index(30));
    for (auto& v : votes) v = rng.normal(0.0, 100.0);
    const Partial original = partial_of(votes);

    ByteWriter w;
    write_partial(w, original);
    const auto bytes = w.take();
    EXPECT_EQ(bytes.size(), kPartialWireBytes);

    ByteReader r(bytes);
    EXPECT_EQ(read_partial(r), original);
  }
}

TEST(Codec, EmptyPartialRoundTrips) {
  ByteWriter w;
  write_partial(w, Partial{});
  const auto bytes = w.take();
  ByteReader r(bytes);
  EXPECT_EQ(read_partial(r), Partial{});
}

TEST(VoteTable, ExactPartialsMatchManualComputation) {
  const VoteTable table({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_DOUBLE_EQ(table.of(MemberId{2}), 3.0);
  EXPECT_THROW((void)table.of(MemberId{5}), PreconditionError);

  const Partial all = table.exact_partial_all();
  EXPECT_EQ(all.count(), 5u);
  EXPECT_DOUBLE_EQ(all.value(AggregateKind::kAverage), 3.0);

  const Partial sub = table.exact_partial({MemberId{0}, MemberId{4}});
  EXPECT_EQ(sub.count(), 2u);
  EXPECT_DOUBLE_EQ(sub.value(AggregateKind::kAverage), 3.0);
  EXPECT_DOUBLE_EQ(sub.value(AggregateKind::kRange), 4.0);
}

TEST(Workloads, UniformVotesStayInRange) {
  Rng rng(5);
  const VoteTable table = uniform_votes(1000, rng, 15.0, 35.0);
  for (const double v : table.values()) {
    ASSERT_GE(v, 15.0);
    ASSERT_LT(v, 35.0);
  }
  EXPECT_NEAR(table.exact_partial_all().value(AggregateKind::kAverage), 25.0,
              0.5);
}

TEST(Workloads, NormalVotesHaveRequestedMoments) {
  Rng rng(6);
  const VoteTable table = normal_votes(20'000, rng, 25.0, 5.0);
  const Partial p = table.exact_partial_all();
  EXPECT_NEAR(p.value(AggregateKind::kAverage), 25.0, 0.15);
  EXPECT_NEAR(p.value(AggregateKind::kStdDev), 5.0, 0.15);
}

TEST(Workloads, FieldVotesAreSpatiallyCorrelated) {
  Rng rng(7);
  // Two co-located sensors read nearly the same value; distant ones differ
  // by the field amplitude.
  std::vector<Position> pos = {{0.70, 0.30}, {0.70, 0.31}, {0.05, 0.95}};
  const auto position_of = [&pos](MemberId m) { return pos[m.value()]; };
  const VoteTable table = field_votes(3, position_of, rng, 20.0, 10.0, 0.0);
  EXPECT_NEAR(table.of(MemberId{0}), table.of(MemberId{1}), 0.5);
  EXPECT_GT(std::abs(table.of(MemberId{0}) - table.of(MemberId{2})), 2.0);
}

}  // namespace
}  // namespace gridbox::agg
