#include "src/hashing/fair_hash.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/hashing/fairness.h"
#include "src/hashing/topo_hash.h"
#include "src/membership/group.h"

namespace gridbox::hashing {
namespace {

std::vector<MemberId> member_range(std::size_t n) {
  std::vector<MemberId> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(MemberId{static_cast<MemberId::underlying>(i)});
  }
  return out;
}

TEST(FairHash, DeterministicPerSalt) {
  FairHash h1(7);
  FairHash h2(7);
  FairHash h3(8);
  int diff = 0;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    EXPECT_DOUBLE_EQ(h1.unit_value(MemberId{i}), h2.unit_value(MemberId{i}));
    if (h1.unit_value(MemberId{i}) != h3.unit_value(MemberId{i})) ++diff;
  }
  EXPECT_GT(diff, 990);
}

TEST(FairHash, ValuesInUnitInterval) {
  FairHash h(1);
  for (std::uint32_t i = 0; i < 100'000; ++i) {
    const double u = h.unit_value(MemberId{i});
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(FairHash, OccupancyIsStatisticallyFair) {
  // Chi-square of occupancy over B boxes ~ chi2(B-1): mean B-1,
  // stddev sqrt(2(B-1)). 10 sigma gives a deterministic-safe bound.
  FairHash h(3);
  const auto members = member_range(8000);
  const auto occ = box_occupancy(h, members, 64);
  const double chi2 = occupancy_chi_square(occ, members.size());
  EXPECT_LT(chi2, 63.0 + 10.0 * std::sqrt(2.0 * 63.0));
}

TEST(FairHash, MeanBoxOccupancyIsK) {
  FairHash h(4);
  const std::size_t n = 4096;
  const std::size_t boxes = 1024;  // K = 4
  const auto occ = box_occupancy(h, member_range(n), boxes);
  std::size_t total = 0;
  for (const std::size_t c : occ) total += c;
  EXPECT_EQ(total, n);
  const auto extremes = occupancy_extremes(occ);
  EXPECT_LE(extremes.max_box, 20u);  // Poisson(4) tail; 20 is ~10 sigma
}

TEST(Fairness, ChiSquareDetectsUnfairHash) {
  // A constant hash puts everyone in one box: chi2 explodes.
  class ConstantHash final : public HashFunction {
   public:
    double unit_value(MemberId) const override { return 0.1; }
  };
  ConstantHash h;
  const auto occ = box_occupancy(h, member_range(1000), 10);
  EXPECT_GT(occupancy_chi_square(occ, 1000), 1000.0);
}

TEST(MortonKey, PreservesQuadrantLocality) {
  // All points in the lower-left quadrant sort before any point in the
  // upper-right quadrant (property of Z-ordering).
  const std::uint64_t ll = morton_key(Position{0.2, 0.2});
  const std::uint64_t ll2 = morton_key(Position{0.4, 0.4});
  const std::uint64_t ur = morton_key(Position{0.7, 0.7});
  EXPECT_LT(ll, ur);
  EXPECT_LT(ll2, ur);
}

TEST(MortonKey, ClampsOutOfRangePositions) {
  EXPECT_EQ(morton_key(Position{-1.0, -5.0}), morton_key(Position{0.0, 0.0}));
  EXPECT_EQ(morton_key(Position{2.0, 3.0}), morton_key(Position{1.0, 1.0}));
}

TEST(TopoAwareHash, DeterministicAndInRange) {
  membership::Group group(500);
  Rng rng(11);
  group.scatter_positions(rng);
  const auto pos = [&group](MemberId m) { return group.position(m); };
  TopoAwareHash h(pos);
  for (const MemberId m : group.members()) {
    const double u = h.unit_value(m);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    EXPECT_DOUBLE_EQ(u, h.unit_value(m));
  }
}

TEST(TopoAwareHash, NearbyMembersShareBoxes) {
  // Two sensors a hair apart must land in the same grid box at coarse
  // granularity; far-apart corners must not.
  membership::Group group(4);
  group.set_position(MemberId{0}, Position{0.10, 0.10});
  group.set_position(MemberId{1}, Position{0.11, 0.11});
  group.set_position(MemberId{2}, Position{0.90, 0.90});
  group.set_position(MemberId{3}, Position{0.91, 0.89});
  const auto pos = [&group](MemberId m) { return group.position(m); };
  TopoAwareHash h(pos);

  const auto box_of = [&h](MemberId m, std::size_t boxes) {
    return static_cast<std::size_t>(h.unit_value(m) *
                                    static_cast<double>(boxes));
  };
  EXPECT_EQ(box_of(MemberId{0}, 4), box_of(MemberId{1}, 4));
  EXPECT_EQ(box_of(MemberId{2}, 4), box_of(MemberId{3}, 4));
  EXPECT_NE(box_of(MemberId{0}, 4), box_of(MemberId{2}, 4));
}

TEST(TopoAwareHash, CalibrationFlattensClusteredDeployments) {
  // Cluster all members in one corner; the uncalibrated hash crams them into
  // few boxes, while the calibrated hash spreads them evenly.
  membership::Group group(2000);
  Rng rng(12);
  for (const MemberId m : group.members()) {
    group.set_position(m, Position{rng.uniform() * 0.1, rng.uniform() * 0.1});
  }
  const auto pos = [&group](MemberId m) { return group.position(m); };

  std::vector<Position> sample;
  for (const MemberId m : group.members()) sample.push_back(group.position(m));

  TopoAwareHash uncalibrated(pos);
  TopoAwareHash calibrated(pos, sample);

  const auto occ_unc = box_occupancy(uncalibrated, group.members(), 64);
  const auto occ_cal = box_occupancy(calibrated, group.members(), 64);
  const double chi_unc = occupancy_chi_square(occ_unc, group.size());
  const double chi_cal = occupancy_chi_square(occ_cal, group.size());
  EXPECT_GT(chi_unc, 10.0 * chi_cal);
  EXPECT_LT(chi_cal, 64.0 * 4.0);
}

TEST(TopoAwareHash, CalibratedStillPreservesLocality) {
  membership::Group group(1000);
  Rng rng(13);
  group.scatter_positions(rng);
  const auto pos = [&group](MemberId m) { return group.position(m); };
  std::vector<Position> sample;
  for (const MemberId m : group.members()) sample.push_back(group.position(m));
  TopoAwareHash h(pos, sample);

  // Mean unit-value gap between spatial near-neighbours must be far below
  // the gap between random pairs.
  double near_gap = 0.0;
  double random_gap = 0.0;
  int pairs = 0;
  for (std::uint32_t i = 0; i + 1 < 1000; i += 2) {
    const MemberId a{i};
    // Make b a true spatial neighbour of a.
    membership::Group probe(2);
    const Position pa = group.position(a);
    probe.set_position(MemberId{0}, pa);
    probe.set_position(MemberId{1}, Position{pa.x + 0.001, pa.y + 0.001});
    const auto ppos = [&probe](MemberId m) { return probe.position(m); };
    TopoAwareHash ph(ppos, sample);
    near_gap += std::abs(ph.unit_value(MemberId{0}) - ph.unit_value(MemberId{1}));
    random_gap += std::abs(h.unit_value(a) - h.unit_value(MemberId{i + 1}));
    ++pairs;
  }
  EXPECT_LT(near_gap / pairs, 0.2 * (random_gap / pairs));
}

}  // namespace
}  // namespace gridbox::hashing
